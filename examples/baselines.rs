//! The analytical MILP method vs the prior art it was positioned against:
//! Wong-Liu slicing simulated annealing (paper §2.1, [WON86]) and a
//! constructive bottom-left heuristic.
//!
//! ```sh
//! cargo run --release --example baselines
//! ```

use analytical_floorplan::prelude::*;
use analytical_floorplan::slicing::SlicingAnnealer;
use std::time::Instant;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let netlist = analytical_floorplan::netlist::xerox10();
    let total = netlist.total_module_area();
    println!(
        "benchmark {}: {} modules, total area {:.0}\n",
        netlist.name(),
        netlist.num_modules(),
        total
    );

    // Analytical MILP (this paper): augment, then improve + compact.
    let config = FloorplanConfig::default();
    let started = Instant::now();
    let result = Floorplanner::with_config(&netlist, config.clone()).run()?;
    let milp = improve(&result.floorplan, &netlist, &config, 4)?;
    println!(
        "MILP (analytical):  area {:>7.0}  utilization {:>5.1}%  [{:.2?}]",
        milp.chip_area(),
        100.0 * total / milp.chip_area(),
        started.elapsed()
    );

    // Wong-Liu slicing simulated annealing.
    let started = Instant::now();
    let sa = SlicingAnnealer::new(&netlist).with_seed(7).run();
    println!(
        "Slicing SA [WON86]: area {:>7.0}  utilization {:>5.1}%  [{:.2?}, {} / {} moves accepted]",
        sa.area,
        100.0 * total / sa.area,
        started.elapsed(),
        sa.accepted_moves,
        sa.attempted_moves
    );

    // Constructive bottom-left.
    let started = Instant::now();
    let greedy = bottom_left(&netlist, &config)?;
    println!(
        "Bottom-left greedy: area {:>7.0}  utilization {:>5.1}%  [{:.2?}]",
        greedy.chip_area(),
        100.0 * total / greedy.chip_area(),
        started.elapsed()
    );

    assert!(milp.is_valid() && sa.floorplan.is_valid() && greedy.is_valid());
    Ok(())
}
