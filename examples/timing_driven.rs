//! Timing-driven floorplanning and routing (paper §2.2 "additional
//! constraints on the length of critical nets" + §3.2 "nets with the tight
//! timing requirements are routed first", after [YOU89]).
//!
//! Builds a pipeline with two timing-critical nets, enforces their maximum
//! estimated length inside the MILP, and shows the router honoring
//! criticality order.
//!
//! ```sh
//! cargo run --release --example timing_driven
//! ```

use analytical_floorplan::prelude::*;
use fp_netlist::{Module, Net, Netlist};

fn build() -> Netlist {
    let mut nl = Netlist::new("timing");
    let cpu = nl
        .add_module(Module::rigid("cpu", 10.0, 8.0, true))
        .unwrap();
    let cache = nl
        .add_module(Module::rigid("cache", 8.0, 8.0, true))
        .unwrap();
    let mmu = nl.add_module(Module::rigid("mmu", 6.0, 6.0, true)).unwrap();
    let io = nl.add_module(Module::rigid("io", 8.0, 4.0, true)).unwrap();
    let dsp = nl.add_module(Module::rigid("dsp", 9.0, 7.0, true)).unwrap();
    let rom = nl.add_module(Module::rigid("rom", 7.0, 5.0, true)).unwrap();

    // Critical path: cpu <-> cache must stay short.
    nl.add_net(
        Net::new("c_bus", [cpu, cache])
            .with_criticality(1.0)
            .with_max_length(14.0),
    )
    .unwrap();
    // Second critical net with a looser budget.
    nl.add_net(
        Net::new("tlb", [cpu, mmu])
            .with_criticality(0.8)
            .with_max_length(20.0),
    )
    .unwrap();
    // Ordinary connectivity.
    for (name, members) in [
        ("dbus", vec![cpu, io, dsp]),
        ("prog", vec![rom, cpu]),
        ("strm", vec![dsp, io]),
        ("mres", vec![mmu, cache, rom]),
    ] {
        nl.add_net(Net::new(name, members)).unwrap();
    }
    nl
}

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let netlist = build();

    for enforce in [false, true] {
        let config = FloorplanConfig::default()
            .with_objective(Objective::AreaPlusWirelength { lambda: 0.5 })
            .with_critical_nets(enforce);
        let result = Floorplanner::with_config(&netlist, config).run()?;
        let fp = &result.floorplan;

        // Measure the critical nets' center distances.
        let dist = |a: &str, b: &str| {
            let pa = fp.placement(netlist.module_by_name(a).unwrap()).unwrap();
            let pb = fp.placement(netlist.module_by_name(b).unwrap()).unwrap();
            pa.rect.center().manhattan(&pb.rect.center())
        };
        println!(
            "critical-net constraints {}: chip {:.0}x{:.0}, cpu-cache {:.1} (limit 14), cpu-mmu {:.1} (limit 20)",
            if enforce { "ENFORCED" } else { "off     " },
            fp.chip_width(),
            fp.chip_height(),
            dist("cpu", "cache"),
            dist("cpu", "mmu"),
        );
        if enforce {
            assert!(dist("cpu", "cache") <= 14.0 + 1e-6);
            assert!(dist("cpu", "mmu") <= 20.0 + 1e-6);
        }

        // Route and check the length limits end-to-end.
        let routing = route(fp, &netlist, &RouteConfig::default())?;
        println!(
            "  routed: wirelength {:.0}, critical nets missing their limit: {}",
            routing.total_wirelength,
            routing.missed_limits(),
        );
    }
    Ok(())
}
