//! The paper's headline experiment: floorplan the ami33 benchmark
//! (33 modules, total module area 11520) minimizing chip area, then compact
//! it with the §2.5 given-topology LP.
//!
//! ```sh
//! cargo run --release --example ami33_floorplan
//! ```

use analytical_floorplan::prelude::*;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let netlist = ami33();
    println!(
        "benchmark {}: {} modules, total area {}, {} nets",
        netlist.name(),
        netlist.num_modules(),
        netlist.total_module_area(),
        netlist.num_nets(),
    );

    let config = FloorplanConfig::default()
        .with_ordering(OrderingStrategy::Connectivity)
        .with_objective(Objective::Area);
    let result = Floorplanner::with_config(&netlist, config.clone()).run()?;
    let floorplan = &result.floorplan;
    println!(
        "\naugmentation: {} steps, max {} binaries/step, {:.2?} total",
        result.stats.steps.len(),
        result.stats.max_binaries(),
        result.stats.elapsed,
    );
    println!(
        "after augmentation: chip {:.0} x {:.0}, utilization {:.1}%",
        floorplan.chip_width(),
        floorplan.chip_height(),
        100.0 * floorplan.utilization(&netlist),
    );

    // §2.5: with the topology fixed, one LP re-optimizes all coordinates.
    let compacted = optimize_topology(floorplan, &netlist, &config)?;
    println!(
        "after topology LP:  chip {:.0} x {:.0}, utilization {:.1}%",
        compacted.chip_width(),
        compacted.chip_height(),
        100.0 * compacted.utilization(&netlist),
    );
    assert!(compacted.is_valid());
    assert!(compacted.chip_height() <= floorplan.chip_height() + 1e-6);

    println!("\n{}", ascii_floorplan(&compacted, &netlist, 66));
    Ok(())
}
