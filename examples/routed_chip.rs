//! Around-the-cell routing with envelopes (paper §3.2 / Table 3 setting):
//! floorplan with routing envelopes, globally route with the weighted
//! shortest-path router, adjust channels, and emit SVG figures.
//!
//! ```sh
//! cargo run --release --example routed_chip
//! # figures land in target/figures/
//! ```

use analytical_floorplan::prelude::*;
use std::fs;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let netlist = analytical_floorplan::netlist::generator::ProblemGenerator::new(14, 90)
        .with_nets_per_module(3.0)
        .generate();

    // Envelopes reserve per-side routing space proportional to pin counts.
    let config = FloorplanConfig::default()
        .with_envelopes(true)
        .with_pitches(0.10, 0.10);
    let result = Floorplanner::with_config(&netlist, config).run()?;
    let floorplan = &result.floorplan;
    println!(
        "floorplanned {} modules with envelopes: chip {:.1} x {:.1}",
        floorplan.len(),
        floorplan.chip_width(),
        floorplan.chip_height(),
    );

    for (label, algorithm) in [
        ("shortest path", RouteAlgorithm::ShortestPath),
        (
            "weighted shortest path",
            RouteAlgorithm::WeightedShortestPath,
        ),
    ] {
        let route_cfg = RouteConfig::default()
            .with_mode(RoutingMode::AroundTheCell)
            .with_algorithm(algorithm)
            .with_pitches(0.10, 0.10);
        let routing = route(floorplan, &netlist, &route_cfg)?;
        println!(
            "{label:>24}: wirelength {:>7.1}, overflowed edges {:>3}, final chip area {:>9.1}",
            routing.total_wirelength,
            routing.adjustment.overflowed_edges,
            routing.adjustment.final_area(),
        );
        if algorithm == RouteAlgorithm::WeightedShortestPath {
            fs::create_dir_all("target/figures")?;
            fs::write(
                "target/figures/routed_chip.svg",
                svg_routed(floorplan, &netlist, &routing),
            )?;
            println!("           wrote target/figures/routed_chip.svg");
        }
    }
    Ok(())
}
