//! Flexible (soft) modules: fixed area, free aspect ratio.
//!
//! Builds a datapath-like problem where half the blocks are soft (control
//! logic that synthesis can reshape) and shows how the MILP picks shapes,
//! comparing the paper's Taylor linearization against the sound secant
//! model.
//!
//! ```sh
//! cargo run --release --example soft_modules
//! ```

use analytical_floorplan::core::SoftShapeModel;
use analytical_floorplan::prelude::*;
use fp_netlist::{Module, Net, Netlist};

fn build_datapath() -> Netlist {
    let mut nl = Netlist::new("datapath");
    // Hard macros: register file, two RAMs, a PLL corner block.
    let regf = nl
        .add_module(Module::rigid("regfile", 12.0, 6.0, true))
        .unwrap();
    let ram0 = nl
        .add_module(Module::rigid("ram0", 10.0, 8.0, true))
        .unwrap();
    let ram1 = nl
        .add_module(Module::rigid("ram1", 10.0, 8.0, true))
        .unwrap();
    let pll = nl
        .add_module(Module::rigid("pll", 5.0, 5.0, false))
        .unwrap();
    // Soft blocks: synthesized control and glue logic.
    let alu = nl
        .add_module(Module::flexible("alu", 64.0, 0.4, 2.5))
        .unwrap();
    let ctl = nl
        .add_module(Module::flexible("ctl", 36.0, 0.5, 2.0))
        .unwrap();
    let dec = nl
        .add_module(Module::flexible("dec", 25.0, 0.5, 2.0))
        .unwrap();
    let glue = nl
        .add_module(Module::flexible("glue", 16.0, 0.25, 4.0))
        .unwrap();

    for (name, members) in [
        ("rbus", vec![regf, alu, ctl]),
        ("m0", vec![ram0, alu, dec]),
        ("m1", vec![ram1, alu, dec]),
        ("clk", vec![pll, regf, ctl]),
        ("gl", vec![glue, ctl, dec]),
    ] {
        nl.add_net(Net::new(name, members)).unwrap();
    }
    nl
}

fn run(model: SoftShapeModel, netlist: &Netlist) -> Result<(), Box<dyn std::error::Error>> {
    let config = FloorplanConfig::default()
        .with_soft_model(model)
        .with_objective(Objective::AreaPlusWirelength { lambda: 0.3 });
    let result = Floorplanner::with_config(netlist, config.clone()).run()?;
    let compact = optimize_topology(&result.floorplan, netlist, &config)?;
    println!(
        "{model:?}: chip {:.1} x {:.1}, utilization {:.1}%",
        compact.chip_width(),
        compact.chip_height(),
        100.0 * compact.utilization(netlist),
    );
    for placed in compact.iter() {
        let m = netlist.module(placed.id);
        if m.is_flexible() {
            println!(
                "  soft {:>5}: chose {:.2} x {:.2} (aspect {:.2}, area {:.1})",
                m.name(),
                placed.rect.w,
                placed.rect.h,
                placed.rect.aspect(),
                placed.rect.area(),
            );
        }
    }
    if model == SoftShapeModel::Secant {
        // The secant model guarantees overlap-free true shapes.
        assert!(compact.is_valid(), "{:?}", compact.violations());
    }
    Ok(())
}

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let netlist = build_datapath();
    println!(
        "{}: {} modules ({} soft), {} nets\n",
        netlist.name(),
        netlist.num_modules(),
        netlist.modules().filter(|(_, m)| m.is_flexible()).count(),
        netlist.num_nets(),
    );
    run(SoftShapeModel::Secant, &netlist)?;
    println!();
    run(SoftShapeModel::Taylor, &netlist)?;
    println!("\n(Taylor is the paper's formulation (6); Secant is the sound default.)");
    Ok(())
}
