//! Quickstart: floorplan a small generated problem and print the result.
//!
//! ```sh
//! cargo run --release --example quickstart
//! ```

use analytical_floorplan::prelude::*;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    // A 12-module problem, deterministic under the seed.
    let netlist = analytical_floorplan::netlist::generator::ProblemGenerator::new(12, 7).generate();

    // Default configuration: connectivity ordering, area objective,
    // rotation enabled, chip width derived from total module area.
    let result = Floorplanner::new(&netlist).run()?;
    let floorplan = &result.floorplan;

    println!("{}", ascii_floorplan(floorplan, &netlist, 64));
    println!(
        "placed {} modules in {} MILP steps ({} B&B nodes total, {:.2?})",
        floorplan.len(),
        result.stats.steps.len(),
        result.stats.total_nodes(),
        result.stats.elapsed,
    );
    println!(
        "chip {:.0} x {:.0} = {:.0}, utilization {:.1}%, center wirelength {:.0}",
        floorplan.chip_width(),
        floorplan.chip_height(),
        floorplan.chip_area(),
        100.0 * floorplan.utilization(&netlist),
        floorplan.center_wirelength(&netlist),
    );
    assert!(floorplan.is_valid());

    // Global-route the result and report the post-routing chip area.
    let routing = route(floorplan, &netlist, &RouteConfig::default())?;
    println!(
        "routed {} nets, wirelength {:.0}, final chip area after channel adjustment {:.0}",
        routing.routes.len(),
        routing.total_wirelength,
        routing.adjustment.final_area(),
    );
    Ok(())
}
