# A small mixed rigid/flexible problem in the fp-netlist text format.
# Try: cargo run --release -p fp-cli -- examples/data/sample.fp --compact --route wsp --ascii
problem sample
module cpu    rigid 12 10 rot   pins 4 4 6 6
module ram0   rigid 10 8  rot   pins 3 3 4 4
module ram1   rigid 10 8  rot   pins 3 3 4 4
module dma    rigid 6  5  rot   pins 2 2 2 2
module alu    flexible 64 0.4 2.5 pins 3 3 3 3
module ctl    flexible 36 0.5 2.0 pins 2 2 2 2
module glue   flexible 16 0.25 4.0 pins 1 1 1 1
net bus  weight 2 : cpu ram0 ram1
net dbus : cpu alu
net abus : alu ctl
net irq  crit 0.9 maxlen 40 : cpu dma
net g0   : glue ctl dma
net g1   : glue ram0
