//! Offline stand-in for the `rand` crate.
//!
//! The build environment has no network access and no crates-io mirror, so
//! the real `rand` cannot be fetched. This shim implements the subset of the
//! `rand` 0.8 API the workspace uses — `StdRng`, `SeedableRng::seed_from_u64`,
//! `Rng::{gen, gen_range, gen_bool}`, and `seq::SliceRandom::shuffle` — on top
//! of a deterministic xoshiro256++ generator.
//!
//! The bit streams differ from the real `rand`'s `StdRng` (ChaCha12), but
//! every consumer in this workspace only relies on *seeded determinism*, not
//! on specific stream values, so the substitution is behavior-preserving.

#![forbid(unsafe_code)]

use std::ops::{Range, RangeInclusive};

/// Low-level source of random bits.
pub trait RngCore {
    /// The next 64 uniformly distributed bits.
    fn next_u64(&mut self) -> u64;

    /// The next 32 uniformly distributed bits.
    fn next_u32(&mut self) -> u32 {
        (self.next_u64() >> 32) as u32
    }
}

/// Seedable construction, mirroring `rand::SeedableRng::seed_from_u64`.
pub trait SeedableRng: Sized {
    /// Builds the generator from a 64-bit seed (deterministic).
    fn seed_from_u64(seed: u64) -> Self;
}

/// Named generators, mirroring `rand::rngs`.
pub mod rngs {
    use super::{RngCore, SeedableRng};

    /// Deterministic xoshiro256++ generator (stand-in for `rand`'s `StdRng`).
    #[derive(Debug, Clone)]
    pub struct StdRng {
        s: [u64; 4],
    }

    /// The shim has a single generator; `SmallRng` aliases it.
    pub type SmallRng = StdRng;

    impl SeedableRng for StdRng {
        fn seed_from_u64(seed: u64) -> Self {
            // SplitMix64 expansion of the seed into the xoshiro state, the
            // standard seeding recommended by the xoshiro authors.
            let mut sm = seed;
            let mut next = || {
                sm = sm.wrapping_add(0x9E37_79B9_7F4A_7C15);
                let mut z = sm;
                z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
                z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
                z ^ (z >> 31)
            };
            StdRng {
                s: [next(), next(), next(), next()],
            }
        }
    }

    impl RngCore for StdRng {
        fn next_u64(&mut self) -> u64 {
            let result = self.s[0]
                .wrapping_add(self.s[3])
                .rotate_left(23)
                .wrapping_add(self.s[0]);
            let t = self.s[1] << 17;
            self.s[2] ^= self.s[0];
            self.s[3] ^= self.s[1];
            self.s[1] ^= self.s[2];
            self.s[0] ^= self.s[3];
            self.s[2] ^= t;
            self.s[3] = self.s[3].rotate_left(45);
            result
        }
    }
}

/// Types producible by [`Rng::gen`] (stand-in for sampling from `Standard`).
pub trait Standard: Sized {
    /// Draws one value from the generator.
    fn draw<R: RngCore + ?Sized>(rng: &mut R) -> Self;
}

impl Standard for f64 {
    fn draw<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        // 53 random mantissa bits -> uniform in [0, 1).
        (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}

impl Standard for bool {
    fn draw<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64() & 1 == 1
    }
}

impl Standard for u64 {
    fn draw<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64()
    }
}

impl Standard for u32 {
    fn draw<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u32()
    }
}

/// Range types usable with [`Rng::gen_range`].
pub trait SampleRange<T> {
    /// Draws one value uniformly from the range.
    ///
    /// # Panics
    ///
    /// Panics if the range is empty.
    fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> T;
}

macro_rules! impl_int_sample_range {
    ($($t:ty),+) => {$(
        impl SampleRange<$t> for Range<$t> {
            fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "cannot sample from empty range");
                let span = (self.end as i128 - self.start as i128) as u128;
                let offset = (u128::from(rng.next_u64()) % span) as i128;
                (self.start as i128 + offset) as $t
            }
        }
        impl SampleRange<$t> for RangeInclusive<$t> {
            fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                let (lo, hi) = (*self.start(), *self.end());
                assert!(lo <= hi, "cannot sample from empty range");
                let span = (hi as i128 - lo as i128) as u128 + 1;
                let offset = (u128::from(rng.next_u64()) % span) as i128;
                (lo as i128 + offset) as $t
            }
        }
    )+};
}

impl_int_sample_range!(usize, u8, u16, u32, u64, i8, i16, i32, i64);

impl SampleRange<f64> for Range<f64> {
    fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> f64 {
        assert!(self.start < self.end, "cannot sample from empty range");
        let u = f64::draw(rng);
        self.start + u * (self.end - self.start)
    }
}

impl SampleRange<f64> for RangeInclusive<f64> {
    fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> f64 {
        let (lo, hi) = (*self.start(), *self.end());
        assert!(lo <= hi, "cannot sample from empty range");
        let u = f64::draw(rng);
        lo + u * (hi - lo)
    }
}

/// High-level sampling methods, mirroring `rand::Rng`.
pub trait Rng: RngCore {
    /// Uniform value in `range`.
    fn gen_range<T, Rg: SampleRange<T>>(&mut self, range: Rg) -> T {
        range.sample_from(self)
    }

    /// A value of `T` drawn from its standard distribution.
    fn gen<T: Standard>(&mut self) -> T {
        T::draw(self)
    }

    /// `true` with probability `p`.
    fn gen_bool(&mut self, p: f64) -> bool {
        f64::draw(self) < p
    }
}

impl<R: RngCore + ?Sized> Rng for R {}

/// Sequence helpers, mirroring `rand::seq`.
pub mod seq {
    use super::{Rng, RngCore};

    /// Slice extension trait, mirroring `rand::seq::SliceRandom`.
    pub trait SliceRandom {
        /// The element type.
        type Item;

        /// Fisher-Yates shuffle in place.
        fn shuffle<R: RngCore + ?Sized>(&mut self, rng: &mut R);

        /// Uniformly random element, `None` on an empty slice.
        fn choose<R: RngCore + ?Sized>(&self, rng: &mut R) -> Option<&Self::Item>;
    }

    impl<T> SliceRandom for [T] {
        type Item = T;

        fn shuffle<R: RngCore + ?Sized>(&mut self, rng: &mut R) {
            for i in (1..self.len()).rev() {
                let j = rng.gen_range(0..=i);
                self.swap(i, j);
            }
        }

        fn choose<R: RngCore + ?Sized>(&self, rng: &mut R) -> Option<&T> {
            if self.is_empty() {
                None
            } else {
                Some(&self[rng.gen_range(0..self.len())])
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::rngs::StdRng;
    use super::seq::SliceRandom;
    use super::{Rng, RngCore, SeedableRng};

    #[test]
    fn seeded_streams_are_deterministic() {
        let mut a = StdRng::seed_from_u64(42);
        let mut b = StdRng::seed_from_u64(42);
        for _ in 0..100 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
        let mut c = StdRng::seed_from_u64(43);
        assert_ne!(StdRng::seed_from_u64(42).next_u64(), c.next_u64());
    }

    #[test]
    fn gen_range_respects_bounds() {
        let mut rng = StdRng::seed_from_u64(7);
        for _ in 0..1000 {
            let v = rng.gen_range(3..9);
            assert!((3..9).contains(&v));
            let w: f64 = rng.gen_range(-1.5..2.5);
            assert!((-1.5..2.5).contains(&w));
            let x = rng.gen_range(-4i32..=4);
            assert!((-4..=4).contains(&x));
            let u: f64 = rng.gen();
            assert!((0.0..1.0).contains(&u));
        }
    }

    #[test]
    fn gen_range_covers_all_values() {
        let mut rng = StdRng::seed_from_u64(1);
        let mut seen = [false; 5];
        for _ in 0..200 {
            seen[rng.gen_range(0..5usize)] = true;
        }
        assert!(seen.iter().all(|&s| s), "all buckets hit: {seen:?}");
    }

    #[test]
    fn shuffle_permutes() {
        let mut rng = StdRng::seed_from_u64(9);
        let mut v: Vec<usize> = (0..20).collect();
        v.shuffle(&mut rng);
        let mut sorted = v.clone();
        sorted.sort_unstable();
        assert_eq!(sorted, (0..20).collect::<Vec<_>>());
        assert_ne!(
            v,
            (0..20).collect::<Vec<_>>(),
            "20 elements shuffled in place"
        );
    }
}
