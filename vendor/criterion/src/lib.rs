//! Offline stand-in for the `criterion` crate.
//!
//! The build environment has no network access, so the real `criterion`
//! cannot be fetched. This shim keeps the workspace's benches compiling and
//! runnable with the same source: `criterion_group!` / `criterion_main!`,
//! benchmark groups with `sample_size` / `measurement_time`,
//! `bench_function` / `bench_with_input`, and `Bencher::iter`.
//!
//! Statistics are intentionally simple: each benchmark runs a short warm-up,
//! then up to `sample_size` timed samples within the `measurement_time`
//! budget, and reports min / mean / max per iteration on stdout. There are
//! no HTML reports, baselines, or outlier analyses.

#![forbid(unsafe_code)]

pub use std::hint::black_box;

use std::fmt;
use std::time::{Duration, Instant};

/// Identifier `group/function/parameter` for one benchmark.
#[derive(Debug, Clone)]
pub struct BenchmarkId {
    function: String,
    parameter: String,
}

impl BenchmarkId {
    /// Identifier from a function name and a displayed parameter.
    pub fn new(function: impl Into<String>, parameter: impl fmt::Display) -> Self {
        BenchmarkId {
            function: function.into(),
            parameter: parameter.to_string(),
        }
    }
}

impl fmt::Display for BenchmarkId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}/{}", self.function, self.parameter)
    }
}

/// Timing loop handle passed to benchmark closures.
pub struct Bencher {
    samples: Vec<Duration>,
    sample_size: usize,
    measurement_time: Duration,
}

impl Bencher {
    /// Times `routine` repeatedly; the return value is passed to
    /// [`black_box`] so the work is not optimized away.
    pub fn iter<O, F: FnMut() -> O>(&mut self, mut routine: F) {
        black_box(routine()); // warm-up, untimed
        let started = Instant::now();
        while self.samples.len() < self.sample_size {
            let t = Instant::now();
            black_box(routine());
            self.samples.push(t.elapsed());
            if started.elapsed() >= self.measurement_time {
                break;
            }
        }
    }
}

/// A named set of related benchmarks.
pub struct BenchmarkGroup<'a> {
    criterion: &'a mut Criterion,
    name: String,
    sample_size: usize,
    measurement_time: Duration,
}

impl BenchmarkGroup<'_> {
    /// Caps the number of timed samples per benchmark.
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        self.sample_size = n.max(1);
        self
    }

    /// Caps the wall-clock budget per benchmark.
    pub fn measurement_time(&mut self, d: Duration) -> &mut Self {
        self.measurement_time = d;
        self
    }

    /// Runs `routine` as a benchmark named `id` within this group.
    pub fn bench_function<F>(&mut self, id: impl fmt::Display, mut routine: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        let mut b = Bencher {
            samples: Vec::new(),
            sample_size: self.sample_size,
            measurement_time: self.measurement_time,
        };
        routine(&mut b);
        self.criterion
            .report(&format!("{}/{id}", self.name), &b.samples);
        self
    }

    /// Runs `routine` with a borrowed input as a benchmark named `id`.
    pub fn bench_with_input<I: ?Sized, F>(
        &mut self,
        id: BenchmarkId,
        input: &I,
        mut routine: F,
    ) -> &mut Self
    where
        F: FnMut(&mut Bencher, &I),
    {
        self.bench_function(id, |b| routine(b, input))
    }

    /// Ends the group (kept for API compatibility; reporting is immediate).
    pub fn finish(self) {}
}

/// The benchmark driver.
pub struct Criterion {
    default_sample_size: usize,
    default_measurement_time: Duration,
}

impl Default for Criterion {
    fn default() -> Self {
        Criterion {
            // Smaller than real criterion's 100: solver benches on this
            // offline harness should finish in seconds, not minutes.
            default_sample_size: 20,
            default_measurement_time: Duration::from_secs(3),
        }
    }
}

impl Criterion {
    /// Opens a benchmark group.
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        let (sample_size, measurement_time) =
            (self.default_sample_size, self.default_measurement_time);
        BenchmarkGroup {
            criterion: self,
            name: name.into(),
            sample_size,
            measurement_time,
        }
    }

    /// Runs a stand-alone benchmark outside any group.
    pub fn bench_function<F>(&mut self, id: impl fmt::Display, routine: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        let mut group = self.benchmark_group("bench");
        group.bench_function(id, routine);
        self
    }

    fn report(&mut self, label: &str, samples: &[Duration]) {
        if samples.is_empty() {
            println!("{label:<40} no samples (routine never ran)");
            return;
        }
        let total: Duration = samples.iter().sum();
        let mean = total / samples.len() as u32;
        let min = samples.iter().min().expect("non-empty");
        let max = samples.iter().max().expect("non-empty");
        println!(
            "{label:<40} time: [{min:>10.2?} {mean:>10.2?} {max:>10.2?}]  ({} samples)",
            samples.len()
        );
    }
}

/// Declares a function running the listed benchmark functions in order.
#[macro_export]
macro_rules! criterion_group {
    ($name:ident, $($target:path),+ $(,)?) => {
        pub fn $name() {
            let mut criterion = $crate::Criterion::default();
            $($target(&mut criterion);)+
        }
    };
}

/// Declares `main` running the listed [`criterion_group!`]s.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $($group();)+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bench_runs_and_reports() {
        let mut c = Criterion::default();
        let mut group = c.benchmark_group("shim");
        group.sample_size(3);
        group.measurement_time(Duration::from_millis(50));
        let mut runs = 0usize;
        group.bench_with_input(BenchmarkId::new("count", 1), &7u64, |b, &n| {
            b.iter(|| {
                runs += 1;
                n * 2
            })
        });
        group.finish();
        assert!(runs >= 2, "warm-up plus at least one sample, got {runs}");
    }

    #[test]
    fn id_formats() {
        assert_eq!(BenchmarkId::new("knapsack", 16).to_string(), "knapsack/16");
    }
}
