//! Offline stand-in for the `proptest` crate.
//!
//! The build environment has no network access, so the real `proptest`
//! cannot be fetched. This shim implements the subset of the proptest 1.x
//! API the workspace's property tests use: the [`proptest!`] macro, range /
//! tuple / [`collection::vec`] / [`strategy::Just`] / [`prop_oneof!`]
//! strategies, `prop_map` / `prop_flat_map` combinators, `any::<bool>()`,
//! and the `prop_assert*` macros.
//!
//! Differences from real proptest, by design:
//!
//! * **Generate-only**: failing cases are reported with their full input
//!   values but are not shrunk to minimal counterexamples.
//! * **Deterministic**: case seeds derive from the test's module path and
//!   case index, so every run explores the same inputs (no regression files
//!   are read or written).
//! * `PROPTEST_CASES` overrides the default case count (explicit
//!   `with_cases` values always win).

#![forbid(unsafe_code)]

/// Configuration, RNG, errors, and the case-driver loop.
pub mod test_runner {
    use rand::rngs::StdRng;
    use rand::{RngCore, SeedableRng};
    use std::fmt;
    use std::panic::{catch_unwind, resume_unwind, AssertUnwindSafe};

    /// Per-test configuration (`ProptestConfig` in real proptest).
    #[derive(Debug, Clone)]
    pub struct Config {
        /// Number of generated cases per property.
        pub cases: u32,
    }

    impl Default for Config {
        fn default() -> Self {
            let cases = std::env::var("PROPTEST_CASES")
                .ok()
                .and_then(|v| v.parse().ok())
                .unwrap_or(256);
            Config { cases }
        }
    }

    impl Config {
        /// Configuration running `cases` cases per property.
        #[must_use]
        pub fn with_cases(cases: u32) -> Self {
            Config { cases }
        }
    }

    /// Why a single test case did not pass.
    #[derive(Debug, Clone, PartialEq, Eq)]
    pub enum TestCaseError {
        /// An assertion failed; the property is falsified.
        Fail(String),
        /// The generated input was rejected (does not falsify the property).
        Reject(String),
    }

    impl TestCaseError {
        /// A failing case with the given reason.
        pub fn fail(reason: impl Into<String>) -> Self {
            TestCaseError::Fail(reason.into())
        }

        /// A rejected (skipped) case with the given reason.
        pub fn reject(reason: impl Into<String>) -> Self {
            TestCaseError::Reject(reason.into())
        }
    }

    impl fmt::Display for TestCaseError {
        fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
            match self {
                TestCaseError::Fail(r) => write!(f, "{r}"),
                TestCaseError::Reject(r) => write!(f, "input rejected: {r}"),
            }
        }
    }

    /// `Result` of a test-case body.
    pub type TestCaseResult = Result<(), TestCaseError>;

    /// The deterministic RNG handed to strategies.
    #[derive(Debug, Clone)]
    pub struct TestRng(StdRng);

    impl TestRng {
        /// RNG for case number `case` of the named test.
        #[must_use]
        pub fn for_case(test_name: &str, case: u64) -> Self {
            // FNV-1a over the test name, mixed with the case index, so every
            // test explores its own deterministic input sequence.
            let mut h: u64 = 0xcbf2_9ce4_8422_2325;
            for b in test_name.bytes() {
                h ^= u64::from(b);
                h = h.wrapping_mul(0x0000_0100_0000_01B3);
            }
            TestRng(StdRng::seed_from_u64(
                h ^ case.wrapping_mul(0x9E37_79B9_7F4A_7C15),
            ))
        }
    }

    impl RngCore for TestRng {
        fn next_u64(&mut self) -> u64 {
            self.0.next_u64()
        }
    }

    /// Drives the case loop for one property; the closure generates inputs
    /// and returns (rendered inputs, case body).
    ///
    /// # Panics
    ///
    /// Panics (failing the enclosing `#[test]`) when any case fails.
    pub fn run_cases<F>(config: &Config, test_name: &str, mut make_case: F)
    where
        F: FnMut(&mut TestRng) -> (String, Box<dyn FnOnce() -> TestCaseResult>),
    {
        for case in 0..u64::from(config.cases) {
            let mut rng = TestRng::for_case(test_name, case);
            let (inputs, body) = make_case(&mut rng);
            match catch_unwind(AssertUnwindSafe(body)) {
                Ok(Ok(())) | Ok(Err(TestCaseError::Reject(_))) => {}
                Ok(Err(TestCaseError::Fail(reason))) => {
                    panic!(
                        "proptest: {test_name} failed at case {case}: {reason}\n\
                         minimal shrinking unavailable in the offline shim; inputs:\n{inputs}"
                    );
                }
                Err(panic_payload) => {
                    eprintln!("proptest: {test_name} panicked at case {case}; inputs:\n{inputs}");
                    resume_unwind(panic_payload);
                }
            }
        }
    }
}

/// The [`Strategy`](strategy::Strategy) trait and combinators.
pub mod strategy {
    use crate::test_runner::TestRng;
    use rand::Rng;
    use std::fmt::Debug;
    use std::ops::{Range, RangeInclusive};

    /// A recipe for generating values of `Self::Value`.
    pub trait Strategy {
        /// The generated type.
        type Value: Debug;

        /// Draws one value.
        fn generate(&self, rng: &mut TestRng) -> Self::Value;

        /// Maps generated values through `f`.
        fn prop_map<O: Debug, F: Fn(Self::Value) -> O>(self, f: F) -> Map<Self, F>
        where
            Self: Sized,
        {
            Map { base: self, f }
        }

        /// Generates a value, then generates from the strategy `f` builds
        /// from it (dependent generation).
        fn prop_flat_map<S: Strategy, F: Fn(Self::Value) -> S>(self, f: F) -> FlatMap<Self, F>
        where
            Self: Sized,
        {
            FlatMap { base: self, f }
        }

        /// Type-erases the strategy (used by [`prop_oneof!`](crate::prop_oneof)).
        fn boxed(self) -> BoxedStrategy<Self::Value>
        where
            Self: Sized + 'static,
        {
            BoxedStrategy(Box::new(self))
        }
    }

    /// Object-safe form of [`Strategy`] for boxing.
    trait DynStrategy<T> {
        fn dyn_generate(&self, rng: &mut TestRng) -> T;
    }

    impl<S: Strategy> DynStrategy<S::Value> for S {
        fn dyn_generate(&self, rng: &mut TestRng) -> S::Value {
            self.generate(rng)
        }
    }

    /// A type-erased strategy.
    pub struct BoxedStrategy<T>(Box<dyn DynStrategy<T>>);

    impl<T: Debug> Strategy for BoxedStrategy<T> {
        type Value = T;
        fn generate(&self, rng: &mut TestRng) -> T {
            self.0.dyn_generate(rng)
        }
    }

    /// Always generates a clone of the given value.
    #[derive(Debug, Clone)]
    pub struct Just<T: Clone + Debug>(pub T);

    impl<T: Clone + Debug> Strategy for Just<T> {
        type Value = T;
        fn generate(&self, _rng: &mut TestRng) -> T {
            self.0.clone()
        }
    }

    /// Strategy returned by [`Strategy::prop_map`].
    pub struct Map<S, F> {
        base: S,
        f: F,
    }

    impl<S: Strategy, O: Debug, F: Fn(S::Value) -> O> Strategy for Map<S, F> {
        type Value = O;
        fn generate(&self, rng: &mut TestRng) -> O {
            (self.f)(self.base.generate(rng))
        }
    }

    /// Strategy returned by [`Strategy::prop_flat_map`].
    pub struct FlatMap<S, F> {
        base: S,
        f: F,
    }

    impl<S: Strategy, S2: Strategy, F: Fn(S::Value) -> S2> Strategy for FlatMap<S, F> {
        type Value = S2::Value;
        fn generate(&self, rng: &mut TestRng) -> S2::Value {
            (self.f)(self.base.generate(rng)).generate(rng)
        }
    }

    /// Uniform choice between boxed strategies of a common value type.
    pub struct Union<T> {
        options: Vec<BoxedStrategy<T>>,
    }

    impl<T: Debug> Union<T> {
        /// A union over the given options.
        ///
        /// # Panics
        ///
        /// Panics if `options` is empty.
        #[must_use]
        pub fn new(options: Vec<BoxedStrategy<T>>) -> Self {
            assert!(!options.is_empty(), "prop_oneof! needs at least one option");
            Union { options }
        }
    }

    impl<T: Debug> Strategy for Union<T> {
        type Value = T;
        fn generate(&self, rng: &mut TestRng) -> T {
            let k = rng.gen_range(0..self.options.len());
            self.options[k].generate(rng)
        }
    }

    macro_rules! impl_range_strategy {
        ($($t:ty),+) => {$(
            impl Strategy for Range<$t> {
                type Value = $t;
                fn generate(&self, rng: &mut TestRng) -> $t {
                    rng.gen_range(self.clone())
                }
            }
            impl Strategy for RangeInclusive<$t> {
                type Value = $t;
                fn generate(&self, rng: &mut TestRng) -> $t {
                    rng.gen_range(self.clone())
                }
            }
        )+};
    }

    impl_range_strategy!(usize, u8, u16, u32, u64, i8, i16, i32, i64, f64);

    macro_rules! impl_tuple_strategy {
        ($($s:ident),+) => {
            impl<$($s: Strategy),+> Strategy for ($($s,)+) {
                type Value = ($($s::Value,)+);
                fn generate(&self, rng: &mut TestRng) -> Self::Value {
                    #[allow(non_snake_case)]
                    let ($($s,)+) = self;
                    ($($s.generate(rng),)+)
                }
            }
        };
    }

    impl_tuple_strategy!(A);
    impl_tuple_strategy!(A, B);
    impl_tuple_strategy!(A, B, C);
    impl_tuple_strategy!(A, B, C, D);
    impl_tuple_strategy!(A, B, C, D, E);
    impl_tuple_strategy!(A, B, C, D, E, G);
    impl_tuple_strategy!(A, B, C, D, E, G, H);
    impl_tuple_strategy!(A, B, C, D, E, G, H, I);

    /// Strategy for `any::<bool>()`.
    #[derive(Debug, Clone, Copy)]
    pub struct AnyBool;

    impl Strategy for AnyBool {
        type Value = bool;
        fn generate(&self, rng: &mut TestRng) -> bool {
            rng.gen::<bool>()
        }
    }
}

/// `any::<T>()` support.
pub mod arbitrary {
    use crate::strategy::{AnyBool, Strategy};
    use std::fmt::Debug;

    /// Types with a canonical strategy.
    pub trait Arbitrary: Sized + Debug {
        /// That canonical strategy.
        type Strategy: Strategy<Value = Self>;
        /// Builds the canonical strategy.
        fn arbitrary() -> Self::Strategy;
    }

    impl Arbitrary for bool {
        type Strategy = AnyBool;
        fn arbitrary() -> AnyBool {
            AnyBool
        }
    }

    /// The canonical strategy for `T` (`any::<bool>()` and friends).
    #[must_use]
    pub fn any<T: Arbitrary>() -> T::Strategy {
        T::arbitrary()
    }
}

/// Collection strategies (`proptest::collection::vec`).
pub mod collection {
    use crate::strategy::Strategy;
    use crate::test_runner::TestRng;
    use rand::Rng;
    use std::ops::{Range, RangeInclusive};

    /// Inclusive size bounds for generated collections.
    #[derive(Debug, Clone, Copy)]
    pub struct SizeRange {
        lo: usize,
        hi: usize,
    }

    impl From<usize> for SizeRange {
        fn from(n: usize) -> Self {
            SizeRange { lo: n, hi: n }
        }
    }

    impl From<Range<usize>> for SizeRange {
        fn from(r: Range<usize>) -> Self {
            assert!(r.start < r.end, "empty vec size range");
            SizeRange {
                lo: r.start,
                hi: r.end - 1,
            }
        }
    }

    impl From<RangeInclusive<usize>> for SizeRange {
        fn from(r: RangeInclusive<usize>) -> Self {
            assert!(r.start() <= r.end(), "empty vec size range");
            SizeRange {
                lo: *r.start(),
                hi: *r.end(),
            }
        }
    }

    /// Strategy generating `Vec`s of `element` values.
    pub struct VecStrategy<S> {
        element: S,
        size: SizeRange,
    }

    /// `Vec` strategy with element strategy `element` and the given length
    /// bounds (an exact `usize`, `lo..hi`, or `lo..=hi`).
    pub fn vec<S: Strategy>(element: S, size: impl Into<SizeRange>) -> VecStrategy<S> {
        VecStrategy {
            element,
            size: size.into(),
        }
    }

    impl<S: Strategy> Strategy for VecStrategy<S> {
        type Value = Vec<S::Value>;
        fn generate(&self, rng: &mut TestRng) -> Vec<S::Value> {
            let n = rng.gen_range(self.size.lo..=self.size.hi);
            (0..n).map(|_| self.element.generate(rng)).collect()
        }
    }
}

/// The glob-import surface mirroring `proptest::prelude::*`.
pub mod prelude {
    pub use crate::arbitrary::{any, Arbitrary};
    pub use crate::strategy::{BoxedStrategy, Just, Strategy, Union};
    pub use crate::test_runner::{
        Config as ProptestConfig, TestCaseError, TestCaseResult, TestRng,
    };
    pub use crate::{prop_assert, prop_assert_eq, prop_assert_ne, prop_oneof, proptest};
}

/// Defines deterministic property tests; see the crate docs for the
/// supported subset.
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($cfg:expr)] $($rest:tt)*) => {
        $crate::__proptest_items!{ ($cfg) $($rest)* }
    };
    ($($rest:tt)*) => {
        $crate::__proptest_items!{ ($crate::test_runner::Config::default()) $($rest)* }
    };
}

#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_items {
    (($cfg:expr)) => {};
    (($cfg:expr)
     $(#[$meta:meta])*
     fn $name:ident($($arg:ident in $strat:expr),+ $(,)?) $body:block
     $($rest:tt)*
    ) => {
        $(#[$meta])*
        fn $name() {
            let __config = $cfg;
            $crate::test_runner::run_cases(
                &__config,
                concat!(module_path!(), "::", stringify!($name)),
                |__rng| {
                    $(let $arg = $crate::strategy::Strategy::generate(&($strat), __rng);)+
                    let __inputs = format!(
                        concat!($("  ", stringify!($arg), " = {:?}\n",)+),
                        $(&$arg),+
                    );
                    let __body: ::std::boxed::Box<
                        dyn FnOnce() -> $crate::test_runner::TestCaseResult,
                    > = ::std::boxed::Box::new(move || {
                        $body
                        Ok(())
                    });
                    (__inputs, __body)
                },
            );
        }
        $crate::__proptest_items!{ ($cfg) $($rest)* }
    };
}

/// `prop_assert!(cond)` / `prop_assert!(cond, "format", ...)`.
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr) => {
        $crate::prop_assert!($cond, concat!("assertion failed: ", stringify!($cond)))
    };
    ($cond:expr, $($fmt:tt)*) => {
        if !$cond {
            return ::std::result::Result::Err(
                $crate::test_runner::TestCaseError::fail(format!($($fmt)*)),
            );
        }
    };
}

/// `prop_assert_eq!(left, right)` with optional format message.
#[macro_export]
macro_rules! prop_assert_eq {
    ($a:expr, $b:expr $(,)?) => {{
        let (__a, __b) = (&$a, &$b);
        $crate::prop_assert!(
            *__a == *__b,
            "assertion failed: `{:?}` == `{:?}`", __a, __b
        );
    }};
    ($a:expr, $b:expr, $($fmt:tt)*) => {{
        let (__a, __b) = (&$a, &$b);
        $crate::prop_assert!(*__a == *__b, $($fmt)*);
    }};
}

/// `prop_assert_ne!(left, right)` with optional format message.
#[macro_export]
macro_rules! prop_assert_ne {
    ($a:expr, $b:expr $(,)?) => {{
        let (__a, __b) = (&$a, &$b);
        $crate::prop_assert!(
            *__a != *__b,
            "assertion failed: `{:?}` != `{:?}`", __a, __b
        );
    }};
    ($a:expr, $b:expr, $($fmt:tt)*) => {{
        let (__a, __b) = (&$a, &$b);
        $crate::prop_assert!(*__a != *__b, $($fmt)*);
    }};
}

/// Uniform choice between strategies: `prop_oneof![s1, s2, ...]`.
#[macro_export]
macro_rules! prop_oneof {
    ($($strat:expr),+ $(,)?) => {
        $crate::strategy::Union::new(vec![
            $($crate::strategy::Strategy::boxed($strat)),+
        ])
    };
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(64))]

        #[test]
        fn ranges_stay_in_bounds(x in 3usize..10, y in -2i32..=2, z in 0.0f64..1.0) {
            prop_assert!((3..10).contains(&x));
            prop_assert!((-2..=2).contains(&y));
            prop_assert!((0.0..1.0).contains(&z));
        }

        #[test]
        fn vec_and_tuple_strategies(
            v in crate::collection::vec((0usize..5, 0.0f64..1.0), 2..6),
            flag in any::<bool>(),
        ) {
            prop_assert!(v.len() >= 2 && v.len() < 6);
            for (a, b) in &v {
                prop_assert!(*a < 5 && (0.0..1.0).contains(b));
            }
            // Exercise the bool strategy; a bool always converts to 0 or 1.
            prop_assert!(u8::from(flag) <= 1);
        }

        #[test]
        fn combinators_compose(
            n in (1usize..4).prop_flat_map(|n| {
                crate::collection::vec(Just(n), n..=n)
            }),
            label in prop_oneof![Just("a"), Just("b")],
        ) {
            prop_assert!(!n.is_empty() && n.len() == n[0]);
            prop_assert!(label == "a" || label == "b");
        }
    }

    #[test]
    fn deterministic_across_runs() {
        use crate::strategy::Strategy;
        let run = || {
            let mut rng = TestRng::for_case("proptest::shim", 3);
            crate::collection::vec(0usize..100, 5..=5).generate(&mut rng)
        };
        assert_eq!(run(), run());
    }
}
