#!/usr/bin/env bash
# Regenerates the benchmark snapshots:
#  - BENCH_MILP.json: warm-start vs cold branch-and-bound node throughput
#    plus model-strengthening node reduction and end-to-end speedup on the
#    seeded MILP instance set (crates/fp-bench/src/bin/milp_snapshot.rs).
#  - BENCH_SERVE.json: the event-driven front end vs the original
#    thread-per-connection server on a 1000-connection 50%-duplicate
#    workload, plus the overload/load-shed accounting leg
#    (crates/fp-bench/src/bin/serve_snapshot.rs).
set -euo pipefail
cd "$(dirname "$0")/.."

export CARGO_NET_OFFLINE=true
milp_out="${1:-BENCH_MILP.json}"
serve_out="${2:-BENCH_SERVE.json}"

cargo run --release -q -p fp-bench --bin milp_snapshot -- "$milp_out"
cargo run --release -q -p fp-bench --bin serve_snapshot -- "$serve_out"
