#!/usr/bin/env bash
# Regenerates the benchmark snapshots:
#  - BENCH_MILP.json: warm-start vs cold branch-and-bound node throughput
#    plus model-strengthening node reduction and end-to-end speedup on the
#    seeded MILP instance set (crates/fp-bench/src/bin/milp_snapshot.rs).
#  - BENCH_SERVE.json: the event-driven front end vs the original
#    thread-per-connection server on a 1000-connection 50%-duplicate
#    workload, plus the overload/load-shed accounting leg
#    (crates/fp-bench/src/bin/serve_snapshot.rs).
#  - BENCH_GEOM.json: spatial-indexing impact on the placement hot paths —
#    pruned vs all-pairs analytic overlap gradient, R-tree vs brute
#    legality probes, and end-to-end analytic wall-clock across the
#    ami33/ami49-class/GSRC-style scale decks up to n = 300
#    (crates/fp-bench/src/bin/geom_snapshot.rs).
set -euo pipefail
cd "$(dirname "$0")/.."

export CARGO_NET_OFFLINE=true
milp_out="${1:-BENCH_MILP.json}"
serve_out="${2:-BENCH_SERVE.json}"
geom_out="${3:-BENCH_GEOM.json}"

cargo run --release -q -p fp-bench --bin milp_snapshot -- "$milp_out"
cargo run --release -q -p fp-bench --bin serve_snapshot -- "$serve_out"
cargo run --release -q -p fp-bench --bin geom_snapshot -- "$geom_out"
