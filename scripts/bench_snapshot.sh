#!/usr/bin/env bash
# Regenerates BENCH_MILP.json: warm-start vs cold branch-and-bound node
# throughput plus model-strengthening node reduction and end-to-end
# speedup on the seeded MILP instance set (see
# crates/fp-bench/src/bin/milp_snapshot.rs for the methodology).
set -euo pipefail
cd "$(dirname "$0")/.."

export CARGO_NET_OFFLINE=true
out="${1:-BENCH_MILP.json}"

cargo run --release -q -p fp-bench --bin milp_snapshot -- "$out"
