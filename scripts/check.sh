#!/usr/bin/env bash
# Tier-1 verification for the workspace: formatting, lints, full test suite.
# The build environment is offline; CARGO_NET_OFFLINE keeps cargo from
# stalling on the unreachable registry (all external deps are vendored
# shims under vendor/, see DESIGN.md §7).
set -euo pipefail
cd "$(dirname "$0")/.."

export CARGO_NET_OFFLINE=true

echo "== cargo fmt --check"
cargo fmt --all --check

echo "== cargo clippy (deny warnings)"
cargo clippy --workspace --all-targets -- -D warnings

echo "== cargo test"
cargo test --workspace -q

# The deterministic chaos/fault-injection suite for the event-driven
# front end (slow-loris drips, half-closed sockets, mid-job disconnects,
# oversized frames, seeded flaky-client swarm) is tier-1: run it by name
# so a filtered workspace test run can never silently skip it.
echo "== fp-serve chaos suite"
cargo test -q -p fp-serve --test chaos

echo "== cargo bench --no-run (benches must keep compiling)"
cargo bench --workspace --no-run -q

# Observability: an end-to-end traced run must produce schema-valid JSONL
# (each line parses as a flat object carrying numeric `seq` plus string
# `phase`/`event`) and a non-empty per-phase summary. The trace suites
# themselves (trace_invariants, trace_regression, traced_parallel) already
# ran under `cargo test --workspace` above.
echo "== trace schema sanity (fp-cli --trace | validate_trace)"
trace_file="$(mktemp --suffix=.jsonl)"
summary_file="$(mktemp)"
trap 'rm -f "$trace_file" "$summary_file"' EXIT
cargo run --release -q -p fp-cli -- --ami33 --trace "$trace_file" --summary \
    > "$summary_file"
cargo run --release -q -p fp-obs --example validate_trace -- "$trace_file"
# At stock budgets the release pipeline must never degrade to greedy
# (the debug-build equivalent pin lives in fp-core's trace_regression).
grep -q "0 greedy fallback" "$summary_file" \
    || { echo "check.sh: ami33 run reported greedy fallbacks"; exit 1; }
# Warm-start smoke: the branch-and-bound trees behind an ami33 run are
# deep enough that at least one node must have reused its parent basis.
# All-cold means the warm path silently stopped engaging (the ratio pin
# lives in fp-core's trace_regression).
grep -q '"warm":true' "$trace_file" \
    || { echo "check.sh: ami33 trace has no warm node solves"; exit 1; }
# Strengthening smoke: every solve emits a Presolve event, and the ami33
# obstacle big-Ms leave enough slack that at least one step must report
# tightened rows. All-zero means the strengthening layer silently stopped
# engaging (the equivalence pins live in fp-milp's strengthen_equivalence).
grep -Eq '"event":"Presolve".*"rows_tightened":[1-9]' "$trace_file" \
    || { echo "check.sh: ami33 trace has no Presolve event with tightened rows"; exit 1; }
# Sparse-kernel smoke: validate_trace above already requires every BnbNode
# line to carry the numeric `refactors`/`etas` factorization fields; here
# additionally require that some node actually refactorized — all-zero
# means the solver silently fell back to the dense tableau (the
# equivalence pins live in fp-milp's sparse_equivalence).
grep -Eq '"event":"BnbNode".*"refactors":[1-9]' "$trace_file" \
    || { echo "check.sh: ami33 trace shows no LU refactorizations"; exit 1; }

# MILP benchmark snapshot smoke: the snapshot binary must run end to end
# and emit the dense-vs-sparse comparison legs BENCH_MILP.json is diffed
# against (per-instance `sparse` objects plus the two headline medians).
echo "== milp_snapshot smoke"
bench_json="$(mktemp --suffix=.json)"
trap 'rm -f "$trace_file" "$summary_file" "$bench_json"' EXIT
cargo run --release -q -p fp-bench --bin milp_snapshot -- "$bench_json" \
    > /dev/null
for key in '"sparse"' '"pivot_time_speedup"' '"median_sparse_pivot_time_speedup"' '"median_sparse_speedup"'; do
    grep -q "$key" "$bench_json" \
        || { echo "check.sh: milp_snapshot output missing $key"; exit 1; }
done

# Geometry benchmark snapshot smoke: the spatial-indexing snapshot must
# run end to end on the sub-100-module decks (the full 300-module sweep
# stays in scripts/bench_snapshot.sh) and emit both headline medians
# BENCH_GEOM.json is diffed against.
echo "== geom_snapshot smoke (--max-n 100)"
geom_json="$(mktemp --suffix=.json)"
trap 'rm -f "$trace_file" "$summary_file" "$bench_json" "$geom_json"' EXIT
cargo run --release -q -p fp-bench --bin geom_snapshot -- "$geom_json" --max-n 100 \
    > /dev/null
[ -s "$geom_json" ] || { echo "check.sh: geom_snapshot wrote no output"; exit 1; }
for key in '"median_gradient_speedup"' '"median_overlap_speedup"'; do
    grep -q "$key" "$geom_json" \
        || { echo "check.sh: geom_snapshot output missing $key"; exit 1; }
done

# Service smoke: bring up `floorplan serve` on an ephemeral port, drive it
# with the `load` generator over a repeated instance, and require (a) every
# response accounted for and (b) the repeats answered from the solution
# cache, visible both in the load accounting and as CacheHit events in the
# service trace.
echo "== service smoke (floorplan serve / load)"
serve_log="$(mktemp)"
serve_trace="$(mktemp --suffix=.jsonl)"
load_log="$(mktemp)"
trap 'rm -f "$trace_file" "$summary_file" "$bench_json" "$geom_json" "$serve_log" "$serve_trace" "$load_log"; kill "${serve_pid:-0}" 2>/dev/null || true' EXIT
cargo build --release -q -p fp-cli
./target/release/floorplan serve --bind 127.0.0.1:0 --workers 2 \
    --trace "$serve_trace" > "$serve_log" 2>&1 &
serve_pid=$!
for _ in $(seq 1 100); do
    grep -q "serving on" "$serve_log" && break
    kill -0 "$serve_pid" 2>/dev/null || { cat "$serve_log"; exit 1; }
    sleep 0.1
done
serve_addr="$(sed -n 's/serving on \([0-9.:]*\) .*/\1/p' "$serve_log")"
[ -n "$serve_addr" ] || { echo "check.sh: serve did not report its address"; cat "$serve_log"; exit 1; }
./target/release/floorplan load --addr "$serve_addr" \
    --clients 4 --jobs 8 --modules 4 --spread 2 | tee "$load_log"
grep -q "lost 0" "$load_log" \
    || { echo "check.sh: load lost responses"; exit 1; }
grep -q "responses 32/32 ok" "$load_log" \
    || { echo "check.sh: not every load job succeeded"; exit 1; }
kill "$serve_pid" 2>/dev/null || true
wait "$serve_pid" 2>/dev/null || true
# All service trace lines must satisfy the same JSONL schema as solver
# traces, and the repeated instance must have produced at least one hit.
cargo run --release -q -p fp-obs --example validate_trace -- "$serve_trace"
grep -q '"event":"CacheHit"' "$serve_trace" \
    || { echo "check.sh: repeated instance never hit the solution cache"; exit 1; }

# Overload smoke: 200 open-loop connections, half submitting one shared
# duplicate instance, against one worker with a tiny global queue. The
# duplicates must coalesce onto in-flight solves (>=1 Coalesced event)
# and the overflow must be load-shed with a typed retry (>=1 Shed event),
# all in a schema-valid trace, with every job answered (ok or shed).
echo "== overload smoke (coalescing + load shedding)"
shed_log="$(mktemp)"
shed_trace="$(mktemp --suffix=.jsonl)"
shed_load="$(mktemp)"
trap 'rm -f "$trace_file" "$summary_file" "$bench_json" "$geom_json" "$serve_log" "$serve_trace" "$load_log" "$shed_log" "$shed_trace" "$shed_load"; kill "${serve_pid:-0}" "${shed_pid:-0}" 2>/dev/null || true' EXIT
./target/release/floorplan serve --bind 127.0.0.1:0 --workers 1 --cache 0 \
    --queue 2 --pending 64 --trace "$shed_trace" > "$shed_log" 2>&1 &
shed_pid=$!
for _ in $(seq 1 100); do
    grep -q "serving on" "$shed_log" && break
    kill -0 "$shed_pid" 2>/dev/null || { cat "$shed_log"; exit 1; }
    sleep 0.1
done
shed_addr="$(sed -n 's/serving on \([0-9.:]*\) .*/\1/p' "$shed_log")"
[ -n "$shed_addr" ] || { echo "check.sh: overload serve did not report its address"; cat "$shed_log"; exit 1; }
./target/release/floorplan load --addr "$shed_addr" \
    --clients 200 --jobs 1 --modules 4 --dup 50 --no-cache --rate 4000 \
    | tee "$shed_load"
grep -q "lost 0" "$shed_load" \
    || { echo "check.sh: overload load lost responses"; exit 1; }
kill "$shed_pid" 2>/dev/null || true
wait "$shed_pid" 2>/dev/null || true
cargo run --release -q -p fp-obs --example validate_trace -- "$shed_trace"
grep -q '"event":"Coalesced"' "$shed_trace" \
    || { echo "check.sh: duplicate instances never coalesced"; exit 1; }
grep -q '"event":"Shed"' "$shed_trace" \
    || { echo "check.sh: overload never load-shed"; exit 1; }

# Overload tail-latency pin: a fresh run of the snapshot's overload leg
# must not regress the committed BENCH_SERVE.json p99 by more than 2x
# plus a 50ms noise floor (the leg serves only a handful of jobs, so the
# floor absorbs scheduler jitter while still catching a real regression
# in how long a served job sits behind the tiny admission queue).
echo "== overload p99 pin (serve_snapshot --overload-only vs BENCH_SERVE.json)"
base_p99="$(sed -n 's/.*"overload": {[^}]*"p99_ms": \([0-9.]*\).*/\1/p' BENCH_SERVE.json)"
[ -n "$base_p99" ] || { echo "check.sh: BENCH_SERVE.json has no overload p99_ms"; exit 1; }
fresh_overload="$(cargo run --release -q -p fp-bench --bin serve_snapshot -- --overload-only)"
echo "$fresh_overload"
fresh_p99="$(printf '%s\n' "$fresh_overload" | sed -n 's/.*"p99_ms": \([0-9.]*\).*/\1/p')"
[ -n "$fresh_p99" ] || { echo "check.sh: --overload-only emitted no p99_ms"; exit 1; }
awk -v fresh="$fresh_p99" -v base="$base_p99" \
    'BEGIN { exit !(fresh <= 2 * base + 50) }' \
    || { echo "check.sh: overload p99 ${fresh_p99}ms vs snapshot ${base_p99}ms — past 2x + 50ms"; exit 1; }

# ECO smoke: serve with a trace, solve a base instance from scratch, then
# send delta jobs against it. The load accounting must show every delta
# riding the incremental path (base hits == delta jobs) and the trace must
# carry schema-valid EcoJob events reporting base_hit.
echo "== eco smoke (floorplan load --eco)"
eco_log="$(mktemp)"
eco_trace="$(mktemp --suffix=.jsonl)"
eco_load="$(mktemp)"
eco_snap="$(mktemp -u --suffix=.jsonl)"
trap 'rm -f "$trace_file" "$summary_file" "$bench_json" "$geom_json" "$serve_log" "$serve_trace" "$load_log" "$shed_log" "$shed_trace" "$shed_load" "$eco_log" "$eco_trace" "$eco_load" "$eco_snap"; kill "${serve_pid:-0}" "${shed_pid:-0}" "${eco_pid:-0}" 2>/dev/null || true' EXIT
./target/release/floorplan serve --bind 127.0.0.1:0 --workers 2 \
    --cache-file "$eco_snap" --trace "$eco_trace" > "$eco_log" 2>&1 &
eco_pid=$!
for _ in $(seq 1 100); do
    grep -q "serving on" "$eco_log" && break
    kill -0 "$eco_pid" 2>/dev/null || { cat "$eco_log"; exit 1; }
    sleep 0.1
done
eco_addr="$(sed -n 's/serving on \([0-9.:]*\) .*/\1/p' "$eco_log")"
[ -n "$eco_addr" ] || { echo "check.sh: eco serve did not report its address"; cat "$eco_log"; exit 1; }
./target/release/floorplan load --addr "$eco_addr" \
    --clients 2 --jobs 4 --modules 6 --eco 50 | tee "$eco_load"
grep -q "lost 0" "$eco_load" \
    || { echo "check.sh: eco load lost responses"; exit 1; }
grep -Eq "eco: [1-9][0-9]* delta jobs  base hits [1-9]" "$eco_load" \
    || { echo "check.sh: no delta job rode the incremental path"; exit 1; }
grep -q "scratch fallbacks 0" "$eco_load" \
    || { echo "check.sh: some delta jobs fell back to scratch"; exit 1; }
# The background persist loop must land the snapshot before any shutdown
# (a killed server never runs destructors), so wait for it, then SIGKILL.
for _ in $(seq 1 100); do
    [ -s "$eco_snap" ] && break
    sleep 0.1
done
[ -s "$eco_snap" ] \
    || { echo "check.sh: cache snapshot not written while server was live"; exit 1; }
kill -9 "$eco_pid" 2>/dev/null || true
wait "$eco_pid" 2>/dev/null || true
[ -s "$eco_snap" ] \
    || { echo "check.sh: cache snapshot lost after SIGKILL"; exit 1; }
cargo run --release -q -p fp-obs --example validate_trace -- "$eco_trace"
grep -Eq '"event":"EcoJob".*"base_hit":true' "$eco_trace" \
    || { echo "check.sh: trace has no EcoJob event with base_hit"; exit 1; }
grep -q '"event":"DeltaApply"' "$eco_trace" \
    || { echo "check.sh: trace has no DeltaApply event"; exit 1; }

# ECO speedup pin: a fresh run of the snapshot's eco leg (one 33-module
# base, single-module-edit deltas solved both ways through an in-process
# engine) must keep the median ECO-vs-scratch solve-time ratio at or
# under 0.5 and the median area within 5% of scratch. The committed
# BENCH_SERVE.json must carry the same leg.
echo "== eco speedup pin (serve_snapshot --eco-only)"
grep -q '"eco": {"modules"' BENCH_SERVE.json \
    || { echo "check.sh: BENCH_SERVE.json has no eco leg"; exit 1; }
fresh_eco="$(cargo run --release -q -p fp-bench --bin serve_snapshot -- --eco-only)"
echo "$fresh_eco"
eco_ratio="$(printf '%s\n' "$fresh_eco" | sed -n 's/.*"median_latency_ratio": \([0-9.]*\).*/\1/p')"
eco_area="$(printf '%s\n' "$fresh_eco" | sed -n 's/.*"median_area_ratio": \([0-9.]*\).*/\1/p')"
[ -n "$eco_ratio" ] && [ -n "$eco_area" ] \
    || { echo "check.sh: --eco-only emitted no ratios"; exit 1; }
awk -v r="$eco_ratio" 'BEGIN { exit !(r <= 0.5) }' \
    || { echo "check.sh: eco latency ratio ${eco_ratio} — past the 0.5 pin"; exit 1; }
awk -v a="$eco_area" 'BEGIN { exit !(a <= 1.05) }' \
    || { echo "check.sh: eco area ratio ${eco_area} — past 5% of scratch"; exit 1; }

echo "check.sh: all green"
