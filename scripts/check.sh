#!/usr/bin/env bash
# Tier-1 verification for the workspace: formatting, lints, full test suite.
# The build environment is offline; CARGO_NET_OFFLINE keeps cargo from
# stalling on the unreachable registry (all external deps are vendored
# shims under vendor/, see DESIGN.md §6).
set -euo pipefail
cd "$(dirname "$0")/.."

export CARGO_NET_OFFLINE=true

echo "== cargo fmt --check"
cargo fmt --all --check

echo "== cargo clippy (deny warnings)"
cargo clippy --workspace --all-targets -- -D warnings

echo "== cargo test"
cargo test --workspace -q

# Observability: an end-to-end traced run must produce schema-valid JSONL
# (each line parses as a flat object carrying numeric `seq` plus string
# `phase`/`event`) and a non-empty per-phase summary. The trace suites
# themselves (trace_invariants, trace_regression, traced_parallel) already
# ran under `cargo test --workspace` above.
echo "== trace schema sanity (fp-cli --trace | validate_trace)"
trace_file="$(mktemp --suffix=.jsonl)"
summary_file="$(mktemp)"
trap 'rm -f "$trace_file" "$summary_file"' EXIT
cargo run --release -q -p fp-cli -- --ami33 --trace "$trace_file" --summary \
    > "$summary_file"
cargo run --release -q -p fp-obs --example validate_trace -- "$trace_file"
# At stock budgets the release pipeline must never degrade to greedy
# (the debug-build equivalent pin lives in fp-core's trace_regression).
grep -q "0 greedy fallback" "$summary_file" \
    || { echo "check.sh: ami33 run reported greedy fallbacks"; exit 1; }

echo "check.sh: all green"
