#!/usr/bin/env bash
# Tier-1 verification for the workspace: formatting, lints, full test suite.
# The build environment is offline; CARGO_NET_OFFLINE keeps cargo from
# stalling on the unreachable registry (all external deps are vendored
# shims under vendor/, see DESIGN.md §6).
set -euo pipefail
cd "$(dirname "$0")/.."

export CARGO_NET_OFFLINE=true

echo "== cargo fmt --check"
cargo fmt --all --check

echo "== cargo clippy (deny warnings)"
cargo clippy --workspace --all-targets -- -D warnings

echo "== cargo test"
cargo test --workspace -q

echo "check.sh: all green"
