//! One-call orchestration of the full paper flow:
//! floorplan (successive augmentation) → adjust (top re-optimization +
//! §2.5 compaction) → global route → channel adjustment.

use fp_core::{improve, Floorplan, FloorplanConfig, FloorplanError, Floorplanner, RunStats};
use fp_netlist::Netlist;
use fp_route::{route, RouteConfig, RouteError, RoutingResult};
use std::error::Error;
use std::fmt;
use std::time::{Duration, Instant};

/// Error from any stage of the [`Pipeline`].
#[derive(Debug, Clone, PartialEq)]
pub enum PipelineError {
    /// Floorplanning or improvement failed.
    Floorplan(FloorplanError),
    /// Global routing failed.
    Route(RouteError),
}

impl fmt::Display for PipelineError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            PipelineError::Floorplan(e) => write!(f, "floorplan stage: {e}"),
            PipelineError::Route(e) => write!(f, "routing stage: {e}"),
        }
    }
}

impl Error for PipelineError {
    fn source(&self) -> Option<&(dyn Error + 'static)> {
        match self {
            PipelineError::Floorplan(e) => Some(e),
            PipelineError::Route(e) => Some(e),
        }
    }
}

impl From<FloorplanError> for PipelineError {
    fn from(e: FloorplanError) -> Self {
        PipelineError::Floorplan(e)
    }
}

impl From<RouteError> for PipelineError {
    fn from(e: RouteError) -> Self {
        PipelineError::Route(e)
    }
}

/// The complete output of a pipeline run.
#[derive(Debug, Clone)]
pub struct PipelineReport {
    /// The final (adjusted) floorplan.
    pub floorplan: Floorplan,
    /// Routing result, when routing was enabled.
    pub routing: Option<RoutingResult>,
    /// Augmentation statistics.
    pub stats: RunStats,
    /// End-to-end wall time.
    pub elapsed: Duration,
}

impl PipelineReport {
    /// Final chip area: post-routing (channel-adjusted) when routed,
    /// placement area otherwise.
    #[must_use]
    pub fn final_chip_area(&self) -> f64 {
        match &self.routing {
            Some(r) => r.adjustment.final_area(),
            None => self.floorplan.chip_area(),
        }
    }
}

/// Builder for the full flow (non-consuming, per C-BUILDER).
///
/// ```
/// use analytical_floorplan::Pipeline;
///
/// # fn main() -> Result<(), analytical_floorplan::PipelineError> {
/// let netlist = analytical_floorplan::netlist::generator::ProblemGenerator::new(6, 9).generate();
/// let mut pipeline = Pipeline::new();
/// pipeline.improve_rounds(2).route(Default::default());
/// # pipeline.floorplan_config(
/// #     fp_core::FloorplanConfig::default().with_step_options(
/// #         fp_milp::SolveOptions::default().with_node_limit(400)));
/// let report = pipeline.run(&netlist)?;
/// assert!(report.floorplan.is_valid());
/// assert!(report.routing.is_some());
/// # Ok(())
/// # }
/// ```
#[derive(Debug, Clone, Default)]
pub struct Pipeline {
    floorplan: FloorplanConfig,
    improve_config: Option<FloorplanConfig>,
    improve_rounds: usize,
    route: Option<RouteConfig>,
}

impl Pipeline {
    /// A pipeline with default floorplanning, no improvement rounds and no
    /// routing.
    #[must_use]
    pub fn new() -> Self {
        Pipeline {
            floorplan: FloorplanConfig::default(),
            improve_config: None,
            improve_rounds: 0,
            route: None,
        }
    }

    /// Sets the floorplanning configuration.
    pub fn floorplan_config(&mut self, config: FloorplanConfig) -> &mut Self {
        self.floorplan = config;
        self
    }

    /// Enables `rounds` of post-pass improvement (top/band re-optimization
    /// alternated with §2.5 compaction).
    pub fn improve_rounds(&mut self, rounds: usize) -> &mut Self {
        self.improve_rounds = rounds;
        self
    }

    /// Overrides the solver budget for the improvement MILPs (they benefit
    /// from a larger binary allowance than augmentation steps).
    pub fn improve_config(&mut self, config: FloorplanConfig) -> &mut Self {
        self.improve_config = Some(config);
        self
    }

    /// Enables global routing with the given configuration.
    pub fn route(&mut self, config: RouteConfig) -> &mut Self {
        self.route = Some(config);
        self
    }

    /// Runs the configured stages on `netlist`.
    ///
    /// # Errors
    ///
    /// [`PipelineError`] naming the failing stage.
    pub fn run(&self, netlist: &Netlist) -> Result<PipelineReport, PipelineError> {
        let started = Instant::now();
        let result = Floorplanner::with_config(netlist, self.floorplan.clone()).run()?;
        let mut floorplan = result.floorplan;
        if self.improve_rounds > 0 {
            let improve_cfg = self.improve_config.as_ref().unwrap_or(&self.floorplan);
            floorplan = improve(&floorplan, netlist, improve_cfg, self.improve_rounds)?;
        }
        let routing = match &self.route {
            Some(route_cfg) => Some(route(&floorplan, netlist, route_cfg)?),
            None => None,
        };
        Ok(PipelineReport {
            floorplan,
            routing,
            stats: result.stats,
            elapsed: started.elapsed(),
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use fp_milp::SolveOptions;
    use fp_netlist::generator::ProblemGenerator;

    fn fast() -> FloorplanConfig {
        FloorplanConfig::default().with_step_options(
            SolveOptions::default()
                .with_node_limit(300)
                .with_time_limit(Duration::from_millis(400)),
        )
    }

    #[test]
    fn stages_compose() {
        let nl = ProblemGenerator::new(7, 12).generate();
        let mut p = Pipeline::new();
        p.floorplan_config(fast())
            .improve_rounds(1)
            .route(RouteConfig::default());
        let report = p.run(&nl).unwrap();
        assert!(report.floorplan.is_valid());
        let routing = report.routing.as_ref().unwrap();
        assert_eq!(routing.routes.len(), nl.num_nets());
        assert!(report.final_chip_area() >= report.floorplan.chip_area() - 1e-6);
        assert!(report.elapsed > Duration::ZERO);
    }

    #[test]
    fn routing_disabled_by_default() {
        let nl = ProblemGenerator::new(5, 1).generate();
        let mut p = Pipeline::new();
        p.floorplan_config(fast());
        let report = p.run(&nl).unwrap();
        assert!(report.routing.is_none());
        assert_eq!(report.final_chip_area(), report.floorplan.chip_area());
    }

    #[test]
    fn errors_name_the_stage() {
        let nl = fp_netlist::Netlist::new("empty");
        let p = Pipeline::new();
        match p.run(&nl) {
            Err(PipelineError::Floorplan(FloorplanError::EmptyNetlist)) => {}
            other => panic!("unexpected: {other:?}"),
        }
        let e = PipelineError::from(RouteError::EmptyFloorplan);
        assert!(e.to_string().contains("routing stage"));
        assert!(std::error::Error::source(&e).is_some());
    }
}
