//! **analytical-floorplan** — a Rust reproduction of *"An Analytical
//! Approach to Floorplan Design and Optimization"* (Sutanthavibul,
//! Shragowitz, Rosen, 27th DAC, 1990).
//!
//! This facade crate re-exports the workspace so applications depend on a
//! single crate:
//!
//! | Module | Crate | Contents |
//! |---|---|---|
//! | [`milp`] | `fp-milp` | simplex + branch-and-bound MILP solver (the LINDO substitute) |
//! | [`geom`] | `fp-geom` | rectangles, skylines, §3.1 covering-rectangle decomposition |
//! | [`netlist`] | `fp-netlist` | modules, nets, orderings, generators, the ami33-equivalent benchmark |
//! | [`core`] | `fp-core` | the MILP floorplanner: formulations (2)–(8), successive augmentation, envelopes, §2.5 topology LP |
//! | [`route`] | `fp-route` | channel position graph, SP/WSP global router, channel adjustment |
//! | [`slicing`] | `fp-slicing` | Wong-Liu slicing SA baseline (the paper's §2.1 prior art) |
//! | [`viz`] | `fp-viz` | ASCII and SVG renderings |
//!
//! # Quickstart
//!
//! ```
//! use analytical_floorplan::prelude::*;
//!
//! # fn main() -> Result<(), Box<dyn std::error::Error>> {
//! let netlist = analytical_floorplan::netlist::generator::ProblemGenerator::new(6, 42).generate();
//! let config = FloorplanConfig::default();
//! # let config = config // keep the doctest quick in debug builds:
//! #     .with_step_options(analytical_floorplan::milp::SolveOptions::default().with_node_limit(400));
//! let result = Floorplanner::with_config(&netlist, config).run()?;
//! assert!(result.floorplan.is_valid());
//! let routing = route(&result.floorplan, &netlist, &RouteConfig::default())?;
//! println!("final chip area: {:.0}", routing.adjustment.final_area());
//! # Ok(())
//! # }
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub use fp_core as core;
pub use fp_geom as geom;
pub use fp_milp as milp;
pub use fp_netlist as netlist;
pub use fp_route as route;
pub use fp_slicing as slicing;
pub use fp_viz as viz;

mod pipeline;
pub use pipeline::{Pipeline, PipelineError, PipelineReport};

/// The names most applications need.
pub mod prelude {
    pub use crate::pipeline::{Pipeline, PipelineError, PipelineReport};
    pub use fp_core::{
        bottom_left, improve, optimize_topology, FloorplanConfig, FloorplanResult, Floorplanner,
        Objective, OrderingStrategy,
    };
    pub use fp_netlist::{ami33, apte9, xerox10, Module, Net, Netlist};
    pub use fp_route::{route, RouteAlgorithm, RouteConfig, RoutingMode};
    pub use fp_viz::{ascii_floorplan, svg_congestion, svg_floorplan, svg_routed};
}
