//! Net ordering, decomposition and Dijkstra routing (paper §3.2).

use crate::adjust::{adjust, ChipAdjustment};
use crate::config::{RouteAlgorithm, RouteConfig, RoutingMode};
use crate::error::RouteError;
use crate::grid::{CellId, GridEdge, RoutingGrid};
use crate::pins::{pin_anchor, pin_toward};
use fp_core::Floorplan;
use fp_geom::Point;
use fp_netlist::{NetId, Netlist};
use fp_obs::{Event, Phase};
use std::cmp::Ordering;
use std::collections::BinaryHeap;

/// One routed net.
#[derive(Debug, Clone, PartialEq)]
pub struct RoutedNet {
    /// Which net.
    pub id: NetId,
    /// Total routed length (grid path lengths plus pin offsets).
    pub length: f64,
    /// Polylines, one per two-pin segment of the net's spanning tree.
    pub paths: Vec<Vec<Point>>,
    /// For nets with a `max_length`: whether the routed length met it.
    pub within_limit: Option<bool>,
}

/// The full routing outcome.
#[derive(Debug, Clone, PartialEq)]
pub struct RoutingResult {
    /// Per-net routes, in netlist order.
    pub routes: Vec<RoutedNet>,
    /// Sum of all net lengths — the paper's "Wire Length" column.
    pub total_wirelength: f64,
    /// Channel adjustment and final chip area — Table 3's "Chip Area".
    pub adjustment: ChipAdjustment,
    /// The channel position graph (kept for inspection/visualization).
    pub grid: RoutingGrid,
    /// Final per-edge usage, parallel to `grid.edges()`.
    pub usage: Vec<f64>,
}

impl RoutingResult {
    /// Per-cell congestion: for every grid cell, the maximum
    /// `usage / capacity` over its incident edges (∞-free: capacity-0 edges
    /// with any usage report as `f64::INFINITY`-capped ratio 10).
    /// Returned as `(cell rectangle, ratio)` for heatmap rendering.
    #[must_use]
    pub fn cell_congestion(&self) -> Vec<(fp_geom::Rect, f64)> {
        let mut out = Vec::with_capacity(self.grid.num_cells());
        for c in 0..self.grid.num_cells() {
            let cell = CellId(c);
            let mut worst = 0.0_f64;
            for &e in self.grid.incident(cell) {
                let edge = &self.grid.edges()[e];
                let used = self.usage[e];
                let ratio = if edge.capacity > 0.0 {
                    used / edge.capacity
                } else if used > 0.0 {
                    10.0 // blocked edge in use: saturated
                } else {
                    0.0
                };
                worst = worst.max(ratio);
            }
            out.push((self.grid.cell_rect(cell), worst.min(10.0)));
        }
        out
    }

    /// Wirelength weighted by net weights.
    #[must_use]
    pub fn weighted_wirelength(&self, netlist: &Netlist) -> f64 {
        self.routes
            .iter()
            .map(|r| r.length * netlist.net(r.id).weight())
            .sum()
    }

    /// Number of critical nets that missed their length limit.
    #[must_use]
    pub fn missed_limits(&self) -> usize {
        self.routes
            .iter()
            .filter(|r| r.within_limit == Some(false))
            .count()
    }
}

/// Globally routes `netlist` on `floorplan`.
///
/// Nets are routed in descending criticality (ties: descending weight, then
/// netlist order) — "nets with the tight timing requirements are routed
/// first". Multi-pin nets are decomposed into two-pin segments along a
/// minimum spanning tree of their generalized pins.
///
/// # Errors
///
/// * [`RouteError::EmptyFloorplan`] / [`RouteError::DegenerateChip`],
/// * [`RouteError::UnplacedModule`] if a net references a module missing
///   from the floorplan.
pub fn route(
    floorplan: &Floorplan,
    netlist: &Netlist,
    config: &RouteConfig,
) -> Result<RoutingResult, RouteError> {
    let grid = RoutingGrid::build(floorplan, config)?;
    let mut usage = vec![0.0_f64; grid.num_edges()];
    config.tracer.emit(
        Phase::Route,
        Event::RouteStart {
            nets: netlist.num_nets(),
            cells: grid.num_cells(),
            edges: grid.num_edges(),
        },
    );

    // Net routing order per the configured strategy.
    let mut order: Vec<NetId> = netlist.nets().map(|(id, _)| id).collect();
    let bbox_estimate = |id: NetId| -> f64 {
        let net = netlist.net(id);
        let mut min = Point::new(f64::INFINITY, f64::INFINITY);
        let mut max = Point::new(f64::NEG_INFINITY, f64::NEG_INFINITY);
        for &m in net.modules() {
            if let Some(p) = floorplan.placement(m) {
                let c = p.rect.center();
                min = Point::new(min.x.min(c.x), min.y.min(c.y));
                max = Point::new(max.x.max(c.x), max.y.max(c.y));
            }
        }
        if min.x.is_finite() {
            (max.x - min.x) + (max.y - min.y)
        } else {
            0.0
        }
    };
    match config.ordering {
        crate::NetOrdering::CriticalityFirst => order.sort_by(|&a, &b| {
            let (na, nb) = (netlist.net(a), netlist.net(b));
            nb.criticality()
                .total_cmp(&na.criticality())
                .then(nb.weight().total_cmp(&na.weight()))
                .then(a.cmp(&b))
        }),
        crate::NetOrdering::ShortestFirst => {
            order.sort_by(|&a, &b| {
                bbox_estimate(a)
                    .total_cmp(&bbox_estimate(b))
                    .then(a.cmp(&b))
            });
        }
        crate::NetOrdering::LongestFirst => {
            order.sort_by(|&a, &b| {
                bbox_estimate(b)
                    .total_cmp(&bbox_estimate(a))
                    .then(a.cmp(&b))
            });
        }
        crate::NetOrdering::Netlist => {}
    }

    let mut routes: Vec<Option<RoutedNet>> = vec![None; netlist.num_nets()];
    for id in order {
        let net = netlist.net(id);
        // Collect placements (validating all members are placed).
        let mut members = Vec::with_capacity(net.degree());
        for &m in net.modules() {
            let placed = floorplan
                .placement(m)
                .ok_or_else(|| RouteError::UnplacedModule {
                    net: net.name().to_string(),
                    module: netlist.module(m).name().to_string(),
                })?;
            members.push(placed);
        }
        if members.len() < 2 {
            config.tracer.emit(
                Phase::Route,
                Event::RouteNet {
                    net: id.index(),
                    length: 0.0,
                    segments: 0,
                },
            );
            routes[id.index()] = Some(RoutedNet {
                id,
                length: 0.0,
                paths: Vec::new(),
                within_limit: net.max_length().map(|_| true),
            });
            continue;
        }

        // Generalized pins facing the net centroid.
        let centroid = {
            let mut cx = 0.0;
            let mut cy = 0.0;
            for p in &members {
                let c = p.rect.center();
                cx += c.x;
                cy += c.y;
            }
            Point::new(cx / members.len() as f64, cy / members.len() as f64)
        };
        // Pins plus their routing anchors (nudged outside the module so the
        // source/target cells are channel cells, not module interiors).
        let (chip_w, chip_h) = (floorplan.chip_width(), floorplan.chip_height());
        let pins: Vec<(Point, Point)> = members
            .iter()
            .map(|p| {
                let (side, pin) = pin_toward(p, centroid);
                (pin, pin_anchor(side, pin, chip_w, chip_h))
            })
            .collect();

        // Two-pin decomposition: Prim MST over the pins.
        let pin_points: Vec<Point> = pins.iter().map(|&(pin, _)| pin).collect();
        let tree = prim_mst(&pin_points);

        let mut length = 0.0;
        let mut paths = Vec::with_capacity(tree.len());
        for (a, b) in tree {
            let (seg_len, path) = route_segment(&grid, &usage, config, pins[a], pins[b])
                .ok_or_else(|| RouteError::Unroutable {
                    net: net.name().to_string(),
                })?;
            // Commit usage along the path edges.
            for &edge_idx in &path.edges {
                usage[edge_idx] += 1.0;
            }
            length += seg_len;
            paths.push(path.points);
        }

        config.tracer.emit(
            Phase::Route,
            Event::RouteNet {
                net: id.index(),
                length,
                segments: paths.len(),
            },
        );
        routes[id.index()] = Some(RoutedNet {
            id,
            length,
            paths,
            within_limit: net.max_length().map(|limit| length <= limit + 1e-9),
        });
    }

    let adjustment = adjust(
        &grid,
        &usage,
        config,
        floorplan.chip_width(),
        floorplan.chip_height(),
    );
    config.tracer.emit(
        Phase::Route,
        Event::ChannelAdjust {
            extra_width: adjustment.extra_width,
            extra_height: adjustment.extra_height,
            overflowed_edges: adjustment.overflowed_edges,
        },
    );
    let routes: Vec<RoutedNet> = routes
        .into_iter()
        .map(|r| r.expect("every net routed"))
        .collect();
    let total_wirelength = routes.iter().map(|r| r.length).sum();
    Ok(RoutingResult {
        routes,
        total_wirelength,
        adjustment,
        grid,
        usage,
    })
}

/// Prim's MST over points with Manhattan distance; returns tree edges as
/// index pairs.
fn prim_mst(points: &[Point]) -> Vec<(usize, usize)> {
    let n = points.len();
    let mut in_tree = vec![false; n];
    let mut best_dist = vec![f64::INFINITY; n];
    let mut best_from = vec![0usize; n];
    in_tree[0] = true;
    for k in 1..n {
        best_dist[k] = points[0].manhattan(&points[k]);
    }
    let mut edges = Vec::with_capacity(n.saturating_sub(1));
    for _ in 1..n {
        let next = (0..n)
            .filter(|&k| !in_tree[k])
            .min_by(|&a, &b| best_dist[a].total_cmp(&best_dist[b]))
            .expect("some node outside tree");
        edges.push((best_from[next], next));
        in_tree[next] = true;
        for k in 0..n {
            if !in_tree[k] {
                let d = points[next].manhattan(&points[k]);
                if d < best_dist[k] {
                    best_dist[k] = d;
                    best_from[k] = next;
                }
            }
        }
    }
    edges
}

/// A found path: polyline points, edge indices, for usage commitment.
struct FoundPath {
    points: Vec<Point>,
    edges: Vec<usize>,
}

#[derive(PartialEq)]
struct HeapItem {
    dist: f64,
    cell: CellId,
}

impl Eq for HeapItem {}
impl PartialOrd for HeapItem {
    fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}
impl Ord for HeapItem {
    fn cmp(&self, other: &Self) -> Ordering {
        // Min-heap via reversed comparison.
        other.dist.total_cmp(&self.dist)
    }
}

fn edge_cost(e: &GridEdge, used: f64, config: &RouteConfig, soft_blockage: bool) -> f64 {
    let mut cost = e.length;
    if soft_blockage && e.touches_blockage {
        cost *= config.blockage_penalty;
    }
    if config.algorithm == RouteAlgorithm::WeightedShortestPath {
        let over = (used + 1.0 - e.capacity).max(0.0);
        if over > 0.0 {
            cost *= 1.0 + config.penalty * over / e.capacity.max(1.0);
        }
    }
    cost
}

/// Routes one two-pin segment. Around-the-cell mode first tries **hard**
/// blockage — module interiors are impassable except as escape hatches next
/// to the two pins (wires physically cannot cross macros). Only when the
/// pins are sealed off (fully enclosed pockets) does it fall back to soft
/// blockage so routing always completes; those crossings then show up as
/// overflow and drive the channel adjustment.
///
/// Returns `None` when even the fully-relaxed grid has no path — impossible
/// on grids from [`RoutingGrid::build`] (connected by construction), but
/// propagated as [`RouteError::Unroutable`] by the caller rather than
/// panicking on a malformed grid.
fn route_segment(
    grid: &RoutingGrid,
    usage: &[f64],
    config: &RouteConfig,
    from: (Point, Point),
    to: (Point, Point),
) -> Option<(f64, FoundPath)> {
    if config.mode == RoutingMode::AroundTheCell {
        if let Some(found) = dijkstra(grid, usage, config, from, to, Blockage::Hard) {
            return Some(found);
        }
        return dijkstra(grid, usage, config, from, to, Blockage::Soft);
    }
    dijkstra(grid, usage, config, from, to, Blockage::Free)
}

#[derive(PartialEq, Clone, Copy)]
enum Blockage {
    /// Blocked edges are impassable except adjacent to source/target.
    Hard,
    /// Blocked edges passable at `blockage_penalty` times the cost.
    Soft,
    /// No blockage at all (over-the-cell technology).
    Free,
}

/// Dijkstra between two `(pin, anchor)` pairs: the anchors select the
/// source/target cells, the pins terminate the polyline. Returns the
/// geometric length (not the penalized cost) and the path, or `None` when
/// the target is unreachable under hard blockage.
fn dijkstra(
    grid: &RoutingGrid,
    usage: &[f64],
    config: &RouteConfig,
    (from, from_anchor): (Point, Point),
    (to, to_anchor): (Point, Point),
    blockage: Blockage,
) -> Option<(f64, FoundPath)> {
    let source = grid.cell_at(from_anchor);
    let target = grid.cell_at(to_anchor);
    if source == target {
        return Some((
            from.manhattan(&to),
            FoundPath {
                points: vec![from, to],
                edges: Vec::new(),
            },
        ));
    }

    let n = grid.num_cells();
    let mut dist = vec![f64::INFINITY; n];
    let mut prev_edge: Vec<Option<usize>> = vec![None; n];
    let mut heap = BinaryHeap::new();
    dist[source.0] = 0.0;
    heap.push(HeapItem {
        dist: 0.0,
        cell: source,
    });

    let mut reached = false;
    while let Some(HeapItem { dist: d, cell }) = heap.pop() {
        if cell == target {
            reached = true;
            break;
        }
        if d > dist[cell.0] + 1e-12 {
            continue;
        }
        for &edge_idx in grid.incident(cell) {
            let e = &grid.edges()[edge_idx];
            let other = if e.a == cell { e.b } else { e.a };
            if blockage == Blockage::Hard && e.touches_blockage && cell != source && other != target
            {
                continue; // macros are physically impassable
            }
            let nd = d + edge_cost(e, usage[edge_idx], config, blockage == Blockage::Soft);
            if nd < dist[other.0] - 1e-12 {
                dist[other.0] = nd;
                prev_edge[other.0] = Some(edge_idx);
                heap.push(HeapItem {
                    dist: nd,
                    cell: other,
                });
            }
        }
    }
    if !reached && dist[target.0].is_infinite() {
        return None;
    }

    let mut edges = Vec::new();
    let mut cells = vec![target];
    let mut cur = target;
    while cur != source {
        let edge_idx = prev_edge[cur.0].expect("path was reconstructed from a reached target");
        edges.push(edge_idx);
        let e = &grid.edges()[edge_idx];
        cur = if e.a == cur { e.b } else { e.a };
        cells.push(cur);
    }
    edges.reverse();
    cells.reverse();

    let geo_len: f64 = edges.iter().map(|&i| grid.edges()[i].length).sum();
    let mut points = Vec::with_capacity(cells.len() + 2);
    points.push(from);
    points.extend(cells.iter().map(|&c| grid.cell_center(c)));
    points.push(to);
    let length = geo_len
        + from.manhattan(&grid.cell_center(source))
        + to.manhattan(&grid.cell_center(target));
    Some((length, FoundPath { points, edges }))
}

#[cfg(test)]
mod tests {
    use super::*;
    use fp_core::PlacedModule;
    use fp_geom::Rect;
    use fp_netlist::{Module, ModuleId, Net};

    fn placed(id: usize, x: f64, y: f64, w: f64, h: f64) -> PlacedModule {
        PlacedModule {
            id: ModuleId(id),
            rect: Rect::new(x, y, w, h),
            envelope: Rect::new(x, y, w, h),
            rotated: false,
        }
    }

    /// Two modules at opposite corners of a 12x8 chip with a wall between.
    fn walled_world() -> (Floorplan, Netlist) {
        let fp = Floorplan::new(
            12.0,
            vec![
                placed(0, 0.0, 0.0, 2.0, 2.0),
                placed(1, 10.0, 0.0, 2.0, 2.0),
                // wall from the floor up to y=6 in the middle
                placed(2, 5.0, 0.0, 2.0, 6.0),
                // spacer that sets chip height 8
                placed(3, 0.0, 6.0, 1.0, 2.0),
            ],
        );
        let mut nl = Netlist::new("w");
        nl.add_module(Module::rigid("a", 2.0, 2.0, false)).unwrap();
        nl.add_module(Module::rigid("b", 2.0, 2.0, false)).unwrap();
        nl.add_module(Module::rigid("wall", 2.0, 6.0, false))
            .unwrap();
        nl.add_module(Module::rigid("spacer", 1.0, 2.0, false))
            .unwrap();
        nl.add_net(Net::new("ab", [ModuleId(0), ModuleId(1)]))
            .unwrap();
        (fp, nl)
    }

    #[test]
    fn around_the_cell_detours_over_wall() {
        let (fp, nl) = walled_world();
        let around = route(&fp, &nl, &RouteConfig::default()).unwrap();
        let over = route(
            &fp,
            &nl,
            &RouteConfig::default().with_mode(RoutingMode::OverTheCell),
        )
        .unwrap();
        let (la, lo) = (around.routes[0].length, over.routes[0].length);
        assert!(
            la > lo + 3.0,
            "detour {la} should be clearly longer than direct {lo}"
        );
    }

    #[test]
    fn direct_route_close_to_manhattan() {
        let (fp, nl) = walled_world();
        let over = route(
            &fp,
            &nl,
            &RouteConfig::default().with_mode(RoutingMode::OverTheCell),
        )
        .unwrap();
        // Pin-to-pin Manhattan distance: right pin of a (2,1) to left pin of
        // b (10,1) = 8; grid quantization adds slack.
        let l = over.routes[0].length;
        assert!((8.0..14.0).contains(&l), "length {l}");
    }

    #[test]
    fn wsp_spreads_congestion() {
        // Many identical nets between two pin clusters: WSP must incur
        // fewer overflowed edges (or at least no more) than plain SP.
        let fp = Floorplan::new(
            12.0,
            vec![
                placed(0, 0.0, 0.0, 2.0, 8.0),
                placed(1, 10.0, 0.0, 2.0, 8.0),
            ],
        );
        let mut nl = Netlist::new("c");
        nl.add_module(Module::rigid("a", 2.0, 8.0, false)).unwrap();
        nl.add_module(Module::rigid("b", 2.0, 8.0, false)).unwrap();
        for k in 0..40 {
            nl.add_net(Net::new(format!("n{k}"), [ModuleId(0), ModuleId(1)]))
                .unwrap();
        }
        let coarse = RouteConfig::default().with_pitches(1.0, 1.0); // capacity ~8 per edge
        let sp = route(
            &fp,
            &nl,
            &coarse.clone().with_algorithm(RouteAlgorithm::ShortestPath),
        )
        .unwrap();
        let wsp = route(
            &fp,
            &nl,
            &coarse.with_algorithm(RouteAlgorithm::WeightedShortestPath),
        )
        .unwrap();
        assert!(
            wsp.adjustment.final_area() <= sp.adjustment.final_area() + 1e-9,
            "WSP {} should not exceed SP {}",
            wsp.adjustment.final_area(),
            sp.adjustment.final_area()
        );
        // Usage must be conserved: both routed 40 nets.
        assert_eq!(sp.routes.len(), 40);
        assert_eq!(wsp.routes.len(), 40);
    }

    #[test]
    fn critical_net_flag_and_order() {
        let (fp, mut nl) = walled_world();
        nl.add_net(
            Net::new("crit", [ModuleId(0), ModuleId(3)])
                .with_criticality(1.0)
                .with_max_length(100.0),
        )
        .unwrap();
        let result = route(&fp, &nl, &RouteConfig::default()).unwrap();
        let crit = &result.routes[1];
        assert_eq!(crit.within_limit, Some(true));
        assert_eq!(result.missed_limits(), 0);
        // Tight limit fails.
        nl.add_net(
            Net::new("tight", [ModuleId(0), ModuleId(1)])
                .with_criticality(1.0)
                .with_max_length(0.5),
        )
        .unwrap();
        let result = route(&fp, &nl, &RouteConfig::default()).unwrap();
        assert_eq!(result.missed_limits(), 1);
    }

    #[test]
    fn unplaced_module_rejected() {
        let (fp, mut nl) = walled_world();
        nl.add_module(Module::rigid("ghost", 1.0, 1.0, false))
            .unwrap();
        nl.add_net(Net::new("bad", [ModuleId(0), ModuleId(4)]))
            .unwrap();
        assert!(matches!(
            route(&fp, &nl, &RouteConfig::default()),
            Err(RouteError::UnplacedModule { .. })
        ));
    }

    #[test]
    fn multipin_net_spans_all_members() {
        let fp = Floorplan::new(
            12.0,
            vec![
                placed(0, 0.0, 0.0, 2.0, 2.0),
                placed(1, 10.0, 0.0, 2.0, 2.0),
                placed(2, 5.0, 4.0, 2.0, 2.0),
            ],
        );
        let mut nl = Netlist::new("m");
        for i in 0..3 {
            nl.add_module(Module::rigid(format!("m{i}"), 2.0, 2.0, false))
                .unwrap();
        }
        nl.add_net(Net::new("tri", [ModuleId(0), ModuleId(1), ModuleId(2)]))
            .unwrap();
        let result = route(&fp, &nl, &RouteConfig::default()).unwrap();
        assert_eq!(result.routes[0].paths.len(), 2); // MST of 3 pins
        assert!(result.routes[0].length > 0.0);
        assert!(result.total_wirelength > 0.0);
    }

    #[test]
    fn prim_mst_shapes() {
        let pts = [
            Point::new(0.0, 0.0),
            Point::new(1.0, 0.0),
            Point::new(10.0, 0.0),
        ];
        let tree = prim_mst(&pts);
        assert_eq!(tree.len(), 2);
        // Chain 0-1-2, never the long 0-2 edge plus both shorts.
        let total: f64 = tree.iter().map(|&(a, b)| pts[a].manhattan(&pts[b])).sum();
        assert_eq!(total, 10.0);
    }

    #[test]
    fn all_net_orderings_route_everything() {
        let (fp, nl) = walled_world();
        for ordering in [
            crate::NetOrdering::CriticalityFirst,
            crate::NetOrdering::ShortestFirst,
            crate::NetOrdering::LongestFirst,
            crate::NetOrdering::Netlist,
        ] {
            let cfg = RouteConfig::default().with_ordering(ordering);
            let result = route(&fp, &nl, &cfg).unwrap();
            assert_eq!(result.routes.len(), nl.num_nets(), "{ordering:?}");
            assert!(result.total_wirelength > 0.0);
        }
    }

    #[test]
    fn degenerate_single_cell_grid_routes_without_panicking() {
        // Two coincident modules covering the whole chip collapse the cut
        // lines to the chip boundary: the grid is a single (blocked) cell
        // with zero edges. Every pin anchor clamps into that one cell, so
        // both hard-blockage Dijkstra and its relaxed fallbacks must take
        // the source==target path and return Ok — this used to ride on an
        // `expect("free grid is fully connected")`.
        let fp = Floorplan::new(
            6.0,
            vec![placed(0, 0.0, 0.0, 6.0, 4.0), placed(1, 0.0, 0.0, 6.0, 4.0)],
        );
        let mut nl = Netlist::new("d");
        nl.add_module(Module::rigid("a", 6.0, 4.0, false)).unwrap();
        nl.add_module(Module::rigid("b", 6.0, 4.0, false)).unwrap();
        nl.add_net(Net::new("ab", [ModuleId(0), ModuleId(1)]))
            .unwrap();
        for mode in [RoutingMode::AroundTheCell, RoutingMode::OverTheCell] {
            let cfg = RouteConfig::default().with_mode(mode);
            let result = route(&fp, &nl, &cfg)
                .unwrap_or_else(|e| panic!("single-cell grid must still route ({mode:?}): {e}"));
            assert_eq!(result.routes.len(), 1);
            assert!(result.routes[0].length.is_finite());
        }
    }

    #[test]
    fn empty_floorplan_rejected() {
        let nl = Netlist::new("e");
        let fp = Floorplan::new(5.0, vec![]);
        assert_eq!(
            route(&fp, &nl, &RouteConfig::default()).unwrap_err(),
            RouteError::EmptyFloorplan
        );
    }
}
