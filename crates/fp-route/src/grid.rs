//! The channel position graph as a compressed grid.
//!
//! The free space of the floorplan is partitioned into cells by the x/y
//! coordinates of every module and envelope edge (plus the chip boundary).
//! Adjacent cells are connected by an edge whose **capacity** is the number
//! of routing tracks that fit across the shared boundary: wires crossing a
//! vertical boundary run horizontally and stack at the horizontal track
//! pitch, and vice versa. Cells covered by a module interior are marked
//! blocked; how blocked cells are treated is the router's mode decision.

use crate::config::{RouteConfig, RoutingMode};
use crate::error::RouteError;
use fp_core::Floorplan;
use fp_geom::{Point, Rect, GEOM_EPS};

/// Index of a grid cell.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct CellId(pub usize);

/// An undirected edge between two adjacent cells.
#[derive(Debug, Clone, PartialEq)]
pub struct GridEdge {
    /// One endpoint.
    pub a: CellId,
    /// The other endpoint.
    pub b: CellId,
    /// Center-to-center distance (the base routing cost).
    pub length: f64,
    /// Shared boundary length.
    pub boundary: f64,
    /// Preliminary capacity in tracks (0 across blocked cells in
    /// around-the-cell mode).
    pub capacity: f64,
    /// Whether the boundary crossed is vertical (i.e. the move is
    /// horizontal).
    pub crosses_vertical_boundary: bool,
    /// Whether either endpoint is a blocked (module-interior) cell.
    pub touches_blockage: bool,
}

/// The channel position graph.
#[derive(Debug, Clone, PartialEq)]
pub struct RoutingGrid {
    xs: Vec<f64>,
    ys: Vec<f64>,
    blocked: Vec<bool>,
    edges: Vec<GridEdge>,
    /// Cell → indices into `edges`.
    adjacency: Vec<Vec<usize>>,
}

impl RoutingGrid {
    /// Builds the grid for a floorplan.
    ///
    /// # Errors
    ///
    /// [`RouteError::EmptyFloorplan`] / [`RouteError::DegenerateChip`].
    pub fn build(floorplan: &Floorplan, config: &RouteConfig) -> Result<Self, RouteError> {
        if floorplan.is_empty() {
            return Err(RouteError::EmptyFloorplan);
        }
        let w = floorplan.chip_width();
        let h = floorplan.chip_height();
        if w <= GEOM_EPS || h <= GEOM_EPS {
            return Err(RouteError::DegenerateChip);
        }

        let mut xs = vec![0.0, w];
        let mut ys = vec![0.0, h];
        for p in floorplan.iter() {
            for r in [p.rect, p.envelope] {
                xs.push(r.x.clamp(0.0, w));
                xs.push(r.right().clamp(0.0, w));
                ys.push(r.y.clamp(0.0, h));
                ys.push(r.top().clamp(0.0, h));
            }
        }
        dedup_sorted(&mut xs);
        dedup_sorted(&mut ys);
        let nx = xs.len() - 1;
        let ny = ys.len() - 1;

        let module_rects: Vec<Rect> = floorplan.module_rects();
        let mut blocked = vec![false; nx * ny];
        for j in 0..ny {
            for i in 0..nx {
                let cx = (xs[i] + xs[i + 1]) / 2.0;
                let cy = (ys[j] + ys[j + 1]) / 2.0;
                blocked[j * nx + i] = module_rects
                    .iter()
                    .any(|r| r.x < cx && cx < r.right() && r.y < cy && cy < r.top());
            }
        }

        let mut edges = Vec::new();
        let mut adjacency = vec![Vec::new(); nx * ny];
        let push_edge = |edges: &mut Vec<GridEdge>,
                         adjacency: &mut Vec<Vec<usize>>,
                         a: usize,
                         b: usize,
                         length: f64,
                         boundary: f64,
                         vertical: bool| {
            let touches = blocked[a] || blocked[b];
            let pitch = if vertical {
                config.pitch_h
            } else {
                config.pitch_v
            };
            let capacity = if touches && config.mode == RoutingMode::AroundTheCell {
                0.0
            } else {
                boundary / pitch.max(1e-9)
            };
            let idx = edges.len();
            edges.push(GridEdge {
                a: CellId(a),
                b: CellId(b),
                length,
                boundary,
                capacity,
                crosses_vertical_boundary: vertical,
                touches_blockage: touches,
            });
            adjacency[a].push(idx);
            adjacency[b].push(idx);
        };

        for j in 0..ny {
            for i in 0..nx {
                let cell = j * nx + i;
                if i + 1 < nx {
                    // horizontal move across the vertical boundary x=xs[i+1]
                    let length = (xs[i + 2] - xs[i]) / 2.0;
                    let boundary = ys[j + 1] - ys[j];
                    push_edge(
                        &mut edges,
                        &mut adjacency,
                        cell,
                        cell + 1,
                        length,
                        boundary,
                        true,
                    );
                }
                if j + 1 < ny {
                    let length = (ys[j + 2] - ys[j]) / 2.0;
                    let boundary = xs[i + 1] - xs[i];
                    push_edge(
                        &mut edges,
                        &mut adjacency,
                        cell,
                        cell + nx,
                        length,
                        boundary,
                        false,
                    );
                }
            }
        }

        Ok(RoutingGrid {
            xs,
            ys,
            blocked,
            edges,
            adjacency,
        })
    }

    /// Number of cells.
    #[must_use]
    pub fn num_cells(&self) -> usize {
        self.blocked.len()
    }

    /// Number of edges.
    #[must_use]
    pub fn num_edges(&self) -> usize {
        self.edges.len()
    }

    /// The edges.
    #[must_use]
    pub fn edges(&self) -> &[GridEdge] {
        &self.edges
    }

    /// Indices of edges incident to `cell`.
    #[must_use]
    pub fn incident(&self, cell: CellId) -> &[usize] {
        &self.adjacency[cell.0]
    }

    /// Whether the cell lies inside a module.
    #[must_use]
    pub fn is_blocked(&self, cell: CellId) -> bool {
        self.blocked[cell.0]
    }

    /// The cell containing point `p` (clamped onto the chip).
    #[must_use]
    pub fn cell_at(&self, p: Point) -> CellId {
        let nx = self.xs.len() - 1;
        let i = strip_of(&self.xs, p.x);
        let j = strip_of(&self.ys, p.y);
        CellId(j * nx + i)
    }

    /// Geometric center of a cell.
    #[must_use]
    pub fn cell_center(&self, cell: CellId) -> Point {
        let r = self.cell_rect(cell);
        r.center()
    }

    /// The rectangle of a cell.
    ///
    /// # Panics
    ///
    /// Panics if `cell` is out of range.
    #[must_use]
    pub fn cell_rect(&self, cell: CellId) -> Rect {
        let nx = self.xs.len() - 1;
        let i = cell.0 % nx;
        let j = cell.0 / nx;
        Rect::new(
            self.xs[i],
            self.ys[j],
            self.xs[i + 1] - self.xs[i],
            self.ys[j + 1] - self.ys[j],
        )
    }

    /// Grid dimensions `(columns, rows)`.
    #[must_use]
    pub fn dims(&self) -> (usize, usize) {
        (self.xs.len() - 1, self.ys.len() - 1)
    }

    /// The x grid lines.
    #[must_use]
    pub fn x_lines(&self) -> &[f64] {
        &self.xs
    }

    /// The y grid lines.
    #[must_use]
    pub fn y_lines(&self) -> &[f64] {
        &self.ys
    }
}

fn dedup_sorted(v: &mut Vec<f64>) {
    v.sort_by(f64::total_cmp);
    v.dedup_by(|a, b| (*a - *b).abs() <= GEOM_EPS);
}

/// Index of the strip containing `x` (clamped to the valid range).
fn strip_of(lines: &[f64], x: f64) -> usize {
    let n = lines.len() - 1;
    for k in 0..n {
        if x < lines[k + 1] {
            return k;
        }
    }
    n - 1
}

#[cfg(test)]
mod tests {
    use super::*;
    use fp_core::PlacedModule;
    use fp_netlist::ModuleId;

    fn simple_floorplan() -> Floorplan {
        // One 4x4 module centered-ish on a 10x8 chip; a second module
        // establishes the chip height.
        Floorplan::new(
            10.0,
            vec![
                PlacedModule {
                    id: ModuleId(0),
                    rect: Rect::new(3.0, 2.0, 4.0, 4.0),
                    envelope: Rect::new(3.0, 2.0, 4.0, 4.0),
                    rotated: false,
                },
                PlacedModule {
                    id: ModuleId(1),
                    rect: Rect::new(0.0, 6.0, 2.0, 2.0),
                    envelope: Rect::new(0.0, 6.0, 2.0, 2.0),
                    rotated: false,
                },
            ],
        )
    }

    #[test]
    fn grid_dimensions_and_blockage() {
        let grid = RoutingGrid::build(&simple_floorplan(), &RouteConfig::default()).unwrap();
        let (nx, ny) = grid.dims();
        // x cuts: 0, 2, 3, 7, 10 -> 4 columns; y cuts: 0, 2, 6, 8 -> 3 rows.
        assert_eq!((nx, ny), (4, 3));
        // The module cell (x in [3,7], y in [2,6]) is blocked.
        let c = grid.cell_at(Point::new(5.0, 4.0));
        assert!(grid.is_blocked(c));
        let free = grid.cell_at(Point::new(1.0, 1.0));
        assert!(!grid.is_blocked(free));
    }

    #[test]
    fn capacities_follow_boundaries_and_mode() {
        let fp = simple_floorplan();
        let around = RoutingGrid::build(&fp, &RouteConfig::default()).unwrap();
        // Every edge touching the blocked cell has zero capacity.
        for e in around.edges() {
            if e.touches_blockage {
                assert_eq!(e.capacity, 0.0);
            } else {
                assert!(e.capacity > 0.0);
                // both pitches are 0.1 in the default config
                assert!((e.capacity - e.boundary / 0.1).abs() < 1e-6);
            }
        }
        let over = RoutingGrid::build(
            &fp,
            &RouteConfig::default().with_mode(RoutingMode::OverTheCell),
        )
        .unwrap();
        assert!(over.edges().iter().all(|e| e.capacity > 0.0));
    }

    #[test]
    fn cell_lookup_roundtrip() {
        let grid = RoutingGrid::build(&simple_floorplan(), &RouteConfig::default()).unwrap();
        for c in 0..grid.num_cells() {
            let cell = CellId(c);
            let center = grid.cell_center(cell);
            assert_eq!(grid.cell_at(center), cell);
            assert!(grid.cell_rect(cell).contains(center));
        }
        // Out-of-range points clamp to boundary cells.
        let c = grid.cell_at(Point::new(999.0, 999.0));
        assert!(c.0 < grid.num_cells());
    }

    #[test]
    fn adjacency_is_consistent() {
        let grid = RoutingGrid::build(&simple_floorplan(), &RouteConfig::default()).unwrap();
        for (idx, e) in grid.edges().iter().enumerate() {
            assert!(grid.incident(e.a).contains(&idx));
            assert!(grid.incident(e.b).contains(&idx));
            assert!(e.length > 0.0);
            assert!(e.boundary > 0.0);
        }
        // Interior cell has 4 incident edges, corner has 2.
        let corner = grid.cell_at(Point::new(0.1, 0.1));
        assert_eq!(grid.incident(corner).len(), 2);
    }

    #[test]
    fn empty_and_degenerate_rejected() {
        let empty = Floorplan::new(10.0, vec![]);
        assert_eq!(
            RoutingGrid::build(&empty, &RouteConfig::default()).unwrap_err(),
            RouteError::EmptyFloorplan
        );
    }
}
