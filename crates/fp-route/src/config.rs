//! Router configuration.

/// Path-cost model (paper §4, Series 3 compares the two).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum RouteAlgorithm {
    /// Plain shortest path: edge cost = geometric length.
    ShortestPath,
    /// Shortest path with congestion penalty: once an edge's usage reaches
    /// its preliminary capacity, its cost is multiplied — the paper's
    /// "penalty function for utilization of a channel beyond its
    /// preliminary capacity".
    #[default]
    WeightedShortestPath,
}

/// Whether wires may cross module interiors (paper §4: Series 2 assumes
/// over-the-cell routing; Series 3 around-the-cell).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum RoutingMode {
    /// Wires route freely over modules (Series 2 technology).
    OverTheCell,
    /// Module interiors carry no capacity and are strongly penalized, so
    /// wires prefer channels; anything forced through a module shows up as
    /// overflow and drives channel adjustment (Series 3 technology).
    #[default]
    AroundTheCell,
}

/// Order in which nets are routed (routing is sequential, so earlier nets
/// get first claim on channel capacity).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum NetOrdering {
    /// Descending criticality, then descending weight — the paper's "nets
    /// with the tight timing requirements are routed first".
    #[default]
    CriticalityFirst,
    /// Ascending estimated length (pin bounding-box half-perimeter): short
    /// local nets lock in their short routes first.
    ShortestFirst,
    /// Descending estimated length: long trunks claim highways first.
    LongestFirst,
    /// Netlist order (no reordering) — ablation baseline.
    Netlist,
}

/// Configuration for [`route`](crate::route).
///
/// ```
/// use fp_route::{RouteConfig, RouteAlgorithm};
/// let cfg = RouteConfig::default().with_algorithm(RouteAlgorithm::ShortestPath);
/// assert_eq!(cfg.algorithm, RouteAlgorithm::ShortestPath);
/// ```
#[derive(Debug, Clone, PartialEq)]
pub struct RouteConfig {
    /// Cost model.
    pub algorithm: RouteAlgorithm,
    /// Blockage model.
    pub mode: RoutingMode,
    /// Net routing order.
    pub ordering: NetOrdering,
    /// Horizontal routing-track pitch (width + spacing), technology input.
    pub pitch_h: f64,
    /// Vertical routing-track pitch.
    pub pitch_v: f64,
    /// Congestion penalty multiplier per unit of overuse
    /// (WeightedShortestPath only).
    pub penalty: f64,
    /// Cost multiplier for crossing a module interior (AroundTheCell only).
    pub blockage_penalty: f64,
    /// Structured-event tracer: [`route`](crate::route) emits per-net and
    /// channel-adjustment events through it. Disabled by default.
    pub tracer: fp_obs::Tracer,
}

impl Default for RouteConfig {
    fn default() -> Self {
        RouteConfig {
            algorithm: RouteAlgorithm::default(),
            mode: RoutingMode::default(),
            ordering: NetOrdering::default(),
            pitch_h: 0.10,
            pitch_v: 0.10,
            penalty: 4.0,
            blockage_penalty: 25.0,
            tracer: fp_obs::Tracer::disabled(),
        }
    }
}

impl RouteConfig {
    /// Sets the cost model.
    #[must_use]
    pub fn with_algorithm(mut self, algorithm: RouteAlgorithm) -> Self {
        self.algorithm = algorithm;
        self
    }

    /// Sets the blockage model.
    #[must_use]
    pub fn with_mode(mut self, mode: RoutingMode) -> Self {
        self.mode = mode;
        self
    }

    /// Sets the routing-track pitches.
    #[must_use]
    pub fn with_pitches(mut self, pitch_h: f64, pitch_v: f64) -> Self {
        self.pitch_h = pitch_h;
        self.pitch_v = pitch_v;
        self
    }

    /// Sets the over-capacity penalty.
    #[must_use]
    pub fn with_penalty(mut self, penalty: f64) -> Self {
        self.penalty = penalty;
        self
    }

    /// Sets the net routing order.
    #[must_use]
    pub fn with_ordering(mut self, ordering: NetOrdering) -> Self {
        self.ordering = ordering;
        self
    }

    /// Installs a structured-event tracer for routing events.
    #[must_use]
    pub fn with_tracer(mut self, tracer: fp_obs::Tracer) -> Self {
        self.tracer = tracer;
        self
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn defaults_and_builders() {
        let c = RouteConfig::default();
        assert_eq!(c.algorithm, RouteAlgorithm::WeightedShortestPath);
        assert_eq!(c.mode, RoutingMode::AroundTheCell);
        assert!(c.penalty > 0.0);
        let c = c
            .with_algorithm(RouteAlgorithm::ShortestPath)
            .with_mode(RoutingMode::OverTheCell)
            .with_pitches(0.5, 0.25)
            .with_penalty(9.0);
        assert_eq!(c.algorithm, RouteAlgorithm::ShortestPath);
        assert_eq!(c.mode, RoutingMode::OverTheCell);
        assert_eq!((c.pitch_h, c.pitch_v), (0.5, 0.25));
        assert_eq!(c.penalty, 9.0);
    }
}
