//! Router error type.

use std::error::Error;
use std::fmt;

/// Errors raised by the global router.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum RouteError {
    /// The floorplan has no modules — nothing to route between.
    EmptyFloorplan,
    /// A net references a module that is not placed in the floorplan.
    UnplacedModule {
        /// The net's name.
        net: String,
        /// The missing module's name (or id when unknown).
        module: String,
    },
    /// The routing grid degenerated (zero-area chip).
    DegenerateChip,
    /// No path exists between two pins of a net, even with every blockage
    /// relaxed. Unreachable on grids built by [`crate::RoutingGrid::build`]
    /// (they are connected by construction), but kept as a typed error so a
    /// malformed grid surfaces as an `Err` instead of a panic.
    Unroutable {
        /// The net whose segment could not be routed.
        net: String,
    },
}

impl fmt::Display for RouteError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            RouteError::EmptyFloorplan => write!(f, "floorplan has no modules"),
            RouteError::UnplacedModule { net, module } => {
                write!(f, "net '{net}' references unplaced module '{module}'")
            }
            RouteError::DegenerateChip => write!(f, "chip has zero area; cannot build grid"),
            RouteError::Unroutable { net } => {
                write!(
                    f,
                    "net '{net}' has pins with no connecting path in the grid"
                )
            }
        }
    }
}

impl Error for RouteError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn messages() {
        assert!(RouteError::EmptyFloorplan
            .to_string()
            .contains("no modules"));
        let e = RouteError::UnplacedModule {
            net: "clk".into(),
            module: "alu".into(),
        };
        assert!(e.to_string().contains("clk") && e.to_string().contains("alu"));
        let u = RouteError::Unroutable { net: "rst".into() };
        assert!(u.to_string().contains("rst") && u.to_string().contains("no connecting path"));
    }
}
