//! Human-readable routing reports.

use crate::router::RoutingResult;
use fp_netlist::Netlist;
use std::fmt::Write as _;

/// Aggregate routing statistics, cheap to compute from a
/// [`RoutingResult`].
#[derive(Debug, Clone, PartialEq)]
pub struct RouteReport {
    /// Nets routed.
    pub nets: usize,
    /// Two-pin segments routed (MST edges over generalized pins).
    pub segments: usize,
    /// Total routed wirelength.
    pub total_wirelength: f64,
    /// Longest single net.
    pub longest_net: f64,
    /// Mean net length.
    pub mean_net_length: f64,
    /// Edges used beyond their preliminary capacity.
    pub overflowed_edges: usize,
    /// Worst usage/capacity ratio over all capacitated edges.
    pub worst_utilization: f64,
    /// Critical nets that missed their `max_length`.
    pub missed_limits: usize,
    /// Final chip area after channel adjustment.
    pub final_area: f64,
}

impl RouteReport {
    /// Builds the report.
    #[must_use]
    pub fn of(result: &RoutingResult) -> Self {
        let nets = result.routes.len();
        let segments = result.routes.iter().map(|r| r.paths.len()).sum();
        let longest = result.routes.iter().map(|r| r.length).fold(0.0, f64::max);
        let worst = result
            .grid
            .edges()
            .iter()
            .zip(&result.usage)
            .filter(|(e, _)| e.capacity > 0.0)
            .map(|(e, &u)| u / e.capacity)
            .fold(0.0, f64::max);
        RouteReport {
            nets,
            segments,
            total_wirelength: result.total_wirelength,
            longest_net: longest,
            mean_net_length: if nets == 0 {
                0.0
            } else {
                result.total_wirelength / nets as f64
            },
            overflowed_edges: result.adjustment.overflowed_edges,
            worst_utilization: worst,
            missed_limits: result.missed_limits(),
            final_area: result.adjustment.final_area(),
        }
    }

    /// A multi-line human-readable rendering, suitable for CLI output.
    #[must_use]
    pub fn render(&self, netlist: &Netlist) -> String {
        let mut out = String::new();
        let _ = writeln!(
            out,
            "routing report for '{}': {} nets / {} segments",
            netlist.name(),
            self.nets,
            self.segments
        );
        let _ = writeln!(
            out,
            "  wirelength: total {:.0}, mean {:.1}, longest {:.1}",
            self.total_wirelength, self.mean_net_length, self.longest_net
        );
        let _ = writeln!(
            out,
            "  congestion: {} overflowed edges, worst utilization {:.2}",
            self.overflowed_edges, self.worst_utilization
        );
        let _ = writeln!(
            out,
            "  timing: {} critical nets over their length limit",
            self.missed_limits
        );
        let _ = writeln!(out, "  final chip area: {:.0}", self.final_area);
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{route, RouteConfig};
    use fp_core::PlacedModule;
    use fp_geom::Rect;
    use fp_netlist::{Module, ModuleId, Net};

    #[test]
    fn report_is_consistent_with_result() {
        let fp = fp_core::Floorplan::new(
            10.0,
            vec![
                PlacedModule {
                    id: ModuleId(0),
                    rect: Rect::new(0.0, 0.0, 3.0, 3.0),
                    envelope: Rect::new(0.0, 0.0, 3.0, 3.0),
                    rotated: false,
                },
                PlacedModule {
                    id: ModuleId(1),
                    rect: Rect::new(6.0, 0.0, 3.0, 3.0),
                    envelope: Rect::new(6.0, 0.0, 3.0, 3.0),
                    rotated: false,
                },
            ],
        );
        let mut nl = fp_netlist::Netlist::new("r");
        nl.add_module(Module::rigid("a", 3.0, 3.0, false)).unwrap();
        nl.add_module(Module::rigid("b", 3.0, 3.0, false)).unwrap();
        nl.add_net(Net::new("ab", [ModuleId(0), ModuleId(1)]))
            .unwrap();
        let result = route(&fp, &nl, &RouteConfig::default()).unwrap();
        let report = RouteReport::of(&result);
        assert_eq!(report.nets, 1);
        assert_eq!(report.segments, 1);
        assert!((report.total_wirelength - result.total_wirelength).abs() < 1e-12);
        assert_eq!(report.longest_net, result.routes[0].length);
        assert_eq!(report.mean_net_length, result.routes[0].length);
        assert!(report.worst_utilization >= 0.0);
        let text = report.render(&nl);
        assert!(text.contains("1 nets"));
        assert!(text.contains("final chip area"));
    }
}
