//! Graph-based global routing over the channel position graph (paper §3.2).
//!
//! The paper's routing model:
//!
//! * **Generalized pins** — instead of exact pin coordinates, one pin per
//!   module *side* ([`pins`]); a net connects the nearest generalized pins
//!   of its modules.
//! * **Channel position graph** — the free space of the floorplan (plus the
//!   §3.2 envelope margins) is partitioned into cells by the module edge
//!   coordinates; adjacent cells are connected by edges whose capacity is
//!   the number of routing tracks the shared boundary can carry
//!   ([`RoutingGrid`]).
//! * **Shortest path / weighted shortest path** — nets are routed in
//!   criticality order by Dijkstra; the weighted variant multiplies edge
//!   costs by a penalty once utilization exceeds the preliminary capacity
//!   ([`route`]).
//! * **Channel adjustment** — after routing, channel widths grow to
//!   accommodate the realized usage and the final chip area is computed
//!   ([`ChipAdjustment`]).
//!
//! Two routing modes mirror the paper's two experiment series:
//! over-the-cell (Table 2; wires may cross modules freely) and
//! around-the-cell (Table 3; module interiors are strongly penalized and
//! carry no capacity).
//!
//! # Example
//!
//! ```
//! use fp_core::{Floorplanner, FloorplanConfig};
//! use fp_route::{route, RouteConfig};
//!
//! # fn main() -> Result<(), Box<dyn std::error::Error>> {
//! let netlist = fp_netlist::generator::ProblemGenerator::new(6, 3).generate();
//! # let cfg = FloorplanConfig::default()
//! #     .with_step_options(fp_milp::SolveOptions::default().with_node_limit(400));
//! # let result = Floorplanner::with_config(&netlist, cfg).run()?;
//! let routing = route(&result.floorplan, &netlist, &RouteConfig::default())?;
//! assert_eq!(routing.routes.len(), netlist.num_nets());
//! assert!(routing.total_wirelength > 0.0);
//! # Ok(())
//! # }
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod adjust;
mod config;
mod error;
mod grid;
pub mod pins;
mod report;
mod router;

pub use adjust::ChipAdjustment;
pub use config::{NetOrdering, RouteAlgorithm, RouteConfig, RoutingMode};
pub use error::RouteError;
pub use grid::{CellId, GridEdge, RoutingGrid};
pub use report::RouteReport;
pub use router::{route, RoutedNet, RoutingResult};
