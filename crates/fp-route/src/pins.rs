//! Generalized pins (paper §3.2).
//!
//! "Instead of considering a center of a module as a generalized pin
//! position we consider four generalized pins, one on each side." The
//! preliminary side assignment is approximated deterministically: each
//! net's pin on a module is the side pin nearest to the net's centroid.

use fp_core::PlacedModule;
use fp_geom::Point;

/// A module side.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Side {
    /// Left edge.
    Left,
    /// Right edge.
    Right,
    /// Bottom edge.
    Bottom,
    /// Top edge.
    Top,
}

/// The four generalized pins of a placed module: midpoints of its sides.
#[must_use]
pub fn generalized_pins(placed: &PlacedModule) -> [(Side, Point); 4] {
    let r = placed.rect;
    let c = r.center();
    [
        (Side::Left, Point::new(r.x, c.y)),
        (Side::Right, Point::new(r.right(), c.y)),
        (Side::Bottom, Point::new(c.x, r.y)),
        (Side::Top, Point::new(c.x, r.top())),
    ]
}

/// The generalized pin of `placed` facing `toward` (smallest Manhattan
/// distance; ties resolved in Left/Right/Bottom/Top order, so the choice is
/// deterministic).
#[must_use]
pub fn pin_toward(placed: &PlacedModule, toward: Point) -> (Side, Point) {
    let pins = generalized_pins(placed);
    let mut best = pins[0];
    let mut best_d = best.1.manhattan(&toward);
    for &cand in &pins[1..] {
        let d = cand.1.manhattan(&toward);
        if d < best_d - 1e-12 {
            best = cand;
            best_d = d;
        }
    }
    best
}

/// The routing *anchor* of a pin: the pin point nudged just outside the
/// module along its side's outward normal, so grid lookup lands in the
/// channel (or envelope margin) cell rather than inside the module.
/// Clamped to the chip strip `[0, chip_w] x [0, chip_h]`.
#[must_use]
pub fn pin_anchor(side: Side, pin: Point, chip_w: f64, chip_h: f64) -> Point {
    const NUDGE: f64 = 1e-4;
    let p = match side {
        Side::Left => Point::new(pin.x - NUDGE, pin.y),
        Side::Right => Point::new(pin.x + NUDGE, pin.y),
        Side::Bottom => Point::new(pin.x, pin.y - NUDGE),
        Side::Top => Point::new(pin.x, pin.y + NUDGE),
    };
    Point::new(p.x.clamp(0.0, chip_w), p.y.clamp(0.0, chip_h))
}

#[cfg(test)]
mod tests {
    use super::*;
    use fp_geom::Rect;
    use fp_netlist::ModuleId;

    fn module_at(x: f64, y: f64, w: f64, h: f64) -> PlacedModule {
        PlacedModule {
            id: ModuleId(0),
            rect: Rect::new(x, y, w, h),
            envelope: Rect::new(x, y, w, h),
            rotated: false,
        }
    }

    #[test]
    fn four_side_midpoints() {
        let m = module_at(2.0, 2.0, 4.0, 2.0);
        let pins = generalized_pins(&m);
        assert_eq!(pins[0], (Side::Left, Point::new(2.0, 3.0)));
        assert_eq!(pins[1], (Side::Right, Point::new(6.0, 3.0)));
        assert_eq!(pins[2], (Side::Bottom, Point::new(4.0, 2.0)));
        assert_eq!(pins[3], (Side::Top, Point::new(4.0, 4.0)));
    }

    #[test]
    fn pin_faces_target() {
        let m = module_at(0.0, 0.0, 2.0, 2.0);
        assert_eq!(pin_toward(&m, Point::new(10.0, 1.0)).0, Side::Right);
        assert_eq!(pin_toward(&m, Point::new(-10.0, 1.0)).0, Side::Left);
        assert_eq!(pin_toward(&m, Point::new(1.0, 10.0)).0, Side::Top);
        assert_eq!(pin_toward(&m, Point::new(1.0, -10.0)).0, Side::Bottom);
    }

    #[test]
    fn tie_is_deterministic() {
        let m = module_at(0.0, 0.0, 2.0, 2.0);
        // Target at the exact center: all pins equidistant; Left wins.
        assert_eq!(pin_toward(&m, Point::new(1.0, 1.0)).0, Side::Left);
    }
}
