//! Channel width adjustment and final chip area (paper §3.2, last step).
//!
//! "On the final step of the algorithm widths of channels are adjusted to
//! accommodate results of the global routing and the final chip area is
//! computed." Per grid column, the worst vertical-wire overflow dictates
//! how much wider that column must become; per grid row, the worst
//! horizontal-wire overflow dictates extra height. The final chip is the
//! original rectangle grown by the summed adjustments.

use crate::config::RouteConfig;
use crate::grid::RoutingGrid;

/// The computed channel adjustment and final chip dimensions.
#[derive(Debug, Clone, PartialEq)]
pub struct ChipAdjustment {
    /// Chip width before adjustment.
    pub base_width: f64,
    /// Chip height before adjustment.
    pub base_height: f64,
    /// Total extra width added across all columns.
    pub extra_width: f64,
    /// Total extra height added across all rows.
    pub extra_height: f64,
    /// Number of edges routed beyond their preliminary capacity.
    pub overflowed_edges: usize,
}

impl ChipAdjustment {
    /// Final chip width.
    #[must_use]
    pub fn final_width(&self) -> f64 {
        self.base_width + self.extra_width
    }

    /// Final chip height.
    #[must_use]
    pub fn final_height(&self) -> f64 {
        self.base_height + self.extra_height
    }

    /// Final chip area — the number the paper's Table 3 reports.
    #[must_use]
    pub fn final_area(&self) -> f64 {
        self.final_width() * self.final_height()
    }
}

/// Computes the adjustment from per-edge usage (`usage[i]` belongs to
/// `grid.edges()[i]`).
pub(crate) fn adjust(
    grid: &RoutingGrid,
    usage: &[f64],
    config: &RouteConfig,
    base_width: f64,
    base_height: f64,
) -> ChipAdjustment {
    let (nx, ny) = grid.dims();
    let mut col_extra = vec![0.0_f64; nx];
    let mut row_extra = vec![0.0_f64; ny];
    let mut overflowed = 0usize;

    for (edge, &used) in grid.edges().iter().zip(usage) {
        let over_tracks = (used - edge.capacity).max(0.0);
        if over_tracks <= 0.0 {
            continue;
        }
        overflowed += 1;
        if edge.crosses_vertical_boundary {
            // Horizontal wires stacking vertically: the *row* must grow.
            let row = edge.a.0 / nx;
            let need = over_tracks * config.pitch_h;
            if need > row_extra[row] {
                row_extra[row] = need;
            }
        } else {
            // Vertical wires stacking horizontally: the *column* must grow.
            let col = edge.a.0 % nx;
            let need = over_tracks * config.pitch_v;
            if need > col_extra[col] {
                col_extra[col] = need;
            }
        }
    }

    ChipAdjustment {
        base_width,
        base_height,
        extra_width: col_extra.iter().sum(),
        extra_height: row_extra.iter().sum(),
        overflowed_edges: overflowed,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use fp_core::PlacedModule;
    use fp_geom::Rect;
    use fp_netlist::ModuleId;

    fn grid_2x2() -> (RoutingGrid, RouteConfig) {
        // A single 2x2 module in the corner of a 4x4 chip gives a 2x2 grid.
        let fp = fp_core::Floorplan::new(
            4.0,
            vec![PlacedModule {
                id: ModuleId(0),
                rect: Rect::new(0.0, 0.0, 2.0, 2.0),
                envelope: Rect::new(0.0, 0.0, 2.0, 4.0),
                rotated: false,
            }],
        );
        let cfg = RouteConfig::default().with_pitches(0.5, 0.5);
        let grid = RoutingGrid::build(&fp, &cfg).unwrap();
        (grid, cfg)
    }

    #[test]
    fn no_usage_no_adjustment() {
        let (grid, cfg) = grid_2x2();
        let usage = vec![0.0; grid.num_edges()];
        let adj = adjust(&grid, &usage, &cfg, 4.0, 4.0);
        assert_eq!(adj.extra_width, 0.0);
        assert_eq!(adj.extra_height, 0.0);
        assert_eq!(adj.overflowed_edges, 0);
        assert_eq!(adj.final_area(), 16.0);
    }

    #[test]
    fn overflow_grows_chip() {
        let (grid, cfg) = grid_2x2();
        let mut usage = vec![0.0; grid.num_edges()];
        // Overload one free-free edge by 2 tracks beyond capacity.
        let (idx, edge) = grid
            .edges()
            .iter()
            .enumerate()
            .find(|(_, e)| !e.touches_blockage)
            .expect("some free edge");
        usage[idx] = edge.capacity + 2.0;
        let adj = adjust(&grid, &usage, &cfg, 4.0, 4.0);
        assert_eq!(adj.overflowed_edges, 1);
        // 2 extra tracks at pitch 0.5 = 1.0 extra in one direction.
        let grew = adj.extra_width + adj.extra_height;
        assert!((grew - 1.0).abs() < 1e-9);
        assert!(adj.final_area() > 16.0);
    }

    #[test]
    fn per_row_max_not_sum() {
        let (grid, cfg) = grid_2x2();
        let mut usage = vec![0.0; grid.num_edges()];
        // Overload two horizontal-move edges in the SAME row: row grows by
        // the max requirement, not the sum.
        let mut loaded = 0;
        let edges: Vec<_> = grid.edges().to_vec();
        for (idx, e) in edges.iter().enumerate() {
            if e.crosses_vertical_boundary && e.a.0 / grid.dims().0 == 1 && loaded < 2 {
                usage[idx] = e.capacity + 4.0;
                loaded += 1;
            }
        }
        assert!(loaded >= 1);
        let adj = adjust(&grid, &usage, &cfg, 4.0, 4.0);
        assert!((adj.extra_height - 4.0 * cfg.pitch_h).abs() < 1e-9);
        assert_eq!(adj.extra_width, 0.0);
    }
}
