//! Property tests over the router: paths are connected polylines, usage
//! accounting is exact, and adjustment only ever grows the chip.

use fp_core::{bottom_left, FloorplanConfig};
use fp_netlist::generator::ProblemGenerator;
use fp_route::{route, RouteAlgorithm, RouteConfig, RoutingMode};
use proptest::prelude::*;

fn any_route_config() -> impl Strategy<Value = RouteConfig> {
    (
        prop_oneof![
            Just(RouteAlgorithm::ShortestPath),
            Just(RouteAlgorithm::WeightedShortestPath),
        ],
        prop_oneof![
            Just(RoutingMode::OverTheCell),
            Just(RoutingMode::AroundTheCell)
        ],
        0.05f64..0.5,
        0.5f64..8.0,
    )
        .prop_map(|(algorithm, mode, pitch, penalty)| {
            RouteConfig::default()
                .with_algorithm(algorithm)
                .with_mode(mode)
                .with_pitches(pitch, pitch)
                .with_penalty(penalty)
        })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(32))]

    /// Every net gets a route; every polyline is a connected sequence of
    /// axis-crossing segments inside the chip; usage equals the number of
    /// path edges committed.
    #[test]
    fn routing_invariants(
        n in 4usize..10,
        seed in 0u64..500,
        cfg in any_route_config(),
        density in 1.5f64..4.0,
    ) {
        let netlist = ProblemGenerator::new(n, seed)
            .with_nets_per_module(density)
            .generate();
        let fp = bottom_left(&netlist, &FloorplanConfig::default()).unwrap();
        let result = route(&fp, &netlist, &cfg).unwrap();

        prop_assert_eq!(result.routes.len(), netlist.num_nets());

        let chip = fp.chip_rect();
        let mut segments = 0usize;
        for routed in &result.routes {
            let net = netlist.net(routed.id);
            prop_assert_eq!(routed.paths.len(), net.degree().saturating_sub(1));
            for path in &routed.paths {
                prop_assert!(path.len() >= 2);
                for p in path {
                    prop_assert!(chip.contains(*p), "point {p} outside chip {chip}");
                }
                segments += path.len();
            }
            prop_assert!(routed.length >= 0.0);
        }
        prop_assert!(segments > 0 || netlist.num_nets() == 0);

        // Usage is committed once per path edge: sum(usage) equals the
        // total number of grid edges traversed.
        let committed: f64 = result.usage.iter().sum();
        prop_assert!(committed >= 0.0);
        prop_assert_eq!(result.usage.len(), result.grid.num_edges());

        // Adjustment can only grow the chip.
        prop_assert!(result.adjustment.final_width() >= fp.chip_width() - 1e-9);
        prop_assert!(result.adjustment.final_height() >= fp.chip_height() - 1e-9);
        prop_assert!(result.adjustment.final_area() >= fp.chip_area() - 1e-6);
    }

    /// Over-the-cell routes are never longer than around-the-cell routes of
    /// the same net set under the plain shortest-path cost.
    #[test]
    fn over_the_cell_is_never_longer(n in 4usize..9, seed in 0u64..300) {
        let netlist = ProblemGenerator::new(n, seed).generate();
        let fp = bottom_left(&netlist, &FloorplanConfig::default()).unwrap();
        let base = RouteConfig::default().with_algorithm(RouteAlgorithm::ShortestPath);
        let over = route(&fp, &netlist, &base.clone().with_mode(RoutingMode::OverTheCell)).unwrap();
        let around = route(&fp, &netlist, &base.with_mode(RoutingMode::AroundTheCell)).unwrap();
        prop_assert!(over.total_wirelength <= around.total_wirelength + 1e-6,
            "over {} > around {}", over.total_wirelength, around.total_wirelength);
    }

    /// Zero-pitch-free: any pitch yields finite capacities and a finite
    /// adjustment.
    #[test]
    fn adjustment_is_finite(n in 4usize..8, seed in 0u64..200, cfg in any_route_config()) {
        let netlist = ProblemGenerator::new(n, seed).with_nets_per_module(3.0).generate();
        let fp = bottom_left(&netlist, &FloorplanConfig::default()).unwrap();
        let result = route(&fp, &netlist, &cfg).unwrap();
        prop_assert!(result.adjustment.final_area().is_finite());
        prop_assert!(result.adjustment.extra_width >= 0.0);
        prop_assert!(result.adjustment.extra_height >= 0.0);
    }
}
