//! Terminal rendering of floorplans.

use fp_core::Floorplan;
use fp_netlist::Netlist;

/// Renders the floorplan as a character grid of the given width.
///
/// Each module is filled with a stable symbol derived from its index
/// (`0-9`, then `a-z`, then `A-Z`, cycling); free space is `.`; the chip
/// boundary is drawn as a frame. The y axis points up, like the paper's
/// coordinate system.
#[must_use]
pub fn ascii_floorplan(floorplan: &Floorplan, netlist: &Netlist, width_chars: usize) -> String {
    let w = floorplan.chip_width();
    let h = floorplan.chip_height();
    if w <= 0.0 || h <= 0.0 || floorplan.is_empty() {
        return String::from("(empty floorplan)\n");
    }
    let width_chars = width_chars.max(8);
    // Terminal cells are ~2x taller than wide; compensate.
    let height_chars = ((h / w) * width_chars as f64 / 2.0).round().max(2.0) as usize;

    let mut grid = vec![vec!['.'; width_chars]; height_chars];
    for placed in floorplan.iter() {
        let sym = symbol(placed.id.index());
        let r = placed.rect;
        let x0 = ((r.x / w) * width_chars as f64).round() as usize;
        let x1 = ((r.right() / w) * width_chars as f64).round() as usize;
        let y0 = ((r.y / h) * height_chars as f64).round() as usize;
        let y1 = ((r.top() / h) * height_chars as f64).round() as usize;
        for row in grid.iter_mut().take(y1.min(height_chars)).skip(y0) {
            for cell in row.iter_mut().take(x1.min(width_chars)).skip(x0) {
                *cell = sym;
            }
        }
    }

    let mut out = String::new();
    out.push_str(&format!(
        "{} — chip {:.1} x {:.1}, area {:.0}, utilization {:.1}%\n",
        netlist.name(),
        w,
        h,
        floorplan.chip_area(),
        100.0 * floorplan.utilization(netlist)
    ));
    out.push('+');
    out.push_str(&"-".repeat(width_chars));
    out.push_str("+\n");
    for row in grid.iter().rev() {
        out.push('|');
        out.extend(row.iter());
        out.push_str("|\n");
    }
    out.push('+');
    out.push_str(&"-".repeat(width_chars));
    out.push_str("+\n");
    out
}

fn symbol(index: usize) -> char {
    const SYMBOLS: &[u8] = b"0123456789abcdefghijklmnopqrstuvwxyzABCDEFGHIJKLMNOPQRSTUVWXYZ";
    SYMBOLS[index % SYMBOLS.len()] as char
}

#[cfg(test)]
mod tests {
    use super::*;
    use fp_core::PlacedModule;
    use fp_geom::Rect;
    use fp_netlist::{Module, ModuleId};

    fn one_module_plan() -> (Floorplan, Netlist) {
        let mut nl = Netlist::new("t");
        nl.add_module(Module::rigid("a", 4.0, 4.0, false)).unwrap();
        nl.add_module(Module::rigid("b", 4.0, 4.0, false)).unwrap();
        let fp = Floorplan::new(
            8.0,
            vec![
                PlacedModule {
                    id: ModuleId(0),
                    rect: Rect::new(0.0, 0.0, 4.0, 4.0),
                    envelope: Rect::new(0.0, 0.0, 4.0, 4.0),
                    rotated: false,
                },
                PlacedModule {
                    id: ModuleId(1),
                    rect: Rect::new(4.0, 0.0, 4.0, 4.0),
                    envelope: Rect::new(4.0, 0.0, 4.0, 4.0),
                    rotated: false,
                },
            ],
        );
        (fp, nl)
    }

    #[test]
    fn renders_modules_and_frame() {
        let (fp, nl) = one_module_plan();
        let text = ascii_floorplan(&fp, &nl, 32);
        assert!(text.contains('0'));
        assert!(text.contains('1'));
        assert!(text.starts_with("t — chip 8.0 x 4.0"));
        assert!(text.contains("utilization 100.0%"));
        let frame_rows = text.lines().filter(|l| l.starts_with('+')).count();
        assert_eq!(frame_rows, 2);
    }

    #[test]
    fn empty_floorplan_message() {
        let nl = Netlist::new("t");
        let fp = Floorplan::new(8.0, vec![]);
        assert!(ascii_floorplan(&fp, &nl, 20).contains("empty"));
    }

    #[test]
    fn symbols_cycle() {
        assert_eq!(symbol(0), '0');
        assert_eq!(symbol(10), 'a');
        assert_eq!(symbol(36), 'A');
        assert_eq!(symbol(62), '0'); // cycles
    }

    #[test]
    fn width_is_respected() {
        let (fp, nl) = one_module_plan();
        let text = ascii_floorplan(&fp, &nl, 40);
        let body: Vec<&str> = text.lines().filter(|l| l.starts_with('|')).collect();
        assert!(!body.is_empty());
        for line in body {
            assert_eq!(line.chars().count(), 42); // 40 + 2 borders
        }
    }
}
