//! SVG rendering of floorplans and routed chips.

use fp_core::Floorplan;
use fp_netlist::Netlist;
use fp_route::RoutingResult;
use std::fmt::Write as _;

const SCALE: f64 = 8.0;
const MARGIN: f64 = 12.0;
const PALETTE: [&str; 8] = [
    "#9ecae1", "#a1d99b", "#fdae6b", "#bcbddc", "#fc9272", "#c7e9c0", "#fdd0a2", "#d9d9d9",
];

/// Renders a floorplan as a standalone SVG document (paper Fig. 5).
///
/// Modules are colored from a fixed palette and labeled; envelopes (when
/// larger than the module) are drawn as dashed outlines showing the
/// reserved routing space.
#[must_use]
pub fn svg_floorplan(floorplan: &Floorplan, netlist: &Netlist) -> String {
    render(floorplan, netlist, None)
}

/// Renders a floorplan with its global routing overlaid (paper Figs. 6/8):
/// routed net segments as polylines over the module geometry.
#[must_use]
pub fn svg_routed(floorplan: &Floorplan, netlist: &Netlist, routing: &RoutingResult) -> String {
    render(floorplan, netlist, Some(routing))
}

/// Renders a congestion heatmap: channel cells shaded by their worst
/// `usage / capacity` ratio (green → red), module outlines on top. Useful
/// for seeing where the §3.2 channel adjustment will grow the chip.
#[must_use]
pub fn svg_congestion(floorplan: &Floorplan, netlist: &Netlist, routing: &RoutingResult) -> String {
    let w = floorplan.chip_width();
    let h = floorplan.chip_height().max(1.0);
    let width_px = w * SCALE + 2.0 * MARGIN;
    let height_px = h * SCALE + 2.0 * MARGIN;
    let tx = |x: f64| MARGIN + x * SCALE;
    let ty = |y: f64| MARGIN + (h - y) * SCALE;

    let mut out = String::new();
    let _ = write!(
        out,
        r#"<svg xmlns="http://www.w3.org/2000/svg" width="{width_px:.0}" height="{height_px:.0}" viewBox="0 0 {width_px:.0} {height_px:.0}">"#
    );
    for (rect, ratio) in routing.cell_congestion() {
        if rect.is_degenerate() {
            continue;
        }
        // 0 -> pale green, 1 -> amber, >=2 -> red.
        let t = (ratio / 2.0).clamp(0.0, 1.0);
        let r = (180.0 + 75.0 * t) as u32;
        let g = (230.0 - 160.0 * t) as u32;
        let b = (180.0 - 120.0 * t) as u32;
        let _ = write!(
            out,
            r#"<rect x="{:.1}" y="{:.1}" width="{:.1}" height="{:.1}" fill="rgb({r},{g},{b})"/>"#,
            tx(rect.x),
            ty(rect.top()),
            rect.w * SCALE,
            rect.h * SCALE
        );
    }
    for placed in floorplan.iter() {
        let r = placed.rect;
        let _ = write!(
            out,
            r#"<rect x="{:.1}" y="{:.1}" width="{:.1}" height="{:.1}" fill="none" stroke="black" stroke-width="0.8"/>"#,
            tx(r.x),
            ty(r.top()),
            r.w * SCALE,
            r.h * SCALE
        );
    }
    let _ = write!(
        out,
        r#"<text x="{:.1}" y="{:.1}" font-size="10" font-family="monospace">{} congestion (max ratio {:.2}, {} overflowed edges)</text>"#,
        MARGIN,
        height_px - 2.0,
        netlist.name(),
        routing
            .cell_congestion()
            .iter()
            .map(|&(_, r)| r)
            .fold(0.0, f64::max),
        routing.adjustment.overflowed_edges
    );
    out.push_str("</svg>");
    out
}

fn render(floorplan: &Floorplan, netlist: &Netlist, routing: Option<&RoutingResult>) -> String {
    let w = floorplan.chip_width();
    let h = floorplan.chip_height().max(1.0);
    let width_px = w * SCALE + 2.0 * MARGIN;
    let height_px = h * SCALE + 2.0 * MARGIN;
    // y flips: chip origin is bottom-left, SVG origin is top-left.
    let tx = |x: f64| MARGIN + x * SCALE;
    let ty = |y: f64| MARGIN + (h - y) * SCALE;

    let mut out = String::new();
    let _ = write!(
        out,
        r#"<svg xmlns="http://www.w3.org/2000/svg" width="{width_px:.0}" height="{height_px:.0}" viewBox="0 0 {width_px:.0} {height_px:.0}">"#
    );
    let _ = write!(
        out,
        r#"<rect x="{:.1}" y="{:.1}" width="{:.1}" height="{:.1}" fill="white" stroke="black" stroke-width="1.5"/>"#,
        tx(0.0),
        ty(h),
        w * SCALE,
        h * SCALE
    );

    for (k, placed) in floorplan.iter().enumerate() {
        let color = PALETTE[k % PALETTE.len()];
        let e = placed.envelope;
        if e.area() > placed.rect.area() + 1e-9 {
            let _ = write!(
                out,
                r##"<rect x="{:.1}" y="{:.1}" width="{:.1}" height="{:.1}" fill="none" stroke="#888" stroke-width="0.6" stroke-dasharray="3,2"/>"##,
                tx(e.x),
                ty(e.top()),
                e.w * SCALE,
                e.h * SCALE
            );
        }
        let r = placed.rect;
        let _ = write!(
            out,
            r#"<rect x="{:.1}" y="{:.1}" width="{:.1}" height="{:.1}" fill="{color}" stroke="black" stroke-width="0.8"/>"#,
            tx(r.x),
            ty(r.top()),
            r.w * SCALE,
            r.h * SCALE
        );
        let c = r.center();
        let name = netlist.module(placed.id).name();
        let label = if placed.rotated {
            format!("{name}*")
        } else {
            name.to_string()
        };
        let font = (r.w.min(r.h) * SCALE * 0.3).clamp(4.0, 11.0);
        let _ = write!(
            out,
            r#"<text x="{:.1}" y="{:.1}" font-size="{font:.1}" text-anchor="middle" dominant-baseline="middle" font-family="monospace">{label}</text>"#,
            tx(c.x),
            ty(c.y)
        );
    }

    if let Some(routing) = routing {
        for routed in &routing.routes {
            let critical = netlist.net(routed.id).criticality() > 0.0;
            let (stroke, width) = if critical {
                ("#d62728", 1.2)
            } else {
                ("#1f77b4", 0.6)
            };
            for path in &routed.paths {
                if path.len() < 2 {
                    continue;
                }
                let pts: Vec<String> = path
                    .iter()
                    .map(|p| format!("{:.1},{:.1}", tx(p.x), ty(p.y)))
                    .collect();
                let _ = write!(
                    out,
                    r#"<polyline points="{}" fill="none" stroke="{stroke}" stroke-width="{width}" opacity="0.7"/>"#,
                    pts.join(" ")
                );
            }
        }
    }

    let _ = write!(
        out,
        r#"<text x="{:.1}" y="{:.1}" font-size="10" font-family="monospace">{}: {:.0} x {:.0}, utilization {:.1}%</text>"#,
        MARGIN,
        height_px - 2.0,
        netlist.name(),
        w,
        h,
        100.0 * floorplan.utilization(netlist)
    );
    out.push_str("</svg>");
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use fp_core::PlacedModule;
    use fp_geom::Rect;
    use fp_netlist::{Module, ModuleId, Net};

    fn world() -> (Floorplan, Netlist) {
        let mut nl = Netlist::new("t");
        nl.add_module(Module::rigid("alu", 4.0, 3.0, false))
            .unwrap();
        nl.add_module(Module::rigid("ram", 3.0, 3.0, false))
            .unwrap();
        nl.add_net(Net::new("bus", [ModuleId(0), ModuleId(1)]).with_criticality(0.9))
            .unwrap();
        let fp = Floorplan::new(
            10.0,
            vec![
                PlacedModule {
                    id: ModuleId(0),
                    rect: Rect::new(0.5, 0.5, 4.0, 3.0),
                    envelope: Rect::new(0.0, 0.0, 5.0, 4.0),
                    rotated: false,
                },
                PlacedModule {
                    id: ModuleId(1),
                    rect: Rect::new(6.0, 0.0, 3.0, 3.0),
                    envelope: Rect::new(6.0, 0.0, 3.0, 3.0),
                    rotated: true,
                },
            ],
        );
        (fp, nl)
    }

    #[test]
    fn floorplan_svg_structure() {
        let (fp, nl) = world();
        let svg = svg_floorplan(&fp, &nl);
        assert!(svg.starts_with("<svg"));
        assert!(svg.ends_with("</svg>"));
        assert!(svg.contains("alu"));
        assert!(svg.contains("ram*"), "rotated module gets a star");
        assert!(svg.contains("stroke-dasharray"), "envelope outline drawn");
        assert!(svg.contains("utilization"));
    }

    #[test]
    fn routed_svg_has_polylines() {
        let (fp, nl) = world();
        let routing = fp_route::route(&fp, &nl, &fp_route::RouteConfig::default()).unwrap();
        let svg = svg_routed(&fp, &nl, &routing);
        assert!(svg.contains("<polyline"));
        assert!(svg.contains("#d62728"), "critical net highlighted");
    }

    #[test]
    fn congestion_heatmap_renders() {
        let (fp, nl) = world();
        let routing = fp_route::route(&fp, &nl, &fp_route::RouteConfig::default()).unwrap();
        let svg = svg_congestion(&fp, &nl, &routing);
        assert!(svg.starts_with("<svg"));
        assert!(svg.contains("rgb("));
        assert!(svg.contains("congestion"));
    }

    #[test]
    fn svg_is_deterministic() {
        let (fp, nl) = world();
        assert_eq!(svg_floorplan(&fp, &nl), svg_floorplan(&fp, &nl));
    }
}
