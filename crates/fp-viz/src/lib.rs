//! Floorplan visualization: ASCII for terminals, SVG for files.
//!
//! Regenerates the paper's pictures: Figure 5 (a floorplan of the ami33
//! chip) and Figures 6/8 (the final floorplan with routing space) come out
//! of [`svg_floorplan`] / [`svg_routed`]; [`ascii_floorplan`] gives a quick
//! terminal view used by the CLI and the experiment binaries.
//!
//! ```
//! use fp_core::{Floorplan, PlacedModule};
//! use fp_geom::Rect;
//! use fp_netlist::{Module, ModuleId, Netlist};
//!
//! let mut nl = Netlist::new("demo");
//! nl.add_module(Module::rigid("alu", 4.0, 3.0, false)).unwrap();
//! let fp = Floorplan::new(8.0, vec![PlacedModule {
//!     id: ModuleId(0),
//!     rect: Rect::new(0.0, 0.0, 4.0, 3.0),
//!     envelope: Rect::new(0.0, 0.0, 4.0, 3.0),
//!     rotated: false,
//! }]);
//! let text = fp_viz::ascii_floorplan(&fp, &nl, 32);
//! assert!(text.contains('0'));
//! let svg = fp_viz::svg_floorplan(&fp, &nl);
//! assert!(svg.starts_with("<svg") && svg.contains("alu"));
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod ascii;
mod svg;

pub use ascii::ascii_floorplan;
pub use svg::{svg_congestion, svg_floorplan, svg_routed};
