//! Command-line parsing: subcommand dispatch plus the per-command flag
//! parsers, hand-rolled (no external dependency).
//!
//! `floorplan` keeps its original flat invocation for floorplanning one
//! problem (`floorplan chip.fp --route sp ...`) and adds two subcommands:
//! `serve` (run the fp-serve TCP service) and `load` (a load generator
//! driving a running service). The first token decides: `serve` / `load`
//! select a subcommand, anything else is parsed as a run invocation with
//! every pre-subcommand flag and error message unchanged.

use fp_core::{Objective, OrderingStrategy};
use fp_netlist::{ami33, format, generator::ProblemGenerator, Netlist};
use fp_route::{RouteAlgorithm, RoutingMode};
use fp_serve::{Backend, IoMode};

/// A parsed invocation.
#[derive(Debug)]
pub enum Command {
    /// Floorplan one problem end-to-end (the original CLI).
    Run(RunArgs),
    /// Serve floorplanning jobs over TCP.
    Serve(ServeArgs),
    /// Generate load against a running service.
    Load(LoadArgs),
}

/// Flags of the original single-problem pipeline.
#[derive(Debug)]
pub struct RunArgs {
    /// Positional problem file.
    pub input: Option<String>,
    /// Use the built-in ami33 benchmark.
    pub ami33: bool,
    /// Generate a random problem `N:SEED`.
    pub random: Option<(usize, u64)>,
    /// Fixed chip width.
    pub width: Option<f64>,
    /// MILP objective.
    pub objective: Objective,
    /// Module ordering strategy.
    pub ordering: OrderingStrategy,
    /// Grow §3.2 routing envelopes.
    pub envelopes: bool,
    /// Allow 90° rotation.
    pub rotation: bool,
    /// Run the §2.5 topology LP compaction.
    pub compact: bool,
    /// Per-step node limit.
    pub node_limit: usize,
    /// Per-step time limit in seconds.
    pub time_limit: f64,
    /// Solver threads (None = available parallelism).
    pub threads: Option<usize>,
    /// Global routing algorithm.
    pub route: Option<RouteAlgorithm>,
    /// Routing mode.
    pub mode: RoutingMode,
    /// Print an ASCII rendering.
    pub ascii: bool,
    /// Write an SVG rendering.
    pub svg: Option<String>,
    /// Write a JSONL trace.
    pub trace: Option<String>,
    /// Print a per-phase trace summary.
    pub summary: bool,
    /// Race the MILP pipeline against the annealer and analytic backends
    /// instead of running the pipeline alone.
    pub portfolio: bool,
}

/// Flags of `floorplan serve`.
#[derive(Debug, PartialEq)]
pub struct ServeArgs {
    /// Bind address (`127.0.0.1:0` picks an ephemeral port).
    pub bind: String,
    /// Worker threads.
    pub workers: usize,
    /// Solution-cache capacity (entries; 0 disables).
    pub cache: usize,
    /// Per-step node limit for jobs.
    pub node_limit: usize,
    /// Which front end: the sharded event loop or thread-per-connection.
    pub io: IoMode,
    /// Event-loop shard count (0 = auto from available parallelism).
    pub shards: usize,
    /// Global job-queue capacity (the shedding admission bound).
    pub queue: usize,
    /// Per-shard bound on decoded-but-unanswered jobs.
    pub pending: usize,
    /// Longest accepted request line in bytes.
    pub max_line: usize,
    /// Write service trace events (cache hits/misses, jobs) to a file.
    pub trace: Option<String>,
    /// Solver backends to race per job (empty = the sequential ladder).
    pub backends: Vec<Backend>,
    /// Solution-cache snapshot file: loaded on start, written on
    /// graceful shutdown (None = in-memory only).
    pub cache_file: Option<String>,
}

/// Flags of `floorplan load`.
#[derive(Debug, Clone, PartialEq)]
pub struct LoadArgs {
    /// Service address to connect to.
    pub addr: String,
    /// Concurrent client connections.
    pub clients: usize,
    /// Jobs per client.
    pub jobs: usize,
    /// Per-job deadline in milliseconds (0 = none).
    pub deadline_ms: u64,
    /// Modules per generated instance.
    pub modules: usize,
    /// Number of distinct instances the jobs cycle through (repeats are
    /// what exercises the solution cache).
    pub spread: usize,
    /// Open-loop aggregate arrival rate in jobs/s (0 = closed loop:
    /// each client waits for its answer before sending the next job).
    pub rate: f64,
    /// Percentage (0-100) of jobs that submit one shared duplicate
    /// instance; the rest are all distinct. Overrides `spread` when
    /// set — this is the coalescing/cache-dedup workload.
    pub dup: usize,
    /// Disable the solution cache for the submitted jobs.
    pub no_cache: bool,
    /// Percentage (0-100) of jobs sent as ECO delta jobs against one
    /// shared base instance (solved up front so its placement is in the
    /// service cache); each delta edits a single module.
    pub eco: usize,
}

/// Parses a full argument list (without the program name).
///
/// # Errors
///
/// A human-readable message; the empty string requests help.
pub fn parse_command<I: Iterator<Item = String>>(mut it: I) -> Result<Command, String> {
    match it.next() {
        Some(first) if first == "serve" => parse_serve_args(it).map(Command::Serve),
        Some(first) if first == "load" => parse_load_args(it).map(Command::Load),
        Some(first) => parse_run_args(std::iter::once(first).chain(it)).map(Command::Run),
        None => parse_run_args(std::iter::empty()).map(Command::Run),
    }
}

/// Parses the original run flags (behavior unchanged from the flat CLI).
///
/// # Errors
///
/// A human-readable message; the empty string requests help.
pub fn parse_run_args<I: Iterator<Item = String>>(mut it: I) -> Result<RunArgs, String> {
    let mut args = RunArgs {
        input: None,
        ami33: false,
        random: None,
        width: None,
        objective: Objective::Area,
        ordering: OrderingStrategy::Connectivity,
        envelopes: false,
        rotation: true,
        compact: false,
        node_limit: 20_000,
        time_limit: 10.0,
        threads: None,
        route: None,
        mode: RoutingMode::AroundTheCell,
        ascii: false,
        svg: None,
        trace: None,
        summary: false,
        portfolio: false,
    };
    while let Some(arg) = it.next() {
        let mut value = |name: &str| it.next().ok_or_else(|| format!("{name} needs a value"));
        match arg.as_str() {
            "--ami33" => args.ami33 = true,
            "--random" => {
                let v = value("--random")?;
                let (n, seed) = v
                    .split_once(':')
                    .ok_or_else(|| "--random wants N:SEED".to_string())?;
                args.random = Some((
                    n.parse().map_err(|_| "bad N in --random")?,
                    seed.parse().map_err(|_| "bad SEED in --random")?,
                ));
            }
            "--width" => args.width = Some(value("--width")?.parse().map_err(|_| "bad width")?),
            "--objective" => {
                let v = value("--objective")?;
                args.objective = match v.split_once(':') {
                    None if v == "area" => Objective::Area,
                    None if v == "wire" => Objective::AreaPlusWirelength { lambda: 0.5 },
                    Some(("wire", l)) => Objective::AreaPlusWirelength {
                        lambda: l.parse().map_err(|_| "bad lambda")?,
                    },
                    _ => return Err(format!("unknown objective '{v}'")),
                };
            }
            "--ordering" => {
                let v = value("--ordering")?;
                args.ordering = match v.split_once(':') {
                    None if v == "connectivity" => OrderingStrategy::Connectivity,
                    None if v == "area" => OrderingStrategy::Area,
                    None if v == "random" => OrderingStrategy::Random(1),
                    Some(("random", s)) => {
                        OrderingStrategy::Random(s.parse().map_err(|_| "bad seed")?)
                    }
                    _ => return Err(format!("unknown ordering '{v}'")),
                };
            }
            "--envelopes" => args.envelopes = true,
            "--no-rotation" => args.rotation = false,
            "--compact" => args.compact = true,
            "--node-limit" => {
                args.node_limit = value("--node-limit")?
                    .parse()
                    .map_err(|_| "bad node limit")?;
            }
            "--time-limit" => {
                args.time_limit = value("--time-limit")?
                    .parse()
                    .map_err(|_| "bad time limit")?;
            }
            "--threads" => {
                let n: usize = value("--threads")?
                    .parse()
                    .map_err(|_| "bad thread count")?;
                if n == 0 {
                    return Err("--threads wants at least 1".to_string());
                }
                args.threads = Some(n);
            }
            "--route" => {
                args.route = Some(match value("--route")?.as_str() {
                    "sp" => RouteAlgorithm::ShortestPath,
                    "wsp" => RouteAlgorithm::WeightedShortestPath,
                    other => return Err(format!("unknown router '{other}'")),
                });
            }
            "--mode" => {
                args.mode = match value("--mode")?.as_str() {
                    "over" => RoutingMode::OverTheCell,
                    "around" => RoutingMode::AroundTheCell,
                    other => return Err(format!("unknown mode '{other}'")),
                };
            }
            "--ascii" => args.ascii = true,
            "--svg" => args.svg = Some(value("--svg")?),
            "--trace" => args.trace = Some(value("--trace")?),
            "--summary" => args.summary = true,
            "--portfolio" => args.portfolio = true,
            "--help" | "-h" => return Err(String::new()),
            other if !other.starts_with('-') => args.input = Some(other.to_string()),
            other => return Err(format!("unknown option '{other}'")),
        }
    }
    Ok(args)
}

fn parse_serve_args<I: Iterator<Item = String>>(mut it: I) -> Result<ServeArgs, String> {
    let mut args = ServeArgs {
        bind: "127.0.0.1:7077".to_string(),
        workers: 2,
        cache: 128,
        node_limit: 4_000,
        io: IoMode::Event,
        shards: 0,
        queue: 64,
        pending: 256,
        max_line: 1 << 20,
        trace: None,
        backends: Vec::new(),
        cache_file: None,
    };
    while let Some(arg) = it.next() {
        let mut value = |name: &str| it.next().ok_or_else(|| format!("{name} needs a value"));
        match arg.as_str() {
            "--bind" => args.bind = value("--bind")?,
            "--workers" => {
                let n: usize = value("--workers")?
                    .parse()
                    .map_err(|_| "bad worker count")?;
                if n == 0 {
                    return Err("--workers wants at least 1".to_string());
                }
                args.workers = n;
            }
            "--cache" => {
                args.cache = value("--cache")?
                    .parse()
                    .map_err(|_| "bad cache capacity")?;
            }
            "--node-limit" => {
                args.node_limit = value("--node-limit")?
                    .parse()
                    .map_err(|_| "bad node limit")?;
            }
            "--io" => {
                args.io = match value("--io")?.as_str() {
                    "event" => IoMode::Event,
                    "threads" => IoMode::Threaded,
                    other => return Err(format!("unknown io mode '{other}' (event|threads)")),
                };
            }
            "--shards" => {
                args.shards = value("--shards")?.parse().map_err(|_| "bad shard count")?;
            }
            "--queue" => {
                let n: usize = value("--queue")?
                    .parse()
                    .map_err(|_| "bad queue capacity")?;
                if n == 0 {
                    return Err("--queue wants at least 1".to_string());
                }
                args.queue = n;
            }
            "--pending" => {
                let n: usize = value("--pending")?
                    .parse()
                    .map_err(|_| "bad pending bound")?;
                if n == 0 {
                    return Err("--pending wants at least 1".to_string());
                }
                args.pending = n;
            }
            "--max-line" => {
                let n: usize = value("--max-line")?.parse().map_err(|_| "bad line limit")?;
                if n == 0 {
                    return Err("--max-line wants at least 1".to_string());
                }
                args.max_line = n;
            }
            "--trace" => args.trace = Some(value("--trace")?),
            "--backends" => args.backends = Backend::parse_list(&value("--backends")?)?,
            "--cache-file" => args.cache_file = Some(value("--cache-file")?),
            "--help" | "-h" => return Err(String::new()),
            other => return Err(format!("unknown serve option '{other}'")),
        }
    }
    Ok(args)
}

fn parse_load_args<I: Iterator<Item = String>>(mut it: I) -> Result<LoadArgs, String> {
    let mut args = LoadArgs {
        addr: "127.0.0.1:7077".to_string(),
        clients: 4,
        jobs: 16,
        deadline_ms: 0,
        modules: 5,
        spread: 4,
        rate: 0.0,
        dup: 0,
        no_cache: false,
        eco: 0,
    };
    while let Some(arg) = it.next() {
        let mut value = |name: &str| it.next().ok_or_else(|| format!("{name} needs a value"));
        match arg.as_str() {
            "--addr" => args.addr = value("--addr")?,
            "--clients" => {
                let n: usize = value("--clients")?
                    .parse()
                    .map_err(|_| "bad client count")?;
                if n == 0 {
                    return Err("--clients wants at least 1".to_string());
                }
                args.clients = n;
            }
            "--jobs" => {
                let n: usize = value("--jobs")?.parse().map_err(|_| "bad job count")?;
                if n == 0 {
                    return Err("--jobs wants at least 1".to_string());
                }
                args.jobs = n;
            }
            "--deadline-ms" => {
                args.deadline_ms = value("--deadline-ms")?
                    .parse()
                    .map_err(|_| "bad deadline")?;
            }
            "--modules" => {
                let n: usize = value("--modules")?
                    .parse()
                    .map_err(|_| "bad module count")?;
                if n == 0 {
                    return Err("--modules wants at least 1".to_string());
                }
                args.modules = n;
            }
            "--spread" => {
                let n: usize = value("--spread")?.parse().map_err(|_| "bad spread")?;
                if n == 0 {
                    return Err("--spread wants at least 1".to_string());
                }
                args.spread = n;
            }
            "--rate" => {
                let r: f64 = value("--rate")?.parse().map_err(|_| "bad rate")?;
                if !r.is_finite() || r < 0.0 {
                    return Err("--rate wants a non-negative jobs/s".to_string());
                }
                args.rate = r;
            }
            "--dup" => {
                let p: usize = value("--dup")?.parse().map_err(|_| "bad dup percent")?;
                if p > 100 {
                    return Err("--dup wants a percentage 0-100".to_string());
                }
                args.dup = p;
            }
            "--no-cache" => args.no_cache = true,
            "--eco" => {
                let p: usize = value("--eco")?.parse().map_err(|_| "bad eco percent")?;
                if p > 100 {
                    return Err("--eco wants a percentage 0-100".to_string());
                }
                args.eco = p;
            }
            "--help" | "-h" => return Err(String::new()),
            other => return Err(format!("unknown load option '{other}'")),
        }
    }
    Ok(args)
}

/// Resolves the run invocation's problem source to a netlist.
///
/// # Errors
///
/// A human-readable message when no source is given or the file cannot be
/// read/parsed.
pub fn load_netlist(args: &RunArgs) -> Result<Netlist, String> {
    if args.ami33 {
        return Ok(ami33());
    }
    if let Some((n, seed)) = args.random {
        return Ok(ProblemGenerator::new(n, seed).generate());
    }
    match &args.input {
        Some(path) => {
            let text =
                std::fs::read_to_string(path).map_err(|e| format!("cannot read '{path}': {e}"))?;
            // MCNC decks by extension; everything else uses the native
            // format.
            let parsed = if path.to_ascii_lowercase().ends_with(".yal") {
                format::parse_yal(&text)
            } else {
                format::parse(&text)
            };
            parsed.map_err(|e| format!("cannot parse '{path}': {e}"))
        }
        None => Err("no input: give a problem file, --ami33 or --random N:SEED".to_string()),
    }
}

/// Usage text for every command.
pub const HELP: &str = "usage: floorplan [INPUT.fp] [--ami33 | --random N:SEED]
  [--width W] [--objective area|wire[:LAMBDA]]
  [--ordering connectivity|random[:SEED]|area]
  [--envelopes] [--no-rotation] [--compact]
  [--node-limit N] [--time-limit SECS] [--threads N]
  [--route sp|wsp] [--mode over|around]
  [--ascii] [--svg FILE]
  [--trace FILE.jsonl] [--summary] [--portfolio]

  --trace FILE   write structured trace events (one JSON object per line:
                 solver nodes/incumbents, augmentation steps, routing)
  --summary      print a per-phase rollup of the traced run
  --portfolio    race the MILP pipeline, the slicing annealer and the
                 analytic placer on threads; the lowest-cost legal
                 answer wins and the report names the winning backend

usage: floorplan serve [--bind ADDR] [--workers N] [--cache N]
  [--node-limit N] [--io event|threads] [--shards N] [--queue N]
  [--pending N] [--max-line BYTES] [--trace FILE.jsonl]
  [--backends LIST] [--cache-file FILE.jsonl]

  serve floorplanning jobs over TCP, one JSON object per line in each
  direction; --bind 127.0.0.1:0 picks an ephemeral port (printed on start)
  --io event    sharded poll loops, request coalescing, load shedding
                with typed retry_after_ms (the default)
  --io threads  the original two-threads-per-connection front end
  --queue N     global admission bound; --pending N per-shard bound
  --backends LIST  race these solver backends per job (comma-separated
                from milp, annealer, analytic; default: the sequential
                MILP ladder alone)
  --cache-file F   persist the solution cache: load the snapshot on
                start, write it back on graceful shutdown

usage: floorplan load [--addr ADDR] [--clients N] [--jobs M]
  [--deadline-ms D] [--modules K] [--spread S] [--dup PCT]
  [--rate JOBS_PER_S] [--no-cache] [--eco PCT]

  drive a running serve with N clients x M jobs over S distinct random
  instances and report accounting, throughput and latency percentiles
  --dup PCT   PCT% of jobs submit one shared instance (coalesce/cache
              fodder), the rest are all distinct; overrides --spread
  --rate R    open loop: send at R jobs/s aggregate without waiting for
              answers (default closed loop: one in flight per client)
  --eco PCT   PCT% of jobs are ECO delta jobs: one shared base instance
              is solved up front, then each delta edits a single module
              and pins the base fingerprint so the service re-solves
              incrementally from the cached base placement";

#[cfg(test)]
mod tests {
    use super::*;

    fn parse(tokens: &[&str]) -> Result<RunArgs, String> {
        parse_run_args(tokens.iter().map(|s| s.to_string()))
    }

    fn command(tokens: &[&str]) -> Result<Command, String> {
        parse_command(tokens.iter().map(|s| s.to_string()))
    }

    #[test]
    fn defaults() {
        let a = parse(&["--ami33"]).unwrap();
        assert!(a.ami33);
        assert_eq!(a.objective, Objective::Area);
        assert!(a.rotation && !a.envelopes && !a.compact);
        assert!(a.route.is_none());
        assert!(a.trace.is_none() && !a.summary);
        assert!(!a.portfolio);
    }

    #[test]
    fn portfolio_flag_parses() {
        assert!(parse(&["--ami33", "--portfolio"]).unwrap().portfolio);
    }

    #[test]
    fn full_flags() {
        let a = parse(&[
            "chip.fp",
            "--width",
            "120",
            "--objective",
            "wire:0.7",
            "--ordering",
            "random:9",
            "--envelopes",
            "--no-rotation",
            "--compact",
            "--node-limit",
            "500",
            "--time-limit",
            "2.5",
            "--threads",
            "4",
            "--route",
            "wsp",
            "--mode",
            "over",
            "--ascii",
            "--svg",
            "out.svg",
            "--trace",
            "out.jsonl",
            "--summary",
        ])
        .unwrap();
        assert_eq!(a.input.as_deref(), Some("chip.fp"));
        assert_eq!(a.width, Some(120.0));
        assert_eq!(a.objective, Objective::AreaPlusWirelength { lambda: 0.7 });
        assert_eq!(a.ordering, OrderingStrategy::Random(9));
        assert!(a.envelopes && !a.rotation && a.compact && a.ascii);
        assert_eq!(a.node_limit, 500);
        assert_eq!(a.time_limit, 2.5);
        assert_eq!(a.threads, Some(4));
        assert_eq!(a.route, Some(RouteAlgorithm::WeightedShortestPath));
        assert_eq!(a.mode, RoutingMode::OverTheCell);
        assert_eq!(a.svg.as_deref(), Some("out.svg"));
        assert_eq!(a.trace.as_deref(), Some("out.jsonl"));
        assert!(a.summary);
    }

    #[test]
    fn bad_flags_error() {
        assert!(parse(&["--objective", "speed"]).is_err());
        assert!(parse(&["--random", "15"]).is_err());
        assert!(parse(&["--bogus"]).is_err());
        assert!(parse(&["--width"]).is_err());
        assert!(parse(&["--threads", "0"]).is_err());
        assert!(parse(&["--threads", "many"]).is_err());
        assert!(parse(&["--trace"]).is_err());
    }

    #[test]
    fn threads_defaults_to_auto() {
        assert_eq!(parse(&["--ami33"]).unwrap().threads, None);
    }

    #[test]
    fn help_is_empty_error() {
        assert_eq!(parse(&["--help"]).unwrap_err(), "");
        assert_eq!(command(&["serve", "--help"]).unwrap_err(), "");
        assert_eq!(command(&["load", "-h"]).unwrap_err(), "");
    }

    #[test]
    fn load_random_and_ami33() {
        let a = parse(&["--random", "5:3"]).unwrap();
        let nl = load_netlist(&a).unwrap();
        assert_eq!(nl.num_modules(), 5);
        let a = parse(&["--ami33"]).unwrap();
        assert_eq!(load_netlist(&a).unwrap().num_modules(), 33);
        let a = parse(&[]).unwrap();
        assert!(load_netlist(&a).is_err());
    }

    #[test]
    fn dispatch_defaults_to_run() {
        assert!(matches!(command(&["--ami33"]).unwrap(), Command::Run(_)));
        assert!(matches!(command(&["chip.fp"]).unwrap(), Command::Run(_)));
        assert!(matches!(command(&[]).unwrap(), Command::Run(_)));
    }

    #[test]
    fn serve_flags_parse() {
        let Command::Serve(s) = command(&[
            "serve",
            "--bind",
            "127.0.0.1:0",
            "--workers",
            "4",
            "--cache",
            "32",
            "--node-limit",
            "900",
            "--trace",
            "t.jsonl",
        ])
        .unwrap() else {
            panic!("expected serve");
        };
        assert_eq!(s.bind, "127.0.0.1:0");
        assert_eq!((s.workers, s.cache, s.node_limit), (4, 32, 900));
        assert_eq!(s.trace.as_deref(), Some("t.jsonl"));
        assert_eq!(s.io, IoMode::Event);
        assert_eq!((s.shards, s.queue, s.pending), (0, 64, 256));
        assert!(s.backends.is_empty());
        assert!(command(&["serve", "--workers", "0"]).is_err());
        assert!(command(&["serve", "--bogus"]).is_err());
    }

    #[test]
    fn serve_backends_parse() {
        let Command::Serve(s) =
            command(&["serve", "--backends", "milp,annealer,analytic"]).unwrap()
        else {
            panic!("expected serve");
        };
        assert_eq!(
            s.backends,
            vec![Backend::Milp, Backend::Annealer, Backend::Analytic]
        );
        assert!(command(&["serve", "--backends", "milp,quantum"]).is_err());
        assert!(command(&["serve", "--backends", "milp,milp"]).is_err());
    }

    #[test]
    fn serve_io_flags_parse() {
        let Command::Serve(s) = command(&[
            "serve",
            "--io",
            "threads",
            "--shards",
            "2",
            "--queue",
            "8",
            "--pending",
            "16",
            "--max-line",
            "4096",
        ])
        .unwrap() else {
            panic!("expected serve");
        };
        assert_eq!(s.io, IoMode::Threaded);
        assert_eq!((s.shards, s.queue, s.pending, s.max_line), (2, 8, 16, 4096));
        assert!(command(&["serve", "--io", "epoll"]).is_err());
        assert!(command(&["serve", "--queue", "0"]).is_err());
        assert!(command(&["serve", "--max-line", "0"]).is_err());
    }

    #[test]
    fn load_flags_parse() {
        let Command::Load(l) = command(&[
            "load",
            "--addr",
            "127.0.0.1:9",
            "--clients",
            "8",
            "--jobs",
            "100",
            "--deadline-ms",
            "50",
            "--modules",
            "6",
            "--spread",
            "2",
            "--no-cache",
        ])
        .unwrap() else {
            panic!("expected load");
        };
        assert_eq!(l.addr, "127.0.0.1:9");
        assert_eq!((l.clients, l.jobs), (8, 100));
        assert_eq!(l.deadline_ms, 50);
        assert_eq!((l.modules, l.spread), (6, 2));
        assert!(l.no_cache);
        assert_eq!(l.rate, 0.0);
        assert_eq!(l.dup, 0);
        assert_eq!(l.eco, 0);
        assert!(command(&["load", "--clients", "0"]).is_err());
        assert!(command(&["load", "--jobs", "x"]).is_err());
    }

    #[test]
    fn load_eco_flag_parses() {
        let Command::Load(l) = command(&["load", "--eco", "40"]).unwrap() else {
            panic!("expected load");
        };
        assert_eq!(l.eco, 40);
        assert!(command(&["load", "--eco", "101"]).is_err());
        assert!(command(&["load", "--eco", "some"]).is_err());
    }

    #[test]
    fn serve_cache_file_parses() {
        let Command::Serve(s) = command(&["serve", "--cache-file", "snap.jsonl"]).unwrap() else {
            panic!("expected serve");
        };
        assert_eq!(s.cache_file.as_deref(), Some("snap.jsonl"));
        assert!(command(&["serve", "--cache-file"]).is_err());
    }

    #[test]
    fn load_open_loop_flags_parse() {
        let Command::Load(l) = command(&["load", "--rate", "250.5", "--dup", "50"]).unwrap() else {
            panic!("expected load");
        };
        assert_eq!(l.rate, 250.5);
        assert_eq!(l.dup, 50);
        assert!(command(&["load", "--rate", "-1"]).is_err());
        assert!(command(&["load", "--dup", "101"]).is_err());
    }
}
