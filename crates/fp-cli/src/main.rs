//! `floorplan` — end-to-end CLI for the analytical floorplanner.
//!
//! Run `floorplan --help` for usage. The CLI covers the full paper
//! pipeline: load or generate a problem, floorplan by successive
//! augmentation, optionally compact with the §2.5 topology LP, globally
//! route, and emit ASCII/SVG renderings.

use fp_core::{optimize_topology, FloorplanConfig, Floorplanner, Objective, OrderingStrategy};
use fp_netlist::{ami33, format, generator::ProblemGenerator, Netlist};
use fp_route::{route, RouteAlgorithm, RouteConfig, RoutingMode};
use fp_viz::{ascii_floorplan, svg_floorplan, svg_routed};
use std::process::ExitCode;
use std::time::Duration;

#[derive(Debug)]
struct Args {
    input: Option<String>,
    ami33: bool,
    random: Option<(usize, u64)>,
    width: Option<f64>,
    objective: Objective,
    ordering: OrderingStrategy,
    envelopes: bool,
    rotation: bool,
    compact: bool,
    node_limit: usize,
    time_limit: f64,
    threads: Option<usize>,
    route: Option<RouteAlgorithm>,
    mode: RoutingMode,
    ascii: bool,
    svg: Option<String>,
    trace: Option<String>,
    summary: bool,
}

fn parse_args<I: Iterator<Item = String>>(mut it: I) -> Result<Args, String> {
    let mut args = Args {
        input: None,
        ami33: false,
        random: None,
        width: None,
        objective: Objective::Area,
        ordering: OrderingStrategy::Connectivity,
        envelopes: false,
        rotation: true,
        compact: false,
        node_limit: 20_000,
        time_limit: 10.0,
        threads: None,
        route: None,
        mode: RoutingMode::AroundTheCell,
        ascii: false,
        svg: None,
        trace: None,
        summary: false,
    };
    while let Some(arg) = it.next() {
        let mut value = |name: &str| it.next().ok_or_else(|| format!("{name} needs a value"));
        match arg.as_str() {
            "--ami33" => args.ami33 = true,
            "--random" => {
                let v = value("--random")?;
                let (n, seed) = v
                    .split_once(':')
                    .ok_or_else(|| "--random wants N:SEED".to_string())?;
                args.random = Some((
                    n.parse().map_err(|_| "bad N in --random")?,
                    seed.parse().map_err(|_| "bad SEED in --random")?,
                ));
            }
            "--width" => args.width = Some(value("--width")?.parse().map_err(|_| "bad width")?),
            "--objective" => {
                let v = value("--objective")?;
                args.objective = match v.split_once(':') {
                    None if v == "area" => Objective::Area,
                    None if v == "wire" => Objective::AreaPlusWirelength { lambda: 0.5 },
                    Some(("wire", l)) => Objective::AreaPlusWirelength {
                        lambda: l.parse().map_err(|_| "bad lambda")?,
                    },
                    _ => return Err(format!("unknown objective '{v}'")),
                };
            }
            "--ordering" => {
                let v = value("--ordering")?;
                args.ordering = match v.split_once(':') {
                    None if v == "connectivity" => OrderingStrategy::Connectivity,
                    None if v == "area" => OrderingStrategy::Area,
                    None if v == "random" => OrderingStrategy::Random(1),
                    Some(("random", s)) => {
                        OrderingStrategy::Random(s.parse().map_err(|_| "bad seed")?)
                    }
                    _ => return Err(format!("unknown ordering '{v}'")),
                };
            }
            "--envelopes" => args.envelopes = true,
            "--no-rotation" => args.rotation = false,
            "--compact" => args.compact = true,
            "--node-limit" => {
                args.node_limit = value("--node-limit")?
                    .parse()
                    .map_err(|_| "bad node limit")?;
            }
            "--time-limit" => {
                args.time_limit = value("--time-limit")?
                    .parse()
                    .map_err(|_| "bad time limit")?;
            }
            "--threads" => {
                let n: usize = value("--threads")?
                    .parse()
                    .map_err(|_| "bad thread count")?;
                if n == 0 {
                    return Err("--threads wants at least 1".to_string());
                }
                args.threads = Some(n);
            }
            "--route" => {
                args.route = Some(match value("--route")?.as_str() {
                    "sp" => RouteAlgorithm::ShortestPath,
                    "wsp" => RouteAlgorithm::WeightedShortestPath,
                    other => return Err(format!("unknown router '{other}'")),
                });
            }
            "--mode" => {
                args.mode = match value("--mode")?.as_str() {
                    "over" => RoutingMode::OverTheCell,
                    "around" => RoutingMode::AroundTheCell,
                    other => return Err(format!("unknown mode '{other}'")),
                };
            }
            "--ascii" => args.ascii = true,
            "--svg" => args.svg = Some(value("--svg")?),
            "--trace" => args.trace = Some(value("--trace")?),
            "--summary" => args.summary = true,
            "--help" | "-h" => return Err(String::new()),
            other if !other.starts_with('-') => args.input = Some(other.to_string()),
            other => return Err(format!("unknown option '{other}'")),
        }
    }
    Ok(args)
}

fn load_netlist(args: &Args) -> Result<Netlist, String> {
    if args.ami33 {
        return Ok(ami33());
    }
    if let Some((n, seed)) = args.random {
        return Ok(ProblemGenerator::new(n, seed).generate());
    }
    match &args.input {
        Some(path) => {
            let text =
                std::fs::read_to_string(path).map_err(|e| format!("cannot read '{path}': {e}"))?;
            // MCNC decks by extension; everything else uses the native
            // format.
            let parsed = if path.to_ascii_lowercase().ends_with(".yal") {
                format::parse_yal(&text)
            } else {
                format::parse(&text)
            };
            parsed.map_err(|e| format!("cannot parse '{path}': {e}"))
        }
        None => Err("no input: give a problem file, --ami33 or --random N:SEED".to_string()),
    }
}

fn run() -> Result<(), String> {
    let args = parse_args(std::env::args().skip(1))?;
    let netlist = load_netlist(&args)?;

    // One tracer feeds every pipeline phase: a JSONL file sink for --trace,
    // an in-memory collector for --summary, both behind a fanout when
    // combined, and a free no-op when neither flag is given.
    let collector = args.summary.then(fp_obs::Collector::new);
    let tracer = {
        let mut sinks: Vec<Box<dyn fp_obs::Sink>> = Vec::new();
        if let Some(path) = &args.trace {
            let sink = fp_obs::JsonlSink::create(path)
                .map_err(|e| format!("cannot create trace file '{path}': {e}"))?;
            sinks.push(Box::new(sink));
        }
        if let Some(c) = &collector {
            sinks.push(Box::new(c.clone()));
        }
        if sinks.is_empty() {
            fp_obs::Tracer::disabled()
        } else {
            fp_obs::Tracer::fanout(sinks)
        }
    };

    let mut config = FloorplanConfig::default()
        .with_tracer(tracer.clone())
        .with_objective(args.objective)
        .with_ordering(args.ordering.clone())
        .with_envelopes(args.envelopes)
        .with_rotation(args.rotation)
        .with_step_options({
            // Default thread count (no --threads): available parallelism.
            let mut opts = fp_milp::SolveOptions::default()
                .with_node_limit(args.node_limit)
                .with_time_limit(Duration::from_secs_f64(args.time_limit));
            if let Some(n) = args.threads {
                opts = opts.with_threads(n);
            }
            opts
        });
    if let Some(w) = args.width {
        config = config.with_chip_width(w);
    }

    eprintln!(
        "floorplanning '{}': {}",
        netlist.name(),
        fp_netlist::NetlistStats::of(&netlist)
    );
    let result = Floorplanner::with_config(&netlist, config.clone())
        .run()
        .map_err(|e| e.to_string())?;
    let mut floorplan = result.floorplan;
    if args.compact {
        floorplan = optimize_topology(&floorplan, &netlist, &config).map_err(|e| e.to_string())?;
    }

    println!(
        "chip {:.1} x {:.1} = {:.0}  utilization {:.1}%  wirelength(est) {:.0}  steps {}  nodes {}  time {:.2?}",
        floorplan.chip_width(),
        floorplan.chip_height(),
        floorplan.chip_area(),
        100.0 * floorplan.utilization(&netlist),
        floorplan.center_wirelength(&netlist),
        result.stats.steps.len(),
        result.stats.total_nodes(),
        result.stats.elapsed,
    );

    let routing = match args.route {
        Some(algorithm) => {
            let rc = RouteConfig::default()
                .with_algorithm(algorithm)
                .with_mode(args.mode)
                .with_tracer(tracer.clone());
            let routing = route(&floorplan, &netlist, &rc).map_err(|e| e.to_string())?;
            print!("{}", fp_route::RouteReport::of(&routing).render(&netlist));
            Some(routing)
        }
        None => None,
    };

    if args.ascii {
        println!("{}", ascii_floorplan(&floorplan, &netlist, 72));
    }
    if let Some(path) = &args.svg {
        let svg = match &routing {
            Some(r) => svg_routed(&floorplan, &netlist, r),
            None => svg_floorplan(&floorplan, &netlist),
        };
        std::fs::write(path, svg).map_err(|e| format!("cannot write '{path}': {e}"))?;
        eprintln!("wrote {path}");
    }

    tracer.flush();
    if let Some(path) = &args.trace {
        eprintln!("wrote trace {path} ({} events)", tracer.total_events());
    }
    if let Some(collector) = &collector {
        print!("{}", fp_obs::render_summary(&collector.records()));
    }
    Ok(())
}

fn main() -> ExitCode {
    match run() {
        Ok(()) => ExitCode::SUCCESS,
        Err(msg) if msg.is_empty() => {
            println!("{HELP}");
            ExitCode::SUCCESS
        }
        Err(msg) => {
            eprintln!("error: {msg}");
            eprintln!("{HELP}");
            ExitCode::from(2)
        }
    }
}

const HELP: &str = "usage: floorplan [INPUT.fp] [--ami33 | --random N:SEED]
  [--width W] [--objective area|wire[:LAMBDA]]
  [--ordering connectivity|random[:SEED]|area]
  [--envelopes] [--no-rotation] [--compact]
  [--node-limit N] [--time-limit SECS] [--threads N]
  [--route sp|wsp] [--mode over|around]
  [--ascii] [--svg FILE]
  [--trace FILE.jsonl] [--summary]

  --trace FILE   write structured trace events (one JSON object per line:
                 solver nodes/incumbents, augmentation steps, routing)
  --summary      print a per-phase rollup of the traced run";

#[cfg(test)]
mod tests {
    use super::*;

    fn parse(tokens: &[&str]) -> Result<Args, String> {
        parse_args(tokens.iter().map(|s| s.to_string()))
    }

    #[test]
    fn defaults() {
        let a = parse(&["--ami33"]).unwrap();
        assert!(a.ami33);
        assert_eq!(a.objective, Objective::Area);
        assert!(a.rotation && !a.envelopes && !a.compact);
        assert!(a.route.is_none());
        assert!(a.trace.is_none() && !a.summary);
    }

    #[test]
    fn full_flags() {
        let a = parse(&[
            "chip.fp",
            "--width",
            "120",
            "--objective",
            "wire:0.7",
            "--ordering",
            "random:9",
            "--envelopes",
            "--no-rotation",
            "--compact",
            "--node-limit",
            "500",
            "--time-limit",
            "2.5",
            "--threads",
            "4",
            "--route",
            "wsp",
            "--mode",
            "over",
            "--ascii",
            "--svg",
            "out.svg",
            "--trace",
            "out.jsonl",
            "--summary",
        ])
        .unwrap();
        assert_eq!(a.input.as_deref(), Some("chip.fp"));
        assert_eq!(a.width, Some(120.0));
        assert_eq!(a.objective, Objective::AreaPlusWirelength { lambda: 0.7 });
        assert_eq!(a.ordering, OrderingStrategy::Random(9));
        assert!(a.envelopes && !a.rotation && a.compact && a.ascii);
        assert_eq!(a.node_limit, 500);
        assert_eq!(a.time_limit, 2.5);
        assert_eq!(a.threads, Some(4));
        assert_eq!(a.route, Some(RouteAlgorithm::WeightedShortestPath));
        assert_eq!(a.mode, RoutingMode::OverTheCell);
        assert_eq!(a.svg.as_deref(), Some("out.svg"));
        assert_eq!(a.trace.as_deref(), Some("out.jsonl"));
        assert!(a.summary);
    }

    #[test]
    fn bad_flags_error() {
        assert!(parse(&["--objective", "speed"]).is_err());
        assert!(parse(&["--random", "15"]).is_err());
        assert!(parse(&["--bogus"]).is_err());
        assert!(parse(&["--width"]).is_err());
        assert!(parse(&["--threads", "0"]).is_err());
        assert!(parse(&["--threads", "many"]).is_err());
        assert!(parse(&["--trace"]).is_err());
    }

    #[test]
    fn threads_defaults_to_auto() {
        assert_eq!(parse(&["--ami33"]).unwrap().threads, None);
    }

    #[test]
    fn help_is_empty_error() {
        assert_eq!(parse(&["--help"]).unwrap_err(), "");
    }

    #[test]
    fn load_random_and_ami33() {
        let a = parse(&["--random", "5:3"]).unwrap();
        let nl = load_netlist(&a).unwrap();
        assert_eq!(nl.num_modules(), 5);
        let a = parse(&["--ami33"]).unwrap();
        assert_eq!(load_netlist(&a).unwrap().num_modules(), 33);
        let a = parse(&[]).unwrap();
        assert!(load_netlist(&a).is_err());
    }
}
