//! `floorplan` — end-to-end CLI for the analytical floorplanner.
//!
//! Run `floorplan --help` for usage. The default invocation covers the
//! full paper pipeline: load or generate a problem, floorplan by
//! successive augmentation, optionally compact with the §2.5 topology LP,
//! globally route, and emit ASCII/SVG renderings. `floorplan serve` runs
//! the same pipeline as a concurrent TCP service (see fp-serve) and
//! `floorplan load` drives a running service and reports throughput and
//! latency percentiles.

mod args;

use args::{Command, LoadArgs, RunArgs, ServeArgs, HELP};
use fp_core::{optimize_topology, FloorplanConfig, Floorplanner};
use fp_netlist::{generator::ProblemGenerator, Netlist};
use fp_route::{route, RouteConfig};
use fp_serve::{JobRequest, JobResponse, ServeConfig, Server};
use fp_viz::{ascii_floorplan, svg_floorplan, svg_routed};
use std::collections::HashMap;
use std::io::{BufRead, BufReader, Write};
use std::net::TcpStream;
use std::process::ExitCode;
use std::time::{Duration, Instant};

fn cmd_run(args: &RunArgs) -> Result<(), String> {
    let netlist = args::load_netlist(args)?;

    // One tracer feeds every pipeline phase: a JSONL file sink for --trace,
    // an in-memory collector for --summary, both behind a fanout when
    // combined, and a free no-op when neither flag is given.
    let collector = args.summary.then(fp_obs::Collector::new);
    let tracer = {
        let mut sinks: Vec<Box<dyn fp_obs::Sink>> = Vec::new();
        if let Some(path) = &args.trace {
            let sink = fp_obs::JsonlSink::create(path)
                .map_err(|e| format!("cannot create trace file '{path}': {e}"))?;
            sinks.push(Box::new(sink));
        }
        if let Some(c) = &collector {
            sinks.push(Box::new(c.clone()));
        }
        if sinks.is_empty() {
            fp_obs::Tracer::disabled()
        } else {
            fp_obs::Tracer::fanout(sinks)
        }
    };

    let mut config = FloorplanConfig::default()
        .with_tracer(tracer.clone())
        .with_objective(args.objective)
        .with_ordering(args.ordering.clone())
        .with_envelopes(args.envelopes)
        .with_rotation(args.rotation)
        .with_step_options({
            // Default thread count (no --threads): available parallelism.
            let mut opts = fp_milp::SolveOptions::default()
                .with_node_limit(args.node_limit)
                .with_time_limit(Duration::from_secs_f64(args.time_limit));
            if let Some(n) = args.threads {
                opts = opts.with_threads(n);
            }
            opts
        });
    if let Some(w) = args.width {
        config = config.with_chip_width(w);
    }

    eprintln!(
        "floorplanning '{}': {}",
        netlist.name(),
        fp_netlist::NetlistStats::of(&netlist)
    );
    let started = Instant::now();
    let (mut floorplan, detail) = if args.portfolio {
        // Race the pipeline against the heuristic backends; the lowest
        // cost legal answer wins (see fp-serve's portfolio module).
        let backends = [
            fp_serve::Backend::Milp,
            fp_serve::Backend::Annealer,
            fp_serve::Backend::Analytic,
        ];
        let outcome = fp_serve::race(&netlist, &config, &backends, 0, 0x5EED, &tracer)
            .ok_or("every portfolio backend failed")?;
        (outcome.floorplan, format!("backend {}", outcome.winner))
    } else {
        let result = Floorplanner::with_config(&netlist, config.clone())
            .run()
            .map_err(|e| e.to_string())?;
        let detail = format!(
            "steps {}  nodes {}",
            result.stats.steps.len(),
            result.stats.total_nodes(),
        );
        (result.floorplan, detail)
    };
    if args.compact {
        floorplan = optimize_topology(&floorplan, &netlist, &config).map_err(|e| e.to_string())?;
    }

    println!(
        "chip {:.1} x {:.1} = {:.0}  utilization {:.1}%  wirelength(est) {:.0}  {detail}  time {:.2?}",
        floorplan.chip_width(),
        floorplan.chip_height(),
        floorplan.chip_area(),
        100.0 * floorplan.utilization(&netlist),
        floorplan.center_wirelength(&netlist),
        started.elapsed(),
    );

    let routing = match args.route {
        Some(algorithm) => {
            let rc = RouteConfig::default()
                .with_algorithm(algorithm)
                .with_mode(args.mode)
                .with_tracer(tracer.clone());
            let routing = route(&floorplan, &netlist, &rc).map_err(|e| e.to_string())?;
            print!("{}", fp_route::RouteReport::of(&routing).render(&netlist));
            Some(routing)
        }
        None => None,
    };

    if args.ascii {
        println!("{}", ascii_floorplan(&floorplan, &netlist, 72));
    }
    if let Some(path) = &args.svg {
        let svg = match &routing {
            Some(r) => svg_routed(&floorplan, &netlist, r),
            None => svg_floorplan(&floorplan, &netlist),
        };
        std::fs::write(path, svg).map_err(|e| format!("cannot write '{path}': {e}"))?;
        eprintln!("wrote {path}");
    }

    tracer.flush();
    if let Some(path) = &args.trace {
        eprintln!("wrote trace {path} ({} events)", tracer.total_events());
    }
    if let Some(collector) = &collector {
        print!("{}", fp_obs::render_summary(&collector.records()));
    }
    Ok(())
}

fn cmd_serve(args: &ServeArgs) -> Result<(), String> {
    let tracer = match &args.trace {
        Some(path) => {
            let sink = fp_obs::JsonlSink::create(path)
                .map_err(|e| format!("cannot create trace file '{path}': {e}"))?;
            fp_obs::Tracer::new(sink)
        }
        None => fp_obs::Tracer::disabled(),
    };
    let mut config = ServeConfig::default()
        .with_workers(args.workers)
        .with_cache_capacity(args.cache)
        .with_node_limit(args.node_limit)
        .with_io(args.io)
        .with_queue_capacity(args.queue)
        .with_per_shard_pending(args.pending)
        .with_max_line_bytes(args.max_line)
        .with_backends(args.backends.clone())
        .with_tracer(tracer);
    if args.shards > 0 {
        config = config.with_shards(args.shards);
    }
    if let Some(path) = &args.cache_file {
        config = config.with_cache_path(Some(std::path::PathBuf::from(path)));
    }
    let shards = config.shards;
    let server = Server::bind(args.bind.as_str(), config).map_err(|e| e.to_string())?;
    // The resolved address (not the bind string) so `--bind 127.0.0.1:0`
    // callers learn the ephemeral port; flushed because scripts read this
    // line through a pipe while the process keeps running.
    let portfolio = if args.backends.is_empty() {
        String::new()
    } else {
        let names: Vec<&str> = args.backends.iter().map(|b| b.as_str()).collect();
        format!(", racing {}", names.join("+"))
    };
    println!(
        "serving on {} ({} workers, cache {}, {}{portfolio})",
        server.local_addr(),
        args.workers,
        args.cache,
        match args.io {
            fp_serve::IoMode::Event => format!("{shards} event shards"),
            fp_serve::IoMode::Threaded => "threaded io".to_string(),
        }
    );
    std::io::stdout().flush().map_err(|e| e.to_string())?;
    server.wait();
    Ok(())
}

/// The base instance `--eco` delta jobs edit, plus its fingerprint as
/// reported by the service after the up-front scratch solve (pinning it
/// on each delta job detects base drift server-side).
struct EcoBase {
    netlist: Netlist,
    fingerprint: u64,
}

/// Seed of the shared `--eco` base instance, outside the 1..=spread and
/// 1000+ ranges the normal mix draws from.
const ECO_BASE_SEED: u64 = 0xEC0;

/// Solves the `--eco` base instance once over its own connection so its
/// placement is in the service's solution cache before any delta job
/// refers to it.
fn solve_eco_base(args: &LoadArgs) -> Result<EcoBase, String> {
    let netlist = ProblemGenerator::new(args.modules, ECO_BASE_SEED).generate();
    let stream = TcpStream::connect(&args.addr)
        .map_err(|e| format!("cannot connect to '{}': {e}", args.addr))?;
    stream.set_nodelay(true).map_err(|e| e.to_string())?;
    let mut writer = stream.try_clone().map_err(|e| e.to_string())?;
    let mut reader = BufReader::new(stream);
    let req = JobRequest::new(u64::MAX, &netlist);
    writeln!(writer, "{}", req.encode()).map_err(|e| e.to_string())?;
    let mut line = String::new();
    if reader.read_line(&mut line).map_err(|e| e.to_string())? == 0 {
        return Err("server closed the connection".to_string());
    }
    let resp = JobResponse::decode(line.trim_end())?;
    if !resp.ok {
        return Err(format!("eco base solve failed: {}", resp.error));
    }
    if resp.fingerprint == 0 {
        return Err("server did not report a fingerprint (predates ECO)".to_string());
    }
    Ok(EcoBase {
        netlist,
        fingerprint: resp.fingerprint,
    })
}

/// The single-module edit script of the `global_job`-th delta job: each
/// resizes one module (cycling through the base's modules) to dimensions
/// varied by job index, so every delta yields a distinct edited instance.
fn eco_script(args: &LoadArgs, global_job: usize) -> String {
    let k = global_job % args.modules;
    let w = 2 + (global_job / args.modules) % 4;
    let h = 2 + (global_job / 7) % 3;
    format!("mod! m{k:02} rigid {w} {h} rot")
}

/// The instance a load job submits. Default: jobs cycle through `spread`
/// distinct seeds, so every seed after the first round repeats an earlier
/// instance and can be answered from the service's solution cache. With
/// `--dup PCT`, PCT% of jobs (evenly interleaved) submit ONE shared
/// instance — the coalescing/dedup workload — and the rest are all
/// distinct. With `--eco PCT`, PCT% of jobs (same interleave) submit a
/// delta against the shared base instead.
fn load_instance(args: &LoadArgs, global_job: usize, eco: Option<&EcoBase>) -> JobRequest {
    if let Some(base) = eco {
        if (global_job as u64 * args.eco as u64) % 100 < args.eco as u64 {
            return JobRequest::new(global_job as u64, &base.netlist)
                .with_eco(eco_script(args, global_job))
                .with_eco_base(base.fingerprint)
                .with_deadline_ms(args.deadline_ms)
                .with_cache(!args.no_cache);
        }
    }
    let seed = if args.dup > 0 {
        // Bresenham-style interleave: of every 100 consecutive jobs,
        // `dup` are the shared instance, spaced evenly, not bunched.
        if (global_job as u64 * args.dup as u64) % 100 < args.dup as u64 {
            1
        } else {
            1000 + global_job as u64
        }
    } else {
        1 + (global_job % args.spread) as u64
    };
    let nl = ProblemGenerator::new(args.modules, seed).generate();
    JobRequest::new(global_job as u64, &nl)
        .with_deadline_ms(args.deadline_ms)
        .with_cache(!args.no_cache)
}

fn percentile(sorted_ms: &[f64], p: f64) -> f64 {
    if sorted_ms.is_empty() {
        return 0.0;
    }
    let idx = ((p / 100.0) * (sorted_ms.len() - 1) as f64).round() as usize;
    sorted_ms[idx.min(sorted_ms.len() - 1)]
}

/// One client's closed-loop run: one job in flight at a time, latency is
/// pure request-to-response time.
fn run_closed_loop(
    args: &LoadArgs,
    client: usize,
    eco: Option<&EcoBase>,
) -> Result<Vec<(JobResponse, f64)>, String> {
    let stream = TcpStream::connect(&args.addr)
        .map_err(|e| format!("cannot connect to '{}': {e}", args.addr))?;
    // Each job is one small line each way; without NODELAY the
    // Nagle/delayed-ACK interaction dominates latency.
    stream.set_nodelay(true).map_err(|e| e.to_string())?;
    let mut writer = stream.try_clone().map_err(|e| e.to_string())?;
    let mut reader = BufReader::new(stream);
    let mut out = Vec::with_capacity(args.jobs);
    for j in 0..args.jobs {
        let req = load_instance(args, client * args.jobs + j, eco);
        let sent = Instant::now();
        writeln!(writer, "{}", req.encode()).map_err(|e| e.to_string())?;
        let mut line = String::new();
        if reader.read_line(&mut line).map_err(|e| e.to_string())? == 0 {
            return Err("server closed the connection".to_string());
        }
        let resp = JobResponse::decode(line.trim_end())?;
        out.push((resp, sent.elapsed().as_secs_f64() * 1e3));
    }
    Ok(out)
}

/// One client's open-loop run: sends are paced by the arrival rate and
/// never wait for answers, so queueing (and shedding) at the service is
/// visible in the measured latency instead of throttling the offered
/// load. A reader thread collects the possibly out-of-order responses.
fn run_open_loop(
    args: &LoadArgs,
    client: usize,
    gap: Duration,
    eco: Option<&EcoBase>,
) -> Result<Vec<(JobResponse, f64)>, String> {
    let stream = TcpStream::connect(&args.addr)
        .map_err(|e| format!("cannot connect to '{}': {e}", args.addr))?;
    stream.set_nodelay(true).map_err(|e| e.to_string())?;
    let mut writer = stream.try_clone().map_err(|e| e.to_string())?;
    let jobs = args.jobs;
    let reader = std::thread::spawn(move || -> Result<Vec<(JobResponse, Instant)>, String> {
        let mut reader = BufReader::new(stream);
        let mut got = Vec::with_capacity(jobs);
        while got.len() < jobs {
            let mut line = String::new();
            if reader.read_line(&mut line).map_err(|e| e.to_string())? == 0 {
                return Err("server closed the connection".to_string());
            }
            got.push((JobResponse::decode(line.trim_end())?, Instant::now()));
        }
        Ok(got)
    });
    let mut sent = HashMap::with_capacity(args.jobs);
    for j in 0..args.jobs {
        let req = load_instance(args, client * args.jobs + j, eco);
        sent.insert(req.id, Instant::now());
        writeln!(writer, "{}", req.encode()).map_err(|e| e.to_string())?;
        std::thread::sleep(gap);
    }
    let got = reader.join().map_err(|_| "reader thread panicked")??;
    Ok(got
        .into_iter()
        .map(|(resp, at)| {
            let ms = at.duration_since(sent[&resp.id]).as_secs_f64() * 1e3;
            (resp, ms)
        })
        .collect())
}

fn cmd_load(args: &LoadArgs) -> Result<(), String> {
    let total = args.clients * args.jobs;
    let mix = if args.dup > 0 {
        format!("{}% duplicate instances", args.dup)
    } else {
        format!("{} distinct instances", args.spread)
    };
    let pacing = if args.rate > 0.0 {
        format!("open loop at {} jobs/s", args.rate)
    } else {
        "closed loop".to_string()
    };
    println!(
        "load: {} clients x {} jobs -> {} ({mix} of {} modules, {pacing})",
        args.clients, args.jobs, args.addr, args.modules
    );
    // ECO traffic needs the shared base solved (and cached service-side)
    // before the first delta job refers to its fingerprint.
    let eco_base = if args.eco > 0 {
        let base = solve_eco_base(args)?;
        println!(
            "eco: base instance solved, fingerprint {:016x} ({}% delta jobs)",
            base.fingerprint, args.eco
        );
        Some(std::sync::Arc::new(base))
    } else {
        None
    };
    // Open loop: aggregate arrival rate `--rate` split across clients.
    let gap = (args.rate > 0.0).then(|| Duration::from_secs_f64(args.clients as f64 / args.rate));
    let started = Instant::now();
    let handles: Vec<_> = (0..args.clients)
        .map(|c| {
            let args = args.clone();
            let eco_base = eco_base.clone();
            std::thread::spawn(move || {
                let eco = eco_base.as_deref();
                match gap {
                    Some(gap) => run_open_loop(&args, c, gap, eco),
                    None => run_closed_loop(&args, c, eco),
                }
            })
        })
        .collect();
    let mut responses = Vec::with_capacity(total);
    for h in handles {
        responses.extend(h.join().map_err(|_| "client thread panicked")??);
    }
    let wall = started.elapsed().as_secs_f64();

    // Accounting: every id exactly once, nothing lost or duplicated.
    let mut ids: Vec<u64> = responses.iter().map(|(r, _)| r.id).collect();
    ids.sort_unstable();
    ids.dedup();
    let lost = total - ids.len();
    let ok = responses.iter().filter(|(r, _)| r.ok).count();
    let degraded = responses.iter().filter(|(r, _)| r.degraded).count();
    let cached = responses.iter().filter(|(r, _)| r.cached).count();
    let coalesced = responses.iter().filter(|(r, _)| r.coalesced).count();
    let shed = responses.iter().filter(|(r, _)| r.is_shed()).count();
    // Solves = answered neither from the cache nor by riding another
    // job's solve nor shed: what the duplicate-heavy workloads minimize.
    let solves = ok
        - responses
            .iter()
            .filter(|(r, _)| r.ok && (r.cached || r.coalesced))
            .count();
    println!(
        "responses {ok}/{total} ok  degraded {degraded}  cached {cached}  \
         coalesced {coalesced}  shed {shed}  solves {solves}  lost {lost}"
    );
    // Which backend won each answered job (servers predating the
    // portfolio protocol omit the field; then there is nothing to say),
    // plus the share of answers that fell back to the degraded greedy.
    let mut wins: Vec<(&str, usize)> = Vec::new();
    for (r, _) in responses
        .iter()
        .filter(|(r, _)| r.ok && !r.backend.is_empty())
    {
        match wins.iter_mut().find(|(name, _)| *name == r.backend) {
            Some((_, n)) => *n += 1,
            None => wins.push((r.backend.as_str(), 1)),
        }
    }
    if !wins.is_empty() {
        wins.sort_by(|a, b| b.1.cmp(&a.1).then(a.0.cmp(b.0)));
        let dist: Vec<String> = wins.iter().map(|(name, n)| format!("{name} {n}")).collect();
        println!(
            "backends: {}  degraded {:.1}%",
            dist.join("  "),
            100.0 * degraded as f64 / ok.max(1) as f64
        );
    }
    // ECO accounting: how many delta jobs rode the incremental path
    // (base placement found, only touched modules re-placed) versus
    // falling back to a scratch solve of the edited instance.
    let eco_jobs: Vec<&JobResponse> = responses
        .iter()
        .filter(|(r, _)| r.eco_total > 0)
        .map(|(r, _)| r)
        .collect();
    if !eco_jobs.is_empty() {
        let hits = eco_jobs.iter().filter(|r| r.eco_base_hit).count();
        let replaced: usize = eco_jobs
            .iter()
            .filter(|r| r.eco_base_hit)
            .map(|r| r.eco_replaced)
            .sum();
        println!(
            "eco: {} delta jobs  base hits {hits}  scratch fallbacks {}  avg replaced {:.1}/{}",
            eco_jobs.len(),
            eco_jobs.len() - hits,
            replaced as f64 / hits.max(1) as f64,
            args.modules
        );
    }
    for (r, _) in responses
        .iter()
        .filter(|(r, _)| !r.ok && !r.is_shed())
        .take(3)
    {
        eprintln!("  job {} failed: {}", r.id, r.error);
    }

    // Latency percentiles cover the accepted (non-shed) jobs; a shed is
    // an immediate typed refusal, not a serviced request.
    let mut lat: Vec<f64> = responses
        .iter()
        .filter(|(r, _)| !r.is_shed())
        .map(|&(_, ms)| ms)
        .collect();
    lat.sort_by(|a, b| a.total_cmp(b));
    println!(
        "throughput {:.1} jobs/s  wall {wall:.2}s",
        total as f64 / wall
    );
    println!(
        "latency ms: p50 {:.1}  p90 {:.1}  p99 {:.1}  max {:.1}",
        percentile(&lat, 50.0),
        percentile(&lat, 90.0),
        percentile(&lat, 99.0),
        lat.last().copied().unwrap_or(0.0)
    );
    if lost > 0 {
        return Err(format!("{lost} responses lost or duplicated"));
    }
    if ok + shed < total {
        return Err(format!("{} jobs failed", total - ok - shed));
    }
    Ok(())
}

fn run() -> Result<(), String> {
    match args::parse_command(std::env::args().skip(1))? {
        Command::Run(a) => cmd_run(&a),
        Command::Serve(a) => cmd_serve(&a),
        Command::Load(a) => cmd_load(&a),
    }
}

fn main() -> ExitCode {
    match run() {
        Ok(()) => ExitCode::SUCCESS,
        Err(msg) if msg.is_empty() => {
            println!("{HELP}");
            ExitCode::SUCCESS
        }
        Err(msg) => {
            eprintln!("error: {msg}");
            eprintln!("{HELP}");
            ExitCode::from(2)
        }
    }
}
