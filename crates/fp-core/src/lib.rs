//! MILP-based general floorplanning by successive augmentation.
//!
//! This crate is the primary contribution of *"An Analytical Approach to
//! Floorplan Design and Optimization"* (Sutanthavibul, Shragowitz, Rosen,
//! DAC 1990), rebuilt as a Rust library:
//!
//! * the 0-1 mixed integer programming formulation of non-overlapping
//!   placement — system (2) — with optional 90° rotation (formulation (4))
//!   and flexible (soft) modules via linearized `h = S/w` (formulations
//!   (6)–(8), Fig. 1) — [`formulation`-internal, driven by
//!   `Floorplanner`](Floorplanner);
//! * **successive augmentation** (Fig. 3): modules are added a few at a
//!   time, the partial floorplan is collapsed into covering rectangles
//!   (`fp_geom::covering`), and each step is solved optimally;
//! * §3.2 routing **envelopes**: module sides grow proportionally to their
//!   pin counts so the MILP reserves routing space;
//! * §2.5 **given-topology optimization**: with relations fixed, all
//!   integer variables vanish and a single LP re-optimizes coordinates and
//!   soft shapes ([`optimize_topology`]) — usable as global compaction;
//! * a bottom-left greedy [`baseline`](bottom_left) used as warm start,
//!   fallback, and comparison point.
//!
//! # Quickstart
//!
//! ```
//! use fp_core::{Floorplanner, FloorplanConfig, Objective};
//!
//! # fn main() -> Result<(), fp_core::FloorplanError> {
//! let netlist = fp_netlist::generator::ProblemGenerator::new(6, 7).generate();
//! let config = FloorplanConfig::default()
//!     .with_objective(Objective::AreaPlusWirelength { lambda: 0.5 })
//!     # .with_step_options(fp_milp::SolveOptions::default().with_node_limit(500))
//!     ;
//! let result = Floorplanner::with_config(&netlist, config).run()?;
//! assert!(result.floorplan.is_valid());
//! println!("chip {}x{}, utilization {:.1}%",
//!     result.floorplan.chip_width(),
//!     result.floorplan.chip_height(),
//!     100.0 * result.floorplan.utilization(&netlist));
//! # Ok(())
//! # }
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod augment;
mod config;
mod eco;
mod envelope;
mod error;
mod formulation;
mod greedy;
mod improve;
mod placement;
mod portfolio;
mod topology;

pub use augment::{
    derive_chip_width, FloorplanResult, Floorplanner, RunStats, StepKind, StepOutcome, StepStats,
};
pub use config::{FloorplanConfig, Objective, OrderingStrategy, SoftShapeModel};
pub use eco::{eco_replace, EcoOutcome};
pub use error::FloorplanError;
pub use fp_milp::StopFlag;
pub use greedy::{bottom_left, legalize, LegalizeItem};
pub use improve::{improve, improve_traced, reoptimize_top};
pub use placement::{Floorplan, PlacedModule};
pub use portfolio::SharedIncumbent;
pub use topology::{extract_topology, optimize_topology, Relation};
