//! Bottom-left greedy placement on the skyline.
//!
//! Two roles:
//!
//! 1. **Warm start / upper bound** for every augmentation-step MILP: the
//!    greedy height is a *feasible* chip height, so it both caps the `y`
//!    search space and tightens the vertical big-M — the practical reason
//!    the per-step branch-and-bound stays fast.
//! 2. **Fallback**: if a step's MILP hits its limits without an incumbent,
//!    the greedy placement stands in, so the floorplanner always completes
//!    (matching the paper's engineering stance that each step must finish).
//!
//! The public [`bottom_left`] entry is also the constructive baseline the
//! benchmark harness compares the MILP floorplanner against.

use crate::config::FloorplanConfig;
use crate::envelope::ShapeSpec;
use crate::error::FloorplanError;
use crate::placement::{Floorplan, PlacedModule};
use fp_geom::{Rect, Skyline};
use fp_netlist::{ModuleId, Netlist};

/// A greedy shape + position decision for one module.
#[derive(Debug, Clone, Copy, PartialEq)]
pub(crate) struct GreedyPlacement {
    pub x: f64,
    pub y: f64,
    pub z: bool,
    pub dw: f64,
}

/// Drops each module of `group` (in order) bottom-left onto the skyline of
/// `existing` envelopes, choosing the shape candidate that minimizes the
/// resulting top edge (ties: smaller x).
///
/// Returns `None` if some module fits in no orientation/shape — the caller
/// treats that as [`FloorplanError::ModuleTooWide`].
pub(crate) fn greedy_place(
    existing: &[Rect],
    group: &[ShapeSpec],
    chip_w: f64,
) -> Option<Vec<GreedyPlacement>> {
    greedy_place_on(&Skyline::from_rects(existing), group, chip_w)
}

/// [`greedy_place`] on a pre-built skyline — the incremental path for the
/// augmentation driver, which maintains one skyline across all steps.
pub(crate) fn greedy_place_on(
    existing: &Skyline,
    group: &[ShapeSpec],
    chip_w: f64,
) -> Option<Vec<GreedyPlacement>> {
    // One skyline maintained incrementally: each placement is a single
    // `add_rect` instead of a full rebuild over all placed rects.
    let mut sky = existing.clone();
    let mut out = Vec::with_capacity(group.len());
    for spec in group {
        let mut best: Option<(f64, f64, GreedyPlacement)> = None; // (top, x, g)
        for (z, dw) in spec.shape_candidates() {
            let we = spec.env_width(z, dw);
            let he = spec.env_height(z, dw);
            let Some((x, y)) = sky.drop_position(we, chip_w) else {
                continue;
            };
            let top = y + he;
            let better = match &best {
                None => true,
                Some((bt, bx, _)) => top < bt - 1e-9 || ((top - bt).abs() <= 1e-9 && x < *bx),
            };
            if better {
                best = Some((top, x, GreedyPlacement { x, y, z, dw }));
            }
        }
        let (_, _, g) = best?;
        sky.add_rect(&Rect::new(
            g.x,
            g.y,
            spec.env_width(g.z, g.dw),
            spec.env_height(g.z, g.dw),
        ));
        out.push(g);
    }
    Some(out)
}

/// The resulting chip height of a greedy placement of `group` on top of
/// `existing` (the feasible upper bound fed to the MILP).
pub(crate) fn greedy_height(
    existing: &[Rect],
    group: &[ShapeSpec],
    chip_w: f64,
) -> Option<(Vec<GreedyPlacement>, f64)> {
    greedy_height_on(&Skyline::from_rects(existing), group, chip_w)
}

/// [`greedy_height`] on a pre-built skyline (see [`greedy_place_on`]).
pub(crate) fn greedy_height_on(
    existing: &Skyline,
    group: &[ShapeSpec],
    chip_w: f64,
) -> Option<(Vec<GreedyPlacement>, f64)> {
    let placements = greedy_place_on(existing, group, chip_w)?;
    let mut top: f64 = existing.max_height();
    for (g, spec) in placements.iter().zip(group) {
        top = top.max(g.y + spec.env_height(g.z, g.dw));
    }
    Some((placements, top))
}

/// Constructive bottom-left baseline floorplanner (no MILP).
///
/// Places every module of `netlist` in the order implied by
/// `config.ordering`, greedily bottom-left. Serves as the comparison
/// baseline in the benchmark harness and as documentation of what the MILP
/// buys over a classic constructive heuristic.
///
/// # Errors
///
/// [`FloorplanError::EmptyNetlist`] or [`FloorplanError::ModuleTooWide`].
pub fn bottom_left(
    netlist: &Netlist,
    config: &FloorplanConfig,
) -> Result<Floorplan, FloorplanError> {
    let order = crate::augment::resolve_order(netlist, config)?;
    let chip_w = crate::augment::resolve_chip_width(netlist, config)?;
    let specs: Vec<ShapeSpec> = order
        .iter()
        .map(|&id| ShapeSpec::from_module(id, netlist.module(id), config))
        .collect();
    let placements = greedy_place(&[], &specs, chip_w).ok_or_else(|| {
        // greedy_place only fails when some module exceeds the chip width,
        // which resolve_chip_width should have caught; report the widest.
        widest_error(&specs, chip_w, netlist)
    })?;
    let placed = placements
        .iter()
        .zip(&specs)
        .map(|(g, spec)| {
            let (rect, envelope, rotated) = spec.realize(g.x, g.y, g.z, g.dw);
            PlacedModule {
                id: spec.id,
                rect,
                envelope,
                rotated,
            }
        })
        .collect();
    Ok(Floorplan::new(chip_w, placed))
}

/// One module's shape decision handed to [`legalize`], in placement order.
///
/// Produced by continuous or tree-based backends (the analytical placer,
/// the slicing annealer) that know *which* shape each module should take
/// and roughly *where* it should sit, but whose raw coordinates may overlap
/// or overflow the outline.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct LegalizeItem {
    /// The module to place.
    pub id: ModuleId,
    /// Preferred orientation (ignored when the module cannot rotate).
    pub rotated: bool,
    /// Preferred soft-module width shrink Δw from `w_max`; clamped to the
    /// legal range and ignored for rigid modules.
    pub width_adjust: f64,
}

/// Legalizes a backend's placement intent onto the skyline: drops each
/// module bottom-left **in the given order**, honoring its preferred shape
/// when it fits and falling back to the best-fitting alternative shape
/// otherwise. Always returns a valid overlap-free [`Floorplan`] on the
/// same fixed outline the MILP pipeline uses (see
/// [`derive_chip_width`](crate::derive_chip_width)).
///
/// The order *is* the placement information: callers sort modules by their
/// intended position (bottom row first), which the skyline drop then
/// reproduces as closely as legality allows.
///
/// # Errors
///
/// * [`FloorplanError::InvalidOrdering`] unless `items` covers every module
///   of `netlist` exactly once,
/// * [`FloorplanError::EmptyNetlist`] / [`FloorplanError::ModuleTooWide`]
///   as the width derivation reports them.
pub fn legalize(
    netlist: &Netlist,
    config: &FloorplanConfig,
    items: &[LegalizeItem],
) -> Result<Floorplan, FloorplanError> {
    let n = netlist.num_modules();
    let mut seen = vec![false; n];
    for item in items {
        if item.id.0 >= n {
            return Err(FloorplanError::InvalidOrdering(format!(
                "module id {} out of range ({n} modules)",
                item.id.0
            )));
        }
        if seen[item.id.0] {
            return Err(FloorplanError::InvalidOrdering(format!(
                "module id {} listed twice",
                item.id.0
            )));
        }
        seen[item.id.0] = true;
    }
    if items.len() != n {
        return Err(FloorplanError::InvalidOrdering(format!(
            "{} items for {n} modules",
            items.len()
        )));
    }
    let chip_w = crate::augment::resolve_chip_width(netlist, config)?;

    // Incremental skyline: one `add_rect` per placed module instead of an
    // O(n) rebuild before each drop.
    let mut sky = Skyline::new();
    let mut placed: Vec<PlacedModule> = Vec::with_capacity(n);
    for item in items {
        let spec = ShapeSpec::from_module(item.id, netlist.module(item.id), config);
        // Preferred shape first, then the generic candidates as fallbacks.
        let preferred = (
            item.rotated && spec.has_z,
            if spec.has_dw {
                item.width_adjust.clamp(0.0, spec.dw_max)
            } else {
                0.0
            },
        );
        let mut chosen: Option<(f64, f64, f64, bool, f64)> = None; // (top, x, y, z, dw)
        let we = spec.env_width(preferred.0, preferred.1);
        if let Some((x, y)) = sky.drop_position(we, chip_w) {
            let he = spec.env_height(preferred.0, preferred.1);
            chosen = Some((y + he, x, y, preferred.0, preferred.1));
        } else {
            for (z, dw) in spec.shape_candidates() {
                let we = spec.env_width(z, dw);
                let Some((x, y)) = sky.drop_position(we, chip_w) else {
                    continue;
                };
                let top = y + spec.env_height(z, dw);
                let better = match &chosen {
                    None => true,
                    Some((bt, bx, ..)) => top < bt - 1e-9 || ((top - bt).abs() <= 1e-9 && x < *bx),
                };
                if better {
                    chosen = Some((top, x, y, z, dw));
                }
            }
        }
        let Some((_, x, y, z, dw)) = chosen else {
            return Err(widest_error(&[spec], chip_w, netlist));
        };
        let (rect, envelope, rotated) = spec.realize(x, y, z, dw);
        sky.add_rect(&envelope);
        placed.push(PlacedModule {
            id: spec.id,
            rect,
            envelope,
            rotated,
        });
    }
    Ok(Floorplan::new(chip_w, placed))
}

pub(crate) fn widest_error(specs: &[ShapeSpec], chip_w: f64, netlist: &Netlist) -> FloorplanError {
    let widest = specs
        .iter()
        .max_by(|a, b| a.min_env_width().total_cmp(&b.min_env_width()))
        .expect("at least one module");
    FloorplanError::ModuleTooWide {
        module: netlist.module(widest.id).name().to_string(),
        min_width: widest.min_env_width(),
        chip_width: chip_w,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use fp_netlist::{Module, ModuleId};

    fn spec(id: usize, w: f64, h: f64, rot: bool) -> ShapeSpec {
        ShapeSpec::from_module(
            ModuleId(id),
            &Module::rigid(format!("m{id}"), w, h, rot),
            &FloorplanConfig::default(),
        )
    }

    #[test]
    fn fills_row_then_stacks() {
        let group = vec![
            spec(0, 4.0, 2.0, false),
            spec(1, 4.0, 2.0, false),
            spec(2, 4.0, 2.0, false),
        ];
        let g = greedy_place(&[], &group, 8.0).unwrap();
        assert_eq!((g[0].x, g[0].y), (0.0, 0.0));
        assert_eq!((g[1].x, g[1].y), (4.0, 0.0));
        assert_eq!((g[2].x, g[2].y), (0.0, 2.0));
    }

    #[test]
    fn rotation_used_when_it_helps() {
        // 6x2 module on a 3-wide chip only fits rotated (2x6).
        let group = vec![spec(0, 6.0, 2.0, true)];
        let g = greedy_place(&[], &group, 3.0).unwrap();
        assert!(g[0].z);
        // Without rotation it cannot fit.
        let fixed = vec![spec(0, 6.0, 2.0, false)];
        assert!(greedy_place(&[], &fixed, 3.0).is_none());
    }

    #[test]
    fn respects_existing_obstacles() {
        let existing = vec![Rect::new(0.0, 0.0, 8.0, 3.0)];
        let group = vec![spec(0, 4.0, 2.0, false)];
        let (g, top) = greedy_height(&existing, &group, 8.0).unwrap();
        assert_eq!(g[0].y, 3.0);
        assert_eq!(top, 5.0);
    }

    #[test]
    fn greedy_height_counts_existing_top() {
        let existing = vec![Rect::new(0.0, 0.0, 2.0, 10.0)];
        let group = vec![spec(0, 4.0, 2.0, false)];
        let (_, top) = greedy_height(&existing, &group, 8.0).unwrap();
        assert_eq!(top, 10.0); // module fits beside the tower
    }

    #[test]
    fn baseline_floorplan_is_valid() {
        let nl = fp_netlist::generator::ProblemGenerator::new(10, 3).generate();
        let fp = bottom_left(&nl, &FloorplanConfig::default()).unwrap();
        assert_eq!(fp.len(), 10);
        assert!(fp.is_valid(), "{:?}", fp.violations());
        assert!(fp.utilization(&nl) > 0.3);
    }

    #[test]
    fn baseline_rejects_empty() {
        let nl = Netlist::new("empty");
        assert!(matches!(
            bottom_left(&nl, &FloorplanConfig::default()),
            Err(FloorplanError::EmptyNetlist)
        ));
    }

    #[test]
    fn legalize_produces_valid_floorplan() {
        let nl = fp_netlist::generator::ProblemGenerator::new(12, 3)
            .with_flexible_fraction(0.3)
            .generate();
        let items: Vec<LegalizeItem> = (0..12)
            .map(|i| LegalizeItem {
                id: ModuleId(i),
                rotated: i % 2 == 0,
                width_adjust: 0.5,
            })
            .collect();
        let fp = legalize(&nl, &FloorplanConfig::default(), &items).unwrap();
        assert_eq!(fp.len(), 12);
        assert!(fp.is_valid(), "{:?}", fp.violations());
    }

    #[test]
    fn legalize_honors_preferred_rotation_when_it_fits() {
        let mut nl = Netlist::new("one");
        nl.add_module(Module::rigid("a", 6.0, 2.0, true)).unwrap();
        let cfg = FloorplanConfig::default().with_chip_width(10.0);
        let items = [LegalizeItem {
            id: ModuleId(0),
            rotated: true,
            width_adjust: 0.0,
        }];
        let fp = legalize(&nl, &cfg, &items).unwrap();
        let placed = fp.placement(ModuleId(0)).unwrap();
        assert!(placed.rotated);
        // 6x2 rotated -> 2x6 footprint.
        assert_eq!(placed.rect.w, 2.0);
    }

    #[test]
    fn legalize_rejects_bad_coverage() {
        let nl = fp_netlist::generator::ProblemGenerator::new(3, 2).generate();
        let short = [LegalizeItem {
            id: ModuleId(0),
            rotated: false,
            width_adjust: 0.0,
        }];
        assert!(matches!(
            legalize(&nl, &FloorplanConfig::default(), &short),
            Err(FloorplanError::InvalidOrdering(_))
        ));
        let dup: Vec<LegalizeItem> = [0usize, 1, 1]
            .iter()
            .map(|&i| LegalizeItem {
                id: ModuleId(i),
                rotated: false,
                width_adjust: 0.0,
            })
            .collect();
        assert!(matches!(
            legalize(&nl, &FloorplanConfig::default(), &dup),
            Err(FloorplanError::InvalidOrdering(_))
        ));
    }
}
