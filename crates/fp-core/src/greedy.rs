//! Bottom-left greedy placement on the skyline.
//!
//! Two roles:
//!
//! 1. **Warm start / upper bound** for every augmentation-step MILP: the
//!    greedy height is a *feasible* chip height, so it both caps the `y`
//!    search space and tightens the vertical big-M — the practical reason
//!    the per-step branch-and-bound stays fast.
//! 2. **Fallback**: if a step's MILP hits its limits without an incumbent,
//!    the greedy placement stands in, so the floorplanner always completes
//!    (matching the paper's engineering stance that each step must finish).
//!
//! The public [`bottom_left`] entry is also the constructive baseline the
//! benchmark harness compares the MILP floorplanner against.

use crate::config::FloorplanConfig;
use crate::envelope::ShapeSpec;
use crate::error::FloorplanError;
use crate::placement::{Floorplan, PlacedModule};
use fp_geom::{Rect, Skyline};
use fp_netlist::Netlist;

/// A greedy shape + position decision for one module.
#[derive(Debug, Clone, Copy, PartialEq)]
pub(crate) struct GreedyPlacement {
    pub x: f64,
    pub y: f64,
    pub z: bool,
    pub dw: f64,
}

/// Drops each module of `group` (in order) bottom-left onto the skyline of
/// `existing` envelopes, choosing the shape candidate that minimizes the
/// resulting top edge (ties: smaller x).
///
/// Returns `None` if some module fits in no orientation/shape — the caller
/// treats that as [`FloorplanError::ModuleTooWide`].
pub(crate) fn greedy_place(
    existing: &[Rect],
    group: &[ShapeSpec],
    chip_w: f64,
) -> Option<Vec<GreedyPlacement>> {
    let mut rects: Vec<Rect> = existing.to_vec();
    let mut out = Vec::with_capacity(group.len());
    for spec in group {
        let sky = Skyline::from_rects(&rects);
        let mut best: Option<(f64, f64, GreedyPlacement)> = None; // (top, x, g)
        for (z, dw) in spec.shape_candidates() {
            let we = spec.env_width(z, dw);
            let he = spec.env_height(z, dw);
            let Some((x, y)) = sky.drop_position(we, chip_w) else {
                continue;
            };
            let top = y + he;
            let better = match &best {
                None => true,
                Some((bt, bx, _)) => top < bt - 1e-9 || ((top - bt).abs() <= 1e-9 && x < *bx),
            };
            if better {
                best = Some((top, x, GreedyPlacement { x, y, z, dw }));
            }
        }
        let (_, _, g) = best?;
        rects.push(Rect::new(
            g.x,
            g.y,
            spec.env_width(g.z, g.dw),
            spec.env_height(g.z, g.dw),
        ));
        out.push(g);
    }
    Some(out)
}

/// The resulting chip height of a greedy placement of `group` on top of
/// `existing` (the feasible upper bound fed to the MILP).
pub(crate) fn greedy_height(
    existing: &[Rect],
    group: &[ShapeSpec],
    chip_w: f64,
) -> Option<(Vec<GreedyPlacement>, f64)> {
    let placements = greedy_place(existing, group, chip_w)?;
    let mut top: f64 = existing.iter().map(Rect::top).fold(0.0, f64::max);
    for (g, spec) in placements.iter().zip(group) {
        top = top.max(g.y + spec.env_height(g.z, g.dw));
    }
    Some((placements, top))
}

/// Constructive bottom-left baseline floorplanner (no MILP).
///
/// Places every module of `netlist` in the order implied by
/// `config.ordering`, greedily bottom-left. Serves as the comparison
/// baseline in the benchmark harness and as documentation of what the MILP
/// buys over a classic constructive heuristic.
///
/// # Errors
///
/// [`FloorplanError::EmptyNetlist`] or [`FloorplanError::ModuleTooWide`].
pub fn bottom_left(
    netlist: &Netlist,
    config: &FloorplanConfig,
) -> Result<Floorplan, FloorplanError> {
    let order = crate::augment::resolve_order(netlist, config)?;
    let chip_w = crate::augment::resolve_chip_width(netlist, config)?;
    let specs: Vec<ShapeSpec> = order
        .iter()
        .map(|&id| ShapeSpec::from_module(id, netlist.module(id), config))
        .collect();
    let placements = greedy_place(&[], &specs, chip_w).ok_or_else(|| {
        // greedy_place only fails when some module exceeds the chip width,
        // which resolve_chip_width should have caught; report the widest.
        widest_error(&specs, chip_w, netlist)
    })?;
    let placed = placements
        .iter()
        .zip(&specs)
        .map(|(g, spec)| {
            let (rect, envelope, rotated) = spec.realize(g.x, g.y, g.z, g.dw);
            PlacedModule {
                id: spec.id,
                rect,
                envelope,
                rotated,
            }
        })
        .collect();
    Ok(Floorplan::new(chip_w, placed))
}

pub(crate) fn widest_error(specs: &[ShapeSpec], chip_w: f64, netlist: &Netlist) -> FloorplanError {
    let widest = specs
        .iter()
        .max_by(|a, b| a.min_env_width().total_cmp(&b.min_env_width()))
        .expect("at least one module");
    FloorplanError::ModuleTooWide {
        module: netlist.module(widest.id).name().to_string(),
        min_width: widest.min_env_width(),
        chip_width: chip_w,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use fp_netlist::{Module, ModuleId};

    fn spec(id: usize, w: f64, h: f64, rot: bool) -> ShapeSpec {
        ShapeSpec::from_module(
            ModuleId(id),
            &Module::rigid(format!("m{id}"), w, h, rot),
            &FloorplanConfig::default(),
        )
    }

    #[test]
    fn fills_row_then_stacks() {
        let group = vec![
            spec(0, 4.0, 2.0, false),
            spec(1, 4.0, 2.0, false),
            spec(2, 4.0, 2.0, false),
        ];
        let g = greedy_place(&[], &group, 8.0).unwrap();
        assert_eq!((g[0].x, g[0].y), (0.0, 0.0));
        assert_eq!((g[1].x, g[1].y), (4.0, 0.0));
        assert_eq!((g[2].x, g[2].y), (0.0, 2.0));
    }

    #[test]
    fn rotation_used_when_it_helps() {
        // 6x2 module on a 3-wide chip only fits rotated (2x6).
        let group = vec![spec(0, 6.0, 2.0, true)];
        let g = greedy_place(&[], &group, 3.0).unwrap();
        assert!(g[0].z);
        // Without rotation it cannot fit.
        let fixed = vec![spec(0, 6.0, 2.0, false)];
        assert!(greedy_place(&[], &fixed, 3.0).is_none());
    }

    #[test]
    fn respects_existing_obstacles() {
        let existing = vec![Rect::new(0.0, 0.0, 8.0, 3.0)];
        let group = vec![spec(0, 4.0, 2.0, false)];
        let (g, top) = greedy_height(&existing, &group, 8.0).unwrap();
        assert_eq!(g[0].y, 3.0);
        assert_eq!(top, 5.0);
    }

    #[test]
    fn greedy_height_counts_existing_top() {
        let existing = vec![Rect::new(0.0, 0.0, 2.0, 10.0)];
        let group = vec![spec(0, 4.0, 2.0, false)];
        let (_, top) = greedy_height(&existing, &group, 8.0).unwrap();
        assert_eq!(top, 10.0); // module fits beside the tower
    }

    #[test]
    fn baseline_floorplan_is_valid() {
        let nl = fp_netlist::generator::ProblemGenerator::new(10, 3).generate();
        let fp = bottom_left(&nl, &FloorplanConfig::default()).unwrap();
        assert_eq!(fp.len(), 10);
        assert!(fp.is_valid(), "{:?}", fp.violations());
        assert!(fp.utilization(&nl) > 0.3);
    }

    #[test]
    fn baseline_rejects_empty() {
        let nl = Netlist::new("empty");
        assert!(matches!(
            bottom_left(&nl, &FloorplanConfig::default()),
            Err(FloorplanError::EmptyNetlist)
        ));
    }
}
