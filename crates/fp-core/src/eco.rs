//! Incremental re-floorplanning (ECO — engineering change order).
//!
//! A small netlist edit rarely invalidates the whole placement: the paper's
//! successive-augmentation view (Fig. 3) makes the partial floorplan a
//! first-class object, so a delta job can *keep* every untouched module
//! where the base solve put it and re-run only the augmentation machinery
//! for the edited neighborhood. [`eco_replace`] does exactly that:
//!
//! 1. **Keep** — every unedited module whose base placement still realizes
//!    its (possibly re-parameterized) shape keeps its position; its envelope
//!    is re-derived under the *edited* instance's margins, so a routing or
//!    pin change is picked up without moving anything.
//! 2. **Neighborhoods** — kept modules that now overlap (an envelope grew),
//!    fall outside the chip, or share a net with an edited module (when the
//!    objective weighs wirelength) join the replace set, so the re-solve
//!    frees exactly the region and connectivity the edit disturbed.
//! 3. **Re-place** — the replace set is placed by the ordinary step MILP
//!    against the kept modules' *raw envelopes* (not covering rectangles —
//!    a mid-chip removal leaves a usable hole that the hole-free covering
//!    decomposition of §3.1 would pave over), in budget-bounded groups with
//!    the greedy skyline witness as fallback, then one local improvement
//!    round polishes the result.
//!
//! Anything that cannot be kept soundly is replaced; anything that cannot
//! be replaced soundly is an error, and the caller (the service's ECO path)
//! falls back to a scratch solve. An ECO result is therefore always a
//! *valid* floorplan of the edited instance — only its quality, never its
//! legality, depends on how local the edit really was.

use crate::augment::{resolve_chip_width, RunStats, StepKind, StepOutcome, StepStats};
use crate::config::{FloorplanConfig, Objective};
use crate::envelope::ShapeSpec;
use crate::error::FloorplanError;
use crate::formulation::{estimate_binaries, StepInput, StepModel};
use crate::greedy::greedy_height;
use crate::improve::improve_traced;
use crate::placement::{Floorplan, PlacedModule};
use fp_geom::Rect;
use fp_milp::Optimality;
use fp_netlist::{ModuleId, Netlist};
use std::collections::BTreeSet;
use std::time::Instant;

/// The result of an incremental re-solve: the edited instance's floorplan
/// plus how much of the base placement survived.
#[derive(Debug, Clone)]
pub struct EcoOutcome {
    /// A valid floorplan of the edited netlist.
    pub floorplan: Floorplan,
    /// MILP bookkeeping for the replacement steps and the polish round.
    pub stats: RunStats,
    /// Modules that were re-placed (edited ones plus their disturbed
    /// neighborhoods), in ascending id order.
    pub replaced: Vec<ModuleId>,
    /// Total modules in the edited instance.
    pub total: usize,
    /// Best cross-solve basis reuse any replacement step achieved (from
    /// the [`fp_milp::BasisStore`] wired into the step options, if any).
    pub basis: fp_milp::BasisTier,
}

impl EcoOutcome {
    /// Fraction of the instance that had to be re-placed (`0.0` = pure
    /// keep, `1.0` = effectively a scratch solve).
    #[must_use]
    pub fn touched_fraction(&self) -> f64 {
        if self.total == 0 {
            0.0
        } else {
            self.replaced.len() as f64 / self.total as f64
        }
    }
}

/// Exact placement of ONE rigid module against fixed obstacle envelopes.
///
/// The pure-area step objective (`W·height + y`, the pull-down form) is
/// monotone in `y`, so it admits a *supported* optimum: slide any feasible
/// placement down until blocked, then left until blocked, and repeat —
/// neither move raises the objective and the fixpoint has `x ∈ {0} ∪
/// {obstacle rights}` and `y ∈ {0} ∪ {obstacle tops}`. Enumerating that
/// O(k²) grid (times the ≤ 2 orientations) with an O(k) feasibility scan
/// therefore finds the step optimum in O(k³) arithmetic — microseconds at
/// ECO scales, where the step MILP spends thousands of branch-and-bound
/// nodes proving the same position optimal against ~4k disjunction
/// binaries. Single-module groups dominate ECO traffic (a one-module edit
/// *is* the replace set), which is why this lives here and not in the
/// scratch ladder.
///
/// Only exact for rigid shapes under the pure-area objective; callers
/// gate on that and fall back to the MILP otherwise.
fn place_single_exact(
    spec: &ShapeSpec,
    obstacles: &[Rect],
    chip_width: f64,
    floor: f64,
) -> Option<PlacedModule> {
    let mut orientations = vec![false];
    if spec.has_z {
        orientations.push(true);
    }
    let mut xs: Vec<f64> = Vec::with_capacity(obstacles.len() + 1);
    let mut ys: Vec<f64> = Vec::with_capacity(obstacles.len() + 1);
    xs.push(0.0);
    ys.push(0.0);
    for obs in obstacles {
        xs.push(obs.right());
        ys.push(obs.top());
    }
    // Best = lowest objective, ties broken toward low y, then low x, then
    // the unrotated orientation — a deterministic choice the MILP's
    // arbitrary tie-breaking cannot beat.
    let mut best: Option<(f64, f64, f64, f64, bool)> = None;
    for &z in &orientations {
        let ew = spec.env_width(z, 0.0);
        let eh = spec.env_height(z, 0.0);
        if ew > chip_width + 1e-9 {
            continue;
        }
        for &x in &xs {
            if x + ew > chip_width + 1e-9 {
                continue;
            }
            'candidate: for &y in &ys {
                let rect = Rect::new(x, y, ew, eh);
                for obs in obstacles {
                    if rect.overlaps(obs) {
                        continue 'candidate;
                    }
                }
                let cost = chip_width * (y + eh).max(floor) + y;
                let better = match best {
                    None => true,
                    Some((c, by, bx, ..)) => {
                        cost < c - 1e-9
                            || (cost < c + 1e-9
                                && (y < by - 1e-9 || (y < by + 1e-9 && x < bx - 1e-9)))
                    }
                };
                if better {
                    best = Some((cost, y, x, ew, z));
                }
            }
        }
    }
    best.map(|(_, y, x, _, z)| {
        let (rect, envelope, rotated) = spec.realize(x, y, z, 0.0);
        PlacedModule {
            id: spec.id,
            rect,
            envelope,
            rotated,
        }
    })
}

/// Incrementally re-solves `netlist` (the *edited* instance) starting from
/// `base` — placements expressed in the edited netlist's id space (the
/// caller maps base-job placements by module name). `edited` lists the
/// modules whose definition changed; brand-new modules need not be listed
/// (any module without a base placement is replaced automatically).
///
/// The chip width is resolved from `config` exactly as in a scratch solve,
/// so pass the base job's width via
/// [`FloorplanConfig::with_chip_width`] to re-solve on the same die.
///
/// # Errors
///
/// [`FloorplanError::EmptyNetlist`] on an empty instance,
/// [`FloorplanError::InvalidOrdering`] when `edited` names an id outside
/// the netlist, [`FloorplanError::ModuleTooWide`] when a replaced module
/// cannot fit the chip width, solver model bugs, and
/// [`FloorplanError::Cancelled`] when the stop flag is raised or the
/// incremental result failed validation — the caller should fall back to a
/// scratch solve.
pub fn eco_replace(
    netlist: &Netlist,
    config: &FloorplanConfig,
    base: &[PlacedModule],
    edited: &[ModuleId],
) -> Result<EcoOutcome, FloorplanError> {
    let total = netlist.num_modules();
    if total == 0 {
        return Err(FloorplanError::EmptyNetlist);
    }
    let chip_width = resolve_chip_width(netlist, config)?;
    let specs: Vec<ShapeSpec> = netlist
        .module_ids()
        .into_iter()
        .map(|id| ShapeSpec::from_module(id, netlist.module(id), config))
        .collect();

    for &id in edited {
        if id.0 >= total {
            return Err(FloorplanError::InvalidOrdering(format!(
                "edited module id {} out of range ({total} modules)",
                id.0
            )));
        }
    }
    let mut replace: BTreeSet<ModuleId> = edited.iter().copied().collect();

    // Base placements by edited-instance id; ids beyond the edited netlist
    // (modules the delta removed, left unmapped by the caller) are ignored.
    let mut base_of: Vec<Option<&PlacedModule>> = vec![None; total];
    for p in base {
        if p.id.0 < total {
            base_of[p.id.0] = Some(p);
        }
    }

    // Keep step: re-realize every unedited placement under the edited
    // instance's shape/margins. A placement that no longer realizes its
    // module (dims changed, rotation now illegal, missing) is replaced.
    let mut kept: Vec<PlacedModule> = Vec::with_capacity(total);
    for (idx, spec) in specs.iter().enumerate() {
        let id = ModuleId(idx);
        if replace.contains(&id) {
            continue;
        }
        let Some(p) = base_of[idx] else {
            replace.insert(id);
            continue;
        };
        if p.rotated && !spec.has_z {
            replace.insert(id);
            continue;
        }
        let dw = if spec.has_dw {
            (spec.base_dims.0 - p.rect.w).clamp(0.0, spec.dw_max)
        } else {
            0.0
        };
        let (rect, envelope, rotated) = spec.realize(p.envelope.x, p.envelope.y, p.rotated, dw);
        let same_dims = (rect.w - p.rect.w).abs() < 1e-6 && (rect.h - p.rect.h).abs() < 1e-6;
        if !same_dims {
            replace.insert(id);
            continue;
        }
        kept.push(PlacedModule {
            id,
            rect,
            envelope,
            rotated,
        });
    }

    // Overlap neighborhood: envelopes may have grown under the edited
    // parameters. Evict the smaller of each clashing pair (and anything
    // protruding off the chip) until the kept set is pairwise legal.
    kept.retain(|p| {
        let inside = p.envelope.x >= -1e-9
            && p.envelope.y >= -1e-9
            && p.envelope.right() <= chip_width + 1e-9;
        if !inside {
            replace.insert(p.id);
        }
        inside
    });
    loop {
        let mut evict: Option<usize> = None;
        'scan: for i in 0..kept.len() {
            for j in (i + 1)..kept.len() {
                if kept[i].envelope.overlaps(&kept[j].envelope) {
                    let loser = if kept[i].rect.area() <= kept[j].rect.area() {
                        i
                    } else {
                        j
                    };
                    evict = Some(loser);
                    break 'scan;
                }
            }
        }
        let Some(loser) = evict else { break };
        replace.insert(kept[loser].id);
        kept.swap_remove(loser);
    }

    // Net neighborhood: when the objective weighs wirelength, modules that
    // share a net with an edit should be free to follow it. Pure-area runs
    // skip this — moving an unedited module cannot improve the height the
    // MILP optimizes, it only inflates the replace set. Expansion stops at
    // half the instance: past that an ECO is no longer incremental and the
    // caller's touched-fraction threshold should divert to scratch anyway.
    if matches!(config.objective, Objective::AreaPlusWirelength { .. }) {
        let kept_ids: Vec<ModuleId> = kept.iter().map(|p| p.id).collect();
        'expand: for &id in edited {
            for net in netlist.nets_of(id) {
                for &member in netlist.net(net).modules() {
                    if 2 * replace.len() >= total {
                        break 'expand;
                    }
                    if member != id && kept_ids.contains(&member) {
                        replace.insert(member);
                    }
                }
            }
        }
        kept.retain(|p| !replace.contains(&p.id));
    }

    // Re-place the replace set, largest modules first (the default
    // area-descending ordering), in budget-bounded groups against the raw
    // kept envelopes — holes left by removed or shrunken modules stay
    // available as placement sites.
    let mut order: Vec<ModuleId> = replace.iter().copied().collect();
    order.sort_by(|a, b| {
        specs[b.0]
            .area
            .total_cmp(&specs[a.0].area)
            .then(a.0.cmp(&b.0))
    });

    let mut stats = RunStats::default();
    let mut basis = fp_milp::BasisTier::Cold;
    let mut placed: Vec<PlacedModule> = kept.clone();
    let mut cursor = 0usize;
    while cursor < order.len() {
        if config.stop.is_set() {
            return Err(FloorplanError::Cancelled("stop flag raised".into()));
        }
        let obstacles: Vec<Rect> = placed.iter().map(|p| p.envelope).collect();
        let floor = obstacles.iter().map(Rect::top).fold(0.0, f64::max);

        let mut take = config.group_size.min(order.len() - cursor).max(1);
        while take > 1 {
            let group = &order[cursor..cursor + take];
            let rot = group.iter().filter(|id| specs[id.0].has_z).count();
            if estimate_binaries(take, obstacles.len(), rot) <= config.max_binaries {
                break;
            }
            take -= 1;
        }

        // A single rigid module under the pure-area objective is placed
        // exactly by candidate enumeration — the common ECO shape (one
        // edited module, everything else kept), where the step MILP would
        // otherwise spend thousands of nodes on ~4k obstacle binaries.
        if take == 1 && matches!(config.objective, Objective::Area) && !config.enforce_critical_nets
        {
            let spec = &specs[order[cursor].0];
            if spec.soft.is_none() && !spec.has_dw {
                let step_started = Instant::now();
                if let Some(pm) = place_single_exact(spec, &obstacles, chip_width, floor) {
                    stats.steps.push(StepStats {
                        kind: StepKind::Placement,
                        group: vec![spec.id],
                        obstacles: obstacles.len(),
                        binaries: 0,
                        nodes: 0,
                        simplex_iterations: 0,
                        warm_nodes: 0,
                        cold_nodes: 0,
                        refactorizations: 0,
                        eta_updates: 0,
                        rows_tightened: 0,
                        binaries_fixed: 0,
                        cuts_added: 0,
                        elapsed: step_started.elapsed(),
                        outcome: StepOutcome::Optimal,
                    });
                    placed.push(pm);
                    cursor += 1;
                    continue;
                }
            }
        }
        let group: Vec<ShapeSpec> = order[cursor..cursor + take]
            .iter()
            .map(|id| specs[id.0].clone())
            .collect();

        let Some((greedy, h_ub)) = greedy_height(&obstacles, &group, chip_width) else {
            let widest = group
                .iter()
                .max_by(|a, b| a.min_env_width().total_cmp(&b.min_env_width()))
                .expect("non-empty group");
            return Err(FloorplanError::ModuleTooWide {
                module: netlist.module(widest.id).name().to_string(),
                min_width: widest.min_env_width(),
                chip_width,
            });
        };

        let input = StepInput {
            netlist,
            config,
            chip_width,
            obstacles: &obstacles,
            placed: &placed,
            group: &group,
            h_ub,
            floor,
            // The kept top usually pins the chip height, so packing the
            // replacements low is the objective that actually helps.
            pull_down: true,
        };
        let step = StepModel::build(&input);
        let binaries = step.model.num_integer_vars();
        let step_started = Instant::now();
        let solved = step
            .model
            .solve_traced(&config.budgeted_step_options(), &config.tracer);
        let (new_placements, outcome, sol_stats) = match solved {
            Ok(sol) => {
                let outcome = match sol.optimality() {
                    Optimality::Proven => StepOutcome::Optimal,
                    Optimality::Limit => StepOutcome::Incumbent,
                };
                let s = sol.stats().clone();
                (step.extract(&sol, &group), outcome, Some(s))
            }
            Err(fp_milp::SolveError::InvalidModel(why)) => {
                return Err(FloorplanError::Solver(fp_milp::SolveError::InvalidModel(
                    why,
                )))
            }
            Err(_) => {
                // The greedy witness satisfies every constraint, so limits
                // and numerical trouble degrade to the greedy placement.
                let fallback = greedy
                    .iter()
                    .zip(&group)
                    .map(|(g, spec)| {
                        let (rect, envelope, rotated) = spec.realize(g.x, g.y, g.z, g.dw);
                        PlacedModule {
                            id: spec.id,
                            rect,
                            envelope,
                            rotated,
                        }
                    })
                    .collect();
                (fallback, StepOutcome::GreedyFallback, None)
            }
        };
        let s = sol_stats.unwrap_or_default();
        basis = basis.max(s.basis_tier);
        stats.steps.push(StepStats {
            kind: StepKind::Placement,
            group: group.iter().map(|g| g.id).collect(),
            obstacles: obstacles.len(),
            binaries,
            nodes: s.nodes,
            simplex_iterations: s.simplex_iterations,
            warm_nodes: s.warm_nodes,
            cold_nodes: s.cold_nodes,
            refactorizations: s.refactorizations,
            eta_updates: s.eta_updates,
            rows_tightened: s.rows_tightened,
            binaries_fixed: s.binaries_fixed,
            cuts_added: s.cuts_added,
            elapsed: step_started.elapsed(),
            outcome,
        });
        placed.extend(new_placements);
        cursor += take;
    }

    let candidate = Floorplan::new(chip_width, placed);
    if candidate.len() != total || !candidate.is_valid() {
        return Err(FloorplanError::Cancelled(format!(
            "eco result invalid: {} of {total} modules, violations: {:?}",
            candidate.len(),
            candidate.violations()
        )));
    }

    // One local improvement round: a compaction LP plus a single top-band
    // re-solve. Bounded work, and `improve_traced` never returns a worse
    // floorplan than its input.
    let polished = improve_traced(&candidate, netlist, config, 1, &mut stats)?;

    Ok(EcoOutcome {
        floorplan: polished,
        stats,
        replaced: order
            .iter()
            .copied()
            .collect::<BTreeSet<_>>()
            .into_iter()
            .collect(),
        total,
        basis,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::augment::Floorplanner;
    use fp_milp::SolveOptions;
    use fp_netlist::generator::ProblemGenerator;
    use fp_netlist::Module;
    use std::time::Duration;

    fn fast() -> FloorplanConfig {
        FloorplanConfig::default().with_step_options(
            SolveOptions::default()
                .with_node_limit(800)
                .with_time_limit(Duration::from_millis(800)),
        )
    }

    fn solve(nl: &Netlist, cfg: &FloorplanConfig) -> Floorplan {
        Floorplanner::with_config(nl, cfg.clone())
            .run()
            .unwrap()
            .floorplan
    }

    /// Rebuilds `nl` with module `target` swapped for `replacement` —
    /// ids stay stable because insertion order is preserved.
    fn with_swapped(nl: &Netlist, target: ModuleId, replacement: Module) -> Netlist {
        let mut out = Netlist::new(nl.name());
        for (id, module) in nl.modules() {
            let m = if id == target {
                replacement.clone()
            } else {
                module.clone()
            };
            out.add_module(m).unwrap();
        }
        for (_, net) in nl.nets() {
            out.add_net(net.clone()).unwrap();
        }
        out
    }

    #[test]
    fn single_edit_keeps_most_of_the_base() {
        let nl = ProblemGenerator::new(12, 7).generate();
        let cfg = fast();
        let base = solve(&nl, &cfg);
        // Resize one module; every other placement should survive.
        let target = ModuleId(3);
        let (w, h) = {
            let (lo, _) = nl.module(target).width_range();
            (lo * 1.3, nl.module(target).area() / (lo * 1.3))
        };
        let edited_nl = with_swapped(
            &nl,
            target,
            Module::rigid(nl.module(target).name(), w, h, false),
        );
        let cfg = cfg.with_chip_width(base.chip_width());
        let base_mods: Vec<PlacedModule> = base.iter().copied().collect();
        let out = eco_replace(&edited_nl, &cfg, &base_mods, &[target]).unwrap();
        assert!(out.floorplan.is_valid(), "{:?}", out.floorplan.violations());
        assert_eq!(out.total, 12);
        assert!(out.replaced.contains(&target));
        assert!(
            out.touched_fraction() <= 0.5,
            "single edit replaced {:?}",
            out.replaced
        );
        assert_eq!(out.floorplan.len(), 12);
    }

    #[test]
    fn missing_placement_counts_as_new_module() {
        let nl = ProblemGenerator::new(8, 5).generate();
        let cfg = fast();
        let base = solve(&nl, &cfg);
        let cfg = cfg.with_chip_width(base.chip_width());
        // Drop one placement from the base: the driver must re-place it.
        let partial: Vec<PlacedModule> = base
            .iter()
            .filter(|p| p.id != ModuleId(2))
            .copied()
            .collect();
        let out = eco_replace(&nl, &cfg, &partial, &[]).unwrap();
        assert!(out.floorplan.is_valid());
        assert!(out.replaced.contains(&ModuleId(2)));
        assert_eq!(out.floorplan.len(), 8);
    }

    #[test]
    fn unedited_identical_instance_is_pure_keep() {
        let nl = ProblemGenerator::new(9, 4).generate();
        let cfg = fast();
        let base = solve(&nl, &cfg);
        let cfg = cfg.with_chip_width(base.chip_width());
        let mods: Vec<PlacedModule> = base.iter().copied().collect();
        let out = eco_replace(&nl, &cfg, &mods, &[]).unwrap();
        assert!(out.replaced.is_empty(), "replaced {:?}", out.replaced);
        assert!(out.floorplan.is_valid());
        // Improvement may still compact, so height can only get better.
        assert!(out.floorplan.chip_height() <= base.chip_height() + 1e-9);
    }

    #[test]
    fn out_of_range_edit_id_rejected() {
        let nl = ProblemGenerator::new(4, 2).generate();
        let cfg = fast();
        let base = solve(&nl, &cfg);
        let mods: Vec<PlacedModule> = base.iter().copied().collect();
        let err = eco_replace(&nl, &cfg, &mods, &[ModuleId(99)]).unwrap_err();
        assert!(matches!(err, FloorplanError::InvalidOrdering(_)));
    }

    #[test]
    fn empty_base_degrades_to_scratch_quality_solve() {
        // Every module lacks a placement, so ECO re-places everything and
        // must still produce a valid floorplan.
        let nl = ProblemGenerator::new(6, 3).generate();
        let cfg = fast();
        let out = eco_replace(&nl, &cfg, &[], &[]).unwrap();
        assert_eq!(out.replaced.len(), 6);
        assert!((out.touched_fraction() - 1.0).abs() < 1e-12);
        assert!(out.floorplan.is_valid());
    }
}
