//! Floorplanner error type.

use std::error::Error;
use std::fmt;

/// Errors raised by the floorplanning pipeline.
#[derive(Debug, Clone, PartialEq)]
pub enum FloorplanError {
    /// A module is wider than the chip in every legal orientation/shape, so
    /// no placement can exist.
    ModuleTooWide {
        /// Module name.
        module: String,
        /// The module's minimum feasible width.
        min_width: f64,
        /// The configured chip width.
        chip_width: f64,
    },
    /// The netlist has no modules.
    EmptyNetlist,
    /// A custom ordering did not cover every module exactly once.
    InvalidOrdering(String),
    /// The underlying MILP solver failed in a way the driver cannot recover
    /// from (e.g. a structurally invalid model — a bug, not an input error).
    Solver(fp_milp::SolveError),
    /// A topology re-optimization was asked for a module set that does not
    /// match the floorplan.
    TopologyMismatch(String),
    /// The run was cancelled cooperatively — the stop flag was raised, or a
    /// shared portfolio incumbent proved this backend cannot win. Not a
    /// failure of the instance: another backend's result should be used.
    Cancelled(String),
}

impl fmt::Display for FloorplanError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            FloorplanError::ModuleTooWide {
                module,
                min_width,
                chip_width,
            } => write!(
                f,
                "module '{module}' needs width {min_width} but chip is only {chip_width} wide"
            ),
            FloorplanError::EmptyNetlist => write!(f, "netlist has no modules"),
            FloorplanError::InvalidOrdering(why) => write!(f, "invalid ordering: {why}"),
            FloorplanError::Solver(e) => write!(f, "MILP solver failure: {e}"),
            FloorplanError::TopologyMismatch(why) => write!(f, "topology mismatch: {why}"),
            FloorplanError::Cancelled(why) => write!(f, "cancelled: {why}"),
        }
    }
}

impl Error for FloorplanError {
    fn source(&self) -> Option<&(dyn Error + 'static)> {
        match self {
            FloorplanError::Solver(e) => Some(e),
            _ => None,
        }
    }
}

impl From<fp_milp::SolveError> for FloorplanError {
    fn from(e: fp_milp::SolveError) -> Self {
        FloorplanError::Solver(e)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_and_source() {
        let e = FloorplanError::ModuleTooWide {
            module: "ram".into(),
            min_width: 40.0,
            chip_width: 30.0,
        };
        assert!(e.to_string().contains("ram"));
        let s: FloorplanError = fp_milp::SolveError::Infeasible.into();
        assert!(std::error::Error::source(&s).is_some());
    }
}
