//! Floorplan result types.

use fp_geom::{union_area, RTree, Rect, GEOM_EPS};
use fp_netlist::{ModuleId, Netlist};
use std::collections::HashMap;

/// One placed module: its realized rectangle, orientation and the routing
/// envelope that was reserved around it.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct PlacedModule {
    /// Which module this is.
    pub id: ModuleId,
    /// The module's own rectangle (post-rotation, post-shaping).
    pub rect: Rect,
    /// The reserved envelope (equals `rect` when envelopes are disabled).
    pub envelope: Rect,
    /// Whether the module was rotated 90° (`z_i = 1`).
    pub rotated: bool,
}

/// A complete floorplan: placed modules on a chip of fixed width.
///
/// The chip height is the top of the highest envelope; chip area is
/// `width × height` (the paper's "minimal covering rectangle").
///
/// ```
/// use fp_core::{Floorplan, PlacedModule};
/// use fp_geom::Rect;
/// use fp_netlist::ModuleId;
///
/// let module = PlacedModule {
///     id: ModuleId(0),
///     rect: Rect::new(0.0, 0.0, 4.0, 3.0),
///     envelope: Rect::new(0.0, 0.0, 4.0, 3.0),
///     rotated: false,
/// };
/// let fp = Floorplan::new(10.0, vec![module]);
/// assert_eq!(fp.chip_area(), 30.0); // 10 wide x 3 high
/// assert!(fp.is_valid());
/// ```
#[derive(Debug, Clone, PartialEq)]
pub struct Floorplan {
    chip_width: f64,
    modules: Vec<PlacedModule>,
    index: HashMap<ModuleId, usize>,
}

impl Floorplan {
    /// Assembles a floorplan from placements.
    ///
    /// # Panics
    ///
    /// Panics if two placements share a [`ModuleId`].
    #[must_use]
    pub fn new(chip_width: f64, modules: Vec<PlacedModule>) -> Self {
        let mut index = HashMap::with_capacity(modules.len());
        for (k, m) in modules.iter().enumerate() {
            let previous = index.insert(m.id, k);
            assert!(previous.is_none(), "duplicate placement for {}", m.id);
        }
        Floorplan {
            chip_width,
            modules,
            index,
        }
    }

    /// The fixed chip width `W`.
    #[must_use]
    pub fn chip_width(&self) -> f64 {
        self.chip_width
    }

    /// The chip height: top of the highest envelope (0 when empty).
    #[must_use]
    pub fn chip_height(&self) -> f64 {
        self.modules
            .iter()
            .map(|m| m.envelope.top())
            .fold(0.0, f64::max)
    }

    /// Chip area `W × height`.
    #[must_use]
    pub fn chip_area(&self) -> f64 {
        self.chip_width * self.chip_height()
    }

    /// The chip bounding rectangle.
    #[must_use]
    pub fn chip_rect(&self) -> Rect {
        Rect::new(0.0, 0.0, self.chip_width, self.chip_height())
    }

    /// Area utilization: `netlist` module area over chip area — the paper's
    /// "Area Utilisation" column (ami33: 11520 / chip area).
    #[must_use]
    pub fn utilization(&self, netlist: &Netlist) -> f64 {
        let chip = self.chip_area();
        if chip <= 0.0 {
            return 0.0;
        }
        netlist.total_module_area() / chip
    }

    /// Number of placed modules.
    #[must_use]
    pub fn len(&self) -> usize {
        self.modules.len()
    }

    /// Whether the floorplan is empty.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.modules.is_empty()
    }

    /// The placement of a module, if present.
    #[must_use]
    pub fn placement(&self, id: ModuleId) -> Option<&PlacedModule> {
        self.index.get(&id).map(|&k| &self.modules[k])
    }

    /// Iterates over placements in placement order.
    pub fn iter(&self) -> impl Iterator<Item = &PlacedModule> {
        self.modules.iter()
    }

    /// All module rectangles (no envelopes), placement order.
    #[must_use]
    pub fn module_rects(&self) -> Vec<Rect> {
        self.modules.iter().map(|m| m.rect).collect()
    }

    /// All envelope rectangles, placement order.
    #[must_use]
    pub fn envelope_rects(&self) -> Vec<Rect> {
        self.modules.iter().map(|m| m.envelope).collect()
    }

    /// Total wirelength estimate: `Σ c_ij · manhattan(center_i, center_j)`
    /// over connected module pairs — the MILP's wirelength term evaluated on
    /// the final placement.
    #[must_use]
    pub fn center_wirelength(&self, netlist: &Netlist) -> f64 {
        let mut total = 0.0;
        for (k, a) in self.modules.iter().enumerate() {
            for b in &self.modules[k + 1..] {
                let c = netlist.connectivity(a.id, b.id);
                if c > 0.0 {
                    total += c * a.rect.center().manhattan(&b.rect.center());
                }
            }
        }
        total
    }

    /// Validates the floorplan invariants:
    ///
    /// * every envelope contains its module rectangle,
    /// * no two *envelopes* overlap,
    /// * everything lies inside the chip strip `[0, W] × [0, ∞)`.
    ///
    /// Returns a list of violation descriptions (empty = valid).
    #[must_use]
    pub fn violations(&self) -> Vec<String> {
        let mut out = Vec::new();
        for m in &self.modules {
            if !m.envelope.contains_rect(&m.rect) {
                out.push(format!(
                    "{}: rect {} outside envelope {}",
                    m.id, m.rect, m.envelope
                ));
            }
            if m.envelope.x < -GEOM_EPS
                || m.envelope.y < -GEOM_EPS
                || m.envelope.right() > self.chip_width + GEOM_EPS
            {
                out.push(format!(
                    "{}: envelope {} outside chip width {}",
                    m.id, m.envelope, self.chip_width
                ));
            }
        }
        // Pairwise envelope overlaps via the spatial index: each module probes
        // the R-tree with its own envelope instead of scanning every other
        // placement. Candidates come back sorted, so the report order matches
        // the brute-force (k, k+1..) scan.
        let tree = RTree::from_entries(
            self.modules
                .iter()
                .enumerate()
                .map(|(k, m)| (k as u64, m.envelope)),
        );
        for (k, a) in self.modules.iter().enumerate() {
            for j in tree.query(&a.envelope) {
                let j = j as usize;
                if j > k && a.envelope.overlaps(&self.modules[j].envelope) {
                    let b = &self.modules[j];
                    out.push(format!(
                        "{} and {} overlap: {} vs {}",
                        a.id, b.id, a.envelope, b.envelope
                    ));
                }
            }
        }
        out
    }

    /// All-pairs reference implementation of the overlap portion of
    /// [`Floorplan::violations`]. Kept as the differential oracle for the
    /// R-tree-backed scan and as the brute-force baseline in fp-bench.
    #[doc(hidden)]
    #[must_use]
    pub fn overlap_violations_brute_force(&self) -> Vec<String> {
        let mut out = Vec::new();
        for (k, a) in self.modules.iter().enumerate() {
            for b in &self.modules[k + 1..] {
                if a.envelope.overlaps(&b.envelope) {
                    out.push(format!(
                        "{} and {} overlap: {} vs {}",
                        a.id, b.id, a.envelope, b.envelope
                    ));
                }
            }
        }
        out
    }

    /// `true` when [`Floorplan::violations`] is empty.
    #[must_use]
    pub fn is_valid(&self) -> bool {
        self.violations().is_empty()
    }

    /// Dead space fraction: 1 − (envelope union area / chip area).
    #[must_use]
    pub fn dead_space(&self) -> f64 {
        let chip = self.chip_area();
        if chip <= 0.0 {
            return 0.0;
        }
        1.0 - union_area(&self.envelope_rects()) / chip
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use fp_netlist::{Module, Net};

    fn place(id: usize, x: f64, y: f64, w: f64, h: f64) -> PlacedModule {
        PlacedModule {
            id: ModuleId(id),
            rect: Rect::new(x, y, w, h),
            envelope: Rect::new(x, y, w, h),
            rotated: false,
        }
    }

    #[test]
    fn heights_areas_lookup() {
        let fp = Floorplan::new(
            10.0,
            vec![place(0, 0.0, 0.0, 4.0, 3.0), place(1, 4.0, 0.0, 4.0, 5.0)],
        );
        assert_eq!(fp.chip_height(), 5.0);
        assert_eq!(fp.chip_area(), 50.0);
        assert_eq!(fp.len(), 2);
        assert!(fp.placement(ModuleId(1)).is_some());
        assert!(fp.placement(ModuleId(9)).is_none());
        assert!(fp.is_valid());
        assert!((fp.dead_space() - (1.0 - 32.0 / 50.0)).abs() < 1e-9);
    }

    #[test]
    fn overlap_detected() {
        let fp = Floorplan::new(
            10.0,
            vec![place(0, 0.0, 0.0, 4.0, 3.0), place(1, 2.0, 1.0, 4.0, 5.0)],
        );
        assert!(!fp.is_valid());
        assert_eq!(fp.violations().len(), 1);
    }

    #[test]
    fn out_of_chip_detected() {
        let fp = Floorplan::new(5.0, vec![place(0, 3.0, 0.0, 4.0, 3.0)]);
        assert!(!fp.is_valid());
    }

    #[test]
    fn rect_outside_envelope_detected() {
        let bad = PlacedModule {
            id: ModuleId(0),
            rect: Rect::new(0.0, 0.0, 5.0, 5.0),
            envelope: Rect::new(0.0, 0.0, 3.0, 3.0),
            rotated: false,
        };
        let fp = Floorplan::new(10.0, vec![bad]);
        assert!(!fp.is_valid());
    }

    #[test]
    #[should_panic(expected = "duplicate placement")]
    fn duplicate_ids_panic() {
        let _ = Floorplan::new(
            10.0,
            vec![place(0, 0.0, 0.0, 1.0, 1.0), place(0, 2.0, 0.0, 1.0, 1.0)],
        );
    }

    #[test]
    fn utilization_and_wirelength() {
        let mut nl = Netlist::new("t");
        let a = nl.add_module(Module::rigid("a", 4.0, 3.0, false)).unwrap();
        let b = nl.add_module(Module::rigid("b", 4.0, 5.0, false)).unwrap();
        nl.add_net(Net::new("ab", [a, b]).with_weight(2.0)).unwrap();
        let fp = Floorplan::new(
            10.0,
            vec![place(0, 0.0, 0.0, 4.0, 3.0), place(1, 4.0, 0.0, 4.0, 5.0)],
        );
        assert!((fp.utilization(&nl) - 32.0 / 50.0).abs() < 1e-9);
        // centers (2, 1.5) and (6, 2.5): manhattan 5, weight 2.
        assert!((fp.center_wirelength(&nl) - 10.0).abs() < 1e-9);
    }

    #[test]
    fn indexed_overlap_scan_matches_brute_force() {
        // Seeded congested placements: many genuine overlaps plus exact
        // abutments that must NOT be reported.
        let mut state = 0x9e37_79b9_u64;
        let mut next = move || {
            state = state
                .wrapping_mul(6364136223846793005)
                .wrapping_add(1442695040888963407);
            ((state >> 33) as f64) / ((1u64 << 31) as f64)
        };
        for n in [0usize, 1, 2, 17, 60] {
            let mut modules = Vec::with_capacity(n + 2);
            for k in 0..n {
                let x = (next() * 16.0).floor() * 0.5;
                let y = (next() * 16.0).floor() * 0.5;
                let w = 0.5 + (next() * 4.0).floor() * 0.5;
                let h = 0.5 + (next() * 4.0).floor() * 0.5;
                modules.push(place(k, x, y, w, h));
            }
            if n >= 2 {
                // Touching pair on the grid: legal, must stay unreported by both.
                modules.push(place(n, 20.0, 0.0, 1.0, 1.0));
                modules.push(place(n + 1, 21.0, 0.0, 1.0, 1.0));
            }
            let fp = Floorplan::new(64.0, modules);
            let oracle = fp.overlap_violations_brute_force();
            let indexed: Vec<String> = fp
                .violations()
                .into_iter()
                .filter(|v| v.contains("overlap:"))
                .collect();
            assert_eq!(indexed, oracle, "n={n}");
        }
    }

    #[test]
    fn empty_floorplan() {
        let fp = Floorplan::new(10.0, Vec::new());
        assert!(fp.is_empty());
        assert_eq!(fp.chip_height(), 0.0);
        assert_eq!(fp.dead_space(), 0.0);
        assert!(fp.is_valid());
    }
}
