//! Post-augmentation floorplan improvement (paper Fig. 3, line 13:
//! "Adjust floorplan").
//!
//! Successive augmentation is greedy across groups: the last groups land on
//! whatever skyline the earlier ones left, so the loss concentrates at the
//! ragged top of the chip. [`reoptimize_top`] attacks exactly that: it
//! removes the modules that define the chip's top, collapses the rest into
//! covering rectangles, and re-solves one MILP for the removed group — the
//! same subproblem shape as an augmentation step, so the binary budget
//! stays bounded. [`improve`] alternates this with the §2.5 topology LP
//! until a round stops helping.

use crate::augment::{resolve_chip_width, RunStats, StepKind, StepOutcome, StepStats};
use crate::config::FloorplanConfig;
use crate::envelope::ShapeSpec;
use crate::error::FloorplanError;
use crate::formulation::{estimate_binaries, StepInput, StepModel};
use crate::greedy::greedy_height;
use crate::placement::{Floorplan, PlacedModule};
use crate::topology::optimize_topology;
use fp_geom::covering::covering_rectangles;
use fp_geom::Rect;
use fp_milp::Optimality;
use fp_netlist::Netlist;
use fp_obs::{Event, Phase};
use std::time::Instant;

/// Removes the `group_size` modules with the highest envelope tops and
/// re-places them optimally against the rest. Returns the improved
/// floorplan, or a clone of the input when no strictly better placement was
/// found (or the MILP hit its limits).
///
/// # Errors
///
/// Propagates configuration errors ([`FloorplanError::ModuleTooWide`],
/// solver model bugs); solver *limits* are not errors — the input is
/// returned unchanged.
pub fn reoptimize_top(
    floorplan: &Floorplan,
    netlist: &Netlist,
    config: &FloorplanConfig,
    group_size: usize,
) -> Result<Floorplan, FloorplanError> {
    reoptimize_band(floorplan, netlist, config, group_size, 0)
}

/// Like [`reoptimize_top`], but skips the `skip_top` topmost modules before
/// selecting the group — re-solving a deeper band of the chip. Used by
/// [`improve`] to keep making progress when the very top is already
/// optimal.
pub fn reoptimize_band(
    floorplan: &Floorplan,
    netlist: &Netlist,
    config: &FloorplanConfig,
    group_size: usize,
    skip_top: usize,
) -> Result<Floorplan, FloorplanError> {
    reoptimize_band_recorded(floorplan, netlist, config, group_size, skip_top, None)
}

/// [`reoptimize_band`] plus per-solve bookkeeping: when `stats` is given,
/// every MILP actually solved is appended as a
/// [`StepKind::Reoptimize`] step, so re-optimization branch-and-bound
/// nodes show up in [`RunStats::total_nodes`].
fn reoptimize_band_recorded(
    floorplan: &Floorplan,
    netlist: &Netlist,
    config: &FloorplanConfig,
    group_size: usize,
    skip_top: usize,
    stats: Option<&mut RunStats>,
) -> Result<Floorplan, FloorplanError> {
    if floorplan.len() < 2 || group_size == 0 {
        return Ok(floorplan.clone());
    }
    let chip_width = resolve_chip_width(
        netlist,
        &config.clone().with_chip_width(floorplan.chip_width()),
    )?;

    // Topmost modules first; the band starts `skip_top` below the top.
    let mut order: Vec<&PlacedModule> = floorplan.iter().collect();
    order.sort_by(|a, b| b.envelope.top().total_cmp(&a.envelope.top()));
    let skip = skip_top.min(floorplan.len().saturating_sub(2));
    let group_size = group_size.min(floorplan.len() - skip - 1).max(1);

    let band: Vec<&PlacedModule> = order[skip..skip + group_size].to_vec();
    let remaining: Vec<&PlacedModule> = order[..skip]
        .iter()
        .chain(order[skip + group_size..].iter())
        .copied()
        .collect();
    let removed = band;

    let envelopes: Vec<Rect> = remaining.iter().map(|p| p.envelope).collect();
    // Top removal (skip = 0) leaves a flat-ish arrangement where the
    // covering decomposition is safe and shrinks the obstacle set. A deeper
    // band leaves a hole that covering would fill, so the band mode keeps
    // every remaining envelope as its own obstacle.
    let mut obstacles = if skip == 0 {
        covering_rectangles(&envelopes)
    } else {
        envelopes.clone()
    };
    let floor = obstacles.iter().map(Rect::top).fold(0.0, f64::max);

    // Respect the binary budget: shrink the group (put modules back into
    // the obstacle set) if needed.
    let mut specs: Vec<ShapeSpec> = removed
        .iter()
        .map(|p| ShapeSpec::from_module(p.id, netlist.module(p.id), config))
        .collect();
    let mut removed = removed;
    let mut returned: Vec<PlacedModule> = Vec::new();
    while specs.len() > 1 {
        let rot = specs.iter().filter(|s| s.has_z).count();
        if estimate_binaries(specs.len(), obstacles.len(), rot) <= config.max_binaries {
            break;
        }
        // Return the lowest of the removed modules to the fixed set: it
        // becomes an obstacle again and keeps its placement.
        let back = *removed.pop().expect("non-empty");
        specs.pop();
        obstacles.push(back.envelope);
        returned.push(back);
    }

    let Some((_, h_ub)) = greedy_height(&obstacles, &specs, chip_width) else {
        return Ok(floorplan.clone());
    };
    // The current floorplan height is also an upper bound achieved by a
    // *real* placement; aim below the better of the two.
    let current = floorplan.chip_height();
    let input = StepInput {
        netlist,
        config,
        chip_width,
        obstacles: &obstacles,
        placed: &remaining.iter().map(|&&p| p).collect::<Vec<_>>(),
        group: &specs,
        h_ub: h_ub.min(current.max(floor)).max(floor),
        floor,
        // Band mode's chip height is pinned by the fixed top, so packing
        // low is the whole objective; in top mode the pure height objective
        // prunes better.
        pull_down: skip > 0,
    };
    let step = StepModel::build(&input);
    let step_started = Instant::now();
    let nodes_before = config.tracer.count(fp_obs::EventKind::BnbNode);
    let solved = step
        .model
        .solve_traced(&config.budgeted_step_options(), &config.tracer);
    if let Some(stats) = stats {
        // Record the solve whatever its outcome: a limit that produced no
        // incumbent still explored nodes, and those belong in the totals.
        // On errors no `Solution` exists, so the node count comes from the
        // tracer's counter delta (0 when tracing is disabled).
        let (outcome, nodes, pivots, warm, cold, factor, strengthened) = match &solved {
            Ok(sol) => (
                match sol.optimality() {
                    Optimality::Proven => StepOutcome::Optimal,
                    Optimality::Limit => StepOutcome::Incumbent,
                },
                sol.stats().nodes,
                sol.stats().simplex_iterations,
                sol.stats().warm_nodes,
                sol.stats().cold_nodes,
                (sol.stats().refactorizations, sol.stats().eta_updates),
                (
                    sol.stats().rows_tightened,
                    sol.stats().binaries_fixed,
                    sol.stats().cuts_added,
                ),
            ),
            Err(_) => {
                let explored = config.tracer.count(fp_obs::EventKind::BnbNode) - nodes_before;
                (
                    StepOutcome::GreedyFallback,
                    explored as usize,
                    0,
                    0,
                    0,
                    (0, 0),
                    (0, 0, 0),
                )
            }
        };
        stats.steps.push(StepStats {
            kind: StepKind::Reoptimize,
            group: specs.iter().map(|s| s.id).collect(),
            obstacles: obstacles.len(),
            binaries: step.model.num_integer_vars(),
            nodes,
            simplex_iterations: pivots,
            warm_nodes: warm,
            cold_nodes: cold,
            refactorizations: factor.0,
            eta_updates: factor.1,
            rows_tightened: strengthened.0,
            binaries_fixed: strengthened.1,
            cuts_added: strengthened.2,
            elapsed: step_started.elapsed(),
            outcome,
        });
    }
    let Ok(sol) = solved else {
        return Ok(floorplan.clone());
    };
    let new_placements = step.extract(&sol, &specs);

    let mut modules: Vec<PlacedModule> = remaining.iter().map(|&&p| p).collect();
    modules.extend(returned);
    modules.extend(new_placements);
    let candidate = Floorplan::new(floorplan.chip_width(), modules);
    debug_assert_eq!(
        candidate.len(),
        floorplan.len(),
        "module lost in reoptimize_top"
    );

    // Accept a strictly lower chip, or — at equal height — a strictly
    // lower packing (the band mode's win: compaction then harvests the
    // slack at the top).
    let accept = candidate.len() == floorplan.len()
        && candidate.is_valid()
        && (candidate.chip_height() < current - 1e-9
            || (candidate.chip_height() < current + 1e-9
                && packing_score(&candidate) < packing_score(floorplan) - 1e-6));
    if accept {
        Ok(candidate)
    } else {
        Ok(floorplan.clone())
    }
}

/// Area-weighted sum of envelope bottoms: lower = better packed toward the
/// chip floor.
fn packing_score(floorplan: &Floorplan) -> f64 {
    floorplan.iter().map(|p| p.envelope.y * p.rect.area()).sum()
}

/// Improvement loop: alternately compacts (§2.5 topology LP) and re-solves
/// the chip's top (one MILP per round), for at most `rounds` rounds or
/// until a full round yields no gain.
///
/// The result is never worse than the input.
///
/// # Errors
///
/// Propagates [`FloorplanError`] from the topology LP or configuration.
pub fn improve(
    floorplan: &Floorplan,
    netlist: &Netlist,
    config: &FloorplanConfig,
    rounds: usize,
) -> Result<Floorplan, FloorplanError> {
    let mut discarded = RunStats::default();
    improve_traced(floorplan, netlist, config, rounds, &mut discarded)
}

/// [`improve`] with per-solve bookkeeping: every re-optimization MILP is
/// appended to `stats` as a [`StepKind::Reoptimize`] step (so
/// [`RunStats::total_nodes`] covers the whole pipeline, not just
/// augmentation), and each round emits an
/// [`fp_obs::Event::ImproveRound`] through the config's tracer.
///
/// The §2.5 topology LP has no integer variables and is deliberately left
/// untraced: traced branch-and-bound node totals stay comparable to the
/// recorded MILP step statistics.
///
/// # Errors
///
/// Propagates [`FloorplanError`] from the topology LP or configuration.
pub fn improve_traced(
    floorplan: &Floorplan,
    netlist: &Netlist,
    config: &FloorplanConfig,
    rounds: usize,
    stats: &mut RunStats,
) -> Result<Floorplan, FloorplanError> {
    let mut best = optimize_topology(floorplan, netlist, config)?;
    let group = config.group_size.max(3) + 2;
    let mut skip = 0usize;
    for round in 0..rounds {
        // Improvement is strictly optional polish: once the run deadline
        // has passed, stop instead of burning zero-budget MILP rounds.
        if config.deadline.is_some_and(|d| Instant::now() >= d) {
            break;
        }
        let candidate = reoptimize_band_recorded(&best, netlist, config, group, skip, Some(stats))?;
        let candidate = optimize_topology(&candidate, netlist, config)?;
        let better = candidate.chip_height() < best.chip_height() - 1e-9
            || (candidate.chip_height() < best.chip_height() + 1e-9
                && packing_score(&candidate) < packing_score(&best) - 1e-6);
        if better {
            best = candidate;
            skip = 0; // progress: go back to attacking the top
        }
        config.tracer.emit(
            Phase::Improve,
            Event::ImproveRound {
                round,
                accepted: better,
                height: best.chip_height(),
            },
        );
        if !better {
            // Stalled at this band: move one band deeper into the chip.
            skip += group;
            if skip + 1 >= best.len() {
                break;
            }
        }
    }
    Ok(best)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::augment::Floorplanner;
    use fp_milp::SolveOptions;
    use fp_netlist::generator::ProblemGenerator;
    use fp_netlist::ModuleId;
    use std::time::Duration;

    fn fast() -> FloorplanConfig {
        FloorplanConfig::default().with_step_options(
            SolveOptions::default()
                .with_node_limit(800)
                .with_time_limit(Duration::from_millis(800)),
        )
    }

    #[test]
    fn improve_never_hurts_and_stays_valid() {
        let nl = ProblemGenerator::new(10, 31).generate();
        let cfg = fast();
        let base = Floorplanner::with_config(&nl, cfg.clone()).run().unwrap();
        let improved = improve(&base.floorplan, &nl, &cfg, 3).unwrap();
        assert!(improved.is_valid(), "{:?}", improved.violations());
        assert!(improved.chip_height() <= base.floorplan.chip_height() + 1e-9);
        assert_eq!(improved.len(), 10);
    }

    #[test]
    fn reoptimize_fixes_a_bad_top() {
        // Build a deliberately bad floorplan: a wide flat base with one
        // module wastefully floating on top beside free space.
        let nl = {
            let mut nl = fp_netlist::Netlist::new("t");
            nl.add_module(fp_netlist::Module::rigid("base", 8.0, 2.0, false))
                .unwrap();
            nl.add_module(fp_netlist::Module::rigid("a", 4.0, 2.0, false))
                .unwrap();
            nl.add_module(fp_netlist::Module::rigid("b", 4.0, 2.0, false))
                .unwrap();
            nl
        };
        use fp_geom::Rect;
        let place = |id: usize, x: f64, y: f64, w: f64, h: f64| PlacedModule {
            id: ModuleId(id),
            rect: Rect::new(x, y, w, h),
            envelope: Rect::new(x, y, w, h),
            rotated: false,
        };
        // a and b stacked instead of side by side: height 6 instead of 4.
        let bad = Floorplan::new(
            8.0,
            vec![
                place(0, 0.0, 0.0, 8.0, 2.0),
                place(1, 0.0, 2.0, 4.0, 2.0),
                place(2, 0.0, 4.0, 4.0, 2.0),
            ],
        );
        let cfg = FloorplanConfig::default();
        let fixed = reoptimize_top(&bad, &nl, &cfg, 2).unwrap();
        assert!(fixed.is_valid());
        assert!(
            (fixed.chip_height() - 4.0).abs() < 1e-6,
            "expected height 4, got {}",
            fixed.chip_height()
        );
    }

    #[test]
    fn degenerate_inputs_pass_through() {
        let nl = ProblemGenerator::new(1, 1).generate();
        let cfg = fast();
        let base = Floorplanner::with_config(&nl, cfg.clone()).run().unwrap();
        let same = reoptimize_top(&base.floorplan, &nl, &cfg, 3).unwrap();
        assert_eq!(same.len(), 1);
        let same = improve(&base.floorplan, &nl, &cfg, 2).unwrap();
        assert_eq!(same.len(), 1);
    }

    #[test]
    fn budget_shrink_never_loses_modules() {
        // Regression: with a tiny binary budget the group shrinks and the
        // pushed-back modules must survive into the result.
        let nl = ProblemGenerator::new(12, 8).generate();
        let mut cfg = fast();
        cfg.max_binaries = 8; // force aggressive shrinking
        let base = Floorplanner::with_config(&nl, cfg.clone()).run().unwrap();
        let out = reoptimize_top(&base.floorplan, &nl, &cfg, 6).unwrap();
        assert_eq!(out.len(), 12, "modules lost during budget shrink");
        assert!(out.is_valid());
        for (id, _) in nl.modules() {
            assert!(out.placement(id).is_some(), "{id} missing");
        }
    }

    #[test]
    fn group_zero_is_identity() {
        let nl = ProblemGenerator::new(5, 2).generate();
        let cfg = fast();
        let base = Floorplanner::with_config(&nl, cfg.clone()).run().unwrap();
        let out = reoptimize_top(&base.floorplan, &nl, &cfg, 0).unwrap();
        assert_eq!(out, base.floorplan);
    }
}
