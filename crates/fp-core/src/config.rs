//! Floorplanner configuration.

use crate::portfolio::SharedIncumbent;
use fp_milp::{SolveOptions, StopFlag};
use fp_netlist::ModuleId;
use std::sync::Arc;
use std::time::{Duration, Instant};

/// Objective function for the MILP steps (paper §4, Series 2 compares the
/// two).
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum Objective {
    /// Minimize chip area (fixed width × minimized height) — formulation (3).
    Area,
    /// Minimize `chip area + λ · Σ c_ij · d_ij` with Manhattan distances
    /// between module centers (§3.2 "estimated area for interconnections in
    /// the objective function").
    AreaPlusWirelength {
        /// Trade-off weight λ (the paper does not publish its value; 0.5
        /// balances the two terms at ami33 scale).
        lambda: f64,
    },
}

impl Objective {
    /// The wirelength weight (0 for pure area).
    #[must_use]
    pub fn lambda(&self) -> f64 {
        match *self {
            Objective::Area => 0.0,
            Objective::AreaPlusWirelength { lambda } => lambda,
        }
    }
}

/// Order in which modules are fed to successive augmentation (Table 2
/// compares Random vs Connectivity).
#[derive(Debug, Clone, PartialEq)]
pub enum OrderingStrategy {
    /// Seeded random permutation.
    Random(u64),
    /// Kang-style linear ordering by connectivity (the paper's best).
    Connectivity,
    /// Descending module area (ablation baseline).
    Area,
    /// An explicit order provided by the caller.
    Custom(Vec<ModuleId>),
}

/// How a flexible module's `h = S/w` curve is linearized (paper Fig. 1).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum SoftShapeModel {
    /// First-order Taylor expansion at `w_max`, exactly as in the paper's
    /// formulation (6). *Underestimates* height away from the expansion
    /// point, so extracted placements may need a legalization shift.
    Taylor,
    /// Secant (chord) between the two extreme shapes. Overestimates height,
    /// so any MILP-feasible placement stays overlap-free with the *true*
    /// hyperbolic shapes — the sound default.
    #[default]
    Secant,
}

/// Full configuration for [`Floorplanner`](crate::Floorplanner).
///
/// ```
/// use fp_core::{FloorplanConfig, Objective};
/// let cfg = FloorplanConfig::default()
///     .with_chip_width(120.0)
///     .with_objective(Objective::AreaPlusWirelength { lambda: 0.5 })
///     .with_envelopes(true);
/// assert_eq!(cfg.chip_width, Some(120.0));
/// ```
#[derive(Debug, Clone, PartialEq)]
pub struct FloorplanConfig {
    /// Fixed chip width `W`; `None` derives one from total module area and
    /// [`FloorplanConfig::target_utilization`].
    pub chip_width: Option<f64>,
    /// Target utilization used when deriving the chip width.
    pub target_utilization: f64,
    /// MILP objective per step.
    pub objective: Objective,
    /// Module ordering strategy.
    pub ordering: OrderingStrategy,
    /// Modules in the first (seed) MILP — the paper's `m`.
    pub seed_size: usize,
    /// Modules added per augmentation step — the paper's `e`.
    pub group_size: usize,
    /// Cap on 0-1 variables per step MILP; groups are split when exceeded
    /// (the paper keeps "the number of variables close to a constant").
    pub max_binaries: usize,
    /// Whether to allow 90° rotation of rigid modules (formulation (4)).
    pub rotation: bool,
    /// Whether to grow modules into §3.2 routing envelopes.
    pub envelopes: bool,
    /// Metal pitch (width + spacing) of one horizontal routing track.
    pub pitch_h: f64,
    /// Metal pitch of one vertical routing track.
    pub pitch_v: f64,
    /// Envelope margins are rounded **up** to a multiple of this quantum
    /// (0 disables). Raw `pins × pitch` margins differ slightly per module,
    /// which fragments the skyline into many small steps and hurts both the
    /// covering-rectangle reduction and packing; quantizing restores
    /// alignment while never shrinking the reserved space.
    pub margin_quantum: f64,
    /// Linearization used for flexible modules.
    pub soft_model: SoftShapeModel,
    /// Solver limits for each augmentation-step MILP.
    pub step_options: SolveOptions,
    /// Absolute wall-clock deadline for the whole run. Each step MILP's
    /// time limit is clamped to the remaining budget (so a run of K steps
    /// cannot overshoot by K × [`SolveOptions::time_limit`]); once the
    /// deadline passes, remaining steps get a zero budget and degrade to
    /// their greedy fallback. `None` (the default) leaves per-step limits
    /// as configured.
    pub deadline: Option<Instant>,
    /// Impose `max_length` constraints of critical nets inside the MILPs.
    pub enforce_critical_nets: bool,
    /// Collapse the partial floorplan into §3.1 covering rectangles before
    /// each step (the paper's variable-count reduction). Disabling this is
    /// the ablation: every placed module becomes its own obstacle and the
    /// per-step integer count grows with the partial floorplan.
    pub covering_reduction: bool,
    /// Structured-event tracer threaded through every step MILP, the
    /// augmentation driver, and [`improve_traced`](crate::improve_traced).
    /// Disabled by default (one pointer check per would-be event).
    pub tracer: fp_obs::Tracer,
    /// Cooperative cancellation flag, checked at every augmentation-step
    /// boundary and inside every step MILP's branch-and-bound loop. When
    /// raised, the run returns [`FloorplanError::Cancelled`]
    /// (crate::FloorplanError::Cancelled). Disabled by default.
    pub stop: StopFlag,
    /// Shared portfolio incumbent. When set and the objective is pure
    /// [`Objective::Area`], each step MILP receives the incumbent's best
    /// height as an external upper bound, and the run aborts with
    /// `Cancelled` as soon as its partial floorplan provably cannot beat
    /// that height (the partial floor is monotone across steps).
    pub incumbent: Option<Arc<SharedIncumbent>>,
}

impl Default for FloorplanConfig {
    fn default() -> Self {
        FloorplanConfig {
            chip_width: None,
            target_utilization: 0.85,
            objective: Objective::Area,
            ordering: OrderingStrategy::Connectivity,
            seed_size: 5,
            group_size: 3,
            max_binaries: 60,
            rotation: true,
            envelopes: false,
            pitch_h: 0.10,
            pitch_v: 0.10,
            margin_quantum: 0.5,
            soft_model: SoftShapeModel::default(),
            step_options: SolveOptions::default()
                .with_node_limit(20_000)
                .with_time_limit(Duration::from_secs(10)),
            deadline: None,
            enforce_critical_nets: false,
            covering_reduction: true,
            tracer: fp_obs::Tracer::disabled(),
            stop: StopFlag::disabled(),
            incumbent: None,
        }
    }
}

impl FloorplanConfig {
    /// Sets a fixed chip width.
    #[must_use]
    pub fn with_chip_width(mut self, w: f64) -> Self {
        self.chip_width = Some(w);
        self
    }

    /// Sets the objective.
    #[must_use]
    pub fn with_objective(mut self, objective: Objective) -> Self {
        self.objective = objective;
        self
    }

    /// Sets the ordering strategy.
    #[must_use]
    pub fn with_ordering(mut self, ordering: OrderingStrategy) -> Self {
        self.ordering = ordering;
        self
    }

    /// Enables or disables §3.2 routing envelopes.
    #[must_use]
    pub fn with_envelopes(mut self, on: bool) -> Self {
        self.envelopes = on;
        self
    }

    /// Sets seed and per-step group sizes.
    #[must_use]
    pub fn with_group_sizes(mut self, seed: usize, group: usize) -> Self {
        self.seed_size = seed.max(1);
        self.group_size = group.max(1);
        self
    }

    /// Sets per-step solver options.
    #[must_use]
    pub fn with_step_options(mut self, options: SolveOptions) -> Self {
        self.step_options = options;
        self
    }

    /// Sets (or clears) the absolute run deadline; every subsequent step
    /// MILP is budgeted with the remaining time, not the full per-step
    /// limit.
    #[must_use]
    pub fn with_deadline(mut self, deadline: Option<Instant>) -> Self {
        self.deadline = deadline;
        self
    }

    /// The per-step solver options with the time limit clamped to the time
    /// left before [`FloorplanConfig::deadline`] — what the augmentation
    /// and re-optimization drivers hand to each MILP solve.
    #[must_use]
    pub(crate) fn budgeted_step_options(&self) -> SolveOptions {
        let opts = match self.deadline {
            None => self.step_options.clone(),
            Some(d) => {
                let remaining = d.saturating_duration_since(Instant::now());
                self.step_options
                    .clone()
                    .with_time_limit(self.step_options.time_limit.min(remaining))
            }
        };
        // The run-level stop flag reaches into every step MILP so a
        // cancelled portfolio leg stops mid-branch-and-bound, not just at
        // the next step boundary.
        opts.with_stop(self.stop.clone())
    }

    /// Sets the branch-and-bound worker-thread count for every step MILP.
    /// `1` selects the deterministic serial solver; see
    /// [`SolveOptions::threads`].
    #[must_use]
    pub fn with_solver_threads(mut self, threads: usize) -> Self {
        self.step_options = self.step_options.with_threads(threads);
        self
    }

    /// Enables or disables rotation variables.
    #[must_use]
    pub fn with_rotation(mut self, on: bool) -> Self {
        self.rotation = on;
        self
    }

    /// Sets routing track pitches (technology input, §2.2).
    #[must_use]
    pub fn with_pitches(mut self, pitch_h: f64, pitch_v: f64) -> Self {
        self.pitch_h = pitch_h;
        self.pitch_v = pitch_v;
        self
    }

    /// Sets the soft-module linearization.
    #[must_use]
    pub fn with_soft_model(mut self, model: SoftShapeModel) -> Self {
        self.soft_model = model;
        self
    }

    /// Enables critical-net maximum-length constraints in the MILPs.
    #[must_use]
    pub fn with_critical_nets(mut self, on: bool) -> Self {
        self.enforce_critical_nets = on;
        self
    }

    /// Enables or disables the §3.1 covering-rectangle reduction
    /// (disable only for ablation studies).
    #[must_use]
    pub fn with_covering_reduction(mut self, on: bool) -> Self {
        self.covering_reduction = on;
        self
    }

    /// Installs a structured-event tracer; every step MILP, the
    /// augmentation loop, and the improvement loop emit through it.
    ///
    /// ```
    /// use fp_core::FloorplanConfig;
    /// use fp_obs::{Collector, Tracer};
    /// let collector = Collector::new();
    /// let cfg = FloorplanConfig::default().with_tracer(Tracer::new(collector.clone()));
    /// assert!(cfg.tracer.is_enabled());
    /// ```
    #[must_use]
    pub fn with_tracer(mut self, tracer: fp_obs::Tracer) -> Self {
        self.tracer = tracer;
        self
    }

    /// Installs a cooperative stop flag; raising it cancels the run at the
    /// next step boundary and stops any in-flight step MILP.
    #[must_use]
    pub fn with_stop(mut self, stop: StopFlag) -> Self {
        self.stop = stop;
        self
    }

    /// Installs (or clears) a shared portfolio incumbent used to bound and
    /// early-abort pure-area runs.
    #[must_use]
    pub fn with_incumbent(mut self, incumbent: Option<Arc<SharedIncumbent>>) -> Self {
        self.incumbent = incumbent;
        self
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn defaults() {
        let c = FloorplanConfig::default();
        assert_eq!(c.chip_width, None);
        assert!(c.rotation);
        assert!(!c.envelopes);
        assert_eq!(c.objective.lambda(), 0.0);
        assert_eq!(c.soft_model, SoftShapeModel::Secant);
    }

    #[test]
    fn builders_chain() {
        let c = FloorplanConfig::default()
            .with_chip_width(100.0)
            .with_objective(Objective::AreaPlusWirelength { lambda: 2.0 })
            .with_ordering(OrderingStrategy::Random(7))
            .with_envelopes(true)
            .with_group_sizes(0, 0)
            .with_rotation(false)
            .with_pitches(0.2, 0.3)
            .with_soft_model(SoftShapeModel::Taylor)
            .with_critical_nets(true)
            .with_solver_threads(2);
        assert_eq!(c.chip_width, Some(100.0));
        assert_eq!(c.objective.lambda(), 2.0);
        assert_eq!(c.ordering, OrderingStrategy::Random(7));
        assert!(c.envelopes);
        assert_eq!((c.seed_size, c.group_size), (1, 1)); // clamped to >= 1
        assert!(!c.rotation);
        assert_eq!((c.pitch_h, c.pitch_v), (0.2, 0.3));
        assert_eq!(c.soft_model, SoftShapeModel::Taylor);
        assert!(c.enforce_critical_nets);
        assert_eq!(c.step_options.threads, 2);
    }
}
