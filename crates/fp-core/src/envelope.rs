//! Per-module shape/envelope linearization.
//!
//! Every module kind is reduced to a single linear description of its
//! *envelope* (module + §3.2 routing margins):
//!
//! ```text
//! We(z, Δw) = we0 + wez·z + wed·Δw
//! He(z, Δw) = he0 + hez·z + hed·Δw
//! ```
//!
//! * rigid, non-rotatable: constants (`wez = wed = 0`),
//! * rigid, rotatable: `z ∈ {0, 1}` swaps the orientation-0/1 envelopes
//!   (formulation (4)),
//! * flexible: `Δw ∈ [0, Δw_max]` shrinks the width while the height grows
//!   along the chosen linearization of `h = S/w` (formulation (6), Fig. 1).
//!
//! Envelope margins follow the paper: the side with `p` pins is extended by
//! `p · pitch` of the matching routing direction (horizontal tracks along
//! top/bottom, vertical tracks along left/right). When a module rotates,
//! its sides — and therefore its margins — rotate with it, which stays
//! linear in `z`.

use crate::config::{FloorplanConfig, SoftShapeModel};
use fp_geom::Rect;
use fp_netlist::{Module, ModuleId, Shape};

/// Routing margins on the four sides of a module for one orientation.
#[derive(Debug, Clone, Copy, PartialEq, Default)]
pub(crate) struct Margins {
    pub left: f64,
    pub right: f64,
    pub bottom: f64,
    pub top: f64,
}

impl Margins {
    fn width(&self) -> f64 {
        self.left + self.right
    }
    fn height(&self) -> f64 {
        self.bottom + self.top
    }
}

/// Soft-module data needed at extraction time.
#[derive(Debug, Clone, Copy, PartialEq)]
pub(crate) struct SoftShape {
    pub area: f64,
    pub w_min: f64,
    pub w_max: f64,
    pub model: SoftShapeModel,
}

impl SoftShape {
    /// Module height as placed for a given width, per the linearization.
    ///
    /// `Secant` realizes the *true* hyperbolic height (which is ≤ the chord
    /// the MILP reserved, so placements stay overlap-free); `Taylor`
    /// realizes the paper's linearized height.
    pub(crate) fn realized_height(&self, w: f64) -> f64 {
        match self.model {
            SoftShapeModel::Secant => self.area / w,
            SoftShapeModel::Taylor => {
                let h0 = self.area / self.w_max;
                let slope = self.area / (self.w_max * self.w_max);
                h0 + slope * (self.w_max - w)
            }
        }
    }

    /// Slope of the linearized `h(Δw)` (per unit of width decrease).
    pub(crate) fn height_slope(&self) -> f64 {
        match self.model {
            SoftShapeModel::Taylor => self.area / (self.w_max * self.w_max),
            SoftShapeModel::Secant => {
                if self.w_max - self.w_min < 1e-12 {
                    0.0
                } else {
                    (self.area / self.w_min - self.area / self.w_max) / (self.w_max - self.w_min)
                }
            }
        }
    }
}

/// Linearized shape + envelope of one module, ready for the MILP.
#[derive(Debug, Clone, PartialEq)]
pub(crate) struct ShapeSpec {
    pub id: ModuleId,
    /// Envelope width `we0 + wez·z + wed·Δw`.
    pub we0: f64,
    pub wez: f64,
    pub wed: f64,
    /// Envelope height `he0 + hez·z + hed·Δw`.
    pub he0: f64,
    pub hez: f64,
    pub hed: f64,
    /// Range of the Δw variable (0 when absent).
    pub dw_max: f64,
    /// Whether a rotation binary is needed.
    pub has_z: bool,
    /// Whether a Δw variable is needed.
    pub has_dw: bool,
    /// Margins in orientation 0 and 1.
    pub margins: [Margins; 2],
    /// Unrotated module dims (`(w_max, h_at_w_max)` for soft).
    pub base_dims: (f64, f64),
    /// Soft-module data, when flexible.
    pub soft: Option<SoftShape>,
    /// Module area (for branch priorities and reports).
    pub area: f64,
}

impl ShapeSpec {
    /// Builds the spec for `module` under `config`.
    pub(crate) fn from_module(id: ModuleId, module: &Module, config: &FloorplanConfig) -> Self {
        let pins = module.pins();
        let quantize = |margin: f64| -> f64 {
            let q = config.margin_quantum;
            if q > 0.0 && margin > 0.0 {
                (margin / q).ceil() * q
            } else {
                margin
            }
        };
        let (m0, m1) = if config.envelopes {
            let m0 = Margins {
                left: quantize(f64::from(pins.left) * config.pitch_v),
                right: quantize(f64::from(pins.right) * config.pitch_v),
                bottom: quantize(f64::from(pins.bottom) * config.pitch_h),
                top: quantize(f64::from(pins.top) * config.pitch_h),
            };
            // 90° CCW rotation: left→bottom, bottom→right, right→top,
            // top→left (pin counts travel with their sides).
            let m1 = Margins {
                left: quantize(f64::from(pins.top) * config.pitch_v),
                right: quantize(f64::from(pins.bottom) * config.pitch_v),
                bottom: quantize(f64::from(pins.left) * config.pitch_h),
                top: quantize(f64::from(pins.right) * config.pitch_h),
            };
            (m0, m1)
        } else {
            (Margins::default(), Margins::default())
        };

        match *module.shape() {
            Shape::Rigid { w, h } => {
                let we0 = w + m0.width();
                let he0 = h + m0.height();
                let rotatable = config.rotation && module.rotatable();
                let (wez, hez) = if rotatable {
                    (h + m1.width() - we0, w + m1.height() - he0)
                } else {
                    (0.0, 0.0)
                };
                ShapeSpec {
                    id,
                    we0,
                    wez,
                    wed: 0.0,
                    he0,
                    hez,
                    hed: 0.0,
                    dw_max: 0.0,
                    has_z: rotatable,
                    has_dw: false,
                    margins: [m0, m1],
                    base_dims: (w, h),
                    soft: None,
                    area: w * h,
                }
            }
            Shape::Flexible {
                area,
                min_aspect,
                max_aspect,
            } => {
                let w_min = (area * min_aspect).sqrt();
                let w_max = (area * max_aspect).sqrt();
                let soft = SoftShape {
                    area,
                    w_min,
                    w_max,
                    model: config.soft_model,
                };
                let h_at_wmax = area / w_max;
                ShapeSpec {
                    id,
                    we0: w_max + m0.width(),
                    wez: 0.0,
                    wed: -1.0,
                    he0: h_at_wmax + m0.height(),
                    hez: 0.0,
                    hed: soft.height_slope(),
                    dw_max: w_max - w_min,
                    has_z: false,
                    has_dw: w_max - w_min > 1e-9,
                    margins: [m0, m0],
                    base_dims: (w_max, h_at_wmax),
                    soft: Some(soft),
                    area,
                }
            }
        }
    }

    /// Envelope width for concrete `(z, Δw)`.
    pub(crate) fn env_width(&self, z: bool, dw: f64) -> f64 {
        self.we0 + if z { self.wez } else { 0.0 } + self.wed * dw
    }

    /// Envelope height for concrete `(z, Δw)`.
    pub(crate) fn env_height(&self, z: bool, dw: f64) -> f64 {
        self.he0 + if z { self.hez } else { 0.0 } + self.hed * dw
    }

    /// Smallest envelope width over all orientations and shapes — the width
    /// the chip must at least accommodate.
    pub(crate) fn min_env_width(&self) -> f64 {
        let mut w = self.env_width(false, 0.0);
        if self.has_z {
            w = w.min(self.env_width(true, 0.0));
        }
        if self.has_dw {
            w = w.min(self.env_width(false, self.dw_max));
        }
        w
    }

    /// Candidate `(z, Δw)` shape choices for greedy placement.
    pub(crate) fn shape_candidates(&self) -> Vec<(bool, f64)> {
        let mut out = vec![(false, 0.0)];
        if self.has_z {
            out.push((true, 0.0));
        }
        if self.has_dw {
            out.push((false, self.dw_max / 2.0));
            out.push((false, self.dw_max));
        }
        out
    }

    /// Realizes the placement: given the envelope's lower-left corner and
    /// the discrete/continuous shape decisions, returns the module
    /// rectangle, its envelope, and the rotation flag.
    pub(crate) fn realize(&self, env_x: f64, env_y: f64, z: bool, dw: f64) -> (Rect, Rect, bool) {
        let env = Rect::new(env_x, env_y, self.env_width(z, dw), self.env_height(z, dw));
        let m = self.margins[usize::from(z)];
        let rect = match self.soft {
            Some(soft) => {
                let w = (self.base_dims.0 - dw).max(soft.w_min.min(self.base_dims.0));
                let h = soft.realized_height(w);
                Rect::new(env_x + m.left, env_y + m.bottom, w, h)
            }
            None => {
                let (w, h) = if z {
                    (self.base_dims.1, self.base_dims.0)
                } else {
                    self.base_dims
                };
                Rect::new(env_x + m.left, env_y + m.bottom, w, h)
            }
        };
        (rect, env, z)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use fp_netlist::SidePins;

    fn cfg() -> FloorplanConfig {
        FloorplanConfig::default()
    }

    #[test]
    fn rigid_fixed_spec() {
        let m = Module::rigid("a", 4.0, 2.0, false);
        let s = ShapeSpec::from_module(ModuleId(0), &m, &cfg());
        assert!(!s.has_z && !s.has_dw);
        assert_eq!(s.env_width(false, 0.0), 4.0);
        assert_eq!(s.env_height(false, 0.0), 2.0);
        assert_eq!(s.min_env_width(), 4.0);
        let (rect, env, rot) = s.realize(1.0, 2.0, false, 0.0);
        assert_eq!(rect, Rect::new(1.0, 2.0, 4.0, 2.0));
        assert_eq!(env, rect);
        assert!(!rot);
    }

    #[test]
    fn rigid_rotatable_swaps_dims() {
        let m = Module::rigid("a", 4.0, 2.0, true);
        let s = ShapeSpec::from_module(ModuleId(0), &m, &cfg());
        assert!(s.has_z);
        assert_eq!(s.env_width(true, 0.0), 2.0);
        assert_eq!(s.env_height(true, 0.0), 4.0);
        assert_eq!(s.min_env_width(), 2.0);
        let (rect, _, rot) = s.realize(0.0, 0.0, true, 0.0);
        assert_eq!((rect.w, rect.h), (2.0, 4.0));
        assert!(rot);
    }

    #[test]
    fn rotation_disabled_by_config() {
        let m = Module::rigid("a", 4.0, 2.0, true);
        let s = ShapeSpec::from_module(ModuleId(0), &m, &cfg().with_rotation(false));
        assert!(!s.has_z);
    }

    #[test]
    fn envelope_margins_applied_and_rotated() {
        let m = Module::rigid("a", 4.0, 2.0, true).with_pins(SidePins {
            left: 10,
            right: 0,
            bottom: 0,
            top: 0,
        });
        let c = cfg().with_envelopes(true).with_pitches(0.1, 0.2);
        let s = ShapeSpec::from_module(ModuleId(0), &m, &c);
        // Orientation 0: left margin 10 * pitch_v = 2.0.
        assert!((s.env_width(false, 0.0) - 6.0).abs() < 1e-12);
        assert!((s.env_height(false, 0.0) - 2.0).abs() < 1e-12);
        // Orientation 1 (CCW): left pins now on the bottom; margin 10 *
        // pitch_h = 1.0 on height; width is h = 2.
        assert!((s.env_width(true, 0.0) - 2.0).abs() < 1e-12);
        assert!((s.env_height(true, 0.0) - 5.0).abs() < 1e-12);
        // Module rect sits inside the envelope offset by the margins.
        let (rect, env, _) = s.realize(0.0, 0.0, false, 0.0);
        assert_eq!(rect, Rect::new(2.0, 0.0, 4.0, 2.0));
        assert!(env.contains_rect(&rect));
    }

    #[test]
    fn soft_secant_overestimates_height() {
        let m = Module::flexible("s", 16.0, 0.25, 4.0); // w in [2, 8]
        let s = ShapeSpec::from_module(ModuleId(0), &m, &cfg());
        assert!(s.has_dw);
        assert!((s.dw_max - 6.0).abs() < 1e-9);
        // At the endpoints the chord is exact.
        assert!((s.env_height(false, 0.0) - 2.0).abs() < 1e-9);
        assert!((s.env_height(false, 6.0) - 8.0).abs() < 1e-9);
        // In the middle the chord over-reserves: true h(5) = 3.2, chord = 5.
        let mid_env = s.env_height(false, 3.0);
        assert!(mid_env >= 16.0 / 5.0);
        // The realized rect uses the true hyperbola and fits the envelope.
        let (rect, env, _) = s.realize(0.0, 0.0, false, 3.0);
        assert!((rect.w - 5.0).abs() < 1e-9);
        assert!((rect.h - 3.2).abs() < 1e-9);
        assert!(env.contains_rect(&rect));
        assert!((rect.area() - 16.0).abs() < 1e-9); // exact area preserved
    }

    #[test]
    fn soft_taylor_matches_paper_formula() {
        let m = Module::flexible("s", 16.0, 0.25, 4.0);
        let c = cfg().with_soft_model(SoftShapeModel::Taylor);
        let s = ShapeSpec::from_module(ModuleId(0), &m, &c);
        // Λ = S / w_max² = 16/64 = 0.25 (paper formulation (6)).
        assert!((s.hed - 0.25).abs() < 1e-12);
        let (rect, _, _) = s.realize(0.0, 0.0, false, 4.0);
        // w = 4, h_lin = 2 + 0.25*4 = 3 (true h would be 4).
        assert!((rect.w - 4.0).abs() < 1e-9);
        assert!((rect.h - 3.0).abs() < 1e-9);
    }

    #[test]
    fn shape_candidates_cover_choices() {
        let rigid =
            ShapeSpec::from_module(ModuleId(0), &Module::rigid("a", 4.0, 2.0, true), &cfg());
        assert_eq!(rigid.shape_candidates(), vec![(false, 0.0), (true, 0.0)]);
        let soft =
            ShapeSpec::from_module(ModuleId(1), &Module::flexible("s", 16.0, 0.25, 4.0), &cfg());
        assert_eq!(soft.shape_candidates().len(), 3);
    }

    #[test]
    fn square_soft_module_has_no_dw() {
        let m = Module::flexible("sq", 9.0, 1.0, 1.0);
        let s = ShapeSpec::from_module(ModuleId(0), &m, &cfg());
        assert!(!s.has_dw);
        assert_eq!(s.dw_max, 0.0);
        let (rect, _, _) = s.realize(0.0, 0.0, false, 0.0);
        assert!((rect.w - 3.0).abs() < 1e-9);
        assert!((rect.h - 3.0).abs() < 1e-9);
    }
}
