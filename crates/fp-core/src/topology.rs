//! Floorplan optimization with a *given topology* (paper §2.5).
//!
//! When the relative position of every module pair is known, all integer
//! variables vanish: for each pair only the single active non-overlap
//! inequality is kept, leaving a pure LP with `2K` continuous variables and
//! `O(K)` constraints. The paper proposes this for shape optimization; here
//! it also serves as a **compaction pass** — re-solving the entire chip's
//! coordinates (and flexible shapes) at once after successive augmentation,
//! something the per-step MILPs cannot do globally.

use crate::config::FloorplanConfig;
use crate::envelope::ShapeSpec;
use crate::error::FloorplanError;
use crate::placement::{Floorplan, PlacedModule};
use fp_geom::GEOM_EPS;
use fp_milp::{LinExpr, Model, Sense};
use fp_netlist::Netlist;

/// The relative position of an ordered module pair `(i, j)` — which of the
/// four disjuncts of system (2) is active.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Relation {
    /// `i` is to the left of `j`.
    LeftOf,
    /// `i` is to the right of `j`.
    RightOf,
    /// `i` is below `j`.
    Below,
    /// `i` is above `j`.
    Above,
}

/// Extracts the topology of an existing floorplan: for every pair, the
/// separating relation with the largest slack.
///
/// # Errors
///
/// [`FloorplanError::TopologyMismatch`] if some pair of envelopes overlaps
/// (no separating relation exists).
pub fn extract_topology(
    floorplan: &Floorplan,
) -> Result<Vec<(usize, usize, Relation)>, FloorplanError> {
    let placed: Vec<&PlacedModule> = floorplan.iter().collect();
    let mut out = Vec::new();
    for i in 0..placed.len() {
        for j in i + 1..placed.len() {
            let (a, b) = (placed[i].envelope, placed[j].envelope);
            // Gap of each candidate relation; pick the widest non-negative.
            let candidates = [
                (Relation::LeftOf, b.x - a.right()),
                (Relation::RightOf, a.x - b.right()),
                (Relation::Below, b.y - a.top()),
                (Relation::Above, a.y - b.top()),
            ];
            let best = candidates
                .iter()
                .max_by(|x, y| x.1.total_cmp(&y.1))
                .expect("four candidates");
            if best.1 < -GEOM_EPS {
                return Err(FloorplanError::TopologyMismatch(format!(
                    "{} and {} overlap; no separating relation",
                    placed[i].id, placed[j].id
                )));
            }
            out.push((i, j, best.0));
        }
    }
    Ok(out)
}

/// Re-optimizes module coordinates (and flexible shapes) for the fixed
/// topology of `floorplan`, minimizing chip height. Orientations are kept
/// as placed. Returns the compacted floorplan.
///
/// The result is never taller than the input (the input is feasible for the
/// LP), which the integration tests assert.
///
/// # Errors
///
/// * [`FloorplanError::TopologyMismatch`] for overlapping inputs,
/// * [`FloorplanError::Solver`] if the LP fails (indicates a bug: the input
///   placement is always a feasible witness).
pub fn optimize_topology(
    floorplan: &Floorplan,
    netlist: &Netlist,
    config: &FloorplanConfig,
) -> Result<Floorplan, FloorplanError> {
    let placed: Vec<&PlacedModule> = floorplan.iter().collect();
    if placed.is_empty() {
        return Ok(floorplan.clone());
    }
    let relations = extract_topology(floorplan)?;
    let chip_w = floorplan.chip_width();

    let specs: Vec<ShapeSpec> = placed
        .iter()
        .map(|p| ShapeSpec::from_module(p.id, netlist.module(p.id), config))
        .collect();

    let mut model = Model::new(Sense::Minimize);
    let h_ub = floorplan.chip_height();
    let ychip = model.add_continuous("y_chip", 0.0, h_ub);

    // Positions; orientation fixed to the placed one, Δw re-optimized.
    let vars: Vec<(fp_milp::Var, fp_milp::Var, Option<fp_milp::Var>)> = placed
        .iter()
        .zip(&specs)
        .map(|(p, spec)| {
            let name = netlist.module(p.id).name().to_string();
            let x = model.add_continuous(format!("x_{name}"), 0.0, chip_w);
            let y = model.add_continuous(format!("y_{name}"), 0.0, h_ub);
            let dw = spec
                .has_dw
                .then(|| model.add_continuous(format!("dw_{name}"), 0.0, spec.dw_max));
            (x, y, dw)
        })
        .collect();

    // Envelope dimension expressions with the *fixed* orientation folded in.
    let env_w = |k: usize| -> LinExpr {
        let spec = &specs[k];
        let z = placed[k].rotated;
        let mut e = LinExpr::constant(spec.we0 + if z { spec.wez } else { 0.0 });
        if let Some(dw) = vars[k].2 {
            e.add_term(dw, spec.wed);
        }
        e
    };
    let env_h = |k: usize| -> LinExpr {
        let spec = &specs[k];
        let z = placed[k].rotated;
        let mut e = LinExpr::constant(spec.he0 + if z { spec.hez } else { 0.0 });
        if let Some(dw) = vars[k].2 {
            e.add_term(dw, spec.hed);
        }
        e
    };

    // Chip bounds.
    for (k, v) in vars.iter().enumerate() {
        model.add_le(v.0 + env_w(k), chip_w);
        let row = v.1 + env_h(k) - ychip;
        model.add_le(row, 0.0);
    }

    // One active non-overlap row per pair (§2.5: "only one inequality is
    // needed" per pair, integer variables eliminated).
    for &(i, j, rel) in &relations {
        match rel {
            Relation::LeftOf => {
                let row = vars[i].0 + env_w(i) - vars[j].0;
                model.add_le(row, 0.0);
            }
            Relation::RightOf => {
                let row = vars[j].0 + env_w(j) - vars[i].0;
                model.add_le(row, 0.0);
            }
            Relation::Below => {
                let row = vars[i].1 + env_h(i) - vars[j].1;
                model.add_le(row, 0.0);
            }
            Relation::Above => {
                let row = vars[j].1 + env_h(j) - vars[i].1;
                model.add_le(row, 0.0);
            }
        }
    }

    // Objective: chip area (W·height), plus the configured wirelength term
    // — §2.5 allows "chip area, interconnection length ... or any
    // combinations"; with all relations fixed this stays a pure LP.
    let mut objective = LinExpr::new();
    objective.add_term(ychip, chip_w);
    let lambda = config.objective.lambda();
    if lambda > 0.0 {
        let span = chip_w.max(h_ub);
        for i in 0..placed.len() {
            for j in i + 1..placed.len() {
                let c = netlist.connectivity(placed[i].id, placed[j].id);
                if c <= 0.0 {
                    continue;
                }
                let dx = model.add_continuous(format!("dx_{i}_{j}"), 0.0, span);
                let dy = model.add_continuous(format!("dy_{i}_{j}"), 0.0, span);
                let cx = |k: usize| {
                    let mut e = LinExpr::from(vars[k].0);
                    e += env_w(k) * 0.5;
                    e
                };
                let cy = |k: usize| {
                    let mut e = LinExpr::from(vars[k].1);
                    e += env_h(k) * 0.5;
                    e
                };
                model.add_le(cx(i) - cx(j) - dx, 0.0);
                model.add_le(cx(j) - cx(i) - dx, 0.0);
                model.add_le(cy(i) - cy(j) - dy, 0.0);
                model.add_le(cy(j) - cy(i) - dy, 0.0);
                objective.add_term(dx, lambda * c);
                objective.add_term(dy, lambda * c);
            }
        }
    }
    model.set_objective(objective);
    let sol = model.solve().map_err(FloorplanError::Solver)?;

    let new_placed = placed
        .iter()
        .zip(&specs)
        .zip(&vars)
        .map(|((p, spec), &(x, y, dw))| {
            let dw_val = dw.map_or(0.0, |v| sol.value(v).clamp(0.0, spec.dw_max));
            let (rect, envelope, rotated) = spec.realize(
                sol.value(x).max(0.0),
                sol.value(y).max(0.0),
                p.rotated,
                dw_val,
            );
            PlacedModule {
                id: p.id,
                rect,
                envelope,
                rotated,
            }
        })
        .collect();
    Ok(Floorplan::new(chip_w, new_placed))
}

#[cfg(test)]
mod tests {
    use super::*;
    use fp_geom::Rect;
    use fp_netlist::generator::ProblemGenerator;
    use fp_netlist::{Module, ModuleId};

    fn place(id: usize, x: f64, y: f64, w: f64, h: f64) -> PlacedModule {
        PlacedModule {
            id: ModuleId(id),
            rect: Rect::new(x, y, w, h),
            envelope: Rect::new(x, y, w, h),
            rotated: false,
        }
    }

    #[test]
    fn extract_relations() {
        let fp = Floorplan::new(
            10.0,
            vec![place(0, 0.0, 0.0, 3.0, 3.0), place(1, 5.0, 0.0, 3.0, 3.0)],
        );
        let rel = extract_topology(&fp).unwrap();
        assert_eq!(rel, vec![(0, 1, Relation::LeftOf)]);
    }

    #[test]
    fn extract_rejects_overlap() {
        let fp = Floorplan::new(
            10.0,
            vec![place(0, 0.0, 0.0, 4.0, 4.0), place(1, 2.0, 2.0, 4.0, 4.0)],
        );
        assert!(matches!(
            extract_topology(&fp),
            Err(FloorplanError::TopologyMismatch(_))
        ));
    }

    #[test]
    fn compaction_removes_slack() {
        // A floorplan with deliberate gaps: module 1 floats at y = 5 above
        // module 0 (height 2). Compaction must drop it to y = 2.
        let mut nl = Netlist::new("t");
        nl.add_module(Module::rigid("a", 4.0, 2.0, false)).unwrap();
        nl.add_module(Module::rigid("b", 4.0, 2.0, false)).unwrap();
        let fp = Floorplan::new(
            4.0,
            vec![place(0, 0.0, 0.0, 4.0, 2.0), place(1, 0.0, 5.0, 4.0, 2.0)],
        );
        let cfg = FloorplanConfig::default();
        let compact = optimize_topology(&fp, &nl, &cfg).unwrap();
        assert!((compact.chip_height() - 4.0).abs() < 1e-6);
        assert!(compact.is_valid());
    }

    #[test]
    fn compaction_never_increases_height() {
        let nl = ProblemGenerator::new(9, 17).generate();
        let cfg = FloorplanConfig::default();
        let fp = crate::greedy::bottom_left(&nl, &cfg).unwrap();
        let compact = optimize_topology(&fp, &nl, &cfg).unwrap();
        assert!(compact.is_valid(), "{:?}", compact.violations());
        assert!(compact.chip_height() <= fp.chip_height() + 1e-6);
    }

    #[test]
    fn soft_shapes_reoptimized() {
        // Rigid 4x4 and a soft area-8 module stacked on a 6-wide chip; the
        // topology LP can reshape the soft one but "Below" keeps the stack.
        let mut nl = Netlist::new("t");
        nl.add_module(Module::rigid("r", 4.0, 4.0, false)).unwrap();
        nl.add_module(Module::flexible("s", 8.0, 0.5, 2.0)).unwrap();
        let fp = Floorplan::new(
            6.0,
            vec![
                place(0, 0.0, 0.0, 4.0, 4.0),
                // soft placed as 2x4 beside the rigid module
                place(1, 4.0, 0.0, 2.0, 4.0),
            ],
        );
        let cfg = FloorplanConfig::default();
        let out = optimize_topology(&fp, &nl, &cfg).unwrap();
        assert!(out.is_valid());
        assert!(out.chip_height() <= fp.chip_height() + 1e-6);
        let soft = out.placement(ModuleId(1)).unwrap();
        assert!((soft.rect.area() - 8.0).abs() < 1e-6);
    }

    #[test]
    fn wirelength_objective_pulls_connected_pair() {
        use crate::config::Objective;
        use fp_netlist::Net;
        // Three modules in a row with horizontal slack; a & c connected.
        // Pure-area compaction leaves x positions free (height-optimal
        // anyway); the wirelength term must drag a and c together.
        let mut nl = Netlist::new("t");
        let a = nl.add_module(Module::rigid("a", 2.0, 2.0, false)).unwrap();
        nl.add_module(Module::rigid("b", 2.0, 2.0, false)).unwrap();
        let c = nl.add_module(Module::rigid("c", 2.0, 2.0, false)).unwrap();
        nl.add_net(Net::new("ac", [a, c])).unwrap();
        let fp = Floorplan::new(
            12.0,
            vec![
                place(0, 0.0, 0.0, 2.0, 2.0),
                place(1, 5.0, 0.0, 2.0, 2.0),
                place(2, 10.0, 0.0, 2.0, 2.0),
            ],
        );
        let cfg = FloorplanConfig::default()
            .with_objective(Objective::AreaPlusWirelength { lambda: 1.0 });
        let out = optimize_topology(&fp, &nl, &cfg).unwrap();
        assert!(out.is_valid());
        let pa = out.placement(ModuleId(0)).unwrap().rect.center();
        let pc = out.placement(ModuleId(2)).unwrap().rect.center();
        // Relations keep a left of b left of c, so the best distance is
        // a..b..c packed: centers 4 apart (vs 10 initially).
        assert!(
            pa.manhattan(&pc) <= 4.0 + 1e-6,
            "distance {} not compacted",
            pa.manhattan(&pc)
        );
        assert!(out.chip_height() <= fp.chip_height() + 1e-9);
    }

    #[test]
    fn empty_floorplan_passthrough() {
        let nl = Netlist::new("t");
        let fp = Floorplan::new(5.0, Vec::new());
        let out = optimize_topology(&fp, &nl, &FloorplanConfig::default()).unwrap();
        assert!(out.is_empty());
    }
}
