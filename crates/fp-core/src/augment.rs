//! The successive-augmentation driver (paper Fig. 3, `FloorplanDesign`).
//!
//! ```text
//! (1) select a seed group of m modules
//! (2,3) solve its MILP exactly → first partial floorplan
//! (4..11) while modules remain:
//!     select the next group (ordering strategy),
//!     replace the partial floorplan by d ≤ N covering rectangles,
//!     solve the (d fixed, e free) MILP, fix the new positions
//! (12,13) global routing + adjustment live in `fp-route`
//! ```
//!
//! Group sizes adapt so each step's 0-1 variable count stays below
//! [`FloorplanConfig::max_binaries`] — the paper's "number of variables
//! close to a constant in each step", which is what makes the whole run
//! linear in the number of modules (Table 1).

use crate::config::{FloorplanConfig, Objective, OrderingStrategy};
use crate::envelope::ShapeSpec;
use crate::error::FloorplanError;
use crate::formulation::{estimate_binaries, StepInput, StepModel};
use crate::greedy::{greedy_height_on, widest_error};
use crate::placement::{Floorplan, PlacedModule};
use fp_geom::covering::covering_rectangles_from_skyline;
use fp_geom::Skyline;
use fp_milp::{Optimality, SolveError};
use fp_netlist::{ordering, ModuleId, Netlist};
use fp_obs::{Event, Phase, StepTermination};
use std::time::{Duration, Instant};

/// How one augmentation step concluded.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum StepOutcome {
    /// The step MILP was solved to proven optimality (the paper's normal
    /// case: "optimality at each step").
    Optimal,
    /// A limit stopped the search; the best incumbent was used.
    Incumbent,
    /// The MILP produced nothing in time; the greedy placement stood in.
    GreedyFallback,
}

impl StepOutcome {
    /// The trace-event form of this outcome.
    #[must_use]
    pub fn termination(self) -> StepTermination {
        match self {
            StepOutcome::Optimal => StepTermination::Optimal,
            StepOutcome::Incumbent => StepTermination::Incumbent,
            StepOutcome::GreedyFallback => StepTermination::GreedyFallback,
        }
    }
}

/// Which part of the pipeline a [`StepStats`] record came from.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum StepKind {
    /// An augmentation step of [`Floorplanner::run`].
    Placement,
    /// A re-optimization solve of [`improve_traced`](crate::improve_traced)
    /// / [`reoptimize_top`](crate::reoptimize_top).
    Reoptimize,
}

/// Statistics of one augmentation step.
#[derive(Debug, Clone, PartialEq)]
pub struct StepStats {
    /// Where this step ran (augmentation vs re-optimization).
    pub kind: StepKind,
    /// Modules placed in this step.
    pub group: Vec<ModuleId>,
    /// Number of covering rectangles the partial floorplan collapsed to.
    pub obstacles: usize,
    /// 0-1 variables in the step MILP.
    pub binaries: usize,
    /// Branch-and-bound nodes explored.
    pub nodes: usize,
    /// Total simplex pivots.
    pub simplex_iterations: usize,
    /// Branch-and-bound nodes solved warm from the parent basis.
    pub warm_nodes: usize,
    /// Branch-and-bound nodes solved by the cold two-phase primal.
    pub cold_nodes: usize,
    /// Basis LU (re)factorizations across this step's node LPs (sparse
    /// revised kernel; `0` when the dense reference kernel is selected).
    pub refactorizations: usize,
    /// Eta-file basis updates across this step's node LPs (sparse revised
    /// kernel only).
    pub eta_updates: usize,
    /// Rows whose big-M coefficients the root strengthening layer
    /// tightened in this step's MILP.
    pub rows_tightened: usize,
    /// Binaries fixed by root 0-1 probing.
    pub binaries_fixed: usize,
    /// Cutting planes appended to the step's root LP.
    pub cuts_added: usize,
    /// Wall time of the step (model build + solve).
    pub elapsed: Duration,
    /// How the step concluded.
    pub outcome: StepOutcome,
}

/// Statistics of a whole floorplanning run.
#[derive(Debug, Clone, PartialEq, Default)]
pub struct RunStats {
    /// Per-step records, in execution order.
    pub steps: Vec<StepStats>,
    /// End-to-end wall time.
    pub elapsed: Duration,
}

impl RunStats {
    /// Steps that fell back to greedy placement.
    #[must_use]
    pub fn greedy_fallbacks(&self) -> usize {
        self.steps
            .iter()
            .filter(|s| s.outcome == StepOutcome::GreedyFallback)
            .count()
    }

    /// Total branch-and-bound nodes over all steps — augmentation *and*
    /// re-optimization solves recorded by
    /// [`improve_traced`](crate::improve_traced).
    #[must_use]
    pub fn total_nodes(&self) -> usize {
        self.steps.iter().map(|s| s.nodes).sum()
    }

    /// Branch-and-bound nodes of steps of one [`StepKind`].
    #[must_use]
    pub fn nodes_of_kind(&self, kind: StepKind) -> usize {
        self.steps
            .iter()
            .filter(|s| s.kind == kind)
            .map(|s| s.nodes)
            .sum()
    }

    /// Largest per-step binary count (the paper's "close to a constant").
    #[must_use]
    pub fn max_binaries(&self) -> usize {
        self.steps.iter().map(|s| s.binaries).max().unwrap_or(0)
    }

    /// Branch-and-bound nodes solved warm from a parent basis, over all
    /// steps. Together with [`cold_nodes`](Self::cold_nodes) this
    /// partitions [`total_nodes`](Self::total_nodes).
    #[must_use]
    pub fn warm_nodes(&self) -> usize {
        self.steps.iter().map(|s| s.warm_nodes).sum()
    }

    /// Branch-and-bound nodes solved by the cold two-phase primal, over
    /// all steps.
    #[must_use]
    pub fn cold_nodes(&self) -> usize {
        self.steps.iter().map(|s| s.cold_nodes).sum()
    }

    /// Basis LU (re)factorizations performed by the sparse revised simplex,
    /// over all steps. Zero when every step ran the dense reference kernel.
    #[must_use]
    pub fn refactorizations(&self) -> usize {
        self.steps.iter().map(|s| s.refactorizations).sum()
    }

    /// Eta-file basis updates recorded by the sparse revised simplex, over
    /// all steps.
    #[must_use]
    pub fn eta_updates(&self) -> usize {
        self.steps.iter().map(|s| s.eta_updates).sum()
    }

    /// Rows tightened by the root strengthening layer, over all steps.
    #[must_use]
    pub fn rows_tightened(&self) -> usize {
        self.steps.iter().map(|s| s.rows_tightened).sum()
    }

    /// Binaries fixed by root probing, over all steps.
    #[must_use]
    pub fn binaries_fixed(&self) -> usize {
        self.steps.iter().map(|s| s.binaries_fixed).sum()
    }

    /// Root cutting planes added, over all steps.
    #[must_use]
    pub fn cuts_added(&self) -> usize {
        self.steps.iter().map(|s| s.cuts_added).sum()
    }
}

/// A completed run: the floorplan plus how it was obtained.
#[derive(Debug, Clone, PartialEq)]
pub struct FloorplanResult {
    /// The floorplan.
    pub floorplan: Floorplan,
    /// Run statistics.
    pub stats: RunStats,
}

/// The MILP floorplanner (paper's contribution).
///
/// ```
/// use fp_core::{Floorplanner, FloorplanConfig};
/// # fn main() -> Result<(), fp_core::FloorplanError> {
/// let netlist = fp_netlist::generator::ProblemGenerator::new(6, 1).generate();
/// // Budget each augmentation-step MILP (optional; defaults are generous).
/// let config = FloorplanConfig::default()
///     .with_step_options(fp_milp::SolveOptions::default().with_node_limit(2_000));
/// let result = Floorplanner::with_config(&netlist, config).run()?;
/// assert!(result.floorplan.is_valid());
/// assert_eq!(result.floorplan.len(), 6);
/// # Ok(())
/// # }
/// ```
#[derive(Debug, Clone)]
pub struct Floorplanner<'a> {
    netlist: &'a Netlist,
    config: FloorplanConfig,
}

impl<'a> Floorplanner<'a> {
    /// A floorplanner with default configuration.
    #[must_use]
    pub fn new(netlist: &'a Netlist) -> Self {
        Floorplanner {
            netlist,
            config: FloorplanConfig::default(),
        }
    }

    /// A floorplanner with explicit configuration.
    #[must_use]
    pub fn with_config(netlist: &'a Netlist, config: FloorplanConfig) -> Self {
        Floorplanner { netlist, config }
    }

    /// The active configuration.
    #[must_use]
    pub fn config(&self) -> &FloorplanConfig {
        &self.config
    }

    /// Runs successive augmentation to completion.
    ///
    /// # Errors
    ///
    /// * [`FloorplanError::EmptyNetlist`] for an empty problem,
    /// * [`FloorplanError::ModuleTooWide`] when a module cannot fit the chip,
    /// * [`FloorplanError::InvalidOrdering`] for a bad custom order,
    /// * [`FloorplanError::Solver`] only for internal model bugs.
    pub fn run(&self) -> Result<FloorplanResult, FloorplanError> {
        let started = Instant::now();
        let order = resolve_order(self.netlist, &self.config)?;
        let chip_width = resolve_chip_width(self.netlist, &self.config)?;
        let specs: Vec<ShapeSpec> = order
            .iter()
            .map(|&id| ShapeSpec::from_module(id, self.netlist.module(id), &self.config))
            .collect();

        let mut placed: Vec<PlacedModule> = Vec::with_capacity(order.len());
        // The partial floorplan's skyline, maintained incrementally: one
        // `add_rect` per placed module instead of a full rebuild per step.
        let mut sky = Skyline::new();
        let mut stats = RunStats::default();
        let mut cursor = 0usize;
        let mut target = self.config.seed_size.min(specs.len()).max(1);

        while cursor < specs.len() {
            if self.config.stop.is_set() {
                return Err(FloorplanError::Cancelled("stop flag raised".into()));
            }

            // Collapse the partial floorplan into covering rectangles
            // (§3.1) — derived from the incrementally-maintained skyline —
            // or keep every module as its own obstacle when the reduction
            // is ablated away.
            let obstacles = if self.config.covering_reduction {
                covering_rectangles_from_skyline(&sky)
            } else {
                placed.iter().map(|p| p.envelope).collect()
            };
            let floor = sky.max_height();

            // Portfolio pruning, sound only for the pure-area objective
            // (with λ > 0 a same-height, lower-wirelength completion could
            // still win the race): the partial floor is monotone across
            // steps, so once it reaches the best full-floorplan height any
            // backend has published, this run can never strictly beat it.
            let inc_height = match (&self.config.incumbent, self.config.objective) {
                (Some(inc), Objective::Area) => inc.best_height(),
                _ => f64::INFINITY,
            };
            if floor >= inc_height - 1e-9 {
                return Err(FloorplanError::Cancelled(
                    "partial floor cannot beat the portfolio incumbent".into(),
                ));
            }

            // Adaptive group size: honor the target but stay under the
            // binary budget (>= 1 module per step, always).
            let mut take = target.min(specs.len() - cursor).max(1);
            while take > 1 {
                let rot = specs[cursor..cursor + take]
                    .iter()
                    .filter(|s| s.has_z)
                    .count();
                if estimate_binaries(take, obstacles.len(), rot) <= self.config.max_binaries {
                    break;
                }
                take -= 1;
            }
            let group = &specs[cursor..cursor + take];

            // Greedy witness: both the incumbent fallback and the height
            // bound that keeps the MILP's big-M tight.
            let Some((greedy, h_ub)) = greedy_height_on(&sky, group, chip_width) else {
                return Err(widest_error(group, chip_width, self.netlist));
            };

            let step_started = Instant::now();
            let input = StepInput {
                netlist: self.netlist,
                config: &self.config,
                chip_width,
                obstacles: &obstacles,
                placed: &placed,
                group,
                h_ub,
                floor,
                pull_down: false,
            };
            let step_model = StepModel::build(&input);
            let binaries = step_model.model.num_integer_vars();
            let step_index = stats.steps.len();

            // Re-budgeted per step: with a config deadline the limit is
            // the *remaining* wall clock, so K steps cannot overshoot by
            // K × the per-step limit.
            let mut step_options = self.config.budgeted_step_options();
            // Pure-area step objective is W · height, so the incumbent
            // height becomes an external objective cutoff the step must
            // strictly beat.
            if inc_height.is_finite() {
                step_options.initial_upper_bound = step_options
                    .initial_upper_bound
                    .min(chip_width * inc_height);
            }
            let bounded = step_options.initial_upper_bound.is_finite();
            let (new_placements, outcome, nodes, pivots, warm, cold, factor, strengthened) =
                match step_model
                    .model
                    .solve_traced(&step_options, &self.config.tracer)
                {
                    Ok(sol) => {
                        let outcome = match sol.optimality() {
                            Optimality::Proven => StepOutcome::Optimal,
                            Optimality::Limit => StepOutcome::Incumbent,
                        };
                        (
                            step_model.extract(&sol, group),
                            outcome,
                            sol.stats().nodes,
                            sol.stats().simplex_iterations,
                            sol.stats().warm_nodes,
                            sol.stats().cold_nodes,
                            (sol.stats().refactorizations, sol.stats().eta_updates),
                            (
                                sol.stats().rows_tightened,
                                sol.stats().binaries_fixed,
                                sol.stats().cuts_added,
                            ),
                        )
                    }
                    Err(SolveError::InvalidModel(why)) => {
                        return Err(FloorplanError::Solver(SolveError::InvalidModel(why)))
                    }
                    Err(SolveError::Infeasible) if bounded => {
                        // The greedy witness makes the step feasible, so a
                        // *proven* infeasibility under an injected cutoff
                        // means no placement of this group beats the
                        // incumbent height — and the floor only rises from
                        // here, so neither will any later step.
                        return Err(FloorplanError::Cancelled(
                            "step proved the portfolio incumbent unbeatable".into(),
                        ));
                    }
                    Err(_) => {
                        // Infeasible cannot truly happen (the greedy witness
                        // satisfies every constraint); numerical trouble and
                        // limits both degrade to the greedy placement.
                        self.config
                            .tracer
                            .emit(Phase::Augment, Event::GreedyFallback { step: step_index });
                        let fallback = greedy
                            .iter()
                            .zip(group)
                            .map(|(g, spec)| {
                                let (rect, envelope, rotated) = spec.realize(g.x, g.y, g.z, g.dw);
                                PlacedModule {
                                    id: spec.id,
                                    rect,
                                    envelope,
                                    rotated,
                                }
                            })
                            .collect();
                        (
                            fallback,
                            StepOutcome::GreedyFallback,
                            0,
                            0,
                            0,
                            0,
                            (0, 0),
                            (0, 0, 0),
                        )
                    }
                };

            // Exactly one terminal event per augmentation step, after any
            // fallback marker.
            self.config.tracer.emit(
                Phase::Augment,
                Event::AugmentStep {
                    step: step_index,
                    group: take,
                    obstacles: obstacles.len(),
                    binaries,
                    nodes,
                    outcome: outcome.termination(),
                },
            );
            stats.steps.push(StepStats {
                kind: StepKind::Placement,
                group: group.iter().map(|s| s.id).collect(),
                obstacles: obstacles.len(),
                binaries,
                nodes,
                simplex_iterations: pivots,
                warm_nodes: warm,
                cold_nodes: cold,
                refactorizations: factor.0,
                eta_updates: factor.1,
                rows_tightened: strengthened.0,
                binaries_fixed: strengthened.1,
                cuts_added: strengthened.2,
                elapsed: step_started.elapsed(),
                outcome,
            });
            let before = placed.len();
            placed.extend(new_placements);
            for p in &placed[before..] {
                sky.add_rect(&p.envelope);
            }
            cursor += take;
            target = self.config.group_size.max(1);
        }

        stats.elapsed = started.elapsed();
        Ok(FloorplanResult {
            floorplan: Floorplan::new(chip_width, placed),
            stats,
        })
    }
}

/// Resolves the module ordering per the configured strategy.
pub(crate) fn resolve_order(
    netlist: &Netlist,
    config: &FloorplanConfig,
) -> Result<Vec<ModuleId>, FloorplanError> {
    if netlist.num_modules() == 0 {
        return Err(FloorplanError::EmptyNetlist);
    }
    let order = match &config.ordering {
        OrderingStrategy::Random(seed) => ordering::random_order(netlist, *seed),
        OrderingStrategy::Connectivity => ordering::linear_order(netlist),
        OrderingStrategy::Area => ordering::area_order(netlist),
        OrderingStrategy::Custom(order) => {
            let mut seen = vec![false; netlist.num_modules()];
            for &id in order {
                if id.index() >= seen.len() || seen[id.index()] {
                    return Err(FloorplanError::InvalidOrdering(format!(
                        "module {id} out of range or repeated"
                    )));
                }
                seen[id.index()] = true;
            }
            if !seen.iter().all(|&s| s) {
                return Err(FloorplanError::InvalidOrdering(
                    "ordering does not cover every module".to_string(),
                ));
            }
            order.clone()
        }
    };
    Ok(order)
}

/// Resolves the chip width: configured, or derived from total envelope area
/// and the target utilization; always at least the widest module.
pub(crate) fn resolve_chip_width(
    netlist: &Netlist,
    config: &FloorplanConfig,
) -> Result<f64, FloorplanError> {
    if netlist.num_modules() == 0 {
        return Err(FloorplanError::EmptyNetlist);
    }
    let specs: Vec<ShapeSpec> = netlist
        .modules()
        .map(|(id, m)| ShapeSpec::from_module(id, m, config))
        .collect();
    let widest = specs
        .iter()
        .map(ShapeSpec::min_env_width)
        .fold(0.0, f64::max);
    match config.chip_width {
        Some(w) => {
            if widest > w + 1e-9 {
                Err(widest_error(&specs, w, netlist))
            } else {
                Ok(w)
            }
        }
        None => {
            let total: f64 = specs
                .iter()
                .map(|s| s.env_width(false, 0.0) * s.env_height(false, 0.0))
                .sum();
            let util = config.target_utilization.clamp(0.05, 1.0);
            Ok((total / util).sqrt().ceil().max(widest.ceil()))
        }
    }
}

/// The chip width a run with this configuration would use: the configured
/// width, or one derived from total module area and the target utilization.
/// Exposed so alternative backends (annealer, analytical placer) can target
/// the same fixed outline the MILP pipeline solves for, making portfolio
/// costs directly comparable.
///
/// # Errors
///
/// [`FloorplanError::EmptyNetlist`] or [`FloorplanError::ModuleTooWide`]
/// exactly as [`Floorplanner::run`] would report them.
pub fn derive_chip_width(
    netlist: &Netlist,
    config: &FloorplanConfig,
) -> Result<f64, FloorplanError> {
    resolve_chip_width(netlist, config)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::Objective;
    use fp_milp::SolveOptions;
    use fp_netlist::generator::ProblemGenerator;
    use fp_netlist::Module;
    use std::time::Duration;

    /// Debug-build tests use a small solver budget; validity and structure
    /// assertions hold regardless of per-step optimality.
    fn fast() -> FloorplanConfig {
        FloorplanConfig::default().with_step_options(
            SolveOptions::default()
                .with_node_limit(600)
                .with_time_limit(Duration::from_millis(700)),
        )
    }

    #[test]
    fn small_run_is_valid_and_complete() {
        let nl = ProblemGenerator::new(8, 11).generate();
        let result = Floorplanner::with_config(&nl, fast()).run().unwrap();
        assert_eq!(result.floorplan.len(), 8);
        assert!(
            result.floorplan.is_valid(),
            "{:?}",
            result.floorplan.violations()
        );
        assert!(!result.stats.steps.is_empty());
    }

    #[test]
    fn binaries_stay_bounded() {
        let nl = ProblemGenerator::new(14, 5).generate();
        let cfg = fast();
        let result = Floorplanner::with_config(&nl, cfg.clone()).run().unwrap();
        assert!(
            result.stats.max_binaries() <= cfg.max_binaries,
            "step exceeded binary budget: {}",
            result.stats.max_binaries()
        );
    }

    #[test]
    fn utilization_beats_half() {
        let nl = ProblemGenerator::new(10, 2).generate();
        let result = Floorplanner::with_config(&nl, fast()).run().unwrap();
        let util = result.floorplan.utilization(&nl);
        assert!(util > 0.5, "utilization only {util}");
    }

    #[test]
    fn wirelength_objective_runs() {
        let nl = ProblemGenerator::new(8, 3).generate();
        let cfg = fast().with_objective(Objective::AreaPlusWirelength { lambda: 0.5 });
        let result = Floorplanner::with_config(&nl, cfg).run().unwrap();
        assert!(result.floorplan.is_valid());
    }

    #[test]
    fn custom_ordering_validation() {
        let nl = ProblemGenerator::new(4, 1).generate();
        let bad = FloorplanConfig::default()
            .with_ordering(OrderingStrategy::Custom(vec![ModuleId(0), ModuleId(0)]));
        assert!(matches!(
            Floorplanner::with_config(&nl, bad).run(),
            Err(FloorplanError::InvalidOrdering(_))
        ));
        let missing =
            FloorplanConfig::default().with_ordering(OrderingStrategy::Custom(vec![ModuleId(0)]));
        assert!(matches!(
            Floorplanner::with_config(&nl, missing).run(),
            Err(FloorplanError::InvalidOrdering(_))
        ));
    }

    #[test]
    fn pre_triggered_stop_cancels_run() {
        let nl = ProblemGenerator::new(8, 3).generate();
        let stop = fp_milp::StopFlag::new();
        stop.trigger();
        let cfg = fast().with_stop(stop);
        assert!(matches!(
            Floorplanner::with_config(&nl, cfg).run(),
            Err(FloorplanError::Cancelled(_))
        ));
    }

    #[test]
    fn unbeatable_incumbent_cancels_area_run() {
        use crate::portfolio::SharedIncumbent;
        use std::sync::Arc;
        let nl = ProblemGenerator::new(8, 3).generate();
        let inc = Arc::new(SharedIncumbent::new());
        // Nothing can be strictly below zero height: the very first step's
        // bound makes the MILP proven-infeasible and the run cancels.
        inc.publish(0.0, 0.0);
        let cfg = fast().with_incumbent(Some(inc.clone()));
        assert!(matches!(
            Floorplanner::with_config(&nl, cfg).run(),
            Err(FloorplanError::Cancelled(_))
        ));
        // With λ > 0 the incumbent must be ignored: the run completes.
        let cfg = fast()
            .with_incumbent(Some(inc))
            .with_objective(Objective::AreaPlusWirelength { lambda: 0.5 });
        let result = Floorplanner::with_config(&nl, cfg).run().unwrap();
        assert!(result.floorplan.is_valid());
    }

    #[test]
    fn beatable_incumbent_does_not_change_area_result() {
        use crate::portfolio::SharedIncumbent;
        use std::sync::Arc;
        let nl = ProblemGenerator::new(8, 5).generate();
        let baseline = Floorplanner::with_config(&nl, fast()).run().unwrap();
        let inc = Arc::new(SharedIncumbent::new());
        // A loose incumbent (well above what the run achieves) must not
        // change the outcome: pruning against it is inactive on the optimal
        // path.
        inc.publish(f64::MAX / 4.0, baseline.floorplan.chip_height() * 2.0);
        let cfg = fast().with_incumbent(Some(inc));
        let bounded = Floorplanner::with_config(&nl, cfg).run().unwrap();
        assert!(
            (bounded.floorplan.chip_height() - baseline.floorplan.chip_height()).abs() < 1e-9,
            "incumbent-bounded run changed the result: {} vs {}",
            bounded.floorplan.chip_height(),
            baseline.floorplan.chip_height()
        );
    }

    #[test]
    fn too_narrow_chip_rejected() {
        let mut nl = Netlist::new("t");
        nl.add_module(Module::rigid("wide", 30.0, 2.0, false))
            .unwrap();
        let cfg = FloorplanConfig::default().with_chip_width(10.0);
        assert!(matches!(
            Floorplanner::with_config(&nl, cfg).run(),
            Err(FloorplanError::ModuleTooWide { .. })
        ));
    }

    #[test]
    fn tight_limits_fall_back_to_greedy_but_complete() {
        let nl = ProblemGenerator::new(10, 7).generate();
        let cfg = FloorplanConfig::default().with_step_options(
            SolveOptions::default()
                .with_node_limit(1)
                .with_time_limit(Duration::from_millis(1)),
        );
        let result = Floorplanner::with_config(&nl, cfg).run().unwrap();
        assert_eq!(result.floorplan.len(), 10);
        assert!(result.floorplan.is_valid());
        // With a 1-node limit most steps must have been non-optimal.
        assert!(
            result.stats.greedy_fallbacks() > 0
                || result
                    .stats
                    .steps
                    .iter()
                    .any(|s| s.outcome == StepOutcome::Incumbent)
        );
    }

    #[test]
    fn run_deadline_bounds_total_time_across_steps() {
        // Per-step limit far above the run deadline, small groups so the
        // run takes many steps: without per-step re-budgeting each step
        // could legally burn the full 60 s and the run would overshoot the
        // deadline by a factor of the step count.
        let nl = ProblemGenerator::new(12, 21).generate();
        let cfg = FloorplanConfig::default()
            .with_group_sizes(2, 2)
            .with_step_options(SolveOptions::default().with_time_limit(Duration::from_secs(60)))
            .with_deadline(Some(Instant::now() + Duration::from_millis(50)));
        let started = Instant::now();
        let result = Floorplanner::with_config(&nl, cfg).run().unwrap();
        assert_eq!(result.floorplan.len(), 12);
        assert!(result.floorplan.is_valid());
        // Generous watchdog-style bound: model build + one polling
        // granularity per step, nowhere near even one 60 s step limit.
        assert!(
            started.elapsed() < Duration::from_secs(20),
            "deadline ignored across steps: run took {:?}",
            started.elapsed()
        );
    }

    #[test]
    fn exact_single_milp_matches_or_beats_augmentation() {
        // With seed size >= K the whole problem is one MILP (the paper's
        // §2.3 direct formulation); it can never be worse than the
        // suboptimal successive augmentation on the same width.
        let nl = ProblemGenerator::new(5, 44).generate();
        let width = resolve_chip_width(&nl, &FloorplanConfig::default()).unwrap();
        let exact_cfg = FloorplanConfig::default()
            .with_chip_width(width)
            .with_group_sizes(5, 5);
        let aug_cfg = FloorplanConfig::default()
            .with_chip_width(width)
            .with_group_sizes(2, 2)
            .with_step_options(SolveOptions::default().with_node_limit(2_000));
        let exact = Floorplanner::with_config(&nl, exact_cfg).run().unwrap();
        let aug = Floorplanner::with_config(&nl, aug_cfg).run().unwrap();
        assert_eq!(exact.stats.steps.len(), 1);
        assert!(
            exact.floorplan.chip_height() <= aug.floorplan.chip_height() + 1e-6,
            "exact {} vs augmented {}",
            exact.floorplan.chip_height(),
            aug.floorplan.chip_height()
        );
    }

    #[test]
    fn ablated_covering_reduction_still_completes() {
        let nl = ProblemGenerator::new(9, 15).generate();
        let cfg = fast().with_covering_reduction(false);
        let result = Floorplanner::with_config(&nl, cfg).run().unwrap();
        assert_eq!(result.floorplan.len(), 9);
        assert!(result.floorplan.is_valid());
        // Without the reduction, obstacle counts equal placed-module counts.
        let last = result.stats.steps.last().unwrap();
        let placed_before_last: usize = result
            .stats
            .steps
            .iter()
            .take(result.stats.steps.len() - 1)
            .map(|s| s.group.len())
            .sum();
        assert_eq!(last.obstacles, placed_before_last);
    }

    #[test]
    fn envelopes_produce_margined_floorplan() {
        let nl = ProblemGenerator::new(6, 9).generate();
        let cfg = fast().with_envelopes(true);
        let result = Floorplanner::with_config(&nl, cfg).run().unwrap();
        assert!(result.floorplan.is_valid());
        // Envelopes must be strictly larger than module rects somewhere.
        let grown = result
            .floorplan
            .iter()
            .any(|p| p.envelope.area() > p.rect.area() + 1e-9);
        assert!(grown);
    }

    #[test]
    fn derived_chip_width_fits_everything() {
        let nl = ProblemGenerator::new(9, 13).generate();
        let w = resolve_chip_width(&nl, &FloorplanConfig::default()).unwrap();
        let result = Floorplanner::with_config(&nl, fast()).run().unwrap();
        assert_eq!(result.floorplan.chip_width(), w);
        for p in result.floorplan.iter() {
            assert!(p.envelope.right() <= w + 1e-6);
        }
    }

    #[test]
    fn milp_beats_or_matches_greedy_baseline() {
        let nl = ProblemGenerator::new(9, 30).generate();
        let cfg = fast();
        let milp = Floorplanner::with_config(&nl, cfg.clone()).run().unwrap();
        let greedy = crate::greedy::bottom_left(&nl, &cfg).unwrap();
        // Not a theorem (partial floorplans diverge between the two flows),
        // but the MILP should never be meaningfully worse than bottom-left.
        assert!(
            milp.floorplan.chip_height() <= greedy.chip_height() * 1.1 + 1e-6,
            "MILP {} much worse than greedy {}",
            milp.floorplan.chip_height(),
            greedy.chip_height()
        );
    }
}
