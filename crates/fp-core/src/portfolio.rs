//! Shared incumbent state for portfolio races.
//!
//! When several backends (MILP augmentation, annealer, analytical placer)
//! race the same instance, each publishes every *full, legal* floorplan it
//! finishes into a [`SharedIncumbent`]. Other backends read it to prune:
//! the MILP driver injects the best height as a
//! [`SolveOptions::initial_upper_bound`](fp_milp::SolveOptions) and aborts
//! outright once its partial-floorplan floor cannot beat it.
//!
//! The cell keeps two independent min-registers — best *cost* (the race's
//! comparison metric, e.g. area + λ·wirelength) and best *height* (the pure
//! chip-height bound a fixed-width MILP step can prune against). Tracking
//! the minima independently is sound: each is a valid bound on its own
//! metric over the set of published floorplans, even if no single floorplan
//! attains both.

use std::sync::atomic::{AtomicU64, Ordering};

/// Lock-free cell holding the best cost and best height published by any
/// backend so far (both `f64::INFINITY` until a first publish).
///
/// ```
/// use fp_core::SharedIncumbent;
/// let inc = SharedIncumbent::new();
/// assert!(inc.best_cost().is_infinite());
/// inc.publish(120.0, 10.0);
/// inc.publish(150.0, 8.0); // worse cost, better height
/// assert_eq!(inc.best_cost(), 120.0);
/// assert_eq!(inc.best_height(), 8.0);
/// ```
#[derive(Debug)]
pub struct SharedIncumbent {
    cost_bits: AtomicU64,
    height_bits: AtomicU64,
}

impl SharedIncumbent {
    /// An empty incumbent: both registers start at `f64::INFINITY`.
    #[must_use]
    pub fn new() -> Self {
        SharedIncumbent {
            cost_bits: AtomicU64::new(f64::INFINITY.to_bits()),
            height_bits: AtomicU64::new(f64::INFINITY.to_bits()),
        }
    }

    /// Records a finished full legal floorplan: its race cost and its chip
    /// height. Each register only ever decreases. Non-finite values are
    /// ignored (they cannot tighten a min-register).
    pub fn publish(&self, cost: f64, height: f64) {
        store_min(&self.cost_bits, cost);
        store_min(&self.height_bits, height);
    }

    /// The best race cost published so far (`f64::INFINITY` if none).
    #[must_use]
    pub fn best_cost(&self) -> f64 {
        f64::from_bits(self.cost_bits.load(Ordering::Relaxed))
    }

    /// The best chip height published so far (`f64::INFINITY` if none).
    #[must_use]
    pub fn best_height(&self) -> f64 {
        f64::from_bits(self.height_bits.load(Ordering::Relaxed))
    }
}

impl Default for SharedIncumbent {
    fn default() -> Self {
        SharedIncumbent::new()
    }
}

/// Snapshot equality: two incumbents compare equal when their current
/// registers hold the same values (exists so containing configs can keep
/// deriving `PartialEq`).
impl PartialEq for SharedIncumbent {
    fn eq(&self, other: &Self) -> bool {
        self.cost_bits.load(Ordering::Relaxed) == other.cost_bits.load(Ordering::Relaxed)
            && self.height_bits.load(Ordering::Relaxed) == other.height_bits.load(Ordering::Relaxed)
    }
}

/// CAS-min on an `f64` stored as bits: only ever moves the value down.
fn store_min(slot: &AtomicU64, value: f64) {
    if !value.is_finite() {
        return;
    }
    let mut cur = slot.load(Ordering::Relaxed);
    loop {
        if value >= f64::from_bits(cur) {
            return;
        }
        match slot.compare_exchange_weak(cur, value.to_bits(), Ordering::Relaxed, Ordering::Relaxed)
        {
            Ok(_) => return,
            Err(seen) => cur = seen,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::Arc;

    #[test]
    fn starts_empty_and_tracks_minima_independently() {
        let inc = SharedIncumbent::new();
        assert!(inc.best_cost().is_infinite());
        assert!(inc.best_height().is_infinite());
        inc.publish(100.0, 12.0);
        inc.publish(90.0, 15.0); // better cost, worse height
        assert_eq!(inc.best_cost(), 90.0);
        assert_eq!(inc.best_height(), 12.0);
        inc.publish(f64::NAN, f64::INFINITY); // ignored
        assert_eq!(inc.best_cost(), 90.0);
        assert_eq!(inc.best_height(), 12.0);
    }

    #[test]
    fn concurrent_publishes_keep_the_minimum() {
        let inc = Arc::new(SharedIncumbent::new());
        std::thread::scope(|s| {
            for t in 0..4 {
                let inc = Arc::clone(&inc);
                s.spawn(move || {
                    for i in 0..1000 {
                        let v = (((t * 1000 + i) * 7919) % 5000) as f64 + 1.0;
                        inc.publish(v, v / 2.0);
                    }
                });
            }
        });
        // 7919 is coprime to 5000, so some k*7919 % 5000 == 0 -> min 1.0.
        assert_eq!(inc.best_cost(), 1.0);
        assert_eq!(inc.best_height(), 0.5);
    }

    #[test]
    fn snapshot_equality() {
        let a = SharedIncumbent::new();
        let b = SharedIncumbent::new();
        assert_eq!(a, b);
        a.publish(10.0, 5.0);
        assert_ne!(a, b);
        b.publish(10.0, 5.0);
        assert_eq!(a, b);
    }
}
