//! Building one augmentation-step MILP (paper formulations (2)–(8)).
//!
//! Each step places a small *group* of new modules against the fixed
//! *obstacles* (covering rectangles of the partial floorplan). Per pair of
//! rectangles whose relative position is free, two 0-1 variables
//! `(p, q) = (x_ij, y_ij)` select which of the four disjunctive non-overlap
//! constraints is active, exactly as in the paper's system (2):
//!
//! ```text
//! (p,q) = (0,0): i left of j    x_i + W_i ≤ x_j + W̄·(p + q)
//! (p,q) = (0,1): i right of j   x_j + W_j ≤ x_i + W̄·(1 + p − q)
//! (p,q) = (1,0): i below j      y_i + H_i ≤ y_j + H̄·(1 − p + q)
//! (p,q) = (1,1): i above j      y_j + H_j ≤ y_i + H̄·(2 − p − q)
//! ```
//!
//! Rotation (`z_i`, formulation (4)) and flexible shaping (`Δw_i`,
//! formulations (6)–(8)) enter through the linear envelope dimensions of
//! [`ShapeSpec`]. Two solver-hardening devices keep branch-and-bound fast
//! without changing the optimum:
//!
//! * the vertical big-M `H̄` and the `y_chip` upper bound are set to the
//!   *greedy feasible height*, so the LP relaxation is tight;
//! * geometrically impossible relations (e.g. "below" an obstacle resting
//!   on the chip floor) are cut off with 1-row binary cuts.

use crate::config::FloorplanConfig;
use crate::envelope::ShapeSpec;
use crate::placement::PlacedModule;
use fp_geom::Rect;
use fp_milp::{LinExpr, Model, Sense, Solution, Var};
use fp_netlist::Netlist;
use std::collections::HashMap;

/// Everything a step MILP needs to know.
pub(crate) struct StepInput<'a> {
    pub netlist: &'a Netlist,
    pub config: &'a FloorplanConfig,
    pub chip_width: f64,
    /// Covering rectangles of the already-placed floorplan.
    pub obstacles: &'a [Rect],
    /// The already-placed modules (for wirelength terms / critical nets).
    pub placed: &'a [PlacedModule],
    /// The new modules to place in this step.
    pub group: &'a [ShapeSpec],
    /// A feasible chip height (greedy witness): `y_chip` upper bound & H̄.
    pub h_ub: f64,
    /// Highest obstacle top: `y_chip` lower bound.
    pub floor: f64,
    /// Add a small `Σ y_i` term to the objective so modules pack low even
    /// when the chip height is pinned by fixed obstacles — used by the
    /// improvement pass, where the freed slack is harvested by the
    /// subsequent compaction LP.
    pub pull_down: bool,
}

/// Decision variables of one new module.
#[derive(Debug, Clone, Copy)]
struct ModVars {
    x: Var,
    y: Var,
    z: Option<Var>,
    dw: Option<Var>,
}

/// A built step model plus the handles needed to read the solution back.
pub(crate) struct StepModel {
    pub model: Model,
    vars: Vec<ModVars>,
    #[allow(dead_code)]
    ychip: Var,
}

/// Number of 0-1 variables a step with `group_size` new modules,
/// `obstacles` fixed rectangles and `rotatable` rotation candidates will
/// need — used by the driver to keep steps within
/// [`FloorplanConfig::max_binaries`] ("number of variables close to a
/// constant", §1).
#[must_use]
pub(crate) fn estimate_binaries(group_size: usize, obstacles: usize, rotatable: usize) -> usize {
    group_size * group_size.saturating_sub(1) // 2 per unordered new-new pair
        + 2 * group_size * obstacles
        + rotatable
}

impl StepModel {
    /// Builds the MILP for one augmentation step.
    pub(crate) fn build(input: &StepInput<'_>) -> StepModel {
        let mut model = Model::new(Sense::Minimize);
        let w_chip = input.chip_width;
        let w_bar = w_chip;
        let h_bar = height_bound(input);

        let max_area = input.group.iter().map(|s| s.area).fold(1.0_f64, f64::max);

        // --- variables --------------------------------------------------
        let ychip = model.add_continuous("y_chip", input.floor, h_bar);
        let vars: Vec<ModVars> = input
            .group
            .iter()
            .map(|spec| {
                let name = input.netlist.module(spec.id).name().to_string();
                let x_ub = (w_chip - spec.min_env_width()).max(0.0);
                let y_ub = (h_bar - spec.min_env_height()).max(0.0);
                let x = model.add_continuous(format!("x_{name}"), 0.0, x_ub);
                let y = model.add_continuous(format!("y_{name}"), 0.0, y_ub);
                let z = spec.has_z.then(|| {
                    let z = model.add_binary(format!("z_{name}"));
                    model.set_branch_priority(z, (spec.area / max_area * 20.0) as i32 - 60);
                    z
                });
                let dw = spec
                    .has_dw
                    .then(|| model.add_continuous(format!("dw_{name}"), 0.0, spec.dw_max));
                ModVars { x, y, z, dw }
            })
            .collect();

        // --- chip bounds (formulations (3)/(5)) --------------------------
        for (spec, mv) in input.group.iter().zip(&vars) {
            // x + We(z, dw) <= W
            let mut row = LinExpr::from(mv.x);
            add_env_width(&mut row, spec, mv, 1.0);
            model.add_le(row, w_chip);
            // y + He(z, dw) <= y_chip
            let mut row = LinExpr::from(mv.y);
            add_env_height(&mut row, spec, mv, 1.0);
            row -= LinExpr::from(ychip);
            model.add_le(row, 0.0);
        }

        // --- non-overlap: new vs new (system (2)) ------------------------
        for i in 0..input.group.len() {
            for j in i + 1..input.group.len() {
                let (si, sj) = (&input.group[i], &input.group[j]);
                let (vi, vj) = (vars[i], vars[j]);
                let prio = ((si.area + sj.area) / (2.0 * max_area) * 100.0) as i32;
                let p = model.add_binary(format!("p_{i}_{j}"));
                let q = model.add_binary(format!("q_{i}_{j}"));
                model.set_branch_priority(p, prio);
                model.set_branch_priority(q, prio);

                // Geometric impossibility cuts.
                let horizontal_ok = si.min_env_width() + sj.min_env_width() <= w_chip + 1e-9;
                let vertical_ok = si.min_env_height() + sj.min_env_height() <= h_bar + 1e-9;
                forbid_impossible(
                    &mut model,
                    p,
                    q,
                    [horizontal_ok, horizontal_ok, vertical_ok, vertical_ok],
                );

                // (0,0): i left of j.
                let mut r = LinExpr::from(vi.x);
                add_env_width(&mut r, si, &vi, 1.0);
                r -= LinExpr::from(vj.x);
                r.add_term(p, -w_bar);
                r.add_term(q, -w_bar);
                model.add_le(r, 0.0);
                // (0,1): i right of j.
                let mut r = LinExpr::from(vj.x);
                add_env_width(&mut r, sj, &vj, 1.0);
                r -= LinExpr::from(vi.x);
                r.add_term(p, -w_bar);
                r.add_term(q, w_bar);
                model.add_le(r, w_bar);
                // (1,0): i below j.
                let mut r = LinExpr::from(vi.y);
                add_env_height(&mut r, si, &vi, 1.0);
                r -= LinExpr::from(vj.y);
                r.add_term(p, h_bar);
                r.add_term(q, -h_bar);
                model.add_le(r, h_bar);
                // (1,1): i above j.
                let mut r = LinExpr::from(vj.y);
                add_env_height(&mut r, sj, &vj, 1.0);
                r -= LinExpr::from(vi.y);
                r.add_term(p, h_bar);
                r.add_term(q, h_bar);
                model.add_le(r, 2.0 * h_bar);
            }
        }

        // --- non-overlap: new vs fixed obstacle --------------------------
        for (i, (spec, mv)) in input.group.iter().zip(&vars).enumerate() {
            for (f, obs) in input.obstacles.iter().enumerate() {
                let p = model.add_binary(format!("p_{i}_f{f}"));
                let q = model.add_binary(format!("q_{i}_f{f}"));
                let prio = (spec.area / max_area * 100.0) as i32 + 10;
                model.set_branch_priority(p, prio);
                model.set_branch_priority(q, prio);

                let left_ok = obs.x >= spec.min_env_width() - 1e-9;
                let right_ok = obs.right() + spec.min_env_width() <= w_chip + 1e-9;
                let below_ok = obs.y >= spec.min_env_height() - 1e-9;
                let above_ok = obs.top() + spec.min_env_height() <= h_bar + 1e-9;
                forbid_impossible(&mut model, p, q, [left_ok, right_ok, below_ok, above_ok]);

                // (0,0): i left of obstacle.
                let mut r = LinExpr::from(mv.x);
                add_env_width(&mut r, spec, mv, 1.0);
                r.add_term(p, -w_bar);
                r.add_term(q, -w_bar);
                model.add_le(r, obs.x);
                // (0,1): i right of obstacle.
                let mut r = LinExpr::new();
                r.add_term(mv.x, -1.0);
                r.add_term(p, -w_bar);
                r.add_term(q, w_bar);
                model.add_le(r, w_bar - obs.right());
                // (1,0): i below obstacle.
                let mut r = LinExpr::from(mv.y);
                add_env_height(&mut r, spec, mv, 1.0);
                r.add_term(p, h_bar);
                r.add_term(q, -h_bar);
                model.add_le(r, obs.y + h_bar);
                // (1,1): i above obstacle.
                let mut r = LinExpr::new();
                r.add_term(mv.y, -1.0);
                r.add_term(p, h_bar);
                r.add_term(q, h_bar);
                model.add_le(r, 2.0 * h_bar - obs.top());
            }
        }

        // --- objective ---------------------------------------------------
        let lambda = input.config.objective.lambda();
        let mut objective = LinExpr::new();
        objective.add_term(ychip, w_chip); // chip area = W · height
        if input.pull_down {
            // Subordinate to the height term (coefficient 1 vs W), but
            // breaks ties toward low packing.
            for mv in &vars {
                objective.add_term(mv.y, 1.0);
            }
        }

        if lambda > 0.0 || input.config.enforce_critical_nets {
            let mut dist_cache: HashMap<(usize, DistTarget), (Var, Var)> = HashMap::new();

            // Wirelength between new modules.
            for i in 0..input.group.len() {
                for j in i + 1..input.group.len() {
                    let c = input
                        .netlist
                        .connectivity(input.group[i].id, input.group[j].id);
                    if c > 0.0 && lambda > 0.0 {
                        let (dx, dy) = dist_vars(
                            &mut model,
                            &mut dist_cache,
                            input,
                            &vars,
                            i,
                            DistTarget::Group(j),
                        );
                        objective.add_term(dx, lambda * c);
                        objective.add_term(dy, lambda * c);
                    }
                }
                // Wirelength to already-placed modules.
                for (k, placed) in input.placed.iter().enumerate() {
                    let c = input.netlist.connectivity(input.group[i].id, placed.id);
                    if c > 0.0 && lambda > 0.0 {
                        let (dx, dy) = dist_vars(
                            &mut model,
                            &mut dist_cache,
                            input,
                            &vars,
                            i,
                            DistTarget::Placed(k),
                        );
                        objective.add_term(dx, lambda * c);
                        objective.add_term(dy, lambda * c);
                    }
                }
            }

            // Critical-net maximum length constraints.
            if input.config.enforce_critical_nets {
                add_critical_net_rows(&mut model, &mut dist_cache, input, &vars);
            }
        }
        model.set_objective(objective);

        StepModel { model, vars, ychip }
    }

    /// Reads the solution back into placements.
    pub(crate) fn extract(&self, sol: &Solution, group: &[ShapeSpec]) -> Vec<PlacedModule> {
        group
            .iter()
            .zip(&self.vars)
            .map(|(spec, mv)| {
                let x = sol.value(mv.x).max(0.0);
                let y = sol.value(mv.y).max(0.0);
                let z = mv.z.is_some_and(|z| sol.rounded(z) == 1);
                let dw = mv
                    .dw
                    .map_or(0.0, |dw| sol.value(dw).clamp(0.0, spec.dw_max));
                let (rect, envelope, rotated) = spec.realize(x, y, z, dw);
                PlacedModule {
                    id: spec.id,
                    rect,
                    envelope,
                    rotated,
                }
            })
            .collect()
    }
}

/// The chip-height bound H̄ used for variable bounds and big-M rows. The
/// greedy height is a feasible bound for the plain problem, but
/// critical-net length constraints (which greedy ignores) can force a
/// taller chip — give the model headroom in that case.
fn height_bound(input: &StepInput<'_>) -> f64 {
    let h_slack = if input.config.enforce_critical_nets {
        1.5
    } else {
        1.0
    };
    (input.h_ub * h_slack).max(input.floor).max(1e-6)
}

/// Identifies the second endpoint of a cached distance pair.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
enum DistTarget {
    Group(usize),
    Placed(usize),
}

/// Adds `c · (expr terms of We)` to `row`: `c·(we0 + wez·z + wed·dw)`.
fn add_env_width(row: &mut LinExpr, spec: &ShapeSpec, mv: &ModVars, c: f64) {
    row.add_constant(c * spec.we0);
    if let Some(z) = mv.z {
        row.add_term(z, c * spec.wez);
    }
    if let Some(dw) = mv.dw {
        row.add_term(dw, c * spec.wed);
    }
}

/// Adds `c · He(z, dw)` to `row`.
fn add_env_height(row: &mut LinExpr, spec: &ShapeSpec, mv: &ModVars, c: f64) {
    row.add_constant(c * spec.he0);
    if let Some(z) = mv.z {
        row.add_term(z, c * spec.hez);
    }
    if let Some(dw) = mv.dw {
        row.add_term(dw, c * spec.hed);
    }
}

/// Center-x of a new module as a linear expression.
fn center_x(spec: &ShapeSpec, mv: &ModVars) -> LinExpr {
    let mut e = LinExpr::from(mv.x);
    add_env_width(&mut e, spec, mv, 0.5);
    e
}

/// Center-y of a new module as a linear expression.
fn center_y(spec: &ShapeSpec, mv: &ModVars) -> LinExpr {
    let mut e = LinExpr::from(mv.y);
    add_env_height(&mut e, spec, mv, 0.5);
    e
}

/// Cuts off impossible `(p,q)` relations. `possible` is indexed
/// `[left, right, below, above]` = `[(0,0), (0,1), (1,0), (1,1)]`.
fn forbid_impossible(model: &mut Model, p: Var, q: Var, possible: [bool; 4]) {
    if !possible[0] {
        // forbid (0,0): p + q >= 1
        model.add_ge(p + q, 1.0);
    }
    if !possible[1] {
        // forbid (0,1): p >= q
        model.add_ge(p - q, 0.0);
    }
    if !possible[2] {
        // forbid (1,0): q >= p
        model.add_ge(q - p, 0.0);
    }
    if !possible[3] {
        // forbid (1,1): p + q <= 1
        model.add_le(p + q, 1.0);
    }
}

/// Returns (creating on demand) the `|Δcx|, |Δcy|` auxiliary variables
/// between group module `i` and `target`.
fn dist_vars(
    model: &mut Model,
    cache: &mut HashMap<(usize, DistTarget), (Var, Var)>,
    input: &StepInput<'_>,
    vars: &[ModVars],
    i: usize,
    target: DistTarget,
) -> (Var, Var) {
    if let Some(&pair) = cache.get(&(i, target)) {
        return pair;
    }
    // Tighter H̄ handoff: each separation is bounded by its own axis
    // (|Δcx| ≤ W from the chip rows, |Δcy| ≤ H̄ from the height bound)
    // instead of the symmetric worst case, so the activity bounds the
    // solver's strengthening layer starts from are already per-axis tight.
    let dx = model.add_continuous(format!("dx_{i}_{target:?}"), 0.0, input.chip_width);
    let dy = model.add_continuous(format!("dy_{i}_{target:?}"), 0.0, height_bound(input));
    let (cxi, cyi) = (
        center_x(&input.group[i], &vars[i]),
        center_y(&input.group[i], &vars[i]),
    );
    let (cxj, cyj) = match target {
        DistTarget::Group(j) => (
            center_x(&input.group[j], &vars[j]),
            center_y(&input.group[j], &vars[j]),
        ),
        DistTarget::Placed(k) => {
            let c = input.placed[k].envelope.center();
            (LinExpr::constant(c.x), LinExpr::constant(c.y))
        }
    };
    // dx >= |cxi - cxj| via two rows; minimization pulls dx down to the max.
    model.add_le(cxi.clone() - cxj.clone() - dx, 0.0);
    model.add_le(cxj - cxi - dx, 0.0);
    model.add_le(cyi.clone() - cyj.clone() - dy, 0.0);
    model.add_le(cyj - cyi - dy, 0.0);
    cache.insert((i, target), (dx, dy));
    (dx, dy)
}

/// Adds `Σ (dx+dy) <= L` rows for critical nets whose endpoints are all
/// available (new or placed), pairwise.
fn add_critical_net_rows(
    model: &mut Model,
    cache: &mut HashMap<(usize, DistTarget), (Var, Var)>,
    input: &StepInput<'_>,
    vars: &[ModVars],
) {
    let group_index: HashMap<_, _> = input
        .group
        .iter()
        .enumerate()
        .map(|(i, s)| (s.id, i))
        .collect();
    let placed_index: HashMap<_, _> = input
        .placed
        .iter()
        .enumerate()
        .map(|(k, p)| (p.id, k))
        .collect();

    for (_, net) in input.netlist.nets() {
        let Some(limit) = net.max_length() else {
            continue;
        };
        let members = net.modules();
        for (a_pos, &a) in members.iter().enumerate() {
            for &b in &members[a_pos + 1..] {
                // Need at least one new endpoint; the other new or placed.
                let (i, target) = match (group_index.get(&a), group_index.get(&b)) {
                    (Some(&ia), Some(&ib)) => (ia, DistTarget::Group(ib)),
                    (Some(&ia), None) => match placed_index.get(&b) {
                        Some(&k) => (ia, DistTarget::Placed(k)),
                        None => continue,
                    },
                    (None, Some(&ib)) => match placed_index.get(&a) {
                        Some(&k) => (ib, DistTarget::Placed(k)),
                        None => continue,
                    },
                    (None, None) => continue,
                };
                let (dx, dy) = dist_vars(model, cache, input, vars, i, target);
                model.add_le(dx + dy, limit);
            }
        }
    }
}

impl ShapeSpec {
    /// Smallest envelope height over all orientations and shapes.
    pub(crate) fn min_env_height(&self) -> f64 {
        let mut h = self.env_height(false, 0.0);
        if self.has_z {
            h = h.min(self.env_height(true, 0.0));
        }
        // hed >= 0 for soft modules (height grows as width shrinks), so the
        // minimum over dw is at dw = 0 — already covered.
        h
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::Objective;
    use fp_milp::SolveOptions;
    use fp_netlist::{Module, ModuleId, Net};

    fn netlist_of(mods: &[(&str, f64, f64, bool)]) -> Netlist {
        let mut nl = Netlist::new("t");
        for &(name, w, h, rot) in mods {
            nl.add_module(Module::rigid(name, w, h, rot)).unwrap();
        }
        nl
    }

    fn specs_for(nl: &Netlist, cfg: &FloorplanConfig) -> Vec<ShapeSpec> {
        nl.modules()
            .map(|(id, m)| ShapeSpec::from_module(id, m, cfg))
            .collect()
    }

    fn solve_step(input: &StepInput<'_>) -> (StepModel, Solution) {
        let sm = StepModel::build(input);
        let sol = sm.model.solve_with(&SolveOptions::default()).unwrap();
        (sm, sol)
    }

    #[test]
    fn two_rigid_modules_pack_perfectly() {
        // Two 4x2 modules on an 8-wide chip: optimal height 2 (side by side).
        let nl = netlist_of(&[("a", 4.0, 2.0, false), ("b", 4.0, 2.0, false)]);
        let cfg = FloorplanConfig::default();
        let group = specs_for(&nl, &cfg);
        let input = StepInput {
            netlist: &nl,
            config: &cfg,
            chip_width: 8.0,
            obstacles: &[],
            placed: &[],
            group: &group,
            h_ub: 4.0, // greedy would stack: height 4
            floor: 0.0,
            pull_down: false,
        };
        let (sm, sol) = solve_step(&input);
        let placed = sm.extract(&sol, &group);
        assert_eq!(placed.len(), 2);
        let top = placed.iter().map(|p| p.rect.top()).fold(0.0, f64::max);
        assert!((top - 2.0).abs() < 1e-5, "expected height 2, got {top}");
        assert!(!placed[0].rect.overlaps(&placed[1].rect));
    }

    #[test]
    fn rotation_reduces_height() {
        // One 6x2 module on a 2-wide chip: must rotate; plus a 2x2 beside.
        let nl = netlist_of(&[("tall", 6.0, 2.0, true), ("sq", 2.0, 2.0, false)]);
        let cfg = FloorplanConfig::default();
        let group = specs_for(&nl, &cfg);
        let input = StepInput {
            netlist: &nl,
            config: &cfg,
            chip_width: 4.0,
            obstacles: &[],
            placed: &[],
            group: &group,
            h_ub: 8.0,
            floor: 0.0,
            pull_down: false,
        };
        let (sm, sol) = solve_step(&input);
        let placed = sm.extract(&sol, &group);
        // Optimal: rotate tall to 2x6, put 2x2 beside it: height 6.
        let top = placed.iter().map(|p| p.rect.top()).fold(0.0, f64::max);
        assert!((top - 6.0).abs() < 1e-5, "got height {top}");
        assert!(placed[0].rotated);
    }

    #[test]
    fn obstacles_are_respected() {
        // Chip 8 wide; obstacle occupies (0,0)-(8,3); one 4x2 new module
        // must land at y = 3.
        let nl = netlist_of(&[("m", 4.0, 2.0, false)]);
        let cfg = FloorplanConfig::default();
        let group = specs_for(&nl, &cfg);
        let obstacles = vec![Rect::new(0.0, 0.0, 8.0, 3.0)];
        let input = StepInput {
            netlist: &nl,
            config: &cfg,
            chip_width: 8.0,
            obstacles: &obstacles,
            placed: &[],
            group: &group,
            h_ub: 5.0,
            floor: 3.0,
            pull_down: false,
        };
        let (sm, sol) = solve_step(&input);
        let placed = sm.extract(&sol, &group);
        assert!(placed[0].rect.y >= 3.0 - 1e-6);
        assert!((sol.objective() / 8.0 - 5.0).abs() < 1e-5); // chip height 5
    }

    #[test]
    fn partial_width_obstacle_allows_side_placement() {
        // Obstacle (0,0)-(4,4) on an 8-wide chip; a 4x2 module fits beside
        // it at (4, 0): optimal height stays 4.
        let nl = netlist_of(&[("m", 4.0, 2.0, false)]);
        let cfg = FloorplanConfig::default();
        let group = specs_for(&nl, &cfg);
        let obstacles = vec![Rect::new(0.0, 0.0, 4.0, 4.0)];
        let input = StepInput {
            netlist: &nl,
            config: &cfg,
            chip_width: 8.0,
            obstacles: &obstacles,
            placed: &[],
            group: &group,
            h_ub: 6.0,
            floor: 4.0,
            pull_down: false,
        };
        let (sm, sol) = solve_step(&input);
        let placed = sm.extract(&sol, &group);
        assert!(placed[0].rect.x >= 4.0 - 1e-6, "{placed:?}");
        assert!((sol.objective() / 8.0 - 4.0).abs() < 1e-5);
    }

    #[test]
    fn wirelength_pulls_connected_modules_together() {
        // Three modules in a row of width 12; a & c connected. Pure area
        // admits any permutation (height 2); wirelength must put a next to c.
        let mut nl = netlist_of(&[
            ("a", 4.0, 2.0, false),
            ("b", 4.0, 2.0, false),
            ("c", 4.0, 2.0, false),
        ]);
        nl.add_net(Net::new("ac", [ModuleId(0), ModuleId(2)]))
            .unwrap();
        let cfg = FloorplanConfig::default()
            .with_objective(Objective::AreaPlusWirelength { lambda: 1.0 });
        let group = specs_for(&nl, &cfg);
        let input = StepInput {
            netlist: &nl,
            config: &cfg,
            chip_width: 12.0,
            obstacles: &[],
            placed: &[],
            group: &group,
            h_ub: 6.0,
            floor: 0.0,
            pull_down: false,
        };
        let (sm, sol) = solve_step(&input);
        let placed = sm.extract(&sol, &group);
        let ca = placed[0].rect.center();
        let cc = placed[2].rect.center();
        assert!(
            ca.manhattan(&cc) <= 4.0 + 1e-5,
            "connected modules not adjacent: {}",
            ca.manhattan(&cc)
        );
    }

    #[test]
    fn soft_module_shapes_to_fill() {
        // A rigid 4x4 and a soft area-8 module (aspect 0.5..2) on a 6-wide
        // chip. Soft can become 2x4 and sit beside the rigid: height 4.
        let mut nl = Netlist::new("t");
        nl.add_module(Module::rigid("r", 4.0, 4.0, false)).unwrap();
        nl.add_module(Module::flexible("s", 8.0, 0.5, 2.0)).unwrap();
        let cfg = FloorplanConfig::default();
        let group = specs_for(&nl, &cfg);
        let input = StepInput {
            netlist: &nl,
            config: &cfg,
            chip_width: 6.0,
            obstacles: &[],
            placed: &[],
            group: &group,
            h_ub: 8.0,
            floor: 0.0,
            pull_down: false,
        };
        let (sm, sol) = solve_step(&input);
        let placed = sm.extract(&sol, &group);
        let top = placed.iter().map(|p| p.envelope.top()).fold(0.0, f64::max);
        // Secant over-reserves slightly; optimal is between 4 and 5.4.
        assert!(top <= 5.5 + 1e-6, "height {top}");
        assert!(!placed[0].envelope.overlaps(&placed[1].envelope));
        // Soft module keeps its true area.
        assert!((placed[1].rect.area() - 8.0).abs() < 1e-6);
    }

    #[test]
    fn critical_net_constraint_enforced() {
        // Two modules forced apart by an obstacle wall would violate a tight
        // max length; without the wall the MILP must keep them within L.
        let mut nl = netlist_of(&[("a", 2.0, 2.0, false), ("b", 2.0, 2.0, false)]);
        nl.add_net(
            Net::new("crit", [ModuleId(0), ModuleId(1)])
                .with_criticality(1.0)
                .with_max_length(3.0),
        )
        .unwrap();
        let cfg = FloorplanConfig::default().with_critical_nets(true);
        let group = specs_for(&nl, &cfg);
        let input = StepInput {
            netlist: &nl,
            config: &cfg,
            chip_width: 12.0,
            obstacles: &[],
            placed: &[],
            group: &group,
            h_ub: 4.0,
            floor: 0.0,
            pull_down: false,
        };
        let (sm, sol) = solve_step(&input);
        let placed = sm.extract(&sol, &group);
        let d = placed[0].rect.center().manhattan(&placed[1].rect.center());
        assert!(d <= 3.0 + 1e-5, "critical net length {d} > 3");
    }

    #[test]
    fn impossible_relations_are_cut() {
        // A full-width obstacle on the floor: "i left/right/below" are all
        // geometrically impossible, so the cuts force (p,q) = (1,1) = above
        // with almost no branching.
        let nl = netlist_of(&[("m", 6.0, 2.0, false)]);
        let cfg = FloorplanConfig::default();
        let group = specs_for(&nl, &cfg);
        let obstacles = vec![Rect::new(0.0, 0.0, 8.0, 3.0)];
        let input = StepInput {
            netlist: &nl,
            config: &cfg,
            chip_width: 8.0,
            obstacles: &obstacles,
            placed: &[],
            group: &group,
            h_ub: 5.0,
            floor: 3.0,
            pull_down: false,
        };
        let sm = StepModel::build(&input);
        // Serial solver: the node-count bound below assumes the
        // deterministic dive-first DFS order.
        let opts = fp_milp::SolveOptions::default().with_threads(1);
        let sol = sm.model.solve_with(&opts).unwrap();
        let p = sm.model.var_by_name("p_0_f0").unwrap();
        let q = sm.model.var_by_name("q_0_f0").unwrap();
        assert_eq!(sol.rounded(p), 1);
        assert_eq!(sol.rounded(q), 1);
        assert!(sol.stats().nodes <= 8, "nodes {}", sol.stats().nodes);
    }

    #[test]
    fn binary_estimate_formula() {
        // 3 new modules, 4 obstacles, 2 rotatable:
        // pairs: 3 choose 2 = 3 -> 6 binaries; vs obstacles: 3*4*2 = 24; +2.
        assert_eq!(estimate_binaries(3, 4, 2), 32);
        assert_eq!(estimate_binaries(1, 0, 0), 0);
    }

    #[test]
    fn paper_variable_counts_without_reduction() {
        // §2.3: K modules all pairwise free => K(K-1) integer variables and
        // 2K continuous position variables (rotation/obstacles/aux aside).
        let nl = netlist_of(&[
            ("a", 2.0, 2.0, false),
            ("b", 2.0, 2.0, false),
            ("c", 2.0, 2.0, false),
            ("d", 2.0, 2.0, false),
            ("e", 2.0, 2.0, false),
        ]);
        let cfg = FloorplanConfig::default().with_rotation(false);
        let group = specs_for(&nl, &cfg);
        let input = StepInput {
            netlist: &nl,
            config: &cfg,
            chip_width: 10.0,
            obstacles: &[],
            placed: &[],
            group: &group,
            h_ub: 10.0,
            floor: 0.0,
            pull_down: false,
        };
        let sm = StepModel::build(&input);
        let k = 5;
        assert_eq!(sm.model.num_integer_vars(), k * (k - 1));
        // 2K positions + y_chip.
        assert_eq!(sm.model.num_vars() - sm.model.num_integer_vars(), 2 * k + 1);
    }

    /// The strengthen_equivalence pin for the real pipeline: the first
    /// ami33 augmentation steps solve to the same proven objective with
    /// root strengthening on and off. Each step's inputs are advanced with
    /// the strengthen-on extraction so both solves always see one model.
    #[test]
    fn ami33_steps_objectives_match_strengthen_on_off() {
        use crate::greedy::greedy_height;
        let nl = fp_netlist::ami33();
        let cfg = FloorplanConfig::default();
        let order = crate::augment::resolve_order(&nl, &cfg).unwrap();
        let chip_width = crate::augment::resolve_chip_width(&nl, &cfg).unwrap();
        let specs: Vec<ShapeSpec> = order
            .iter()
            .map(|&id| ShapeSpec::from_module(id, nl.module(id), &cfg))
            .collect();

        let on_opts = fp_milp::SolveOptions::default().with_threads(1);
        let off_opts = on_opts.clone().with_strengthen(false);
        let mut placed: Vec<PlacedModule> = Vec::new();
        let mut envelopes: Vec<Rect> = Vec::new();
        let mut cursor = 0usize;
        let mut steps = 0usize;
        while cursor < specs.len() && steps < 3 {
            let take = cfg.group_size.min(specs.len() - cursor);
            let group = &specs[cursor..cursor + take];
            let (_, h_ub) = greedy_height(&envelopes, group, chip_width).unwrap();
            let floor = envelopes.iter().map(Rect::top).fold(0.0, f64::max);
            let input = StepInput {
                netlist: &nl,
                config: &cfg,
                chip_width,
                obstacles: &envelopes,
                placed: &placed,
                group,
                h_ub,
                floor,
                pull_down: false,
            };
            let sm = StepModel::build(&input);
            let on = sm.model.solve_with(&on_opts).unwrap();
            let off = sm.model.solve_with(&off_opts).unwrap();
            assert_eq!(
                on.optimality(),
                fp_milp::Optimality::Proven,
                "on, step {steps}"
            );
            assert_eq!(
                off.optimality(),
                fp_milp::Optimality::Proven,
                "off, step {steps}"
            );
            assert!(
                (on.objective() - off.objective()).abs() <= 1e-6 * (1.0 + on.objective().abs()),
                "step {steps}: strengthened {} != plain {}",
                on.objective(),
                off.objective()
            );
            let new = sm.extract(&on, group);
            envelopes.extend(new.iter().map(|p| p.envelope));
            placed.extend(new);
            cursor += take;
            steps += 1;
        }
        assert!(steps >= 2, "expected at least two ami33 steps");
    }
}
