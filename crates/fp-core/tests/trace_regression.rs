//! Trace-driven regression pins (satellite of the fp-obs PR): at the
//! default configuration the MILP never degrades to the greedy fallback,
//! and the per-step binary count stays under the configured cap — the
//! paper's "number of variables close to a constant" claim, §3.1.
//!
//! Both properties are asserted twice over: from the run's own `RunStats`
//! and from the collected event stream, so a regression in either the
//! pipeline or its instrumentation fails the suite.

use fp_core::{FloorplanConfig, Floorplanner};
use fp_netlist::{ami33, generator::ProblemGenerator, Netlist};
use fp_obs::{Collector, Event, EventKind, Tracer};

/// Runs the floorplanner and asserts the no-fallback / bounded-binaries
/// pins on both stats and trace.
fn assert_no_fallback_and_bounded(netlist: &Netlist, config: FloorplanConfig, label: &str) {
    let collector = Collector::new();
    let config = config.with_tracer(Tracer::new(collector.clone()));
    let cap = config.max_binaries;
    let result = Floorplanner::with_config(netlist, config).run().unwrap();
    assert!(result.floorplan.is_valid(), "{label}: invalid floorplan");
    assert_eq!(
        result.floorplan.len(),
        netlist.num_modules(),
        "{label}: modules lost"
    );

    // No step fell back to greedy — by stats and by trace.
    assert_eq!(
        result.stats.greedy_fallbacks(),
        0,
        "{label}: fallback steps"
    );
    assert_eq!(
        collector.count_of(EventKind::GreedyFallback),
        0,
        "{label}: GreedyFallback events at default config"
    );

    // The paper keeps per-step 0-1 variables "close to a constant": every
    // step obeys the configured cap — by stats and by trace.
    assert!(
        result.stats.max_binaries() <= cap,
        "{label}: max step binaries {} exceeds cap {cap}",
        result.stats.max_binaries()
    );
    let trace_max = collector
        .of_kind(EventKind::AugmentStep)
        .iter()
        .map(|r| match r.event {
            Event::AugmentStep { binaries, .. } => binaries,
            _ => unreachable!(),
        })
        .max()
        .unwrap_or(0);
    assert_eq!(
        trace_max,
        result.stats.max_binaries(),
        "{label}: trace and stats disagree on max binaries"
    );

    // Warm-start coverage: every non-root branch-and-bound node inherits
    // its parent's basis, so at default config the dual-simplex warm path
    // must carry the large majority of non-root solves. A regression to
    // all-cold (e.g. the fallback tripping on every node) is a perf bug
    // the equivalence suites cannot see.
    let (mut non_root, mut warm_non_root) = (0usize, 0usize);
    for r in collector.of_kind(EventKind::BnbNode) {
        if let Event::BnbNode { depth, warm, .. } = r.event {
            if depth > 0 {
                non_root += 1;
                warm_non_root += usize::from(warm);
            }
        }
    }
    if non_root >= 20 {
        assert!(
            warm_non_root * 10 >= non_root * 7,
            "{label}: only {warm_non_root}/{non_root} non-root nodes solved warm"
        );
    }
}

#[test]
fn generated_instances_never_fall_back_at_default_config() {
    for seed in [7, 19, 42] {
        let netlist = ProblemGenerator::new(12, seed).generate();
        assert_no_fallback_and_bounded(
            &netlist,
            FloorplanConfig::default(),
            &format!("generated(12, seed {seed})"),
        );
    }
}

#[test]
fn ami33_never_falls_back_at_default_config() {
    // The default step budget includes a 10 s wall clock, so this pin only
    // holds if the solver runs near release speed even under `cargo test`;
    // the workspace Cargo.toml sets `[profile.dev.package.fp-milp]
    // opt-level = 2` for exactly that reason. (scripts/check.sh additionally
    // asserts the release CLI at stock budgets reports "0 greedy fallback"
    // on ami33 end-to-end.)
    assert_no_fallback_and_bounded(&ami33(), FloorplanConfig::default(), "ami33");
}
