//! Property tests over the floorplanner: every configuration on every
//! generated problem yields a complete, valid, within-chip placement.

use fp_core::{
    bottom_left, improve, optimize_topology, FloorplanConfig, Floorplanner, Objective,
    OrderingStrategy, SoftShapeModel,
};
use fp_geom::union_area;
use fp_milp::SolveOptions;
use fp_netlist::generator::ProblemGenerator;
use proptest::prelude::*;
use std::time::Duration;

fn tight() -> SolveOptions {
    SolveOptions::default()
        .with_node_limit(200)
        .with_time_limit(Duration::from_millis(250))
}

fn any_config() -> impl Strategy<Value = FloorplanConfig> {
    (
        prop_oneof![
            Just(OrderingStrategy::Connectivity),
            Just(OrderingStrategy::Area),
            (0u64..100).prop_map(OrderingStrategy::Random),
        ],
        prop_oneof![
            Just(Objective::Area),
            (0.1f64..2.0).prop_map(|lambda| Objective::AreaPlusWirelength { lambda }),
        ],
        any::<bool>(), // rotation
        any::<bool>(), // envelopes
        prop_oneof![Just(SoftShapeModel::Secant), Just(SoftShapeModel::Taylor)],
        1usize..5, // group size
    )
        .prop_map(|(ordering, objective, rotation, envelopes, soft, group)| {
            FloorplanConfig::default()
                .with_ordering(ordering)
                .with_objective(objective)
                .with_rotation(rotation)
                .with_envelopes(envelopes)
                .with_soft_model(soft)
                .with_group_sizes(group + 1, group)
                .with_step_options(tight())
        })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// Any configuration, any problem: complete and valid.
    #[test]
    fn floorplans_are_always_valid(
        cfg in any_config(),
        n in 3usize..9,
        seed in 0u64..1000,
        flex in 0.0f64..0.6,
    ) {
        let netlist = ProblemGenerator::new(n, seed)
            .with_flexible_fraction(flex)
            .generate();
        let result = Floorplanner::with_config(&netlist, cfg).run().unwrap();
        let fp = &result.floorplan;
        prop_assert_eq!(fp.len(), n);
        prop_assert!(fp.is_valid(), "{:?}", fp.violations());
        // Envelopes never overlap => union area equals the sum of areas.
        let envs = fp.envelope_rects();
        let total: f64 = envs.iter().map(|r| r.area()).sum();
        prop_assert!((union_area(&envs) - total).abs() < 1e-6 * (1.0 + total));
    }

    /// The adjustment pipeline (improve = top re-opt + compaction) is
    /// monotone in chip height and preserves validity and module count.
    #[test]
    fn improvement_is_monotone(n in 4usize..9, seed in 0u64..500) {
        let netlist = ProblemGenerator::new(n, seed).generate();
        let cfg = FloorplanConfig::default().with_step_options(tight());
        let base = bottom_left(&netlist, &cfg).unwrap();
        let better = improve(&base, &netlist, &cfg, 2).unwrap();
        prop_assert!(better.chip_height() <= base.chip_height() + 1e-9);
        prop_assert!(better.is_valid());
        prop_assert_eq!(better.len(), base.len());
    }

    /// Compaction (§2.5) of a greedy plan never grows the chip and keeps
    /// module areas intact (soft modules keep S exactly under Secant).
    #[test]
    fn compaction_preserves_areas(n in 3usize..9, seed in 0u64..500, flex in 0.0f64..0.6) {
        let netlist = ProblemGenerator::new(n, seed)
            .with_flexible_fraction(flex)
            .generate();
        let cfg = FloorplanConfig::default();
        let base = bottom_left(&netlist, &cfg).unwrap();
        let compact = optimize_topology(&base, &netlist, &cfg).unwrap();
        prop_assert!(compact.chip_height() <= base.chip_height() + 1e-9);
        for placed in compact.iter() {
            let module = netlist.module(placed.id);
            prop_assert!((placed.rect.area() - module.area()).abs() < 1e-6,
                "area of {} drifted: {} vs {}", module.name(), placed.rect.area(), module.area());
        }
    }

    /// Rigid modules keep their exact dimensions (possibly swapped).
    #[test]
    fn rigid_dims_preserved(n in 3usize..8, seed in 0u64..500) {
        let netlist = ProblemGenerator::new(n, seed).generate();
        let cfg = FloorplanConfig::default().with_step_options(tight());
        let result = Floorplanner::with_config(&netlist, cfg).run().unwrap();
        for placed in result.floorplan.iter() {
            let module = netlist.module(placed.id);
            let fp_netlist::Shape::Rigid { w, h } = *module.shape() else {
                continue; // generator emits rigid-only at flex fraction 0
            };
            let got = (placed.rect.w, placed.rect.h);
            let expect = if placed.rotated { (h, w) } else { (w, h) };
            prop_assert!((got.0 - expect.0).abs() < 1e-6 && (got.1 - expect.1).abs() < 1e-6,
                "dims {:?}, expected {:?} (rotated={})", got, expect, placed.rotated);
        }
    }
}
