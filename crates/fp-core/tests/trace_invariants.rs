//! Trace invariants (the fp-obs tentpole): the structured event stream a
//! run emits must agree with the statistics the pipeline itself reports —
//! at every thread count — and a disabled tracer must emit nothing while
//! changing nothing.
//!
//! Budgets are generous on purpose: every step MILP returns `Ok`, so the
//! trace's node accounting and `RunStats` describe the same solves with no
//! error-path slack.

use fp_core::{
    bottom_left, improve_traced, FloorplanConfig, Floorplanner, RunStats, StepKind, StepOutcome,
};
use fp_netlist::generator::ProblemGenerator;
use fp_obs::{Collector, Event, EventKind, Phase, Record, StepTermination, Tracer};

/// A collector-backed config over a seeded problem. Budgets stay at the
/// generous defaults so no step errors out.
fn traced_config() -> (FloorplanConfig, Collector) {
    let collector = Collector::new();
    let config = FloorplanConfig::default().with_tracer(Tracer::new(collector.clone()));
    (config, collector)
}

fn incumbents_of(records: &[Record]) -> Vec<f64> {
    records
        .iter()
        .filter_map(|r| match r.event {
            Event::Incumbent { objective } => Some(objective),
            _ => None,
        })
        .collect()
}

/// Traced branch-and-bound node events equal the node totals the run
/// records — serially and in parallel (where workers race to emit).
#[test]
fn bnb_node_events_match_run_stats() {
    for threads in [1, 4] {
        let netlist = ProblemGenerator::new(8, 3).generate();
        let (config, collector) = traced_config();
        let config = config.with_solver_threads(threads);
        let result = Floorplanner::with_config(&netlist, config).run().unwrap();

        assert_eq!(
            result.stats.greedy_fallbacks(),
            0,
            "t{threads}: a fallback would void the node-accounting premise"
        );
        assert_eq!(
            collector.count_of(EventKind::BnbNode),
            result.stats.total_nodes(),
            "t{threads}: BnbNode events vs RunStats::total_nodes"
        );
        // The per-solve SolveEnd totals tell the same story.
        let end_nodes: usize = collector
            .of_kind(EventKind::SolveEnd)
            .iter()
            .map(|r| match r.event {
                Event::SolveEnd { nodes, .. } => nodes,
                _ => unreachable!(),
            })
            .sum();
        assert_eq!(
            end_nodes,
            result.stats.total_nodes(),
            "t{threads}: SolveEnd nodes vs RunStats::total_nodes"
        );
    }
}

/// Every augmentation step emits exactly one terminal `AugmentStep` event,
/// with dense step indices and stats matching the recorded `StepStats`.
#[test]
fn one_terminal_event_per_augmentation_step() {
    let netlist = ProblemGenerator::new(9, 11).generate();
    let (config, collector) = traced_config();
    let result = Floorplanner::with_config(&netlist, config).run().unwrap();

    let steps = collector.of_kind(EventKind::AugmentStep);
    assert_eq!(
        steps.len(),
        result.stats.steps.len(),
        "one AugmentStep event per recorded step"
    );
    for (i, (record, stat)) in steps.iter().zip(&result.stats.steps).enumerate() {
        let Event::AugmentStep {
            step,
            group,
            obstacles,
            binaries,
            nodes,
            outcome,
        } = record.event
        else {
            unreachable!("of_kind returned a non-AugmentStep record");
        };
        assert_eq!(record.phase, Phase::Augment);
        assert_eq!(step, i, "step indices are dense and ordered");
        assert_eq!(stat.kind, StepKind::Placement);
        assert_eq!(group, stat.group.len(), "group size");
        assert_eq!(obstacles, stat.obstacles, "obstacle count");
        assert_eq!(binaries, stat.binaries, "binary count");
        assert_eq!(nodes, stat.nodes, "node count");
        assert_eq!(outcome, stat.outcome.termination(), "outcome");
    }
    // A fallback marker may precede a terminal event, never replace it.
    assert_eq!(
        collector.count_of(EventKind::GreedyFallback),
        result.stats.greedy_fallbacks(),
        "GreedyFallback markers vs recorded fallbacks"
    );
}

/// Within each solve the incumbent objective is strictly improving: the
/// step models minimize, so the traced sequence strictly decreases. Holds
/// serially by construction and in parallel because incumbent events are
/// emitted while the incumbent lock is held.
#[test]
fn incumbent_objective_is_monotone_within_each_solve() {
    for threads in [1, 4] {
        let netlist = ProblemGenerator::new(8, 17).generate();
        let (config, collector) = traced_config();
        let config = config.with_solver_threads(threads);
        Floorplanner::with_config(&netlist, config).run().unwrap();

        // Solves never interleave (the driver is sequential), so the stream
        // splits into SolveStart..SolveEnd segments.
        let records = collector.records();
        let mut solves = 0usize;
        let mut current: Option<Vec<Record>> = None;
        for r in records {
            match r.event {
                Event::SolveStart { .. } => {
                    assert!(current.is_none(), "t{threads}: nested SolveStart");
                    current = Some(Vec::new());
                }
                Event::SolveEnd { .. } => {
                    let solve = current.take().expect("SolveEnd without SolveStart");
                    solves += 1;
                    let incumbents = incumbents_of(&solve);
                    for pair in incumbents.windows(2) {
                        assert!(
                            pair[1] < pair[0],
                            "t{threads}: incumbents not strictly improving: {incumbents:?}"
                        );
                    }
                }
                _ => {
                    if let Some(solve) = current.as_mut() {
                        solve.push(r);
                    }
                }
            }
        }
        assert!(current.is_none(), "t{threads}: unterminated solve");
        assert!(solves > 0, "t{threads}: no solves traced");
    }
}

/// A disabled tracer emits nothing and perturbs nothing: the traced and
/// untraced serial runs produce identical floorplans and statistics.
#[test]
fn disabled_tracing_emits_nothing_and_changes_nothing() {
    let netlist = ProblemGenerator::new(7, 5).generate();

    let disabled = Tracer::disabled();
    assert!(!disabled.is_enabled());
    let plain_cfg = FloorplanConfig::default().with_tracer(disabled.clone());
    let plain = Floorplanner::with_config(&netlist, plain_cfg)
        .run()
        .unwrap();
    assert_eq!(disabled.total_events(), 0, "disabled tracer counted events");

    let (traced_cfg, collector) = traced_config();
    let traced = Floorplanner::with_config(&netlist, traced_cfg)
        .run()
        .unwrap();
    assert!(!collector.is_empty(), "enabled tracer saw nothing");

    assert_eq!(plain.floorplan, traced.floorplan);
    assert_eq!(plain.stats.steps.len(), traced.stats.steps.len());
    assert_eq!(plain.stats.total_nodes(), traced.stats.total_nodes());
    assert_eq!(plain.stats.max_binaries(), traced.stats.max_binaries());
}

/// Satellite fix, verified by trace: re-optimization solves are recorded as
/// `StepKind::Reoptimize` steps, their nodes count toward
/// `RunStats::total_nodes`, and the trace's node events agree.
#[test]
fn improve_nodes_are_counted_in_run_stats() {
    let netlist = ProblemGenerator::new(9, 23).generate();
    let (config, collector) = traced_config();
    let base = bottom_left(&netlist, &config).unwrap();

    let mut stats = RunStats::default();
    let rounds = 3;
    let improved = improve_traced(&base, &netlist, &config, rounds, &mut stats).unwrap();
    assert!(improved.is_valid());

    // Every recorded step is a re-optimization, and at least one MILP ran.
    assert!(!stats.steps.is_empty(), "improve recorded no solves");
    assert!(stats
        .steps
        .iter()
        .all(|s| s.kind == StepKind::Reoptimize && s.outcome != StepOutcome::GreedyFallback));
    assert!(
        stats.nodes_of_kind(StepKind::Reoptimize) > 0,
        "re-optimization explored no nodes"
    );
    assert_eq!(
        stats.total_nodes(),
        stats.nodes_of_kind(StepKind::Reoptimize),
        "improve-only stats contain only Reoptimize nodes"
    );

    // The trace corroborates: node events equal the recorded totals (the
    // topology LP is deliberately untraced and has no integer variables).
    assert_eq!(collector.count_of(EventKind::BnbNode), stats.total_nodes());
    assert_eq!(
        collector.count_of(EventKind::SolveStart),
        stats.steps.len(),
        "one traced solve per recorded step"
    );

    // One ImproveRound event per round (the loop may break early only after
    // exhausting bands; with these sizes it runs all rounds), each carrying
    // a non-increasing height.
    let round_events: Vec<(usize, bool, f64)> = collector
        .of_kind(EventKind::ImproveRound)
        .iter()
        .map(|r| match r.event {
            Event::ImproveRound {
                round,
                accepted,
                height,
            } => (round, accepted, height),
            _ => unreachable!(),
        })
        .collect();
    assert!(!round_events.is_empty() && round_events.len() <= rounds);
    for (i, &(round, _, _)) in round_events.iter().enumerate() {
        assert_eq!(round, i, "round indices are dense");
    }
    for pair in round_events.windows(2) {
        assert!(pair[1].2 <= pair[0].2 + 1e-9, "round heights regressed");
    }
    assert!(
        (round_events.last().unwrap().2 - improved.chip_height()).abs() < 1e-9,
        "last round height equals the returned floorplan's height"
    );
}

/// `StepTermination` round-trips through `StepOutcome::termination` — the
/// event vocabulary covers every outcome the driver can record.
#[test]
fn outcome_vocabulary_is_total() {
    assert_eq!(StepOutcome::Optimal.termination(), StepTermination::Optimal);
    assert_eq!(
        StepOutcome::Incumbent.termination(),
        StepTermination::Incumbent
    );
    assert_eq!(
        StepOutcome::GreedyFallback.termination(),
        StepTermination::GreedyFallback
    );
}
