//! Structured observability for the floorplanning pipeline.
//!
//! The DAC'90 successive-augmentation driver repeatedly solves MILP
//! subproblems whose difficulty hinges on quantities that are invisible
//! from the outside: binaries per subproblem, branch-and-bound nodes,
//! greedy fallbacks, channel-width adjustments. This crate is the
//! pipeline's shared event/metric layer:
//!
//! * **Typed events** ([`Event`]) tagged with a pipeline [`Phase`] and a
//!   monotone sequence number — [`Event::BnbNode`], [`Event::Incumbent`],
//!   [`Event::AugmentStep`], [`Event::GreedyFallback`],
//!   [`Event::ChannelAdjust`], span timers, and friends.
//! * **Pluggable sinks** ([`Sink`]): an in-memory [`Collector`] whose
//!   records make solver/driver internals assertable in tests, a
//!   [`JsonlSink`] writing one JSON object per line, and a [`Fanout`]
//!   tee. [`render_summary`] turns collected records into a
//!   human-readable run summary.
//! * **A cheap handle** ([`Tracer`]): `Clone + Send + Sync`, one
//!   `Option` check when disabled, and atomics-only per-event-kind
//!   counters when enabled — safe to thread through the parallel
//!   branch-and-bound without measurable overhead.
//!
//! # Example
//!
//! ```
//! use fp_obs::{Collector, Event, EventKind, Phase, Tracer};
//!
//! let collector = Collector::new();
//! let tracer = Tracer::new(collector.clone());
//! tracer.emit(Phase::Solver, Event::BnbNode { depth: 0, warm: false, pivots: 0, refactors: 1, etas: 0 });
//! tracer.emit(Phase::Solver, Event::Incumbent { objective: 42.0 });
//! assert_eq!(tracer.count(EventKind::BnbNode), 1);
//! let records = collector.records();
//! assert_eq!(records.len(), 2);
//! assert_eq!(records[0].seq, 0); // sequence numbers are monotone
//!
//! // Disabled tracing emits nothing and costs one Option check.
//! let off = Tracer::disabled();
//! off.emit(Phase::Solver, Event::BnbNode { depth: 9, warm: false, pivots: 0, refactors: 0, etas: 0 });
//! assert_eq!(off.count(EventKind::BnbNode), 0);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod event;
mod jsonl;
mod sink;
mod summary;

pub use event::{Event, EventKind, Phase, Record, StepTermination};
pub use jsonl::{parse_line, validate_line, JsonValue, JsonlSink, ParsedRecord};
pub use sink::{Collector, Fanout, NullSink, Sink};
pub use summary::render_summary;

use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;
use std::time::Instant;

struct TracerInner {
    sink: Box<dyn Sink>,
    seq: AtomicU64,
    counts: [AtomicU64; EventKind::COUNT],
}

/// A cheap, cloneable handle that stamps events with sequence numbers and
/// forwards them to a [`Sink`].
///
/// The disabled tracer ([`Tracer::disabled`], also [`Default`]) carries no
/// allocation at all: every [`emit`](Tracer::emit) is a single `Option`
/// check, so instrumented hot loops (per-node solver code) stay at
/// untraced speed. An enabled tracer additionally maintains monotonic
/// per-[`EventKind`] counters with relaxed atomics.
pub struct Tracer {
    inner: Option<Arc<TracerInner>>,
}

impl Tracer {
    /// A tracer that drops everything at the cost of one `Option` check.
    #[must_use]
    pub fn disabled() -> Self {
        Tracer { inner: None }
    }

    /// A tracer forwarding every event to `sink`.
    #[must_use]
    pub fn new(sink: impl Sink + 'static) -> Self {
        Tracer {
            inner: Some(Arc::new(TracerInner {
                sink: Box::new(sink),
                seq: AtomicU64::new(0),
                counts: std::array::from_fn(|_| AtomicU64::new(0)),
            })),
        }
    }

    /// A tracer duplicating every event to each sink in `sinks`.
    #[must_use]
    pub fn fanout(sinks: Vec<Box<dyn Sink>>) -> Self {
        Tracer::new(Fanout::new(sinks))
    }

    /// Whether events reach a sink. Callers may use this to skip building
    /// expensive event payloads.
    #[must_use]
    pub fn is_enabled(&self) -> bool {
        self.inner.is_some()
    }

    /// Stamps `event` with the next sequence number and forwards it.
    /// A no-op on a disabled tracer.
    pub fn emit(&self, phase: Phase, event: Event) {
        if let Some(inner) = &self.inner {
            let seq = inner.seq.fetch_add(1, Ordering::Relaxed);
            inner.counts[event.kind().index()].fetch_add(1, Ordering::Relaxed);
            inner.sink.record(&Record { seq, phase, event });
        }
    }

    /// Monotonic count of events of `kind` emitted through this tracer
    /// (0 on a disabled tracer).
    #[must_use]
    pub fn count(&self, kind: EventKind) -> u64 {
        self.inner
            .as_ref()
            .map_or(0, |i| i.counts[kind.index()].load(Ordering::Relaxed))
    }

    /// Total events emitted through this tracer.
    #[must_use]
    pub fn total_events(&self) -> u64 {
        self.inner
            .as_ref()
            .map_or(0, |i| i.seq.load(Ordering::Relaxed))
    }

    /// Starts a span timer; the guard emits [`Event::Span`] with the
    /// elapsed microseconds when dropped. Inert on a disabled tracer.
    #[must_use]
    pub fn span(&self, phase: Phase, name: &'static str) -> SpanGuard<'_> {
        SpanGuard {
            tracer: self,
            phase,
            name,
            started: self.is_enabled().then(Instant::now),
        }
    }

    /// Flushes the underlying sink (e.g. buffered JSONL output).
    pub fn flush(&self) {
        if let Some(inner) = &self.inner {
            inner.sink.flush();
        }
    }
}

impl Clone for Tracer {
    fn clone(&self) -> Self {
        Tracer {
            inner: self.inner.clone(),
        }
    }
}

impl Default for Tracer {
    fn default() -> Self {
        Tracer::disabled()
    }
}

impl std::fmt::Debug for Tracer {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Tracer")
            .field("enabled", &self.is_enabled())
            .finish()
    }
}

/// Two tracers are equal when both are disabled or both share the same
/// sink (clone lineage). This exists so configuration structs holding a
/// tracer can keep deriving `PartialEq`.
impl PartialEq for Tracer {
    fn eq(&self, other: &Self) -> bool {
        match (&self.inner, &other.inner) {
            (None, None) => true,
            (Some(a), Some(b)) => Arc::ptr_eq(a, b),
            _ => false,
        }
    }
}

/// RAII guard produced by [`Tracer::span`]; emits [`Event::Span`] on drop.
pub struct SpanGuard<'a> {
    tracer: &'a Tracer,
    phase: Phase,
    name: &'static str,
    started: Option<Instant>,
}

impl Drop for SpanGuard<'_> {
    fn drop(&mut self) {
        if let Some(started) = self.started {
            self.tracer.emit(
                self.phase,
                Event::Span {
                    name: self.name,
                    micros: started.elapsed().as_micros() as u64,
                },
            );
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn disabled_tracer_is_inert() {
        let t = Tracer::disabled();
        assert!(!t.is_enabled());
        t.emit(
            Phase::Solver,
            Event::BnbNode {
                depth: 1,
                warm: false,
                pivots: 0,
                refactors: 0,
                etas: 0,
            },
        );
        drop(t.span(Phase::Augment, "noop"));
        assert_eq!(t.total_events(), 0);
        for kind in EventKind::ALL {
            assert_eq!(t.count(kind), 0);
        }
        assert_eq!(Tracer::default(), Tracer::disabled());
    }

    #[test]
    fn sequence_numbers_are_dense_and_monotone() {
        let collector = Collector::new();
        let t = Tracer::new(collector.clone());
        for d in 0..5 {
            t.emit(
                Phase::Solver,
                Event::BnbNode {
                    depth: d,
                    warm: false,
                    pivots: 0,
                    refactors: 0,
                    etas: 0,
                },
            );
        }
        let records = collector.records();
        let seqs: Vec<u64> = records.iter().map(|r| r.seq).collect();
        assert_eq!(seqs, vec![0, 1, 2, 3, 4]);
        assert_eq!(t.total_events(), 5);
        assert_eq!(t.count(EventKind::BnbNode), 5);
        assert_eq!(t.count(EventKind::Incumbent), 0);
    }

    #[test]
    fn clones_share_sequence_and_counts() {
        let collector = Collector::new();
        let a = Tracer::new(collector.clone());
        let b = a.clone();
        a.emit(
            Phase::Solver,
            Event::BnbNode {
                depth: 0,
                warm: false,
                pivots: 0,
                refactors: 0,
                etas: 0,
            },
        );
        b.emit(
            Phase::Solver,
            Event::BnbNode {
                depth: 1,
                warm: false,
                pivots: 0,
                refactors: 0,
                etas: 0,
            },
        );
        assert_eq!(a.count(EventKind::BnbNode), 2);
        assert_eq!(collector.records().len(), 2);
        assert_eq!(a, b);
        assert_ne!(a, Tracer::new(Collector::new()));
        assert_ne!(a, Tracer::disabled());
    }

    #[test]
    fn span_emits_timing() {
        let collector = Collector::new();
        let t = Tracer::new(collector.clone());
        {
            let _g = t.span(Phase::Route, "route_all");
        }
        let records = collector.records();
        assert_eq!(records.len(), 1);
        match &records[0].event {
            Event::Span { name, .. } => assert_eq!(*name, "route_all"),
            other => panic!("expected span, got {other:?}"),
        }
        assert_eq!(records[0].phase, Phase::Route);
    }

    #[test]
    fn threaded_emission_is_complete() {
        let collector = Collector::new();
        let t = Tracer::new(collector.clone());
        std::thread::scope(|s| {
            for _ in 0..4 {
                let t = t.clone();
                s.spawn(move || {
                    for d in 0..100 {
                        t.emit(
                            Phase::Solver,
                            Event::BnbNode {
                                depth: d,
                                warm: false,
                                pivots: 0,
                                refactors: 0,
                                etas: 0,
                            },
                        );
                    }
                });
            }
        });
        let records = collector.records();
        assert_eq!(records.len(), 400);
        // Every sequence number appears exactly once.
        let mut seqs: Vec<u64> = records.iter().map(|r| r.seq).collect();
        seqs.sort_unstable();
        assert_eq!(seqs, (0..400).collect::<Vec<u64>>());
        assert_eq!(t.count(EventKind::BnbNode), 400);
    }
}
