//! Pluggable event sinks.

use crate::event::{EventKind, Record};
use std::sync::{Arc, Mutex};

/// Receives sequence-stamped records from a [`Tracer`](crate::Tracer).
///
/// Implementations must be thread-safe: the parallel branch-and-bound
/// emits from every worker. `record` takes `&self`; interior mutability
/// is the implementor's business.
pub trait Sink: Send + Sync {
    /// Accepts one record.
    fn record(&self, record: &Record);

    /// Flushes buffered output; a no-op by default.
    fn flush(&self) {}
}

/// Discards everything. Useful for measuring instrumentation overhead
/// with the tracer machinery (sequence stamping, counters) still active.
#[derive(Debug, Default, Clone, Copy)]
pub struct NullSink;

impl Sink for NullSink {
    fn record(&self, _record: &Record) {}
}

/// In-memory collector for deterministic test assertions.
///
/// Clones share the same buffer, so keep one clone and hand another to
/// [`Tracer::new`](crate::Tracer::new):
///
/// ```
/// use fp_obs::{Collector, Event, Phase, Tracer};
/// let collector = Collector::new();
/// let tracer = Tracer::new(collector.clone());
/// tracer.emit(Phase::Route, Event::RouteStart { nets: 1, cells: 4, edges: 4 });
/// assert_eq!(collector.records().len(), 1);
/// ```
#[derive(Debug, Default, Clone)]
pub struct Collector {
    records: Arc<Mutex<Vec<Record>>>,
}

impl Collector {
    /// An empty collector.
    #[must_use]
    pub fn new() -> Self {
        Collector::default()
    }

    /// A snapshot of every record collected so far, in emission order.
    ///
    /// # Panics
    ///
    /// Panics if a previous user of the collector panicked mid-append.
    #[must_use]
    pub fn records(&self) -> Vec<Record> {
        self.records.lock().expect("collector lock").clone()
    }

    /// Number of records collected.
    #[must_use]
    pub fn len(&self) -> usize {
        self.records.lock().expect("collector lock").len()
    }

    /// Whether nothing was collected.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Records of one event kind, in emission order.
    #[must_use]
    pub fn of_kind(&self, kind: EventKind) -> Vec<Record> {
        self.records
            .lock()
            .expect("collector lock")
            .iter()
            .filter(|r| r.event.kind() == kind)
            .cloned()
            .collect()
    }

    /// Number of records of one event kind.
    #[must_use]
    pub fn count_of(&self, kind: EventKind) -> usize {
        self.records
            .lock()
            .expect("collector lock")
            .iter()
            .filter(|r| r.event.kind() == kind)
            .count()
    }

    /// Drops every collected record.
    pub fn clear(&self) {
        self.records.lock().expect("collector lock").clear();
    }
}

impl Sink for Collector {
    fn record(&self, record: &Record) {
        self.records
            .lock()
            .expect("collector lock")
            .push(record.clone());
    }
}

/// Duplicates every record to each inner sink, in order.
pub struct Fanout {
    sinks: Vec<Box<dyn Sink>>,
}

impl Fanout {
    /// A fanout over `sinks`.
    #[must_use]
    pub fn new(sinks: Vec<Box<dyn Sink>>) -> Self {
        Fanout { sinks }
    }
}

impl Sink for Fanout {
    fn record(&self, record: &Record) {
        for sink in &self.sinks {
            sink.record(record);
        }
    }

    fn flush(&self) {
        for sink in &self.sinks {
            sink.flush();
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::event::{Event, Phase};
    use crate::Tracer;

    #[test]
    fn collector_filters_by_kind() {
        let c = Collector::new();
        let t = Tracer::new(c.clone());
        t.emit(
            Phase::Solver,
            Event::BnbNode {
                depth: 0,
                warm: false,
                pivots: 0,
                refactors: 0,
                etas: 0,
            },
        );
        t.emit(Phase::Solver, Event::Incumbent { objective: 1.0 });
        t.emit(
            Phase::Solver,
            Event::BnbNode {
                depth: 1,
                warm: false,
                pivots: 0,
                refactors: 0,
                etas: 0,
            },
        );
        assert_eq!(c.len(), 3);
        assert!(!c.is_empty());
        assert_eq!(c.count_of(EventKind::BnbNode), 2);
        assert_eq!(c.of_kind(EventKind::Incumbent).len(), 1);
        c.clear();
        assert!(c.is_empty());
    }

    #[test]
    fn fanout_duplicates() {
        let a = Collector::new();
        let b = Collector::new();
        let t = Tracer::fanout(vec![Box::new(a.clone()), Box::new(b.clone())]);
        t.emit(Phase::Improve, Event::GreedyFallback { step: 3 });
        t.flush();
        assert_eq!(a.records(), b.records());
        assert_eq!(a.len(), 1);
    }

    #[test]
    fn null_sink_accepts_everything() {
        let t = Tracer::new(NullSink);
        t.emit(
            Phase::Solver,
            Event::BnbNode {
                depth: 0,
                warm: false,
                pivots: 0,
                refactors: 0,
                etas: 0,
            },
        );
        assert_eq!(t.count(EventKind::BnbNode), 1); // counters still work
        t.flush();
    }
}
