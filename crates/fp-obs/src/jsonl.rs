//! JSONL file sink and a minimal parser/validator for its output.
//!
//! The trace format is one flat JSON object per line; every line carries
//! at least `seq` (number), `phase` (string) and `event` (string). The
//! parser here is intentionally small — it understands exactly the flat
//! string/number/bool/null objects [`Record::to_json`] emits — and
//! exists so tests and `scripts/check.sh` can round-trip traces without
//! an external JSON dependency.

use crate::event::Record;
use crate::sink::Sink;
use std::io::{BufWriter, Write};
use std::path::Path;
use std::sync::Mutex;

/// Writes one JSON object per record to a buffered writer.
///
/// Lines are written atomically under a mutex, so a parallel solve
/// produces interleaved but individually well-formed lines. Buffered
/// output is flushed by [`Sink::flush`] and on drop.
pub struct JsonlSink {
    out: Mutex<BufWriter<Box<dyn Write + Send>>>,
}

impl JsonlSink {
    /// Creates (truncates) `path` and writes records to it.
    ///
    /// # Errors
    ///
    /// Propagates the underlying file-creation error.
    pub fn create(path: impl AsRef<Path>) -> std::io::Result<Self> {
        let file = std::fs::File::create(path)?;
        Ok(JsonlSink::to_writer(Box::new(file)))
    }

    /// Wraps an arbitrary writer (used by tests).
    #[must_use]
    pub fn to_writer(writer: Box<dyn Write + Send>) -> Self {
        JsonlSink {
            out: Mutex::new(BufWriter::new(writer)),
        }
    }
}

impl Sink for JsonlSink {
    fn record(&self, record: &Record) {
        let line = record.to_json();
        let mut out = self.out.lock().expect("jsonl lock");
        // A full disk mid-trace must not abort the solve; the final
        // flush will surface persistent failures to whoever checks.
        let _ = writeln!(out, "{line}");
    }

    fn flush(&self) {
        let _ = self.out.lock().expect("jsonl lock").flush();
    }
}

impl Drop for JsonlSink {
    fn drop(&mut self) {
        if let Ok(mut out) = self.out.lock() {
            let _ = out.flush();
        }
    }
}

/// A parsed JSON scalar.
#[derive(Debug, Clone, PartialEq)]
pub enum JsonValue {
    /// `null`
    Null,
    /// `true` / `false`
    Bool(bool),
    /// Any JSON number.
    Num(f64),
    /// A string.
    Str(String),
}

/// One parsed trace line: flat key → scalar pairs in source order.
#[derive(Debug, Clone, PartialEq)]
pub struct ParsedRecord {
    /// The object's fields, in source order.
    pub fields: Vec<(String, JsonValue)>,
}

impl ParsedRecord {
    /// The value of `key`, if present.
    #[must_use]
    pub fn get(&self, key: &str) -> Option<&JsonValue> {
        self.fields.iter().find(|(k, _)| k == key).map(|(_, v)| v)
    }

    /// The numeric value of `key`, if present and a number.
    #[must_use]
    pub fn num(&self, key: &str) -> Option<f64> {
        match self.get(key) {
            Some(JsonValue::Num(n)) => Some(*n),
            _ => None,
        }
    }

    /// The string value of `key`, if present and a string.
    #[must_use]
    pub fn str_field(&self, key: &str) -> Option<&str> {
        match self.get(key) {
            Some(JsonValue::Str(s)) => Some(s.as_str()),
            _ => None,
        }
    }

    /// The boolean value of `key`, if present and a boolean.
    #[must_use]
    pub fn bool_field(&self, key: &str) -> Option<bool> {
        match self.get(key) {
            Some(JsonValue::Bool(b)) => Some(*b),
            _ => None,
        }
    }
}

struct Cursor<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl<'a> Cursor<'a> {
    fn skip_ws(&mut self) {
        while self
            .bytes
            .get(self.pos)
            .is_some_and(|b| b.is_ascii_whitespace())
        {
            self.pos += 1;
        }
    }

    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.pos).copied()
    }

    fn expect(&mut self, b: u8) -> Result<(), String> {
        if self.peek() == Some(b) {
            self.pos += 1;
            Ok(())
        } else {
            Err(format!(
                "expected '{}' at byte {}, found {:?}",
                b as char,
                self.pos,
                self.peek().map(|c| c as char)
            ))
        }
    }

    fn string(&mut self) -> Result<String, String> {
        self.expect(b'"')?;
        let mut s = String::new();
        loop {
            match self.peek() {
                None => return Err("unterminated string".to_string()),
                Some(b'"') => {
                    self.pos += 1;
                    return Ok(s);
                }
                Some(b'\\') => {
                    self.pos += 1;
                    let esc = self.peek().ok_or("dangling escape")?;
                    self.pos += 1;
                    match esc {
                        b'"' => s.push('"'),
                        b'\\' => s.push('\\'),
                        b'/' => s.push('/'),
                        b'n' => s.push('\n'),
                        b't' => s.push('\t'),
                        b'r' => s.push('\r'),
                        other => {
                            return Err(format!("unsupported escape '\\{}'", other as char));
                        }
                    }
                }
                Some(_) => {
                    // Consume one UTF-8 character (multi-byte safe).
                    let rest = &self.bytes[self.pos..];
                    let ch = std::str::from_utf8(rest)
                        .map_err(|_| "invalid UTF-8 in string")?
                        .chars()
                        .next()
                        .ok_or("empty string tail")?;
                    s.push(ch);
                    self.pos += ch.len_utf8();
                }
            }
        }
    }

    fn value(&mut self) -> Result<JsonValue, String> {
        self.skip_ws();
        match self.peek() {
            Some(b'"') => Ok(JsonValue::Str(self.string()?)),
            Some(b't') => self.literal("true", JsonValue::Bool(true)),
            Some(b'f') => self.literal("false", JsonValue::Bool(false)),
            Some(b'n') => self.literal("null", JsonValue::Null),
            Some(c) if c == b'-' || c.is_ascii_digit() => {
                let start = self.pos;
                while self.peek().is_some_and(|b| {
                    b.is_ascii_digit() || matches!(b, b'-' | b'+' | b'.' | b'e' | b'E')
                }) {
                    self.pos += 1;
                }
                let text = std::str::from_utf8(&self.bytes[start..self.pos])
                    .map_err(|_| "invalid number bytes")?;
                text.parse::<f64>()
                    .map(JsonValue::Num)
                    .map_err(|_| format!("bad number '{text}'"))
            }
            other => Err(format!(
                "unsupported value start {:?} at byte {}",
                other.map(|c| c as char),
                self.pos
            )),
        }
    }

    fn literal(&mut self, word: &str, value: JsonValue) -> Result<JsonValue, String> {
        if self.bytes[self.pos..].starts_with(word.as_bytes()) {
            self.pos += word.len();
            Ok(value)
        } else {
            Err(format!("expected '{word}' at byte {}", self.pos))
        }
    }
}

/// Parses one flat JSON object line into key/scalar pairs.
///
/// # Errors
///
/// Returns a description of the first syntax problem; nested objects and
/// arrays are rejected (the trace format is flat by construction).
pub fn parse_line(line: &str) -> Result<ParsedRecord, String> {
    let mut c = Cursor {
        bytes: line.as_bytes(),
        pos: 0,
    };
    c.skip_ws();
    c.expect(b'{')?;
    let mut fields = Vec::new();
    c.skip_ws();
    if c.peek() == Some(b'}') {
        c.pos += 1;
    } else {
        loop {
            c.skip_ws();
            let key = c.string()?;
            c.skip_ws();
            c.expect(b':')?;
            let value = c.value()?;
            fields.push((key, value));
            c.skip_ws();
            match c.peek() {
                Some(b',') => c.pos += 1,
                Some(b'}') => {
                    c.pos += 1;
                    break;
                }
                other => {
                    return Err(format!(
                        "expected ',' or '}}' at byte {}, found {:?}",
                        c.pos,
                        other.map(|b| b as char)
                    ))
                }
            }
        }
    }
    c.skip_ws();
    if c.pos != c.bytes.len() {
        return Err(format!("trailing bytes after object at {}", c.pos));
    }
    Ok(ParsedRecord { fields })
}

/// Parses `line` and checks the trace schema: a numeric `seq`, a string
/// `phase` and a string `event` field must be present. `BnbNode` lines
/// additionally carry a numeric `depth`, a boolean `warm` and numeric
/// `pivots`, `refactors` and `etas` (the warm-start and factorization
/// coverage fields downstream tooling keys on);
/// `Presolve` lines carry the four numeric strengthening counters and
/// `CutRound` lines a numeric `round` and `cuts`. Service lines have
/// schemas of their own: `Coalesced` carries a string `key`, `Shed` a
/// numeric `queued` and `retry_after_ms`, `ShardStats` the six numeric
/// per-shard accounting counters, `BackendDone` a string `backend`, a
/// numeric `micros` and a boolean `won` (its `cost` may be `null` for
/// failed legs), `Portfolio` a string `winner` and numeric
/// `backends` and `micros`, `DeltaApply` a string `base_key` and numeric
/// `ops`, `touched` and `total`, and `EcoJob` string `base_key` and
/// `basis`, a boolean `base_hit` and numeric `id`, `replaced` and
/// `total`.
///
/// # Errors
///
/// Returns what is malformed or missing.
pub fn validate_line(line: &str) -> Result<ParsedRecord, String> {
    let parsed = parse_line(line)?;
    if parsed.num("seq").is_none() {
        return Err("missing numeric 'seq' field".to_string());
    }
    for key in ["phase", "event"] {
        if parsed.str_field(key).is_none() {
            return Err(format!("missing string '{key}' field"));
        }
    }
    if parsed.str_field("event") == Some("BnbNode") {
        for key in ["depth", "pivots", "refactors", "etas"] {
            if parsed.num(key).is_none() {
                return Err(format!("BnbNode: missing numeric '{key}' field"));
            }
        }
        if parsed.bool_field("warm").is_none() {
            return Err("BnbNode: missing boolean 'warm' field".to_string());
        }
    }
    if parsed.str_field("event") == Some("Presolve") {
        for key in ["passes", "rows_tightened", "binaries_fixed", "implications"] {
            if parsed.num(key).is_none() {
                return Err(format!("Presolve: missing numeric '{key}' field"));
            }
        }
    }
    if parsed.str_field("event") == Some("CutRound") {
        for key in ["round", "cuts"] {
            if parsed.num(key).is_none() {
                return Err(format!("CutRound: missing numeric '{key}' field"));
            }
        }
    }
    if parsed.str_field("event") == Some("Coalesced") && parsed.str_field("key").is_none() {
        return Err("Coalesced: missing string 'key' field".to_string());
    }
    if parsed.str_field("event") == Some("Shed") {
        for key in ["queued", "retry_after_ms"] {
            if parsed.num(key).is_none() {
                return Err(format!("Shed: missing numeric '{key}' field"));
            }
        }
    }
    if parsed.str_field("event") == Some("ShardStats") {
        for key in [
            "shard",
            "conns",
            "accepted",
            "completed",
            "shed",
            "malformed",
        ] {
            if parsed.num(key).is_none() {
                return Err(format!("ShardStats: missing numeric '{key}' field"));
            }
        }
    }
    if parsed.str_field("event") == Some("BackendDone") {
        if parsed.str_field("backend").is_none() {
            return Err("BackendDone: missing string 'backend' field".to_string());
        }
        if parsed.num("micros").is_none() {
            return Err("BackendDone: missing numeric 'micros' field".to_string());
        }
        if parsed.bool_field("won").is_none() {
            return Err("BackendDone: missing boolean 'won' field".to_string());
        }
        // `cost` is null for failed legs; any other type is malformed.
        match parsed.get("cost") {
            Some(JsonValue::Num(_) | JsonValue::Null) => {}
            _ => return Err("BackendDone: 'cost' must be a number or null".to_string()),
        }
    }
    if parsed.str_field("event") == Some("Portfolio") {
        if parsed.str_field("winner").is_none() {
            return Err("Portfolio: missing string 'winner' field".to_string());
        }
        for key in ["backends", "micros"] {
            if parsed.num(key).is_none() {
                return Err(format!("Portfolio: missing numeric '{key}' field"));
            }
        }
    }
    if parsed.str_field("event") == Some("DeltaApply") {
        if parsed.str_field("base_key").is_none() {
            return Err("DeltaApply: missing string 'base_key' field".to_string());
        }
        for key in ["ops", "touched", "total"] {
            if parsed.num(key).is_none() {
                return Err(format!("DeltaApply: missing numeric '{key}' field"));
            }
        }
    }
    if parsed.str_field("event") == Some("EcoJob") {
        for key in ["base_key", "basis"] {
            if parsed.str_field(key).is_none() {
                return Err(format!("EcoJob: missing string '{key}' field"));
            }
        }
        if parsed.bool_field("base_hit").is_none() {
            return Err("EcoJob: missing boolean 'base_hit' field".to_string());
        }
        for key in ["id", "replaced", "total"] {
            if parsed.num(key).is_none() {
                return Err(format!("EcoJob: missing numeric '{key}' field"));
            }
        }
    }
    Ok(parsed)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::event::{Event, Phase, StepTermination};
    use crate::Tracer;
    use std::sync::{Arc, Mutex};

    /// A Write target backed by shared memory, to capture sink output.
    #[derive(Clone, Default)]
    struct SharedBuf(Arc<Mutex<Vec<u8>>>);

    impl std::io::Write for SharedBuf {
        fn write(&mut self, buf: &[u8]) -> std::io::Result<usize> {
            self.0.lock().unwrap().extend_from_slice(buf);
            Ok(buf.len())
        }
        fn flush(&mut self) -> std::io::Result<()> {
            Ok(())
        }
    }

    #[test]
    fn every_emitted_line_validates() {
        let buf = SharedBuf::default();
        let t = Tracer::new(JsonlSink::to_writer(Box::new(buf.clone())));
        t.emit(
            Phase::Solver,
            Event::SolveStart {
                binaries: 12,
                constraints: 30,
            },
        );
        t.emit(Phase::Solver, Event::RootLp { objective: -3.25 });
        t.emit(
            Phase::Solver,
            Event::BnbNode {
                depth: 2,
                warm: true,
                pivots: 7,
                refactors: 1,
                etas: 5,
            },
        );
        t.emit(Phase::Solver, Event::Incumbent { objective: 7.0 });
        t.emit(
            Phase::Solver,
            Event::SolveEnd {
                nodes: 3,
                simplex_iterations: 40,
                proven: true,
            },
        );
        t.emit(
            Phase::Augment,
            Event::AugmentStep {
                step: 0,
                group: 3,
                obstacles: 2,
                binaries: 22,
                nodes: 3,
                outcome: StepTermination::Incumbent,
            },
        );
        t.emit(Phase::Augment, Event::GreedyFallback { step: 1 });
        t.emit(
            Phase::Improve,
            Event::ImproveRound {
                round: 0,
                accepted: true,
                height: 12.5,
            },
        );
        t.emit(
            Phase::Route,
            Event::RouteStart {
                nets: 5,
                cells: 9,
                edges: 12,
            },
        );
        t.emit(
            Phase::Route,
            Event::RouteNet {
                net: 4,
                length: 8.75,
                segments: 2,
            },
        );
        t.emit(
            Phase::Route,
            Event::ChannelAdjust {
                extra_width: 0.5,
                extra_height: 0.0,
                overflowed_edges: 1,
            },
        );
        t.emit(
            Phase::Solver,
            Event::Span {
                name: "step",
                micros: 1234,
            },
        );
        t.emit(Phase::Serve, Event::CacheMiss { key: u64::MAX });
        t.emit(Phase::Serve, Event::CacheHit { key: u64::MAX });
        t.emit(
            Phase::Serve,
            Event::JobDone {
                id: 9,
                micros: 88,
                degraded: false,
                cached: true,
            },
        );
        t.emit(
            Phase::Solver,
            Event::Presolve {
                passes: 3,
                rows_tightened: 11,
                binaries_fixed: 2,
                implications: 5,
            },
        );
        t.emit(Phase::Solver, Event::CutRound { round: 1, cuts: 6 });
        t.emit(Phase::Serve, Event::Coalesced { key: u64::MAX });
        t.emit(
            Phase::Serve,
            Event::Shed {
                queued: 64,
                retry_after_ms: 25,
            },
        );
        t.emit(
            Phase::Serve,
            Event::ShardStats {
                shard: 1,
                conns: 9,
                accepted: 40,
                completed: 38,
                shed: 2,
                malformed: 3,
            },
        );
        t.emit(
            Phase::Serve,
            Event::BackendDone {
                backend: "analytic",
                micros: 700,
                cost: 42.25,
                won: false,
            },
        );
        t.emit(
            Phase::Serve,
            Event::Portfolio {
                backends: 3,
                winner: "milp",
                micros: 1500,
            },
        );
        t.emit(
            Phase::Serve,
            Event::DeltaApply {
                base_key: u64::MAX,
                ops: 2,
                touched: 3,
                total: 33,
            },
        );
        t.emit(
            Phase::Serve,
            Event::EcoJob {
                id: 12,
                base_key: u64::MAX,
                base_hit: true,
                replaced: 4,
                total: 33,
                basis: "hot",
            },
        );
        t.flush();

        let bytes = buf.0.lock().unwrap().clone();
        let text = String::from_utf8(bytes).unwrap();
        let lines: Vec<&str> = text.lines().collect();
        assert_eq!(lines.len(), 24);
        for (i, line) in lines.iter().enumerate() {
            let parsed = validate_line(line).unwrap_or_else(|e| panic!("line {i}: {e}\n{line}"));
            assert_eq!(parsed.num("seq"), Some(i as f64));
        }
        // Spot-check payload round-trips.
        let inc = parse_line(lines[3]).unwrap();
        assert_eq!(inc.str_field("event"), Some("Incumbent"));
        assert_eq!(inc.num("objective"), Some(7.0));
        let adj = parse_line(lines[10]).unwrap();
        assert_eq!(adj.num("extra_width"), Some(0.5));
        assert_eq!(adj.num("overflowed_edges"), Some(1.0));
        // Cache keys survive as full-width hex strings, not lossy numbers.
        let hit = parse_line(lines[13]).unwrap();
        assert_eq!(hit.str_field("event"), Some("CacheHit"));
        assert_eq!(hit.str_field("key"), Some("ffffffffffffffff"));
        let done = parse_line(lines[14]).unwrap();
        assert_eq!(done.num("id"), Some(9.0));
        assert_eq!(done.get("cached"), Some(&JsonValue::Bool(true)));
        let pre = parse_line(lines[15]).unwrap();
        assert_eq!(pre.str_field("event"), Some("Presolve"));
        assert_eq!(pre.num("rows_tightened"), Some(11.0));
        assert_eq!(pre.num("implications"), Some(5.0));
        let cut = parse_line(lines[16]).unwrap();
        assert_eq!(cut.str_field("event"), Some("CutRound"));
        assert_eq!(cut.num("cuts"), Some(6.0));
        let coalesced = parse_line(lines[17]).unwrap();
        assert_eq!(coalesced.str_field("event"), Some("Coalesced"));
        assert_eq!(coalesced.str_field("key"), Some("ffffffffffffffff"));
        let shed = parse_line(lines[18]).unwrap();
        assert_eq!(shed.num("queued"), Some(64.0));
        assert_eq!(shed.num("retry_after_ms"), Some(25.0));
        let shard = parse_line(lines[19]).unwrap();
        assert_eq!(shard.num("shard"), Some(1.0));
        assert_eq!(shard.num("accepted"), Some(40.0));
        assert_eq!(shard.num("malformed"), Some(3.0));
        let leg = parse_line(lines[20]).unwrap();
        assert_eq!(leg.str_field("event"), Some("BackendDone"));
        assert_eq!(leg.str_field("backend"), Some("analytic"));
        assert_eq!(leg.num("cost"), Some(42.25));
        assert_eq!(leg.bool_field("won"), Some(false));
        let race = parse_line(lines[21]).unwrap();
        assert_eq!(race.str_field("event"), Some("Portfolio"));
        assert_eq!(race.str_field("winner"), Some("milp"));
        assert_eq!(race.num("backends"), Some(3.0));
        assert_eq!(race.num("micros"), Some(1500.0));
        let delta = parse_line(lines[22]).unwrap();
        assert_eq!(delta.str_field("event"), Some("DeltaApply"));
        assert_eq!(delta.str_field("base_key"), Some("ffffffffffffffff"));
        assert_eq!(delta.num("ops"), Some(2.0));
        assert_eq!(delta.num("touched"), Some(3.0));
        let eco = parse_line(lines[23]).unwrap();
        assert_eq!(eco.str_field("event"), Some("EcoJob"));
        assert_eq!(eco.str_field("base_key"), Some("ffffffffffffffff"));
        assert_eq!(eco.bool_field("base_hit"), Some(true));
        assert_eq!(eco.num("replaced"), Some(4.0));
        assert_eq!(eco.str_field("basis"), Some("hot"));
    }

    #[test]
    fn eco_lines_require_their_fields() {
        validate_line(
            "{\"seq\":0,\"phase\":\"serve\",\"event\":\"DeltaApply\",\
             \"base_key\":\"ab\",\"ops\":1,\"touched\":1,\"total\":9}",
        )
        .unwrap();
        validate_line(
            "{\"seq\":0,\"phase\":\"serve\",\"event\":\"EcoJob\",\"id\":3,\
             \"base_key\":\"ab\",\"base_hit\":false,\"replaced\":9,\
             \"total\":9,\"basis\":\"cold\"}",
        )
        .unwrap();
        for bad in [
            // DeltaApply with a numeric base_key (must be a hex string).
            "{\"seq\":0,\"phase\":\"serve\",\"event\":\"DeltaApply\",\
             \"base_key\":12,\"ops\":1,\"touched\":1,\"total\":9}",
            // DeltaApply missing the op count.
            "{\"seq\":0,\"phase\":\"serve\",\"event\":\"DeltaApply\",\
             \"base_key\":\"ab\",\"touched\":1,\"total\":9}",
            // EcoJob missing the basis tier.
            "{\"seq\":0,\"phase\":\"serve\",\"event\":\"EcoJob\",\"id\":3,\
             \"base_key\":\"ab\",\"base_hit\":false,\"replaced\":9,\"total\":9}",
            // EcoJob with a non-boolean base_hit.
            "{\"seq\":0,\"phase\":\"serve\",\"event\":\"EcoJob\",\"id\":3,\
             \"base_key\":\"ab\",\"base_hit\":1,\"replaced\":9,\
             \"total\":9,\"basis\":\"cold\"}",
        ] {
            assert!(validate_line(bad).is_err(), "should reject: {bad}");
        }
    }

    #[test]
    fn portfolio_lines_require_their_fields() {
        validate_line(
            "{\"seq\":0,\"phase\":\"serve\",\"event\":\"BackendDone\",\
             \"backend\":\"milp\",\"micros\":5,\"cost\":1.5,\"won\":true}",
        )
        .unwrap();
        // A failed leg carries cost:null — still valid.
        validate_line(
            "{\"seq\":0,\"phase\":\"serve\",\"event\":\"BackendDone\",\
             \"backend\":\"annealer\",\"micros\":5,\"cost\":null,\"won\":false}",
        )
        .unwrap();
        validate_line(
            "{\"seq\":0,\"phase\":\"serve\",\"event\":\"Portfolio\",\
             \"backends\":2,\"winner\":\"analytic\",\"micros\":90}",
        )
        .unwrap();
        for bad in [
            // BackendDone missing the backend name.
            "{\"seq\":0,\"phase\":\"serve\",\"event\":\"BackendDone\",\
             \"micros\":5,\"cost\":1.5,\"won\":true}",
            // Non-boolean won.
            "{\"seq\":0,\"phase\":\"serve\",\"event\":\"BackendDone\",\
             \"backend\":\"milp\",\"micros\":5,\"cost\":1.5,\"won\":1}",
            // Cost as a string.
            "{\"seq\":0,\"phase\":\"serve\",\"event\":\"BackendDone\",\
             \"backend\":\"milp\",\"micros\":5,\"cost\":\"x\",\"won\":true}",
            // Portfolio missing the winner.
            "{\"seq\":0,\"phase\":\"serve\",\"event\":\"Portfolio\",\
             \"backends\":2,\"micros\":90}",
            // Portfolio missing the race wall-clock.
            "{\"seq\":0,\"phase\":\"serve\",\"event\":\"Portfolio\",\
             \"backends\":2,\"winner\":\"milp\"}",
        ] {
            assert!(validate_line(bad).is_err(), "should reject: {bad}");
        }
    }

    #[test]
    fn service_admission_lines_require_their_fields() {
        validate_line("{\"seq\":0,\"phase\":\"serve\",\"event\":\"Coalesced\",\"key\":\"ab\"}")
            .unwrap();
        validate_line(
            "{\"seq\":0,\"phase\":\"serve\",\"event\":\"Shed\",\"queued\":3,\"retry_after_ms\":9}",
        )
        .unwrap();
        validate_line(
            "{\"seq\":0,\"phase\":\"serve\",\"event\":\"ShardStats\",\"shard\":0,\"conns\":1,\
             \"accepted\":5,\"completed\":5,\"shed\":0,\"malformed\":0}",
        )
        .unwrap();
        for bad in [
            // Coalesced with a numeric key (must be full-width hex string).
            "{\"seq\":0,\"phase\":\"serve\",\"event\":\"Coalesced\",\"key\":12}",
            // Shed missing the back-off hint.
            "{\"seq\":0,\"phase\":\"serve\",\"event\":\"Shed\",\"queued\":3}",
            // ShardStats missing a counter.
            "{\"seq\":0,\"phase\":\"serve\",\"event\":\"ShardStats\",\"shard\":0,\"conns\":1,\
             \"accepted\":5,\"completed\":5,\"shed\":0}",
        ] {
            assert!(validate_line(bad).is_err(), "should reject: {bad}");
        }
    }

    #[test]
    fn presolve_and_cut_round_lines_require_counters() {
        let ok = "{\"seq\":0,\"phase\":\"solver\",\"event\":\"Presolve\",\"passes\":2,\
                  \"rows_tightened\":3,\"binaries_fixed\":0,\"implications\":1}";
        validate_line(ok).unwrap();
        let ok = "{\"seq\":1,\"phase\":\"solver\",\"event\":\"CutRound\",\"round\":0,\"cuts\":4}";
        validate_line(ok).unwrap();
        for bad in [
            // Presolve missing a counter.
            "{\"seq\":0,\"phase\":\"s\",\"event\":\"Presolve\",\"passes\":2,\
             \"rows_tightened\":3,\"binaries_fixed\":0}",
            // Non-numeric counter.
            "{\"seq\":0,\"phase\":\"s\",\"event\":\"Presolve\",\"passes\":2,\
             \"rows_tightened\":\"x\",\"binaries_fixed\":0,\"implications\":1}",
            // CutRound missing cuts.
            "{\"seq\":0,\"phase\":\"s\",\"event\":\"CutRound\",\"round\":0}",
        ] {
            assert!(validate_line(bad).is_err(), "should reject: {bad}");
        }
    }

    #[test]
    fn parser_rejects_malformed_lines() {
        assert!(parse_line("").is_err());
        assert!(parse_line("{").is_err());
        assert!(parse_line("{\"a\":1,}").is_err());
        assert!(parse_line("{\"a\":1} extra").is_err());
        assert!(parse_line("{\"a\":[1]}").is_err()); // arrays unsupported
        assert!(validate_line("{\"seq\":1}").is_err()); // missing phase/event
        assert!(validate_line("{\"seq\":\"x\",\"phase\":\"p\",\"event\":\"e\"}").is_err());
    }

    #[test]
    fn bnb_node_lines_require_warm_start_fields() {
        let ok = "{\"seq\":0,\"phase\":\"solver\",\"event\":\"BnbNode\",\
                  \"depth\":1,\"warm\":true,\"pivots\":4,\
                  \"refactors\":1,\"etas\":3}";
        let parsed = validate_line(ok).unwrap();
        assert_eq!(parsed.bool_field("warm"), Some(true));
        assert_eq!(parsed.num("pivots"), Some(4.0));
        assert_eq!(parsed.num("refactors"), Some(1.0));
        assert_eq!(parsed.num("etas"), Some(3.0));
        // Missing warm, non-boolean warm, missing pivots, missing
        // factorization counters: all rejected.
        for bad in [
            "{\"seq\":0,\"phase\":\"s\",\"event\":\"BnbNode\",\"depth\":1,\
             \"pivots\":4,\"refactors\":0,\"etas\":0}",
            "{\"seq\":0,\"phase\":\"s\",\"event\":\"BnbNode\",\"depth\":1,\
             \"warm\":1,\"pivots\":4,\"refactors\":0,\"etas\":0}",
            "{\"seq\":0,\"phase\":\"s\",\"event\":\"BnbNode\",\"depth\":1,\
             \"warm\":false,\"refactors\":0,\"etas\":0}",
            "{\"seq\":0,\"phase\":\"s\",\"event\":\"BnbNode\",\"depth\":1,\
             \"warm\":false,\"pivots\":4,\"etas\":0}",
            "{\"seq\":0,\"phase\":\"s\",\"event\":\"BnbNode\",\"depth\":1,\
             \"warm\":false,\"pivots\":4,\"refactors\":0}",
        ] {
            assert!(validate_line(bad).is_err(), "should reject: {bad}");
        }
    }

    #[test]
    fn parser_accepts_scalars() {
        let p =
            parse_line("{\"a\": null, \"b\": false, \"c\": -1.5e2, \"d\": \"x\\\"y\"}").unwrap();
        assert_eq!(p.get("a"), Some(&JsonValue::Null));
        assert_eq!(p.get("b"), Some(&JsonValue::Bool(false)));
        assert_eq!(p.num("c"), Some(-150.0));
        assert_eq!(p.str_field("d"), Some("x\"y"));
        assert_eq!(p.get("missing"), None);
        let empty = parse_line("{}").unwrap();
        assert!(empty.fields.is_empty());
    }

    #[test]
    fn file_sink_round_trips() {
        let dir = std::env::temp_dir().join("fp_obs_test");
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join(format!("trace_{}.jsonl", std::process::id()));
        {
            let t = Tracer::new(JsonlSink::create(&path).unwrap());
            t.emit(
                Phase::Solver,
                Event::BnbNode {
                    depth: 0,
                    warm: false,
                    pivots: 0,
                    refactors: 1,
                    etas: 0,
                },
            );
            t.flush();
        }
        let text = std::fs::read_to_string(&path).unwrap();
        assert_eq!(text.lines().count(), 1);
        validate_line(text.lines().next().unwrap()).unwrap();
        let _ = std::fs::remove_file(&path);
    }
}
