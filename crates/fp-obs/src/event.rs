//! Typed trace events and their JSON rendering.

/// Which pipeline stage emitted an event.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Phase {
    /// Inside a MILP solve (`fp-milp` branch-and-bound).
    Solver,
    /// The successive-augmentation driver (`fp-core::Floorplanner`).
    Augment,
    /// Post-augmentation improvement (`fp-core::improve`).
    Improve,
    /// Global routing and channel adjustment (`fp-route`).
    Route,
    /// The floorplanning service (`fp-serve`): job lifecycle and the
    /// fingerprint solution cache.
    Serve,
}

impl Phase {
    /// Stable lowercase name used in JSONL output.
    #[must_use]
    pub fn as_str(self) -> &'static str {
        match self {
            Phase::Solver => "solver",
            Phase::Augment => "augment",
            Phase::Improve => "improve",
            Phase::Route => "route",
            Phase::Serve => "serve",
        }
    }
}

/// How a driver-level MILP step terminated (mirrors
/// `fp_core::StepOutcome` without depending on it — `fp-obs` sits below
/// every other crate).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum StepTermination {
    /// Solved to proven optimality.
    Optimal,
    /// A limit bound; the best incumbent was used.
    Incumbent,
    /// The solver produced nothing usable; greedy placement stood in.
    GreedyFallback,
}

impl StepTermination {
    /// Stable name used in JSONL output.
    #[must_use]
    pub fn as_str(self) -> &'static str {
        match self {
            StepTermination::Optimal => "optimal",
            StepTermination::Incumbent => "incumbent",
            StepTermination::GreedyFallback => "greedy_fallback",
        }
    }
}

/// One structured trace event.
///
/// Every variant is cheap to construct; emitters behind a disabled
/// [`Tracer`](crate::Tracer) pay only an `Option` check.
#[derive(Debug, Clone, PartialEq)]
pub enum Event {
    /// A MILP solve began (`binaries` integral variables, `constraints`
    /// rows after presolve row filtering).
    SolveStart {
        /// Integral (binary + general integer) variables in the model.
        binaries: usize,
        /// Constraint rows handed to the search.
        constraints: usize,
    },
    /// The root LP relaxation solved to optimality.
    RootLp {
        /// Relaxation objective in the model's own sense.
        objective: f64,
    },
    /// One branch-and-bound node was claimed and its LP relaxation solved.
    BnbNode {
        /// Depth of the node in the search tree (root = 0).
        depth: usize,
        /// Whether the node's LP was warm-started from the parent's basis
        /// (dual simplex) rather than solved by the cold two-phase primal.
        warm: bool,
        /// Simplex pivots spent on this node's LP, wasted warm pivots
        /// included on cold fallbacks.
        pivots: u64,
        /// Basis LU (re)factorizations this node's LP performed (sparse
        /// revised kernel; the dense reference tableau reports `0`).
        refactors: u64,
        /// Eta-file basis updates recorded between refactorizations on
        /// this node's LP (sparse revised kernel only).
        etas: u64,
    },
    /// A new incumbent was installed. Within one solve these are emitted
    /// in improvement order, so the objective sequence is monotone
    /// (decreasing when minimizing, increasing when maximizing).
    Incumbent {
        /// Incumbent objective in the model's own sense.
        objective: f64,
    },
    /// Root presolve and model strengthening finished (emitted once per
    /// MILP solve, before any branch-and-bound node).
    Presolve {
        /// Classic presolve fixpoint passes run.
        passes: usize,
        /// Rows whose big-M / binary coefficients were tightened.
        rows_tightened: usize,
        /// Binaries fixed by 0-1 probing.
        binaries_fixed: usize,
        /// Binary implications harvested by probing.
        implications: usize,
    },
    /// One root cut-separation round added cutting planes to the LP
    /// (round 0 is the unconditional implication-logic round).
    CutRound {
        /// Zero-based separation round index.
        round: usize,
        /// Cuts appended in this round.
        cuts: usize,
    },
    /// A MILP solve finished (also emitted when the solve errors; node
    /// counts then reflect the work done before the error).
    SolveEnd {
        /// Branch-and-bound nodes expanded.
        nodes: usize,
        /// Total simplex pivots.
        simplex_iterations: usize,
        /// Whether the search proved its answer (optimum or infeasible).
        proven: bool,
    },
    /// Terminal outcome of one augmentation step — emitted exactly once
    /// per step by the successive-augmentation driver.
    AugmentStep {
        /// Zero-based step index in execution order.
        step: usize,
        /// Modules placed in this step.
        group: usize,
        /// Covering rectangles the partial floorplan collapsed to.
        obstacles: usize,
        /// 0-1 variables in the step MILP.
        binaries: usize,
        /// Branch-and-bound nodes the step's solve expanded.
        nodes: usize,
        /// How the step concluded.
        outcome: StepTermination,
    },
    /// An augmentation or improvement step fell back to greedy placement
    /// (marker event; the terminal [`Event::AugmentStep`] carries the
    /// same fact in its `outcome`).
    GreedyFallback {
        /// Step index the fallback happened in.
        step: usize,
    },
    /// One round of the improvement loop finished.
    ImproveRound {
        /// Zero-based round index.
        round: usize,
        /// Whether the round's candidate was accepted.
        accepted: bool,
        /// Chip height after the round.
        height: f64,
    },
    /// Global routing began.
    RouteStart {
        /// Nets to route.
        nets: usize,
        /// Cells in the channel position graph.
        cells: usize,
        /// Edges in the channel position graph.
        edges: usize,
    },
    /// One net was routed.
    RouteNet {
        /// Net index ([`fp_netlist::NetId`] index).
        net: usize,
        /// Routed length.
        length: f64,
        /// Two-pin segments the net decomposed into.
        segments: usize,
    },
    /// Channel widths were adjusted after routing (paper §3.2 last step).
    ChannelAdjust {
        /// Total extra width added across columns.
        extra_width: f64,
        /// Total extra height added across rows.
        extra_height: f64,
        /// Edges routed beyond their preliminary capacity.
        overflowed_edges: usize,
    },
    /// A named span of work completed.
    Span {
        /// Span name (static, from the instrumentation site).
        name: &'static str,
        /// Elapsed wall time in microseconds.
        micros: u64,
    },
    /// A service job's instance fingerprint was found in the solution
    /// cache (`fp-serve`): the job is answered without a MILP solve.
    CacheHit {
        /// Canonical FNV-1a instance fingerprint (rendered as fixed-width
        /// hex in JSONL so all 64 bits survive the f64 number type).
        key: u64,
    },
    /// A service job's instance fingerprint was absent from the solution
    /// cache (`fp-serve`): the full pipeline runs.
    CacheMiss {
        /// Canonical FNV-1a instance fingerprint.
        key: u64,
    },
    /// A service job finished and its response was handed back
    /// (`fp-serve`). Emitted exactly once per job, including failures.
    JobDone {
        /// Client-assigned job id.
        id: u64,
        /// Service time in microseconds, measured from job submission
        /// (queue wait included).
        micros: u64,
        /// Whether the job exceeded its budget and degraded to the greedy
        /// skyline placement (or to a partially-greedy run).
        degraded: bool,
        /// Whether the response came from the solution cache.
        cached: bool,
    },
    /// A service job joined an identical in-flight solve instead of
    /// queueing its own (`fp-serve` single-flight coalescing): the job
    /// will be answered by the leader's result when it lands.
    Coalesced {
        /// Canonical FNV-1a instance fingerprint shared with the leader.
        key: u64,
    },
    /// A service job was load-shed at admission (`fp-serve`): the queue
    /// was full, so the job was answered immediately with a typed
    /// `retry_after_ms` hint instead of being accepted.
    Shed {
        /// Jobs queued (or in flight) when the shed decision was made.
        queued: usize,
        /// Suggested client back-off in milliseconds.
        retry_after_ms: u64,
    },
    /// One event-loop shard's lifetime accounting, emitted when the shard
    /// drains and exits (`fp-serve` sharded server shutdown).
    ShardStats {
        /// Zero-based shard index.
        shard: usize,
        /// Connections this shard ever owned.
        conns: usize,
        /// Well-formed requests decoded (accepted for processing).
        accepted: u64,
        /// Responses delivered for accepted requests (includes failures
        /// and coalesced fan-outs; excludes sheds).
        completed: u64,
        /// Requests answered with a load-shed response.
        shed: u64,
        /// Malformed lines answered with `ok:false`.
        malformed: u64,
    },
    /// One portfolio backend finished its leg of a race (`fp-serve`
    /// solver portfolio). Emitted once per backend per raced job,
    /// including backends that lost or were cancelled.
    BackendDone {
        /// Stable backend name (`"milp"`, `"annealer"`, `"analytic"`).
        backend: &'static str,
        /// Wall time this backend's leg ran, in microseconds.
        micros: u64,
        /// Objective cost of the backend's floorplan (`NaN` when the
        /// backend produced nothing — cancelled or failed).
        cost: f64,
        /// Whether this backend's result answered the job.
        won: bool,
    },
    /// A portfolio race concluded (`fp-serve`): every backend leg is
    /// accounted for and the winner's floorplan answers the job.
    Portfolio {
        /// Backends raced.
        backends: usize,
        /// Stable name of the winning backend (`"none"` when every leg
        /// failed and the greedy degradation stood in).
        winner: &'static str,
        /// Wall time of the whole race, in microseconds.
        micros: u64,
    },
    /// A delta edit script was applied to a base instance (`fp-serve` ECO
    /// path): the edited instance is now the job being solved.
    DeltaApply {
        /// Canonical FNV-1a fingerprint of the *base* instance.
        base_key: u64,
        /// Edit operations in the script.
        ops: usize,
        /// Modules the script touched (upserted or removed).
        touched: usize,
        /// Modules in the edited instance.
        total: usize,
    },
    /// An ECO job concluded (`fp-serve`): either the incremental driver
    /// re-placed a neighborhood of the base placement, or the job fell
    /// back to a scratch solve.
    EcoJob {
        /// Client-assigned job id.
        id: u64,
        /// Canonical FNV-1a fingerprint of the base instance.
        base_key: u64,
        /// Whether the base placement was found in the solution cache and
        /// the incremental path ran (`false` = scratch fallback).
        base_hit: bool,
        /// Modules re-placed by the incremental driver (`total` on a
        /// scratch fallback).
        replaced: usize,
        /// Modules in the edited instance.
        total: usize,
        /// Cross-job basis reuse tier of the first re-solve LP
        /// (`"hot"` / `"warm"` / `"cold"`).
        basis: &'static str,
    },
}

/// Discriminant-only view of [`Event`], used for counters and filtering.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum EventKind {
    /// [`Event::SolveStart`]
    SolveStart,
    /// [`Event::RootLp`]
    RootLp,
    /// [`Event::BnbNode`]
    BnbNode,
    /// [`Event::Incumbent`]
    Incumbent,
    /// [`Event::SolveEnd`]
    SolveEnd,
    /// [`Event::AugmentStep`]
    AugmentStep,
    /// [`Event::GreedyFallback`]
    GreedyFallback,
    /// [`Event::ImproveRound`]
    ImproveRound,
    /// [`Event::RouteStart`]
    RouteStart,
    /// [`Event::RouteNet`]
    RouteNet,
    /// [`Event::ChannelAdjust`]
    ChannelAdjust,
    /// [`Event::Span`]
    Span,
    /// [`Event::CacheHit`]
    CacheHit,
    /// [`Event::CacheMiss`]
    CacheMiss,
    /// [`Event::JobDone`]
    JobDone,
    /// [`Event::Presolve`]
    Presolve,
    /// [`Event::CutRound`]
    CutRound,
    /// [`Event::Coalesced`]
    Coalesced,
    /// [`Event::Shed`]
    Shed,
    /// [`Event::ShardStats`]
    ShardStats,
    /// [`Event::BackendDone`]
    BackendDone,
    /// [`Event::Portfolio`]
    Portfolio,
    /// [`Event::DeltaApply`]
    DeltaApply,
    /// [`Event::EcoJob`]
    EcoJob,
}

impl EventKind {
    /// Number of event kinds (sizes the per-kind counter array).
    pub const COUNT: usize = 24;

    /// Every kind, in counter-index order.
    pub const ALL: [EventKind; EventKind::COUNT] = [
        EventKind::SolveStart,
        EventKind::RootLp,
        EventKind::BnbNode,
        EventKind::Incumbent,
        EventKind::SolveEnd,
        EventKind::AugmentStep,
        EventKind::GreedyFallback,
        EventKind::ImproveRound,
        EventKind::RouteStart,
        EventKind::RouteNet,
        EventKind::ChannelAdjust,
        EventKind::Span,
        EventKind::CacheHit,
        EventKind::CacheMiss,
        EventKind::JobDone,
        EventKind::Presolve,
        EventKind::CutRound,
        EventKind::Coalesced,
        EventKind::Shed,
        EventKind::ShardStats,
        EventKind::BackendDone,
        EventKind::Portfolio,
        EventKind::DeltaApply,
        EventKind::EcoJob,
    ];

    /// Dense index of this kind in [`EventKind::ALL`].
    #[must_use]
    pub fn index(self) -> usize {
        match self {
            EventKind::SolveStart => 0,
            EventKind::RootLp => 1,
            EventKind::BnbNode => 2,
            EventKind::Incumbent => 3,
            EventKind::SolveEnd => 4,
            EventKind::AugmentStep => 5,
            EventKind::GreedyFallback => 6,
            EventKind::ImproveRound => 7,
            EventKind::RouteStart => 8,
            EventKind::RouteNet => 9,
            EventKind::ChannelAdjust => 10,
            EventKind::Span => 11,
            EventKind::CacheHit => 12,
            EventKind::CacheMiss => 13,
            EventKind::JobDone => 14,
            EventKind::Presolve => 15,
            EventKind::CutRound => 16,
            EventKind::Coalesced => 17,
            EventKind::Shed => 18,
            EventKind::ShardStats => 19,
            EventKind::BackendDone => 20,
            EventKind::Portfolio => 21,
            EventKind::DeltaApply => 22,
            EventKind::EcoJob => 23,
        }
    }

    /// Stable name used as the `event` field in JSONL output.
    #[must_use]
    pub fn name(self) -> &'static str {
        match self {
            EventKind::SolveStart => "SolveStart",
            EventKind::RootLp => "RootLp",
            EventKind::BnbNode => "BnbNode",
            EventKind::Incumbent => "Incumbent",
            EventKind::SolveEnd => "SolveEnd",
            EventKind::AugmentStep => "AugmentStep",
            EventKind::GreedyFallback => "GreedyFallback",
            EventKind::ImproveRound => "ImproveRound",
            EventKind::RouteStart => "RouteStart",
            EventKind::RouteNet => "RouteNet",
            EventKind::ChannelAdjust => "ChannelAdjust",
            EventKind::Span => "Span",
            EventKind::CacheHit => "CacheHit",
            EventKind::CacheMiss => "CacheMiss",
            EventKind::JobDone => "JobDone",
            EventKind::Presolve => "Presolve",
            EventKind::CutRound => "CutRound",
            EventKind::Coalesced => "Coalesced",
            EventKind::Shed => "Shed",
            EventKind::ShardStats => "ShardStats",
            EventKind::BackendDone => "BackendDone",
            EventKind::Portfolio => "Portfolio",
            EventKind::DeltaApply => "DeltaApply",
            EventKind::EcoJob => "EcoJob",
        }
    }
}

impl Event {
    /// The discriminant of this event.
    #[must_use]
    pub fn kind(&self) -> EventKind {
        match self {
            Event::SolveStart { .. } => EventKind::SolveStart,
            Event::RootLp { .. } => EventKind::RootLp,
            Event::BnbNode { .. } => EventKind::BnbNode,
            Event::Incumbent { .. } => EventKind::Incumbent,
            Event::SolveEnd { .. } => EventKind::SolveEnd,
            Event::AugmentStep { .. } => EventKind::AugmentStep,
            Event::GreedyFallback { .. } => EventKind::GreedyFallback,
            Event::ImproveRound { .. } => EventKind::ImproveRound,
            Event::RouteStart { .. } => EventKind::RouteStart,
            Event::RouteNet { .. } => EventKind::RouteNet,
            Event::ChannelAdjust { .. } => EventKind::ChannelAdjust,
            Event::Span { .. } => EventKind::Span,
            Event::CacheHit { .. } => EventKind::CacheHit,
            Event::CacheMiss { .. } => EventKind::CacheMiss,
            Event::JobDone { .. } => EventKind::JobDone,
            Event::Presolve { .. } => EventKind::Presolve,
            Event::CutRound { .. } => EventKind::CutRound,
            Event::Coalesced { .. } => EventKind::Coalesced,
            Event::Shed { .. } => EventKind::Shed,
            Event::ShardStats { .. } => EventKind::ShardStats,
            Event::BackendDone { .. } => EventKind::BackendDone,
            Event::Portfolio { .. } => EventKind::Portfolio,
            Event::DeltaApply { .. } => EventKind::DeltaApply,
            Event::EcoJob { .. } => EventKind::EcoJob,
        }
    }
}

/// A sequence-stamped event as delivered to sinks.
#[derive(Debug, Clone, PartialEq)]
pub struct Record {
    /// Monotone per-tracer sequence number (dense from 0).
    pub seq: u64,
    /// Pipeline stage that emitted the event.
    pub phase: Phase,
    /// The event itself.
    pub event: Event,
}

/// Formats an `f64` as a JSON value (`null` for non-finite values, which
/// JSON cannot represent).
fn jnum(v: f64) -> String {
    if v.is_finite() {
        format!("{v}")
    } else {
        "null".to_string()
    }
}

impl Record {
    /// Renders the record as one flat JSON object. Every line carries the
    /// `seq`, `phase` and `event` fields; the remaining keys are the
    /// event's own payload.
    #[must_use]
    pub fn to_json(&self) -> String {
        let mut s = format!(
            "{{\"seq\":{},\"phase\":\"{}\",\"event\":\"{}\"",
            self.seq,
            self.phase.as_str(),
            self.event.kind().name()
        );
        let mut field = |key: &str, value: String| {
            s.push_str(",\"");
            s.push_str(key);
            s.push_str("\":");
            s.push_str(&value);
        };
        match &self.event {
            Event::SolveStart {
                binaries,
                constraints,
            } => {
                field("binaries", binaries.to_string());
                field("constraints", constraints.to_string());
            }
            Event::RootLp { objective } => field("objective", jnum(*objective)),
            Event::BnbNode {
                depth,
                warm,
                pivots,
                refactors,
                etas,
            } => {
                field("depth", depth.to_string());
                field("warm", warm.to_string());
                field("pivots", pivots.to_string());
                field("refactors", refactors.to_string());
                field("etas", etas.to_string());
            }
            Event::Incumbent { objective } => field("objective", jnum(*objective)),
            Event::Presolve {
                passes,
                rows_tightened,
                binaries_fixed,
                implications,
            } => {
                field("passes", passes.to_string());
                field("rows_tightened", rows_tightened.to_string());
                field("binaries_fixed", binaries_fixed.to_string());
                field("implications", implications.to_string());
            }
            Event::CutRound { round, cuts } => {
                field("round", round.to_string());
                field("cuts", cuts.to_string());
            }
            Event::SolveEnd {
                nodes,
                simplex_iterations,
                proven,
            } => {
                field("nodes", nodes.to_string());
                field("simplex_iterations", simplex_iterations.to_string());
                field("proven", proven.to_string());
            }
            Event::AugmentStep {
                step,
                group,
                obstacles,
                binaries,
                nodes,
                outcome,
            } => {
                field("step", step.to_string());
                field("group", group.to_string());
                field("obstacles", obstacles.to_string());
                field("binaries", binaries.to_string());
                field("nodes", nodes.to_string());
                field("outcome", format!("\"{}\"", outcome.as_str()));
            }
            Event::GreedyFallback { step } => field("step", step.to_string()),
            Event::ImproveRound {
                round,
                accepted,
                height,
            } => {
                field("round", round.to_string());
                field("accepted", accepted.to_string());
                field("height", jnum(*height));
            }
            Event::RouteStart { nets, cells, edges } => {
                field("nets", nets.to_string());
                field("cells", cells.to_string());
                field("edges", edges.to_string());
            }
            Event::RouteNet {
                net,
                length,
                segments,
            } => {
                field("net", net.to_string());
                field("length", jnum(*length));
                field("segments", segments.to_string());
            }
            Event::ChannelAdjust {
                extra_width,
                extra_height,
                overflowed_edges,
            } => {
                field("extra_width", jnum(*extra_width));
                field("extra_height", jnum(*extra_height));
                field("overflowed_edges", overflowed_edges.to_string());
            }
            Event::Span { name, micros } => {
                field("name", format!("\"{name}\""));
                field("micros", micros.to_string());
            }
            // Fingerprints are full 64-bit values; a JSON number would be
            // parsed back as f64 and lose the low bits, so they travel as
            // fixed-width hex strings.
            Event::CacheHit { key } => field("key", format!("\"{key:016x}\"")),
            Event::CacheMiss { key } => field("key", format!("\"{key:016x}\"")),
            Event::JobDone {
                id,
                micros,
                degraded,
                cached,
            } => {
                field("id", id.to_string());
                field("micros", micros.to_string());
                field("degraded", degraded.to_string());
                field("cached", cached.to_string());
            }
            Event::Coalesced { key } => field("key", format!("\"{key:016x}\"")),
            Event::Shed {
                queued,
                retry_after_ms,
            } => {
                field("queued", queued.to_string());
                field("retry_after_ms", retry_after_ms.to_string());
            }
            Event::ShardStats {
                shard,
                conns,
                accepted,
                completed,
                shed,
                malformed,
            } => {
                field("shard", shard.to_string());
                field("conns", conns.to_string());
                field("accepted", accepted.to_string());
                field("completed", completed.to_string());
                field("shed", shed.to_string());
                field("malformed", malformed.to_string());
            }
            Event::BackendDone {
                backend,
                micros,
                cost,
                won,
            } => {
                field("backend", format!("\"{backend}\""));
                field("micros", micros.to_string());
                field("cost", jnum(*cost));
                field("won", won.to_string());
            }
            Event::Portfolio {
                backends,
                winner,
                micros,
            } => {
                field("backends", backends.to_string());
                field("winner", format!("\"{winner}\""));
                field("micros", micros.to_string());
            }
            Event::DeltaApply {
                base_key,
                ops,
                touched,
                total,
            } => {
                field("base_key", format!("\"{base_key:016x}\""));
                field("ops", ops.to_string());
                field("touched", touched.to_string());
                field("total", total.to_string());
            }
            Event::EcoJob {
                id,
                base_key,
                base_hit,
                replaced,
                total,
                basis,
            } => {
                field("id", id.to_string());
                field("base_key", format!("\"{base_key:016x}\""));
                field("base_hit", base_hit.to_string());
                field("replaced", replaced.to_string());
                field("total", total.to_string());
                field("basis", format!("\"{basis}\""));
            }
        }
        s.push('}');
        s
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn kinds_are_dense_and_named() {
        for (i, kind) in EventKind::ALL.iter().enumerate() {
            assert_eq!(kind.index(), i);
            assert!(!kind.name().is_empty());
        }
    }

    #[test]
    fn json_has_required_fields() {
        let r = Record {
            seq: 7,
            phase: Phase::Augment,
            event: Event::AugmentStep {
                step: 2,
                group: 3,
                obstacles: 4,
                binaries: 30,
                nodes: 99,
                outcome: StepTermination::Optimal,
            },
        };
        let json = r.to_json();
        assert!(json.starts_with('{') && json.ends_with('}'));
        assert!(json.contains("\"seq\":7"));
        assert!(json.contains("\"phase\":\"augment\""));
        assert!(json.contains("\"event\":\"AugmentStep\""));
        assert!(json.contains("\"outcome\":\"optimal\""));
        assert!(json.contains("\"nodes\":99"));
    }

    #[test]
    fn cache_keys_render_as_full_width_hex() {
        let r = Record {
            seq: 1,
            phase: Phase::Serve,
            event: Event::CacheHit {
                key: 0xdead_beef_0000_0001,
            },
        };
        let json = r.to_json();
        assert!(json.contains("\"phase\":\"serve\""), "{json}");
        assert!(json.contains("\"key\":\"deadbeef00000001\""), "{json}");
        let r = Record {
            seq: 2,
            phase: Phase::Serve,
            event: Event::JobDone {
                id: 42,
                micros: 1500,
                degraded: true,
                cached: false,
            },
        };
        let json = r.to_json();
        assert!(json.contains("\"id\":42"), "{json}");
        assert!(json.contains("\"degraded\":true"), "{json}");
        assert!(json.contains("\"cached\":false"), "{json}");
    }

    #[test]
    fn portfolio_events_render() {
        let r = Record {
            seq: 3,
            phase: Phase::Serve,
            event: Event::BackendDone {
                backend: "analytic",
                micros: 812,
                cost: 36.5,
                won: true,
            },
        };
        let json = r.to_json();
        assert!(json.contains("\"event\":\"BackendDone\""), "{json}");
        assert!(json.contains("\"backend\":\"analytic\""), "{json}");
        assert!(json.contains("\"cost\":36.5"), "{json}");
        assert!(json.contains("\"won\":true"), "{json}");
        // A failed leg has no cost: NaN renders as null.
        let r = Record {
            seq: 4,
            phase: Phase::Serve,
            event: Event::BackendDone {
                backend: "milp",
                micros: 9,
                cost: f64::NAN,
                won: false,
            },
        };
        assert!(r.to_json().contains("\"cost\":null"));
        let r = Record {
            seq: 5,
            phase: Phase::Serve,
            event: Event::Portfolio {
                backends: 3,
                winner: "annealer",
                micros: 1200,
            },
        };
        let json = r.to_json();
        assert!(json.contains("\"event\":\"Portfolio\""), "{json}");
        assert!(json.contains("\"backends\":3"), "{json}");
        assert!(json.contains("\"winner\":\"annealer\""), "{json}");
    }

    #[test]
    fn non_finite_floats_become_null() {
        let r = Record {
            seq: 0,
            phase: Phase::Solver,
            event: Event::Incumbent {
                objective: f64::INFINITY,
            },
        };
        assert!(r.to_json().contains("\"objective\":null"));
    }

    #[test]
    fn float_rendering_is_plain() {
        assert_eq!(jnum(1.0), "1");
        assert_eq!(jnum(-2.5), "-2.5");
        assert_eq!(jnum(f64::NAN), "null");
    }
}
