//! Human-readable run summary rendered from collected records.

use crate::event::{Event, Record, StepTermination};

/// Rolls a record stream up into a short per-phase report.
///
/// The output is stable plain text intended for `fp-cli --summary` and
/// log files, one section per pipeline phase that actually emitted
/// events.
#[must_use]
pub fn render_summary(records: &[Record]) -> String {
    let mut solves = 0usize;
    let mut proven = 0usize;
    let mut solver_nodes = 0usize;
    let mut simplex = 0usize;
    let mut incumbents = 0usize;
    let mut bnb_nodes = 0usize;
    let mut warm_bnb = 0usize;
    let mut node_refactors = 0u64;
    let mut node_etas = 0u64;
    let mut presolves = 0usize;
    let mut rows_tightened = 0usize;
    let mut binaries_fixed = 0usize;
    let mut cut_rounds = 0usize;
    let mut cuts = 0usize;

    let mut steps = 0usize;
    let mut optimal = 0usize;
    let mut incumbent_steps = 0usize;
    let mut fallback_steps = 0usize;
    let mut max_binaries = 0usize;
    let mut augment_nodes = 0usize;

    let mut rounds = 0usize;
    let mut accepted_rounds = 0usize;
    let mut final_height = None;

    let mut nets = 0usize;
    let mut wirelength = 0.0f64;
    let mut segments = 0usize;
    let mut adjusts = 0usize;
    let mut extra = (0.0f64, 0.0f64);

    let mut jobs = 0usize;
    let mut degraded_jobs = 0usize;
    let mut cached_jobs = 0usize;
    let mut job_micros = 0u64;
    let mut cache_hits = 0usize;
    let mut cache_misses = 0usize;
    let mut coalesced = 0usize;
    let mut shed = 0usize;
    let mut shards = 0usize;

    let mut eco_jobs = 0usize;
    let mut eco_hits = 0usize;
    let mut eco_replaced = 0usize;
    let mut eco_total = 0usize;
    let mut eco_hot = 0usize;
    let mut eco_warm = 0usize;

    let mut races = 0usize;
    let mut race_micros = 0u64;
    // Per-backend (name, legs, wins, wall-clock micros) in first-seen order.
    let mut backends: Vec<(&'static str, usize, usize, u64)> = Vec::new();

    for record in records {
        match &record.event {
            Event::SolveStart { .. } => solves += 1,
            Event::SolveEnd {
                nodes,
                simplex_iterations,
                proven: p,
            } => {
                solver_nodes += nodes;
                simplex += simplex_iterations;
                proven += usize::from(*p);
            }
            Event::Incumbent { .. } => incumbents += 1,
            Event::BnbNode {
                warm,
                refactors,
                etas,
                ..
            } => {
                bnb_nodes += 1;
                warm_bnb += usize::from(*warm);
                node_refactors += refactors;
                node_etas += etas;
            }
            Event::Presolve {
                rows_tightened: rt,
                binaries_fixed: bf,
                ..
            } => {
                presolves += 1;
                rows_tightened += rt;
                binaries_fixed += bf;
            }
            Event::CutRound { cuts: c, .. } => {
                cut_rounds += 1;
                cuts += c;
            }
            Event::AugmentStep {
                binaries,
                nodes,
                outcome,
                ..
            } => {
                steps += 1;
                max_binaries = max_binaries.max(*binaries);
                augment_nodes += nodes;
                match outcome {
                    StepTermination::Optimal => optimal += 1,
                    StepTermination::Incumbent => incumbent_steps += 1,
                    StepTermination::GreedyFallback => fallback_steps += 1,
                }
            }
            Event::ImproveRound {
                accepted, height, ..
            } => {
                rounds += 1;
                accepted_rounds += usize::from(*accepted);
                final_height = Some(*height);
            }
            Event::RouteNet {
                length,
                segments: s,
                ..
            } => {
                nets += 1;
                wirelength += length;
                segments += s;
            }
            Event::ChannelAdjust {
                extra_width,
                extra_height,
                ..
            } => {
                adjusts += 1;
                extra.0 += extra_width;
                extra.1 += extra_height;
            }
            Event::CacheHit { .. } => cache_hits += 1,
            Event::CacheMiss { .. } => cache_misses += 1,
            Event::Coalesced { .. } => coalesced += 1,
            Event::Shed { .. } => shed += 1,
            Event::ShardStats { .. } => shards += 1,
            Event::JobDone {
                micros,
                degraded,
                cached,
                ..
            } => {
                jobs += 1;
                degraded_jobs += usize::from(*degraded);
                cached_jobs += usize::from(*cached);
                job_micros += micros;
            }
            Event::BackendDone {
                backend,
                micros,
                won,
                ..
            } => {
                let entry = match backends.iter_mut().find(|e| e.0 == *backend) {
                    Some(e) => e,
                    None => {
                        backends.push((backend, 0, 0, 0));
                        backends.last_mut().expect("just pushed")
                    }
                };
                entry.1 += 1;
                entry.2 += usize::from(*won);
                entry.3 += micros;
            }
            Event::Portfolio { micros, .. } => {
                races += 1;
                race_micros += micros;
            }
            Event::EcoJob {
                base_hit,
                replaced,
                total,
                basis,
                ..
            } => {
                eco_jobs += 1;
                eco_hits += usize::from(*base_hit);
                eco_replaced += replaced;
                eco_total += total;
                eco_hot += usize::from(*basis == "hot");
                eco_warm += usize::from(*basis == "warm");
            }
            _ => {}
        }
    }

    let mut out = String::new();
    out.push_str(&format!("trace summary: {} events\n", records.len()));
    if solves > 0 {
        // Node-level records are optional (summaries are also rendered from
        // streams that only carry solve boundaries), so the warm-start
        // rollup only appears when BnbNode events are present.
        let warm = if bnb_nodes > 0 {
            format!(
                ", {warm_bnb}/{bnb_nodes} warm node solves, \
                 {node_refactors} refactorizations, {node_etas} eta updates"
            )
        } else {
            String::new()
        };
        out.push_str(&format!(
            "  solver:  {solves} solves ({proven} proven optimal), \
             {solver_nodes} nodes, {simplex} simplex iterations, \
             {incumbents} incumbent updates{warm}\n"
        ));
        // Strengthening rollup: only when the stream carries Presolve or
        // CutRound records (older traces and strengthen-off runs have none
        // worth reporting).
        if presolves > 0 || cut_rounds > 0 {
            out.push_str(&format!(
                "  presolve: {presolves} strengthened roots, \
                 {rows_tightened} rows tightened, \
                 {binaries_fixed} binaries fixed, \
                 {cuts} cuts in {cut_rounds} rounds\n"
            ));
        }
    }
    if steps > 0 {
        out.push_str(&format!(
            "  augment: {steps} steps ({optimal} optimal, \
             {incumbent_steps} incumbent, {fallback_steps} greedy fallback), \
             max {max_binaries} binaries/step, {augment_nodes} nodes\n"
        ));
    }
    if rounds > 0 {
        let height = final_height
            .map(|h| format!(", final height {h:.3}"))
            .unwrap_or_default();
        out.push_str(&format!(
            "  improve: {rounds} rounds ({accepted_rounds} accepted){height}\n"
        ));
    }
    if nets > 0 || adjusts > 0 {
        out.push_str(&format!(
            "  route:   {nets} nets, wirelength {wirelength:.3}, \
             {segments} segments, {adjusts} channel adjustments \
             (+{:.3} w, +{:.3} h)\n",
            extra.0, extra.1
        ));
    }
    if jobs > 0 || cache_hits > 0 || cache_misses > 0 || shed > 0 || coalesced > 0 {
        let mean = if jobs > 0 {
            job_micros / jobs as u64
        } else {
            0
        };
        let shards = if shards > 0 {
            format!(", {shards} shards")
        } else {
            String::new()
        };
        out.push_str(&format!(
            "  serve:   {jobs} jobs ({cached_jobs} cached, \
             {degraded_jobs} degraded), cache {cache_hits} hits / \
             {cache_misses} misses, {coalesced} coalesced, {shed} shed, \
             mean {mean} us/job{shards}\n"
        ));
    }
    if eco_jobs > 0 {
        out.push_str(&format!(
            "  eco:     {eco_jobs} delta jobs ({eco_hits} base hits), \
             replaced {eco_replaced}/{eco_total} modules, \
             basis {eco_hot} hot / {eco_warm} warm\n"
        ));
    }
    if races > 0 || !backends.is_empty() {
        let legs: Vec<String> = backends
            .iter()
            .map(|(name, legs, wins, micros)| format!("{name} {wins}/{legs} wins ({micros} us)"))
            .collect();
        out.push_str(&format!(
            "  portfolio: {races} races ({race_micros} us total); {}\n",
            legs.join(", ")
        ));
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::event::Phase;

    fn rec(seq: u64, phase: Phase, event: Event) -> Record {
        Record { seq, phase, event }
    }

    #[test]
    fn summary_rolls_up_each_phase() {
        let records = vec![
            rec(
                0,
                Phase::Solver,
                Event::SolveStart {
                    binaries: 8,
                    constraints: 20,
                },
            ),
            rec(1, Phase::Solver, Event::Incumbent { objective: 5.0 }),
            rec(
                2,
                Phase::Solver,
                Event::SolveEnd {
                    nodes: 7,
                    simplex_iterations: 90,
                    proven: true,
                },
            ),
            rec(
                3,
                Phase::Augment,
                Event::AugmentStep {
                    step: 0,
                    group: 2,
                    obstacles: 0,
                    binaries: 8,
                    nodes: 7,
                    outcome: StepTermination::Optimal,
                },
            ),
            rec(
                4,
                Phase::Augment,
                Event::AugmentStep {
                    step: 1,
                    group: 2,
                    obstacles: 2,
                    binaries: 30,
                    nodes: 0,
                    outcome: StepTermination::GreedyFallback,
                },
            ),
            rec(
                5,
                Phase::Improve,
                Event::ImproveRound {
                    round: 0,
                    accepted: true,
                    height: 11.5,
                },
            ),
            rec(
                6,
                Phase::Route,
                Event::RouteNet {
                    net: 0,
                    length: 4.5,
                    segments: 2,
                },
            ),
            rec(
                7,
                Phase::Route,
                Event::ChannelAdjust {
                    extra_width: 1.0,
                    extra_height: 0.5,
                    overflowed_edges: 2,
                },
            ),
        ];
        let text = render_summary(&records);
        assert!(text.contains("8 events"), "{text}");
        assert!(text.contains("1 solves (1 proven optimal)"), "{text}");
        assert!(text.contains("7 nodes"), "{text}");
        assert!(text.contains("2 steps (1 optimal"), "{text}");
        assert!(text.contains("1 greedy fallback"), "{text}");
        assert!(text.contains("max 30 binaries/step"), "{text}");
        assert!(text.contains("1 rounds (1 accepted)"), "{text}");
        assert!(text.contains("final height 11.500"), "{text}");
        assert!(text.contains("wirelength 4.500"), "{text}");
        assert!(text.contains("1 channel adjustments"), "{text}");
    }

    #[test]
    fn empty_trace_summarizes_to_header_only() {
        let text = render_summary(&[]);
        assert_eq!(text, "trace summary: 0 events\n");
    }

    #[test]
    fn warm_node_rollup_appears_with_bnb_records() {
        let records = vec![
            rec(
                0,
                Phase::Solver,
                Event::SolveStart {
                    binaries: 4,
                    constraints: 9,
                },
            ),
            rec(
                1,
                Phase::Solver,
                Event::BnbNode {
                    depth: 0,
                    warm: false,
                    pivots: 12,
                    refactors: 2,
                    etas: 10,
                },
            ),
            rec(
                2,
                Phase::Solver,
                Event::BnbNode {
                    depth: 1,
                    warm: true,
                    pivots: 2,
                    refactors: 1,
                    etas: 2,
                },
            ),
            rec(
                3,
                Phase::Solver,
                Event::BnbNode {
                    depth: 1,
                    warm: true,
                    pivots: 3,
                    refactors: 0,
                    etas: 0,
                },
            ),
            rec(
                4,
                Phase::Solver,
                Event::SolveEnd {
                    nodes: 3,
                    simplex_iterations: 17,
                    proven: true,
                },
            ),
        ];
        let text = render_summary(&records);
        assert!(text.contains("2/3 warm node solves"), "{text}");
        assert!(
            text.contains("3 refactorizations, 12 eta updates"),
            "{text}"
        );
        // No Presolve/CutRound records: the strengthening rollup is absent.
        assert!(!text.contains("strengthened roots"), "{text}");
    }

    #[test]
    fn strengthening_rollup_appears_with_presolve_records() {
        let records = vec![
            rec(
                0,
                Phase::Solver,
                Event::SolveStart {
                    binaries: 4,
                    constraints: 9,
                },
            ),
            rec(
                1,
                Phase::Solver,
                Event::Presolve {
                    passes: 3,
                    rows_tightened: 5,
                    binaries_fixed: 1,
                    implications: 2,
                },
            ),
            rec(2, Phase::Solver, Event::CutRound { round: 0, cuts: 2 }),
            rec(3, Phase::Solver, Event::CutRound { round: 1, cuts: 4 }),
            rec(
                4,
                Phase::Solver,
                Event::SolveEnd {
                    nodes: 3,
                    simplex_iterations: 17,
                    proven: true,
                },
            ),
        ];
        let text = render_summary(&records);
        assert!(text.contains("1 strengthened roots"), "{text}");
        assert!(text.contains("5 rows tightened"), "{text}");
        assert!(text.contains("1 binaries fixed"), "{text}");
        assert!(text.contains("6 cuts in 2 rounds"), "{text}");
    }

    #[test]
    fn serve_events_roll_up() {
        let records = vec![
            rec(0, Phase::Serve, Event::CacheMiss { key: 7 }),
            rec(
                1,
                Phase::Serve,
                Event::JobDone {
                    id: 1,
                    micros: 300,
                    degraded: false,
                    cached: false,
                },
            ),
            rec(2, Phase::Serve, Event::CacheHit { key: 7 }),
            rec(
                3,
                Phase::Serve,
                Event::JobDone {
                    id: 2,
                    micros: 100,
                    degraded: true,
                    cached: true,
                },
            ),
            rec(4, Phase::Serve, Event::Coalesced { key: 7 }),
            rec(
                5,
                Phase::Serve,
                Event::Shed {
                    queued: 8,
                    retry_after_ms: 12,
                },
            ),
            rec(
                6,
                Phase::Serve,
                Event::ShardStats {
                    shard: 0,
                    conns: 4,
                    accepted: 3,
                    completed: 2,
                    shed: 1,
                    malformed: 0,
                },
            ),
        ];
        let text = render_summary(&records);
        assert!(text.contains("2 jobs (1 cached, 1 degraded)"), "{text}");
        assert!(text.contains("cache 1 hits / 1 misses"), "{text}");
        assert!(text.contains("1 coalesced, 1 shed"), "{text}");
        assert!(text.contains("mean 200 us/job"), "{text}");
        assert!(text.contains("1 shards"), "{text}");
        // No portfolio events: no portfolio rollup line.
        assert!(!text.contains("portfolio:"), "{text}");
    }

    #[test]
    fn portfolio_events_roll_up_per_backend() {
        let leg = |seq, backend, micros, won| {
            rec(
                seq,
                Phase::Serve,
                Event::BackendDone {
                    backend,
                    micros,
                    cost: 10.0,
                    won,
                },
            )
        };
        let records = vec![
            leg(0, "milp", 900, true),
            leg(1, "annealer", 400, false),
            leg(2, "analytic", 300, false),
            rec(
                3,
                Phase::Serve,
                Event::Portfolio {
                    backends: 3,
                    winner: "milp",
                    micros: 950,
                },
            ),
            leg(4, "milp", 800, false),
            leg(5, "analytic", 250, true),
            rec(
                6,
                Phase::Serve,
                Event::Portfolio {
                    backends: 2,
                    winner: "analytic",
                    micros: 820,
                },
            ),
        ];
        let text = render_summary(&records);
        assert!(
            text.contains("portfolio: 2 races (1770 us total)"),
            "{text}"
        );
        assert!(text.contains("milp 1/2 wins (1700 us)"), "{text}");
        assert!(text.contains("annealer 0/1 wins (400 us)"), "{text}");
        assert!(text.contains("analytic 1/2 wins (550 us)"), "{text}");
    }

    #[test]
    fn eco_events_roll_up() {
        let records = vec![
            rec(
                0,
                Phase::Serve,
                Event::DeltaApply {
                    base_key: 7,
                    ops: 1,
                    touched: 1,
                    total: 12,
                },
            ),
            rec(
                1,
                Phase::Serve,
                Event::EcoJob {
                    id: 1,
                    base_key: 7,
                    base_hit: true,
                    replaced: 2,
                    total: 12,
                    basis: "hot",
                },
            ),
            rec(
                2,
                Phase::Serve,
                Event::EcoJob {
                    id: 2,
                    base_key: 9,
                    base_hit: false,
                    replaced: 12,
                    total: 12,
                    basis: "cold",
                },
            ),
        ];
        let text = render_summary(&records);
        assert!(
            text.contains("eco:     2 delta jobs (1 base hits)"),
            "{text}"
        );
        assert!(text.contains("replaced 14/24 modules"), "{text}");
        assert!(text.contains("basis 1 hot / 0 warm"), "{text}");
    }
}
