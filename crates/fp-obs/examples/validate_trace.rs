//! Validates a JSONL trace file: every line must parse as a flat JSON
//! object carrying `seq`, `phase` and `event` fields.
//!
//! Used by `scripts/check.sh` as a schema sanity check:
//!
//! ```text
//! cargo run -p fp-obs --example validate_trace -- out.jsonl
//! ```
//!
//! Exits non-zero on the first malformed line.

use std::process::ExitCode;

fn main() -> ExitCode {
    let Some(path) = std::env::args().nth(1) else {
        eprintln!("usage: validate_trace <trace.jsonl>");
        return ExitCode::from(2);
    };
    let text = match std::fs::read_to_string(&path) {
        Ok(text) => text,
        Err(err) => {
            eprintln!("validate_trace: cannot read {path}: {err}");
            return ExitCode::from(2);
        }
    };
    let mut count = 0usize;
    for (lineno, line) in text.lines().enumerate() {
        if line.trim().is_empty() {
            continue;
        }
        match fp_obs::validate_line(line) {
            Ok(_) => count += 1,
            Err(err) => {
                eprintln!("{path}:{}: {err}", lineno + 1);
                return ExitCode::FAILURE;
            }
        }
    }
    println!("{path}: {count} valid trace records");
    ExitCode::SUCCESS
}
