//! The service engine: worker pool, single-flight coalescing, admission
//! control, and the in-process client.
//!
//! Every job — whether it arrives over TCP or from an in-process
//! [`Client`] — funnels through [`submit`]: parse and canonicalize on
//! the submitting thread, try to **coalesce** onto an identical
//! in-flight solve, then pass **admission** into the bounded queue
//! (blocking for in-process callers, load-shedding for the event loop).
//! Workers pop jobs, run the degradation ladder in [`process`], and fan
//! the one response out to every waiter of the flight.

use crate::cache::SolutionCache;
use crate::fingerprint::{canonical, fingerprint_of, FingerprintParams};
use crate::portfolio::Backend;
use crate::protocol::{JobRequest, JobResponse};
use crate::queue::{Bounded, PushError};
use crate::singleflight::{Admit, Inflight};
use fp_core::{Floorplan, FloorplanConfig, Floorplanner, Objective, PlacedModule};
use fp_netlist::Netlist;
use fp_obs::{Event, Phase, Tracer};
use std::fmt::Write as _;
use std::path::PathBuf;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{mpsc, Arc};
use std::thread::JoinHandle;
use std::time::{Duration, Instant};

/// Which IO front end [`crate::Server::bind`] runs.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum IoMode {
    /// Sharded event loop: nonblocking sockets, one poll thread per
    /// shard, load-shedding admission. The default.
    Event,
    /// The original two-threads-per-connection design with blocking
    /// admission (kept for comparison benchmarks).
    Threaded,
}

/// Engine configuration.
#[derive(Debug, Clone)]
pub struct ServeConfig {
    /// Worker threads running the floorplanning pipeline.
    pub workers: usize,
    /// Bounded job-queue capacity. The global admission bound: a
    /// shedding submit that finds the queue full answers `overloaded`
    /// with a `retry_after_ms` hint instead of queueing.
    pub queue_capacity: usize,
    /// Solution-cache capacity in entries (0 disables caching).
    pub cache_capacity: usize,
    /// Branch-and-bound node limit per augmentation step.
    pub node_limit: usize,
    /// Per-step solver time-limit cap; jobs with a deadline additionally
    /// clamp every step to the time remaining before it.
    pub time_limit: Duration,
    /// Improvement rounds after augmentation (skipped past a deadline).
    pub improve_rounds: usize,
    /// Whether identical concurrent jobs may share one solve
    /// (single-flight coalescing); requests can opt out per job.
    pub coalesce: bool,
    /// Which TCP front end to run.
    pub io: IoMode,
    /// Event-loop shard (poll thread) count.
    pub shards: usize,
    /// Per-shard bound on decoded-but-unanswered jobs; excess requests
    /// are shed at the shard before touching the global queue.
    pub per_shard_pending: usize,
    /// Longest request line the event loop accepts; a connection that
    /// exceeds it without a newline gets an error response and is
    /// closed (slow-loris / runaway-frame protection).
    pub max_line_bytes: usize,
    /// How long shutdown waits for shards to flush answers to slow
    /// readers before force-closing their connections.
    pub drain_timeout: Duration,
    /// Tracer receiving the service events ([`Event::CacheHit`] /
    /// [`Event::CacheMiss`] / [`Event::JobDone`] / [`Event::Coalesced`] /
    /// [`Event::Shed`] / [`Event::ShardStats`]).
    pub tracer: Tracer,
    /// Solver-portfolio backends to race per job. Empty (the default)
    /// selects the sequential degradation ladder; non-empty replaces the
    /// full-pipeline rung with a race of the listed backends under the
    /// job's deadline (see [`crate::Backend`]).
    pub backends: Vec<Backend>,
    /// ECO jobs whose touched fraction (edited modules / total) exceeds
    /// this threshold solve from scratch instead of incrementally — past
    /// it the "delta" is most of the instance and keeping the base buys
    /// nothing.
    pub eco_threshold: f64,
    /// Solution-cache snapshot file: loaded (if present) on
    /// [`Engine::start`], re-written in the background (atomic
    /// tmp+rename, every 500ms when the cache changed) and once more on
    /// shutdown/drop, so ECO base placements survive a server restart —
    /// even an abrupt one that skips destructors. `None` disables
    /// persistence.
    pub cache_path: Option<PathBuf>,
}

impl Default for ServeConfig {
    fn default() -> Self {
        ServeConfig {
            workers: 2,
            queue_capacity: 64,
            cache_capacity: 128,
            node_limit: 4_000,
            time_limit: Duration::from_secs(10),
            improve_rounds: 1,
            coalesce: true,
            io: IoMode::Event,
            shards: std::thread::available_parallelism()
                .map_or(1, std::num::NonZeroUsize::get)
                .min(4),
            per_shard_pending: 256,
            max_line_bytes: 1 << 20,
            drain_timeout: Duration::from_secs(5),
            tracer: Tracer::disabled(),
            backends: Vec::new(),
            eco_threshold: 0.5,
            cache_path: None,
        }
    }
}

impl ServeConfig {
    /// Sets the worker-thread count (minimum 1).
    #[must_use]
    pub fn with_workers(mut self, workers: usize) -> Self {
        self.workers = workers.max(1);
        self
    }

    /// Sets the solution-cache capacity (0 disables caching).
    #[must_use]
    pub fn with_cache_capacity(mut self, capacity: usize) -> Self {
        self.cache_capacity = capacity;
        self
    }

    /// Sets the bounded job-queue capacity.
    #[must_use]
    pub fn with_queue_capacity(mut self, capacity: usize) -> Self {
        self.queue_capacity = capacity.max(1);
        self
    }

    /// Sets the per-step branch-and-bound node limit.
    #[must_use]
    pub fn with_node_limit(mut self, node_limit: usize) -> Self {
        self.node_limit = node_limit;
        self
    }

    /// Enables or disables single-flight coalescing engine-wide.
    #[must_use]
    pub fn with_coalesce(mut self, on: bool) -> Self {
        self.coalesce = on;
        self
    }

    /// Selects the TCP front end.
    #[must_use]
    pub fn with_io(mut self, io: IoMode) -> Self {
        self.io = io;
        self
    }

    /// Sets the event-loop shard count (minimum 1).
    #[must_use]
    pub fn with_shards(mut self, shards: usize) -> Self {
        self.shards = shards.max(1);
        self
    }

    /// Sets the per-shard pending-job bound (minimum 1).
    #[must_use]
    pub fn with_per_shard_pending(mut self, bound: usize) -> Self {
        self.per_shard_pending = bound.max(1);
        self
    }

    /// Sets the longest accepted request line in bytes (minimum 1 KiB).
    #[must_use]
    pub fn with_max_line_bytes(mut self, bytes: usize) -> Self {
        self.max_line_bytes = bytes.max(1024);
        self
    }

    /// Sets the shutdown drain timeout.
    #[must_use]
    pub fn with_drain_timeout(mut self, timeout: Duration) -> Self {
        self.drain_timeout = timeout;
        self
    }

    /// Installs a tracer for the service events.
    #[must_use]
    pub fn with_tracer(mut self, tracer: Tracer) -> Self {
        self.tracer = tracer;
        self
    }

    /// Sets the solver-portfolio backends raced per job (empty selects
    /// the sequential ladder).
    #[must_use]
    pub fn with_backends(mut self, backends: Vec<Backend>) -> Self {
        self.backends = backends;
        self
    }

    /// Sets the ECO touched-fraction threshold (clamped to `[0, 1]`)
    /// above which delta jobs solve from scratch.
    #[must_use]
    pub fn with_eco_threshold(mut self, threshold: f64) -> Self {
        self.eco_threshold = threshold.clamp(0.0, 1.0);
        self
    }

    /// Sets the solution-cache snapshot file (`None` disables
    /// persistence).
    #[must_use]
    pub fn with_cache_path(mut self, path: Option<PathBuf>) -> Self {
        self.cache_path = path;
        self
    }
}

/// Engine-wide branch-and-bound node counters, split by how each node's LP
/// relaxation was solved (warm dual-simplex restart vs. cold two-phase),
/// plus the root model-strengthening work (rows tightened, binaries fixed,
/// cuts added) accumulated over every step MILP.
/// Relaxed ordering suffices: these are monotone telemetry counters, never
/// used for synchronization.
#[derive(Debug, Default)]
struct SolverCounters {
    warm: AtomicU64,
    cold: AtomicU64,
    refactorizations: AtomicU64,
    eta_updates: AtomicU64,
    rows_tightened: AtomicU64,
    binaries_fixed: AtomicU64,
    cuts_added: AtomicU64,
}

impl SolverCounters {
    fn record(&self, warm: usize, cold: usize) {
        self.warm.fetch_add(warm as u64, Ordering::Relaxed);
        self.cold.fetch_add(cold as u64, Ordering::Relaxed);
    }

    fn record_factorizations(&self, refactorizations: usize, eta_updates: usize) {
        self.refactorizations
            .fetch_add(refactorizations as u64, Ordering::Relaxed);
        self.eta_updates
            .fetch_add(eta_updates as u64, Ordering::Relaxed);
    }

    fn record_strengthening(&self, rows_tightened: usize, binaries_fixed: usize, cuts: usize) {
        self.rows_tightened
            .fetch_add(rows_tightened as u64, Ordering::Relaxed);
        self.binaries_fixed
            .fetch_add(binaries_fixed as u64, Ordering::Relaxed);
        self.cuts_added.fetch_add(cuts as u64, Ordering::Relaxed);
    }

    fn snapshot(&self) -> (u64, u64) {
        (
            self.warm.load(Ordering::Relaxed),
            self.cold.load(Ordering::Relaxed),
        )
    }

    fn strengthening_snapshot(&self) -> (u64, u64, u64) {
        (
            self.rows_tightened.load(Ordering::Relaxed),
            self.binaries_fixed.load(Ordering::Relaxed),
            self.cuts_added.load(Ordering::Relaxed),
        )
    }

    fn factorization_snapshot(&self) -> (u64, u64) {
        (
            self.refactorizations.load(Ordering::Relaxed),
            self.eta_updates.load(Ordering::Relaxed),
        )
    }
}

/// Where one waiter's answer goes.
pub(crate) enum Reply {
    /// An mpsc channel (in-process clients and the threaded front end).
    Channel(mpsc::Sender<JobResponse>),
    /// A connection owned by an event-loop shard: the response line is
    /// handed to the shard's inbox and the shard writes it.
    #[cfg(unix)]
    Shard {
        shard: Arc<crate::shard::ShardShared>,
        conn: u64,
    },
}

impl Reply {
    fn deliver(&self, resp: JobResponse, shed: bool) {
        match self {
            Reply::Channel(tx) => {
                // A gone receiver (client hung up) is not an error.
                let _ = tx.send(resp);
            }
            #[cfg(unix)]
            Reply::Shard { shard, conn } => shard.deliver(*conn, resp.encode(), shed),
        }
    }
}

/// One parked claim on a job's answer: who asked, when (each waiter's
/// `micros` measures *its own* wait), and where to send it.
pub(crate) struct Waiter {
    id: u64,
    submitted: Instant,
    reply: Reply,
}

/// How a finished job finds its waiters.
enum JobRoute {
    /// The waiters (leader first) are parked in the single-flight table
    /// under the job's (`key`, `canon`).
    Flight,
    /// Coalescing was off for this job: the single waiter rides along.
    Direct(Waiter),
}

/// ECO context carried by a delta job: the base instance's identity (for
/// the cache lookup) and the names the delta touched.
pub(crate) struct EcoInfo {
    /// Fingerprint of the base instance under the job's parameters.
    base_key: u64,
    /// Canonical text of the base instance (collision check for the
    /// base-placement cache lookup).
    base_canon: Arc<str>,
    /// Whether the request's `eco_base` pin (if any) matched our computed
    /// base fingerprint; a mismatch means the client's base is not ours
    /// and its placement must not seed the solve.
    base_trusted: bool,
    /// Module names to re-place (edited modules, plus net neighbors when
    /// the objective weighs wirelength).
    touched: Vec<String>,
}

/// One queued job, pre-parsed and canonicalized at submission so workers
/// never re-do front-end work.
pub(crate) struct Job {
    req: JobRequest,
    /// The instance to solve — for ECO jobs, the *edited* netlist (base
    /// with the delta script applied).
    netlist: Netlist,
    canon: Arc<str>,
    key: u64,
    submitted: Instant,
    route: JobRoute,
    /// `Some` for ECO (delta) jobs.
    eco: Option<EcoInfo>,
}

/// How [`submit`] behaves when the queue is full.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub(crate) enum Admission {
    /// Block until there is room (in-process back-pressure).
    Block,
    /// Refuse immediately with a typed `retry_after_ms` response.
    Shed,
}

/// Everything workers and front ends share.
pub(crate) struct Shared {
    pub(crate) queue: Bounded<Job>,
    table: Inflight<Waiter>,
    cache: SolutionCache,
    /// Cross-job root-basis store: every solve publishes its root basis
    /// under the instance fingerprint, ECO re-solves load the base's.
    basis: Arc<fp_milp::BasisStore>,
    solver: SolverCounters,
    submitted: AtomicU64,
    answered: AtomicU64,
    shed: AtomicU64,
    coalesced: AtomicU64,
    /// Exponential moving average of job service time in microseconds;
    /// feeds the `retry_after_ms` estimate.
    ema_micros: AtomicU64,
    pub(crate) config: ServeConfig,
}

/// Monotone job accounting of an [`Engine`].
///
/// Once the engine has drained (after [`Engine::shutdown`]),
/// `submitted == answered + shed` — every submitted job got exactly one
/// response. While running, jobs in flight make `submitted` larger.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct EngineStats {
    /// Jobs handed to [`submit`] (including ones later shed or refused).
    pub submitted: u64,
    /// Responses delivered that were not load-sheds (success, degraded,
    /// failure, and coalesced fan-outs alike).
    pub answered: u64,
    /// Load-shed responses delivered.
    pub shed: u64,
    /// Jobs that joined an existing flight instead of solving
    /// (informational; they are eventually counted in `answered`).
    pub coalesced: u64,
}

/// The worker-pool engine. Dropping it (or calling
/// [`shutdown`](Engine::shutdown)) closes the queue, lets the workers
/// drain every job already accepted, and joins them.
pub struct Engine {
    shared: Arc<Shared>,
    workers: Vec<JoinHandle<()>>,
    /// Dropping this sender is the shutdown signal for the background
    /// cache-persist thread (present only when `cache_path` is set).
    persist_stop: Option<mpsc::Sender<()>>,
    persist: Option<JoinHandle<()>>,
}

impl Engine {
    /// Starts `config.workers` pipeline workers.
    #[must_use]
    pub fn start(config: ServeConfig) -> Self {
        let workers = config.workers.max(1);
        let cache = SolutionCache::new(config.cache_capacity);
        if let Some(path) = &config.cache_path {
            // Best-effort warm start: a missing or partly corrupt
            // snapshot is a cold(er) cache, not a startup failure.
            let _ = cache.load(path);
        }
        let shared = Arc::new(Shared {
            queue: Bounded::new(config.queue_capacity),
            table: Inflight::new(),
            cache,
            basis: Arc::new(fp_milp::BasisStore::new(256)),
            solver: SolverCounters::default(),
            submitted: AtomicU64::new(0),
            answered: AtomicU64::new(0),
            shed: AtomicU64::new(0),
            coalesced: AtomicU64::new(0),
            ema_micros: AtomicU64::new(0),
            config,
        });
        let workers = (0..workers)
            .map(|_| {
                let shared = Arc::clone(&shared);
                std::thread::spawn(move || worker_loop(&shared))
            })
            .collect();
        // Background persistence: snapshot the cache (atomic tmp+rename)
        // whenever it changed, so even a SIGKILL'd server restarts from a
        // recent snapshot instead of relying solely on the drop-time save
        // (which a killed process never reaches).
        let (persist_stop, persist) = if shared.config.cache_path.is_some() {
            let (tx, rx) = mpsc::channel::<()>();
            let shared = Arc::clone(&shared);
            let handle = std::thread::spawn(move || {
                let mut saved = shared.cache.generation();
                loop {
                    match rx.recv_timeout(Duration::from_millis(500)) {
                        Err(mpsc::RecvTimeoutError::Timeout) => {
                            let generation = shared.cache.generation();
                            if generation != saved {
                                if let Some(path) = &shared.config.cache_path {
                                    let _ = shared.cache.save(path);
                                }
                                saved = generation;
                            }
                        }
                        // Sender dropped: the engine is shutting down; the
                        // drop-time save takes the final snapshot.
                        _ => return,
                    }
                }
            });
            (Some(tx), Some(handle))
        } else {
            (None, None)
        };
        Engine {
            shared,
            workers,
            persist_stop,
            persist,
        }
    }

    /// A cheap handle for submitting jobs in-process.
    #[must_use]
    pub fn client(&self) -> Client {
        Client {
            shared: Arc::clone(&self.shared),
        }
    }

    pub(crate) fn shared(&self) -> &Arc<Shared> {
        &self.shared
    }

    /// `(hits, misses)` of the solution cache.
    #[must_use]
    pub fn cache_stats(&self) -> (u64, u64) {
        self.shared.cache.stats()
    }

    /// `(hits, misses, published)` of the cross-job root-basis store.
    #[must_use]
    pub fn basis_stats(&self) -> (u64, u64, u64) {
        self.shared.basis.stats()
    }

    /// `(warm, cold)` branch-and-bound node counts accumulated over every
    /// augmentation pipeline this engine has run. Warm nodes reused the
    /// parent's simplex basis; cold nodes ran the two-phase primal from
    /// scratch (the root of every solve is always cold).
    #[must_use]
    pub fn solver_stats(&self) -> (u64, u64) {
        self.shared.solver.snapshot()
    }

    /// `(rows_tightened, binaries_fixed, cuts_added)` accumulated by the
    /// root model-strengthening layer over every step MILP this engine has
    /// solved. All three stay zero when jobs disable strengthening.
    #[must_use]
    pub fn strengthening_stats(&self) -> (u64, u64, u64) {
        self.shared.solver.strengthening_snapshot()
    }

    /// `(refactorizations, eta_updates)` of the sparse revised simplex
    /// basis, accumulated over every node LP this engine has solved. Both
    /// stay zero when jobs select the dense reference kernel.
    #[must_use]
    pub fn factorization_stats(&self) -> (u64, u64) {
        self.shared.solver.factorization_snapshot()
    }

    /// Job accounting so far (see [`EngineStats`] for the invariant).
    #[must_use]
    pub fn stats(&self) -> EngineStats {
        EngineStats {
            submitted: self.shared.submitted.load(Ordering::Relaxed),
            answered: self.shared.answered.load(Ordering::Relaxed),
            shed: self.shared.shed.load(Ordering::Relaxed),
            coalesced: self.shared.coalesced.load(Ordering::Relaxed),
        }
    }

    /// Closes the queue without joining: new submissions are refused,
    /// workers keep draining. The server calls this before waiting on
    /// shards so answers still flow while the backlog empties.
    pub(crate) fn close_queue(&self) {
        self.shared.queue.close();
    }

    /// Closes the queue, drains every accepted job, joins the workers and
    /// flushes the tracer. Returns the final (post-drain) accounting, for
    /// which the [`EngineStats`] invariant `submitted == answered + shed`
    /// holds.
    pub fn shutdown(mut self) -> EngineStats {
        self.shared.queue.close();
        for handle in self.workers.drain(..) {
            let _ = handle.join();
        }
        self.shared.config.tracer.flush();
        EngineStats {
            submitted: self.shared.submitted.load(Ordering::Relaxed),
            answered: self.shared.answered.load(Ordering::Relaxed),
            shed: self.shared.shed.load(Ordering::Relaxed),
            coalesced: self.shared.coalesced.load(Ordering::Relaxed),
        }
    }
}

impl Drop for Engine {
    fn drop(&mut self) {
        self.shared.queue.close();
        for handle in self.workers.drain(..) {
            let _ = handle.join();
        }
        drop(self.persist_stop.take());
        if let Some(handle) = self.persist.take() {
            let _ = handle.join();
        }
        // Graceful-shutdown persistence: every path through shutdown()
        // or a plain drop lands here exactly once, after the drain and
        // after the background persist loop has exited, so the snapshot
        // holds the final cache contents.
        if let Some(path) = &self.shared.config.cache_path {
            let _ = self.shared.cache.save(path);
        }
        self.shared.config.tracer.flush();
    }
}

/// In-process submission handle (cloneable; backed by the shared engine).
#[derive(Clone)]
pub struct Client {
    shared: Arc<Shared>,
}

impl Client {
    /// Enqueues `req`; the response arrives on the returned receiver.
    /// Blocks while the queue is full (back-pressure).
    #[must_use]
    pub fn submit(&self, req: JobRequest) -> mpsc::Receiver<JobResponse> {
        let (tx, rx) = mpsc::channel();
        self.submit_with(req, tx);
        rx
    }

    /// Enqueues `req` with the response routed to `reply` — the threaded
    /// TCP front end funnels every job of one connection into one writer
    /// this way. A closed engine answers immediately with a failure
    /// response. Blocks while the queue is full.
    pub fn submit_with(&self, req: JobRequest, reply: mpsc::Sender<JobResponse>) {
        submit(&self.shared, req, Reply::Channel(reply), Admission::Block);
    }

    /// Like [`submit_with`](Client::submit_with) but never blocks: a full
    /// queue answers immediately with a typed load-shed response
    /// (`retry_after_ms`) instead of waiting for room.
    pub fn try_submit_with(&self, req: JobRequest, reply: mpsc::Sender<JobResponse>) {
        submit(&self.shared, req, Reply::Channel(reply), Admission::Shed);
    }

    /// Submits `req` and blocks for the answer.
    #[must_use]
    pub fn call(&self, req: JobRequest) -> JobResponse {
        let id = req.id;
        self.submit(req)
            .recv()
            .unwrap_or_else(|_| JobResponse::failure(id, "service shut down"))
    }
}

/// The server's estimate of how long a shed client should back off:
/// roughly one queue-drain time at the current service rate, clamped to
/// [1 ms, 30 s].
pub(crate) fn retry_hint(shared: &Shared) -> u64 {
    let ema = shared.ema_micros.load(Ordering::Relaxed).max(500);
    let queued = shared.queue.len() as u64 + 1;
    let workers = shared.config.workers.max(1) as u64;
    (queued * ema / workers / 1000).clamp(1, 30_000)
}

/// Emits the shed trace event for one refused admission.
pub(crate) fn emit_shed(shared: &Shared, retry_after_ms: u64) {
    shared.config.tracer.emit(
        Phase::Serve,
        Event::Shed {
            queued: shared.queue.len(),
            retry_after_ms,
        },
    );
}

/// The single entry point for every job.
///
/// Parses and canonicalizes on the calling thread, coalesces onto an
/// identical in-flight solve when allowed (followers park in the table
/// and return immediately), then enqueues under the chosen admission
/// policy. Whatever happens — parse failure, full queue, closed queue —
/// every call results in exactly one response per waiter, which is the
/// accounting invariant of [`EngineStats`].
pub(crate) fn submit(shared: &Arc<Shared>, req: JobRequest, reply: Reply, admission: Admission) {
    shared.submitted.fetch_add(1, Ordering::Relaxed);
    let submitted = Instant::now();
    let fail = |req: &JobRequest, reply: Reply, error: String| {
        let waiter = Waiter {
            id: req.id,
            submitted,
            reply,
        };
        let failure = JobResponse::failure(req.id, error);
        finish(shared, waiter, &failure, false);
        shared.config.tracer.flush();
    };
    let netlist = match req.parse_netlist() {
        Ok(n) => n,
        Err(e) => return fail(&req, reply, format!("bad netlist: {e}")),
    };
    let params = FingerprintParams {
        width: req.width,
        lambda: req.lambda,
        rotation: req.rotation,
        route: req.route,
    };
    // An ECO request ships the *base* instance plus a delta script: apply
    // the script here so everything downstream (coalescing, caching, the
    // solve) keys on the *edited* instance, exactly as if the client had
    // sent it whole.
    let (netlist, eco) = if req.eco_ops.is_empty() {
        (netlist, None)
    } else {
        let applied = crate::delta::parse_ops(&req.eco_ops)
            .and_then(|ops| crate::delta::apply(&netlist, &ops).map(|out| (ops, out)));
        let (ops, out) = match applied {
            Ok(v) => v,
            Err(e) => return fail(&req, reply, format!("bad delta: {e}")),
        };
        let base_canon: Arc<str> = Arc::from(canonical(&netlist, &params));
        let base_key = fingerprint_of(&base_canon);
        let base_trusted = req.eco_base.is_none_or(|pinned| pinned == base_key);
        let mut touched = out.touched_modules;
        if req.lambda > 0.0 {
            // Net neighbors only matter when wirelength is in the
            // objective; pure-area re-solves gain nothing from freeing
            // them (see `fp_core::eco_replace`).
            for name in out.touched_net_members {
                if !touched.contains(&name) {
                    touched.push(name);
                }
            }
        }
        shared.config.tracer.emit(
            Phase::Serve,
            Event::DeltaApply {
                base_key,
                ops: ops.len(),
                touched: touched.len(),
                total: out.netlist.num_modules(),
            },
        );
        (
            out.netlist,
            Some(EcoInfo {
                base_key,
                base_canon,
                base_trusted,
                touched,
            }),
        )
    };
    let canon: Arc<str> = Arc::from(canonical(&netlist, &params));
    let key = fingerprint_of(&canon);
    let waiter = Waiter {
        id: req.id,
        submitted,
        reply,
    };
    let route = if shared.config.coalesce && req.coalesce {
        match shared.table.join(key, &canon, waiter) {
            Admit::Follower => {
                // An identical instance is already being solved; this
                // job rides along and is answered at fan-out.
                shared.coalesced.fetch_add(1, Ordering::Relaxed);
                shared
                    .config
                    .tracer
                    .emit(Phase::Serve, Event::Coalesced { key });
                return;
            }
            Admit::Leader => JobRoute::Flight,
        }
    } else {
        JobRoute::Direct(waiter)
    };
    let job = Job {
        req,
        netlist,
        canon,
        key,
        submitted,
        route,
        eco,
    };
    let refused = match admission {
        Admission::Block => shared.queue.push(job).map_err(|j| (j, PushError::Closed)),
        Admission::Shed => shared.queue.try_push(job),
    };
    let Err((job, why)) = refused else { return };
    // The leader could not enter the queue: resolve the whole flight now
    // (followers that joined in the meantime included) so nobody waits
    // on a solve that will never run.
    let waiters = match job.route {
        JobRoute::Flight => shared.table.complete(job.key, &job.canon),
        JobRoute::Direct(w) => vec![w],
    };
    match why {
        PushError::Full => {
            let retry = retry_hint(shared);
            emit_shed(shared, retry);
            for w in waiters {
                shared.shed.fetch_add(1, Ordering::Relaxed);
                w.reply.deliver(JobResponse::shed(w.id, retry), true);
            }
        }
        PushError::Closed => {
            for w in waiters {
                shared.answered.fetch_add(1, Ordering::Relaxed);
                w.reply
                    .deliver(JobResponse::failure(w.id, "service shut down"), false);
            }
        }
    }
    shared.config.tracer.flush();
}

/// Stamps the per-waiter fields onto a copy of `template`, emits
/// [`Event::JobDone`], counts it, and delivers.
fn finish(shared: &Shared, waiter: Waiter, template: &JobResponse, coalesced: bool) {
    let mut resp = template.clone();
    resp.id = waiter.id;
    resp.coalesced = coalesced;
    resp.micros = waiter.submitted.elapsed().as_micros() as u64;
    shared.config.tracer.emit(
        Phase::Serve,
        Event::JobDone {
            id: resp.id,
            micros: resp.micros,
            degraded: resp.degraded,
            cached: resp.cached,
        },
    );
    shared.answered.fetch_add(1, Ordering::Relaxed);
    waiter.reply.deliver(resp, false);
}

fn worker_loop(shared: &Arc<Shared>) {
    while let Some(job) = shared.queue.pop() {
        let template = process(&job, shared);
        let sample = job.submitted.elapsed().as_micros() as u64;
        let ema = shared.ema_micros.load(Ordering::Relaxed);
        let next = if ema == 0 {
            sample
        } else {
            (3 * ema + sample) / 4
        };
        shared.ema_micros.store(next, Ordering::Relaxed);
        match job.route {
            JobRoute::Direct(waiter) => finish(shared, waiter, &template, false),
            JobRoute::Flight => {
                // Everyone who joined before this point shares the one
                // solve; later arrivals start a fresh flight.
                let waiters = shared.table.complete(job.key, &job.canon);
                for (i, waiter) in waiters.into_iter().enumerate() {
                    finish(shared, waiter, &template, i > 0);
                }
            }
        }
        // Per-job flush so an external trace file is greppable while the
        // server is still running (and after a hard kill).
        shared.config.tracer.flush();
    }
}

/// Runs one job through the degradation ladder:
/// cache hit → full pipeline (augment → improve → route) under the
/// remaining budget → greedy bottom-left skyline when the budget is
/// already gone or the pipeline fails. Only a missing/unplaceable
/// instance yields `ok: false`. Returns a *template* response: `id`,
/// `micros` and `coalesced` are stamped per waiter by `finish`.
///
/// Deadlines are measured from the *leader's* submission; coalesced
/// followers share the leader's remaining budget (they arrived later, so
/// their own budget can only be looser — except when a follower carried
/// a tighter `deadline_ms`, which coalescing deliberately ignores).
fn process(job: &Job, shared: &Shared) -> JobResponse {
    let req = &job.req;
    let config = &shared.config;
    let tracer = &config.tracer;
    let netlist = &job.netlist;

    if req.use_cache {
        if let Some(mut hit) = shared.cache.get(job.key, &job.canon) {
            tracer.emit(Phase::Serve, Event::CacheHit { key: job.key });
            hit.cached = true;
            hit.fingerprint = job.key;
            return hit;
        }
        tracer.emit(Phase::Serve, Event::CacheMiss { key: job.key });
    }

    // `checked_add` so a huge-but-parseable deadline_ms cannot panic the
    // worker via `Instant` overflow; a deadline too far away to represent
    // is no deadline at all.
    let deadline = (req.deadline_ms > 0)
        .then(|| {
            job.submitted
                .checked_add(Duration::from_millis(req.deadline_ms))
        })
        .flatten();
    let expired = |at: Instant| deadline.is_some_and(|d| at >= d);

    let objective = if req.lambda > 0.0 {
        Objective::AreaPlusWirelength { lambda: req.lambda }
    } else {
        Objective::Area
    };
    // Every solve publishes its committed root basis under its own
    // fingerprint and loads under the base's (ECO) or its own (repeat
    // traffic), so re-solves of related instances start hot or warm.
    let load_key = job.eco.as_ref().map_or(job.key, |e| e.base_key);
    let mut fp_config = FloorplanConfig::default()
        .with_objective(objective)
        .with_rotation(req.rotation)
        .with_step_options(
            fp_milp::SolveOptions::default()
                .with_node_limit(config.node_limit)
                .with_time_limit(config.time_limit)
                .with_threads(1)
                .with_basis_store(Arc::clone(&shared.basis), load_key, job.key),
        )
        // The driver re-budgets every augmentation/re-optimization MILP
        // with the time *remaining* before the deadline (the per-step
        // limit above is only a cap), so a K-step job cannot overshoot
        // its deadline K-fold; the cooperative in-LP check makes each
        // budget binding at simplex-iteration granularity.
        .with_deadline(deadline);
    if let Some(w) = req.width {
        fp_config = fp_config.with_chip_width(w);
    }

    let mut degraded = false;
    let mut backend = "milp";
    let mut portfolio = false;

    // The ECO fast path: resolve the base placement from the cache, seed
    // the incremental driver with it, and re-place only the touched
    // neighborhood. Any miss on the ladder (untrusted base, cache miss,
    // delta too large, driver error) falls through to a scratch solve of
    // the edited instance — the answer is then merely slower, never wrong.
    let mut eco_replaced = 0usize;
    let mut eco_basis = fp_milp::BasisTier::Cold;
    let eco_fp: Option<Floorplan> = job.eco.as_ref().and_then(|eco| {
        if expired(Instant::now()) {
            return None;
        }
        let base_resp = eco
            .base_trusted
            .then(|| shared.cache.get(eco.base_key, &eco.base_canon))
            .flatten()?;
        let entries = base_resp.placement_entries().ok()?;
        let total = netlist.num_modules();
        let edited_ids: Vec<fp_netlist::ModuleId> = eco
            .touched
            .iter()
            .filter_map(|name| netlist.module_by_name(name))
            .collect();
        if total == 0 || edited_ids.len() as f64 / total as f64 > config.eco_threshold {
            return None;
        }
        // Base placements mapped by *name* into the edited id space;
        // entries for modules the delta removed simply drop out. The
        // server never enables routing envelopes, so envelope == rect.
        let base_mods: Vec<PlacedModule> = entries
            .iter()
            .filter_map(|e| {
                netlist.module_by_name(&e.name).map(|id| PlacedModule {
                    id,
                    rect: fp_geom::Rect::new(e.x, e.y, e.w, e.h),
                    envelope: fp_geom::Rect::new(e.x, e.y, e.w, e.h),
                    rotated: e.rotated,
                })
            })
            .collect();
        let eco_cfg = fp_config.clone().with_chip_width(base_resp.chip_width);
        let outcome = fp_core::eco_replace(netlist, &eco_cfg, &base_mods, &edited_ids).ok()?;
        degraded |= outcome.stats.greedy_fallbacks() > 0;
        shared
            .solver
            .record(outcome.stats.warm_nodes(), outcome.stats.cold_nodes());
        shared.solver.record_factorizations(
            outcome.stats.refactorizations(),
            outcome.stats.eta_updates(),
        );
        shared.solver.record_strengthening(
            outcome.stats.rows_tightened(),
            outcome.stats.binaries_fixed(),
            outcome.stats.cuts_added(),
        );
        eco_replaced = outcome.replaced.len();
        eco_basis = outcome.basis;
        backend = "eco";
        Some(outcome.floorplan)
    });
    let eco_base_hit = eco_fp.is_some();
    if let Some(eco) = &job.eco {
        tracer.emit(
            Phase::Serve,
            Event::EcoJob {
                id: req.id,
                base_key: eco.base_key,
                base_hit: eco_base_hit,
                replaced: eco_replaced,
                total: netlist.num_modules(),
                basis: eco_basis.as_str(),
            },
        );
    }

    let floorplan = if let Some(fp) = eco_fp {
        fp
    } else if expired(Instant::now()) {
        // Budget gone before any solving started (long queue wait):
        // greedy skyline placement instead of an error.
        degraded = true;
        backend = "greedy";
        match fp_core::bottom_left(netlist, &fp_config) {
            Ok(fp) => fp,
            Err(e) => return JobResponse::failure(req.id, e.to_string()),
        }
    } else if !config.backends.is_empty() {
        // Solver portfolio: race the configured backends under the
        // job's deadline instead of running the sequential ladder.
        portfolio = true;
        match crate::portfolio::race(
            netlist,
            &fp_config,
            &config.backends,
            config.improve_rounds,
            job.key,
            tracer,
        ) {
            Some(outcome) => {
                backend = outcome.winner;
                outcome.floorplan
            }
            None => {
                // Every leg failed or was cancelled: same greedy rung
                // the sequential ladder degrades to.
                degraded = true;
                backend = "greedy";
                match fp_core::bottom_left(netlist, &fp_config) {
                    Ok(fp) => fp,
                    Err(e) => return JobResponse::failure(req.id, e.to_string()),
                }
            }
        }
    } else {
        match Floorplanner::with_config(netlist, fp_config.clone()).run() {
            Ok(result) => {
                degraded |= result.stats.greedy_fallbacks() > 0;
                shared
                    .solver
                    .record(result.stats.warm_nodes(), result.stats.cold_nodes());
                shared.solver.record_factorizations(
                    result.stats.refactorizations(),
                    result.stats.eta_updates(),
                );
                shared.solver.record_strengthening(
                    result.stats.rows_tightened(),
                    result.stats.binaries_fixed(),
                    result.stats.cuts_added(),
                );
                let mut fp = result.floorplan;
                if config.improve_rounds > 0 && !expired(Instant::now()) {
                    // Improvement is best-effort: keep the augmented
                    // placement if re-optimization fails.
                    if let Ok(better) =
                        fp_core::improve(&fp, netlist, &fp_config, config.improve_rounds)
                    {
                        fp = better;
                    }
                }
                fp
            }
            Err(_) => {
                degraded = true;
                backend = "greedy";
                match fp_core::bottom_left(netlist, &fp_config) {
                    Ok(fp) => fp,
                    Err(e) => return JobResponse::failure(req.id, e.to_string()),
                }
            }
        }
    };
    degraded |= expired(Instant::now());

    // Routed wirelength only when asked for and still inside budget;
    // otherwise the paper's center-to-center estimate.
    let mut wirelength = floorplan.center_wirelength(netlist);
    if req.route {
        if expired(Instant::now()) {
            degraded = true;
        } else {
            match fp_route::route(&floorplan, netlist, &fp_route::RouteConfig::default()) {
                Ok(routing) => wirelength = routing.total_wirelength,
                Err(_) => degraded = true,
            }
        }
    }

    let mut placement = String::new();
    for (i, m) in floorplan.iter().enumerate() {
        if i > 0 {
            placement.push(';');
        }
        let _ = write!(
            placement,
            "{} {} {} {} {} {}",
            netlist.module(m.id).name(),
            m.rect.x,
            m.rect.y,
            m.rect.w,
            m.rect.h,
            u8::from(m.rotated)
        );
    }

    let resp = JobResponse {
        id: req.id,
        ok: true,
        error: String::new(),
        chip_width: floorplan.chip_width(),
        chip_height: floorplan.chip_height(),
        area: floorplan.chip_area(),
        utilization: floorplan.utilization(netlist),
        wirelength,
        degraded,
        cached: false,
        coalesced: false,
        retry_after_ms: 0,
        micros: 0, // stamped per waiter
        backend: backend.to_string(),
        portfolio,
        placement,
        fingerprint: job.key,
        eco_base_hit,
        eco_replaced,
        eco_total: if job.eco.is_some() {
            netlist.num_modules()
        } else {
            0
        },
    };
    // Only full-quality answers are worth replaying; a degraded result
    // would pin a worse placement for future non-degraded requests. The
    // cached template drops the ECO report — a later cache hit on this
    // instance is an ordinary hit, however the placement was first made.
    if req.use_cache && !degraded {
        let mut cached = resp.clone();
        cached.eco_base_hit = false;
        cached.eco_replaced = 0;
        cached.eco_total = 0;
        shared.cache.insert(job.key, Arc::clone(&job.canon), cached);
    }
    resp
}
