//! A bounded multi-producer multi-consumer queue on `Mutex` + `Condvar`.
//!
//! The same std-only discipline as the solver's shared frontier
//! (`fp-milp/src/branch.rs`): all state under one mutex, two condvars for
//! the two directions of blocking, and a `closed` flag that lets consumers
//! *drain* remaining items before observing end-of-stream — the property
//! the engine's clean shutdown relies on.
//!
//! # Close/drain ordering guarantee
//!
//! Every push and the close decision happen under the one queue mutex, so
//! acceptance is linearized against [`close`](Bounded::close):
//!
//! 1. **No item is accepted after close.** A [`push`](Bounded::push) /
//!    [`try_push`](Bounded::try_push) that returns `Ok` took the mutex
//!    *before* `close` did; any push that observes `closed == true` —
//!    including one that was already blocked waiting for room — returns
//!    the item to the caller instead of enqueueing it. There is no window
//!    in which a push succeeds but the item is dropped.
//! 2. **Every accepted item is delivered.** `close` never discards:
//!    [`pop`](Bounded::pop) keeps returning queued items after close and
//!    only reports end-of-stream (`None`) once the backlog is empty. With
//!    consumers that keep popping until `None`, accepted = delivered,
//!    which is exactly the "every accepted job is answered" half of the
//!    service's shutdown contract (the other half — answering items the
//!    push *returned* — is the caller's).
//!
//! The `close_ordering_*` tests below pin both properties under
//! concurrency; the chaos suite re-checks them end-to-end through the
//! server.

use std::collections::VecDeque;
use std::sync::{Condvar, Mutex};

struct Inner<T> {
    items: VecDeque<T>,
    closed: bool,
}

/// Why a [`Bounded::try_push`] did not enqueue.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum PushError {
    /// The queue was at capacity (admission control should shed).
    Full,
    /// The queue was closed (the service is shutting down).
    Closed,
}

/// A bounded MPMC queue. `push` blocks while full, `pop` blocks while
/// empty; [`close`](Bounded::close) wakes everyone, after which `push`
/// fails and `pop` drains what is left before returning `None`.
pub struct Bounded<T> {
    inner: Mutex<Inner<T>>,
    not_full: Condvar,
    not_empty: Condvar,
    capacity: usize,
}

impl<T> Bounded<T> {
    /// A queue holding at most `capacity` items (minimum 1).
    #[must_use]
    pub fn new(capacity: usize) -> Self {
        Bounded {
            inner: Mutex::new(Inner {
                items: VecDeque::new(),
                closed: false,
            }),
            not_full: Condvar::new(),
            not_empty: Condvar::new(),
            capacity: capacity.max(1),
        }
    }

    /// Blocks until there is room, then enqueues `item`.
    ///
    /// # Errors
    ///
    /// Returns the item back if the queue is (or becomes) closed.
    pub fn push(&self, item: T) -> Result<(), T> {
        let mut inner = self.inner.lock().expect("queue lock");
        loop {
            if inner.closed {
                return Err(item);
            }
            if inner.items.len() < self.capacity {
                inner.items.push_back(item);
                self.not_empty.notify_one();
                return Ok(());
            }
            inner = self.not_full.wait(inner).expect("queue lock");
        }
    }

    /// Enqueues `item` without blocking.
    ///
    /// The admission-control entry point: a full queue is a shed decision
    /// for the caller, never a stall on the submitting (event-loop)
    /// thread.
    ///
    /// # Errors
    ///
    /// Returns the item back with [`PushError::Full`] when the queue is at
    /// capacity and [`PushError::Closed`] once the queue is closed.
    pub fn try_push(&self, item: T) -> Result<(), (T, PushError)> {
        let mut inner = self.inner.lock().expect("queue lock");
        if inner.closed {
            return Err((item, PushError::Closed));
        }
        if inner.items.len() >= self.capacity {
            return Err((item, PushError::Full));
        }
        inner.items.push_back(item);
        self.not_empty.notify_one();
        Ok(())
    }

    /// Blocks until an item is available or the queue is closed *and*
    /// empty (`None`). Items enqueued before `close` are all delivered.
    pub fn pop(&self) -> Option<T> {
        let mut inner = self.inner.lock().expect("queue lock");
        loop {
            if let Some(item) = inner.items.pop_front() {
                self.not_full.notify_one();
                return Some(item);
            }
            if inner.closed {
                return None;
            }
            inner = self.not_empty.wait(inner).expect("queue lock");
        }
    }

    /// Closes the queue: pending and future `push`es fail, `pop` drains
    /// the backlog and then reports end-of-stream.
    pub fn close(&self) {
        let mut inner = self.inner.lock().expect("queue lock");
        inner.closed = true;
        self.not_full.notify_all();
        self.not_empty.notify_all();
    }

    /// Number of items currently queued.
    #[must_use]
    pub fn len(&self) -> usize {
        self.inner.lock().expect("queue lock").items.len()
    }

    /// Whether the queue is currently empty.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::Arc;

    #[test]
    fn fifo_order_single_thread() {
        let q = Bounded::new(8);
        for i in 0..5 {
            q.push(i).unwrap();
        }
        assert_eq!(q.len(), 5);
        for i in 0..5 {
            assert_eq!(q.pop(), Some(i));
        }
    }

    #[test]
    fn close_drains_then_ends() {
        let q = Bounded::new(8);
        q.push(1).unwrap();
        q.push(2).unwrap();
        q.close();
        assert_eq!(q.push(3), Err(3));
        assert_eq!(q.pop(), Some(1));
        assert_eq!(q.pop(), Some(2));
        assert_eq!(q.pop(), None);
    }

    #[test]
    fn capacity_blocks_producers_until_consumed() {
        let q = Arc::new(Bounded::new(2));
        let producer = {
            let q = Arc::clone(&q);
            std::thread::spawn(move || {
                for i in 0..100 {
                    q.push(i).unwrap();
                }
            })
        };
        let mut got = Vec::new();
        for _ in 0..100 {
            got.push(q.pop().unwrap());
        }
        producer.join().unwrap();
        assert_eq!(got, (0..100).collect::<Vec<_>>());
    }

    #[test]
    fn try_push_distinguishes_full_from_closed() {
        let q = Bounded::new(2);
        assert_eq!(q.try_push(1), Ok(()));
        assert_eq!(q.try_push(2), Ok(()));
        assert_eq!(q.try_push(3), Err((3, PushError::Full)));
        assert_eq!(q.pop(), Some(1));
        assert_eq!(q.try_push(4), Ok(()));
        q.close();
        assert_eq!(q.try_push(5), Err((5, PushError::Closed)));
        assert_eq!(q.pop(), Some(2));
        assert_eq!(q.pop(), Some(4));
        assert_eq!(q.pop(), None);
    }

    /// Pins guarantee (1): a push that was *blocked* at close time fails
    /// rather than sneaking its item in afterwards.
    #[test]
    fn close_ordering_blocked_push_fails_and_backlog_survives() {
        let q = Arc::new(Bounded::new(1));
        q.push(0).unwrap();
        let blocked: Vec<_> = (1..=3)
            .map(|i| {
                let q = Arc::clone(&q);
                std::thread::spawn(move || q.push(i))
            })
            .collect();
        // Give the pushers time to park on the not_full condvar.
        std::thread::sleep(std::time::Duration::from_millis(50));
        q.close();
        for h in blocked {
            assert!(
                h.join().unwrap().is_err(),
                "blocked push accepted after close"
            );
        }
        assert_eq!(q.pop(), Some(0), "close dropped an accepted item");
        assert_eq!(q.pop(), None);
    }

    /// Pins both halves of the ordering guarantee under concurrency:
    /// with pushers racing a close, exactly the items whose push returned
    /// `Ok` come out of the queue — no loss, no post-close acceptance.
    #[test]
    fn close_ordering_accepted_equals_drained_under_race() {
        for round in 0..20 {
            let q = Arc::new(Bounded::new(4));
            let pushers: Vec<_> = (0..4u64)
                .map(|p| {
                    let q = Arc::clone(&q);
                    std::thread::spawn(move || {
                        let mut accepted = Vec::new();
                        for i in 0..100u64 {
                            let v = p * 1000 + i;
                            let ok = if i % 2 == 0 {
                                q.push(v).is_ok()
                            } else {
                                q.try_push(v).is_ok()
                            };
                            if ok {
                                accepted.push(v);
                            }
                        }
                        accepted
                    })
                })
                .collect();
            let drainer = {
                let q = Arc::clone(&q);
                std::thread::spawn(move || {
                    let mut got = Vec::new();
                    while let Some(v) = q.pop() {
                        got.push(v);
                    }
                    got
                })
            };
            // Close at a pseudo-random point in the race.
            std::thread::sleep(std::time::Duration::from_micros(37 * (round + 1)));
            q.close();
            let mut accepted: Vec<u64> = pushers
                .into_iter()
                .flat_map(|h| h.join().unwrap())
                .collect();
            let mut drained = drainer.join().unwrap();
            accepted.sort_unstable();
            drained.sort_unstable();
            assert_eq!(
                accepted, drained,
                "round {round}: accepted set != drained set across close"
            );
        }
    }

    #[test]
    fn mpmc_no_loss_no_duplication() {
        let q = Arc::new(Bounded::new(4));
        let producers: Vec<_> = (0..4)
            .map(|p| {
                let q = Arc::clone(&q);
                std::thread::spawn(move || {
                    for i in 0..50 {
                        q.push(p * 50 + i).unwrap();
                    }
                })
            })
            .collect();
        let consumers: Vec<_> = (0..3)
            .map(|_| {
                let q = Arc::clone(&q);
                std::thread::spawn(move || {
                    let mut got = Vec::new();
                    while let Some(v) = q.pop() {
                        got.push(v);
                    }
                    got
                })
            })
            .collect();
        for p in producers {
            p.join().unwrap();
        }
        q.close();
        let mut all: Vec<usize> = consumers
            .into_iter()
            .flat_map(|c| c.join().unwrap())
            .collect();
        all.sort_unstable();
        assert_eq!(all, (0..200).collect::<Vec<_>>());
    }
}
