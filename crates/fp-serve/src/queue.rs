//! A bounded multi-producer multi-consumer queue on `Mutex` + `Condvar`.
//!
//! The same std-only discipline as the solver's shared frontier
//! (`fp-milp/src/branch.rs`): all state under one mutex, two condvars for
//! the two directions of blocking, and a `closed` flag that lets consumers
//! *drain* remaining items before observing end-of-stream — the property
//! the engine's clean shutdown relies on.

use std::collections::VecDeque;
use std::sync::{Condvar, Mutex};

struct Inner<T> {
    items: VecDeque<T>,
    closed: bool,
}

/// A bounded MPMC queue. `push` blocks while full, `pop` blocks while
/// empty; [`close`](Bounded::close) wakes everyone, after which `push`
/// fails and `pop` drains what is left before returning `None`.
pub struct Bounded<T> {
    inner: Mutex<Inner<T>>,
    not_full: Condvar,
    not_empty: Condvar,
    capacity: usize,
}

impl<T> Bounded<T> {
    /// A queue holding at most `capacity` items (minimum 1).
    #[must_use]
    pub fn new(capacity: usize) -> Self {
        Bounded {
            inner: Mutex::new(Inner {
                items: VecDeque::new(),
                closed: false,
            }),
            not_full: Condvar::new(),
            not_empty: Condvar::new(),
            capacity: capacity.max(1),
        }
    }

    /// Blocks until there is room, then enqueues `item`.
    ///
    /// # Errors
    ///
    /// Returns the item back if the queue is (or becomes) closed.
    pub fn push(&self, item: T) -> Result<(), T> {
        let mut inner = self.inner.lock().expect("queue lock");
        loop {
            if inner.closed {
                return Err(item);
            }
            if inner.items.len() < self.capacity {
                inner.items.push_back(item);
                self.not_empty.notify_one();
                return Ok(());
            }
            inner = self.not_full.wait(inner).expect("queue lock");
        }
    }

    /// Blocks until an item is available or the queue is closed *and*
    /// empty (`None`). Items enqueued before `close` are all delivered.
    pub fn pop(&self) -> Option<T> {
        let mut inner = self.inner.lock().expect("queue lock");
        loop {
            if let Some(item) = inner.items.pop_front() {
                self.not_full.notify_one();
                return Some(item);
            }
            if inner.closed {
                return None;
            }
            inner = self.not_empty.wait(inner).expect("queue lock");
        }
    }

    /// Closes the queue: pending and future `push`es fail, `pop` drains
    /// the backlog and then reports end-of-stream.
    pub fn close(&self) {
        let mut inner = self.inner.lock().expect("queue lock");
        inner.closed = true;
        self.not_full.notify_all();
        self.not_empty.notify_all();
    }

    /// Number of items currently queued.
    #[must_use]
    pub fn len(&self) -> usize {
        self.inner.lock().expect("queue lock").items.len()
    }

    /// Whether the queue is currently empty.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::Arc;

    #[test]
    fn fifo_order_single_thread() {
        let q = Bounded::new(8);
        for i in 0..5 {
            q.push(i).unwrap();
        }
        assert_eq!(q.len(), 5);
        for i in 0..5 {
            assert_eq!(q.pop(), Some(i));
        }
    }

    #[test]
    fn close_drains_then_ends() {
        let q = Bounded::new(8);
        q.push(1).unwrap();
        q.push(2).unwrap();
        q.close();
        assert_eq!(q.push(3), Err(3));
        assert_eq!(q.pop(), Some(1));
        assert_eq!(q.pop(), Some(2));
        assert_eq!(q.pop(), None);
    }

    #[test]
    fn capacity_blocks_producers_until_consumed() {
        let q = Arc::new(Bounded::new(2));
        let producer = {
            let q = Arc::clone(&q);
            std::thread::spawn(move || {
                for i in 0..100 {
                    q.push(i).unwrap();
                }
            })
        };
        let mut got = Vec::new();
        for _ in 0..100 {
            got.push(q.pop().unwrap());
        }
        producer.join().unwrap();
        assert_eq!(got, (0..100).collect::<Vec<_>>());
    }

    #[test]
    fn mpmc_no_loss_no_duplication() {
        let q = Arc::new(Bounded::new(4));
        let producers: Vec<_> = (0..4)
            .map(|p| {
                let q = Arc::clone(&q);
                std::thread::spawn(move || {
                    for i in 0..50 {
                        q.push(p * 50 + i).unwrap();
                    }
                })
            })
            .collect();
        let consumers: Vec<_> = (0..3)
            .map(|_| {
                let q = Arc::clone(&q);
                std::thread::spawn(move || {
                    let mut got = Vec::new();
                    while let Some(v) = q.pop() {
                        got.push(v);
                    }
                    got
                })
            })
            .collect();
        for p in producers {
            p.join().unwrap();
        }
        q.close();
        let mut all: Vec<usize> = consumers
            .into_iter()
            .flat_map(|c| c.join().unwrap())
            .collect();
        all.sort_unstable();
        assert_eq!(all, (0..200).collect::<Vec<_>>());
    }
}
