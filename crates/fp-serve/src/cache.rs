//! An LRU solution cache keyed by instance fingerprints.
//!
//! Floorplanning is expensive and deterministic given the instance and
//! parameters, so repeated instances (common in parameter sweeps and load
//! tests) can be answered from memory. Eviction is least-recently-used via
//! a monotone stamp per entry; hit/miss totals are relaxed atomics so the
//! counters cost nothing on the solve path.
//!
//! The 64-bit FNV fingerprint is only an index: every entry also stores
//! the [`canonical`](crate::fingerprint::canonical) instance text, and a
//! lookup whose canonical form differs is a **miss** — a hash collision
//! (FNV-1a is trivially collidable by an adversarial client) can never
//! serve the wrong instance's placement.

use crate::protocol::JobResponse;
use std::collections::HashMap;
use std::io::{BufRead, Write};
use std::path::Path;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Mutex};

struct Entry {
    stamp: u64,
    /// Canonical instance text; compared on every hit to rule out
    /// fingerprint collisions. Shared (`Arc<str>`) because the engine
    /// carries the same text through the single-flight table and the job
    /// queue — one allocation per instance, not one per subsystem.
    canon: Arc<str>,
    value: JobResponse,
}

/// A bounded LRU map from fingerprint key to solved response.
///
/// Stored responses are templates: per-job fields (`id`, `micros`,
/// `cached`) are rewritten by [`SolutionCache::get`]'s caller, so one
/// cached solve can answer many differently-numbered jobs.
pub struct SolutionCache {
    map: Mutex<(HashMap<u64, Entry>, u64)>,
    capacity: usize,
    hits: AtomicU64,
    misses: AtomicU64,
    /// Bumped on every [`insert`](Self::insert); the background persist
    /// loop compares generations to skip snapshots of an unchanged cache.
    generation: AtomicU64,
}

impl SolutionCache {
    /// A cache holding at most `capacity` solutions; 0 disables storage
    /// (every lookup misses).
    #[must_use]
    pub fn new(capacity: usize) -> Self {
        SolutionCache {
            map: Mutex::new((HashMap::new(), 0)),
            capacity,
            hits: AtomicU64::new(0),
            misses: AtomicU64::new(0),
            generation: AtomicU64::new(0),
        }
    }

    /// Looks up `key`, refreshing its recency on a hit and counting the
    /// outcome either way. An entry whose stored canonical text differs
    /// from `canon` is a fingerprint collision and counts as a miss.
    #[must_use]
    pub fn get(&self, key: u64, canon: &str) -> Option<JobResponse> {
        let mut guard = self.map.lock().expect("cache lock");
        let (map, clock) = &mut *guard;
        *clock += 1;
        let stamp = *clock;
        match map.get_mut(&key) {
            Some(entry) if *entry.canon == *canon => {
                entry.stamp = stamp;
                self.hits.fetch_add(1, Ordering::Relaxed);
                Some(entry.value.clone())
            }
            _ => {
                self.misses.fetch_add(1, Ordering::Relaxed);
                None
            }
        }
    }

    /// Stores `value` under `key` (with its canonical text `canon` for
    /// collision verification), evicting the least-recently-used entry
    /// when the cache is full. A no-op at capacity 0.
    pub fn insert(&self, key: u64, canon: Arc<str>, value: JobResponse) {
        if self.capacity == 0 {
            return;
        }
        let mut guard = self.map.lock().expect("cache lock");
        let (map, clock) = &mut *guard;
        *clock += 1;
        let stamp = *clock;
        if map.len() >= self.capacity && !map.contains_key(&key) {
            let oldest = map.iter().min_by_key(|(_, e)| e.stamp).map(|(&k, _)| k);
            if let Some(oldest) = oldest {
                map.remove(&oldest);
            }
        }
        map.insert(
            key,
            Entry {
                stamp,
                canon,
                value,
            },
        );
        self.generation.fetch_add(1, Ordering::Relaxed);
    }

    /// A counter that advances whenever [`insert`](Self::insert) stores
    /// something. Two equal readings mean no writes happened in between,
    /// so a persisted snapshot taken at the first reading is still
    /// current at the second.
    #[must_use]
    pub fn generation(&self) -> u64 {
        self.generation.load(Ordering::Relaxed)
    }

    /// `(hits, misses)` since construction.
    #[must_use]
    pub fn stats(&self) -> (u64, u64) {
        (
            self.hits.load(Ordering::Relaxed),
            self.misses.load(Ordering::Relaxed),
        )
    }

    /// Number of solutions currently stored.
    #[must_use]
    pub fn len(&self) -> usize {
        self.map.lock().expect("cache lock").0.len()
    }

    /// Whether the cache currently stores nothing.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Writes every entry to `path` as one flat JSON line each
    /// (`key` as fixed-width hex, `canon`, and the encoded response),
    /// oldest first so a reload replays recency. [`load`](Self::load)
    /// round-trips it. The write goes through a `.tmp` sibling and a
    /// rename, so a crash mid-save never truncates a previous snapshot.
    ///
    /// # Errors
    ///
    /// Any I/O error creating or writing the file.
    pub fn save(&self, path: &Path) -> std::io::Result<()> {
        let mut entries: Vec<(u64, u64, String, String)> = {
            let guard = self.map.lock().expect("cache lock");
            guard
                .0
                .iter()
                .map(|(&k, e)| (e.stamp, k, e.canon.to_string(), e.value.encode()))
                .collect()
        };
        entries.sort_by_key(|(stamp, ..)| *stamp);
        let tmp = path.with_extension("tmp");
        let mut out = std::io::BufWriter::new(std::fs::File::create(&tmp)?);
        for (_, key, canon, resp) in entries {
            writeln!(
                out,
                "{{\"key\":\"{key:016x}\",\"canon\":{},\"resp\":{}}}",
                crate::protocol::json_str(&canon),
                crate::protocol::json_str(&resp),
            )?;
        }
        out.flush()?;
        drop(out);
        std::fs::rename(&tmp, path)
    }

    /// Loads a [`save`](Self::save) snapshot into the cache, inserting
    /// entries in file order (capacity and LRU eviction apply as usual).
    /// Returns how many entries were loaded. Unreadable or malformed
    /// lines are *skipped*, not fatal — a truncated or hand-edited
    /// snapshot still restores everything salvageable.
    ///
    /// # Errors
    ///
    /// Only failing to open the file; a missing file is the caller's
    /// cold-start case to handle (`io::ErrorKind::NotFound`).
    pub fn load(&self, path: &Path) -> std::io::Result<usize> {
        let reader = std::io::BufReader::new(std::fs::File::open(path)?);
        let mut loaded = 0;
        for line in reader.lines() {
            let Ok(line) = line else { break };
            let Some((key, canon, resp)) = decode_snapshot_line(&line) else {
                continue;
            };
            self.insert(key, Arc::from(canon), resp);
            loaded += 1;
        }
        Ok(loaded)
    }
}

/// Decodes one snapshot line; `None` for anything malformed (bad JSON,
/// missing fields, non-hex key, undecodable response).
fn decode_snapshot_line(line: &str) -> Option<(u64, String, JobResponse)> {
    let p = fp_obs::parse_line(line).ok()?;
    let key = u64::from_str_radix(p.str_field("key")?, 16).ok()?;
    let canon = p.str_field("canon")?.to_string();
    let resp = JobResponse::decode(p.str_field("resp")?).ok()?;
    Some((key, canon, resp))
}

#[cfg(test)]
mod tests {
    use super::*;

    fn resp(id: u64) -> JobResponse {
        let mut r = JobResponse::failure(id, "");
        r.ok = true;
        r.area = id as f64;
        r
    }

    /// Shorthand: entry `k`'s canonical text in these tests is just `k`
    /// stringified.
    fn canon(key: u64) -> Arc<str> {
        Arc::from(key.to_string())
    }

    #[test]
    fn miss_then_hit() {
        let c = SolutionCache::new(4);
        assert!(c.get(7, &canon(7)).is_none());
        c.insert(7, canon(7), resp(1));
        let got = c.get(7, &canon(7)).expect("hit");
        assert_eq!(got.area, 1.0);
        assert_eq!(c.stats(), (1, 1));
    }

    #[test]
    fn lru_evicts_least_recently_used() {
        let c = SolutionCache::new(2);
        c.insert(1, canon(1), resp(1));
        c.insert(2, canon(2), resp(2));
        assert!(c.get(1, &canon(1)).is_some()); // refresh 1: now 2 is the LRU entry
        c.insert(3, canon(3), resp(3));
        assert_eq!(c.len(), 2);
        assert!(c.get(2, &canon(2)).is_none(), "2 should have been evicted");
        assert!(c.get(1, &canon(1)).is_some() && c.get(3, &canon(3)).is_some());
    }

    #[test]
    fn zero_capacity_never_stores() {
        let c = SolutionCache::new(0);
        c.insert(1, canon(1), resp(1));
        assert!(c.get(1, &canon(1)).is_none());
        assert!(c.is_empty());
        assert_eq!(c.stats(), (0, 1));
    }

    #[test]
    fn reinsert_same_key_keeps_size() {
        let c = SolutionCache::new(2);
        c.insert(1, canon(1), resp(1));
        c.insert(1, canon(1), resp(9));
        assert_eq!(c.len(), 1);
        assert_eq!(c.get(1, &canon(1)).unwrap().area, 9.0);
    }

    /// A unique temp path per test (pid + name) with drop cleanup.
    struct TempPath(std::path::PathBuf);
    impl TempPath {
        fn new(name: &str) -> Self {
            TempPath(
                std::env::temp_dir().join(format!("fp-serve-cache-{}-{name}", std::process::id())),
            )
        }
    }
    impl Drop for TempPath {
        fn drop(&mut self) {
            let _ = std::fs::remove_file(&self.0);
        }
    }

    #[test]
    fn snapshot_round_trips_entries_and_recency() {
        let path = TempPath::new("roundtrip.jsonl");
        let c = SolutionCache::new(4);
        let mut special = resp(1);
        special.placement = "a 0 0 1 2 0;b 1 0 2 1 1".to_string();
        special.backend = "milp".to_string();
        c.insert(
            1,
            Arc::from("canon with \"quotes\"\nand newline"),
            special.clone(),
        );
        c.insert(2, canon(2), resp(2));
        assert!(c.get(1, "canon with \"quotes\"\nand newline").is_some()); // 1 is now MRU
        c.save(&path.0).unwrap();

        let fresh = SolutionCache::new(2);
        assert_eq!(fresh.load(&path.0).unwrap(), 2);
        let got = fresh
            .get(1, "canon with \"quotes\"\nand newline")
            .expect("hit");
        assert_eq!(got.placement, special.placement);
        assert_eq!(got.area, 1.0);
        // Recency replayed: at capacity 2 both fit, and key 2 (saved
        // older) is the one a new insert evicts.
        fresh.insert(3, canon(3), resp(3));
        assert!(fresh.get(2, &canon(2)).is_none(), "2 was the LRU entry");
        assert!(fresh.get(1, "canon with \"quotes\"\nand newline").is_some());
    }

    #[test]
    fn corrupt_snapshot_lines_are_skipped_not_fatal() {
        let path = TempPath::new("corrupt.jsonl");
        let c = SolutionCache::new(4);
        c.insert(1, canon(1), resp(1));
        c.insert(2, canon(2), resp(2));
        c.save(&path.0).unwrap();
        // Corrupt the middle: garbage, a non-hex key, a truncated line,
        // and a well-formed line whose resp doesn't decode.
        let good = std::fs::read_to_string(&path.0).unwrap();
        let mut lines: Vec<&str> = good.lines().collect();
        let withheld = lines.remove(1);
        let mangled = format!(
            "{}\nnot json at all\n{{\"key\":\"zz\",\"canon\":\"c\",\"resp\":\"r\"}}\n\
             {{\"key\":\"0000000000000003\",\"canon\":\"c\",\"resp\":\"not a response\"}}\n\
             {{\"key\":\"00000000000\n{withheld}\n",
            lines.join("\n")
        );
        std::fs::write(&path.0, mangled).unwrap();

        let fresh = SolutionCache::new(8);
        assert_eq!(fresh.load(&path.0).unwrap(), 2, "both real entries survive");
        assert!(fresh.get(1, &canon(1)).is_some());
        assert!(fresh.get(2, &canon(2)).is_some());
        assert!(fresh.get(3, "c").is_none());
    }

    #[test]
    fn loading_missing_snapshot_is_not_found() {
        let path = TempPath::new("missing.jsonl");
        let c = SolutionCache::new(4);
        let err = c.load(&path.0).unwrap_err();
        assert_eq!(err.kind(), std::io::ErrorKind::NotFound);
    }

    #[test]
    fn fingerprint_collision_misses_instead_of_serving_wrong_instance() {
        // Two different instances whose fingerprints collide on the same
        // 64-bit key: the canonical-text check must turn the lookup into a
        // miss, never hand instance B instance A's placement.
        let c = SolutionCache::new(4);
        c.insert(7, Arc::from("instance-a"), resp(1));
        assert!(c.get(7, "instance-b").is_none());
        assert_eq!(c.stats(), (0, 1));
        // The colliding instance may then claim the slot like any write.
        c.insert(7, Arc::from("instance-b"), resp(2));
        assert_eq!(c.get(7, "instance-b").unwrap().area, 2.0);
        assert!(c.get(7, "instance-a").is_none());
    }
}
