//! An LRU solution cache keyed by instance fingerprints.
//!
//! Floorplanning is expensive and deterministic given the instance and
//! parameters, so repeated instances (common in parameter sweeps and load
//! tests) can be answered from memory. Eviction is least-recently-used via
//! a monotone stamp per entry; hit/miss totals are relaxed atomics so the
//! counters cost nothing on the solve path.
//!
//! The 64-bit FNV fingerprint is only an index: every entry also stores
//! the [`canonical`](crate::fingerprint::canonical) instance text, and a
//! lookup whose canonical form differs is a **miss** — a hash collision
//! (FNV-1a is trivially collidable by an adversarial client) can never
//! serve the wrong instance's placement.

use crate::protocol::JobResponse;
use std::collections::HashMap;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Mutex};

struct Entry {
    stamp: u64,
    /// Canonical instance text; compared on every hit to rule out
    /// fingerprint collisions. Shared (`Arc<str>`) because the engine
    /// carries the same text through the single-flight table and the job
    /// queue — one allocation per instance, not one per subsystem.
    canon: Arc<str>,
    value: JobResponse,
}

/// A bounded LRU map from fingerprint key to solved response.
///
/// Stored responses are templates: per-job fields (`id`, `micros`,
/// `cached`) are rewritten by [`SolutionCache::get`]'s caller, so one
/// cached solve can answer many differently-numbered jobs.
pub struct SolutionCache {
    map: Mutex<(HashMap<u64, Entry>, u64)>,
    capacity: usize,
    hits: AtomicU64,
    misses: AtomicU64,
}

impl SolutionCache {
    /// A cache holding at most `capacity` solutions; 0 disables storage
    /// (every lookup misses).
    #[must_use]
    pub fn new(capacity: usize) -> Self {
        SolutionCache {
            map: Mutex::new((HashMap::new(), 0)),
            capacity,
            hits: AtomicU64::new(0),
            misses: AtomicU64::new(0),
        }
    }

    /// Looks up `key`, refreshing its recency on a hit and counting the
    /// outcome either way. An entry whose stored canonical text differs
    /// from `canon` is a fingerprint collision and counts as a miss.
    #[must_use]
    pub fn get(&self, key: u64, canon: &str) -> Option<JobResponse> {
        let mut guard = self.map.lock().expect("cache lock");
        let (map, clock) = &mut *guard;
        *clock += 1;
        let stamp = *clock;
        match map.get_mut(&key) {
            Some(entry) if *entry.canon == *canon => {
                entry.stamp = stamp;
                self.hits.fetch_add(1, Ordering::Relaxed);
                Some(entry.value.clone())
            }
            _ => {
                self.misses.fetch_add(1, Ordering::Relaxed);
                None
            }
        }
    }

    /// Stores `value` under `key` (with its canonical text `canon` for
    /// collision verification), evicting the least-recently-used entry
    /// when the cache is full. A no-op at capacity 0.
    pub fn insert(&self, key: u64, canon: Arc<str>, value: JobResponse) {
        if self.capacity == 0 {
            return;
        }
        let mut guard = self.map.lock().expect("cache lock");
        let (map, clock) = &mut *guard;
        *clock += 1;
        let stamp = *clock;
        if map.len() >= self.capacity && !map.contains_key(&key) {
            let oldest = map.iter().min_by_key(|(_, e)| e.stamp).map(|(&k, _)| k);
            if let Some(oldest) = oldest {
                map.remove(&oldest);
            }
        }
        map.insert(
            key,
            Entry {
                stamp,
                canon,
                value,
            },
        );
    }

    /// `(hits, misses)` since construction.
    #[must_use]
    pub fn stats(&self) -> (u64, u64) {
        (
            self.hits.load(Ordering::Relaxed),
            self.misses.load(Ordering::Relaxed),
        )
    }

    /// Number of solutions currently stored.
    #[must_use]
    pub fn len(&self) -> usize {
        self.map.lock().expect("cache lock").0.len()
    }

    /// Whether the cache currently stores nothing.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn resp(id: u64) -> JobResponse {
        let mut r = JobResponse::failure(id, "");
        r.ok = true;
        r.area = id as f64;
        r
    }

    /// Shorthand: entry `k`'s canonical text in these tests is just `k`
    /// stringified.
    fn canon(key: u64) -> Arc<str> {
        Arc::from(key.to_string())
    }

    #[test]
    fn miss_then_hit() {
        let c = SolutionCache::new(4);
        assert!(c.get(7, &canon(7)).is_none());
        c.insert(7, canon(7), resp(1));
        let got = c.get(7, &canon(7)).expect("hit");
        assert_eq!(got.area, 1.0);
        assert_eq!(c.stats(), (1, 1));
    }

    #[test]
    fn lru_evicts_least_recently_used() {
        let c = SolutionCache::new(2);
        c.insert(1, canon(1), resp(1));
        c.insert(2, canon(2), resp(2));
        assert!(c.get(1, &canon(1)).is_some()); // refresh 1: now 2 is the LRU entry
        c.insert(3, canon(3), resp(3));
        assert_eq!(c.len(), 2);
        assert!(c.get(2, &canon(2)).is_none(), "2 should have been evicted");
        assert!(c.get(1, &canon(1)).is_some() && c.get(3, &canon(3)).is_some());
    }

    #[test]
    fn zero_capacity_never_stores() {
        let c = SolutionCache::new(0);
        c.insert(1, canon(1), resp(1));
        assert!(c.get(1, &canon(1)).is_none());
        assert!(c.is_empty());
        assert_eq!(c.stats(), (0, 1));
    }

    #[test]
    fn reinsert_same_key_keeps_size() {
        let c = SolutionCache::new(2);
        c.insert(1, canon(1), resp(1));
        c.insert(1, canon(1), resp(9));
        assert_eq!(c.len(), 1);
        assert_eq!(c.get(1, &canon(1)).unwrap().area, 9.0);
    }

    #[test]
    fn fingerprint_collision_misses_instead_of_serving_wrong_instance() {
        // Two different instances whose fingerprints collide on the same
        // 64-bit key: the canonical-text check must turn the lookup into a
        // miss, never hand instance B instance A's placement.
        let c = SolutionCache::new(4);
        c.insert(7, Arc::from("instance-a"), resp(1));
        assert!(c.get(7, "instance-b").is_none());
        assert_eq!(c.stats(), (0, 1));
        // The colliding instance may then claim the slot like any write.
        c.insert(7, Arc::from("instance-b"), resp(2));
        assert_eq!(c.get(7, "instance-b").unwrap().area, 2.0);
        assert!(c.get(7, "instance-a").is_none());
    }
}
