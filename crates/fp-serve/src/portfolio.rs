//! Deadline-aware solver portfolio: race heterogeneous backends on one
//! job, share the incumbent, cancel the losers.
//!
//! Three backends cover complementary regimes:
//!
//! * **milp** — the paper's successive-augmentation pipeline plus the
//!   improvement loop: slow, highest quality. Under a tight deadline the
//!   shared incumbent is injected into every step MILP as a
//!   branch-and-bound cutoff, letting a fast heuristic answer prune the
//!   search or abort it outright.
//! * **annealer** — the Wong-Liu slicing annealer (`fp-slicing`),
//!   width-constrained to the job's chip width and legalized onto the
//!   skyline so its answer lives on the same fixed outline.
//! * **analytic** — smoothed gradient descent (`fp-analytic`), the
//!   fastest to a decent placement on tight budgets.
//!
//! The race runs each backend on its own thread under one shared
//! deadline. When plenty of budget remains the race is **best-of-N**
//! (wait for everyone, pick the lowest cost); under a tight deadline it
//! degrades to **any-of-N** (first legal answer wins and the rest are
//! cancelled through their cooperative [`StopFlag`]s). Either way every
//! leg's outcome is published as an [`Event::BackendDone`] and the race
//! as an [`Event::Portfolio`].

use fp_core::{
    Floorplan, FloorplanConfig, FloorplanError, Floorplanner, LegalizeItem, Objective,
    SharedIncumbent, StopFlag,
};
use fp_netlist::Netlist;
use fp_obs::{Event, Phase, Tracer};
use std::sync::{mpsc, Arc};
use std::time::{Duration, Instant};

/// Remaining budget below which the race switches from best-of-N to
/// any-of-N (first legal answer wins).
const ANY_OF_THRESHOLD: Duration = Duration::from_millis(250);

/// One raceable solver backend.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Backend {
    /// Successive-augmentation MILP pipeline + improvement loop.
    Milp,
    /// Wong-Liu slicing annealer, legalized onto the shared outline.
    Annealer,
    /// Smoothed analytical placement (`fp-analytic`).
    Analytic,
}

impl Backend {
    /// Stable lowercase name used in responses and trace events.
    #[must_use]
    pub fn as_str(self) -> &'static str {
        match self {
            Backend::Milp => "milp",
            Backend::Annealer => "annealer",
            Backend::Analytic => "analytic",
        }
    }

    /// Parses one backend name (the inverse of [`Backend::as_str`]).
    #[must_use]
    pub fn parse(s: &str) -> Option<Backend> {
        match s.trim() {
            "milp" => Some(Backend::Milp),
            "annealer" => Some(Backend::Annealer),
            "analytic" => Some(Backend::Analytic),
            _ => None,
        }
    }

    /// Parses a comma-separated backend list, rejecting unknown names
    /// and duplicates.
    ///
    /// # Errors
    ///
    /// Names the first unknown or repeated backend.
    pub fn parse_list(s: &str) -> Result<Vec<Backend>, String> {
        let mut out = Vec::new();
        for name in s.split(',').filter(|n| !n.trim().is_empty()) {
            let b = Backend::parse(name).ok_or_else(|| {
                format!(
                    "unknown backend '{}' (expected milp, annealer or analytic)",
                    name.trim()
                )
            })?;
            if out.contains(&b) {
                return Err(format!("duplicate backend '{}'", b.as_str()));
            }
            out.push(b);
        }
        Ok(out)
    }
}

/// The winning result of one race.
#[derive(Debug)]
pub struct RaceOutcome {
    /// The winner's legal floorplan.
    pub floorplan: Floorplan,
    /// Stable name of the winning backend.
    pub winner: &'static str,
}

/// Objective cost of a floorplan under the job's objective — the metric
/// the best-of-N decision and the shared incumbent use.
fn cost_of(fp: &Floorplan, netlist: &Netlist, objective: Objective) -> f64 {
    match objective {
        Objective::Area => fp.chip_area(),
        Objective::AreaPlusWirelength { lambda } => {
            fp.chip_area() + lambda * fp.center_wirelength(netlist)
        }
    }
}

/// Runs the full MILP pipeline (augment → improve), mirroring the
/// sequential ladder. `incumbent` is `Some` only under a tight deadline
/// (any-of mode): the shared cell then feeds every step MILP an external
/// branch-and-bound cutoff, so a heuristic leg that already answered
/// lets this leg prune hard or abort instead of burning the rest of the
/// budget on a provably losing search. In best-of mode no incumbent is
/// injected — the leg must reproduce the ladder's exact answer, which is
/// what makes the race's cost provably never worse than the ladder's
/// (abort-on-incumbent reasons at the augmentation level and cannot
/// account for gains the improvement rung would have made).
fn milp_leg(
    netlist: &Netlist,
    fp_config: &FloorplanConfig,
    stop: &StopFlag,
    incumbent: Option<Arc<SharedIncumbent>>,
    improve_rounds: usize,
) -> Result<Floorplan, FloorplanError> {
    let config = fp_config
        .clone()
        .with_stop(stop.clone())
        .with_incumbent(incumbent);
    let result = Floorplanner::with_config(netlist, config.clone()).run()?;
    let mut fp = result.floorplan;
    let expired = config.deadline.is_some_and(|d| Instant::now() >= d);
    if improve_rounds > 0 && !expired && !stop.is_set() {
        if let Ok(better) = fp_core::improve(&fp, netlist, &config, improve_rounds) {
            fp = better;
        }
    }
    Ok(fp)
}

/// Runs the slicing annealer width-constrained to the job's chip width,
/// then legalizes its tree bottom-row-first onto the shared outline.
fn annealer_leg(
    netlist: &Netlist,
    fp_config: &FloorplanConfig,
    stop: &StopFlag,
    seed: u64,
) -> Result<Floorplan, FloorplanError> {
    let width = fp_core::derive_chip_width(netlist, fp_config)?;
    let mut annealer = fp_slicing::SlicingAnnealer::new(netlist);
    annealer
        .with_seed(seed ^ 0x511C_1986)
        .with_deadline(fp_config.deadline)
        .with_stop(stop.clone())
        .with_max_width(Some(width));
    let result = annealer.run();
    // The slicing tree's own coordinates carry the placement intent:
    // legalize modules bottom row first so the skyline reproduces the
    // tree's stacking order on the shared outline.
    let mut order: Vec<(f64, f64, LegalizeItem)> = result
        .floorplan
        .iter()
        .map(|m| {
            let module = netlist.module(m.id);
            let width_adjust = if module.is_flexible() {
                (module.width_range().1 - m.rect.w).max(0.0)
            } else {
                0.0
            };
            (
                m.rect.y,
                m.rect.x,
                LegalizeItem {
                    id: m.id,
                    rotated: m.rotated,
                    width_adjust,
                },
            )
        })
        .collect();
    order.sort_by(|a, b| {
        a.0.total_cmp(&b.0)
            .then(a.1.total_cmp(&b.1))
            .then(a.2.id.cmp(&b.2.id))
    });
    let items: Vec<LegalizeItem> = order.into_iter().map(|(_, _, item)| item).collect();
    fp_core::legalize(netlist, fp_config, &items)
}

/// Runs smoothed analytical placement; `fp-analytic` legalizes its own
/// answer onto the same skyline, so the result is always legal.
fn analytic_leg(
    netlist: &Netlist,
    fp_config: &FloorplanConfig,
    stop: &StopFlag,
    seed: u64,
) -> Result<Floorplan, FloorplanError> {
    let config = fp_analytic::AnalyticConfig::default()
        .with_seed(seed)
        .with_floorplan(fp_config.clone().with_stop(stop.clone()));
    fp_analytic::place(netlist, &config).map(|r| r.floorplan)
}

/// Races `backends` on one job and returns the winner, or `None` when
/// every leg failed (the caller then falls back to the greedy skyline).
///
/// Each finishing leg publishes its `(cost, height)` to the shared
/// incumbent; under a tight deadline (any-of mode) the MILP leg reads it
/// as a branch-and-bound cutoff, so a fast heuristic answer tightens the
/// search mid-race (see [`milp_leg`] for why best-of mode does not
/// inject it). Losers are cancelled through their stop flags:
/// immediately in any-of-N mode, and after the decision in best-of-N
/// (where everyone runs to completion anyway).
pub fn race(
    netlist: &Netlist,
    fp_config: &FloorplanConfig,
    backends: &[Backend],
    improve_rounds: usize,
    seed: u64,
    tracer: &Tracer,
) -> Option<RaceOutcome> {
    let started = Instant::now();
    let incumbent = Arc::new(SharedIncumbent::default());
    let stops: Vec<StopFlag> = backends.iter().map(|_| StopFlag::new()).collect();
    let any_of = fp_config
        .deadline
        .is_some_and(|d| d.saturating_duration_since(started) < ANY_OF_THRESHOLD);
    let objective = fp_config.objective;

    let (tx, rx) = mpsc::channel::<(usize, Result<Floorplan, FloorplanError>, u64)>();
    let mut results: Vec<Option<(Result<Floorplan, FloorplanError>, u64)>> =
        (0..backends.len()).map(|_| None).collect();
    let mut first_ok: Option<usize> = None;
    std::thread::scope(|scope| {
        for (i, backend) in backends.iter().enumerate() {
            let tx = tx.clone();
            let stop = stops[i].clone();
            let incumbent = Arc::clone(&incumbent);
            scope.spawn(move || {
                let leg_started = Instant::now();
                let outcome = match backend {
                    Backend::Milp => {
                        let shared = any_of.then(|| Arc::clone(&incumbent));
                        milp_leg(netlist, fp_config, &stop, shared, improve_rounds)
                    }
                    Backend::Annealer => annealer_leg(netlist, fp_config, &stop, seed),
                    Backend::Analytic => analytic_leg(netlist, fp_config, &stop, seed),
                };
                if let Ok(fp) = &outcome {
                    incumbent.publish(cost_of(fp, netlist, objective), fp.chip_height());
                }
                let micros = leg_started.elapsed().as_micros() as u64;
                let _ = tx.send((i, outcome, micros));
            });
        }
        drop(tx);
        while let Ok((i, outcome, micros)) = rx.recv() {
            if outcome.is_ok() && first_ok.is_none() {
                first_ok = Some(i);
                if any_of {
                    // First legal answer wins: cancel everyone else and
                    // keep draining (cancelled legs exit quickly).
                    for stop in &stops {
                        stop.trigger();
                    }
                }
            }
            results[i] = Some((outcome, micros));
        }
    });

    // Pick the winner: first legal answer under a tight deadline, lowest
    // cost otherwise (ties break toward the earlier backend in the list,
    // which keeps the decision deterministic).
    let winner = if any_of {
        first_ok
    } else {
        results
            .iter()
            .enumerate()
            .filter_map(|(i, slot)| match slot {
                Some((Ok(fp), _)) => Some((i, cost_of(fp, netlist, objective))),
                _ => None,
            })
            .min_by(|a, b| a.1.total_cmp(&b.1).then(a.0.cmp(&b.0)))
            .map(|(i, _)| i)
    };

    for (i, backend) in backends.iter().enumerate() {
        let (cost, micros) = match &results[i] {
            Some((Ok(fp), micros)) => (cost_of(fp, netlist, objective), *micros),
            Some((Err(_), micros)) => (f64::NAN, *micros),
            None => (f64::NAN, 0),
        };
        tracer.emit(
            Phase::Serve,
            Event::BackendDone {
                backend: backend.as_str(),
                micros,
                cost,
                won: winner == Some(i),
            },
        );
    }
    tracer.emit(
        Phase::Serve,
        Event::Portfolio {
            backends: backends.len(),
            winner: winner.map_or("none", |i| backends[i].as_str()),
            micros: started.elapsed().as_micros() as u64,
        },
    );

    let idx = winner?;
    let (Ok(floorplan), _) = results.swap_remove(idx)? else {
        return None;
    };
    Some(RaceOutcome {
        floorplan,
        winner: backends[idx].as_str(),
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn backend_names_round_trip() {
        for b in [Backend::Milp, Backend::Annealer, Backend::Analytic] {
            assert_eq!(Backend::parse(b.as_str()), Some(b));
        }
        assert_eq!(Backend::parse("nope"), None);
    }

    #[test]
    fn backend_lists_parse_and_reject_garbage() {
        assert_eq!(
            Backend::parse_list("milp, annealer,analytic").unwrap(),
            vec![Backend::Milp, Backend::Annealer, Backend::Analytic]
        );
        assert_eq!(Backend::parse_list("").unwrap(), Vec::new());
        assert!(Backend::parse_list("milp,quantum").is_err());
        assert!(Backend::parse_list("milp,milp").is_err());
    }

    #[test]
    fn race_returns_a_legal_floorplan_and_names_the_winner() {
        let netlist = fp_netlist::generator::ProblemGenerator::new(7, 21).generate();
        let config = FloorplanConfig::default();
        let outcome = race(
            &netlist,
            &config,
            &[Backend::Annealer, Backend::Analytic],
            0,
            0xFEED,
            &Tracer::disabled(),
        )
        .expect("heuristic backends always produce a floorplan");
        assert!(outcome.floorplan.is_valid());
        assert_eq!(outcome.floorplan.len(), 7);
        assert!(matches!(outcome.winner, "annealer" | "analytic"));
    }

    #[test]
    fn any_of_race_under_expired_deadline_still_answers() {
        let netlist = fp_netlist::generator::ProblemGenerator::new(6, 5).generate();
        let config = FloorplanConfig::default()
            .with_deadline(Some(Instant::now() + Duration::from_millis(1)));
        let outcome = race(
            &netlist,
            &config,
            &[Backend::Annealer, Backend::Analytic],
            0,
            7,
            &Tracer::disabled(),
        )
        .expect("heuristic legs answer even on a spent budget");
        assert!(outcome.floorplan.is_valid());
    }
}
