//! A concurrent floorplanning service over the DAC'90 pipeline.
//!
//! The paper's floorplanner is a batch algorithm: one netlist in, one
//! placement out. This crate wraps the whole pipeline (successive
//! augmentation → improvement → global routing) in a service shape so many
//! instances can be solved concurrently with bounded resources:
//!
//! * **Typed jobs** ([`JobRequest`] / [`JobResponse`]) with a line-delimited
//!   flat-JSON codec ([`protocol`]) reusing `fp_obs`'s hand-rolled trace
//!   parser — no external JSON dependency.
//! * **A bounded MPMC queue** ([`queue::Bounded`]) feeding a worker pool
//!   ([`Engine`]); each worker runs the full pipeline per job.
//! * **Per-job deadlines** measured from submission (queue wait counts
//!   against the budget) with *graceful degradation*: a job that exceeds its
//!   budget returns the greedy bottom-left skyline placement flagged
//!   `degraded: true` instead of an error.
//! * **A fingerprint solution cache** ([`cache::SolutionCache`]): instances
//!   are keyed by an FNV-1a hash over canonical (sorted) module/net data
//!   plus the solve parameters ([`fingerprint`]), with hit/miss counters
//!   surfaced as [`fp_obs::Event::CacheHit`] / [`fp_obs::Event::CacheMiss`]
//!   trace events.
//! * **A TCP front end** ([`Server`]): one JSON object per line in, one per
//!   line out, plus an in-process [`Client`] for embedding and benches.
//!
//! # Example
//!
//! ```
//! use fp_serve::{Engine, JobRequest, ServeConfig};
//!
//! let engine = Engine::start(ServeConfig::default().with_workers(2));
//! let client = engine.client();
//! let netlist = fp_netlist::generator::ProblemGenerator::new(4, 7).generate();
//! let resp = client.call(JobRequest::new(1, &netlist));
//! assert!(resp.ok, "{:?}", resp.error);
//! assert!(!resp.placement.is_empty());
//! engine.shutdown();
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod cache;
pub mod fingerprint;
pub mod protocol;
pub mod queue;
mod server;

pub use protocol::{JobRequest, JobResponse, PlacedRect};
pub use server::{Client, Engine, ServeConfig, Server};
