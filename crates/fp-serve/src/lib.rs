//! A concurrent floorplanning service over the DAC'90 pipeline.
//!
//! The paper's floorplanner is a batch algorithm: one netlist in, one
//! placement out. This crate wraps the whole pipeline (successive
//! augmentation → improvement → global routing) in a service shape so many
//! instances can be solved concurrently with bounded resources:
//!
//! * **Typed jobs** ([`JobRequest`] / [`JobResponse`]) with a line-delimited
//!   flat-JSON codec ([`protocol`]) reusing `fp_obs`'s hand-rolled trace
//!   parser — no external JSON dependency.
//! * **A bounded MPMC queue** ([`queue::Bounded`]) feeding a worker pool
//!   ([`Engine`]); each worker runs the full pipeline per job. The queue
//!   pins a close/drain ordering guarantee (no job accepted after close,
//!   every accepted job delivered) that clean shutdown is built on.
//! * **Single-flight coalescing** ([`singleflight::Inflight`]): N
//!   concurrent identical jobs share one solve, fanned out to N waiters,
//!   with the same canonical-text collision check as the cache.
//! * **Admission control**: bounded per-shard and global queue depth;
//!   overload answers a typed `retry_after_ms` load-shed response
//!   ([`JobResponse::is_shed`]) instead of silently queueing latency.
//! * **Per-job deadlines** measured from submission (queue wait counts
//!   against the budget) with *graceful degradation*: a job that exceeds its
//!   budget returns the greedy bottom-left skyline placement flagged
//!   `degraded: true` instead of an error.
//! * **A fingerprint solution cache** ([`cache::SolutionCache`]): instances
//!   are keyed by an FNV-1a hash over canonical (sorted) module/net data
//!   plus the solve parameters ([`fingerprint`]), with hit/miss counters
//!   surfaced as [`fp_obs::Event::CacheHit`] / [`fp_obs::Event::CacheMiss`]
//!   trace events.
//! * **A sharded event-loop TCP front end** ([`Server`]): nonblocking
//!   sockets, one poll(2) thread per shard owning its connections' buffers
//!   and framing ([`IoMode::Event`]); the original thread-per-connection
//!   design survives as [`IoMode::Threaded`] for comparison. Plus an
//!   in-process [`Client`] for embedding and benches.
//!
//! # Example
//!
//! ```
//! use fp_serve::{Engine, JobRequest, ServeConfig};
//!
//! let engine = Engine::start(ServeConfig::default().with_workers(2));
//! let client = engine.client();
//! let netlist = fp_netlist::generator::ProblemGenerator::new(4, 7).generate();
//! let resp = client.call(JobRequest::new(1, &netlist));
//! assert!(resp.ok, "{:?}", resp.error);
//! assert!(!resp.placement.is_empty());
//! engine.shutdown();
//! ```

// `deny` rather than `forbid`: the `sys` module lifts it for exactly one
// poll(2) FFI call (see its module docs); everything else stays safe.
#![deny(unsafe_code)]
#![warn(missing_docs)]

pub mod cache;
pub mod delta;
mod engine;
pub mod fingerprint;
mod portfolio;
pub mod protocol;
pub mod queue;
mod server;
#[cfg(unix)]
mod shard;
pub mod singleflight;
#[cfg(unix)]
mod sys;

pub use delta::{apply as apply_delta, parse_ops as parse_delta_ops, DeltaOp, DeltaOutcome};
pub use engine::{Client, Engine, EngineStats, IoMode, ServeConfig};
pub use portfolio::{race, Backend, RaceOutcome};
pub use protocol::{JobRequest, JobResponse, PlacedRect};
pub use server::{ServeAccounting, Server, ShutdownReport};
