//! Single-flight coalescing of identical in-flight jobs.
//!
//! The table maps a 64-bit FNV fingerprint to the set of waiters for an
//! instance that is currently being solved. The first waiter to arrive
//! for a canonical instance becomes the **leader** and owns the solve;
//! everyone who joins before the leader completes is a **follower** and
//! receives a fan-out copy of the leader's response. Like the solution
//! cache, a fingerprint is only trusted together with its canonical
//! text: two different instances that collide on the hash occupy
//! *separate* flights under the same key and never coalesce.
//!
//! The table is generic over the waiter payload so the engine can park
//! reply routes in it while the property tests drive it with plain
//! markers from many threads.

use std::collections::HashMap;
use std::sync::{Arc, Mutex};

/// What [`Inflight::join`] made of the caller.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Admit {
    /// First waiter for this canonical instance: run the solve, then
    /// [`Inflight::complete`] to collect everyone to answer.
    Leader,
    /// An identical instance is already in flight; this waiter was parked
    /// and will be returned by the leader's `complete`.
    Follower,
}

/// One in-flight solve: the canonical text that disambiguates hash
/// collisions, and everyone waiting on the result (leader first).
struct Flight<T> {
    canon: Arc<str>,
    waiters: Vec<T>,
}

/// The single-flight table. All operations take one short mutex; the
/// solve itself happens outside the lock.
pub struct Inflight<T> {
    map: Mutex<HashMap<u64, Vec<Flight<T>>>>,
}

impl<T> Default for Inflight<T> {
    fn default() -> Self {
        Inflight::new()
    }
}

impl<T> Inflight<T> {
    /// An empty table.
    #[must_use]
    pub fn new() -> Self {
        Inflight {
            map: Mutex::new(HashMap::new()),
        }
    }

    /// Parks `waiter` under (`key`, `canon`).
    ///
    /// Returns [`Admit::Leader`] when no flight for this canonical text
    /// exists (the caller must solve and then call
    /// [`complete`](Inflight::complete) exactly once), or
    /// [`Admit::Follower`] when the waiter joined an existing flight.
    /// A same-key flight whose canonical text differs is a hash
    /// collision and is left untouched — the caller leads its own flight.
    pub fn join(&self, key: u64, canon: &Arc<str>, waiter: T) -> Admit {
        let mut map = self.map.lock().expect("inflight lock");
        let flights = map.entry(key).or_default();
        if let Some(flight) = flights.iter_mut().find(|f| *f.canon == **canon) {
            flight.waiters.push(waiter);
            return Admit::Follower;
        }
        flights.push(Flight {
            canon: Arc::clone(canon),
            waiters: vec![waiter],
        });
        Admit::Leader
    }

    /// Removes the flight for (`key`, `canon`) and returns its waiters,
    /// leader first. The leader calls this once its solve finished (or
    /// was shed/refused) and answers every returned waiter; waiters that
    /// join after this point start a fresh flight.
    ///
    /// Returns an empty vector if no such flight exists (already
    /// completed — callers treat that as "nothing left to answer").
    #[must_use]
    pub fn complete(&self, key: u64, canon: &str) -> Vec<T> {
        let mut map = self.map.lock().expect("inflight lock");
        let Some(flights) = map.get_mut(&key) else {
            return Vec::new();
        };
        let Some(pos) = flights.iter().position(|f| *f.canon == *canon) else {
            return Vec::new();
        };
        let flight = flights.swap_remove(pos);
        if flights.is_empty() {
            map.remove(&key);
        }
        flight.waiters
    }

    /// Number of distinct in-flight canonical instances.
    #[must_use]
    pub fn len(&self) -> usize {
        self.map
            .lock()
            .expect("inflight lock")
            .values()
            .map(Vec::len)
            .sum()
    }

    /// Whether no flight is outstanding.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Total waiters parked across all flights (leaders included).
    #[must_use]
    pub fn total_waiters(&self) -> usize {
        self.map
            .lock()
            .expect("inflight lock")
            .values()
            .flat_map(|flights| flights.iter())
            .map(|f| f.waiters.len())
            .sum()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn canon(s: &str) -> Arc<str> {
        Arc::from(s)
    }

    #[test]
    fn leader_then_followers_then_fanout() {
        let t: Inflight<u32> = Inflight::new();
        let c = canon("problem p\n");
        assert_eq!(t.join(7, &c, 0), Admit::Leader);
        assert_eq!(t.join(7, &c, 1), Admit::Follower);
        assert_eq!(t.join(7, &c, 2), Admit::Follower);
        assert_eq!(t.len(), 1);
        assert_eq!(t.total_waiters(), 3);
        let waiters = t.complete(7, &c);
        assert_eq!(waiters, vec![0, 1, 2], "leader first, joiners in order");
        assert!(t.is_empty());
        // After completion the next joiner leads a fresh flight.
        assert_eq!(t.join(7, &c, 3), Admit::Leader);
        assert_eq!(t.complete(7, &c), vec![3]);
    }

    #[test]
    fn hash_collision_never_coalesces() {
        let t: Inflight<&str> = Inflight::new();
        let a = canon("problem a\n");
        let b = canon("problem b\n");
        // Same fingerprint, different canonical text: two flights.
        assert_eq!(t.join(42, &a, "a-lead"), Admit::Leader);
        assert_eq!(t.join(42, &b, "b-lead"), Admit::Leader);
        assert_eq!(t.join(42, &a, "a-follow"), Admit::Follower);
        assert_eq!(t.len(), 2);
        assert_eq!(t.complete(42, &b), vec!["b-lead"]);
        assert_eq!(t.complete(42, &a), vec!["a-lead", "a-follow"]);
        assert!(t.is_empty());
    }

    #[test]
    fn complete_unknown_flight_returns_nothing() {
        let t: Inflight<u8> = Inflight::new();
        assert!(t.complete(1, "missing").is_empty());
        let c = canon("x");
        assert_eq!(t.join(1, &c, 5), Admit::Leader);
        assert!(t.complete(1, "other-text").is_empty());
        assert_eq!(t.complete(1, &c), vec![5]);
    }
}
