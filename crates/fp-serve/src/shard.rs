//! The sharded event-loop front end.
//!
//! One poll thread per shard owns its connections outright: their
//! nonblocking sockets, read buffers, frame (line) decoding, and write
//! buffers. Nothing else touches a connection; workers hand finished
//! response lines to the owning shard through its inbox and a wake
//! socket, and the shard writes them out when the peer can take them.
//! This replaces the old two-threads-per-connection design with
//! `1 + shards` threads of IO regardless of connection count.
//!
//! A shard never blocks on anything but poll(2): requests are submitted
//! with shedding admission ([`Admission::Shed`]), and a per-shard bound
//! on decoded-but-unanswered jobs sheds excess load before it reaches
//! the global queue. On shutdown the shard stops reading, keeps
//! delivering answers for every job it accepted, and force-closes only
//! when the drain timeout expires.

use crate::engine::{self, Admission, Reply, Shared};
use crate::protocol::{JobRequest, JobResponse};
use crate::sys::{self, PollFd};
use fp_obs::{Event, Phase};
use std::collections::HashMap;
use std::io::{ErrorKind, Read, Write};
use std::net::{TcpListener, TcpStream};
use std::os::unix::io::AsRawFd;
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::{Arc, Mutex};
use std::thread::JoinHandle;
use std::time::Instant;

/// Messages other threads leave in a shard's inbox.
pub(crate) enum Inbound {
    /// The acceptor handed this shard a fresh connection.
    Conn(TcpStream),
    /// A worker finished a job for connection `conn`; `line` is the
    /// encoded response, `shed` says whether it was a load-shed answer
    /// (for the shard's accounting).
    Response { conn: u64, line: String, shed: bool },
}

/// The cross-thread face of one shard: its inbox, wake socket, drain
/// flag, and lifetime counters.
pub(crate) struct ShardShared {
    index: usize,
    inbox: Mutex<Vec<Inbound>>,
    /// Writer half of the wake pair; one byte = "look at your inbox".
    wake: TcpStream,
    draining: AtomicBool,
    conns: AtomicU64,
    accepted: AtomicU64,
    completed: AtomicU64,
    shed: AtomicU64,
    malformed: AtomicU64,
}

impl ShardShared {
    /// Hands the shard a new connection (acceptor thread).
    pub(crate) fn adopt(&self, stream: TcpStream) {
        self.inbox
            .lock()
            .expect("shard inbox")
            .push(Inbound::Conn(stream));
        self.wake();
    }

    /// Hands the shard a finished response line (worker threads).
    pub(crate) fn deliver(&self, conn: u64, line: String, shed: bool) {
        self.inbox
            .lock()
            .expect("shard inbox")
            .push(Inbound::Response { conn, line, shed });
        self.wake();
    }

    /// Tells the shard to stop reading and flush out (shutdown).
    pub(crate) fn start_drain(&self) {
        self.draining.store(true, Ordering::Relaxed);
        self.wake();
    }

    /// `(conns, accepted, completed, shed, malformed)` so far.
    pub(crate) fn counters(&self) -> (u64, u64, u64, u64, u64) {
        (
            self.conns.load(Ordering::Relaxed),
            self.accepted.load(Ordering::Relaxed),
            self.completed.load(Ordering::Relaxed),
            self.shed.load(Ordering::Relaxed),
            self.malformed.load(Ordering::Relaxed),
        )
    }

    fn wake(&self) {
        // Nonblocking: a full wake pipe means a wake is already pending,
        // which is all we need.
        let _ = (&self.wake).write(&[1]);
    }
}

/// One running shard: its cross-thread handle and the poll thread.
pub(crate) struct ShardHandle {
    pub(crate) shared: Arc<ShardShared>,
    pub(crate) thread: JoinHandle<()>,
}

/// A connected-loopback TCP pair standing in for pipe(2) — pure std, so
/// the only FFI in the crate stays poll(2) itself.
fn wake_pair() -> std::io::Result<(TcpStream, TcpStream)> {
    let listener = TcpListener::bind("127.0.0.1:0")?;
    let writer = TcpStream::connect(listener.local_addr()?)?;
    let (reader, _) = listener.accept()?;
    writer.set_nonblocking(true)?;
    reader.set_nonblocking(true)?;
    writer.set_nodelay(true)?;
    Ok((writer, reader))
}

/// Spawns shard `index` over `engine`.
pub(crate) fn spawn(index: usize, engine: Arc<Shared>) -> std::io::Result<ShardHandle> {
    let (wake_tx, wake_rx) = wake_pair()?;
    let shared = Arc::new(ShardShared {
        index,
        inbox: Mutex::new(Vec::new()),
        wake: wake_tx,
        draining: AtomicBool::new(false),
        conns: AtomicU64::new(0),
        accepted: AtomicU64::new(0),
        completed: AtomicU64::new(0),
        shed: AtomicU64::new(0),
        malformed: AtomicU64::new(0),
    });
    let thread = {
        let shared = Arc::clone(&shared);
        std::thread::spawn(move || run(&shared, &engine, &wake_rx))
    };
    Ok(ShardHandle { shared, thread })
}

/// One connection, owned by exactly one shard.
struct Conn {
    stream: TcpStream,
    fd: i32,
    /// Bytes read but not yet framed into a line.
    buf: Vec<u8>,
    /// `buf[..scanned]` is known newline-free (keeps slow-loris drip
    /// feeds linear instead of rescanning the buffer per byte).
    scanned: usize,
    /// Encoded responses waiting for the peer to accept them.
    out: Vec<u8>,
    out_pos: usize,
    /// Jobs submitted for this connection and not yet answered.
    pending: usize,
    /// Peer half-closed (EOF read); finish pending work, then close.
    read_closed: bool,
    /// Protocol violation (oversized line): close once `out` flushes.
    close_when_flushed: bool,
    dead: bool,
}

impl Conn {
    fn new(stream: TcpStream, fd: i32) -> Self {
        Conn {
            stream,
            fd,
            buf: Vec::new(),
            scanned: 0,
            out: Vec::new(),
            out_pos: 0,
            pending: 0,
            read_closed: false,
            close_when_flushed: false,
            dead: false,
        }
    }

    fn flushed(&self) -> bool {
        self.out_pos >= self.out.len()
    }

    fn queue_line(&mut self, line: &str) {
        self.out.extend_from_slice(line.as_bytes());
        self.out.push(b'\n');
    }
}

/// The shard loop. Exits when draining and every accepted job has been
/// answered and flushed (or the drain timeout expires), then emits
/// [`Event::ShardStats`].
fn run(shard: &Arc<ShardShared>, engine: &Arc<Shared>, wake_rx: &TcpStream) {
    let tracer = engine.config.tracer.clone();
    let per_shard_pending = engine.config.per_shard_pending.max(1);
    let max_line = engine.config.max_line_bytes;
    let drain_timeout = engine.config.drain_timeout;

    let mut conns: HashMap<u64, Conn> = HashMap::new();
    let mut next_conn: u64 = 0;
    // Decoded-but-unanswered jobs across this shard's connections; only
    // this thread touches it (responses arrive through the inbox).
    let mut pending_total: usize = 0;
    let mut drain_deadline: Option<Instant> = None;
    let wake_fd = wake_rx.as_raw_fd();

    loop {
        let draining = shard.draining.load(Ordering::Relaxed);
        if draining && drain_deadline.is_none() {
            drain_deadline = Some(Instant::now() + drain_timeout);
        }

        // Build the poll set: the wake socket first, then every live
        // connection with exactly the directions it currently cares
        // about. An entry with no requested events still reports errors.
        let mut fds = Vec::with_capacity(conns.len() + 1);
        fds.push(PollFd::new(wake_fd, sys::POLLIN));
        let mut order = Vec::with_capacity(conns.len());
        for (&id, conn) in &conns {
            let mut events = 0i16;
            if !conn.read_closed && !draining {
                events |= sys::POLLIN;
            }
            if !conn.flushed() {
                events |= sys::POLLOUT;
            }
            fds.push(PollFd::new(conn.fd, events));
            order.push(id);
        }
        // 250 ms cap so the drain deadline and the draining flag are
        // re-checked even with a silent poll set.
        if sys::poll_fds(&mut fds, 250).is_err() {
            // EINTR is retried inside; anything else means the poll set
            // itself is broken — fall through and let per-conn IO sort
            // the dead from the living.
        }

        if fds[0].readable() {
            let mut sink = [0u8; 64];
            loop {
                match (&*wake_rx).read(&mut sink) {
                    Ok(0) => break,
                    Ok(_) => {}
                    Err(e) if e.kind() == ErrorKind::WouldBlock => break,
                    Err(e) if e.kind() == ErrorKind::Interrupted => {}
                    Err(_) => break,
                }
            }
        }

        // Drain the inbox: adopt connections, buffer finished responses.
        let inbound = std::mem::take(&mut *shard.inbox.lock().expect("shard inbox"));
        for msg in inbound {
            match msg {
                Inbound::Conn(stream) => {
                    if draining {
                        continue; // refused: never read, nothing accepted
                    }
                    if stream.set_nonblocking(true).is_err() {
                        continue;
                    }
                    // Responses are single small lines in a request-reply
                    // exchange; Nagle + delayed ACK would add tens of
                    // milliseconds to each.
                    let _ = stream.set_nodelay(true);
                    let fd = stream.as_raw_fd();
                    shard.conns.fetch_add(1, Ordering::Relaxed);
                    conns.insert(next_conn, Conn::new(stream, fd));
                    next_conn += 1;
                }
                Inbound::Response { conn, line, shed } => {
                    pending_total = pending_total.saturating_sub(1);
                    if shed {
                        shard.shed.fetch_add(1, Ordering::Relaxed);
                    } else {
                        shard.completed.fetch_add(1, Ordering::Relaxed);
                    }
                    // A gone connection still counts: the job was
                    // answered, the peer just did not stay to hear it.
                    if let Some(c) = conns.get_mut(&conn) {
                        c.pending = c.pending.saturating_sub(1);
                        c.queue_line(&line);
                    }
                }
            }
        }

        // Service readiness per connection.
        for (slot, &id) in order.iter().enumerate() {
            let pf = fds[slot + 1];
            let Some(conn) = conns.get_mut(&id) else {
                continue;
            };
            if pf.broken() {
                conn.dead = true;
                continue;
            }
            if pf.readable() && !conn.read_closed && !draining {
                read_ready(
                    shard,
                    engine,
                    id,
                    conn,
                    &mut pending_total,
                    per_shard_pending,
                    max_line,
                );
            }
            // Responses buffered while draining this iteration's inbox
            // were not in this round's poll set; the next poll requests
            // POLLOUT for them and returns immediately.
            if pf.writable() && !conn.flushed() {
                flush_ready(conn);
            }
        }

        // Reap: broken connections immediately; graceful ones once every
        // accepted job is answered and written out.
        conns.retain(|_, c| {
            if c.dead {
                return false;
            }
            let done_gracefully =
                (c.read_closed || c.close_when_flushed) && c.pending == 0 && c.flushed();
            !done_gracefully
        });

        if draining {
            let flushed = conns.values().all(|c| c.flushed() || c.dead);
            let timed_out = drain_deadline.is_some_and(|d| Instant::now() >= d);
            if (pending_total == 0 && flushed) || timed_out {
                break;
            }
        }
    }

    let (conns_total, accepted, completed, shed, malformed) = shard.counters();
    tracer.emit(
        Phase::Serve,
        Event::ShardStats {
            shard: shard.index,
            conns: conns_total as usize,
            accepted,
            completed,
            shed,
            malformed,
        },
    );
    tracer.flush();
}

/// Reads everything currently available, frames complete lines, and
/// dispatches each one.
fn read_ready(
    shard: &Arc<ShardShared>,
    engine: &Arc<Shared>,
    conn_id: u64,
    conn: &mut Conn,
    pending_total: &mut usize,
    per_shard_pending: usize,
    max_line: usize,
) {
    let mut tmp = [0u8; 16384];
    loop {
        match conn.stream.read(&mut tmp) {
            Ok(0) => {
                // EOF: the peer finished sending (possibly a half-close;
                // shutdown(SHUT_WR) clients still read their answers).
                conn.read_closed = true;
                break;
            }
            Ok(n) => {
                conn.buf.extend_from_slice(&tmp[..n]);
                frame_lines(
                    shard,
                    engine,
                    conn_id,
                    conn,
                    pending_total,
                    per_shard_pending,
                );
                if conn.buf.len() > max_line {
                    // No newline within the frame bound: answer once,
                    // stop reading, close when the answer is out.
                    shard.malformed.fetch_add(1, Ordering::Relaxed);
                    let resp = JobResponse::failure(
                        0,
                        format!("line exceeds {max_line} bytes without newline"),
                    );
                    conn.queue_line(&resp.encode());
                    conn.buf.clear();
                    conn.scanned = 0;
                    conn.read_closed = true;
                    conn.close_when_flushed = true;
                    break;
                }
                if n < tmp.len() {
                    // Short read: the socket buffer is (momentarily)
                    // empty; let poll tell us about the rest.
                    break;
                }
            }
            Err(e) if e.kind() == ErrorKind::WouldBlock => break,
            Err(e) if e.kind() == ErrorKind::Interrupted => {}
            Err(_) => {
                conn.dead = true;
                break;
            }
        }
    }
}

/// Splits complete lines out of `conn.buf` and handles each.
fn frame_lines(
    shard: &Arc<ShardShared>,
    engine: &Arc<Shared>,
    conn_id: u64,
    conn: &mut Conn,
    pending_total: &mut usize,
    per_shard_pending: usize,
) {
    while let Some(rel) = conn.buf[conn.scanned..].iter().position(|&b| b == b'\n') {
        let end = conn.scanned + rel;
        let line = String::from_utf8_lossy(&conn.buf[..end]).into_owned();
        conn.buf.drain(..=end);
        conn.scanned = 0;
        handle_line(
            shard,
            engine,
            conn_id,
            conn,
            line.trim_end_matches('\r'),
            pending_total,
            per_shard_pending,
        );
    }
    conn.scanned = conn.buf.len();
}

/// Decodes one request line and routes it: shed at the per-shard bound,
/// answer malformed lines in place, submit the rest to the engine.
fn handle_line(
    shard: &Arc<ShardShared>,
    engine: &Arc<Shared>,
    conn_id: u64,
    conn: &mut Conn,
    line: &str,
    pending_total: &mut usize,
    per_shard_pending: usize,
) {
    if line.trim().is_empty() {
        return;
    }
    match JobRequest::decode(line) {
        Ok(req) => {
            shard.accepted.fetch_add(1, Ordering::Relaxed);
            if *pending_total >= per_shard_pending {
                // Per-shard admission: this shard already has its fill
                // of unanswered jobs; shed before the global queue.
                shard.shed.fetch_add(1, Ordering::Relaxed);
                let retry = engine::retry_hint(engine);
                engine::emit_shed(engine, retry);
                conn.queue_line(&JobResponse::shed(req.id, retry).encode());
                return;
            }
            *pending_total += 1;
            conn.pending += 1;
            engine::submit(
                engine,
                req,
                Reply::Shard {
                    shard: Arc::clone(shard),
                    conn: conn_id,
                },
                Admission::Shed,
            );
        }
        Err(e) => {
            shard.malformed.fetch_add(1, Ordering::Relaxed);
            // Echo the id back when it is at least parseable so the
            // caller can correlate the failure.
            let id = fp_obs::parse_line(line)
                .ok()
                .and_then(|p| p.num("id"))
                .unwrap_or(0.0) as u64;
            conn.queue_line(&JobResponse::failure(id, format!("bad request: {e}")).encode());
        }
    }
}

/// Writes as much buffered output as the peer will take.
fn flush_ready(conn: &mut Conn) {
    while conn.out_pos < conn.out.len() {
        match conn.stream.write(&conn.out[conn.out_pos..]) {
            Ok(0) => {
                conn.dead = true;
                return;
            }
            Ok(n) => conn.out_pos += n,
            Err(e) if e.kind() == ErrorKind::WouldBlock => break,
            Err(e) if e.kind() == ErrorKind::Interrupted => {}
            Err(_) => {
                conn.dead = true;
                return;
            }
        }
    }
    if conn.flushed() {
        conn.out.clear();
        conn.out_pos = 0;
    } else if conn.out_pos > 64 * 1024 {
        // Compact a slow reader's buffer so it cannot grow unboundedly
        // ahead of the cursor.
        conn.out.drain(..conn.out_pos);
        conn.out_pos = 0;
    }
}
