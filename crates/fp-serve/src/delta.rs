//! ECO delta scripts: typed edits applied to a base netlist.
//!
//! An ECO (engineering change order) job ships a *delta* instead of a
//! whole instance: a `;`-separated script of ops over the base netlist,
//! each op reusing the token grammar of [`fp_netlist::format`] lines so
//! nothing new has to be learned to write one:
//!
//! ```text
//! mod! clk rigid 4 3 rot pins 2 2 2 2   # upsert (add or replace) a module
//! mod- ctl                              # remove a module
//! net! n9 weight 2 : clk alu            # upsert a net (members by name)
//! net- n3                               # remove a net
//! ```
//!
//! [`apply`] replays the script over a base [`Netlist`] and reports which
//! module names were *touched* — the set the incremental driver
//! ([`fp_core::eco_replace`]) re-places. Module edits touch the module
//! itself; net edits and module removals touch the affected nets' members
//! (only relevant when the objective weighs wirelength, so the caller
//! folds them in conditionally).

use fp_netlist::{format, Module, Net, Netlist};

/// One edit of a delta script.
#[derive(Debug, Clone, PartialEq)]
pub enum DeltaOp {
    /// Add a new module or replace the one with the same name
    /// (`mod! <module-line-tail>`).
    UpsertModule(Module),
    /// Remove a module; nets lose the member and nets left with fewer
    /// than two members are dropped (`mod- <name>`).
    RemoveModule(String),
    /// Add a new net or replace the one with the same name
    /// (`net! <name> [weight W] [crit C] [maxlen L] : members...`).
    UpsertNet {
        /// Net name.
        name: String,
        /// Net weight (default 1).
        weight: f64,
        /// Timing criticality in `[0, 1]` (default 0).
        crit: f64,
        /// Optional max-length bound.
        maxlen: Option<f64>,
        /// Member module names (at least two).
        members: Vec<String>,
    },
    /// Remove a net (`net- <name>`).
    RemoveNet(String),
}

/// The result of [`apply`]: the edited netlist plus the touched sets.
#[derive(Debug, Clone)]
pub struct DeltaOutcome {
    /// The base netlist with the script applied. Surviving modules keep
    /// their base insertion order (and therefore their ids); new modules
    /// append.
    pub netlist: Netlist,
    /// Names of modules directly edited (upserted) by the script that
    /// exist in the edited netlist. Always re-placed by the ECO driver.
    pub touched_modules: Vec<String>,
    /// Names of surviving modules whose connectivity changed (members of
    /// upserted/removed nets, co-members of removed modules). Folded into
    /// the re-place set only when the objective weighs wirelength.
    pub touched_net_members: Vec<String>,
}

/// Parses a delta script: ops separated by `;` or newlines, `#` comments
/// stripped, blank ops skipped.
///
/// # Errors
///
/// Describes the first malformed op.
pub fn parse_ops(text: &str) -> Result<Vec<DeltaOp>, String> {
    let mut ops = Vec::new();
    for raw in text.split([';', '\n']) {
        let op = raw.split('#').next().unwrap_or("").trim();
        if op.is_empty() {
            continue;
        }
        let (head, tail) = op.split_once(char::is_whitespace).unwrap_or((op, ""));
        let tail = tail.trim();
        match head {
            "mod!" => {
                if tail.is_empty() {
                    return Err("mod! needs a module definition".to_string());
                }
                // The tail is exactly a `module` line of the text format;
                // parse it through the real parser so the grammars can
                // never drift apart.
                let nl = format::parse(&format!("module {tail}"))
                    .map_err(|e| format!("bad mod! op '{tail}': {e}"))?;
                let module = nl
                    .modules()
                    .next()
                    .map(|(_, m)| m.clone())
                    .ok_or_else(|| format!("bad mod! op '{tail}'"))?;
                ops.push(DeltaOp::UpsertModule(module));
            }
            "mod-" => {
                if tail.is_empty() || tail.split_whitespace().count() != 1 {
                    return Err(format!("mod- needs exactly one module name, got '{tail}'"));
                }
                ops.push(DeltaOp::RemoveModule(tail.to_string()));
            }
            "net!" => ops.push(parse_upsert_net(tail)?),
            "net-" => {
                if tail.is_empty() || tail.split_whitespace().count() != 1 {
                    return Err(format!("net- needs exactly one net name, got '{tail}'"));
                }
                ops.push(DeltaOp::RemoveNet(tail.to_string()));
            }
            other => return Err(format!("unknown delta op '{other}'")),
        }
    }
    if ops.is_empty() {
        return Err("empty delta script".to_string());
    }
    Ok(ops)
}

/// Parses the tail of a `net!` op: the `net` line grammar minus the
/// keyword (members stay names — resolution happens at [`apply`]).
fn parse_upsert_net(tail: &str) -> Result<DeltaOp, String> {
    let tokens: Vec<&str> = tail.split_whitespace().collect();
    let name = *tokens.first().ok_or("net! needs a name")?;
    let colon = tokens
        .iter()
        .position(|&t| t == ":")
        .ok_or_else(|| format!("net! '{name}' needs ':' before members"))?;
    let mut weight = 1.0;
    let mut crit = 0.0;
    let mut maxlen = None;
    let mut k = 1;
    while k < colon {
        let key = tokens[k];
        let val = tokens
            .get(k + 1)
            .and_then(|t| t.parse::<f64>().ok())
            .ok_or_else(|| format!("net! '{name}': '{key}' needs a number"))?;
        match key {
            "weight" => weight = val,
            "crit" => crit = val,
            "maxlen" => maxlen = Some(val),
            other => return Err(format!("net! '{name}': unknown attribute '{other}'")),
        }
        k += 2;
    }
    let members: Vec<String> = tokens[colon + 1..]
        .iter()
        .map(ToString::to_string)
        .collect();
    if members.len() < 2 {
        return Err(format!("net! '{name}' needs at least 2 members"));
    }
    Ok(DeltaOp::UpsertNet {
        name: name.to_string(),
        weight,
        crit,
        maxlen,
        members,
    })
}

/// Name-keyed working copy of one net while the script replays.
#[derive(Clone)]
struct NetData {
    name: String,
    weight: f64,
    crit: f64,
    maxlen: Option<f64>,
    members: Vec<String>,
}

/// Replays `ops` over `base`, producing the edited netlist and the
/// touched-name sets. Order-preserving: surviving base modules keep their
/// ids, new modules and nets append, so the edited netlist is
/// byte-identical (in [`fp_netlist::format`] and canonical text) to one
/// built from scratch with the same content.
///
/// # Errors
///
/// Removing an unknown module/net, upserting a net whose member does not
/// exist (after earlier ops), or an edit that leaves a net with fewer
/// than two members is an error — deltas are strict so a typo cannot
/// silently solve a different instance.
pub fn apply(base: &Netlist, ops: &[DeltaOp]) -> Result<DeltaOutcome, String> {
    let mut modules: Vec<Module> = base.modules().map(|(_, m)| m.clone()).collect();
    let mut nets: Vec<NetData> = base
        .nets()
        .map(|(_, n)| NetData {
            name: n.name().to_string(),
            weight: n.weight(),
            crit: n.criticality(),
            maxlen: n.max_length(),
            members: n
                .modules()
                .iter()
                .map(|&m| base.module(m).name().to_string())
                .collect(),
        })
        .collect();
    let mut touched_modules: Vec<String> = Vec::new();
    let mut touched_net_members: Vec<String> = Vec::new();
    let touch = |set: &mut Vec<String>, name: &str| {
        if !set.iter().any(|n| n == name) {
            set.push(name.to_string());
        }
    };

    for op in ops {
        match op {
            DeltaOp::UpsertModule(module) => {
                match modules.iter_mut().find(|m| m.name() == module.name()) {
                    Some(slot) => *slot = module.clone(),
                    None => modules.push(module.clone()),
                }
                touch(&mut touched_modules, module.name());
            }
            DeltaOp::RemoveModule(name) => {
                let at = modules
                    .iter()
                    .position(|m| m.name() == name)
                    .ok_or_else(|| format!("mod- '{name}': no such module"))?;
                modules.remove(at);
                // Its neighbors lose a connection: touched for
                // wirelength-aware re-placement.
                for net in &mut nets {
                    if net.members.iter().any(|m| m == name) {
                        for member in &net.members {
                            if member != name {
                                touch(&mut touched_net_members, member);
                            }
                        }
                        net.members.retain(|m| m != name);
                    }
                }
                nets.retain(|n| n.members.len() >= 2);
            }
            DeltaOp::UpsertNet {
                name,
                weight,
                crit,
                maxlen,
                members,
            } => {
                for member in members {
                    if !modules.iter().any(|m| m.name() == member) {
                        return Err(format!("net! '{name}': no such module '{member}'"));
                    }
                    touch(&mut touched_net_members, member);
                }
                let data = NetData {
                    name: name.clone(),
                    weight: *weight,
                    crit: *crit,
                    maxlen: *maxlen,
                    members: members.clone(),
                };
                match nets.iter_mut().find(|n| n.name == *name) {
                    Some(slot) => {
                        // Old members are also touched: their pull changed.
                        for member in &slot.members {
                            touch(&mut touched_net_members, member);
                        }
                        *slot = data;
                    }
                    None => nets.push(data),
                }
            }
            DeltaOp::RemoveNet(name) => {
                let at = nets
                    .iter()
                    .position(|n| n.name == *name)
                    .ok_or_else(|| format!("net- '{name}': no such net"))?;
                for member in &nets[at].members {
                    touch(&mut touched_net_members, member);
                }
                nets.remove(at);
            }
        }
    }

    // Rebuild the typed netlist; member-name resolution doubles as the
    // final consistency check.
    let mut edited = Netlist::new(base.name());
    for module in modules {
        edited
            .add_module(module)
            .map_err(|e| format!("delta produced invalid netlist: {e}"))?;
    }
    for data in nets {
        let members: Vec<_> = data
            .members
            .iter()
            .map(|m| {
                edited
                    .module_by_name(m)
                    .ok_or_else(|| format!("net '{}' references removed module '{m}'", data.name))
            })
            .collect::<Result<_, _>>()?;
        let mut net = Net::new(&data.name, members).with_weight(data.weight);
        if data.crit > 0.0 {
            net = net.with_criticality(data.crit);
        }
        if let Some(l) = data.maxlen {
            net = net.with_max_length(l);
        }
        edited
            .add_net(net)
            .map_err(|e| format!("delta produced invalid netlist: {e}"))?;
    }
    // A touched name that no longer exists (edited then removed, or a
    // removed module's) must not leak into the re-place set.
    touched_modules.retain(|n| edited.module_by_name(n).is_some());
    touched_net_members.retain(|n| edited.module_by_name(n).is_some());
    Ok(DeltaOutcome {
        netlist: edited,
        touched_modules,
        touched_net_members,
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    fn base() -> Netlist {
        format::parse(
            "problem base\n\
             module a rigid 2 3 rot pins 1 1 1 1\n\
             module b rigid 3 3 fixed\n\
             module c flexible 9 0.5 2.0\n\
             net n1 weight 2 : a b\n\
             net n2 : b c\n",
        )
        .unwrap()
    }

    #[test]
    fn parse_all_op_kinds() {
        let ops = parse_ops(
            "mod! d rigid 4 2 rot pins 2 0 1 0; mod- c ; \
             net! n9 weight 1.5 crit 0.5 maxlen 30 : a d\nnet- n2 # trailing comment",
        )
        .unwrap();
        assert_eq!(ops.len(), 4);
        assert!(matches!(&ops[0], DeltaOp::UpsertModule(m) if m.name() == "d"));
        assert_eq!(ops[1], DeltaOp::RemoveModule("c".to_string()));
        match &ops[2] {
            DeltaOp::UpsertNet {
                name,
                weight,
                crit,
                maxlen,
                members,
            } => {
                assert_eq!(name, "n9");
                assert_eq!((*weight, *crit, *maxlen), (1.5, 0.5, Some(30.0)));
                assert_eq!(members, &["a", "d"]);
            }
            other => panic!("unexpected op {other:?}"),
        }
        assert_eq!(ops[3], DeltaOp::RemoveNet("n2".to_string()));
    }

    #[test]
    fn parse_rejects_malformed_ops() {
        assert!(parse_ops("").is_err());
        assert!(parse_ops("  ; ; ").is_err());
        assert!(parse_ops("frobnicate a").is_err());
        assert!(parse_ops("mod!").is_err());
        assert!(parse_ops("mod! d blobby 1 2").is_err());
        assert!(parse_ops("mod- a b").is_err());
        assert!(parse_ops("net! n : a").is_err()); // one member
        assert!(parse_ops("net! n a b").is_err()); // no colon
        assert!(parse_ops("net! n weight x : a b").is_err());
        assert!(parse_ops("net-").is_err());
    }

    #[test]
    fn upsert_module_replaces_in_place_and_touches_it() {
        let ops = parse_ops("mod! b rigid 5 1 rot").unwrap();
        let out = apply(&base(), &ops).unwrap();
        assert_eq!(out.netlist.num_modules(), 3);
        let b = out.netlist.module_by_name("b").unwrap();
        // Replaced in place: id order unchanged.
        assert_eq!(b, base().module_by_name("b").unwrap());
        assert!(out.netlist.module(b).rotatable());
        assert_eq!(out.touched_modules, ["b"]);
        assert!(out.touched_net_members.is_empty());
    }

    #[test]
    fn remove_module_scrubs_nets_and_touches_neighbors() {
        let ops = parse_ops("mod- b").unwrap();
        let out = apply(&base(), &ops).unwrap();
        assert_eq!(out.netlist.num_modules(), 2);
        // Both nets contained b and fall under 2 members: dropped.
        assert_eq!(out.netlist.num_nets(), 0);
        assert!(out.touched_modules.is_empty());
        let mut neighbors = out.touched_net_members.clone();
        neighbors.sort();
        assert_eq!(neighbors, ["a", "c"]);
    }

    #[test]
    fn net_ops_touch_old_and_new_members() {
        let ops = parse_ops("net! n1 : a c").unwrap();
        let out = apply(&base(), &ops).unwrap();
        assert_eq!(out.netlist.num_nets(), 2);
        let mut touched = out.touched_net_members.clone();
        touched.sort();
        // New members a,c plus displaced old member b.
        assert_eq!(touched, ["a", "b", "c"]);
    }

    #[test]
    fn strict_errors_on_unknown_names() {
        assert!(apply(&base(), &parse_ops("mod- ghost").unwrap()).is_err());
        assert!(apply(&base(), &parse_ops("net- ghost").unwrap()).is_err());
        assert!(apply(&base(), &parse_ops("net! n9 : a ghost").unwrap()).is_err());
    }

    #[test]
    fn edited_netlist_matches_scratch_built_text() {
        // The order-preservation contract: applying a delta yields the
        // same format text as writing the edited instance from scratch.
        let ops =
            parse_ops("mod! c flexible 12 0.5 2.0; mod! d rigid 1 1 fixed; net! n3 : a d").unwrap();
        let out = apply(&base(), &ops).unwrap();
        let scratch = format::parse(
            "problem base\n\
             module a rigid 2 3 rot pins 1 1 1 1\n\
             module b rigid 3 3 fixed\n\
             module c flexible 12 0.5 2.0\n\
             module d rigid 1 1 fixed\n\
             net n1 weight 2 : a b\n\
             net n2 : b c\n\
             net n3 : a d\n",
        )
        .unwrap();
        assert_eq!(format::write(&out.netlist), format::write(&scratch));
        assert_eq!(out.netlist, scratch);
    }

    #[test]
    fn touched_names_never_reference_missing_modules() {
        // Upsert then remove: the touch on 'd' must not survive.
        let ops = parse_ops("mod! d rigid 1 1 fixed; mod- d").unwrap();
        let out = apply(&base(), &ops).unwrap();
        assert!(out.touched_modules.is_empty());
        assert_eq!(out.netlist, base());
    }
}
