//! The service engine: worker pool, in-process client, TCP front end.

use crate::cache::SolutionCache;
use crate::fingerprint::{canonical, fingerprint_of, FingerprintParams};
use crate::protocol::{JobRequest, JobResponse};
use crate::queue::Bounded;
use fp_core::{FloorplanConfig, Floorplanner, Objective};
use fp_obs::{Event, Phase, Tracer};
use std::fmt::Write as _;
use std::io::{BufRead, BufReader, Write};
use std::net::{IpAddr, Ipv4Addr, Ipv6Addr, SocketAddr, TcpListener, TcpStream, ToSocketAddrs};
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::{mpsc, Arc};
use std::thread::JoinHandle;
use std::time::{Duration, Instant};

/// Engine configuration.
#[derive(Debug, Clone)]
pub struct ServeConfig {
    /// Worker threads running the floorplanning pipeline.
    pub workers: usize,
    /// Bounded job-queue capacity (back-pressure for producers).
    pub queue_capacity: usize,
    /// Solution-cache capacity in entries (0 disables caching).
    pub cache_capacity: usize,
    /// Branch-and-bound node limit per augmentation step.
    pub node_limit: usize,
    /// Per-step solver time-limit cap; jobs with a deadline additionally
    /// clamp every step to the time remaining before it.
    pub time_limit: Duration,
    /// Improvement rounds after augmentation (skipped past a deadline).
    pub improve_rounds: usize,
    /// Tracer receiving [`Event::CacheHit`] / [`Event::CacheMiss`] /
    /// [`Event::JobDone`] service events.
    pub tracer: Tracer,
}

impl Default for ServeConfig {
    fn default() -> Self {
        ServeConfig {
            workers: 2,
            queue_capacity: 64,
            cache_capacity: 128,
            node_limit: 4_000,
            time_limit: Duration::from_secs(10),
            improve_rounds: 1,
            tracer: Tracer::disabled(),
        }
    }
}

impl ServeConfig {
    /// Sets the worker-thread count (minimum 1).
    #[must_use]
    pub fn with_workers(mut self, workers: usize) -> Self {
        self.workers = workers.max(1);
        self
    }

    /// Sets the solution-cache capacity (0 disables caching).
    #[must_use]
    pub fn with_cache_capacity(mut self, capacity: usize) -> Self {
        self.cache_capacity = capacity;
        self
    }

    /// Sets the bounded job-queue capacity.
    #[must_use]
    pub fn with_queue_capacity(mut self, capacity: usize) -> Self {
        self.queue_capacity = capacity.max(1);
        self
    }

    /// Sets the per-step branch-and-bound node limit.
    #[must_use]
    pub fn with_node_limit(mut self, node_limit: usize) -> Self {
        self.node_limit = node_limit;
        self
    }

    /// Installs a tracer for the service events.
    #[must_use]
    pub fn with_tracer(mut self, tracer: Tracer) -> Self {
        self.tracer = tracer;
        self
    }
}

/// Engine-wide branch-and-bound node counters, split by how each node's LP
/// relaxation was solved (warm dual-simplex restart vs. cold two-phase),
/// plus the root model-strengthening work (rows tightened, binaries fixed,
/// cuts added) accumulated over every step MILP.
/// Relaxed ordering suffices: these are monotone telemetry counters, never
/// used for synchronization.
#[derive(Debug, Default)]
struct SolverCounters {
    warm: AtomicU64,
    cold: AtomicU64,
    refactorizations: AtomicU64,
    eta_updates: AtomicU64,
    rows_tightened: AtomicU64,
    binaries_fixed: AtomicU64,
    cuts_added: AtomicU64,
}

impl SolverCounters {
    fn record(&self, warm: usize, cold: usize) {
        self.warm.fetch_add(warm as u64, Ordering::Relaxed);
        self.cold.fetch_add(cold as u64, Ordering::Relaxed);
    }

    fn record_factorizations(&self, refactorizations: usize, eta_updates: usize) {
        self.refactorizations
            .fetch_add(refactorizations as u64, Ordering::Relaxed);
        self.eta_updates
            .fetch_add(eta_updates as u64, Ordering::Relaxed);
    }

    fn record_strengthening(&self, rows_tightened: usize, binaries_fixed: usize, cuts: usize) {
        self.rows_tightened
            .fetch_add(rows_tightened as u64, Ordering::Relaxed);
        self.binaries_fixed
            .fetch_add(binaries_fixed as u64, Ordering::Relaxed);
        self.cuts_added.fetch_add(cuts as u64, Ordering::Relaxed);
    }

    fn snapshot(&self) -> (u64, u64) {
        (
            self.warm.load(Ordering::Relaxed),
            self.cold.load(Ordering::Relaxed),
        )
    }

    fn strengthening_snapshot(&self) -> (u64, u64, u64) {
        (
            self.rows_tightened.load(Ordering::Relaxed),
            self.binaries_fixed.load(Ordering::Relaxed),
            self.cuts_added.load(Ordering::Relaxed),
        )
    }

    fn factorization_snapshot(&self) -> (u64, u64) {
        (
            self.refactorizations.load(Ordering::Relaxed),
            self.eta_updates.load(Ordering::Relaxed),
        )
    }
}

/// One queued job: the request, when it was submitted (deadlines count the
/// queue wait), and where the answer goes.
struct Job {
    req: JobRequest,
    submitted: Instant,
    reply: mpsc::Sender<JobResponse>,
}

/// The worker-pool engine. Dropping it (or calling
/// [`shutdown`](Engine::shutdown)) closes the queue, lets the workers
/// drain every job already accepted, and joins them.
pub struct Engine {
    queue: Arc<Bounded<Job>>,
    cache: Arc<SolutionCache>,
    solver: Arc<SolverCounters>,
    tracer: Tracer,
    workers: Vec<JoinHandle<()>>,
}

impl Engine {
    /// Starts `config.workers` pipeline workers.
    #[must_use]
    pub fn start(config: ServeConfig) -> Self {
        let queue: Arc<Bounded<Job>> = Arc::new(Bounded::new(config.queue_capacity));
        let cache = Arc::new(SolutionCache::new(config.cache_capacity));
        let solver = Arc::new(SolverCounters::default());
        let workers = (0..config.workers.max(1))
            .map(|_| {
                let queue = Arc::clone(&queue);
                let cache = Arc::clone(&cache);
                let solver = Arc::clone(&solver);
                let config = config.clone();
                std::thread::spawn(move || {
                    while let Some(job) = queue.pop() {
                        let resp = process(&job.req, job.submitted, &cache, &solver, &config);
                        // A gone receiver (client hung up) is not an error.
                        let _ = job.reply.send(resp);
                    }
                })
            })
            .collect();
        Engine {
            queue,
            cache,
            solver,
            tracer: config.tracer,
            workers,
        }
    }

    /// A cheap handle for submitting jobs in-process.
    #[must_use]
    pub fn client(&self) -> Client {
        Client {
            queue: Arc::clone(&self.queue),
        }
    }

    /// `(hits, misses)` of the solution cache.
    #[must_use]
    pub fn cache_stats(&self) -> (u64, u64) {
        self.cache.stats()
    }

    /// `(warm, cold)` branch-and-bound node counts accumulated over every
    /// augmentation pipeline this engine has run. Warm nodes reused the
    /// parent's simplex basis; cold nodes ran the two-phase primal from
    /// scratch (the root of every solve is always cold).
    #[must_use]
    pub fn solver_stats(&self) -> (u64, u64) {
        self.solver.snapshot()
    }

    /// `(rows_tightened, binaries_fixed, cuts_added)` accumulated by the
    /// root model-strengthening layer over every step MILP this engine has
    /// solved. All three stay zero when jobs disable strengthening.
    #[must_use]
    pub fn strengthening_stats(&self) -> (u64, u64, u64) {
        self.solver.strengthening_snapshot()
    }

    /// `(refactorizations, eta_updates)` of the sparse revised simplex
    /// basis, accumulated over every node LP this engine has solved. Both
    /// stay zero when jobs select the dense reference kernel.
    #[must_use]
    pub fn factorization_stats(&self) -> (u64, u64) {
        self.solver.factorization_snapshot()
    }

    /// Closes the queue, drains every accepted job, joins the workers and
    /// flushes the tracer.
    pub fn shutdown(mut self) {
        self.queue.close();
        for handle in self.workers.drain(..) {
            let _ = handle.join();
        }
        self.tracer.flush();
    }
}

impl Drop for Engine {
    fn drop(&mut self) {
        self.queue.close();
        for handle in self.workers.drain(..) {
            let _ = handle.join();
        }
        self.tracer.flush();
    }
}

/// In-process submission handle (cloneable; backed by the shared queue).
#[derive(Clone)]
pub struct Client {
    queue: Arc<Bounded<Job>>,
}

impl Client {
    /// Enqueues `req`; the response arrives on the returned receiver.
    /// Blocks while the queue is full (back-pressure).
    #[must_use]
    pub fn submit(&self, req: JobRequest) -> mpsc::Receiver<JobResponse> {
        let (tx, rx) = mpsc::channel();
        self.submit_with(req, tx);
        rx
    }

    /// Enqueues `req` with the response routed to `reply` — the TCP
    /// front end funnels every job of one connection into one writer this
    /// way. A closed engine answers immediately with a failure response.
    pub fn submit_with(&self, req: JobRequest, reply: mpsc::Sender<JobResponse>) {
        let job = Job {
            req,
            submitted: Instant::now(),
            reply,
        };
        if let Err(job) = self.queue.push(job) {
            let _ = job
                .reply
                .send(JobResponse::failure(job.req.id, "service shut down"));
        }
    }

    /// Submits `req` and blocks for the answer.
    #[must_use]
    pub fn call(&self, req: JobRequest) -> JobResponse {
        let id = req.id;
        self.submit(req)
            .recv()
            .unwrap_or_else(|_| JobResponse::failure(id, "service shut down"))
    }
}

/// Runs one job through the degradation ladder:
/// cache hit → full pipeline (augment → improve → route) under the
/// remaining budget → greedy bottom-left skyline when the budget is
/// already gone or the pipeline fails. Only a missing/unplaceable
/// instance yields `ok: false`.
fn process(
    req: &JobRequest,
    submitted: Instant,
    cache: &SolutionCache,
    solver: &SolverCounters,
    config: &ServeConfig,
) -> JobResponse {
    let tracer = &config.tracer;
    let done = |mut resp: JobResponse| -> JobResponse {
        resp.id = req.id;
        resp.micros = submitted.elapsed().as_micros() as u64;
        tracer.emit(
            Phase::Serve,
            Event::JobDone {
                id: resp.id,
                micros: resp.micros,
                degraded: resp.degraded,
                cached: resp.cached,
            },
        );
        // Per-job flush so an external trace file is greppable while the
        // server is still running (and after a hard kill).
        tracer.flush();
        resp
    };

    let netlist = match req.parse_netlist() {
        Ok(n) => n,
        Err(e) => return done(JobResponse::failure(req.id, format!("bad netlist: {e}"))),
    };

    let params = FingerprintParams {
        width: req.width,
        lambda: req.lambda,
        rotation: req.rotation,
        route: req.route,
    };
    let canon = canonical(&netlist, &params);
    let key = fingerprint_of(&canon);
    if req.use_cache {
        if let Some(mut hit) = cache.get(key, &canon) {
            tracer.emit(Phase::Serve, Event::CacheHit { key });
            hit.cached = true;
            return done(hit);
        }
        tracer.emit(Phase::Serve, Event::CacheMiss { key });
    }

    // `checked_add` so a huge-but-parseable deadline_ms cannot panic the
    // worker via `Instant` overflow; a deadline too far away to represent
    // is no deadline at all.
    let deadline = (req.deadline_ms > 0)
        .then(|| submitted.checked_add(Duration::from_millis(req.deadline_ms)))
        .flatten();
    let expired = |at: Instant| deadline.is_some_and(|d| at >= d);

    let objective = if req.lambda > 0.0 {
        Objective::AreaPlusWirelength { lambda: req.lambda }
    } else {
        Objective::Area
    };
    let mut fp_config = FloorplanConfig::default()
        .with_objective(objective)
        .with_rotation(req.rotation)
        .with_step_options(
            fp_milp::SolveOptions::default()
                .with_node_limit(config.node_limit)
                .with_time_limit(config.time_limit)
                .with_threads(1),
        )
        // The driver re-budgets every augmentation/re-optimization MILP
        // with the time *remaining* before the deadline (the per-step
        // limit above is only a cap), so a K-step job cannot overshoot
        // its deadline K-fold; the cooperative in-LP check makes each
        // budget binding at simplex-iteration granularity.
        .with_deadline(deadline);
    if let Some(w) = req.width {
        fp_config = fp_config.with_chip_width(w);
    }

    let mut degraded = false;
    let floorplan = if expired(Instant::now()) {
        // Budget gone before any solving started (long queue wait):
        // greedy skyline placement instead of an error.
        degraded = true;
        match fp_core::bottom_left(&netlist, &fp_config) {
            Ok(fp) => fp,
            Err(e) => return done(JobResponse::failure(req.id, e.to_string())),
        }
    } else {
        match Floorplanner::with_config(&netlist, fp_config.clone()).run() {
            Ok(result) => {
                degraded |= result.stats.greedy_fallbacks() > 0;
                solver.record(result.stats.warm_nodes(), result.stats.cold_nodes());
                solver.record_factorizations(
                    result.stats.refactorizations(),
                    result.stats.eta_updates(),
                );
                solver.record_strengthening(
                    result.stats.rows_tightened(),
                    result.stats.binaries_fixed(),
                    result.stats.cuts_added(),
                );
                let mut fp = result.floorplan;
                if config.improve_rounds > 0 && !expired(Instant::now()) {
                    // Improvement is best-effort: keep the augmented
                    // placement if re-optimization fails.
                    if let Ok(better) =
                        fp_core::improve(&fp, &netlist, &fp_config, config.improve_rounds)
                    {
                        fp = better;
                    }
                }
                fp
            }
            Err(_) => {
                degraded = true;
                match fp_core::bottom_left(&netlist, &fp_config) {
                    Ok(fp) => fp,
                    Err(e) => return done(JobResponse::failure(req.id, e.to_string())),
                }
            }
        }
    };
    degraded |= expired(Instant::now());

    // Routed wirelength only when asked for and still inside budget;
    // otherwise the paper's center-to-center estimate.
    let mut wirelength = floorplan.center_wirelength(&netlist);
    if req.route {
        if expired(Instant::now()) {
            degraded = true;
        } else {
            match fp_route::route(&floorplan, &netlist, &fp_route::RouteConfig::default()) {
                Ok(routing) => wirelength = routing.total_wirelength,
                Err(_) => degraded = true,
            }
        }
    }

    let mut placement = String::new();
    for (i, m) in floorplan.iter().enumerate() {
        if i > 0 {
            placement.push(';');
        }
        let _ = write!(
            placement,
            "{} {} {} {} {} {}",
            netlist.module(m.id).name(),
            m.rect.x,
            m.rect.y,
            m.rect.w,
            m.rect.h,
            u8::from(m.rotated)
        );
    }

    let resp = JobResponse {
        id: req.id,
        ok: true,
        error: String::new(),
        chip_width: floorplan.chip_width(),
        chip_height: floorplan.chip_height(),
        area: floorplan.chip_area(),
        utilization: floorplan.utilization(&netlist),
        wirelength,
        degraded,
        cached: false,
        micros: 0, // stamped by `done`
        placement,
    };
    // Only full-quality answers are worth replaying; a degraded result
    // would pin a worse placement for future non-degraded requests.
    if req.use_cache && !degraded {
        cache.insert(key, canon, resp.clone());
    }
    done(resp)
}

/// A line-delimited TCP front end over an [`Engine`].
///
/// One reader and one writer thread per connection: requests are decoded
/// per line and submitted, responses (possibly out of request order) are
/// funneled through a channel to the writer. Malformed lines get an
/// `ok: false` response instead of killing the connection.
pub struct Server {
    engine: Option<Engine>,
    local: SocketAddr,
    stop: Arc<AtomicBool>,
    acceptor: Option<JoinHandle<()>>,
}

impl Server {
    /// Binds `addr` (e.g. `127.0.0.1:0` for an ephemeral port) and starts
    /// accepting connections backed by a fresh engine.
    ///
    /// # Errors
    ///
    /// Propagates the bind error.
    pub fn bind(addr: impl ToSocketAddrs, config: ServeConfig) -> std::io::Result<Self> {
        let listener = TcpListener::bind(addr)?;
        let local = listener.local_addr()?;
        let engine = Engine::start(config);
        let client = engine.client();
        let stop = Arc::new(AtomicBool::new(false));
        let acceptor = {
            let stop = Arc::clone(&stop);
            std::thread::spawn(move || {
                for stream in listener.incoming() {
                    if stop.load(Ordering::Relaxed) {
                        break;
                    }
                    match stream {
                        Ok(stream) => {
                            // Responses are single small lines in a
                            // request-reply exchange; Nagle + delayed ACK
                            // would add tens of milliseconds to each.
                            let _ = stream.set_nodelay(true);
                            let client = client.clone();
                            std::thread::spawn(move || handle_connection(stream, &client));
                        }
                        Err(_) => break,
                    }
                }
            })
        };
        Ok(Server {
            engine: Some(engine),
            local,
            stop,
            acceptor: Some(acceptor),
        })
    }

    /// The bound address (with the real port when bound to port 0).
    #[must_use]
    pub fn local_addr(&self) -> SocketAddr {
        self.local
    }

    /// `(hits, misses)` of the engine's solution cache.
    #[must_use]
    pub fn cache_stats(&self) -> (u64, u64) {
        self.engine.as_ref().map_or((0, 0), Engine::cache_stats)
    }

    /// `(warm, cold)` branch-and-bound node counts of the engine's solver.
    #[must_use]
    pub fn solver_stats(&self) -> (u64, u64) {
        self.engine.as_ref().map_or((0, 0), Engine::solver_stats)
    }

    /// `(rows_tightened, binaries_fixed, cuts_added)` from the engine's
    /// root model-strengthening layer.
    #[must_use]
    pub fn strengthening_stats(&self) -> (u64, u64, u64) {
        self.engine
            .as_ref()
            .map_or((0, 0, 0), Engine::strengthening_stats)
    }

    /// `(refactorizations, eta_updates)` of the engine's sparse revised
    /// simplex basis work.
    #[must_use]
    pub fn factorization_stats(&self) -> (u64, u64) {
        self.engine
            .as_ref()
            .map_or((0, 0), Engine::factorization_stats)
    }

    /// Blocks until the acceptor exits (it only exits on shutdown or a
    /// listener error) — the `floorplan serve` foreground mode.
    pub fn wait(mut self) {
        if let Some(handle) = self.acceptor.take() {
            let _ = handle.join();
        }
    }

    /// Stops accepting, drains in-flight jobs and joins the workers.
    pub fn shutdown(mut self) {
        self.stop_accepting();
        if let Some(engine) = self.engine.take() {
            engine.shutdown();
        }
    }

    fn stop_accepting(&mut self) {
        self.stop.store(true, Ordering::Relaxed);
        // Wake the blocking accept with a throwaway connection. A wildcard
        // bind address (0.0.0.0 / [::]) is not a connectable destination
        // on every platform, so aim at the same-family loopback instead.
        let mut target = self.local;
        if target.ip().is_unspecified() {
            target.set_ip(match target {
                SocketAddr::V4(_) => IpAddr::V4(Ipv4Addr::LOCALHOST),
                SocketAddr::V6(_) => IpAddr::V6(Ipv6Addr::LOCALHOST),
            });
        }
        let _ = TcpStream::connect(target);
        if let Some(handle) = self.acceptor.take() {
            let _ = handle.join();
        }
    }
}

impl Drop for Server {
    fn drop(&mut self) {
        self.stop_accepting();
    }
}

fn handle_connection(stream: TcpStream, client: &Client) {
    let Ok(read_half) = stream.try_clone() else {
        return;
    };
    let (tx, rx) = mpsc::channel::<JobResponse>();
    let mut write_half = stream;
    let writer = std::thread::spawn(move || {
        while let Ok(resp) = rx.recv() {
            if writeln!(write_half, "{}", resp.encode()).is_err() {
                break;
            }
            let _ = write_half.flush();
        }
    });

    for line in BufReader::new(read_half).lines() {
        let Ok(line) = line else { break };
        if line.trim().is_empty() {
            continue;
        }
        match JobRequest::decode(&line) {
            Ok(req) => client.submit_with(req, tx.clone()),
            Err(e) => {
                // Echo the id back when it is at least parseable so the
                // caller can correlate the failure.
                let id = fp_obs::parse_line(&line)
                    .ok()
                    .and_then(|p| p.num("id"))
                    .unwrap_or(0.0) as u64;
                let _ = tx.send(JobResponse::failure(id, format!("bad request: {e}")));
            }
        }
    }
    // Reader done: once every in-flight job of this connection has
    // answered, the last sender drops and the writer exits.
    drop(tx);
    let _ = writer.join();
}
