//! The TCP front ends over an [`Engine`]: the sharded event loop
//! (default) and the original thread-per-connection design (kept for
//! old-vs-new comparison benchmarks).
//!
//! Both speak the same line-delimited protocol; they differ in who owns
//! a connection and what happens under load:
//!
//! * [`IoMode::Event`] — the acceptor round-robins connections across
//!   poll-loop shards ([`crate::shard`]); requests are admitted with
//!   shedding (typed `retry_after_ms` on overload) and shutdown drains
//!   every accepted job before closing.
//! * [`IoMode::Threaded`] — one reader and one writer thread per
//!   connection, blocking admission (submitters stall while the queue
//!   is full).

use crate::engine::{Client, Engine, EngineStats, IoMode, ServeConfig};
use crate::protocol::{JobRequest, JobResponse};
use std::io::{BufRead, BufReader, Write};
use std::net::{IpAddr, Ipv4Addr, Ipv6Addr, SocketAddr, TcpListener, TcpStream, ToSocketAddrs};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::{mpsc, Arc};
use std::thread::JoinHandle;

/// Request/connection accounting aggregated over the whole front end.
///
/// In event mode, after [`Server::shutdown`] the books balance:
/// `accepted == completed + shed` (every decoded request got exactly one
/// answer; `malformed` lines are answered too but counted separately).
/// In threaded mode the fields are derived from [`EngineStats`] —
/// `conns` and `malformed` are not tracked there and read 0.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct ServeAccounting {
    /// Connections ever accepted.
    pub conns: u64,
    /// Well-formed requests decoded off the wire.
    pub accepted: u64,
    /// Non-shed responses delivered (success, degraded, failure,
    /// coalesced fan-outs).
    pub completed: u64,
    /// Load-shed responses delivered.
    pub shed: u64,
    /// Malformed lines answered with `ok: false`.
    pub malformed: u64,
}

/// What a completed [`Server::shutdown`] observed: the front-end books
/// and the engine books, both final (every shard and worker joined).
#[derive(Debug, Clone, Copy, Default)]
pub struct ShutdownReport {
    /// Final front-end accounting (`accepted == completed + shed` in
    /// event mode).
    pub accounting: ServeAccounting,
    /// Final engine accounting (`submitted == answered + shed`).
    pub engine: EngineStats,
}

/// A line-delimited TCP front end over an [`Engine`].
///
/// Malformed lines get an `ok: false` response instead of killing the
/// connection in both modes.
pub struct Server {
    engine: Option<Engine>,
    local: SocketAddr,
    stop: Arc<AtomicBool>,
    acceptor: Option<JoinHandle<()>>,
    /// Cross-thread shard handles; kept after teardown so accounting
    /// stays readable once the poll threads are gone.
    #[cfg(unix)]
    shard_shareds: Vec<Arc<crate::shard::ShardShared>>,
    #[cfg(unix)]
    shard_threads: Vec<JoinHandle<()>>,
}

impl Server {
    /// Binds `addr` (e.g. `127.0.0.1:0` for an ephemeral port) and starts
    /// accepting connections backed by a fresh engine, in the IO mode
    /// `config.io` selects (non-unix targets always get the threaded
    /// front end — the poll shim is unix-only).
    ///
    /// # Errors
    ///
    /// Propagates bind/shard-setup errors.
    pub fn bind(addr: impl ToSocketAddrs, config: ServeConfig) -> std::io::Result<Self> {
        let listener = TcpListener::bind(addr)?;
        let local = listener.local_addr()?;
        let stop = Arc::new(AtomicBool::new(false));
        #[cfg(unix)]
        let event_mode = config.io == IoMode::Event;
        #[cfg(not(unix))]
        let event_mode = false;
        let shard_count = config.shards.max(1);
        let engine = Engine::start(config);

        #[cfg(unix)]
        let mut shard_shareds = Vec::new();
        #[cfg(unix)]
        let mut shard_threads = Vec::new();
        let acceptor: JoinHandle<()>;
        if event_mode {
            #[cfg(unix)]
            {
                for index in 0..shard_count {
                    let handle = crate::shard::spawn(index, Arc::clone(engine.shared()))?;
                    shard_shareds.push(handle.shared);
                    shard_threads.push(handle.thread);
                }
                let targets = shard_shareds.clone();
                let stop = Arc::clone(&stop);
                acceptor = std::thread::spawn(move || {
                    for (i, stream) in listener.incoming().enumerate() {
                        if stop.load(Ordering::Relaxed) {
                            break;
                        }
                        match stream {
                            Ok(stream) => targets[i % targets.len()].adopt(stream),
                            Err(_) => break,
                        }
                    }
                });
            }
            #[cfg(not(unix))]
            {
                let _ = shard_count;
                unreachable!("event mode is unix-only");
            }
        } else {
            let _ = shard_count;
            let client = engine.client();
            let stop = Arc::clone(&stop);
            acceptor = std::thread::spawn(move || {
                for stream in listener.incoming() {
                    if stop.load(Ordering::Relaxed) {
                        break;
                    }
                    match stream {
                        Ok(stream) => {
                            // Responses are single small lines in a
                            // request-reply exchange; Nagle + delayed ACK
                            // would add tens of milliseconds to each.
                            let _ = stream.set_nodelay(true);
                            let client = client.clone();
                            std::thread::spawn(move || handle_connection(stream, &client));
                        }
                        Err(_) => break,
                    }
                }
            });
        }
        Ok(Server {
            engine: Some(engine),
            local,
            stop,
            acceptor: Some(acceptor),
            #[cfg(unix)]
            shard_shareds,
            #[cfg(unix)]
            shard_threads,
        })
    }

    /// The bound address (with the real port when bound to port 0).
    #[must_use]
    pub fn local_addr(&self) -> SocketAddr {
        self.local
    }

    /// `(hits, misses)` of the engine's solution cache.
    #[must_use]
    pub fn cache_stats(&self) -> (u64, u64) {
        self.engine.as_ref().map_or((0, 0), Engine::cache_stats)
    }

    /// `(warm, cold)` branch-and-bound node counts of the engine's solver.
    #[must_use]
    pub fn solver_stats(&self) -> (u64, u64) {
        self.engine.as_ref().map_or((0, 0), Engine::solver_stats)
    }

    /// `(rows_tightened, binaries_fixed, cuts_added)` from the engine's
    /// root model-strengthening layer.
    #[must_use]
    pub fn strengthening_stats(&self) -> (u64, u64, u64) {
        self.engine
            .as_ref()
            .map_or((0, 0, 0), Engine::strengthening_stats)
    }

    /// `(refactorizations, eta_updates)` of the engine's sparse revised
    /// simplex basis work.
    #[must_use]
    pub fn factorization_stats(&self) -> (u64, u64) {
        self.engine
            .as_ref()
            .map_or((0, 0), Engine::factorization_stats)
    }

    /// The engine's job accounting (submitted / answered / shed /
    /// coalesced).
    #[must_use]
    pub fn engine_stats(&self) -> EngineStats {
        self.engine.as_ref().map_or(
            EngineStats {
                submitted: 0,
                answered: 0,
                shed: 0,
                coalesced: 0,
            },
            Engine::stats,
        )
    }

    /// Front-end accounting (see [`ServeAccounting`] for the invariant
    /// and the threaded-mode caveats).
    #[must_use]
    pub fn accounting(&self) -> ServeAccounting {
        self.accounting_with(self.engine_stats())
    }

    fn accounting_with(&self, engine: EngineStats) -> ServeAccounting {
        #[cfg(unix)]
        if !self.shard_shareds.is_empty() {
            let mut acc = ServeAccounting::default();
            for s in &self.shard_shareds {
                let (conns, accepted, completed, shed, malformed) = s.counters();
                acc.conns += conns;
                acc.accepted += accepted;
                acc.completed += completed;
                acc.shed += shed;
                acc.malformed += malformed;
            }
            return acc;
        }
        ServeAccounting {
            conns: 0,
            accepted: engine.submitted,
            completed: engine.answered,
            shed: engine.shed,
            malformed: 0,
        }
    }

    /// Blocks until the acceptor exits (it only exits on shutdown or a
    /// listener error) — the `floorplan serve` foreground mode.
    pub fn wait(mut self) {
        if let Some(handle) = self.acceptor.take() {
            let _ = handle.join();
        }
    }

    /// Stops accepting, drains every accepted job (answering it), joins
    /// shards and workers, and returns the final books.
    pub fn shutdown(mut self) -> ShutdownReport {
        self.teardown()
    }

    fn teardown(&mut self) -> ShutdownReport {
        self.stop_accepting();
        // Ordering matters: shards must stop reading (no new accepts)
        // before the queue closes, and workers must stay alive while the
        // shards wait for their in-flight answers.
        #[cfg(unix)]
        for s in &self.shard_shareds {
            s.start_drain();
        }
        if let Some(engine) = self.engine.as_ref() {
            engine.close_queue();
        }
        #[cfg(unix)]
        for t in self.shard_threads.drain(..) {
            let _ = t.join();
        }
        let engine = self
            .engine
            .take()
            .map_or_else(EngineStats::default, Engine::shutdown);
        ShutdownReport {
            accounting: self.accounting_with(engine),
            engine,
        }
    }

    fn stop_accepting(&mut self) {
        self.stop.store(true, Ordering::Relaxed);
        // Wake the blocking accept with a throwaway connection. A wildcard
        // bind address (0.0.0.0 / [::]) is not a connectable destination
        // on every platform, so aim at the same-family loopback instead.
        let mut target = self.local;
        if target.ip().is_unspecified() {
            target.set_ip(match target {
                SocketAddr::V4(_) => IpAddr::V4(Ipv4Addr::LOCALHOST),
                SocketAddr::V6(_) => IpAddr::V6(Ipv6Addr::LOCALHOST),
            });
        }
        let _ = TcpStream::connect(target);
        if let Some(handle) = self.acceptor.take() {
            let _ = handle.join();
        }
    }
}

impl Drop for Server {
    fn drop(&mut self) {
        let _ = self.teardown();
    }
}

/// The threaded front end's per-connection loop: a reader thread (this
/// one) decoding lines and a writer thread funneling responses (possibly
/// out of request order) back.
fn handle_connection(stream: TcpStream, client: &Client) {
    let Ok(read_half) = stream.try_clone() else {
        return;
    };
    let (tx, rx) = mpsc::channel::<JobResponse>();
    let mut write_half = stream;
    let writer = std::thread::spawn(move || {
        while let Ok(resp) = rx.recv() {
            if writeln!(write_half, "{}", resp.encode()).is_err() {
                break;
            }
            let _ = write_half.flush();
        }
    });

    for line in BufReader::new(read_half).lines() {
        let Ok(line) = line else { break };
        if line.trim().is_empty() {
            continue;
        }
        match JobRequest::decode(&line) {
            Ok(req) => client.submit_with(req, tx.clone()),
            Err(e) => {
                // Echo the id back when it is at least parseable so the
                // caller can correlate the failure.
                let id = fp_obs::parse_line(&line)
                    .ok()
                    .and_then(|p| p.num("id"))
                    .unwrap_or(0.0) as u64;
                let _ = tx.send(JobResponse::failure(id, format!("bad request: {e}")));
            }
        }
    }
    // Reader done: once every in-flight job of this connection has
    // answered, the last sender drops and the writer exits.
    drop(tx);
    let _ = writer.join();
}
