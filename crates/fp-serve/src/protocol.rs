//! The wire protocol: one flat JSON object per line, both directions.
//!
//! The codec deliberately reuses the trace-line grammar of
//! [`fp_obs::parse_line`] — flat objects of string/number/bool/null
//! scalars — so the service needs no JSON dependency and the existing
//! parser/validator tooling applies to request and response lines alike.
//! The netlist itself travels as a string field holding the
//! [`fp_netlist::format`] text (newlines escaped).

use fp_netlist::Netlist;

/// One floorplanning job.
#[derive(Debug, Clone, PartialEq)]
pub struct JobRequest {
    /// Caller-chosen correlation id, echoed in the response.
    pub id: u64,
    /// The instance in [`fp_netlist::format`] text.
    pub netlist: String,
    /// Fixed chip width; `None` derives one from module area.
    pub width: Option<f64>,
    /// Wirelength weight λ; 0 selects the pure-area objective.
    pub lambda: f64,
    /// Allow 90° rotation of rigid modules.
    pub rotation: bool,
    /// Run global routing after placement.
    pub route: bool,
    /// Wall-clock budget in milliseconds, measured from *submission*
    /// (time spent queued counts). 0 = no deadline.
    pub deadline_ms: u64,
    /// Whether the solution cache may answer (and store) this job.
    pub use_cache: bool,
    /// Whether this job may share an in-flight solve of the identical
    /// instance (single-flight coalescing). Coalesced followers inherit
    /// the leader's deadline budget.
    pub coalesce: bool,
    /// ECO delta script ([`crate::delta`] grammar). Non-empty makes this
    /// an *incremental* job: `netlist` then carries the **base** instance,
    /// the server applies the script and re-solves only the touched
    /// neighborhood, seeded from the base job's cached placement.
    pub eco_ops: String,
    /// Optional expected base-instance fingerprint for an ECO job. When
    /// set and the server's computed base fingerprint differs, the base
    /// placement is not trusted and the job solves from scratch.
    pub eco_base: Option<u64>,
}

impl JobRequest {
    /// A request for `netlist` with default parameters (area objective,
    /// rotation on, no routing, no deadline, cache enabled).
    #[must_use]
    pub fn new(id: u64, netlist: &Netlist) -> Self {
        JobRequest {
            id,
            netlist: fp_netlist::format::write(netlist),
            width: None,
            lambda: 0.0,
            rotation: true,
            route: false,
            deadline_ms: 0,
            use_cache: true,
            coalesce: true,
            eco_ops: String::new(),
            eco_base: None,
        }
    }

    /// Makes this an ECO job: `ops` is a [`crate::delta`] script applied
    /// to the request's (base) netlist.
    #[must_use]
    pub fn with_eco(mut self, ops: impl Into<String>) -> Self {
        self.eco_ops = ops.into();
        self
    }

    /// Pins the expected base-instance fingerprint for an ECO job.
    #[must_use]
    pub fn with_eco_base(mut self, key: u64) -> Self {
        self.eco_base = Some(key);
        self
    }

    /// Sets the deadline in milliseconds (0 disables).
    #[must_use]
    pub fn with_deadline_ms(mut self, ms: u64) -> Self {
        self.deadline_ms = ms;
        self
    }

    /// Enables or disables the solution cache for this job.
    #[must_use]
    pub fn with_cache(mut self, on: bool) -> Self {
        self.use_cache = on;
        self
    }

    /// Enables or disables single-flight coalescing for this job.
    #[must_use]
    pub fn with_coalesce(mut self, on: bool) -> Self {
        self.coalesce = on;
        self
    }

    /// Parses the embedded netlist text.
    ///
    /// # Errors
    ///
    /// Returns the format error as a string.
    pub fn parse_netlist(&self) -> Result<Netlist, String> {
        fp_netlist::format::parse(&self.netlist).map_err(|e| e.to_string())
    }

    /// Serializes to one JSON line (no trailing newline).
    #[must_use]
    pub fn encode(&self) -> String {
        let mut s = format!("{{\"id\":{}", self.id);
        push_field(&mut s, "netlist", &json_str(&self.netlist));
        if let Some(w) = self.width {
            push_field(&mut s, "width", &jnum(w));
        }
        push_field(&mut s, "lambda", &jnum(self.lambda));
        push_field(&mut s, "rotation", &self.rotation.to_string());
        push_field(&mut s, "route", &self.route.to_string());
        push_field(&mut s, "deadline_ms", &self.deadline_ms.to_string());
        push_field(&mut s, "use_cache", &self.use_cache.to_string());
        push_field(&mut s, "coalesce", &self.coalesce.to_string());
        if !self.eco_ops.is_empty() {
            push_field(&mut s, "eco_ops", &json_str(&self.eco_ops));
        }
        if let Some(base) = self.eco_base {
            // 64-bit keys travel as fixed-width hex strings: JSON numbers
            // are f64 on the wire and would corrupt high bits.
            push_field(&mut s, "eco_base", &format!("\"{base:016x}\""));
        }
        s.push('}');
        s
    }

    /// Parses one request line.
    ///
    /// # Errors
    ///
    /// Describes the first syntax or schema problem.
    pub fn decode(line: &str) -> Result<Self, String> {
        let p = fp_obs::parse_line(line)?;
        let id = num_u64(&p, "id")?;
        let netlist = p
            .str_field("netlist")
            .ok_or("missing string 'netlist' field")?
            .to_string();
        // Negative or non-finite deadlines are rejected rather than
        // silently saturated; values beyond u64 range clamp to u64::MAX,
        // which the server treats as unrepresentable-far = no deadline.
        let deadline_ms = match p.num("deadline_ms") {
            None => 0,
            Some(v) if v.is_finite() && v >= 0.0 => v as u64,
            Some(_) => return Err("'deadline_ms' must be a non-negative number".to_string()),
        };
        let eco_base = match p.str_field("eco_base") {
            None => None,
            Some(hex) => Some(
                u64::from_str_radix(hex, 16)
                    .map_err(|_| "'eco_base' must be a hex fingerprint string".to_string())?,
            ),
        };
        Ok(JobRequest {
            id,
            netlist,
            width: p.num("width"),
            lambda: p.num("lambda").unwrap_or(0.0),
            rotation: bool_or(&p, "rotation", true),
            route: bool_or(&p, "route", false),
            deadline_ms,
            use_cache: bool_or(&p, "use_cache", true),
            coalesce: bool_or(&p, "coalesce", true),
            eco_ops: p.str_field("eco_ops").unwrap_or_default().to_string(),
            eco_base,
        })
    }
}

/// One placed rectangle of a response placement.
#[derive(Debug, Clone, PartialEq)]
pub struct PlacedRect {
    /// Module name.
    pub name: String,
    /// Lower-left x.
    pub x: f64,
    /// Lower-left y.
    pub y: f64,
    /// Realized width.
    pub w: f64,
    /// Realized height.
    pub h: f64,
    /// Whether the module was rotated 90°.
    pub rotated: bool,
}

/// The answer to one [`JobRequest`].
#[derive(Debug, Clone, PartialEq)]
pub struct JobResponse {
    /// Echoed request id.
    pub id: u64,
    /// Whether a placement was produced at all. `false` means `error`
    /// explains why (malformed request, infeasible greedy fallback, ...).
    pub ok: bool,
    /// Failure description when `ok` is false.
    pub error: String,
    /// Chip width of the placement.
    pub chip_width: f64,
    /// Chip height of the placement.
    pub chip_height: f64,
    /// Chip area (`width × height`).
    pub area: f64,
    /// Module-area / chip-area utilization in `[0, 1]`.
    pub utilization: f64,
    /// Routed wirelength when the job routed, center-to-center estimate
    /// otherwise.
    pub wirelength: f64,
    /// `true` when the deadline (or an internal failure) forced a fallback
    /// below the full MILP pipeline.
    pub degraded: bool,
    /// `true` when the solution cache answered.
    pub cached: bool,
    /// `true` when this response was fanned out from a solve led by a
    /// concurrent identical request (single-flight follower).
    pub coalesced: bool,
    /// Nonzero when the job was load-shed: the server's estimate of how
    /// long to wait before retrying, in milliseconds. `ok` is false and
    /// `error` says "overloaded" in that case.
    pub retry_after_ms: u64,
    /// Wall-clock from submission to completion, microseconds.
    pub micros: u64,
    /// Which solver backend produced the placement: `"milp"`,
    /// `"annealer"`, `"analytic"`, or `"greedy"` for the degraded
    /// skyline fallback. Empty when `ok` is false.
    pub backend: String,
    /// `true` when the placement was decided by a solver-portfolio race
    /// (`backend` then names the winning leg).
    pub portfolio: bool,
    /// The placement as `name x y w h 0|1` entries joined with `;`.
    /// Empty when `ok` is false.
    pub placement: String,
    /// FNV-1a fingerprint of the solved instance (the *edited* instance
    /// for ECO jobs), or 0 when no placement was produced. Clients use it
    /// as `eco_base` for follow-up deltas.
    pub fingerprint: u64,
    /// ECO jobs only: whether the base placement was found (cache hit)
    /// and the incremental driver ran. `false` means the job fell back to
    /// a scratch solve.
    pub eco_base_hit: bool,
    /// ECO jobs only: modules actually re-placed by the incremental
    /// driver (0 on scratch fallback).
    pub eco_replaced: usize,
    /// ECO jobs only: total modules of the edited instance. 0 marks a
    /// non-ECO response.
    pub eco_total: usize,
}

impl JobResponse {
    /// An error response for `id`.
    #[must_use]
    pub fn failure(id: u64, error: impl Into<String>) -> Self {
        JobResponse {
            id,
            ok: false,
            error: error.into(),
            chip_width: 0.0,
            chip_height: 0.0,
            area: 0.0,
            utilization: 0.0,
            wirelength: 0.0,
            degraded: false,
            cached: false,
            coalesced: false,
            retry_after_ms: 0,
            micros: 0,
            backend: String::new(),
            portfolio: false,
            placement: String::new(),
            fingerprint: 0,
            eco_base_hit: false,
            eco_replaced: 0,
            eco_total: 0,
        }
    }

    /// A typed load-shed response for `id`: `ok` is false and
    /// `retry_after_ms` carries the server's backoff estimate.
    #[must_use]
    pub fn shed(id: u64, retry_after_ms: u64) -> Self {
        let mut resp = JobResponse::failure(id, "overloaded: retry later");
        resp.retry_after_ms = retry_after_ms.max(1);
        resp
    }

    /// Whether this response is a load-shed rejection.
    #[must_use]
    pub fn is_shed(&self) -> bool {
        !self.ok && self.retry_after_ms > 0
    }

    /// Parses the `placement` field back into typed entries.
    ///
    /// # Errors
    ///
    /// Describes the first malformed entry.
    pub fn placement_entries(&self) -> Result<Vec<PlacedRect>, String> {
        if self.placement.is_empty() {
            return Ok(Vec::new());
        }
        self.placement
            .split(';')
            .map(|entry| {
                let parts: Vec<&str> = entry.split_whitespace().collect();
                if parts.len() != 6 {
                    return Err(format!("bad placement entry '{entry}'"));
                }
                let f = |s: &str| s.parse::<f64>().map_err(|_| format!("bad number '{s}'"));
                Ok(PlacedRect {
                    name: parts[0].to_string(),
                    x: f(parts[1])?,
                    y: f(parts[2])?,
                    w: f(parts[3])?,
                    h: f(parts[4])?,
                    rotated: parts[5] == "1",
                })
            })
            .collect()
    }

    /// Serializes to one JSON line (no trailing newline).
    #[must_use]
    pub fn encode(&self) -> String {
        let mut s = format!("{{\"id\":{},\"ok\":{}", self.id, self.ok);
        if !self.ok {
            push_field(&mut s, "error", &json_str(&self.error));
        }
        push_field(&mut s, "chip_width", &jnum(self.chip_width));
        push_field(&mut s, "chip_height", &jnum(self.chip_height));
        push_field(&mut s, "area", &jnum(self.area));
        push_field(&mut s, "utilization", &jnum(self.utilization));
        push_field(&mut s, "wirelength", &jnum(self.wirelength));
        push_field(&mut s, "degraded", &self.degraded.to_string());
        push_field(&mut s, "cached", &self.cached.to_string());
        push_field(&mut s, "coalesced", &self.coalesced.to_string());
        if self.retry_after_ms > 0 {
            push_field(&mut s, "retry_after_ms", &self.retry_after_ms.to_string());
        }
        push_field(&mut s, "micros", &self.micros.to_string());
        if !self.backend.is_empty() {
            push_field(&mut s, "backend", &json_str(&self.backend));
        }
        push_field(&mut s, "portfolio", &self.portfolio.to_string());
        push_field(&mut s, "placement", &json_str(&self.placement));
        if self.fingerprint != 0 {
            push_field(
                &mut s,
                "fingerprint",
                &format!("\"{:016x}\"", self.fingerprint),
            );
        }
        if self.eco_total > 0 {
            push_field(&mut s, "eco_base_hit", &self.eco_base_hit.to_string());
            push_field(&mut s, "eco_replaced", &self.eco_replaced.to_string());
            push_field(&mut s, "eco_total", &self.eco_total.to_string());
        }
        s.push('}');
        s
    }

    /// Parses one response line.
    ///
    /// # Errors
    ///
    /// Describes the first syntax or schema problem.
    pub fn decode(line: &str) -> Result<Self, String> {
        let p = fp_obs::parse_line(line)?;
        let id = num_u64(&p, "id")?;
        let ok = bool_or(&p, "ok", false);
        Ok(JobResponse {
            id,
            ok,
            error: p.str_field("error").unwrap_or_default().to_string(),
            chip_width: p.num("chip_width").unwrap_or(0.0),
            chip_height: p.num("chip_height").unwrap_or(0.0),
            area: p.num("area").unwrap_or(0.0),
            utilization: p.num("utilization").unwrap_or(0.0),
            wirelength: p.num("wirelength").unwrap_or(0.0),
            degraded: bool_or(&p, "degraded", false),
            cached: bool_or(&p, "cached", false),
            coalesced: bool_or(&p, "coalesced", false),
            retry_after_ms: p.num("retry_after_ms").unwrap_or(0.0).max(0.0) as u64,
            micros: p.num("micros").unwrap_or(0.0) as u64,
            backend: p.str_field("backend").unwrap_or_default().to_string(),
            portfolio: bool_or(&p, "portfolio", false),
            placement: p.str_field("placement").unwrap_or_default().to_string(),
            fingerprint: p
                .str_field("fingerprint")
                .and_then(|hex| u64::from_str_radix(hex, 16).ok())
                .unwrap_or(0),
            eco_base_hit: bool_or(&p, "eco_base_hit", false),
            eco_replaced: p.num("eco_replaced").unwrap_or(0.0).max(0.0) as usize,
            eco_total: p.num("eco_total").unwrap_or(0.0).max(0.0) as usize,
        })
    }
}

fn push_field(s: &mut String, key: &str, value: &str) {
    s.push_str(",\"");
    s.push_str(key);
    s.push_str("\":");
    s.push_str(value);
}

/// JSON number: finite shortest round-trip, like the trace writer.
fn jnum(v: f64) -> String {
    if v.is_finite() {
        format!("{v}")
    } else {
        "null".to_string()
    }
}

/// Quotes and escapes `s` with exactly the escapes [`fp_obs::parse_line`]
/// understands.
pub(crate) fn json_str(s: &str) -> String {
    let mut out = String::with_capacity(s.len() + 2);
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\t' => out.push_str("\\t"),
            '\r' => out.push_str("\\r"),
            other => out.push(other),
        }
    }
    out.push('"');
    out
}

fn num_u64(p: &fp_obs::ParsedRecord, key: &str) -> Result<u64, String> {
    let n = p
        .num(key)
        .ok_or_else(|| format!("missing numeric '{key}' field"))?;
    if n < 0.0 || n.fract() != 0.0 {
        return Err(format!("'{key}' must be a non-negative integer"));
    }
    Ok(n as u64)
}

fn bool_or(p: &fp_obs::ParsedRecord, key: &str, default: bool) -> bool {
    match p.get(key) {
        Some(fp_obs::JsonValue::Bool(b)) => *b,
        _ => default,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use fp_netlist::generator::ProblemGenerator;

    #[test]
    fn request_round_trips_with_netlist_text() {
        let nl = ProblemGenerator::new(5, 11).generate();
        let req = JobRequest {
            id: 42,
            netlist: fp_netlist::format::write(&nl),
            width: Some(30.5),
            lambda: 0.5,
            rotation: false,
            route: true,
            deadline_ms: 250,
            use_cache: false,
            coalesce: false,
            eco_ops: String::new(),
            eco_base: None,
        };
        let line = req.encode();
        assert!(!line.contains('\n'), "wire lines must be single-line");
        let back = JobRequest::decode(&line).unwrap();
        assert_eq!(back, req);
        let parsed = back.parse_netlist().unwrap();
        assert_eq!(parsed.num_modules(), 5);
    }

    #[test]
    fn request_defaults_fill_in() {
        let line = "{\"id\":7,\"netlist\":\"problem p\\n\"}";
        let req = JobRequest::decode(line).unwrap();
        assert_eq!(req.id, 7);
        assert!(req.rotation && req.use_cache && req.coalesce && !req.route);
        assert_eq!(req.deadline_ms, 0);
        assert_eq!(req.width, None);
    }

    #[test]
    fn bad_requests_are_rejected() {
        assert!(JobRequest::decode("not json").is_err());
        assert!(JobRequest::decode("{\"netlist\":\"x\"}").is_err()); // no id
        assert!(JobRequest::decode("{\"id\":1}").is_err()); // no netlist
        assert!(JobRequest::decode("{\"id\":-3,\"netlist\":\"x\"}").is_err());
        assert!(JobRequest::decode("{\"id\":1,\"netlist\":\"x\",\"deadline_ms\":-5}").is_err());
    }

    #[test]
    fn absurd_deadline_saturates_instead_of_wrapping() {
        // `1e30` is parseable JSON; the decode must keep it representable
        // (saturating to u64::MAX) so the server's checked deadline
        // arithmetic can treat it as "no deadline" instead of panicking.
        let req = JobRequest::decode("{\"id\":1,\"netlist\":\"x\",\"deadline_ms\":1e30}").unwrap();
        assert_eq!(req.deadline_ms, u64::MAX);
    }

    #[test]
    fn response_round_trips() {
        let resp = JobResponse {
            id: 9,
            ok: true,
            error: String::new(),
            chip_width: 12.0,
            chip_height: 8.5,
            area: 102.0,
            utilization: 0.91,
            wirelength: 44.25,
            degraded: true,
            cached: false,
            coalesced: true,
            retry_after_ms: 0,
            micros: 12345,
            backend: "milp".to_string(),
            portfolio: true,
            placement: "a 0 0 4 2 0;b 4 0 3 3 1".to_string(),
            fingerprint: 0xdead_beef_0123_4567,
            eco_base_hit: true,
            eco_replaced: 2,
            eco_total: 33,
        };
        let back = JobResponse::decode(&resp.encode()).unwrap();
        assert_eq!(back, resp);
        let rects = back.placement_entries().unwrap();
        assert_eq!(rects.len(), 2);
        assert_eq!(rects[1].name, "b");
        assert!(rects[1].rotated);
    }

    #[test]
    fn backend_fields_default_when_absent() {
        // Responses from older servers carry neither field: decode fills
        // in an empty backend and portfolio=false.
        let back = JobResponse::decode("{\"id\":1,\"ok\":true}").unwrap();
        assert_eq!(back.backend, "");
        assert!(!back.portfolio);
    }

    #[test]
    fn failure_response_carries_error() {
        let resp = JobResponse::failure(3, "bad netlist: line 2");
        let back = JobResponse::decode(&resp.encode()).unwrap();
        assert!(!back.ok);
        assert_eq!(back.error, "bad netlist: line 2");
        assert!(back.placement_entries().unwrap().is_empty());
    }

    #[test]
    fn shed_response_round_trips_typed_backoff() {
        let resp = JobResponse::shed(11, 250);
        assert!(resp.is_shed());
        let back = JobResponse::decode(&resp.encode()).unwrap();
        assert!(!back.ok);
        assert_eq!(back.retry_after_ms, 250);
        assert!(back.is_shed());
        assert!(back.error.contains("overloaded"));
        // Non-shed failures carry no retry hint.
        let plain = JobResponse::decode(&JobResponse::failure(3, "nope").encode()).unwrap();
        assert!(!plain.is_shed());
        assert_eq!(plain.retry_after_ms, 0);
    }

    #[test]
    fn eco_request_round_trips_hex_base() {
        let nl = ProblemGenerator::new(4, 3).generate();
        let req = JobRequest::new(5, &nl)
            .with_eco("mod! a rigid 2 2 rot; net- n0")
            .with_eco_base(u64::MAX - 7);
        let back = JobRequest::decode(&req.encode()).unwrap();
        assert_eq!(back, req);
        // u64::MAX-scale keys survive exactly (a JSON number would not).
        assert_eq!(back.eco_base, Some(u64::MAX - 7));
        // Non-ECO requests omit both fields.
        let plain = JobRequest::new(1, &nl).encode();
        assert!(!plain.contains("eco_ops") && !plain.contains("eco_base"));
        assert!(JobRequest::decode("{\"id\":1,\"netlist\":\"x\",\"eco_base\":\"zz\"}").is_err());
    }

    #[test]
    fn eco_report_encoded_only_for_eco_jobs() {
        let mut resp = JobResponse::failure(2, "");
        resp.ok = true;
        resp.fingerprint = 0x0123_4567_89ab_cdef;
        let line = resp.encode();
        assert!(!line.contains("eco_total"), "non-ECO response: {line}");
        let back = JobResponse::decode(&line).unwrap();
        assert_eq!(back.fingerprint, resp.fingerprint);
        assert_eq!(back.eco_total, 0);
        resp.eco_total = 10;
        resp.eco_replaced = 3;
        resp.eco_base_hit = true;
        let back = JobResponse::decode(&resp.encode()).unwrap();
        assert_eq!(back, resp);
    }

    #[test]
    fn placement_parser_rejects_garbage() {
        let mut resp = JobResponse::failure(1, "");
        resp.placement = "a 1 2 3".to_string();
        assert!(resp.placement_entries().is_err());
        resp.placement = "a 1 2 3 x 0".to_string();
        assert!(resp.placement_entries().is_err());
    }
}
