//! Canonical instance fingerprints via FNV-1a.
//!
//! Two [`JobRequest`](crate::JobRequest)s describing the same problem with
//! the same solve parameters must map to the same 64-bit key regardless of
//! module/net declaration order, so the solution cache can answer repeats.
//! Modules and nets are serialized to one [`canonical`] text — lines
//! sorted, parameters appended bit-exactly — and the [`fingerprint`] is
//! FNV-1a over that text. The canonical string itself is stored next to
//! each cache entry and compared on lookup, so a 64-bit hash collision
//! (accidental or adversarial — FNV is not collision-resistant) degrades
//! to a cache miss instead of serving the wrong instance's placement.

use fp_netlist::Netlist;
use std::fmt::Write as _;

const FNV_OFFSET: u64 = 0xcbf2_9ce4_8422_2325;
const FNV_PRIME: u64 = 0x0000_0100_0000_01b3;

/// A tiny incremental FNV-1a 64-bit hasher (no `std::hash` detour so the
/// key is stable across Rust versions and platforms).
#[derive(Debug, Clone, Copy)]
pub struct Fnv1a(u64);

impl Fnv1a {
    /// A hasher at the standard FNV offset basis.
    #[must_use]
    pub fn new() -> Self {
        Fnv1a(FNV_OFFSET)
    }

    /// Absorbs `bytes`.
    pub fn write(&mut self, bytes: &[u8]) {
        for &b in bytes {
            self.0 ^= u64::from(b);
            self.0 = self.0.wrapping_mul(FNV_PRIME);
        }
    }

    /// The current hash value.
    #[must_use]
    pub fn finish(&self) -> u64 {
        self.0
    }
}

impl Default for Fnv1a {
    fn default() -> Self {
        Fnv1a::new()
    }
}

/// Solve parameters that are part of an instance's identity: the same
/// netlist under a different objective or width is a different cache entry.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct FingerprintParams {
    /// Fixed chip width, `None` = derived from module area.
    pub width: Option<f64>,
    /// Wirelength weight λ (0 = pure area objective).
    pub lambda: f64,
    /// Whether 90° rotation is allowed.
    pub rotation: bool,
    /// Whether the job includes global routing.
    pub route: bool,
}

/// The canonical 64-bit fingerprint of `netlist` solved under `params`:
/// FNV-1a over [`canonical`].
#[must_use]
pub fn fingerprint(netlist: &Netlist, params: &FingerprintParams) -> u64 {
    fingerprint_of(&canonical(netlist, params))
}

/// FNV-1a of an already-built [`canonical`] string — lets callers that
/// keep the string around (the solution cache) hash without rebuilding it.
#[must_use]
pub fn fingerprint_of(canon: &str) -> u64 {
    let mut h = Fnv1a::new();
    h.write(canon.as_bytes());
    h.finish()
}

/// The canonical text of `netlist` solved under `params`. Two requests
/// name the same cache entry **iff** their canonical strings are
/// byte-identical, independent of module/net declaration order.
#[must_use]
pub fn canonical(netlist: &Netlist, params: &FingerprintParams) -> String {
    let mut out = String::new();

    // Modules: one canonical line each, sorted so declaration order is
    // irrelevant. Dimensions and pin counts all land in the stream.
    let mut modules: Vec<String> = netlist
        .modules()
        .map(|(_, m)| {
            let p = m.pins();
            match *m.shape() {
                fp_netlist::Shape::Rigid { w, h } => format!(
                    "r {} {} {} {} {} {} {} {}",
                    m.name(),
                    w,
                    h,
                    m.rotatable(),
                    p.left,
                    p.right,
                    p.bottom,
                    p.top
                ),
                fp_netlist::Shape::Flexible {
                    area,
                    min_aspect,
                    max_aspect,
                } => format!(
                    "f {} {} {} {} {} {} {} {}",
                    m.name(),
                    area,
                    min_aspect,
                    max_aspect,
                    p.left,
                    p.right,
                    p.bottom,
                    p.top
                ),
            }
        })
        .collect();
    modules.sort_unstable();
    for line in &modules {
        out.push_str(line);
        out.push('\n');
    }

    // Nets: weight/criticality/max-length plus the *sorted* member names,
    // the whole net list itself sorted.
    let mut nets: Vec<String> = netlist
        .nets()
        .map(|(_, n)| {
            let mut members: Vec<&str> = n
                .modules()
                .iter()
                .map(|&m| netlist.module(m).name())
                .collect();
            members.sort_unstable();
            format!(
                "n {} {} {:?} {}",
                n.weight(),
                n.criticality(),
                n.max_length(),
                members.join(" ")
            )
        })
        .collect();
    nets.sort_unstable();
    for line in &nets {
        out.push_str(line);
        out.push('\n');
    }

    // Parameters. Float identity is bit-exact: requests built from the same
    // wire encoding decode to the same bits.
    match params.width {
        Some(w) => {
            let _ = writeln!(out, "w {:016x}", w.to_bits());
        }
        None => out.push_str("w -\n"),
    }
    let _ = writeln!(
        out,
        "p {:016x} {} {}",
        params.lambda.to_bits(),
        u8::from(params.rotation),
        u8::from(params.route)
    );
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use fp_netlist::generator::ProblemGenerator;
    use fp_netlist::{Module, Netlist, SidePins};

    fn params() -> FingerprintParams {
        FingerprintParams {
            width: None,
            lambda: 0.0,
            rotation: true,
            route: false,
        }
    }

    #[test]
    fn fnv_known_vectors() {
        // Standard FNV-1a 64 test vectors.
        let mut h = Fnv1a::new();
        assert_eq!(h.finish(), 0xcbf2_9ce4_8422_2325);
        h.write(b"a");
        assert_eq!(h.finish(), 0xaf63_dc4c_8601_ec8c);
    }

    #[test]
    fn identical_instances_agree() {
        let a = ProblemGenerator::new(6, 3).generate();
        let b = ProblemGenerator::new(6, 3).generate();
        assert_eq!(fingerprint(&a, &params()), fingerprint(&b, &params()));
    }

    #[test]
    fn different_instances_and_params_differ() {
        let a = ProblemGenerator::new(6, 3).generate();
        let b = ProblemGenerator::new(6, 4).generate();
        let p = params();
        assert_ne!(fingerprint(&a, &p), fingerprint(&b, &p));
        let wider = FingerprintParams {
            width: Some(50.0),
            ..p
        };
        assert_ne!(fingerprint(&a, &p), fingerprint(&a, &wider));
        let routed = FingerprintParams { route: true, ..p };
        assert_ne!(fingerprint(&a, &p), fingerprint(&a, &routed));
    }

    #[test]
    fn canonical_text_backs_the_fingerprint() {
        let a = ProblemGenerator::new(5, 8).generate();
        let p = params();
        let canon = canonical(&a, &p);
        assert_eq!(fingerprint(&a, &p), fingerprint_of(&canon));
        let routed = FingerprintParams { route: true, ..p };
        assert_ne!(canon, canonical(&a, &routed));
    }

    #[test]
    fn module_declaration_order_is_canonicalized() {
        let mk = |first: bool| {
            let mut nl = Netlist::new("t");
            let a = Module::rigid("a", 4.0, 2.0, true).with_pins(SidePins::uniform(1));
            let b = Module::rigid("b", 3.0, 3.0, true).with_pins(SidePins::uniform(1));
            if first {
                nl.add_module(a).unwrap();
                nl.add_module(b).unwrap();
            } else {
                nl.add_module(b).unwrap();
                nl.add_module(a).unwrap();
            }
            nl
        };
        assert_eq!(
            fingerprint(&mk(true), &params()),
            fingerprint(&mk(false), &params())
        );
    }
}
