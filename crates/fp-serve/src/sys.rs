//! Thin poll(2) wrapper — the one place `fp-serve` talks to the OS
//! directly.
//!
//! The event loop needs exactly one capability std does not expose:
//! blocking on readiness of *many* sockets at once. Rather than pull in
//! a dependency, this module declares poll(2) itself; std already links
//! libc on every unix target, so the symbol resolves without any build
//! script. Everything else the loop does (nonblocking sockets, raw fds)
//! is plain std. The crate-level `deny(unsafe_code)` is lifted only for
//! this module, and only for the single FFI call below.

#![allow(unsafe_code)]

use std::io;
use std::os::raw::{c_int, c_ulong};

/// Readiness: data to read (or a pending accept).
pub const POLLIN: i16 = 0x001;
/// Readiness: writable without blocking.
pub const POLLOUT: i16 = 0x004;
/// Condition: error on the descriptor (always polled, never requested).
pub const POLLERR: i16 = 0x008;
/// Condition: peer hung up.
pub const POLLHUP: i16 = 0x010;
/// Condition: descriptor not open (a bookkeeping bug if ever seen).
pub const POLLNVAL: i16 = 0x020;

/// One entry of the poll set, layout-compatible with `struct pollfd`.
#[repr(C)]
#[derive(Debug, Clone, Copy)]
pub struct PollFd {
    /// The descriptor to watch.
    pub fd: c_int,
    /// Requested events (`POLLIN` / `POLLOUT`).
    pub events: i16,
    /// Returned events, filled by [`poll`].
    pub revents: i16,
}

impl PollFd {
    /// A poll entry watching `fd` for `events`.
    #[must_use]
    pub fn new(fd: c_int, events: i16) -> Self {
        PollFd {
            fd,
            events,
            revents: 0,
        }
    }

    /// Whether `fd` is readable (or the peer closed: a hangup must be
    /// read to observe the EOF).
    #[must_use]
    pub fn readable(&self) -> bool {
        self.revents & (POLLIN | POLLHUP | POLLERR) != 0
    }

    /// Whether `fd` is writable (or errored: the write will surface it).
    #[must_use]
    pub fn writable(&self) -> bool {
        self.revents & (POLLOUT | POLLHUP | POLLERR) != 0
    }

    /// Whether the descriptor is gone or broken beyond use.
    #[must_use]
    pub fn broken(&self) -> bool {
        self.revents & (POLLERR | POLLNVAL) != 0
    }
}

extern "C" {
    fn poll(fds: *mut PollFd, nfds: c_ulong, timeout: c_int) -> c_int;
}

/// Blocks until at least one entry is ready or `timeout_ms` elapses
/// (negative = forever). Returns how many entries have nonzero
/// `revents`; 0 means timeout. Retries transparently on `EINTR`.
///
/// # Errors
///
/// Any poll(2) failure other than `EINTR`, as the OS error.
pub fn poll_fds(fds: &mut [PollFd], timeout_ms: i32) -> io::Result<usize> {
    loop {
        // SAFETY: `PollFd` is #[repr(C)] and layout-compatible with
        // `struct pollfd`; the pointer/length pair describes exactly the
        // caller's slice, which poll(2) only writes within.
        let rc = unsafe { poll(fds.as_mut_ptr(), fds.len() as c_ulong, timeout_ms) };
        if rc >= 0 {
            return Ok(rc as usize);
        }
        let err = io::Error::last_os_error();
        if err.kind() != io::ErrorKind::Interrupted {
            return Err(err);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::io::Write;
    use std::net::{TcpListener, TcpStream};
    use std::os::unix::io::AsRawFd;

    fn pair() -> (TcpStream, TcpStream) {
        let listener = TcpListener::bind("127.0.0.1:0").unwrap();
        let a = TcpStream::connect(listener.local_addr().unwrap()).unwrap();
        let (b, _) = listener.accept().unwrap();
        (a, b)
    }

    #[test]
    fn times_out_with_nothing_ready() {
        let (_a, b) = pair();
        let mut fds = [PollFd::new(b.as_raw_fd(), POLLIN)];
        let n = poll_fds(&mut fds, 10).unwrap();
        assert_eq!(n, 0);
        assert!(!fds[0].readable());
    }

    #[test]
    fn sees_readable_after_write_and_hup_after_close() {
        let (mut a, b) = pair();
        a.write_all(b"x").unwrap();
        let mut fds = [PollFd::new(b.as_raw_fd(), POLLIN)];
        let n = poll_fds(&mut fds, 1000).unwrap();
        assert_eq!(n, 1);
        assert!(fds[0].readable());
        drop(a);
        // Peer gone: still "readable" so the loop reads the EOF.
        let mut fds = [PollFd::new(b.as_raw_fd(), POLLIN)];
        poll_fds(&mut fds, 1000).unwrap();
        assert!(fds[0].readable());
    }

    #[test]
    fn fresh_socket_is_writable() {
        let (a, _b) = pair();
        let mut fds = [PollFd::new(a.as_raw_fd(), POLLOUT)];
        let n = poll_fds(&mut fds, 1000).unwrap();
        assert_eq!(n, 1);
        assert!(fds[0].writable());
    }
}
