//! Load-shed regression test (ISSUE satellite): open-loop arrivals at
//! roughly 2× service capacity against a deliberately small admission
//! budget must produce typed `retry_after_ms` sheds — not timeouts, not
//! hangs — while the jobs that ARE admitted finish within a sane p99.
#![cfg(unix)]

use fp_netlist::generator::ProblemGenerator;
use fp_serve::{IoMode, JobRequest, JobResponse, ServeConfig, Server};
use std::collections::HashMap;
use std::io::{BufRead, BufReader, Write};
use std::net::TcpStream;
use std::sync::mpsc;
use std::time::{Duration, Instant};

const WATCHDOG: Duration = Duration::from_secs(120);
/// Generous per-job completion budget for the admitted jobs: with the
/// admission bound at 4 unanswered jobs and ms-scale solves, even a
/// slow single-core CI box sits far inside this.
const P99_BUDGET: Duration = Duration::from_secs(10);

fn with_watchdog<T: Send + 'static>(f: impl FnOnce() -> T + Send + 'static) -> T {
    let (tx, rx) = mpsc::channel();
    std::thread::spawn(move || {
        let _ = tx.send(f());
    });
    rx.recv_timeout(WATCHDOG)
        .expect("load-shed scenario did not settle before the watchdog")
}

fn request_line(id: u64, seed: u64) -> String {
    let nl = ProblemGenerator::new(4, seed).generate();
    JobRequest::new(id, &nl).with_cache(false).encode()
}

#[test]
fn open_loop_overload_sheds_with_typed_backoff_and_bounded_p99() {
    let (responses, latencies, report) = with_watchdog(|| {
        // Tiny admission budget: 1 worker, queue of 2, at most 4
        // unanswered jobs per shard. Overload has to shed, not queue.
        let config = ServeConfig::default()
            .with_io(IoMode::Event)
            .with_shards(1)
            .with_workers(1)
            .with_queue_capacity(2)
            .with_per_shard_pending(4)
            .with_node_limit(500)
            .with_cache_capacity(0);
        let server = Server::bind("127.0.0.1:0", config).unwrap();
        let addr = server.local_addr();

        // Calibrate: how long does one solve of this shape take here?
        let service = {
            let mut warm = TcpStream::connect(addr).unwrap();
            let t0 = Instant::now();
            writeln!(warm, "{}", request_line(9999, 1)).unwrap();
            let mut line = String::new();
            BufReader::new(&warm).read_line(&mut line).unwrap();
            assert!(JobResponse::decode(line.trim_end()).unwrap().ok);
            t0.elapsed()
        };

        // Open loop at ~2× capacity: send every service/2, never wait
        // for a response before the next send. A reader thread collects
        // answers (sheds come back out of order, long before solves).
        let n = 40u64;
        let stream = TcpStream::connect(addr).unwrap();
        let reader = {
            let stream = stream.try_clone().unwrap();
            std::thread::spawn(move || {
                let mut got = Vec::new();
                let mut reader = BufReader::new(stream);
                while got.len() < n as usize {
                    let mut line = String::new();
                    if reader.read_line(&mut line).unwrap() == 0 {
                        break;
                    }
                    got.push((
                        JobResponse::decode(line.trim_end()).expect("decode"),
                        Instant::now(),
                    ));
                }
                got
            })
        };
        let gap = (service / 2).max(Duration::from_micros(200));
        let mut sent = HashMap::new();
        let mut stream = stream;
        for id in 0..n {
            writeln!(stream, "{}", request_line(id, id)).unwrap();
            sent.insert(id, Instant::now());
            std::thread::sleep(gap);
        }
        let got = reader.join().unwrap();
        assert_eq!(got.len(), n as usize, "every open-loop job answered");
        let latencies: Vec<Duration> = got
            .iter()
            .filter(|(r, _)| r.ok)
            .map(|(r, at)| at.duration_since(sent[&r.id]))
            .collect();
        (got, latencies, server.shutdown())
    });

    // Every response is either a real answer or a typed shed; overload
    // never surfaces as a timeout or a silent drop.
    let mut ok = 0u64;
    let mut shed = 0u64;
    for (resp, _) in &responses {
        if resp.ok {
            ok += 1;
        } else {
            assert!(resp.is_shed(), "unexpected failure: {}", resp.error);
            assert!(
                (1..=30_000).contains(&resp.retry_after_ms),
                "shed must carry a sane typed backoff, got {}ms",
                resp.retry_after_ms
            );
            shed += 1;
        }
    }
    assert!(shed >= 1, "2x overload with queue=2 must shed something");
    assert!(ok >= 1, "admission must still let some jobs through");

    // p99 (here: max, n < 100) of the admitted jobs stays in budget —
    // shedding keeps queueing delay bounded instead of unbounded.
    let worst = latencies.iter().max().copied().unwrap_or_default();
    assert!(
        worst <= P99_BUDGET,
        "p99 of accepted jobs blew the budget: {worst:?}"
    );

    let acc = report.accounting;
    assert_eq!(acc.accepted, acc.completed + acc.shed);
    assert_eq!(acc.accepted, 41, "warmup + 40 open-loop requests");
    assert_eq!(acc.shed, shed);
}
