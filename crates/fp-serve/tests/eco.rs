//! ECO (delta-job) integration tests: the end-to-end incremental path
//! through the engine, the canonical-equivalence property of the delta
//! applier, ECO-vs-scratch legality/area equivalence over seeded edit
//! scripts, scratch fallbacks, and cache-snapshot persistence across an
//! engine restart.

use fp_netlist::generator::ProblemGenerator;
use fp_netlist::Netlist;
use fp_obs::{validate_line, Collector, Tracer};
use fp_serve::fingerprint::{canonical, fingerprint_of, FingerprintParams};
use fp_serve::{Engine, JobRequest, PlacedRect, ServeConfig};
use proptest::prelude::*;
use std::sync::mpsc;
use std::time::Duration;

const WATCHDOG: Duration = Duration::from_secs(120);

/// Runs `f` on its own thread, panicking if it outlives the watchdog.
fn with_watchdog<T: Send + 'static>(f: impl FnOnce() -> T + Send + 'static) -> T {
    let (tx, rx) = mpsc::channel();
    std::thread::spawn(move || {
        let _ = tx.send(f());
    });
    rx.recv_timeout(WATCHDOG)
        .expect("service did not settle before the watchdog")
}

fn tiny_config() -> ServeConfig {
    ServeConfig::default().with_node_limit(500).with_workers(1)
}

/// Every pair of placed rectangles must be disjoint (small epsilon for
/// shared edges) and all modules present — the legality half of the
/// ECO-vs-scratch equivalence contract.
fn assert_legal(rects: &[PlacedRect], netlist: &Netlist) {
    assert_eq!(rects.len(), netlist.num_modules(), "every module placed");
    for (i, a) in rects.iter().enumerate() {
        for b in &rects[i + 1..] {
            let overlap_w = (a.x + a.w).min(b.x + b.w) - a.x.max(b.x);
            let overlap_h = (a.y + a.h).min(b.y + b.h) - a.y.max(b.y);
            assert!(
                overlap_w <= 1e-6 || overlap_h <= 1e-6,
                "{} and {} overlap by {overlap_w}x{overlap_h}",
                a.name,
                b.name
            );
        }
    }
}

#[test]
fn delta_job_reuses_base_and_reports_eco() {
    let (base, eco, lines) = with_watchdog(|| {
        let collector = Collector::new();
        let tracer = Tracer::new(collector.clone());
        let engine = Engine::start(tiny_config().with_tracer(tracer));
        let client = engine.client();
        let nl = ProblemGenerator::new(10, 21).generate();

        let base = client.call(JobRequest::new(1, &nl));
        assert!(base.ok, "{}", base.error);
        let eco = client.call(
            JobRequest::new(2, &nl)
                .with_eco("mod! m03 rigid 3 2 rot")
                .with_eco_base(base.fingerprint),
        );
        engine.shutdown();
        let lines: Vec<String> = collector
            .records()
            .iter()
            .map(fp_obs::Record::to_json)
            .collect();
        (base, eco, lines)
    });

    assert!(eco.ok, "{}", eco.error);
    assert!(eco.eco_base_hit, "base was cached, ECO must hit");
    assert_eq!(eco.eco_total, 10);
    assert!(
        eco.eco_replaced >= 1 && eco.eco_replaced < 10,
        "one edit should replace a strict subset, got {}",
        eco.eco_replaced
    );
    assert_eq!(eco.backend, "eco");
    assert_ne!(eco.fingerprint, base.fingerprint, "edited instance differs");

    // The trace carries one DeltaApply and one EcoJob, and both validate
    // against the fp-obs schema like any other event line.
    let delta_lines: Vec<&String> = lines
        .iter()
        .filter(|l| l.contains("\"DeltaApply\""))
        .collect();
    let eco_lines: Vec<&String> = lines.iter().filter(|l| l.contains("\"EcoJob\"")).collect();
    assert_eq!(delta_lines.len(), 1, "one DeltaApply event");
    assert_eq!(eco_lines.len(), 1, "one EcoJob event");
    for line in lines.iter() {
        validate_line(line).unwrap_or_else(|e| panic!("invalid trace line {line}: {e}"));
    }
    assert!(eco_lines[0].contains("\"base_hit\":true"));
}

#[test]
fn eco_falls_back_to_scratch_without_base_or_on_mismatch() {
    with_watchdog(|| {
        // No cache at all: the base placement cannot be found.
        let engine = Engine::start(tiny_config().with_cache_capacity(0));
        let client = engine.client();
        let nl = ProblemGenerator::new(6, 5).generate();
        let resp = client.call(JobRequest::new(1, &nl).with_eco("mod! m01 rigid 2 2 rot"));
        assert!(resp.ok, "{}", resp.error);
        assert!(!resp.eco_base_hit, "no cache, no base hit");
        assert_eq!(resp.eco_total, 6, "still reported as an ECO job");
        assert_legal(&resp.placement_entries().unwrap(), &{
            let ops = fp_serve::parse_delta_ops("mod! m01 rigid 2 2 rot").unwrap();
            fp_serve::apply_delta(&nl, &ops).unwrap().netlist
        });
        engine.shutdown();

        // Cached base, but the client pins a different base fingerprint:
        // the base must not be trusted.
        let engine = Engine::start(tiny_config());
        let client = engine.client();
        let base = client.call(JobRequest::new(2, &nl));
        assert!(base.ok);
        let resp = client.call(
            JobRequest::new(3, &nl)
                .with_eco("mod! m01 rigid 2 2 rot")
                .with_eco_base(base.fingerprint ^ 1),
        );
        assert!(resp.ok);
        assert!(!resp.eco_base_hit, "mismatched eco_base must not hit");

        // Threshold 0: every delta counts as too large, scratch solve.
        let engine2 = Engine::start(tiny_config().with_eco_threshold(0.0));
        let client2 = engine2.client();
        let base = client2.call(JobRequest::new(4, &nl));
        assert!(base.ok);
        let resp = client2.call(JobRequest::new(5, &nl).with_eco("mod! m01 rigid 2 2 rot"));
        assert!(resp.ok);
        assert!(!resp.eco_base_hit, "threshold 0 diverts to scratch");

        // A malformed script is a typed failure, not a crash.
        let resp = client2.call(JobRequest::new(6, &nl).with_eco("frob m01"));
        assert!(!resp.ok);
        assert!(resp.error.contains("bad delta"), "{}", resp.error);
        engine2.shutdown();
    });
}

#[test]
fn eco_vs_scratch_equivalence_over_seeded_edit_scripts() {
    // For several seeded (instance, edit-script) pairs: the ECO answer
    // must be a *legal* placement of the edited instance with area close
    // to the scratch solve of the same instance.
    with_watchdog(|| {
        for seed in [3u64, 11, 29] {
            let nl = ProblemGenerator::new(9, seed).generate();
            let victim = format!("m{:02}", seed % 9);
            let script = format!("mod! {victim} rigid 2 4 rot; mod! extra rigid 2 2 rot");

            let engine = Engine::start(tiny_config());
            let client = engine.client();
            let base = client.call(JobRequest::new(1, &nl));
            assert!(base.ok, "seed {seed}: {}", base.error);
            let eco = client.call(JobRequest::new(2, &nl).with_eco(&script));
            assert!(eco.ok, "seed {seed}: {}", eco.error);
            assert!(eco.eco_base_hit, "seed {seed}: expected ECO fast path");

            let edited = {
                let ops = fp_serve::parse_delta_ops(&script).unwrap();
                fp_serve::apply_delta(&nl, &ops).unwrap().netlist
            };
            assert_legal(&eco.placement_entries().unwrap(), &edited);

            // Scratch solve of the pre-built edited instance for the
            // quality comparison (fresh engine: no cache, no coalescing
            // with the ECO job).
            let scratch = client.call(JobRequest::new(3, &edited).with_cache(false));
            assert!(scratch.ok, "seed {seed}: {}", scratch.error);
            assert_eq!(eco.fingerprint, scratch.fingerprint, "same instance");
            // Quality bound is deliberately loose here: on a 9-module
            // instance a two-op edit (resize + brand-new module) is a
            // big perturbation, and ECO keeps the rest fixed where
            // scratch repacks everything. The tight 5% single-edit pin
            // at n=33 lives in the serve_snapshot bench gate.
            assert!(
                eco.area <= scratch.area * 1.30 + 1e-9,
                "seed {seed}: ECO area {} vs scratch {}",
                eco.area,
                scratch.area
            );
            engine.shutdown();
        }
    });
}

#[test]
fn cache_snapshot_survives_restart_and_feeds_eco() {
    with_watchdog(|| {
        let path =
            std::env::temp_dir().join(format!("fp-serve-eco-restart-{}.jsonl", std::process::id()));
        let _ = std::fs::remove_file(&path);
        let nl = ProblemGenerator::new(8, 13).generate();

        // First life: solve the base, then shut down gracefully — the
        // snapshot must land on disk.
        let engine = Engine::start(tiny_config().with_cache_path(Some(path.clone())));
        let base = engine.client().call(JobRequest::new(1, &nl));
        assert!(base.ok, "{}", base.error);
        engine.shutdown();
        assert!(path.exists(), "graceful shutdown writes the snapshot");

        // Second life: the very first delta job finds the base placement
        // without ever having solved it in this process.
        let engine = Engine::start(tiny_config().with_cache_path(Some(path.clone())));
        let eco = engine.client().call(
            JobRequest::new(2, &nl)
                .with_eco("mod! m02 rigid 2 3 rot")
                .with_eco_base(base.fingerprint),
        );
        assert!(eco.ok, "{}", eco.error);
        assert!(eco.eco_base_hit, "restored cache must feed the ECO path");
        let (hits, _) = engine.cache_stats();
        assert!(hits >= 1, "base lookup hit the restored cache");
        engine.shutdown();
        let _ = std::fs::remove_file(&path);
    });
}

#[test]
fn cache_snapshot_lands_without_shutdown() {
    with_watchdog(|| {
        let path =
            std::env::temp_dir().join(format!("fp-serve-eco-bg-{}.jsonl", std::process::id()));
        let _ = std::fs::remove_file(&path);
        let nl = ProblemGenerator::new(6, 29).generate();

        // A killed server never runs destructors, so the snapshot must
        // land from the background persist loop while the engine is
        // still alive — poll for it without dropping anything.
        let engine = Engine::start(tiny_config().with_cache_path(Some(path.clone())));
        let base = engine.client().call(JobRequest::new(1, &nl));
        assert!(base.ok, "{}", base.error);
        let deadline = std::time::Instant::now() + std::time::Duration::from_secs(10);
        while !path.exists() && std::time::Instant::now() < deadline {
            std::thread::sleep(std::time::Duration::from_millis(50));
        }
        assert!(
            path.exists(),
            "background persist loop writes the snapshot while running"
        );
        let restored = fp_serve::cache::SolutionCache::new(16);
        assert!(restored.load(&path).unwrap() >= 1, "snapshot has the base");
        engine.shutdown();
        let _ = std::fs::remove_file(&path);
    });
}

/// Strategy: a base instance seed plus a small edit script built from
/// ops that are valid against any instance the generator produces.
fn edit_script() -> impl Strategy<Value = String> {
    let op = prop_oneof![
        (0usize..6, 1u32..8, 1u32..8, any::<bool>()).prop_map(|(i, w, h, rot)| format!(
            "mod! m{i:02} rigid {w} {h} {}",
            if rot { "rot" } else { "fixed" }
        )),
        (1u32..6, 1u32..4).prop_map(|(w, h)| format!("mod! fresh rigid {w} {h} rot")),
        (0usize..6, 0usize..6).prop_map(|(a, b)| {
            let b = if a == b { (b + 1) % 6 } else { b };
            format!("net! pnet weight 2 : m{a:02} m{b:02}")
        }),
        (0usize..6).prop_map(|i| format!("mod- m{i:02}")),
    ];
    proptest::collection::vec(op, 1..4).prop_map(|ops| ops.join("; "))
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// The tentpole's correctness property: applying a delta to the base
    /// must yield the byte-identical canonical text (and therefore the
    /// identical fingerprint) as building the edited instance from
    /// scratch out of its own format text. Canonicalization must not be
    /// able to tell how the instance was produced.
    #[test]
    fn delta_apply_matches_scratch_canonical(seed in 0u64..500, script in edit_script()) {
        let base = ProblemGenerator::new(6, seed).generate();
        let ops = fp_serve::parse_delta_ops(&script).unwrap();
        let Ok(out) = fp_serve::apply_delta(&base, &ops) else {
            // Scripts can collide with generator randomness (e.g. a net
            // op referencing a module an earlier op removed); strictness
            // is its own contract, tested elsewhere.
            return Ok(());
        };
        // Scratch-build: serialize the edited netlist to format text and
        // re-parse it, exactly what a client sending the instance whole
        // would make the server do.
        let scratch = fp_netlist::format::parse(&fp_netlist::format::write(&out.netlist)).unwrap();
        let params = FingerprintParams { width: None, lambda: 0.5, rotation: true, route: false };
        let via_delta = canonical(&out.netlist, &params);
        let via_scratch = canonical(&scratch, &params);
        prop_assert_eq!(&via_delta, &via_scratch, "canonical text must be byte-identical");
        prop_assert_eq!(fingerprint_of(&via_delta), fingerprint_of(&via_scratch));
        // Touched names always exist in the edited instance.
        for name in out.touched_modules.iter().chain(&out.touched_net_members) {
            prop_assert!(out.netlist.module_by_name(name).is_some());
        }
    }
}
