//! Property tests for the single-flight table and its fan-out through
//! the engine.
//!
//! The contract under test (ISSUE satellite): with N threads joining M
//! fingerprints concurrently, exactly one waiter per distinct canonical
//! instance becomes the leader (one solve), every waiter is accounted
//! for at fan-out, and a fingerprint collision with *different*
//! canonical text never coalesces.

use fp_serve::singleflight::{Admit, Inflight};
use proptest::prelude::*;
use std::collections::{HashMap, HashSet};
use std::sync::{Arc, Barrier, Mutex};

/// One waiter marker: (thread, sequence-within-thread, instance).
type Marker = (usize, usize, usize);
/// Every join's admission decision, in per-thread arrival order.
type Admits = Vec<(Marker, Admit)>;
/// The fan-out each instance's `complete` returned.
type Fanouts = HashMap<usize, Vec<Marker>>;

/// Runs `threads` threads, each joining `per_thread` times across
/// `instances` distinct canonical instances. When `collide` is set,
/// every instance shares ONE fingerprint key (the adversarial collision
/// case); otherwise each instance has its own key.
fn hammer(threads: usize, instances: usize, per_thread: usize, collide: bool) -> (Admits, Fanouts) {
    let table: Arc<Inflight<Marker>> = Arc::new(Inflight::new());
    let canons: Vec<Arc<str>> = (0..instances)
        .map(|i| Arc::from(format!("problem inst-{i}\n")))
        .collect();
    let keys: Vec<u64> = (0..instances)
        .map(|i| if collide { 0xDEAD } else { i as u64 })
        .collect();

    // Phase 1: every thread joins all its waiters. The barrier keeps all
    // joins strictly before any complete, so each instance must end up
    // with exactly one leader among them.
    let barrier = Arc::new(Barrier::new(threads));
    let admits = Arc::new(Mutex::new(Vec::new()));
    let handles: Vec<_> = (0..threads)
        .map(|t| {
            let table = Arc::clone(&table);
            let canons = canons.clone();
            let keys = keys.clone();
            let barrier = Arc::clone(&barrier);
            let admits = Arc::clone(&admits);
            std::thread::spawn(move || {
                barrier.wait();
                for s in 0..per_thread {
                    let inst = (t * per_thread + s) % canons.len();
                    let marker = (t, s, inst);
                    let admit = table.join(keys[inst], &canons[inst], marker);
                    admits.lock().unwrap().push((marker, admit));
                }
            })
        })
        .collect();
    for h in handles {
        h.join().unwrap();
    }

    // Phase 2: complete each instance once and collect its fan-out.
    let mut fanouts = HashMap::new();
    for (inst, canon) in canons.iter().enumerate() {
        fanouts.insert(inst, table.complete(keys[inst], canon));
    }
    assert!(table.is_empty(), "table must be empty after completes");
    let admits = Arc::try_unwrap(admits).ok().unwrap().into_inner().unwrap();
    (admits, fanouts)
}

fn check_invariants(threads: usize, instances: usize, per_thread: usize, collide: bool) {
    let (admits, fanouts) = hammer(threads, instances, per_thread, collide);
    let total_joins = threads * per_thread;
    let touched: HashSet<usize> = admits.iter().map(|((_, _, inst), _)| *inst).collect();

    // Exactly one leader (one solve) per touched canonical instance —
    // also in the collision case, where "instance" means canonical text,
    // not fingerprint.
    let mut leaders: HashMap<usize, Vec<Marker>> = HashMap::new();
    for (marker, admit) in &admits {
        if *admit == Admit::Leader {
            leaders.entry(marker.2).or_default().push(*marker);
        }
    }
    for &inst in &touched {
        let n = leaders.get(&inst).map_or(0, Vec::len);
        assert_eq!(n, 1, "instance {inst} had {n} leaders (want exactly 1)");
    }

    // Every waiter is accounted for at fan-out, under its own instance,
    // with the leader first.
    let fanned: usize = fanouts.values().map(Vec::len).sum();
    assert_eq!(fanned, total_joins, "fan-out lost or duplicated waiters");
    for (&inst, waiters) in &fanouts {
        for &(_, _, winst) in waiters {
            assert_eq!(
                winst, inst,
                "waiter of instance {winst} fanned out under {inst}"
            );
        }
        if let Some(first) = waiters.first() {
            assert_eq!(
                leaders[&inst][0], *first,
                "fan-out must return the leader first"
            );
        }
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    /// N threads × M distinct-key fingerprints.
    #[test]
    fn one_solve_per_instance_distinct_keys(
        threads in 1usize..6,
        instances in 1usize..5,
        per_thread in 1usize..8,
    ) {
        check_invariants(threads, instances, per_thread, false);
    }

    /// Same, but every canonical instance shares one 64-bit fingerprint:
    /// collisions must split flights by canonical text, never coalesce.
    #[test]
    fn collisions_never_coalesce(
        threads in 1usize..6,
        instances in 2usize..5,
        per_thread in 1usize..8,
    ) {
        check_invariants(threads, instances, per_thread, true);
    }
}

/// End-to-end fan-out through the engine: K identical concurrent jobs
/// produce one solve whose response reaches every waiter byte-identical
/// up to the per-waiter fields (`id`, `micros`, `coalesced`).
#[test]
fn fanout_responses_are_byte_identical() {
    let config = fp_serve::ServeConfig::default()
        .with_workers(1)
        .with_node_limit(500)
        .with_cache_capacity(0);
    let engine = fp_serve::Engine::start(config);
    let client = engine.client();

    // A blocker occupies the single worker so the K identical jobs below
    // all join the leader's flight while it waits in the queue.
    let blocker_nl = fp_netlist::generator::ProblemGenerator::new(6, 99).generate();
    let blocker = client.submit(fp_serve::JobRequest::new(1000, &blocker_nl).with_cache(false));

    let netlist = fp_netlist::generator::ProblemGenerator::new(5, 7).generate();
    let k = 6;
    let receivers: Vec<_> = (0..k)
        .map(|i| client.submit(fp_serve::JobRequest::new(i, &netlist).with_cache(false)))
        .collect();
    assert!(blocker.recv().unwrap().ok);

    let mut normalized = Vec::new();
    let mut coalesced = 0;
    for (i, rx) in receivers.into_iter().enumerate() {
        let mut resp = rx.recv().unwrap();
        assert!(resp.ok, "job {i}: {}", resp.error);
        assert_eq!(resp.id, i as u64);
        coalesced += u32::from(resp.coalesced);
        resp.id = 0;
        resp.micros = 0;
        resp.coalesced = false;
        normalized.push(resp.encode());
    }
    assert!(
        normalized.iter().all(|line| line == &normalized[0]),
        "fan-out responses differ beyond per-waiter fields"
    );
    assert_eq!(
        coalesced,
        k as u32 - 1,
        "expected one leader and k-1 coalesced followers"
    );
    let stats = engine.stats();
    assert_eq!(stats.coalesced as u32, k as u32 - 1);
    assert_eq!(stats.submitted, stats.answered + stats.shed);
    engine.shutdown();
}
