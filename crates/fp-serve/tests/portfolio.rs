//! Portfolio-mode integration tests: legality, winner attribution, the
//! quality guarantee against the sequential ladder, and tight-deadline
//! any-of behavior.

use fp_netlist::generator::ProblemGenerator;
use fp_netlist::Netlist;
use fp_obs::{Collector, EventKind, Tracer};
use fp_serve::{Backend, Engine, JobRequest, JobResponse, ServeConfig};

/// Solves `netlist` on a fresh single-worker engine (cache off so every
/// run actually solves) and returns the response.
fn solve(
    netlist: &Netlist,
    backends: Vec<Backend>,
    deadline_ms: u64,
    tracer: Tracer,
) -> JobResponse {
    let engine = Engine::start(
        ServeConfig::default()
            .with_workers(1)
            .with_cache_capacity(0)
            .with_backends(backends)
            .with_tracer(tracer),
    );
    let client = engine.client();
    let resp = client.call(
        JobRequest::new(1, netlist)
            .with_deadline_ms(deadline_ms)
            .with_cache(false),
    );
    engine.shutdown();
    resp
}

/// Placement sanity independent of the engine's own validity checks: all
/// modules present, every rectangle inside the outline, no overlap.
fn assert_legal(resp: &JobResponse, modules: usize) {
    assert!(resp.ok, "{}", resp.error);
    let rects = resp.placement_entries().expect("parseable placement");
    assert_eq!(rects.len(), modules);
    for r in &rects {
        assert!(r.x >= -1e-9 && r.x + r.w <= resp.chip_width + 1e-9, "{r:?}");
        assert!(
            r.y >= -1e-9 && r.y + r.h <= resp.chip_height + 1e-9,
            "{r:?}"
        );
    }
    for (i, a) in rects.iter().enumerate() {
        for b in rects.iter().skip(i + 1) {
            let apart = a.x + a.w <= b.x + 1e-9
                || b.x + b.w <= a.x + 1e-9
                || a.y + a.h <= b.y + 1e-9
                || b.y + b.h <= a.y + 1e-9;
            assert!(apart, "overlap between {a:?} and {b:?}");
        }
    }
}

#[test]
fn portfolio_names_its_winner_and_is_legal() {
    let netlist = ProblemGenerator::new(6, 31).generate();
    let collector = Collector::new();
    let resp = solve(
        &netlist,
        vec![Backend::Milp, Backend::Annealer, Backend::Analytic],
        0,
        Tracer::new(collector.clone()),
    );
    assert_legal(&resp, 6);
    assert!(resp.portfolio);
    assert!(
        matches!(resp.backend.as_str(), "milp" | "annealer" | "analytic"),
        "unexpected winner '{}'",
        resp.backend
    );
    // One BackendDone per leg, exactly one marked as the winner, and one
    // Portfolio record naming it.
    let legs = collector.of_kind(EventKind::BackendDone);
    assert_eq!(legs.len(), 3);
    let winners: Vec<&str> = legs
        .iter()
        .filter_map(|r| match &r.event {
            fp_obs::Event::BackendDone {
                backend, won: true, ..
            } => Some(*backend),
            _ => None,
        })
        .collect();
    assert_eq!(winners, vec![resp.backend.as_str()]);
    let races = collector.of_kind(EventKind::Portfolio);
    assert_eq!(races.len(), 1);
    match &races[0].event {
        fp_obs::Event::Portfolio {
            backends, winner, ..
        } => {
            assert_eq!(*backends, 3);
            assert_eq!(*winner, resp.backend.as_str());
        }
        other => panic!("unexpected event {other:?}"),
    }
}

#[test]
fn portfolio_cost_never_exceeds_the_sequential_ladder() {
    // With no deadline the race is best-of-N and the MILP leg mirrors
    // the sequential ladder exactly (same budgets, same improvement
    // rounds, no incumbent cutoff — that is an any-of-mode mechanism).
    // The winner is the lowest-cost leg, so the portfolio's cost is
    // bounded by the ladder's on every instance.
    for seed in [3_u64, 17, 42] {
        let netlist = ProblemGenerator::new(6, seed).generate();
        let sequential = solve(&netlist, Vec::new(), 0, Tracer::disabled());
        let portfolio = solve(
            &netlist,
            vec![Backend::Milp, Backend::Annealer, Backend::Analytic],
            0,
            Tracer::disabled(),
        );
        assert_legal(&sequential, 6);
        assert_legal(&portfolio, 6);
        assert!(!sequential.portfolio);
        assert!(portfolio.portfolio);
        assert!(
            portfolio.area <= sequential.area + 1e-6,
            "seed {seed}: portfolio area {} (winner {}) worse than sequential {}",
            portfolio.area,
            portfolio.backend,
            sequential.area
        );
    }
}

#[test]
fn tight_deadline_races_first_to_finish() {
    // 30 ms is far below the MILP pipeline's time on this instance but
    // plenty for the heuristic legs: the any-of race must still answer
    // with a legal placement from one of them.
    let netlist = ProblemGenerator::new(9, 77).generate();
    let resp = solve(
        &netlist,
        vec![Backend::Milp, Backend::Annealer, Backend::Analytic],
        30,
        Tracer::disabled(),
    );
    assert_legal(&resp, 9);
    assert!(resp.portfolio);
    assert!(!resp.backend.is_empty());
}
