//! Deterministic chaos / fault-injection suite for the event-driven
//! front end (ISSUE satellite).
//!
//! Every scenario runs against a real [`Server`] in [`IoMode::Event`]
//! under a watchdog, and every scenario ends by checking the books from
//! [`Server::shutdown`]: in event mode `accepted == completed + shed`
//! (no accepted job is ever left unanswered, even when its client is
//! long gone), and the engine's own `submitted == answered + shed`.
//!
//! Faults injected: slow-loris byte drips, half-closed sockets,
//! mid-job disconnects, oversized frames, and a seeded flaky-client
//! driver mixing all of them (unix-only: the sharded poll loop is).
#![cfg(unix)]

use fp_netlist::generator::ProblemGenerator;
use fp_serve::{IoMode, JobRequest, JobResponse, ServeConfig, Server, ShutdownReport};
use rand::{rngs::StdRng, Rng, SeedableRng};
use std::io::{BufRead, BufReader, Read, Write};
use std::net::{Shutdown, TcpStream};
use std::sync::mpsc;
use std::time::Duration;

const WATCHDOG: Duration = Duration::from_secs(60);

/// Runs `f` on its own thread, panicking if it outlives the watchdog —
/// a stuck drain or a lost response fails instead of hanging the suite.
fn with_watchdog<T: Send + 'static>(f: impl FnOnce() -> T + Send + 'static) -> T {
    let (tx, rx) = mpsc::channel();
    std::thread::spawn(move || {
        let _ = tx.send(f());
    });
    rx.recv_timeout(WATCHDOG)
        .expect("chaos scenario did not settle before the watchdog")
}

/// Single shard keeps counter assertions exact; tiny node budget keeps
/// each solve fast.
fn chaos_config() -> ServeConfig {
    ServeConfig::default()
        .with_io(IoMode::Event)
        .with_shards(1)
        .with_node_limit(500)
}

fn request_line(id: u64, modules: usize, seed: u64) -> String {
    let nl = ProblemGenerator::new(modules, seed).generate();
    JobRequest::new(id, &nl).with_cache(false).encode()
}

fn read_response(stream: &TcpStream) -> JobResponse {
    let mut reader = BufReader::new(stream);
    let mut line = String::new();
    reader.read_line(&mut line).expect("read response line");
    JobResponse::decode(line.trim_end()).expect("decode response")
}

/// Checks the post-drain invariants every scenario must uphold.
fn assert_books_balance(report: &ShutdownReport) {
    let acc = &report.accounting;
    assert_eq!(
        acc.accepted,
        acc.completed + acc.shed,
        "front end leaked accepted jobs: {acc:?}"
    );
    let eng = &report.engine;
    assert_eq!(
        eng.submitted,
        eng.answered + eng.shed,
        "engine leaked submitted jobs: {eng:?}"
    );
}

/// A slow-loris client drips a valid request a few bytes at a time
/// across many poll rounds; the frame decoder must reassemble it and
/// answer. A second loris drips half a line and vanishes; nothing may
/// be accepted for it and nothing may leak.
#[test]
fn slow_loris_partial_frames_are_reassembled_then_dropped_midline_is_not_leaked() {
    let report = with_watchdog(|| {
        let server = Server::bind("127.0.0.1:0", chaos_config().with_workers(1)).unwrap();
        let addr = server.local_addr();

        let mut whole = TcpStream::connect(addr).unwrap();
        let line = request_line(7, 3, 11) + "\n";
        for chunk in line.as_bytes().chunks(5) {
            whole.write_all(chunk).unwrap();
            whole.flush().unwrap();
            std::thread::sleep(Duration::from_millis(1));
        }
        let resp = read_response(&whole);
        assert!(resp.ok, "dripped request failed: {}", resp.error);
        assert_eq!(resp.id, 7);
        drop(whole);

        let mut half = TcpStream::connect(addr).unwrap();
        let partial = &line.as_bytes()[..line.len() / 2];
        for chunk in partial.chunks(5) {
            half.write_all(chunk).unwrap();
            half.flush().unwrap();
            std::thread::sleep(Duration::from_millis(1));
        }
        drop(half); // mid-line disconnect: never became a request

        server.shutdown()
    });
    assert_books_balance(&report);
    assert_eq!(report.accounting.conns, 2);
    assert_eq!(
        report.accounting.accepted, 1,
        "half a line is not a request"
    );
    assert_eq!(report.accounting.completed, 1);
    assert_eq!(report.accounting.malformed, 0);
}

/// A client that sends its request and immediately half-closes the
/// write side (shutdown(SHUT_WR)) must still receive its answer — EOF
/// on read is "no more requests", not "hang up".
#[test]
fn half_closed_socket_still_receives_its_response() {
    let report = with_watchdog(|| {
        let server = Server::bind("127.0.0.1:0", chaos_config().with_workers(1)).unwrap();
        let mut stream = TcpStream::connect(server.local_addr()).unwrap();
        writeln!(stream, "{}", request_line(3, 3, 5)).unwrap();
        stream.shutdown(Shutdown::Write).unwrap();

        let resp = read_response(&stream);
        assert!(
            resp.ok,
            "half-closed client lost its answer: {}",
            resp.error
        );
        assert_eq!(resp.id, 3);
        // After the answer the server closes its side too: clean EOF.
        let mut rest = Vec::new();
        let n = (&stream).read_to_end(&mut rest).unwrap();
        assert_eq!(n, 0, "unexpected trailing bytes: {rest:?}");

        server.shutdown()
    });
    assert_books_balance(&report);
    assert_eq!(report.accounting.accepted, 1);
    assert_eq!(report.accounting.completed, 1);
}

/// A client that disconnects while its job is still being solved: the
/// job must still complete internally (the books count it answered),
/// and the dead connection must not wedge the drain.
#[test]
fn mid_job_disconnect_is_answered_into_the_void() {
    let report = with_watchdog(|| {
        // One worker, and a blocker occupying it, guarantees the
        // doomed job is still queued when its client vanishes.
        let server = Server::bind("127.0.0.1:0", chaos_config().with_workers(1)).unwrap();
        let addr = server.local_addr();

        let mut blocker = TcpStream::connect(addr).unwrap();
        writeln!(blocker, "{}", request_line(1, 6, 99)).unwrap();

        let mut doomed = TcpStream::connect(addr).unwrap();
        writeln!(doomed, "{}", request_line(2, 4, 13)).unwrap();
        // Give the shard a moment to decode the line before the
        // disconnect (the bytes are already in the socket either way).
        std::thread::sleep(Duration::from_millis(50));
        drop(doomed);

        let resp = read_response(&blocker);
        assert!(resp.ok);
        drop(blocker);

        server.shutdown()
    });
    assert_books_balance(&report);
    assert_eq!(report.accounting.accepted, 2);
    assert_eq!(
        report.accounting.completed, 2,
        "the disconnected client's job must still be answered"
    );
    assert_eq!(report.engine.submitted, 2);
}

/// A frame longer than `max_line_bytes` with no newline gets one typed
/// failure naming the limit, then the connection is closed; the line is
/// counted malformed, not accepted.
#[test]
fn oversized_line_is_rejected_and_connection_closed() {
    const MAX_LINE: usize = 4096;
    let report = with_watchdog(|| {
        let config = chaos_config().with_workers(1).with_max_line_bytes(MAX_LINE);
        let server = Server::bind("127.0.0.1:0", config).unwrap();
        let mut stream = TcpStream::connect(server.local_addr()).unwrap();
        stream.write_all(&vec![b'x'; MAX_LINE + 1024]).unwrap();
        stream.flush().unwrap();

        let resp = read_response(&stream);
        assert!(!resp.ok);
        assert!(
            resp.error.contains(&format!("{MAX_LINE} bytes")),
            "error must name the frame limit: {}",
            resp.error
        );
        // The server hangs up after the rejection instead of buffering
        // an unbounded garbage stream.
        let mut rest = Vec::new();
        let n = (&stream).read_to_end(&mut rest).unwrap();
        assert_eq!(n, 0);

        server.shutdown()
    });
    assert_books_balance(&report);
    assert_eq!(report.accounting.accepted, 0);
    assert_eq!(report.accounting.malformed, 1);
}

/// The seeded flaky-client driver: a reproducible mix of well-behaved,
/// malformed, truncated, fire-and-forget, and half-closing clients.
/// However the dice land, the books must balance and shutdown must
/// drain cleanly under the watchdog.
#[test]
fn seeded_flaky_client_swarm_keeps_the_books_balanced() {
    let (report, expect_accepted, expect_malformed, conns) = with_watchdog(|| {
        let server = Server::bind("127.0.0.1:0", chaos_config().with_workers(2)).unwrap();
        let addr = server.local_addr();
        let mut rng = StdRng::seed_from_u64(0xC4A05);

        let conns = 24u64;
        let mut expect_accepted = 0u64;
        let mut expect_malformed = 0u64;
        for i in 0..conns {
            let mut stream = TcpStream::connect(addr).unwrap();
            match rng.gen_range(0..5) {
                0 => {
                    // Well-behaved request/response.
                    writeln!(stream, "{}", request_line(i, 3, i)).unwrap();
                    expect_accepted += 1;
                    let resp = read_response(&stream);
                    assert_eq!(resp.id, i);
                }
                1 => {
                    // Malformed line: answered in place, not accepted.
                    writeln!(stream, "job this is not").unwrap();
                    expect_malformed += 1;
                    let resp = read_response(&stream);
                    assert!(!resp.ok);
                    assert!(resp.error.contains("bad request"));
                }
                2 => {
                    // Truncated line, then vanish: never a request.
                    let line = request_line(i, 3, i);
                    let cut = rng.gen_range(1..line.len());
                    stream.write_all(&line.as_bytes()[..cut]).unwrap();
                }
                3 => {
                    // Fire and forget: full request, never reads, gone.
                    // The bytes are on the wire, so it is accepted and
                    // must be answered into the void.
                    writeln!(stream, "{}", request_line(i, 3, i)).unwrap();
                    expect_accepted += 1;
                }
                _ => {
                    // Half-close, then collect the answer.
                    writeln!(stream, "{}", request_line(i, 3, i)).unwrap();
                    stream.shutdown(Shutdown::Write).unwrap();
                    expect_accepted += 1;
                    let resp = read_response(&stream);
                    assert_eq!(resp.id, i);
                }
            }
        }

        // The acceptor->shard handoff is asynchronous and a draining
        // shard refuses adoption, so shutting down right after the last
        // client action can race the final connections out of the books.
        // With one shard the inbox is FIFO: a full roundtrip on a
        // connection opened *after* the swarm guarantees every earlier
        // connection was adopted and every earlier line decoded first.
        let mut sentinel = TcpStream::connect(addr).unwrap();
        writeln!(sentinel, "{}", request_line(9000, 3, 7)).unwrap();
        expect_accepted += 1;
        let resp = read_response(&sentinel);
        assert_eq!(resp.id, 9000);
        drop(sentinel);

        (
            server.shutdown(),
            expect_accepted,
            expect_malformed,
            conns + 1,
        )
    });
    assert_books_balance(&report);
    assert_eq!(report.accounting.conns, conns);
    assert_eq!(report.accounting.accepted, expect_accepted);
    assert_eq!(report.accounting.malformed, expect_malformed);
    assert_eq!(
        report.accounting.completed + report.accounting.shed,
        expect_accepted,
        "every accepted job answered, present client or not"
    );
}
