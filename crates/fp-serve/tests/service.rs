//! Service-level concurrency tests: response accounting under many
//! producers, deadline degradation, cache semantics, clean shutdown, and
//! the TCP front end. Every potentially-blocking scenario runs under a
//! watchdog (the `parallel_limits` idiom) so a stuck queue or a lost
//! response fails the test instead of hanging the suite.

use fp_netlist::generator::ProblemGenerator;
use fp_obs::{Collector, Event, EventKind, Tracer};
use fp_serve::{Engine, JobRequest, JobResponse, ServeConfig, Server};
use std::collections::HashSet;
use std::io::{BufRead, BufReader, Write};
use std::net::TcpStream;
use std::sync::mpsc;
use std::time::Duration;

const WATCHDOG: Duration = Duration::from_secs(60);

/// Runs `f` on its own thread, panicking if it outlives the watchdog.
fn with_watchdog<T: Send + 'static>(f: impl FnOnce() -> T + Send + 'static) -> T {
    let (tx, rx) = mpsc::channel();
    std::thread::spawn(move || {
        let _ = tx.send(f());
    });
    rx.recv_timeout(WATCHDOG)
        .expect("service did not settle before the watchdog")
}

fn tiny_config() -> ServeConfig {
    // Small node budget keeps each job fast; the instances below are tiny.
    ServeConfig::default().with_node_limit(500)
}

#[test]
fn many_producers_zero_lost_or_duplicated_responses() {
    let (all, expected) = with_watchdog(|| {
        let engine = Engine::start(tiny_config().with_workers(3).with_cache_capacity(0));
        let producers = 4usize;
        let jobs_each = 8usize;
        let handles: Vec<_> = (0..producers)
            .map(|p| {
                let client = engine.client();
                std::thread::spawn(move || {
                    // Interleave a couple of distinct instances per producer
                    // so different jobs take different amounts of work.
                    let receivers: Vec<_> = (0..jobs_each)
                        .map(|j| {
                            let id = (p * jobs_each + j) as u64;
                            let nl = ProblemGenerator::new(3 + (j % 3), 7 + p as u64).generate();
                            client.submit(JobRequest::new(id, &nl))
                        })
                        .collect();
                    receivers
                        .into_iter()
                        .map(|rx| rx.recv().expect("response lost"))
                        .collect::<Vec<JobResponse>>()
                })
            })
            .collect();
        let all: Vec<JobResponse> = handles
            .into_iter()
            .flat_map(|h| h.join().expect("producer panicked"))
            .collect();
        engine.shutdown();
        (all, producers * jobs_each)
    });

    assert_eq!(all.len(), expected, "every job answered exactly once");
    let ids: HashSet<u64> = all.iter().map(|r| r.id).collect();
    assert_eq!(ids.len(), expected, "no duplicated or misrouted ids");
    for resp in &all {
        assert!(resp.ok, "job {} failed: {}", resp.id, resp.error);
        assert!(!resp.placement.is_empty());
    }
}

#[test]
fn expired_deadline_returns_degraded_greedy_placement() {
    let resp = with_watchdog(|| {
        let engine = Engine::start(tiny_config().with_workers(1).with_cache_capacity(0));
        let nl = ProblemGenerator::new(8, 3).generate();
        // A 1 ms budget is gone before the first MILP can finish, so the
        // ladder must fall through to the greedy skyline placement.
        let resp = engine
            .client()
            .call(JobRequest::new(1, &nl).with_deadline_ms(1));
        engine.shutdown();
        resp
    });
    assert!(resp.ok, "degradation must not be an error: {}", resp.error);
    assert!(resp.degraded, "a blown deadline must be flagged");
    let rects = resp.placement_entries().expect("placement parses");
    assert_eq!(rects.len(), 8, "every module is placed");
    // The greedy placement is still a real placement: on-chip and disjoint.
    for r in &rects {
        assert!(r.x >= -1e-9 && r.y >= -1e-9);
        assert!(r.x + r.w <= resp.chip_width + 1e-9);
    }
    for (i, a) in rects.iter().enumerate() {
        for b in rects.iter().skip(i + 1) {
            let overlap_w = (a.x + a.w).min(b.x + b.w) - a.x.max(b.x);
            let overlap_h = (a.y + a.h).min(b.y + b.h) - a.y.max(b.y);
            assert!(
                overlap_w <= 1e-6 || overlap_h <= 1e-6,
                "{} and {} overlap",
                a.name,
                b.name
            );
        }
    }
}

#[test]
fn huge_deadline_does_not_kill_workers() {
    let responses = with_watchdog(|| {
        let server = Server::bind(
            "127.0.0.1:0",
            tiny_config().with_workers(1).with_cache_capacity(0),
        )
        .expect("bind ephemeral");
        let addr = server.local_addr();
        let mut stream = TcpStream::connect(addr).expect("connect");
        let mut reader = BufReader::new(stream.try_clone().unwrap());
        let nl = ProblemGenerator::new(3, 5).generate();

        // `1e30` ms parses as a number and saturates to u64::MAX; it used
        // to overflow `Instant + Duration` and panic the (sole) worker,
        // after which every later job queued forever. Now it must be
        // served as an ordinary no-deadline job, and the worker must
        // still be alive for the follow-up.
        let evil = JobRequest::new(1, &nl)
            .encode()
            .replace("\"deadline_ms\":0", "\"deadline_ms\":1e30");
        assert!(evil.contains("1e30"), "evil line built as intended");
        writeln!(stream, "{evil}").unwrap();
        writeln!(stream, "{}", JobRequest::new(2, &nl).encode()).unwrap();
        let responses: Vec<JobResponse> = (0..2)
            .map(|_| {
                let mut line = String::new();
                reader.read_line(&mut line).expect("read line");
                JobResponse::decode(line.trim_end()).expect("decode response")
            })
            .collect();
        server.shutdown();
        responses
    });
    assert_eq!(responses.len(), 2);
    for resp in &responses {
        assert!(resp.ok, "job {}: {}", resp.id, resp.error);
        assert!(!resp.placement.is_empty());
    }
}

#[test]
fn cache_answers_second_identical_job() {
    let collector = Collector::new();
    let tracer = Tracer::new(collector.clone());
    let (first, second, stats, counts, solver, strengthen) = with_watchdog(move || {
        let engine = Engine::start(tiny_config().with_workers(2).with_tracer(tracer.clone()));
        let client = engine.client();
        let nl = ProblemGenerator::new(5, 21).generate();
        let first = client.call(JobRequest::new(1, &nl));
        let after_first = engine.strengthening_stats();
        let second = client.call(JobRequest::new(2, &nl));
        let stats = engine.cache_stats();
        let counts = (
            tracer.count(EventKind::CacheMiss),
            tracer.count(EventKind::CacheHit),
        );
        let solver = engine.solver_stats();
        let strengthen = (after_first, engine.strengthening_stats());
        engine.shutdown();
        (first, second, stats, counts, solver, strengthen)
    });

    assert!(first.ok && second.ok);
    assert!(!first.cached, "first sight of an instance cannot hit");
    assert!(second.cached, "identical repeat must be served from cache");
    assert_eq!(second.id, 2, "cached answers carry the new job id");
    assert_eq!(first.placement, second.placement);
    assert_eq!(first.area, second.area);
    assert_eq!(stats, (1, 1));
    assert_eq!(counts, (1, 1), "trace events mirror the counters");
    // Exactly one job actually solved (the second came from the cache),
    // and every solve roots at a cold node.
    let (warm, cold) = solver;
    assert!(
        cold >= 1,
        "the uncached job must have run at least one cold (root) node, got ({warm}, {cold})"
    );
    // Strengthening counters accumulate only on real solves: the cached
    // second job must not move them.
    let (after_first, after_second) = strengthen;
    assert_eq!(
        after_first, after_second,
        "a cache hit must not touch the strengthening counters"
    );
    // The collected records contain the serve events with matching kinds.
    let records = collector.records();
    let hits = records
        .iter()
        .filter(|r| matches!(r.event, Event::CacheHit { .. }))
        .count();
    assert_eq!(hits, 1);
}

#[test]
fn shutdown_drains_all_inflight_jobs() {
    let responses = with_watchdog(|| {
        let engine = Engine::start(tiny_config().with_workers(2).with_cache_capacity(0));
        let client = engine.client();
        let receivers: Vec<_> = (0..10)
            .map(|i| {
                let nl = ProblemGenerator::new(3 + (i % 2) as usize, 40 + i).generate();
                client.submit(JobRequest::new(i, &nl))
            })
            .collect();
        // Shut down immediately: the queue closes but everything already
        // accepted must still be answered before the workers exit.
        engine.shutdown();
        receivers
            .into_iter()
            .map(|rx| rx.recv().expect("in-flight job dropped on shutdown"))
            .collect::<Vec<_>>()
    });
    assert_eq!(responses.len(), 10);
    for resp in &responses {
        assert!(resp.ok, "job {}: {}", resp.id, resp.error);
    }
}

#[test]
fn submit_after_shutdown_fails_cleanly() {
    let resp = with_watchdog(|| {
        let engine = Engine::start(tiny_config().with_workers(1));
        let client = engine.client();
        engine.shutdown();
        let nl = ProblemGenerator::new(3, 1).generate();
        client.call(JobRequest::new(77, &nl))
    });
    assert!(!resp.ok);
    assert_eq!(resp.id, 77);
    assert!(resp.error.contains("shut down"));
}

#[test]
fn tcp_round_trip_and_malformed_line() {
    let (responses, stats) = with_watchdog(|| {
        let server =
            Server::bind("127.0.0.1:0", tiny_config().with_workers(2)).expect("bind ephemeral");
        let addr = server.local_addr();
        let mut stream = TcpStream::connect(addr).expect("connect");
        let nl = ProblemGenerator::new(4, 9).generate();

        // Two good jobs (the second identical → cache hit) plus two bad
        // lines — one schema-bad (valid JSON, missing the netlist, so its
        // id is recoverable) and one syntax-bad (not JSON at all). The
        // connection must survive all four. The first response is awaited
        // before the repeat is sent so the repeat cannot race the cache
        // fill on another worker.
        let mut reader = BufReader::new(stream.try_clone().unwrap());
        let read_one = |reader: &mut BufReader<TcpStream>| {
            let mut line = String::new();
            reader.read_line(&mut line).expect("read line");
            JobResponse::decode(line.trim_end()).expect("decode response")
        };
        writeln!(stream, "{}", JobRequest::new(1, &nl).encode()).unwrap();
        let mut responses = vec![read_one(&mut reader)];
        writeln!(stream, "{{\"id\":2}}").unwrap();
        writeln!(stream, "this is not json").unwrap();
        writeln!(stream, "{}", JobRequest::new(3, &nl).encode()).unwrap();
        for _ in 0..3 {
            responses.push(read_one(&mut reader));
        }
        let stats = server.cache_stats();
        server.shutdown();
        (responses, stats)
    });

    assert_eq!(responses.len(), 4);
    let bad: Vec<_> = responses.iter().filter(|r| !r.ok).collect();
    assert_eq!(bad.len(), 2, "both malformed lines answered with ok:false");
    assert!(bad.iter().any(|r| r.id == 2), "recoverable id echoed");
    assert!(bad.iter().any(|r| r.id == 0), "unrecoverable id reports 0");
    assert!(bad.iter().all(|r| r.error.contains("bad request")));
    let good: Vec<_> = responses.iter().filter(|r| r.ok).collect();
    assert_eq!(good.len(), 2);
    assert!(good.iter().any(|r| r.cached), "repeat served from cache");
    assert_eq!(stats, (1, 1));
}
