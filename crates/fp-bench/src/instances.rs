//! Shared MILP instance generators.
//!
//! The Criterion benches (`benches/milp.rs`) and the `milp_snapshot`
//! binary measure the same models, so the generators live here instead of
//! being duplicated per harness. All generators are deterministic in
//! their `seed` argument.

use fp_milp::{LinExpr, Model, Sense};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// A dense feasible LP with `n` variables and `n` rows.
#[must_use]
pub fn random_lp(n: usize, seed: u64) -> Model {
    let mut rng = StdRng::seed_from_u64(seed);
    let mut m = Model::new(Sense::Minimize);
    let vars: Vec<_> = (0..n)
        .map(|i| m.add_continuous(format!("x{i}"), 0.0, 50.0))
        .collect();
    for _ in 0..n {
        let mut e = LinExpr::new();
        let mut rhs = 5.0;
        for &v in &vars {
            let c: f64 = rng.gen_range(-2.0..3.0);
            e.add_term(v, c);
            rhs += c.max(0.0); // keep x = 1 feasible
        }
        m.add_le(e, rhs);
    }
    let mut obj = LinExpr::new();
    for &v in &vars {
        obj.add_term(v, rng.gen_range(-1.0..2.0));
    }
    m.set_objective(obj);
    m
}

/// A 0-1 knapsack with `n` items and random weights/values.
#[must_use]
pub fn knapsack(n: usize, seed: u64) -> Model {
    let mut rng = StdRng::seed_from_u64(seed);
    let mut m = Model::new(Sense::Maximize);
    let mut weight = LinExpr::new();
    let mut value = LinExpr::new();
    for i in 0..n {
        let b = m.add_binary(format!("b{i}"));
        weight.add_term(b, rng.gen_range(1.0..20.0));
        value.add_term(b, rng.gen_range(1.0..30.0));
    }
    m.add_le(weight, 5.0 * n as f64);
    m.set_objective(value);
    m
}

/// A two-module non-overlap disjunction chain of augmentation-step flavor.
#[must_use]
pub fn placement_milp(modules: usize) -> Model {
    let w_chip = 40.0;
    let h_bar = 40.0;
    let mut m = Model::new(Sense::Minimize);
    let ychip = m.add_continuous("y", 0.0, h_bar);
    let dims: Vec<(f64, f64)> = (0..modules)
        .map(|i| (4.0 + (i % 3) as f64 * 2.0, 3.0 + (i % 2) as f64 * 3.0))
        .collect();
    let pos: Vec<_> = (0..modules)
        .map(|i| {
            (
                m.add_continuous(format!("x{i}"), 0.0, w_chip),
                m.add_continuous(format!("yy{i}"), 0.0, h_bar),
            )
        })
        .collect();
    for i in 0..modules {
        m.add_le(pos[i].0 + dims[i].0, w_chip);
        m.add_le(pos[i].1 + dims[i].1 - ychip, 0.0);
        for j in i + 1..modules {
            let p = m.add_binary(format!("p{i}_{j}"));
            let q = m.add_binary(format!("q{i}_{j}"));
            m.add_le(
                pos[i].0 + dims[i].0 - pos[j].0 - w_chip * p - w_chip * q,
                0.0,
            );
            m.add_le(
                pos[j].0 + dims[j].0 - pos[i].0 - w_chip * p + w_chip * q,
                w_chip,
            );
            m.add_le(
                pos[i].1 + dims[i].1 - pos[j].1 + h_bar * p - h_bar * q,
                h_bar,
            );
            m.add_le(
                pos[j].1 + dims[j].1 - pos[i].1 + h_bar * p + h_bar * q,
                2.0 * h_bar,
            );
        }
    }
    m.set_objective(ychip + 0.0);
    m
}

/// The seeded instance set measured by `milp_snapshot` and the
/// `warm_start` bench group: a spread of branch-and-bound shapes (pure
/// knapsacks of growing size and non-overlap disjunction MILPs) that all
/// explore enough nodes for warm starts to matter.
#[must_use]
pub fn seeded_set() -> Vec<(String, Model)> {
    let mut set = Vec::new();
    for (i, &n) in [14usize, 18, 22].iter().enumerate() {
        set.push((format!("knapsack{n}"), knapsack(n, 3 + i as u64)));
    }
    for &k in &[4usize, 5] {
        set.push((format!("placement{k}"), placement_milp(k)));
    }
    set
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn generators_are_deterministic() {
        let a = knapsack(10, 7).solve().expect("feasible");
        let b = knapsack(10, 7).solve().expect("feasible");
        assert_eq!(a.objective(), b.objective());
        assert_eq!(a.values(), b.values());
    }

    #[test]
    fn seeded_set_solves_with_nodes() {
        // Every snapshot instance must actually branch, or the warm-start
        // measurement would be measuring root-only solves.
        let opts = fp_milp::SolveOptions::default().with_node_limit(50_000);
        for (name, model) in seeded_set() {
            let sol = model.solve_with(&opts).expect("feasible by construction");
            assert!(sol.stats().nodes > 1, "{name} never branched");
        }
    }
}
