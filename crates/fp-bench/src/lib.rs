//! Shared harness for the experiment binaries (`table1`, `table2`,
//! `table3`, `figures`) and the Criterion benches.
//!
//! Each binary regenerates one table or figure of the paper's §4
//! evaluation; `EXPERIMENTS.md` at the workspace root records paper-vs-
//! measured values. The helpers here keep the binaries small and the
//! configurations consistent across experiments.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod instances;

use fp_core::{improve, Floorplan, FloorplanConfig, FloorplanError, Floorplanner, RunStats};
use fp_netlist::Netlist;
use std::time::{Duration, Instant};

/// The solver budget used by all experiments: generous enough that nearly
/// every augmentation step solves to proven optimality at ami33 scale.
#[must_use]
pub fn experiment_step_options() -> fp_milp::SolveOptions {
    if quick_mode() {
        return fp_milp::SolveOptions::default()
            .with_node_limit(3_000)
            .with_time_limit(Duration::from_secs(2));
    }
    fp_milp::SolveOptions::default()
        .with_node_limit(20_000)
        .with_time_limit(Duration::from_secs(8))
}

/// Whether the `FP_BENCH_QUICK` environment variable asks for reduced
/// solver budgets (useful on small machines / CI; results keep their shape
/// at somewhat lower utilization).
#[must_use]
pub fn quick_mode() -> bool {
    std::env::var_os("FP_BENCH_QUICK").is_some_and(|v| v != "0")
}

/// The base experiment configuration (area objective, connectivity
/// ordering, tight 95% width target); experiments override what they vary.
#[must_use]
pub fn experiment_config() -> FloorplanConfig {
    let mut config = FloorplanConfig::default()
        .with_step_options(experiment_step_options())
        .with_pitches(EXPERIMENT_PITCH, EXPERIMENT_PITCH);
    config.target_utilization = 0.95;
    config
}

/// Routing-track pitch used across the experiments (both for §3.2 envelope
/// sizing and for the router's capacities): fine enough that a
/// pin-proportional margin carries one track per pin.
pub const EXPERIMENT_PITCH: f64 = 0.05;

/// The relaxed budget used by the post-pass improvement MILPs: the top
/// re-optimization works on `2·(covering rects)`-sized disjunctions, so it
/// needs a larger binary allowance than the per-step formulation.
#[must_use]
pub fn improve_config(base: &FloorplanConfig) -> FloorplanConfig {
    let mut config = base.clone();
    config.max_binaries = 150;
    // Sub-second step budgets mean a debug/test run: inherit them. Real
    // experiment budgets get the full 15 s the improvement MILPs need.
    let time_limit = if quick_mode() {
        Duration::from_secs(3)
    } else if base.step_options.time_limit < Duration::from_secs(2) {
        base.step_options.time_limit
    } else {
        Duration::from_secs(15)
    };
    config.step_options = fp_milp::SolveOptions::default()
        .with_node_limit(60_000)
        .with_time_limit(time_limit);
    // Improvement accepts on height/packing, so a wirelength term in the
    // improvement MILPs only slows branch-and-bound down.
    config.objective = fp_core::Objective::Area;
    config
}

/// Outcome of the floorplanning pipeline: augmentation plus the paper's
/// "adjust floorplan" step (Fig. 3 line 13), realized as the §2.5 topology
/// LP.
#[derive(Debug, Clone)]
pub struct PipelineOutcome {
    /// The final (adjusted) floorplan.
    pub floorplan: Floorplan,
    /// Per-step statistics from augmentation.
    pub stats: RunStats,
    /// End-to-end wall time including the adjustment LP.
    pub elapsed: Duration,
}

/// Runs floorplanning + topology adjustment and validates the result.
///
/// # Errors
///
/// Propagates [`FloorplanError`] from the floorplanner.
///
/// # Panics
///
/// Panics if the produced floorplan violates its invariants — experiments
/// must never report numbers from an invalid placement.
pub fn run_pipeline(
    netlist: &Netlist,
    config: &FloorplanConfig,
) -> Result<PipelineOutcome, FloorplanError> {
    let started = Instant::now();
    let result = Floorplanner::with_config(netlist, config.clone()).run()?;
    // Fig. 3 line 13, "adjust floorplan": top re-optimization + topology LP.
    let rounds = if quick_mode() { 3 } else { 6 };
    let floorplan = improve(&result.floorplan, netlist, &improve_config(config), rounds)?;
    let elapsed = started.elapsed();
    assert!(
        floorplan.is_valid(),
        "invalid floorplan: {:?}",
        floorplan.violations()
    );
    Ok(PipelineOutcome {
        floorplan,
        stats: result.stats,
        elapsed,
    })
}

/// A plain-text table printer that mirrors the paper's table layout.
#[derive(Debug, Clone)]
pub struct Table {
    title: String,
    headers: Vec<String>,
    rows: Vec<Vec<String>>,
}

impl Table {
    /// Creates a table with the given title and column headers.
    #[must_use]
    pub fn new(title: impl Into<String>, headers: &[&str]) -> Self {
        Table {
            title: title.into(),
            headers: headers.iter().map(|s| s.to_string()).collect(),
            rows: Vec::new(),
        }
    }

    /// Appends a row (stringified cells).
    pub fn add_row(&mut self, cells: Vec<String>) {
        assert_eq!(cells.len(), self.headers.len(), "column count mismatch");
        self.rows.push(cells);
    }

    /// Renders the table.
    #[must_use]
    pub fn render(&self) -> String {
        let mut widths: Vec<usize> = self.headers.iter().map(String::len).collect();
        for row in &self.rows {
            for (w, cell) in widths.iter_mut().zip(row) {
                *w = (*w).max(cell.len());
            }
        }
        let mut out = String::new();
        out.push_str(&format!("== {} ==\n", self.title));
        let fmt_row = |cells: &[String], widths: &[usize]| -> String {
            let mut line = String::from("|");
            for (cell, w) in cells.iter().zip(widths) {
                line.push_str(&format!(" {cell:>w$} |"));
            }
            line.push('\n');
            line
        };
        out.push_str(&fmt_row(&self.headers, &widths));
        out.push('|');
        for w in &widths {
            out.push_str(&"-".repeat(w + 2));
            out.push('|');
        }
        out.push('\n');
        for row in &self.rows {
            out.push_str(&fmt_row(row, &widths));
        }
        out
    }

    /// Prints the rendered table to stdout.
    pub fn print(&self) {
        print!("{}", self.render());
    }
}

/// Formats a duration in seconds with 2 decimals (the paper reports
/// minutes on a 4-MIPS Apollo; we report host seconds).
#[must_use]
pub fn secs(d: Duration) -> String {
    format!("{:.2}", d.as_secs_f64())
}

#[cfg(test)]
mod tests {
    use super::*;
    use fp_netlist::generator::ProblemGenerator;

    #[test]
    fn table_renders_aligned() {
        let mut t = Table::new("Demo", &["K", "Area"]);
        t.add_row(vec!["15".into(), "4000".into()]);
        t.add_row(vec!["33".into(), "13923".into()]);
        let s = t.render();
        assert!(s.contains("== Demo =="));
        assert!(s.contains("| 15 |"));
        let lines: Vec<&str> = s.lines().collect();
        assert_eq!(lines.len(), 5);
        assert_eq!(lines[1].len(), lines[3].len());
    }

    #[test]
    #[should_panic(expected = "column count mismatch")]
    fn table_rejects_ragged_rows() {
        let mut t = Table::new("x", &["a", "b"]);
        t.add_row(vec!["1".into()]);
    }

    #[test]
    fn pipeline_runs_and_validates() {
        let nl = ProblemGenerator::new(6, 5).generate();
        let cfg = FloorplanConfig::default().with_step_options(
            fp_milp::SolveOptions::default()
                .with_node_limit(300)
                .with_time_limit(Duration::from_millis(400)),
        );
        let out = run_pipeline(&nl, &cfg).unwrap();
        assert_eq!(out.floorplan.len(), 6);
        assert!(out.elapsed > Duration::ZERO);
    }

    #[test]
    fn secs_formats() {
        assert_eq!(secs(Duration::from_millis(1500)), "1.50");
    }
}
