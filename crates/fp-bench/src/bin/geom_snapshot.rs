//! Writes `BENCH_GEOM.json`: spatial-indexing impact on the placement hot
//! paths, across the scale deck set.
//!
//! Usage: `geom_snapshot [OUT_PATH] [--max-n N]` (default
//! `BENCH_GEOM.json`, all sizes). `--max-n` truncates the instance set —
//! check.sh smokes the binary at `--max-n 100`.
//!
//! Instances: `ami33` (n = 33), an ami49-class deck (n = 49) and
//! GSRC-style decks at n ∈ {100, 200, 300}. Per instance, three legs:
//!
//! * `gradient` — the overlap term's cost+gradient (the term the bin grid
//!   accelerates) through the pruned `O(n·k)` path vs the all-pairs
//!   `O(n²)` oracle, measured at the descent states the optimizer
//!   actually visits (initial scatter and two later continuation stages,
//!   via `fp_analytic::bench_support::GradHarness`). `speedup` is the
//!   ratio of per-eval times summed over the stages; the headline
//!   `median_gradient_speedup` is its median over instances. Each
//!   instance also records `full_eval` — the same comparison for the
//!   *whole* cost function, whose wirelength/height/wall terms are
//!   identical on both kernels and dilute the ratio (Amdahl).
//! * `overlap` — steady-state legality probes on the floorplan the
//!   analytic placer produced: per-module `RTree::any_overlap` against
//!   a maintained index (the structure the augment/improve drivers and
//!   the annealer's audit keep across queries) vs the brute all-pairs
//!   rectangle scan. Headline: `median_overlap_speedup`.
//! * `analytic` — end-to-end `fp_analytic::place` wall-clock (median of
//!   [`REPS`] runs) plus the realized chip area, pinning what the scale
//!   work is ultimately for.

use fp_analytic::bench_support::GradHarness;
use fp_analytic::{place, AnalyticConfig};
use fp_geom::RTree;
use fp_netlist::decks::{ami49_class, gsrc_style};
use fp_netlist::{ami33, Netlist};
use std::fmt::Write as _;
use std::time::Instant;

const REPS: usize = 3;
const SEED: u64 = 1;

/// Median-of-[`REPS`] seconds per call of `f`, with the inner iteration
/// count auto-scaled so each repetition runs at least ~20 ms.
fn time_per_call<R>(mut f: impl FnMut() -> R) -> f64 {
    let probe = Instant::now();
    std::hint::black_box(f());
    let once = probe.elapsed().as_secs_f64();
    let iters = (0.02 / once.max(1e-9)).ceil().clamp(1.0, 10_000.0) as usize;
    let mut times: Vec<f64> = (0..REPS)
        .map(|_| {
            let started = Instant::now();
            for _ in 0..iters {
                std::hint::black_box(f());
            }
            started.elapsed().as_secs_f64() / iters as f64
        })
        .collect();
    times.sort_by(f64::total_cmp);
    times[REPS / 2]
}

fn median(values: &mut [f64]) -> f64 {
    values.sort_by(f64::total_cmp);
    if values.is_empty() {
        return 0.0;
    }
    values[values.len() / 2]
}

fn instances(max_n: usize) -> Vec<(String, Netlist)> {
    let mut out: Vec<(String, Netlist)> = Vec::new();
    out.push(("ami33".to_string(), ami33()));
    out.push(("ami49c".to_string(), ami49_class(SEED)));
    for n in [100usize, 200, 300] {
        out.push((format!("gsrc{n}"), gsrc_style(n, SEED)));
    }
    out.retain(|(_, nl)| nl.num_modules() <= max_n);
    out
}

fn main() {
    let mut out_path = "BENCH_GEOM.json".to_string();
    let mut max_n = usize::MAX;
    let mut args = std::env::args().skip(1);
    while let Some(arg) = args.next() {
        if arg == "--max-n" {
            let v = args.next().expect("--max-n needs a value");
            max_n = v.parse().expect("--max-n value must be an integer");
        } else {
            out_path = arg;
        }
    }

    let mut rows = String::new();
    let mut gradient_speedups = Vec::new();
    let mut overlap_speedups = Vec::new();
    for (i, (name, nl)) in instances(max_n).into_iter().enumerate() {
        let n = nl.num_modules();

        // Gradient leg: per-eval time summed over three continuation
        // stages (initial scatter, then two μ-doubled stages the real
        // descent reaches), so the ratio reflects the states the
        // optimizer spends its iterations in.
        let mut harness = GradHarness::new(&nl, SEED);
        let mut pruned_s = 0.0;
        let mut all_pairs_s = 0.0;
        let mut full_pruned_s = 0.0;
        let mut full_all_pairs_s = 0.0;
        for stage in 0..3 {
            if stage > 0 {
                harness.advance(30);
            }
            pruned_s += time_per_call(|| harness.eval_overlap_pruned());
            all_pairs_s += time_per_call(|| harness.eval_overlap_all_pairs());
            full_pruned_s += time_per_call(|| harness.eval_pruned());
            full_all_pairs_s += time_per_call(|| harness.eval_all_pairs());
        }
        let gradient_speedup = all_pairs_s / pruned_s.max(1e-12);
        let full_eval_speedup = full_all_pairs_s / full_pruned_s.max(1e-12);
        gradient_speedups.push(gradient_speedup);

        // End-to-end analytic placement (also produces the floorplan the
        // overlap leg probes).
        let cfg = AnalyticConfig::default().with_seed(SEED);
        let mut analytic_times: Vec<f64> = (0..REPS)
            .map(|_| {
                let started = Instant::now();
                std::hint::black_box(place(&nl, &cfg).expect("placeable"));
                started.elapsed().as_secs_f64()
            })
            .collect();
        analytic_times.sort_by(f64::total_cmp);
        let analytic_s = analytic_times[REPS / 2];
        let result = place(&nl, &cfg).expect("placeable");
        let fp = result.floorplan;
        assert!(fp.is_valid(), "{name}: analytic placement is invalid");

        // Overlap leg: steady-state legality probes — every module asked
        // "do you overlap anything else?" against a maintained R-tree vs
        // the brute all-pairs rectangle scan. The floorplan is legal, so
        // neither side gets an early exit; this is the workload the
        // drivers' validity audits actually issue.
        let rects = fp.envelope_rects();
        let tree = RTree::from_entries(rects.iter().enumerate().map(|(k, &r)| (k as u64, r)));
        let indexed_s = time_per_call(|| {
            let mut hits = 0usize;
            for (k, r) in rects.iter().enumerate() {
                if tree.any_overlap(r, k as u64) {
                    hits += 1;
                }
            }
            hits
        }) / n as f64;
        let brute_s = time_per_call(|| {
            let mut hits = 0usize;
            for (k, r) in rects.iter().enumerate() {
                if rects
                    .iter()
                    .enumerate()
                    .any(|(j, o)| j != k && o.overlaps(r))
                {
                    hits += 1;
                }
            }
            hits
        }) / n as f64;
        let overlap_speedup = brute_s / indexed_s.max(1e-12);
        overlap_speedups.push(overlap_speedup);

        if i > 0 {
            rows.push_str(",\n");
        }
        let _ = write!(
            rows,
            "    {{\"name\": \"{name}\", \"n\": {n}, \
             \"gradient\": {{\"pruned_s_per_eval\": {:.9}, \
             \"all_pairs_s_per_eval\": {:.9}, \"speedup\": {:.3}}}, \
             \"full_eval\": {{\"pruned_s_per_eval\": {:.9}, \
             \"all_pairs_s_per_eval\": {:.9}, \"speedup\": {:.3}}}, \
             \"overlap\": {{\"indexed_s_per_probe\": {:.9}, \
             \"brute_s_per_probe\": {:.9}, \"speedup\": {:.3}}}, \
             \"analytic\": {{\"elapsed_s\": {:.6}, \"chip_area\": {:.1}}}}}",
            pruned_s,
            all_pairs_s,
            gradient_speedup,
            full_pruned_s,
            full_all_pairs_s,
            full_eval_speedup,
            indexed_s,
            brute_s,
            overlap_speedup,
            analytic_s,
            fp.chip_area()
        );
        eprintln!(
            "{name} (n={n}): overlap-grad pruned {:.1} us vs all-pairs {:.1} us \
             ({gradient_speedup:.2}x; full eval {full_eval_speedup:.2}x), \
             probes indexed {:.0} ns vs brute {:.0} ns ({overlap_speedup:.2}x), \
             analytic {analytic_s:.3}s",
            pruned_s * 1e6,
            all_pairs_s * 1e6,
            indexed_s * 1e9,
            brute_s * 1e9,
        );
    }
    let median_gradient = median(&mut gradient_speedups);
    let median_overlap = median(&mut overlap_speedups);
    let json = format!(
        "{{\n  \"bench\": \"geom_scale\",\n  \"reps\": {REPS},\n  \
         \"median_gradient_speedup\": {median_gradient:.3},\n  \
         \"median_overlap_speedup\": {median_overlap:.3},\n  \
         \"instances\": [\n{rows}\n  ]\n}}\n"
    );
    std::fs::write(&out_path, &json).expect("write snapshot");
    eprintln!(
        "median gradient speedup: {median_gradient:.2}x, median overlap \
         speedup: {median_overlap:.2}x -> {out_path}"
    );
}
