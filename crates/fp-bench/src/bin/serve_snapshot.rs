//! Writes `BENCH_SERVE.json`: the event-driven front end (sharded poll
//! loops + single-flight coalescing) against the original
//! thread-per-connection front end, on the same workload, plus an
//! overload leg pinning the admission-control accounting.
//!
//! Usage: `serve_snapshot [OUT_PATH] [CONNS]` (default `BENCH_SERVE.json`,
//! 1000 connections). Three legs:
//!
//! * `event` / `threaded` — CONNS concurrent connections, one job each,
//!   50% of them one shared duplicate instance (evenly interleaved), the
//!   cache off so dedup is pure coalescing. Each leg runs [`REPS`] times;
//!   the reported rep is the median by wall time. Recorded per leg:
//!   throughput, latency p50/p90/p99/max, solves, coalesced, and the
//!   post-shutdown accounting (`accepted == completed + shed`). The
//!   headline `throughput_speedup` is event/threaded.
//! * `overload` — open-loop 2x-capacity burst against a deliberately tiny
//!   admission budget (1 worker, queue 2, per-shard bound 4): pins that
//!   overload sheds with typed `retry_after_ms` instead of queueing
//!   without bound, that the books still balance, and the served jobs'
//!   p99 latency (the tail `scripts/check.sh` diffs against this
//!   snapshot). `serve_snapshot --overload-only` runs just this leg and
//!   prints its JSON object to stdout for that comparison.
//! * `deadline` — the same 50 ms-deadline workload solved twice: by the
//!   sequential MILP ladder and by the milp+annealer+analytic portfolio
//!   race. Recorded per leg: deadline-hit rate, degraded share, mean
//!   area, and which backend won each job. The portfolio's hit rate must
//!   be at least the sequential ladder's.
//! * `eco` — one [`ECO_MODULES`]-module base instance solved from
//!   scratch, then [`ECO_EDITS`] single-module edits each solved both
//!   ways: from scratch (the edited netlist as a fresh job) and as an
//!   ECO delta job pinned to the base fingerprint. Recorded: the median
//!   and mean ECO-vs-scratch solve-time ratio, the median and max
//!   ECO-vs-scratch area ratio, and how many deltas rode the incremental
//!   path. `serve_snapshot --eco-only` runs just this leg and prints its
//!   JSON object to stdout; `scripts/check.sh` pins the median latency
//!   ratio <= 0.5 and the median area ratio <= 1.05 against it.

use fp_netlist::generator::ProblemGenerator;
use fp_serve::{
    Backend, Engine, IoMode, JobRequest, JobResponse, ServeConfig, Server, ShutdownReport,
};
use std::io::{BufRead, BufReader, Write as _};
use std::net::TcpStream;
use std::time::Instant;

const REPS: usize = 3;
const DUP_PCT: u64 = 50;
const MODULES: usize = 4;

/// The deadline leg's workload: jobs, modules per instance, budget.
const DL_JOBS: u64 = 24;
const DL_MODULES: usize = 9;
const DL_MS: u64 = 50;

/// The eco leg's workload: base size (the ISSUE pins n >= 33) and how
/// many single-module edits are timed both ways.
const ECO_MODULES: usize = 33;
const ECO_EDITS: usize = 5;
const ECO_SEED: u64 = 0xEC0;

struct Measured {
    wall_s: f64,
    throughput: f64,
    p50_ms: f64,
    p90_ms: f64,
    p99_ms: f64,
    max_ms: f64,
    solves: u64,
    coalesced: u64,
    report: ShutdownReport,
}

fn request_line(id: u64) -> String {
    // Bresenham interleave: of every 100 consecutive ids, DUP_PCT are the
    // shared instance (seed 1), the rest all distinct.
    let seed = if (id * DUP_PCT) % 100 < DUP_PCT {
        1
    } else {
        1000 + id
    };
    let nl = ProblemGenerator::new(MODULES, seed).generate();
    JobRequest::new(id, &nl).with_cache(false).encode()
}

fn percentile(sorted_ms: &[f64], p: f64) -> f64 {
    if sorted_ms.is_empty() {
        return 0.0;
    }
    let idx = ((p / 100.0) * (sorted_ms.len() - 1) as f64).round() as usize;
    sorted_ms[idx.min(sorted_ms.len() - 1)]
}

/// One rep: CONNS concurrent connections, one request/response each.
fn drive(io: IoMode, conns: usize) -> Measured {
    let config = ServeConfig::default()
        .with_io(io)
        .with_workers(2)
        .with_cache_capacity(0)
        .with_queue_capacity(4 * conns.max(16))
        .with_per_shard_pending(4 * conns.max(16))
        .with_node_limit(4_000);
    let server = Server::bind("127.0.0.1:0", config).expect("bind");
    let addr = server.local_addr();

    let started = Instant::now();
    let handles: Vec<_> = (0..conns as u64)
        .map(|id| {
            std::thread::spawn(move || {
                let mut stream = TcpStream::connect(addr).expect("connect");
                stream.set_nodelay(true).expect("nodelay");
                let sent = Instant::now();
                writeln!(stream, "{}", request_line(id)).expect("send");
                let mut line = String::new();
                BufReader::new(&stream)
                    .read_line(&mut line)
                    .expect("read response");
                let resp = JobResponse::decode(line.trim_end()).expect("decode");
                assert!(resp.ok, "job {id} failed: {}", resp.error);
                (resp, sent.elapsed().as_secs_f64() * 1e3)
            })
        })
        .collect();
    let responses: Vec<(JobResponse, f64)> = handles
        .into_iter()
        .map(|h| h.join().expect("client"))
        .collect();
    let wall_s = started.elapsed().as_secs_f64();
    let report = server.shutdown();

    let coalesced = responses.iter().filter(|(r, _)| r.coalesced).count() as u64;
    let solves = responses
        .iter()
        .filter(|(r, _)| r.ok && !r.cached && !r.coalesced)
        .count() as u64;
    let mut lat: Vec<f64> = responses.iter().map(|&(_, ms)| ms).collect();
    lat.sort_by(f64::total_cmp);
    Measured {
        wall_s,
        throughput: conns as f64 / wall_s.max(1e-12),
        p50_ms: percentile(&lat, 50.0),
        p90_ms: percentile(&lat, 90.0),
        p99_ms: percentile(&lat, 99.0),
        max_ms: lat.last().copied().unwrap_or(0.0),
        solves,
        coalesced,
        report,
    }
}

fn median_rep(io: IoMode, conns: usize) -> Measured {
    let mut runs: Vec<Measured> = (0..REPS).map(|_| drive(io, conns)).collect();
    runs.sort_by(|a, b| a.wall_s.total_cmp(&b.wall_s));
    runs.swap_remove(REPS / 2)
}

/// The overload leg's measurements.
struct Overload {
    report: ShutdownReport,
    served: u64,
    shed: u64,
    retry_max: u64,
    /// p99 latency of the *served* jobs, measured from burst start (a
    /// shed is an immediate typed refusal, not a serviced request).
    p99_ms: f64,
}

/// The overload leg: a pipelined 2x-capacity burst against a tiny
/// admission budget must produce typed sheds and balanced books.
fn drive_overload(jobs: u64) -> Overload {
    let config = ServeConfig::default()
        .with_io(IoMode::Event)
        .with_shards(1)
        .with_workers(1)
        .with_queue_capacity(2)
        .with_per_shard_pending(4)
        .with_cache_capacity(0)
        .with_node_limit(500);
    let server = Server::bind("127.0.0.1:0", config).expect("bind");
    let stream = TcpStream::connect(server.local_addr()).expect("connect");
    let mut writer = stream.try_clone().expect("clone");
    let started = Instant::now();
    let reader = std::thread::spawn(move || {
        let mut got = Vec::with_capacity(jobs as usize);
        let mut reader = BufReader::new(stream);
        while got.len() < jobs as usize {
            let mut line = String::new();
            if reader.read_line(&mut line).expect("read") == 0 {
                break;
            }
            let ms = started.elapsed().as_secs_f64() * 1e3;
            got.push((JobResponse::decode(line.trim_end()).expect("decode"), ms));
        }
        got
    });
    for id in 0..jobs {
        writeln!(writer, "{}", request_line(id)).expect("send");
    }
    let responses = reader.join().expect("reader");
    assert_eq!(responses.len(), jobs as usize, "every job answered");
    let served = responses.iter().filter(|(r, _)| r.ok).count() as u64;
    let shed = responses.iter().filter(|(r, _)| r.is_shed()).count() as u64;
    assert_eq!(
        served + shed,
        jobs,
        "overload answers are ok or typed sheds"
    );
    let retry_max = responses
        .iter()
        .filter(|(r, _)| r.is_shed())
        .map(|(r, _)| r.retry_after_ms)
        .max()
        .unwrap_or(0);
    let mut lat: Vec<f64> = responses
        .iter()
        .filter(|(r, _)| r.ok)
        .map(|&(_, ms)| ms)
        .collect();
    lat.sort_by(f64::total_cmp);
    Overload {
        report: server.shutdown(),
        served,
        shed,
        retry_max,
        p99_ms: percentile(&lat, 99.0),
    }
}

/// One deadline-leg measurement: every job under a 50 ms budget, solved
/// sequentially (`backends` empty) or by the portfolio race.
struct DeadlineLeg {
    hits: u64,
    degraded: u64,
    mean_area: f64,
    /// Winning backend per job, first seen first.
    wins: Vec<(String, u64)>,
}

/// Drives [`DL_JOBS`] distinct instances through an in-process engine,
/// each under the same [`DL_MS`] deadline; a hit answered within budget.
fn drive_deadline(backends: Vec<Backend>) -> DeadlineLeg {
    let engine = Engine::start(
        ServeConfig::default()
            .with_workers(2)
            .with_cache_capacity(0)
            .with_backends(backends),
    );
    let client = engine.client();
    let mut leg = DeadlineLeg {
        hits: 0,
        degraded: 0,
        mean_area: 0.0,
        wins: Vec::new(),
    };
    for id in 0..DL_JOBS {
        let nl = ProblemGenerator::new(DL_MODULES, 2000 + id).generate();
        let resp = client.call(
            JobRequest::new(id, &nl)
                .with_deadline_ms(DL_MS)
                .with_cache(false),
        );
        assert!(resp.ok, "deadline job {id} failed: {}", resp.error);
        if resp.micros <= DL_MS * 1000 {
            leg.hits += 1;
        }
        leg.degraded += u64::from(resp.degraded);
        leg.mean_area += resp.area;
        match leg.wins.iter_mut().find(|(name, _)| *name == resp.backend) {
            Some((_, n)) => *n += 1,
            None => leg.wins.push((resp.backend.clone(), 1)),
        }
    }
    engine.shutdown();
    leg.mean_area /= DL_JOBS as f64;
    leg.wins.sort_by(|a, b| b.1.cmp(&a.1).then(a.0.cmp(&b.0)));
    leg
}

/// The eco leg's measurements over [`ECO_EDITS`] single-module edits.
struct EcoLeg {
    /// Per-edit ECO/scratch solve-time ratios, sorted ascending.
    latency_ratios: Vec<f64>,
    /// Per-edit ECO/scratch chip-area ratios, sorted ascending.
    area_ratios: Vec<f64>,
    /// Edits whose delta job rode the incremental path.
    base_hits: usize,
    scratch_p50_ms: f64,
    eco_p50_ms: f64,
}

fn median(sorted: &[f64]) -> f64 {
    percentile(sorted, 50.0)
}

/// Drives the eco leg through an in-process engine: solve the base from
/// scratch (warming the solution cache and basis store), then time each
/// single-module edit as a fresh scratch job and as a pinned delta job.
/// Scratch runs first so the delta job cannot ride anything the scratch
/// solve published beyond what any equally fresh client would see.
fn drive_eco() -> EcoLeg {
    let engine = Engine::start(
        ServeConfig::default()
            .with_workers(2)
            .with_cache_capacity(64)
            .with_node_limit(4_000),
    );
    let client = engine.client();
    let base = ProblemGenerator::new(ECO_MODULES, ECO_SEED).generate();
    let resp = client.call(JobRequest::new(0, &base));
    assert!(resp.ok, "eco base solve failed: {}", resp.error);
    let base_fp = resp.fingerprint;
    assert_ne!(base_fp, 0, "base job must report its fingerprint");

    let mut leg = EcoLeg {
        latency_ratios: Vec::with_capacity(ECO_EDITS),
        area_ratios: Vec::with_capacity(ECO_EDITS),
        base_hits: 0,
        scratch_p50_ms: 0.0,
        eco_p50_ms: 0.0,
    };
    let mut scratch_ms = Vec::with_capacity(ECO_EDITS);
    let mut eco_ms = Vec::with_capacity(ECO_EDITS);
    for i in 0..ECO_EDITS {
        let script = format!("mod! m{:02} rigid {} {} rot", i * 5, 2 + i % 4, 3 + i % 3);
        let ops = fp_serve::parse_delta_ops(&script).expect("edit script");
        let edited = fp_serve::apply_delta(&base, &ops)
            .expect("apply edit")
            .netlist;
        let scratch = client.call(JobRequest::new(100 + i as u64, &edited).with_cache(false));
        assert!(scratch.ok, "scratch job {i} failed: {}", scratch.error);
        let eco = client.call(
            JobRequest::new(200 + i as u64, &base)
                .with_eco(&script)
                .with_eco_base(base_fp)
                .with_cache(false),
        );
        assert!(eco.ok, "eco job {i} failed: {}", eco.error);
        assert_eq!(
            eco.fingerprint, scratch.fingerprint,
            "edit {i}: delta and scratch must agree on the edited instance"
        );
        leg.base_hits += usize::from(eco.eco_base_hit);
        leg.latency_ratios
            .push(eco.micros as f64 / (scratch.micros as f64).max(1.0));
        leg.area_ratios.push(eco.area / scratch.area.max(1e-12));
        scratch_ms.push(scratch.micros as f64 / 1e3);
        eco_ms.push(eco.micros as f64 / 1e3);
    }
    engine.shutdown();
    leg.latency_ratios.sort_by(f64::total_cmp);
    leg.area_ratios.sort_by(f64::total_cmp);
    scratch_ms.sort_by(f64::total_cmp);
    eco_ms.sort_by(f64::total_cmp);
    leg.scratch_p50_ms = median(&scratch_ms);
    leg.eco_p50_ms = median(&eco_ms);
    leg
}

fn leg_json(m: &Measured) -> String {
    let acc = m.report.accounting;
    format!(
        "{{\"wall_s\": {:.6}, \"throughput_jobs_per_s\": {:.1}, \
         \"p50_ms\": {:.1}, \"p90_ms\": {:.1}, \"p99_ms\": {:.1}, \
         \"max_ms\": {:.1}, \"solves\": {}, \"coalesced\": {}, \
         \"accepted\": {}, \"completed\": {}, \"shed\": {}}}",
        m.wall_s,
        m.throughput,
        m.p50_ms,
        m.p90_ms,
        m.p99_ms,
        m.max_ms,
        m.solves,
        m.coalesced,
        acc.accepted,
        acc.completed,
        acc.shed
    )
}

fn overload_json(o: &Overload) -> String {
    let acc = o.report.accounting;
    format!(
        "{{\"jobs\": 40, \"served\": {}, \"shed\": {}, \
         \"retry_after_ms_max\": {}, \"p99_ms\": {:.1}, \
         \"accepted\": {}, \"completed\": {}}}",
        o.served, o.shed, o.retry_max, o.p99_ms, acc.accepted, acc.completed
    )
}

fn deadline_json(leg: &DeadlineLeg) -> String {
    let wins: Vec<String> = leg
        .wins
        .iter()
        .map(|(name, n)| format!("\"{name}\": {n}"))
        .collect();
    format!(
        "{{\"hit_rate\": {:.3}, \"degraded\": {}, \"mean_area\": {:.1}, \
         \"wins\": {{{}}}}}",
        leg.hits as f64 / DL_JOBS as f64,
        leg.degraded,
        leg.mean_area,
        wins.join(", ")
    )
}

fn eco_json(leg: &EcoLeg) -> String {
    format!(
        "{{\"modules\": {ECO_MODULES}, \"edits\": {ECO_EDITS}, \
         \"base_hits\": {}, \"median_latency_ratio\": {:.3}, \
         \"mean_latency_ratio\": {:.3}, \"median_area_ratio\": {:.3}, \
         \"max_area_ratio\": {:.3}, \"scratch_p50_ms\": {:.1}, \
         \"eco_p50_ms\": {:.1}}}",
        leg.base_hits,
        median(&leg.latency_ratios),
        leg.latency_ratios.iter().sum::<f64>() / leg.latency_ratios.len().max(1) as f64,
        median(&leg.area_ratios),
        leg.area_ratios.last().copied().unwrap_or(0.0),
        leg.scratch_p50_ms,
        leg.eco_p50_ms
    )
}

/// Runs the eco leg, prints its progress line, and asserts every delta
/// rode the incremental path (the whole point of the leg).
fn eco_leg_checked() -> EcoLeg {
    let eco = drive_eco();
    eprintln!(
        "eco: {}/{ECO_EDITS} base hits, latency ratio p50 {:.3}, \
         area ratio p50 {:.3}, scratch p50 {:.0}ms vs eco p50 {:.0}ms",
        eco.base_hits,
        median(&eco.latency_ratios),
        median(&eco.area_ratios),
        eco.scratch_p50_ms,
        eco.eco_p50_ms
    );
    assert_eq!(
        eco.base_hits, ECO_EDITS,
        "every single-module delta must ride the incremental path"
    );
    eco
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    if args.iter().any(|a| a == "--eco-only") {
        // The check-script entry point: just the eco leg, its JSON
        // object on stdout (progress stays on stderr).
        let eco = eco_leg_checked();
        println!("{}", eco_json(&eco));
        return;
    }
    if args.iter().any(|a| a == "--overload-only") {
        // The check-script entry point: just the overload leg, its JSON
        // object on stdout (progress stays on stderr).
        let overload = drive_overload(40);
        eprintln!(
            "overload: {} served, {} shed, p99 {:.1}ms",
            overload.served, overload.shed, overload.p99_ms
        );
        assert!(
            overload.shed > 0,
            "2x-capacity burst with queue=2 must shed"
        );
        println!("{}", overload_json(&overload));
        return;
    }
    let positional: Vec<&String> = args.iter().filter(|a| !a.starts_with("--")).collect();
    let out_path = positional
        .first()
        .map_or_else(|| "BENCH_SERVE.json".to_string(), |s| (*s).clone());
    let conns: usize = positional
        .get(1)
        .map_or(1000, |s| s.parse().expect("CONNS must be a number"));

    let event = median_rep(IoMode::Event, conns);
    eprintln!(
        "event: {:.1} jobs/s, p99 {:.1}ms, {} solves / {} coalesced",
        event.throughput, event.p99_ms, event.solves, event.coalesced
    );
    let threaded = median_rep(IoMode::Threaded, conns);
    eprintln!(
        "threaded: {:.1} jobs/s, p99 {:.1}ms, {} solves / {} coalesced",
        threaded.throughput, threaded.p99_ms, threaded.solves, threaded.coalesced
    );
    for (leg, m) in [("event", &event), ("threaded", &threaded)] {
        let acc = m.report.accounting;
        assert_eq!(acc.accepted as usize, conns, "{leg}: every job accepted");
        assert_eq!(
            acc.accepted,
            acc.completed + acc.shed,
            "{leg}: books must balance"
        );
        // The duplicate share must actually dedup: at most the distinct
        // half plus the handful of shared-instance leader solves.
        assert!(
            m.solves <= (conns as u64) * 55 / 100,
            "{leg}: {} solves out of {conns} jobs — coalescing not engaging",
            m.solves
        );
    }

    let overload = drive_overload(40);
    eprintln!(
        "overload: {} served, {} shed (retry_after <= {}ms), p99 {:.1}ms",
        overload.served, overload.shed, overload.retry_max, overload.p99_ms
    );
    assert!(
        overload.shed > 0,
        "2x-capacity burst with queue=2 must shed"
    );
    let oacc = overload.report.accounting;
    assert_eq!(oacc.accepted, oacc.completed + oacc.shed);

    let sequential = drive_deadline(Vec::new());
    let portfolio = drive_deadline(vec![Backend::Milp, Backend::Annealer, Backend::Analytic]);
    for (leg, m) in [("sequential", &sequential), ("portfolio", &portfolio)] {
        eprintln!(
            "deadline/{leg}: {}/{DL_JOBS} within {DL_MS}ms, {} degraded, mean area {:.0}",
            m.hits, m.degraded, m.mean_area
        );
    }
    assert!(
        portfolio.hits >= sequential.hits,
        "portfolio hit {}/{DL_JOBS} deadlines, sequential {}/{DL_JOBS} — racing made it worse",
        portfolio.hits,
        sequential.hits
    );

    let eco = eco_leg_checked();

    let speedup = event.throughput / threaded.throughput.max(1e-12);
    let json = format!(
        "{{\n  \"bench\": \"serve_io\",\n  \"reps\": {REPS},\n  \
         \"conns\": {conns},\n  \"dup_pct\": {DUP_PCT},\n  \
         \"modules\": {MODULES},\n  \
         \"throughput_speedup\": {speedup:.3},\n  \
         \"event\": {},\n  \"threaded\": {},\n  \
         \"overload\": {},\n  \
         \"deadline\": {{\"jobs\": {DL_JOBS}, \"modules\": {DL_MODULES}, \
         \"deadline_ms\": {DL_MS}, \"sequential\": {}, \"portfolio\": {}}},\n  \
         \"eco\": {}\n}}\n",
        leg_json(&event),
        leg_json(&threaded),
        overload_json(&overload),
        deadline_json(&sequential),
        deadline_json(&portfolio),
        eco_json(&eco)
    );
    std::fs::write(&out_path, &json).expect("write snapshot");
    eprintln!(
        "event vs threaded throughput: {speedup:.2}x on {conns} conns \
         ({DUP_PCT}% duplicates) -> {out_path}"
    );
}
