//! Regenerates the paper's **figures**:
//!
//! * Fig. 1 — linearization of `h = S/w` for a flexible module (printed as
//!   a table of true vs Taylor vs secant heights),
//! * Fig. 2/4 — successive augmentation & the covering-rectangle
//!   decomposition of a partial floorplan (printed),
//! * Fig. 5 — a floorplan of the ami33 chip (`target/figures/fig5_ami33.svg`
//!   + ASCII),
//! * Fig. 6/8 — the final floorplan with routing space
//!   (`target/figures/fig6_routed.svg`).
//!
//! ```sh
//! cargo run -p fp-bench --release --bin figures
//! ```

use fp_bench::{experiment_config, run_pipeline, EXPERIMENT_PITCH};
use fp_geom::covering::{covering_rectangles, horizontal_edge_cuts};
use fp_geom::Rect;
use fp_netlist::ami33;
use fp_route::{route, RouteConfig, RoutingMode};
use fp_viz::{ascii_floorplan, svg_congestion, svg_floorplan, svg_routed};
use std::fs;

fn figure1() {
    println!("-- Figure 1: linearization of h = S/w (S = 64, w in [4, 16]) --");
    let (s, w_min, w_max) = (64.0, 4.0, 16.0);
    let h0 = s / w_max;
    let taylor_slope = s / (w_max * w_max); // paper's Λ = S / w_max²
    let secant_slope = (s / w_min - s / w_max) / (w_max - w_min);
    println!(
        "{:>6} {:>10} {:>12} {:>12}",
        "w", "h=S/w", "Taylor@wmax", "Secant"
    );
    for k in 0..=6 {
        let w = w_min + (w_max - w_min) * f64::from(k) / 6.0;
        let dw = w_max - w;
        println!(
            "{:>6.2} {:>10.3} {:>12.3} {:>12.3}",
            w,
            s / w,
            h0 + taylor_slope * dw,
            h0 + secant_slope * dw
        );
    }
    println!("(Taylor underestimates away from w_max; the secant over-reserves — see DESIGN.md)\n");
}

fn figure2_4() {
    println!("-- Figures 2/4: covering rectangles for a partial floorplan --");
    // The six fixed modules of Fig. 4a (flat bottom).
    let modules = vec![
        Rect::new(0.0, 0.0, 3.0, 2.0),
        Rect::new(3.0, 0.0, 3.0, 3.0),
        Rect::new(0.0, 2.0, 2.0, 3.0),
        Rect::new(2.0, 3.0, 2.0, 1.0),
        Rect::new(4.0, 3.0, 2.0, 2.0),
        Rect::new(0.0, 5.0, 1.0, 1.0),
    ];
    println!("fixed modules: {}", modules.len());
    let contour = fp_geom::Contour::from_rects(&modules).expect("non-empty");
    println!(
        "covering polygon (Fig. 4b): {} vertices, {} horizontal edges (Theorem 1: n <= N+1 = {}), area {}",
        contour.vertices().len(),
        contour.horizontal_edges(),
        modules.len() + 1,
        contour.area()
    );
    let cuts = horizontal_edge_cuts(&modules);
    println!("horizontal edge-cut partition ({} rectangles):", cuts.len());
    for r in &cuts {
        println!("  {r}");
    }
    let covers = covering_rectangles(&modules);
    println!(
        "chosen covering set: {} rectangles (corollary: <= {} modules)\n",
        covers.len(),
        modules.len()
    );
}

fn figures5_6() -> Result<(), Box<dyn std::error::Error>> {
    fs::create_dir_all("target/figures")?;
    let netlist = ami33();

    println!("-- Figure 5: floorplan of the ami33 chip --");
    let out = run_pipeline(&netlist, &experiment_config())?;
    println!("{}", ascii_floorplan(&out.floorplan, &netlist, 66));
    fs::write(
        "target/figures/fig5_ami33.svg",
        svg_floorplan(&out.floorplan, &netlist),
    )?;
    println!("wrote target/figures/fig5_ami33.svg\n");

    println!("-- Figures 6/8: final floorplan with routing space --");
    let out = run_pipeline(&netlist, &experiment_config().with_envelopes(true))?;
    let routing = route(
        &out.floorplan,
        &netlist,
        &RouteConfig::default()
            .with_mode(RoutingMode::AroundTheCell)
            .with_pitches(EXPERIMENT_PITCH, EXPERIMENT_PITCH),
    )?;
    println!(
        "routed {} nets, wirelength {:.0}, final chip area {:.0}",
        routing.routes.len(),
        routing.total_wirelength,
        routing.adjustment.final_area()
    );
    fs::write(
        "target/figures/fig6_routed.svg",
        svg_routed(&out.floorplan, &netlist, &routing),
    )?;
    println!("wrote target/figures/fig6_routed.svg");
    fs::write(
        "target/figures/fig6b_congestion.svg",
        svg_congestion(&out.floorplan, &netlist, &routing),
    )?;
    println!("wrote target/figures/fig6b_congestion.svg (companion heatmap)");
    Ok(())
}

fn main() -> Result<(), Box<dyn std::error::Error>> {
    figure1();
    figure2_4();
    figures5_6()
}
