//! Baseline comparison (beyond the paper's tables, but implied by its
//! §2.1): the analytical MILP floorplanner vs the prior-art Wong-Liu
//! slicing annealer vs a constructive bottom-left heuristic, on the same
//! benchmarks.
//!
//! The paper's pitch is that a non-slicing analytical method beats
//! slicing-restricted search; this binary measures exactly that claim on
//! our benchmark equivalents.
//!
//! ```sh
//! cargo run -p fp-bench --release --bin comparison
//! ```

use fp_bench::{experiment_config, run_pipeline, secs, Table};
use fp_core::bottom_left;
use fp_netlist::{ami33, apte9, generator::ProblemGenerator, xerox10, Netlist};
use fp_slicing::SlicingAnnealer;
use std::time::Instant;

fn main() {
    let mut table = Table::new(
        "Comparison — analytical MILP vs Wong-Liu slicing SA vs bottom-left greedy",
        &[
            "Benchmark",
            "Method",
            "Chip Area",
            "Utilisation",
            "Wirelength (est)",
            "Time (s)",
        ],
    );

    let problems: Vec<Netlist> = vec![
        ProblemGenerator::new(15, 1988).generate(),
        apte9(),
        xerox10(),
        ami33(),
    ];

    for netlist in &problems {
        let total = netlist.total_module_area();

        // 1. Analytical MILP pipeline (augment -> improve -> compaction).
        let out = run_pipeline(netlist, &experiment_config()).expect("pipeline");
        table.add_row(vec![
            netlist.name().to_string(),
            "MILP (this paper)".to_string(),
            format!("{:.0}", out.floorplan.chip_area()),
            format!("{:.1}%", 100.0 * total / out.floorplan.chip_area()),
            format!("{:.0}", out.floorplan.center_wirelength(netlist)),
            secs(out.elapsed),
        ]);

        // 2. Wong-Liu slicing simulated annealing [WON86].
        let started = Instant::now();
        let slicing = SlicingAnnealer::new(netlist).with_seed(1988).run();
        assert!(slicing.floorplan.is_valid());
        table.add_row(vec![
            netlist.name().to_string(),
            "Slicing SA [WON86]".to_string(),
            format!("{:.0}", slicing.area),
            format!("{:.1}%", 100.0 * total / slicing.area),
            format!("{:.0}", slicing.floorplan.center_wirelength(netlist)),
            secs(started.elapsed()),
        ]);

        // 3. Constructive bottom-left greedy.
        let started = Instant::now();
        let greedy = bottom_left(netlist, &experiment_config()).expect("fits");
        table.add_row(vec![
            netlist.name().to_string(),
            "Bottom-left greedy".to_string(),
            format!("{:.0}", greedy.chip_area()),
            format!("{:.1}%", 100.0 * total / greedy.chip_area()),
            format!("{:.0}", greedy.center_wirelength(netlist)),
            secs(started.elapsed()),
        ]);
    }
    table.print();
}
