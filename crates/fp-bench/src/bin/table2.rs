//! Regenerates **Table 2** (paper §4, Series 2): ami33 with over-the-cell
//! routing — objective function × module ordering.
//!
//! "Two different objective functions were used: (1) Chip Area and (2)
//! Chip Area + Wire Length. Two different algorithms were used for
//! selecting the order: random, and linear ordering based on connectivity.
//! The best results achieved by this series corresponds to a chip
//! utilization of 96%."
//!
//! Over-the-cell technology means no routing area is reserved (no
//! envelopes); wirelength is measured by the global router in
//! over-the-cell mode on the finished floorplan.
//!
//! ```sh
//! cargo run -p fp-bench --release --bin table2
//! ```

use fp_bench::{experiment_config, run_pipeline, secs, Table, EXPERIMENT_PITCH};
use fp_core::{Objective, OrderingStrategy};
use fp_netlist::ami33;
use fp_route::{route, RouteConfig, RoutingMode};

fn main() {
    let netlist = ami33();
    let mut table = Table::new(
        "Table 2 — ami33, over-the-cell routing (total module area 11520)",
        &[
            "Objective",
            "Ordering",
            "Chip Area",
            "Utilisation",
            "Routed Wirelength",
            "Time (s)",
        ],
    );

    let objectives = [
        ("Area", Objective::Area),
        ("Area+Wire", Objective::AreaPlusWirelength { lambda: 0.5 }),
    ];
    let orderings = [
        ("Random", OrderingStrategy::Random(1988)),
        ("Connectivity", OrderingStrategy::Connectivity),
    ];

    let mut best_util = 0.0_f64;
    for (obj_name, objective) in &objectives {
        for (ord_name, ordering) in &orderings {
            let config = experiment_config()
                .with_objective(*objective)
                .with_ordering(ordering.clone());
            let out = run_pipeline(&netlist, &config).expect("pipeline");
            let fp = &out.floorplan;
            let routing = route(
                fp,
                &netlist,
                &RouteConfig::default()
                    .with_mode(RoutingMode::OverTheCell)
                    .with_pitches(EXPERIMENT_PITCH, EXPERIMENT_PITCH),
            )
            .expect("routing");
            let util = fp.utilization(&netlist);
            best_util = best_util.max(util);
            table.add_row(vec![
                (*obj_name).to_string(),
                (*ord_name).to_string(),
                format!("{:.0}", fp.chip_area()),
                format!("{:.1}%", 100.0 * util),
                format!("{:.0}", routing.total_wirelength),
                secs(out.elapsed),
            ]);
        }
    }
    table.print();
    println!(
        "\nbest utilization this series: {:.1}% (paper's best: 96%)",
        100.0 * best_util
    );
}
