//! Writes `BENCH_MILP.json`: warm-start, model-strengthening and sparse-
//! kernel impact on the seeded MILP instance set.
//!
//! Usage: `milp_snapshot [OUT_PATH]` (default `BENCH_MILP.json`). For each
//! instance the solve runs serially under the configurations below, three
//! repetitions each (the reported elapsed time is the median repetition):
//!
//! * `cold` / `warm` — warm-start off vs on (strengthening at its default)
//!   for the node-throughput comparison; the headline
//!   `median_node_throughput_speedup` is the median over instances of
//!   `warm throughput / cold throughput`.
//! * `strengthen.off` / `strengthen.on` — probing presolve, coefficient
//!   tightening and root cuts off vs on (warm starts at their default).
//!   Per instance the snapshot records `node_reduction`
//!   (`nodes_off / nodes_on` — how much smaller the tree got) and
//!   `speedup` (`elapsed_off / elapsed_on` — the end-to-end win), with
//!   medians `median_strengthen_node_reduction` and
//!   `median_strengthen_speedup` as headlines.
//! * `sparse.dense` / `sparse.sparse` — dense reference tableau vs the
//!   default sparse revised kernel, everything else at its default. Per
//!   instance the snapshot records `pivot_time_speedup` (dense seconds per
//!   pivot / sparse seconds per pivot) and `speedup` (dense elapsed /
//!   sparse elapsed), with `median_sparse_pivot_time_speedup` and
//!   `median_sparse_speedup` as headlines. The sparse leg reuses the
//!   `warm` measurement (warm starts and strengthening both default on the
//!   default kernel), so only the dense leg solves again. Each instance
//!   also records `auto_kernel` — which kernel the default
//!   `SparseMode::Auto` policy resolves to for its dimensions.

use fp_bench::instances::seeded_set;
use fp_milp::{SolveOptions, SparseMode};
use std::fmt::Write as _;
use std::time::Instant;

const REPS: usize = 3;

struct Measured {
    elapsed_s: f64,
    nodes: usize,
    pivots: usize,
    warm_nodes: usize,
    cold_nodes: usize,
    rows_tightened: usize,
    binaries_fixed: usize,
    cuts_added: usize,
    refactorizations: usize,
    eta_updates: usize,
    objective: f64,
}

fn measure(model: &fp_milp::Model, opts: &SolveOptions) -> Measured {
    let mut runs: Vec<Measured> = (0..REPS)
        .map(|_| {
            let started = Instant::now();
            let sol = model.solve_with(opts).expect("feasible by construction");
            let elapsed_s = started.elapsed().as_secs_f64();
            let stats = sol.stats();
            Measured {
                elapsed_s,
                nodes: stats.nodes,
                pivots: stats.simplex_iterations,
                warm_nodes: stats.warm_nodes,
                cold_nodes: stats.cold_nodes,
                rows_tightened: stats.rows_tightened,
                binaries_fixed: stats.binaries_fixed,
                cuts_added: stats.cuts_added,
                refactorizations: stats.refactorizations,
                eta_updates: stats.eta_updates,
                objective: sol.objective(),
            }
        })
        .collect();
    runs.sort_by(|a, b| a.elapsed_s.total_cmp(&b.elapsed_s));
    runs.swap_remove(REPS / 2)
}

fn median(values: &mut [f64]) -> f64 {
    values.sort_by(f64::total_cmp);
    if values.is_empty() {
        return 0.0;
    }
    values[values.len() / 2]
}

fn agree(name: &str, what: &str, a: f64, b: f64) {
    assert!(
        (a - b).abs() <= 1e-9 * (1.0 + a.abs()),
        "{name}: {what} objective {b} != {a}"
    );
}

fn main() {
    let out_path = std::env::args()
        .nth(1)
        .unwrap_or_else(|| "BENCH_MILP.json".to_string());
    let cold_opts = SolveOptions::default()
        .with_node_limit(200_000)
        .with_warm_start(false);
    let warm_opts = SolveOptions::default().with_node_limit(200_000);
    let off_opts = SolveOptions::default()
        .with_node_limit(200_000)
        .with_strengthen(false);
    let dense_opts = SolveOptions::default()
        .with_node_limit(200_000)
        .with_sparse(false);

    let mut rows = String::new();
    let mut speedups = Vec::new();
    let mut node_reductions = Vec::new();
    let mut strengthen_speedups = Vec::new();
    let mut sparse_pivot_speedups = Vec::new();
    let mut sparse_speedups = Vec::new();
    for (i, (name, model)) in seeded_set().into_iter().enumerate() {
        let cold = measure(&model, &cold_opts);
        let warm = measure(&model, &warm_opts);
        let off = measure(&model, &off_opts);
        let dense = measure(&model, &dense_opts);
        agree(&name, "warm", cold.objective, warm.objective);
        agree(&name, "strengthen-off", cold.objective, off.objective);
        agree(&name, "dense", cold.objective, dense.objective);
        let cold_tp = cold.nodes as f64 / cold.elapsed_s.max(1e-12);
        let warm_tp = warm.nodes as f64 / warm.elapsed_s.max(1e-12);
        let speedup = warm_tp / cold_tp.max(1e-12);
        speedups.push(speedup);
        // `warm` is the strengthen-on leg: both legs keep warm starts at
        // their default so the comparison isolates the strengthening layer.
        let node_reduction = off.nodes as f64 / (warm.nodes as f64).max(1.0);
        let strengthen_speedup = off.elapsed_s / warm.elapsed_s.max(1e-12);
        node_reductions.push(node_reduction);
        strengthen_speedups.push(strengthen_speedup);
        // Dense vs sparse: `warm` is the default-configuration leg and the
        // default kernel is sparse, so it doubles as the sparse leg.
        let dense_ppt = dense.elapsed_s / (dense.pivots as f64).max(1.0);
        let sparse_ppt = warm.elapsed_s / (warm.pivots as f64).max(1.0);
        let sparse_pivot_speedup = dense_ppt / sparse_ppt.max(1e-12);
        let sparse_speedup = dense.elapsed_s / warm.elapsed_s.max(1e-12);
        // Which kernel the default `SparseMode::Auto` picks for this
        // instance (resolved from the model's own dimensions; presolve may
        // shrink them slightly, but the verdict is the same either way).
        let auto_kernel = if SparseMode::Auto.resolve(model.num_constraints(), model.num_vars()) {
            "sparse"
        } else {
            "dense"
        };
        sparse_pivot_speedups.push(sparse_pivot_speedup);
        sparse_speedups.push(sparse_speedup);
        if i > 0 {
            rows.push_str(",\n");
        }
        let _ = write!(
            rows,
            "    {{\"name\": \"{name}\", \
             \"cold\": {{\"elapsed_s\": {:.6}, \"nodes\": {}, \"pivots\": {}, \
             \"nodes_per_s\": {:.1}}}, \
             \"warm\": {{\"elapsed_s\": {:.6}, \"nodes\": {}, \"pivots\": {}, \
             \"warm_nodes\": {}, \"cold_nodes\": {}, \"nodes_per_s\": {:.1}}}, \
             \"node_throughput_speedup\": {:.3}, \
             \"strengthen\": {{\
             \"off\": {{\"elapsed_s\": {:.6}, \"nodes\": {}, \"pivots\": {}}}, \
             \"on\": {{\"elapsed_s\": {:.6}, \"nodes\": {}, \"pivots\": {}, \
             \"rows_tightened\": {}, \"binaries_fixed\": {}, \
             \"cuts_added\": {}}}, \
             \"node_reduction\": {:.3}, \"speedup\": {:.3}}}, \
             \"sparse\": {{\
             \"dense\": {{\"elapsed_s\": {:.6}, \"nodes\": {}, \"pivots\": {}, \
             \"s_per_pivot\": {:.9}}}, \
             \"sparse\": {{\"elapsed_s\": {:.6}, \"nodes\": {}, \"pivots\": {}, \
             \"refactorizations\": {}, \"eta_updates\": {}, \
             \"s_per_pivot\": {:.9}}}, \
             \"pivot_time_speedup\": {:.3}, \"speedup\": {:.3}, \
             \"auto_kernel\": \"{auto_kernel}\"}}}}",
            cold.elapsed_s,
            cold.nodes,
            cold.pivots,
            cold_tp,
            warm.elapsed_s,
            warm.nodes,
            warm.pivots,
            warm.warm_nodes,
            warm.cold_nodes,
            warm_tp,
            speedup,
            off.elapsed_s,
            off.nodes,
            off.pivots,
            warm.elapsed_s,
            warm.nodes,
            warm.pivots,
            warm.rows_tightened,
            warm.binaries_fixed,
            warm.cuts_added,
            node_reduction,
            strengthen_speedup,
            dense.elapsed_s,
            dense.nodes,
            dense.pivots,
            dense_ppt,
            warm.elapsed_s,
            warm.nodes,
            warm.pivots,
            warm.refactorizations,
            warm.eta_updates,
            sparse_ppt,
            sparse_pivot_speedup,
            sparse_speedup
        );
        eprintln!(
            "{name}: cold {:.1} nodes/s ({} pivots), warm {:.1} nodes/s \
             ({} pivots, {}/{} warm), speedup {speedup:.2}x",
            cold_tp, cold.pivots, warm_tp, warm.pivots, warm.warm_nodes, warm.nodes
        );
        eprintln!(
            "{name}: strengthen {} -> {} nodes ({node_reduction:.2}x fewer, \
             {} rows tightened, {} fixed, {} cuts), end-to-end \
             {strengthen_speedup:.2}x",
            off.nodes, warm.nodes, warm.rows_tightened, warm.binaries_fixed, warm.cuts_added
        );
        eprintln!(
            "{name}: dense {:.0} ns/pivot vs sparse {:.0} ns/pivot \
             ({sparse_pivot_speedup:.2}x, {} refactors, {} etas), \
             end-to-end {sparse_speedup:.2}x, auto -> {auto_kernel}",
            dense_ppt * 1e9,
            sparse_ppt * 1e9,
            warm.refactorizations,
            warm.eta_updates
        );
    }
    let median_speedup = median(&mut speedups);
    let median_reduction = median(&mut node_reductions);
    let median_strengthen_speedup = median(&mut strengthen_speedups);
    let median_sparse_pivot = median(&mut sparse_pivot_speedups);
    let median_sparse_speedup = median(&mut sparse_speedups);
    let json = format!(
        "{{\n  \"bench\": \"milp_warm_start\",\n  \"reps\": {REPS},\n  \
         \"median_node_throughput_speedup\": {median_speedup:.3},\n  \
         \"median_strengthen_node_reduction\": {median_reduction:.3},\n  \
         \"median_strengthen_speedup\": {median_strengthen_speedup:.3},\n  \
         \"median_sparse_pivot_time_speedup\": {median_sparse_pivot:.3},\n  \
         \"median_sparse_speedup\": {median_sparse_speedup:.3},\n  \
         \"instances\": [\n{rows}\n  ]\n}}\n"
    );
    std::fs::write(&out_path, &json).expect("write snapshot");
    eprintln!(
        "median node-throughput speedup: {median_speedup:.2}x, median \
         strengthen node reduction: {median_reduction:.2}x, median \
         strengthen speedup: {median_strengthen_speedup:.2}x, median \
         sparse pivot-time speedup: {median_sparse_pivot:.2}x, median \
         sparse end-to-end speedup: {median_sparse_speedup:.2}x -> {out_path}"
    );
}
