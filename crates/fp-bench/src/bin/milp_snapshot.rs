//! Writes `BENCH_MILP.json`: warm-start vs cold node throughput on the
//! seeded MILP instance set.
//!
//! Usage: `milp_snapshot [OUT_PATH]` (default `BENCH_MILP.json`). For each
//! instance the solve runs serially, cold (`with_warm_start(false)`) and
//! warm (default), three repetitions each; the reported elapsed time is
//! the median repetition. Node throughput is `nodes / median elapsed`;
//! the headline `median_node_throughput_speedup` is the median over
//! instances of `warm throughput / cold throughput`.

use fp_bench::instances::seeded_set;
use fp_milp::SolveOptions;
use std::fmt::Write as _;
use std::time::Instant;

const REPS: usize = 3;

struct Measured {
    elapsed_s: f64,
    nodes: usize,
    pivots: usize,
    warm_nodes: usize,
    cold_nodes: usize,
    objective: f64,
}

fn measure(model: &fp_milp::Model, opts: &SolveOptions) -> Measured {
    let mut runs: Vec<Measured> = (0..REPS)
        .map(|_| {
            let started = Instant::now();
            let sol = model.solve_with(opts).expect("feasible by construction");
            let elapsed_s = started.elapsed().as_secs_f64();
            let stats = sol.stats();
            Measured {
                elapsed_s,
                nodes: stats.nodes,
                pivots: stats.simplex_iterations,
                warm_nodes: stats.warm_nodes,
                cold_nodes: stats.cold_nodes,
                objective: sol.objective(),
            }
        })
        .collect();
    runs.sort_by(|a, b| a.elapsed_s.total_cmp(&b.elapsed_s));
    runs.swap_remove(REPS / 2)
}

fn median(values: &mut [f64]) -> f64 {
    values.sort_by(f64::total_cmp);
    if values.is_empty() {
        return 0.0;
    }
    values[values.len() / 2]
}

fn main() {
    let out_path = std::env::args()
        .nth(1)
        .unwrap_or_else(|| "BENCH_MILP.json".to_string());
    let cold_opts = SolveOptions::default()
        .with_node_limit(200_000)
        .with_warm_start(false);
    let warm_opts = SolveOptions::default().with_node_limit(200_000);

    let mut rows = String::new();
    let mut speedups = Vec::new();
    for (i, (name, model)) in seeded_set().into_iter().enumerate() {
        let cold = measure(&model, &cold_opts);
        let warm = measure(&model, &warm_opts);
        assert!(
            (cold.objective - warm.objective).abs() <= 1e-9 * (1.0 + cold.objective.abs()),
            "{name}: warm objective {} != cold {}",
            warm.objective,
            cold.objective
        );
        let cold_tp = cold.nodes as f64 / cold.elapsed_s.max(1e-12);
        let warm_tp = warm.nodes as f64 / warm.elapsed_s.max(1e-12);
        let speedup = warm_tp / cold_tp.max(1e-12);
        speedups.push(speedup);
        if i > 0 {
            rows.push_str(",\n");
        }
        let _ = write!(
            rows,
            "    {{\"name\": \"{name}\", \
             \"cold\": {{\"elapsed_s\": {:.6}, \"nodes\": {}, \"pivots\": {}, \
             \"nodes_per_s\": {:.1}}}, \
             \"warm\": {{\"elapsed_s\": {:.6}, \"nodes\": {}, \"pivots\": {}, \
             \"warm_nodes\": {}, \"cold_nodes\": {}, \"nodes_per_s\": {:.1}}}, \
             \"node_throughput_speedup\": {:.3}}}",
            cold.elapsed_s,
            cold.nodes,
            cold.pivots,
            cold_tp,
            warm.elapsed_s,
            warm.nodes,
            warm.pivots,
            warm.warm_nodes,
            warm.cold_nodes,
            warm_tp,
            speedup
        );
        eprintln!(
            "{name}: cold {:.1} nodes/s ({} pivots), warm {:.1} nodes/s \
             ({} pivots, {}/{} warm), speedup {speedup:.2}x",
            cold_tp, cold.pivots, warm_tp, warm.pivots, warm.warm_nodes, warm.nodes
        );
    }
    let median_speedup = median(&mut speedups);
    let json = format!(
        "{{\n  \"bench\": \"milp_warm_start\",\n  \"reps\": {REPS},\n  \
         \"median_node_throughput_speedup\": {median_speedup:.3},\n  \
         \"instances\": [\n{rows}\n  ]\n}}\n"
    );
    std::fs::write(&out_path, &json).expect("write snapshot");
    eprintln!("median node-throughput speedup: {median_speedup:.2}x -> {out_path}");
}
