//! Regenerates **Table 3** (paper §4, Series 3): ami33 with around-the-cell
//! routing — floorplan adjustment with/without envelopes × routing
//! algorithm (shortest path vs weighted shortest path).
//!
//! "Two techniques were used for providing routing area: 1. Floorplan
//! Adjustment without Envelopes, 2. Floorplan Adjustment with Envelopes.
//! Two routing algorithms were applied: 1. Shortest Path, 2. Weighted
//! Shortest Path. [...] The results support our prediction that the
//! application of envelopes allows us to decrease the chip size."
//!
//! Without envelopes, all routing demand lands in leftover dead space and
//! the post-routing channel adjustment must blow the chip up; with
//! envelopes the space is pre-reserved where the pins are.
//!
//! ```sh
//! cargo run -p fp-bench --release --bin table3
//! ```

use fp_bench::{experiment_config, run_pipeline, secs, Table, EXPERIMENT_PITCH};
use fp_netlist::ami33;
use fp_route::{route, RouteAlgorithm, RouteConfig, RoutingMode};

fn main() {
    let netlist = ami33();
    let mut table = Table::new(
        "Table 3 — ami33, around-the-cell routing (final area after channel adjustment)",
        &[
            "Adjustment",
            "Router",
            "Placed Area",
            "Final Chip Area",
            "Wirelength",
            "Overflowed Edges",
            "Time (s)",
        ],
    );

    let adjustments = [("No Envelopes", false), ("With Envelopes", true)];
    let routers = [
        ("Shortest Path", RouteAlgorithm::ShortestPath),
        ("Weighted SP", RouteAlgorithm::WeightedShortestPath),
    ];

    let mut final_areas = Vec::new();
    for (adj_name, envelopes) in &adjustments {
        let config = experiment_config().with_envelopes(*envelopes);
        let out = run_pipeline(&netlist, &config).expect("pipeline");
        let fp = &out.floorplan;
        for (router_name, algorithm) in &routers {
            let rc = RouteConfig::default()
                .with_mode(RoutingMode::AroundTheCell)
                .with_algorithm(*algorithm)
                .with_pitches(EXPERIMENT_PITCH, EXPERIMENT_PITCH);
            let routing = route(fp, &netlist, &rc).expect("routing");
            final_areas.push(((*adj_name, *router_name), routing.adjustment.final_area()));
            table.add_row(vec![
                (*adj_name).to_string(),
                (*router_name).to_string(),
                format!("{:.0}", fp.chip_area()),
                format!("{:.0}", routing.adjustment.final_area()),
                format!("{:.0}", routing.total_wirelength),
                routing.adjustment.overflowed_edges.to_string(),
                secs(out.elapsed),
            ]);
        }
    }
    table.print();

    let best_no_env = final_areas
        .iter()
        .filter(|((a, _), _)| *a == "No Envelopes")
        .map(|(_, area)| *area)
        .fold(f64::INFINITY, f64::min);
    let best_env = final_areas
        .iter()
        .filter(|((a, _), _)| *a == "With Envelopes")
        .map(|(_, area)| *area)
        .fold(f64::INFINITY, f64::min);
    println!(
        "\nenvelope effect on best final chip area: {:.0} -> {:.0} ({:+.1}%)  \
         (paper: envelopes decrease the chip size)",
        best_no_env,
        best_env,
        100.0 * (best_env - best_no_env) / best_no_env
    );
}
