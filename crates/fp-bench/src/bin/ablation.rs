//! Ablation study for the paper's two central design choices:
//!
//! 1. **Covering-rectangle reduction (§3.1)** — with it, each step sees
//!    `d ≤ N` obstacles and the per-step 0-1 count stays flat (Theorem 2
//!    corollary); without it, every placed module is its own obstacle and
//!    the integer count grows with the partial floorplan, destroying the
//!    linear-time behaviour of Table 1.
//! 2. **Rotation variables (formulation (4))** — the paper argues "a better
//!    floorplan can be achieved if rotation of the rigid blocks is
//!    allowed"; switching `z_i` off quantifies that.
//!
//! ```sh
//! cargo run -p fp-bench --release --bin ablation
//! ```

use fp_bench::{experiment_config, secs, Table};
use fp_core::Floorplanner;
use fp_netlist::generator::ProblemGenerator;

fn main() {
    // --- covering-rectangle reduction --------------------------------
    let mut table = Table::new(
        "Ablation A — covering-rectangle reduction (§3.1)",
        &[
            "Modules",
            "Reduction",
            "Max binaries/step",
            "Max obstacles",
            "Time (s)",
            "Chip Area",
        ],
    );
    for &n in &[10usize, 14, 18] {
        let netlist = ProblemGenerator::new(n, 77).generate();
        for (label, reduction) in [("on", true), ("off", false)] {
            let config = experiment_config().with_covering_reduction(reduction);
            let result = Floorplanner::with_config(&netlist, config)
                .run()
                .expect("feasible");
            let max_obstacles = result
                .stats
                .steps
                .iter()
                .map(|s| s.obstacles)
                .max()
                .unwrap_or(0);
            table.add_row(vec![
                n.to_string(),
                label.to_string(),
                result.stats.max_binaries().to_string(),
                max_obstacles.to_string(),
                secs(result.stats.elapsed),
                format!("{:.0}", result.floorplan.chip_area()),
            ]);
        }
    }
    table.print();

    // --- rotation variables -------------------------------------------
    let mut table = Table::new(
        "Ablation B — 90° rotation variables (formulation (4))",
        &[
            "Modules",
            "Rotation",
            "Chip Area",
            "Utilisation",
            "Time (s)",
        ],
    );
    for &n in &[12usize, 18] {
        let netlist = ProblemGenerator::new(n, 41).generate();
        for (label, rotation) in [("on", true), ("off", false)] {
            let config = experiment_config().with_rotation(rotation);
            let result = Floorplanner::with_config(&netlist, config)
                .run()
                .expect("feasible");
            table.add_row(vec![
                n.to_string(),
                label.to_string(),
                format!("{:.0}", result.floorplan.chip_area()),
                format!("{:.1}%", 100.0 * result.floorplan.utilization(&netlist)),
                secs(result.stats.elapsed),
            ]);
        }
    }
    table.print();
}
