//! Regenerates **Table 1** (paper §4, Series 1): influence of problem size
//! on execution time.
//!
//! "Problems with 15, 20, and 25 modules were randomly generated and
//! accompanied by the benchmark with 33 modules. Chip area was used as an
//! objective function. [...] execution time grows almost linearly with the
//! problem size."
//!
//! ```sh
//! cargo run -p fp-bench --release --bin table1
//! ```

use fp_bench::{experiment_config, run_pipeline, secs, Table};
use fp_netlist::{ami33, apte9, generator::ProblemGenerator, xerox10, Netlist};

fn main() {
    let mut table = Table::new(
        "Table 1 — problem size vs execution time (objective: chip area)",
        &[
            "Modules",
            "Chip Area",
            "Area Utilisation",
            "Augment Time (s)",
            "Total Time (s)",
            "MILP steps",
            "B&B nodes",
        ],
    );

    // Randomly generated sizes are averaged over three seeds to damp the
    // variance of individual branch-and-bound runs; ami33 is fixed.
    let seeds: Vec<u64> = if fp_bench::quick_mode() {
        vec![1988]
    } else {
        vec![1988, 1989, 1990]
    };
    let mut points: Vec<(usize, f64)> = Vec::new();
    let groups: Vec<Vec<Netlist>> = vec![
        seeds
            .clone()
            .into_iter()
            .map(|s| ProblemGenerator::new(15, s).generate())
            .collect(),
        seeds
            .iter()
            .map(|&s| ProblemGenerator::new(20, s).generate())
            .collect(),
        seeds
            .iter()
            .map(|&s| ProblemGenerator::new(25, s).generate())
            .collect(),
        vec![ami33()],
    ];

    for group in &groups {
        let mut area = 0.0;
        let mut util = 0.0;
        let mut augment = 0.0;
        let mut total = 0.0;
        let mut steps = 0usize;
        let mut nodes = 0usize;
        for netlist in group {
            let out = run_pipeline(netlist, &experiment_config()).expect("pipeline");
            area += out.floorplan.chip_area();
            util += out.floorplan.utilization(netlist);
            augment += out.stats.elapsed.as_secs_f64();
            total += out.elapsed.as_secs_f64();
            steps += out.stats.steps.len();
            nodes += out.stats.total_nodes();
        }
        let k = group.len() as f64;
        let modules = group[0].num_modules();
        table.add_row(vec![
            modules.to_string(),
            format!("{:.0}", area / k),
            format!("{:.1}%", 100.0 * util / k),
            format!("{:.2}", augment / k),
            format!("{:.2}", total / k),
            format!("{:.1}", steps as f64 / k),
            format!("{:.0}", nodes as f64 / k),
        ]);
        // The paper's linearity claim concerns the augmentation loop; the
        // post-pass ("adjust floorplan") is a roughly constant overhead.
        points.push((modules, augment / k));
    }
    table.print();

    // The paper's claim: time grows ~linearly with module count. Report the
    // per-module augmentation rate; a superlinear blow-up would show as a
    // rising rate.
    println!("\nscaling check (augmentation time per module):");
    for (k, t) in &points {
        println!("  K = {k:>2}: {:.3} s/module", t / *k as f64);
    }
    let first = points.first().map(|(k, t)| t / *k as f64).unwrap_or(0.0);
    let last = points.last().map(|(k, t)| t / *k as f64).unwrap_or(0.0);
    println!(
        "  rate ratio (largest/smallest problem): {:.2} (≈1 ⇒ linear growth, paper's claim)",
        last / first.max(1e-12)
    );

    // Extension beyond the paper: the other MCNC-era benchmark equivalents.
    let mut extended = Table::new(
        "Table 1 (extension) — MCNC-era benchmark equivalents",
        &[
            "Benchmark",
            "Modules",
            "Chip Area",
            "Area Utilisation",
            "Time (s)",
        ],
    );
    for netlist in [apte9(), xerox10()] {
        let out = run_pipeline(&netlist, &experiment_config()).expect("pipeline");
        extended.add_row(vec![
            netlist.name().to_string(),
            netlist.num_modules().to_string(),
            format!("{:.0}", out.floorplan.chip_area()),
            format!("{:.1}%", 100.0 * out.floorplan.utilization(&netlist)),
            secs(out.elapsed),
        ]);
    }
    println!();
    extended.print();
}
