//! Regression pins for the model-strengthening layer on the seeded bench
//! instances.
//!
//! These live in `fp-bench` (not `fp-milp`) because they pin behavior on
//! the shared generators from [`fp_bench::instances`] — the same models the
//! `milp_snapshot` binary measures — without making `fp-milp` depend on its
//! own benchmark crate.

use fp_bench::instances::knapsack;
use fp_milp::{Optimality, SolveOptions};

/// knapsack18 (seed 4) is the instance where unconditionally committed root
/// cut rounds used to *grow* the tree (301 nodes with strengthening vs 135
/// without, a 0.449x "reduction"). With cut rounds gated on a proven root
/// bound improvement, strengthening must never leave the tree larger than
/// the strengthen-off baseline.
#[test]
fn knapsack18_strengthen_never_grows_the_tree() {
    let model = knapsack(18, 4);
    let off = model
        .solve_with(
            &SolveOptions::default()
                .with_node_limit(200_000)
                .with_strengthen(false),
        )
        .expect("knapsack is feasible by construction");
    let on = model
        .solve_with(&SolveOptions::default().with_node_limit(200_000))
        .expect("knapsack is feasible by construction");
    assert_eq!(off.optimality(), Optimality::Proven);
    assert_eq!(on.optimality(), Optimality::Proven);
    assert!(
        (off.objective() - on.objective()).abs() <= 1e-9 * (1.0 + off.objective().abs()),
        "strengthening changed the optimum: {} vs {}",
        on.objective(),
        off.objective()
    );
    assert!(
        on.stats().nodes <= off.stats().nodes,
        "strengthening grew the tree: {} nodes with cuts vs {} without",
        on.stats().nodes,
        off.stats().nodes
    );
}
