//! Criterion micro-benchmarks for the MILP solver substrate: LP simplex
//! throughput, knapsack branch-and-bound, and one floorplanning
//! non-overlap MILP of augmentation-step size.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use fp_bench::instances::{knapsack, placement_milp, random_lp, seeded_set};
use fp_milp::{Model, SolveOptions};
use std::time::Duration;

fn bench_simplex(c: &mut Criterion) {
    let mut group = c.benchmark_group("simplex");
    for &n in &[10usize, 25, 50] {
        let model = random_lp(n, 7);
        group.bench_with_input(BenchmarkId::new("lp_dense", n), &model, |b, m| {
            b.iter(|| m.solve().expect("feasible by construction"))
        });
    }
    group.finish();
}

fn bench_branch_bound(c: &mut Criterion) {
    let mut group = c.benchmark_group("branch_bound");
    group.measurement_time(Duration::from_secs(8));
    for &n in &[10usize, 16, 22] {
        let model = knapsack(n, 3);
        group.bench_with_input(BenchmarkId::new("knapsack", n), &model, |b, m| {
            b.iter(|| m.solve().expect("knapsacks are feasible"))
        });
    }
    group.finish();
}

fn bench_placement_milp(c: &mut Criterion) {
    let mut group = c.benchmark_group("placement_milp");
    group.sample_size(10);
    group.measurement_time(Duration::from_secs(12));
    for &k in &[3usize, 4, 5] {
        let model = placement_milp(k);
        let opts = SolveOptions::default().with_node_limit(50_000);
        group.bench_with_input(BenchmarkId::new("non_overlap", k), &model, |b, m| {
            b.iter(|| m.solve_with(&opts).expect("placement is feasible"))
        });
    }
    group.finish();
}

/// Serial vs parallel search on the same trees: `threads/{1,N}` rows make
/// the scaling of the shared-frontier branch-and-bound directly comparable.
fn bench_parallel_scaling(c: &mut Criterion) {
    let nthreads = std::thread::available_parallelism().map_or(2, |n| n.get().max(2));
    let mut group = c.benchmark_group("parallel_scaling");
    group.sample_size(10);
    group.measurement_time(Duration::from_secs(12));
    let cases: Vec<(&str, Model)> = vec![
        ("knapsack22", knapsack(22, 3)),
        ("placement5", placement_milp(5)),
    ];
    for (name, model) in &cases {
        for &threads in &[1usize, nthreads] {
            let opts = SolveOptions::default()
                .with_node_limit(50_000)
                .with_threads(threads);
            group.bench_with_input(
                BenchmarkId::new(*name, format!("threads_{threads}")),
                model,
                |b, m| b.iter(|| m.solve_with(&opts).expect("feasible by construction")),
            );
        }
    }
    group.finish();
}

/// Observability overhead: the same solves untraced, with a disabled
/// tracer, and with a no-op sink attached. `disabled` must track `off`
/// within noise (one `Option` check per emit site); `null_sink` bounds the
/// full event-construction cost.
fn bench_trace_overhead(c: &mut Criterion) {
    let mut group = c.benchmark_group("trace_overhead");
    group.sample_size(10);
    group.measurement_time(Duration::from_secs(12));
    let cases: Vec<(&str, Model)> = vec![
        ("knapsack22", knapsack(22, 3)),
        ("placement5", placement_milp(5)),
    ];
    let opts = SolveOptions::default()
        .with_node_limit(50_000)
        .with_threads(1);
    for (name, model) in &cases {
        group.bench_with_input(BenchmarkId::new(*name, "off"), model, |b, m| {
            b.iter(|| m.solve_with(&opts).expect("feasible by construction"))
        });
        let disabled = fp_obs::Tracer::disabled();
        group.bench_with_input(BenchmarkId::new(*name, "disabled"), model, |b, m| {
            b.iter(|| {
                m.solve_traced(&opts, &disabled)
                    .expect("feasible by construction")
            })
        });
        let null = fp_obs::Tracer::new(fp_obs::NullSink);
        group.bench_with_input(BenchmarkId::new(*name, "null_sink"), model, |b, m| {
            b.iter(|| {
                m.solve_traced(&opts, &null)
                    .expect("feasible by construction")
            })
        });
    }
    group.finish();
}

/// Warm vs cold node solves on the same trees: the `warm_start` rows pit
/// the default dual-simplex basis reuse against `with_warm_start(false)`
/// (every node solved by the cold two-phase primal), on the classic bench
/// models and the seeded snapshot set, serial and parallel.
fn bench_warm_start(c: &mut Criterion) {
    let nthreads = std::thread::available_parallelism().map_or(2, |n| n.get().max(2));
    let mut group = c.benchmark_group("warm_start");
    group.sample_size(10);
    group.measurement_time(Duration::from_secs(12));
    let mut cases: Vec<(String, Model)> = vec![
        ("knapsack22".into(), knapsack(22, 3)),
        ("placement5".into(), placement_milp(5)),
    ];
    cases.extend(seeded_set());
    for (name, model) in &cases {
        for &threads in &[1usize, nthreads] {
            for (mode, warm) in [("cold", false), ("warm", true)] {
                let opts = SolveOptions::default()
                    .with_node_limit(50_000)
                    .with_threads(threads)
                    .with_warm_start(warm);
                group.bench_with_input(
                    BenchmarkId::new(name.as_str(), format!("{mode}_threads_{threads}")),
                    model,
                    |b, m| b.iter(|| m.solve_with(&opts).expect("feasible by construction")),
                );
            }
        }
    }
    group.finish();
}

/// Model strengthening on vs off on the same trees: probing presolve,
/// coefficient tightening and root cuts shrink the tree before the first
/// branch, so the `on` rows should win end-to-end wherever the instances
/// carry big-M structure (the placement models), serial and parallel.
fn bench_strengthen(c: &mut Criterion) {
    let nthreads = std::thread::available_parallelism().map_or(2, |n| n.get().max(2));
    let mut group = c.benchmark_group("strengthen");
    group.sample_size(10);
    group.measurement_time(Duration::from_secs(12));
    let cases: Vec<(&str, Model)> = vec![
        ("knapsack22", knapsack(22, 3)),
        ("placement4", placement_milp(4)),
        ("placement5", placement_milp(5)),
    ];
    for (name, model) in &cases {
        for &threads in &[1usize, nthreads] {
            for (mode, on) in [("off", false), ("on", true)] {
                let opts = SolveOptions::default()
                    .with_node_limit(50_000)
                    .with_threads(threads)
                    .with_strengthen(on);
                group.bench_with_input(
                    BenchmarkId::new(*name, format!("{mode}_threads_{threads}")),
                    model,
                    |b, m| b.iter(|| m.solve_with(&opts).expect("feasible by construction")),
                );
            }
        }
    }
    group.finish();
}

criterion_group!(
    benches,
    bench_simplex,
    bench_branch_bound,
    bench_placement_milp,
    bench_parallel_scaling,
    bench_trace_overhead,
    bench_warm_start,
    bench_strengthen
);
criterion_main!(benches);
