//! Criterion micro-benchmarks for the MILP solver substrate: LP simplex
//! throughput, knapsack branch-and-bound, and one floorplanning
//! non-overlap MILP of augmentation-step size.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use fp_milp::{LinExpr, Model, Sense, SolveOptions};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use std::time::Duration;

/// A dense feasible LP with `n` variables and `n` rows.
fn random_lp(n: usize, seed: u64) -> Model {
    let mut rng = StdRng::seed_from_u64(seed);
    let mut m = Model::new(Sense::Minimize);
    let vars: Vec<_> = (0..n)
        .map(|i| m.add_continuous(format!("x{i}"), 0.0, 50.0))
        .collect();
    for _ in 0..n {
        let mut e = LinExpr::new();
        let mut rhs = 5.0;
        for &v in &vars {
            let c: f64 = rng.gen_range(-2.0..3.0);
            e.add_term(v, c);
            rhs += c.max(0.0); // keep x = 1 feasible
        }
        m.add_le(e, rhs);
    }
    let mut obj = LinExpr::new();
    for &v in &vars {
        obj.add_term(v, rng.gen_range(-1.0..2.0));
    }
    m.set_objective(obj);
    m
}

fn knapsack(n: usize, seed: u64) -> Model {
    let mut rng = StdRng::seed_from_u64(seed);
    let mut m = Model::new(Sense::Maximize);
    let mut weight = LinExpr::new();
    let mut value = LinExpr::new();
    for i in 0..n {
        let b = m.add_binary(format!("b{i}"));
        weight.add_term(b, rng.gen_range(1.0..20.0));
        value.add_term(b, rng.gen_range(1.0..30.0));
    }
    m.add_le(weight, 5.0 * n as f64);
    m.set_objective(value);
    m
}

/// A two-module non-overlap disjunction chain of augmentation-step flavor.
fn placement_milp(modules: usize) -> Model {
    let w_chip = 40.0;
    let h_bar = 40.0;
    let mut m = Model::new(Sense::Minimize);
    let ychip = m.add_continuous("y", 0.0, h_bar);
    let dims: Vec<(f64, f64)> = (0..modules)
        .map(|i| (4.0 + (i % 3) as f64 * 2.0, 3.0 + (i % 2) as f64 * 3.0))
        .collect();
    let pos: Vec<_> = (0..modules)
        .map(|i| {
            (
                m.add_continuous(format!("x{i}"), 0.0, w_chip),
                m.add_continuous(format!("yy{i}"), 0.0, h_bar),
            )
        })
        .collect();
    for i in 0..modules {
        m.add_le(pos[i].0 + dims[i].0, w_chip);
        m.add_le(pos[i].1 + dims[i].1 - ychip, 0.0);
        for j in i + 1..modules {
            let p = m.add_binary(format!("p{i}_{j}"));
            let q = m.add_binary(format!("q{i}_{j}"));
            m.add_le(
                pos[i].0 + dims[i].0 - pos[j].0 - w_chip * p - w_chip * q,
                0.0,
            );
            m.add_le(
                pos[j].0 + dims[j].0 - pos[i].0 - w_chip * p + w_chip * q,
                w_chip,
            );
            m.add_le(
                pos[i].1 + dims[i].1 - pos[j].1 + h_bar * p - h_bar * q,
                h_bar,
            );
            m.add_le(
                pos[j].1 + dims[j].1 - pos[i].1 + h_bar * p + h_bar * q,
                2.0 * h_bar,
            );
        }
    }
    m.set_objective(ychip + 0.0);
    m
}

fn bench_simplex(c: &mut Criterion) {
    let mut group = c.benchmark_group("simplex");
    for &n in &[10usize, 25, 50] {
        let model = random_lp(n, 7);
        group.bench_with_input(BenchmarkId::new("lp_dense", n), &model, |b, m| {
            b.iter(|| m.solve().expect("feasible by construction"))
        });
    }
    group.finish();
}

fn bench_branch_bound(c: &mut Criterion) {
    let mut group = c.benchmark_group("branch_bound");
    group.measurement_time(Duration::from_secs(8));
    for &n in &[10usize, 16, 22] {
        let model = knapsack(n, 3);
        group.bench_with_input(BenchmarkId::new("knapsack", n), &model, |b, m| {
            b.iter(|| m.solve().expect("knapsacks are feasible"))
        });
    }
    group.finish();
}

fn bench_placement_milp(c: &mut Criterion) {
    let mut group = c.benchmark_group("placement_milp");
    group.sample_size(10);
    group.measurement_time(Duration::from_secs(12));
    for &k in &[3usize, 4, 5] {
        let model = placement_milp(k);
        let opts = SolveOptions::default().with_node_limit(50_000);
        group.bench_with_input(BenchmarkId::new("non_overlap", k), &model, |b, m| {
            b.iter(|| m.solve_with(&opts).expect("placement is feasible"))
        });
    }
    group.finish();
}

/// Serial vs parallel search on the same trees: `threads/{1,N}` rows make
/// the scaling of the shared-frontier branch-and-bound directly comparable.
fn bench_parallel_scaling(c: &mut Criterion) {
    let nthreads = std::thread::available_parallelism().map_or(2, |n| n.get().max(2));
    let mut group = c.benchmark_group("parallel_scaling");
    group.sample_size(10);
    group.measurement_time(Duration::from_secs(12));
    let cases: Vec<(&str, Model)> = vec![
        ("knapsack22", knapsack(22, 3)),
        ("placement5", placement_milp(5)),
    ];
    for (name, model) in &cases {
        for &threads in &[1usize, nthreads] {
            let opts = SolveOptions::default()
                .with_node_limit(50_000)
                .with_threads(threads);
            group.bench_with_input(
                BenchmarkId::new(*name, format!("threads_{threads}")),
                model,
                |b, m| b.iter(|| m.solve_with(&opts).expect("feasible by construction")),
            );
        }
    }
    group.finish();
}

/// Observability overhead: the same solves untraced, with a disabled
/// tracer, and with a no-op sink attached. `disabled` must track `off`
/// within noise (one `Option` check per emit site); `null_sink` bounds the
/// full event-construction cost.
fn bench_trace_overhead(c: &mut Criterion) {
    let mut group = c.benchmark_group("trace_overhead");
    group.sample_size(10);
    group.measurement_time(Duration::from_secs(12));
    let cases: Vec<(&str, Model)> = vec![
        ("knapsack22", knapsack(22, 3)),
        ("placement5", placement_milp(5)),
    ];
    let opts = SolveOptions::default()
        .with_node_limit(50_000)
        .with_threads(1);
    for (name, model) in &cases {
        group.bench_with_input(BenchmarkId::new(*name, "off"), model, |b, m| {
            b.iter(|| m.solve_with(&opts).expect("feasible by construction"))
        });
        let disabled = fp_obs::Tracer::disabled();
        group.bench_with_input(BenchmarkId::new(*name, "disabled"), model, |b, m| {
            b.iter(|| {
                m.solve_traced(&opts, &disabled)
                    .expect("feasible by construction")
            })
        });
        let null = fp_obs::Tracer::new(fp_obs::NullSink);
        group.bench_with_input(BenchmarkId::new(*name, "null_sink"), model, |b, m| {
            b.iter(|| {
                m.solve_traced(&opts, &null)
                    .expect("feasible by construction")
            })
        });
    }
    group.finish();
}

criterion_group!(
    benches,
    bench_simplex,
    bench_branch_bound,
    bench_placement_milp,
    bench_parallel_scaling,
    bench_trace_overhead
);
criterion_main!(benches);
