//! Criterion benchmarks for the global router: grid construction and full
//! net routing in both modes and with both cost models.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use fp_core::{bottom_left, Floorplan, FloorplanConfig};
use fp_netlist::{generator::ProblemGenerator, Netlist};
use fp_route::{route, RouteAlgorithm, RouteConfig, RoutingGrid, RoutingMode};

fn world(n: usize) -> (Floorplan, Netlist) {
    let netlist = ProblemGenerator::new(n, 12)
        .with_nets_per_module(3.0)
        .generate();
    let fp = bottom_left(&netlist, &FloorplanConfig::default()).expect("fits");
    (fp, netlist)
}

fn bench_grid_build(c: &mut Criterion) {
    let mut group = c.benchmark_group("grid");
    for &n in &[10usize, 33] {
        let (fp, _) = world(n);
        let cfg = RouteConfig::default();
        group.bench_with_input(BenchmarkId::new("build", n), &fp, |b, fp| {
            b.iter(|| RoutingGrid::build(fp, &cfg).expect("grid"))
        });
    }
    group.finish();
}

fn bench_route(c: &mut Criterion) {
    let mut group = c.benchmark_group("route");
    group.sample_size(20);
    for &n in &[10usize, 33] {
        let (fp, nl) = world(n);
        for (label, algorithm) in [
            ("sp", RouteAlgorithm::ShortestPath),
            ("wsp", RouteAlgorithm::WeightedShortestPath),
        ] {
            let cfg = RouteConfig::default()
                .with_algorithm(algorithm)
                .with_mode(RoutingMode::AroundTheCell);
            group.bench_with_input(BenchmarkId::new(label, n), &(&fp, &nl), |b, (fp, nl)| {
                b.iter(|| route(fp, nl, &cfg).expect("routable"))
            });
        }
    }
    group.finish();
}

criterion_group!(benches, bench_grid_build, bench_route);
criterion_main!(benches);
