//! Criterion benchmarks for the spatial-indexing layer: R-tree queries vs
//! the brute-force scan, sweep-line union area vs the compressed-grid
//! oracle, and the pruned vs all-pairs analytic gradient.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use fp_analytic::bench_support::GradHarness;
use fp_geom::{union_area, union_area_oracle, RTree, Rect};
use fp_netlist::decks::gsrc_style;

/// A deterministic scatter of `n` rects over a `side × side` region.
fn scattered_rects(n: usize) -> Vec<Rect> {
    let side = (n as f64).sqrt() * 8.0;
    let mut state = 0x2545_f491_4f6c_dd1d_u64;
    let mut next = move || {
        state ^= state << 13;
        state ^= state >> 7;
        state ^= state << 17;
        (state >> 11) as f64 / (1u64 << 53) as f64
    };
    (0..n)
        .map(|_| {
            Rect::new(
                next() * side,
                next() * side,
                1.0 + next() * 6.0,
                1.0 + next() * 6.0,
            )
        })
        .collect()
}

fn bench_rtree_query(c: &mut Criterion) {
    let mut group = c.benchmark_group("rtree");
    for &n in &[33usize, 100, 300] {
        let rects = scattered_rects(n);
        let tree = RTree::from_entries(rects.iter().enumerate().map(|(i, &r)| (i as u64, r)));
        group.bench_with_input(BenchmarkId::new("query_all", n), &rects, |b, rs| {
            b.iter(|| {
                let mut hits = 0usize;
                for r in rs {
                    hits += tree.query(r).len();
                }
                hits
            })
        });
        group.bench_with_input(BenchmarkId::new("scan_all", n), &rects, |b, rs| {
            b.iter(|| {
                let mut hits = 0usize;
                for a in rs {
                    hits += rs.iter().filter(|b| a.overlaps(b)).count();
                }
                hits
            })
        });
    }
    group.finish();
}

fn bench_union_area(c: &mut Criterion) {
    let mut group = c.benchmark_group("union_area");
    for &n in &[33usize, 100, 300] {
        let rects = scattered_rects(n);
        group.bench_with_input(BenchmarkId::new("sweep", n), &rects, |b, rs| {
            b.iter(|| union_area(rs))
        });
        if n <= 100 {
            group.bench_with_input(BenchmarkId::new("oracle", n), &rects, |b, rs| {
                b.iter(|| union_area_oracle(rs))
            });
        }
    }
    group.finish();
}

fn bench_gradient(c: &mut Criterion) {
    let mut group = c.benchmark_group("analytic_gradient");
    for &n in &[49usize, 100, 300] {
        let nl = gsrc_style(n, 1);
        let mut harness = GradHarness::new(&nl, 1);
        group.bench_function(BenchmarkId::new("overlap_pruned", n), |b| {
            b.iter(|| harness.eval_overlap_pruned())
        });
        group.bench_function(BenchmarkId::new("overlap_all_pairs", n), |b| {
            b.iter(|| harness.eval_overlap_all_pairs())
        });
        group.bench_function(BenchmarkId::new("full_pruned", n), |b| {
            b.iter(|| harness.eval_pruned())
        });
        group.bench_function(BenchmarkId::new("full_all_pairs", n), |b| {
            b.iter(|| harness.eval_all_pairs())
        });
    }
    group.finish();
}

criterion_group!(benches, bench_rtree_query, bench_union_area, bench_gradient);
criterion_main!(benches);
