//! Criterion benchmarks for the floorplanning core: covering-rectangle
//! decomposition, greedy bottom-left placement, one full augmentation run,
//! and the §2.5 topology LP.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use fp_core::{bottom_left, optimize_topology, FloorplanConfig, Floorplanner};
use fp_geom::covering::covering_rectangles;
use fp_geom::{Rect, Skyline};
use fp_netlist::generator::ProblemGenerator;
use std::time::Duration;

/// A supported placement of `n` rectangles, as augmentation produces.
fn supported_rects(n: usize) -> Vec<Rect> {
    let chip_w = 50.0;
    let mut placed: Vec<Rect> = Vec::new();
    for i in 0..n {
        let w = 3.0 + (i % 5) as f64;
        let h = 2.0 + (i % 4) as f64;
        let sky = Skyline::from_rects(&placed);
        let (x, y) = sky.drop_position(w, chip_w).expect("fits");
        placed.push(Rect::new(x, y, w, h));
    }
    placed
}

fn bench_covering(c: &mut Criterion) {
    let mut group = c.benchmark_group("covering");
    for &n in &[8usize, 16, 33, 64] {
        let rects = supported_rects(n);
        group.bench_with_input(BenchmarkId::new("decompose", n), &rects, |b, r| {
            b.iter(|| covering_rectangles(r))
        });
    }
    group.finish();
}

fn bench_greedy(c: &mut Criterion) {
    let mut group = c.benchmark_group("greedy");
    for &n in &[10usize, 33] {
        let netlist = ProblemGenerator::new(n, 4).generate();
        let config = FloorplanConfig::default();
        group.bench_with_input(BenchmarkId::new("bottom_left", n), &netlist, |b, nl| {
            b.iter(|| bottom_left(nl, &config).expect("fits"))
        });
    }
    group.finish();
}

fn bench_augmentation(c: &mut Criterion) {
    let mut group = c.benchmark_group("augmentation");
    group.sample_size(10);
    group.measurement_time(Duration::from_secs(20));
    for &n in &[8usize, 15] {
        let netlist = ProblemGenerator::new(n, 4).generate();
        let config = FloorplanConfig::default().with_step_options(
            fp_milp::SolveOptions::default()
                .with_node_limit(2_000)
                .with_time_limit(Duration::from_secs(1)),
        );
        group.bench_with_input(BenchmarkId::new("milp_run", n), &netlist, |b, nl| {
            b.iter(|| {
                Floorplanner::with_config(nl, config.clone())
                    .run()
                    .expect("feasible")
            })
        });
    }
    group.finish();
}

fn bench_topology_lp(c: &mut Criterion) {
    let mut group = c.benchmark_group("topology_lp");
    group.sample_size(10);
    for &n in &[15usize, 33] {
        let netlist = ProblemGenerator::new(n, 4).generate();
        let config = FloorplanConfig::default();
        let fp = bottom_left(&netlist, &config).expect("fits");
        group.bench_with_input(BenchmarkId::new("compact", n), &fp, |b, fp| {
            b.iter(|| optimize_topology(fp, &netlist, &config).expect("LP feasible"))
        });
    }
    group.finish();
}

fn bench_slicing_baseline(c: &mut Criterion) {
    let mut group = c.benchmark_group("slicing_sa");
    group.sample_size(10);
    for &n in &[10usize, 20] {
        let netlist = ProblemGenerator::new(n, 4).generate();
        group.bench_with_input(BenchmarkId::new("wong_liu", n), &netlist, |b, nl| {
            b.iter(|| fp_slicing::SlicingAnnealer::new(nl).with_seed(1).run())
        });
    }
    group.finish();
}

criterion_group!(
    benches,
    bench_covering,
    bench_greedy,
    bench_augmentation,
    bench_topology_lp,
    bench_slicing_baseline
);
criterion_main!(benches);
