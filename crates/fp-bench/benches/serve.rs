//! Criterion benchmarks for the fp-serve engine: in-process client
//! throughput as the worker pool widens, and the latency gap between a
//! solution-cache hit and a full pipeline miss.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use fp_netlist::generator::ProblemGenerator;
use fp_netlist::Netlist;
use fp_serve::{Engine, JobRequest, ServeConfig};
use std::cell::Cell;
use std::time::Duration;

/// Tiny distinct instances; the node limit in [`config`] keeps each solve
/// in the low-millisecond range so the queue/pool overhead is visible.
fn instances(count: usize) -> Vec<Netlist> {
    (0..count)
        .map(|i| ProblemGenerator::new(3 + i % 2, 100 + i as u64).generate())
        .collect()
}

fn config() -> ServeConfig {
    ServeConfig::default().with_node_limit(400)
}

/// One batch of distinct jobs pushed through the engine and fully drained:
/// the per-iteration unit for the throughput rows.
fn solve_batch(engine: &Engine, batch: &[Netlist]) {
    let client = engine.client();
    let receivers: Vec<_> = batch
        .iter()
        .enumerate()
        .map(|(i, nl)| client.submit(JobRequest::new(i as u64, nl)))
        .collect();
    for rx in receivers {
        let resp = rx.recv().expect("engine answered");
        assert!(resp.ok, "bench job failed: {}", resp.error);
    }
}

fn bench_worker_scaling(c: &mut Criterion) {
    let mut group = c.benchmark_group("serve_throughput");
    group.sample_size(10);
    group.measurement_time(Duration::from_secs(10));
    let batch = instances(8);
    for &workers in &[1usize, 2, 4] {
        // Cache off so every job pays the full pipeline and the rows
        // measure the worker pool, not the cache.
        let engine = Engine::start(config().with_workers(workers).with_cache_capacity(0));
        group.bench_with_input(
            BenchmarkId::new("batch8", format!("workers_{workers}")),
            &batch,
            |b, batch| b.iter(|| solve_batch(&engine, batch)),
        );
        engine.shutdown();
    }
    group.finish();
}

fn bench_cache_hit_vs_miss(c: &mut Criterion) {
    let mut group = c.benchmark_group("serve_cache");
    group.sample_size(10);
    group.measurement_time(Duration::from_secs(10));

    // Hit: the same instance every iteration; everything after the first
    // call is answered from the cache.
    let engine = Engine::start(config().with_workers(1).with_cache_capacity(4096));
    let nl = ProblemGenerator::new(4, 7).generate();
    let client = engine.client();
    let warm = client.call(JobRequest::new(0, &nl));
    assert!(warm.ok, "warm-up failed: {}", warm.error);
    group.bench_function("hit", |b| {
        b.iter(|| {
            let resp = client.call(JobRequest::new(1, &nl));
            assert!(resp.ok && resp.cached, "expected a cache hit");
        })
    });

    // Miss: a fresh seed every iteration, so every job runs the pipeline.
    let next_seed = Cell::new(10_000u64);
    group.bench_function("miss", |b| {
        b.iter(|| {
            let seed = next_seed.get();
            next_seed.set(seed + 1);
            let nl = ProblemGenerator::new(4, seed).generate();
            let resp = client.call(JobRequest::new(seed, &nl));
            assert!(resp.ok && !resp.cached, "expected a cache miss");
        })
    });
    engine.shutdown();
    group.finish();
}

criterion_group!(benches, bench_worker_scaling, bench_cache_hit_vs_miss);
criterion_main!(benches);
