//! Property tests for the slicing baseline: move closure, realization
//! soundness, and Pareto-curve invariants.

use fp_slicing::{PolishExpression, ShapeCurve, SlicingAnnealer};
use proptest::prelude::*;
use rand::rngs::StdRng;
use rand::SeedableRng;

proptest! {
    /// Any random move sequence keeps the expression valid and preserves
    /// the operand multiset.
    #[test]
    fn move_closure(n in 2usize..10, seed in 0u64..10_000, steps in 1usize..200) {
        let mut rng = StdRng::seed_from_u64(seed);
        let mut p = PolishExpression::row(n);
        for k in 0..steps {
            match k % 3 {
                0 => p.m1_swap_operands(&mut rng),
                1 => p.m2_complement_chain(&mut rng),
                _ => { let _ = p.m3_swap_operand_operator(&mut rng); }
            }
        }
        prop_assert!(p.is_valid());
        let mut operands: Vec<usize> = p
            .elements()
            .iter()
            .filter_map(|e| match e {
                fp_slicing::Element::Operand(m) => Some(*m),
                _ => None,
            })
            .collect();
        operands.sort_unstable();
        prop_assert_eq!(operands, (0..n).collect::<Vec<_>>());
    }

    /// Shape-curve combination is conservative: every point's area is at
    /// least the sum of the smallest child areas... more precisely, heights
    /// decrease strictly as widths increase (Pareto), and combining never
    /// produces a point smaller than the children allow.
    #[test]
    fn curve_pareto_invariants(
        a_dims in proptest::collection::vec((1.0f64..8.0, 1.0f64..8.0), 1..5),
        b_dims in proptest::collection::vec((1.0f64..8.0, 1.0f64..8.0), 1..5),
        vertical in any::<bool>(),
    ) {
        let a = ShapeCurve::leaf(&a_dims);
        let b = ShapeCurve::leaf(&b_dims);
        let c = ShapeCurve::combine(&a, &b, vertical);
        prop_assert!(!c.is_empty());
        let pts = c.points();
        for w in pts.windows(2) {
            prop_assert!(w[0].w < w[1].w);
            prop_assert!(w[0].h > w[1].h);
        }
        // Each combined point is at least as large as the smallest child
        // footprint in both directions.
        let min_aw = a_dims.iter().map(|d| d.0).fold(f64::INFINITY, f64::min);
        let min_bw = b_dims.iter().map(|d| d.0).fold(f64::INFINITY, f64::min);
        for p in pts {
            if vertical {
                prop_assert!(p.w >= min_aw + min_bw - 1e-9);
            } else {
                prop_assert!(p.w >= min_aw.max(min_bw) - 1e-9);
            }
        }
    }

    /// The annealer's floorplan is always complete, overlap-free and keeps
    /// the area accounting exact.
    #[test]
    fn annealed_floorplans_sound(n in 2usize..9, seed in 0u64..300, flex in 0.0f64..0.5) {
        let nl = fp_netlist::generator::ProblemGenerator::new(n, seed)
            .with_flexible_fraction(flex)
            .generate();
        let mut annealer = SlicingAnnealer::new(&nl);
        // Keep the schedule short for test speed.
        let result = annealer
            .with_seed(seed)
            .with_moves_per_temperature(10)
            .with_cooling(0.5)
            .run();
        prop_assert_eq!(result.floorplan.len(), n);
        prop_assert!(result.floorplan.is_valid(), "{:?}", result.floorplan.violations());
        // Area accounting: chip area equals the root point's area and is at
        // least the sum of module areas.
        prop_assert!((result.area - result.floorplan.chip_area()).abs() < 1e-6);
        prop_assert!(result.area >= nl.total_module_area() - 1e-6);
    }
}
