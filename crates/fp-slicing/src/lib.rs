//! Slicing floorplanner after Wong & Liu (DAC 1986) — the prior-art
//! baseline.
//!
//! The DAC 1990 paper positions its analytical (MILP) method against the
//! then-dominant **slicing** floorplanners, chiefly Wong & Liu's simulated
//! annealing over *normalized Polish expressions* ([WON86] in the paper's
//! §2.1). This crate implements that baseline so the benchmark harness can
//! compare both on the same problems:
//!
//! * [`PolishExpression`] — a normalized postfix encoding of a slicing
//!   tree (operands = modules, operators `H`/`V`), with the classic three
//!   move types (swap adjacent operands, complement an operator chain,
//!   swap an adjacent operand/operator pair subject to normalization);
//! * [`ShapeCurve`] — Pareto-minimal `(w, h)` lists per subtree, combined
//!   bottom-up (`V`: widths add, heights max; `H`: vice versa), supporting
//!   rigid, rotatable and flexible modules;
//! * [`SlicingAnnealer`] — a seeded simulated-annealing driver producing a
//!   [`Floorplan`](fp_core::Floorplan) comparable with the MILP
//!   floorplanner's output.
//!
//! # Example
//!
//! ```
//! use fp_slicing::SlicingAnnealer;
//!
//! let netlist = fp_netlist::generator::ProblemGenerator::new(8, 3).generate();
//! let result = SlicingAnnealer::new(&netlist).with_seed(7).run();
//! assert!(result.floorplan.is_valid());
//! assert_eq!(result.floorplan.len(), 8);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod anneal;
mod curve;
mod polish;

pub use anneal::{SlicingAnnealer, SlicingResult};
pub use curve::{ShapeCurve, ShapePoint};
pub use polish::{Element, PolishExpression};
