//! Simulated-annealing driver over normalized Polish expressions
//! (Wong & Liu, DAC 1986).

use crate::curve::ShapeCurve;
use crate::polish::{Element, PolishExpression};
use fp_core::{Floorplan, PlacedModule, StopFlag};
use fp_geom::{RTree, Rect};
use fp_netlist::{ModuleId, Netlist, Shape};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use std::time::{Duration, Instant};

/// Result of an annealing run.
#[derive(Debug, Clone)]
pub struct SlicingResult {
    /// The realized floorplan (chip width = the chosen root shape's width).
    pub floorplan: Floorplan,
    /// The best normalized Polish expression found — the slicing tree
    /// itself, exposed so reproducibility tests can compare runs
    /// structurally, not just by realized cost.
    pub expression: PolishExpression,
    /// Area of the chosen root shape (`== floorplan.chip_area()`).
    pub area: f64,
    /// Accepted / attempted move counts.
    pub accepted_moves: usize,
    /// Total attempted moves.
    pub attempted_moves: usize,
    /// Wall time of the run.
    pub elapsed: Duration,
}

/// Wong-Liu slicing floorplanner (non-consuming builder).
///
/// Cost is the minimum area over the root shape curve; flexible modules
/// contribute several sampled aspect ratios to their leaf curves and are
/// realized with their exact area.
#[derive(Debug, Clone)]
pub struct SlicingAnnealer<'a> {
    netlist: &'a Netlist,
    seed: u64,
    moves_per_temperature: usize,
    cooling: f64,
    min_temperature_ratio: f64,
    soft_samples: usize,
    deadline: Option<Instant>,
    stop: StopFlag,
    move_budget: usize,
    max_width: Option<f64>,
}

impl<'a> SlicingAnnealer<'a> {
    /// An annealer with Wong-Liu-ish defaults.
    #[must_use]
    pub fn new(netlist: &'a Netlist) -> Self {
        SlicingAnnealer {
            netlist,
            seed: 0x51AC_1986,
            moves_per_temperature: 0, // 0 = auto (30 per module)
            cooling: 0.9,
            min_temperature_ratio: 1e-4,
            soft_samples: 5,
            deadline: None,
            stop: StopFlag::disabled(),
            move_budget: 0, // 0 = unlimited
            max_width: None,
        }
    }

    /// Sets the RNG seed (runs are deterministic per seed).
    pub fn with_seed(&mut self, seed: u64) -> &mut Self {
        self.seed = seed;
        self
    }

    /// Sets moves attempted per temperature step (0 = 30 × modules).
    pub fn with_moves_per_temperature(&mut self, moves: usize) -> &mut Self {
        self.moves_per_temperature = moves;
        self
    }

    /// Sets the geometric cooling factor in `(0, 1)`.
    pub fn with_cooling(&mut self, cooling: f64) -> &mut Self {
        self.cooling = cooling.clamp(0.1, 0.999);
        self
    }

    /// Sets (or clears) an absolute wall-clock deadline. Checked every few
    /// moves; on expiry the best-so-far tree is realized and returned.
    /// Wall-clock exits are *not* deterministic — use
    /// [`with_move_budget`](Self::with_move_budget) for reproducible
    /// bounded runs.
    pub fn with_deadline(&mut self, deadline: Option<Instant>) -> &mut Self {
        self.deadline = deadline;
        self
    }

    /// Installs a cooperative stop flag; raising it ends the run at the
    /// next check, returning the best tree found so far.
    pub fn with_stop(&mut self, stop: StopFlag) -> &mut Self {
        self.stop = stop;
        self
    }

    /// Caps total attempted moves (0 = unlimited). Unlike the wall-clock
    /// deadline this bound is deterministic: same seed + same budget ⇒
    /// identical move sequence, tree, and cost.
    pub fn with_move_budget(&mut self, budget: usize) -> &mut Self {
        self.move_budget = budget;
        self
    }

    /// Constrains the root shape to widths `≤ max_width` (when any such
    /// point exists), so the realized floorplan targets the same fixed
    /// outline as the other portfolio backends.
    pub fn with_max_width(&mut self, max_width: Option<f64>) -> &mut Self {
        self.max_width = max_width;
        self
    }

    /// Runs the annealing schedule.
    ///
    /// # Panics
    ///
    /// Panics if the netlist is empty.
    #[must_use]
    pub fn run(&self) -> SlicingResult {
        let started = Instant::now();
        let n = self.netlist.num_modules();
        assert!(n > 0, "netlist has no modules");
        let candidates = self.leaf_candidates();
        let mut rng = StdRng::seed_from_u64(self.seed);

        let mut current = PolishExpression::row(n);
        let mut current_cost = evaluate(&current, &candidates, self.max_width).1;
        let mut best = current.clone();
        let mut best_cost = current_cost;

        // Initial temperature from the average uphill move (classic).
        let mut uphill = Vec::new();
        for _ in 0..20.max(n) {
            let mut probe = current.clone();
            perturb(&mut probe, &mut rng);
            let c = evaluate(&probe, &candidates, self.max_width).1;
            if c > current_cost {
                uphill.push(c - current_cost);
            }
        }
        let avg_up = if uphill.is_empty() {
            current_cost * 0.05
        } else {
            uphill.iter().sum::<f64>() / uphill.len() as f64
        };
        let mut temperature = (avg_up / f64::ln(1.0 / 0.85)).max(1e-9);
        let floor_temperature = temperature * self.min_temperature_ratio;

        let moves = if self.moves_per_temperature == 0 {
            30 * n
        } else {
            self.moves_per_temperature
        };

        let mut accepted_moves = 0usize;
        let mut attempted_moves = 0usize;
        'schedule: while temperature > floor_temperature {
            let mut accepted_here = 0usize;
            for _ in 0..moves {
                // Deterministic bound first, wall-clock exits second (the
                // budget must cut the move sequence at the same point on
                // every run with the same seed).
                if self.move_budget > 0 && attempted_moves >= self.move_budget {
                    break 'schedule;
                }
                if attempted_moves.is_multiple_of(16)
                    && (self.stop.is_set() || self.deadline.is_some_and(|d| Instant::now() >= d))
                {
                    break 'schedule;
                }
                attempted_moves += 1;
                let mut proposal = current.clone();
                perturb(&mut proposal, &mut rng);
                let cost = evaluate(&proposal, &candidates, self.max_width).1;
                let delta = cost - current_cost;
                let accept = delta <= 0.0 || {
                    let p = (-delta / temperature).exp();
                    rng.gen::<f64>() < p
                };
                if accept {
                    current = proposal;
                    current_cost = cost;
                    accepted_moves += 1;
                    accepted_here += 1;
                    if cost < best_cost {
                        best_cost = cost;
                        best = current.clone();
                    }
                }
            }
            temperature *= self.cooling;
            // Classic early exit: frozen when almost nothing is accepted.
            if accepted_here * 20 < moves {
                break;
            }
        }

        let floorplan = realize(&best, &candidates, self.netlist, self.max_width);
        SlicingResult {
            area: floorplan.chip_area(),
            floorplan,
            expression: best,
            accepted_moves,
            attempted_moves,
            elapsed: started.elapsed(),
        }
    }

    /// Leaf shape candidates per module: both orientations for rotatable
    /// rigid modules, sampled aspect ratios for flexible ones.
    fn leaf_candidates(&self) -> Vec<Vec<(f64, f64)>> {
        self.netlist
            .modules()
            .map(|(_, m)| match *m.shape() {
                Shape::Rigid { w, h } => {
                    if m.rotatable() && (w - h).abs() > 1e-12 {
                        vec![(w, h), (h, w)]
                    } else {
                        vec![(w, h)]
                    }
                }
                Shape::Flexible {
                    area,
                    min_aspect,
                    max_aspect,
                } => {
                    let k = self.soft_samples.max(2);
                    (0..k)
                        .map(|i| {
                            let t = i as f64 / (k - 1) as f64;
                            let aspect = min_aspect * (max_aspect / min_aspect).powf(t);
                            let w = (area * aspect).sqrt();
                            (w, area / w)
                        })
                        .collect()
                }
            })
            .collect()
    }
}

/// Applies one random move (M1/M2/M3 with equal probability).
fn perturb<R: Rng>(p: &mut PolishExpression, rng: &mut R) {
    match rng.gen_range(0..3) {
        0 => p.m1_swap_operands(rng),
        1 => p.m2_complement_chain(rng),
        _ => {
            if !p.m3_swap_operand_operator(rng) {
                p.m1_swap_operands(rng);
            }
        }
    }
}

/// Picks the root shape: the minimum-height point within `max_width` when
/// one exists (fixed-outline mode), otherwise the minimum-area point.
fn root_choice(root: &ShapeCurve, max_width: Option<f64>) -> Option<usize> {
    max_width
        .and_then(|w| root.best_height_within(w))
        .or_else(|| root.best_area())
}

/// Evaluates the expression bottom-up; returns the per-element curves and
/// the area of the chosen root shape.
fn evaluate(
    p: &PolishExpression,
    candidates: &[Vec<(f64, f64)>],
    max_width: Option<f64>,
) -> (Vec<ShapeCurve>, f64) {
    let mut stack: Vec<ShapeCurve> = Vec::new();
    let mut curves: Vec<ShapeCurve> = Vec::with_capacity(p.elements().len());
    for &e in p.elements() {
        let curve = match e {
            Element::Operand(m) => ShapeCurve::leaf(&candidates[m]),
            op => {
                let b = stack.pop().expect("balloting guarantees operands");
                let a = stack.pop().expect("balloting guarantees operands");
                ShapeCurve::combine(&a, &b, op == Element::V)
            }
        };
        stack.push(curve.clone());
        curves.push(curve);
    }
    let root = stack.pop().expect("non-empty expression");
    let area = root_choice(&root, max_width)
        .map(|k| {
            let pt = &root.points()[k];
            let mut a = pt.w * pt.h;
            // Fixed-outline mode with no fitting root shape: realizable
            // (the fallback point is used) but strongly penalized, so the
            // search walks toward trees that fit the outline.
            if max_width.is_some_and(|w| pt.w > w + 1e-9) {
                a *= 4.0;
            }
            a
        })
        .unwrap_or(f64::INFINITY);
    (curves, area)
}

/// Realizes the best expression into a floorplan by walking the curve
/// backpointers top-down.
fn realize(
    p: &PolishExpression,
    candidates: &[Vec<(f64, f64)>],
    netlist: &Netlist,
    max_width: Option<f64>,
) -> Floorplan {
    let (curves, _) = evaluate(p, candidates, max_width);
    let elements = p.elements();
    let root_curve = curves.last().expect("non-empty");
    let chosen = root_choice(root_curve, max_width).expect("non-empty curve");
    let root_pt = root_curve.points()[chosen];

    // Rebuild child indices: for each element, which elements are its
    // children (postfix structure).
    let mut stack: Vec<usize> = Vec::new();
    let mut children: Vec<Option<(usize, usize)>> = vec![None; elements.len()];
    for (i, &e) in elements.iter().enumerate() {
        if e.is_operator() {
            let b = stack.pop().expect("operand available");
            let a = stack.pop().expect("operand available");
            children[i] = Some((a, b));
        }
        stack.push(i);
    }

    let mut placed: Vec<PlacedModule> = Vec::with_capacity(candidates.len());
    // Depth-first placement: (element index, chosen point, origin).
    let mut todo = vec![(elements.len() - 1, chosen, (0.0_f64, 0.0_f64))];
    while let Some((node, choice, (x, y))) = todo.pop() {
        let pt = curves[node].points()[choice];
        match elements[node] {
            Element::Operand(m) => {
                let (w, h) = candidates[m][pt.left];
                let rotated = match netlist.module(ModuleId(m)).shape() {
                    Shape::Rigid { w: w0, h: h0 } => {
                        (w - h0).abs() < 1e-9 && (h - w0).abs() < 1e-9 && (w0 - h0).abs() > 1e-12
                    }
                    Shape::Flexible { .. } => false,
                };
                let rect = Rect::new(x, y, w, h);
                placed.push(PlacedModule {
                    id: ModuleId(m),
                    rect,
                    envelope: rect,
                    rotated,
                });
            }
            op => {
                let (a, b) = children[node].expect("operator has children");
                let pa = curves[a].points()[pt.left];
                if op == Element::V {
                    todo.push((a, pt.left, (x, y)));
                    todo.push((b, pt.right, (x + pa.w, y)));
                } else {
                    todo.push((a, pt.left, (x, y)));
                    todo.push((b, pt.right, (x, y + pa.h)));
                }
            }
        }
    }
    debug_assert!(
        first_overlap(&placed).is_none(),
        "slicing realization produced overlapping modules: {:?}",
        first_overlap(&placed)
    );
    Floorplan::new(root_pt.w, placed)
}

/// Incremental legality audit: inserts each placement into an R-tree and
/// probes for an interior overlap before insertion, so checking a slicing
/// realization costs O(n log n) instead of the all-pairs scan. Returns the
/// first offending pair (probe module second), or `None` when legal.
pub(crate) fn first_overlap(placed: &[PlacedModule]) -> Option<(ModuleId, ModuleId)> {
    let mut tree = RTree::new();
    for (k, p) in placed.iter().enumerate() {
        if tree.any_overlap(&p.envelope, u64::MAX) {
            let hit = tree
                .query(&p.envelope)
                .into_iter()
                .find(|&j| placed[j as usize].envelope.overlaps(&p.envelope))
                .expect("any_overlap implies a concrete overlapping entry");
            return Some((placed[hit as usize].id, p.id));
        }
        tree.insert(k as u64, p.envelope);
    }
    None
}

#[cfg(test)]
mod tests {
    use super::*;
    use fp_netlist::generator::ProblemGenerator;
    use fp_netlist::Module;

    #[test]
    fn perfect_packing_found_on_easy_instance() {
        // Four 2x2 squares: optimal slicing area is 16 (2x2 arrangement),
        // any valid slicing achieves at least... the annealer should find
        // a zero-dead-space packing.
        let mut nl = Netlist::new("t");
        for i in 0..4 {
            nl.add_module(Module::rigid(format!("m{i}"), 2.0, 2.0, false))
                .unwrap();
        }
        let result = SlicingAnnealer::new(&nl).run();
        assert!(result.floorplan.is_valid());
        assert!((result.area - 16.0).abs() < 1e-6, "area {}", result.area);
    }

    #[test]
    fn first_overlap_agrees_with_floorplan_scan() {
        let mk = |id: usize, x: f64, y: f64, w: f64, h: f64| PlacedModule {
            id: ModuleId(id),
            rect: Rect::new(x, y, w, h),
            envelope: Rect::new(x, y, w, h),
            rotated: false,
        };
        // Legal: exact abutments only.
        let legal = vec![
            mk(0, 0.0, 0.0, 2.0, 2.0),
            mk(1, 2.0, 0.0, 2.0, 2.0),
            mk(2, 0.0, 2.0, 4.0, 1.0),
        ];
        assert_eq!(first_overlap(&legal), None);
        // Illegal: module 3 sits on top of module 1's interior.
        let mut bad = legal;
        bad.push(mk(3, 2.5, 0.5, 1.0, 1.0));
        assert_eq!(first_overlap(&bad), Some((ModuleId(1), ModuleId(3))));
        // Annealer output must pass the audit on generated problems.
        for seed in [5u64, 6] {
            let nl = ProblemGenerator::new(12, seed).generate();
            let result = SlicingAnnealer::new(&nl).with_seed(seed).run();
            let placed: Vec<PlacedModule> = result.floorplan.iter().copied().collect();
            assert_eq!(first_overlap(&placed), None);
        }
    }

    #[test]
    fn valid_and_complete_on_generated_problems() {
        for seed in [1u64, 2, 3] {
            let nl = ProblemGenerator::new(9, seed).generate();
            let result = SlicingAnnealer::new(&nl).with_seed(seed).run();
            assert_eq!(result.floorplan.len(), 9);
            assert!(
                result.floorplan.is_valid(),
                "{:?}",
                result.floorplan.violations()
            );
            assert!(result.accepted_moves > 0);
            assert!(result.attempted_moves >= result.accepted_moves);
        }
    }

    #[test]
    fn deterministic_per_seed() {
        let nl = ProblemGenerator::new(7, 4).generate();
        let a = SlicingAnnealer::new(&nl).with_seed(9).run();
        let b = SlicingAnnealer::new(&nl).with_seed(9).run();
        assert_eq!(a.floorplan, b.floorplan);
    }

    #[test]
    fn deterministic_under_a_move_budget() {
        // The portfolio's reproducibility contract: same seed + same
        // deterministic budget ⇒ identical tree, cost, and floorplan,
        // regardless of wall-clock conditions.
        let nl = ProblemGenerator::new(9, 21).generate();
        let run = |budget: usize| {
            SlicingAnnealer::new(&nl)
                .with_seed(5)
                .with_move_budget(budget)
                .run()
        };
        let a = run(400);
        let b = run(400);
        assert_eq!(a.expression, b.expression, "trees differ across runs");
        assert_eq!(a.area.to_bits(), b.area.to_bits(), "costs differ");
        assert_eq!(a.floorplan, b.floorplan);
        assert_eq!(a.attempted_moves, b.attempted_moves);
        assert!(a.attempted_moves <= 400);
        // A different budget is allowed to land elsewhere — the bound cuts
        // the same move sequence at a different point.
        let c = run(80);
        assert!(c.attempted_moves <= 80);
        assert!(c.floorplan.is_valid());
    }

    #[test]
    fn stop_flag_cuts_run_short_with_valid_result() {
        let nl = ProblemGenerator::new(8, 6).generate();
        let stop = StopFlag::new();
        stop.trigger();
        let result = SlicingAnnealer::new(&nl).with_stop(stop).run();
        assert_eq!(result.attempted_moves, 0);
        assert_eq!(result.floorplan.len(), 8);
        assert!(result.floorplan.is_valid());
    }

    #[test]
    fn max_width_constrains_root_shape() {
        // Four 2x2 squares with a width-4 outline: the 2x2 arrangement
        // fits exactly, so the constrained annealer must realize a chip
        // no wider than 4.
        let mut nl = Netlist::new("t");
        for i in 0..4 {
            nl.add_module(Module::rigid(format!("m{i}"), 2.0, 2.0, false))
                .unwrap();
        }
        let result = SlicingAnnealer::new(&nl).with_max_width(Some(4.0)).run();
        assert!(result.floorplan.is_valid());
        assert!(
            result.floorplan.chip_width() <= 4.0 + 1e-9,
            "width {} exceeds the outline",
            result.floorplan.chip_width()
        );
        assert!((result.area - 16.0).abs() < 1e-6, "area {}", result.area);
    }

    #[test]
    fn flexible_modules_keep_exact_area() {
        let nl = ProblemGenerator::new(6, 8)
            .with_flexible_fraction(0.5)
            .generate();
        let result = SlicingAnnealer::new(&nl).run();
        assert!(result.floorplan.is_valid());
        for placed in result.floorplan.iter() {
            let m = nl.module(placed.id);
            if m.is_flexible() {
                assert!((placed.rect.area() - m.area()).abs() < 1e-6);
            }
        }
    }

    #[test]
    fn rotation_recorded() {
        // A 1x6 module in a 6x... context must end up rotated or not, but
        // the flag must agree with the realized dims.
        let mut nl = Netlist::new("t");
        nl.add_module(Module::rigid("a", 6.0, 1.0, true)).unwrap();
        nl.add_module(Module::rigid("b", 6.0, 1.0, true)).unwrap();
        let result = SlicingAnnealer::new(&nl).run();
        for p in result.floorplan.iter() {
            let dims = (p.rect.w, p.rect.h);
            if p.rotated {
                assert_eq!(dims, (1.0, 6.0));
            } else {
                assert_eq!(dims, (6.0, 1.0));
            }
        }
        // Optimal area 12 (stack or row).
        assert!((result.area - 12.0).abs() < 1e-6);
    }

    #[test]
    fn annealer_beats_naive_row() {
        // The initial expression is one long row; annealing must improve
        // the area on a problem with varied heights.
        let nl = ProblemGenerator::new(10, 17).generate();
        let candidates = SlicingAnnealer::new(&nl).leaf_candidates();
        let row = PolishExpression::row(10);
        let (_, row_area) = evaluate(&row, &candidates, None);
        let result = SlicingAnnealer::new(&nl).with_seed(3).run();
        assert!(
            result.area < row_area,
            "annealed {} not better than row {row_area}",
            result.area
        );
    }
}
