//! Normalized Polish expressions (postfix slicing-tree encodings).
//!
//! An expression over `n` operands (module indices) and `n − 1` operators
//! (`H` = horizontal cut, stacking; `V` = vertical cut, side-by-side) is
//! **normalized** when no two consecutive operators are equal (each
//! operator chain alternates), which makes the slicing-tree ↔ expression
//! correspondence one-to-one (Wong & Liu). Validity also requires the
//! balloting property: every prefix has more operands than operators.

use rand::Rng;

/// One element of a Polish expression.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Element {
    /// A module, by index into the annealer's module table.
    Operand(usize),
    /// Horizontal cut: the right subtree is stacked on top of the left.
    H,
    /// Vertical cut: the right subtree is placed to the right of the left.
    V,
}

impl Element {
    /// Whether this is an operator (`H`/`V`).
    #[must_use]
    pub fn is_operator(self) -> bool {
        matches!(self, Element::H | Element::V)
    }
}

/// A normalized Polish expression.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct PolishExpression {
    elements: Vec<Element>,
}

impl PolishExpression {
    /// The initial expression `0 1 V 2 V … (n−1) V` — all modules in one
    /// row (alternation is trivially satisfied since `V` chains hang off
    /// different tree levels; per Wong & Liu, `12V3V…` is normalized).
    ///
    /// # Panics
    ///
    /// Panics if `n == 0`.
    #[must_use]
    pub fn row(n: usize) -> Self {
        assert!(n > 0, "need at least one module");
        let mut elements = vec![Element::Operand(0)];
        for k in 1..n {
            elements.push(Element::Operand(k));
            elements.push(if k % 2 == 0 { Element::H } else { Element::V });
        }
        PolishExpression { elements }
    }

    /// The elements in postfix order.
    #[must_use]
    pub fn elements(&self) -> &[Element] {
        &self.elements
    }

    /// Number of operands.
    #[must_use]
    pub fn num_operands(&self) -> usize {
        self.elements.iter().filter(|e| !e.is_operator()).count()
    }

    /// Checks the two invariants: balloting (every prefix has more
    /// operands than operators) and normalization (no two equal adjacent
    /// operators).
    #[must_use]
    pub fn is_valid(&self) -> bool {
        let mut operands = 0usize;
        let mut operators = 0usize;
        let mut prev_op: Option<Element> = None;
        for &e in &self.elements {
            if e.is_operator() {
                operators += 1;
                if operators >= operands {
                    return false;
                }
                if prev_op == Some(e) {
                    return false;
                }
                prev_op = Some(e);
            } else {
                operands += 1;
                prev_op = None;
            }
        }
        operands == operators + 1
    }

    /// Move **M1**: swap two adjacent operands (adjacent in operand order,
    /// ignoring operators in between). Always preserves validity.
    pub fn m1_swap_operands<R: Rng>(&mut self, rng: &mut R) {
        let idxs: Vec<usize> = self
            .elements
            .iter()
            .enumerate()
            .filter(|(_, e)| !e.is_operator())
            .map(|(i, _)| i)
            .collect();
        if idxs.len() < 2 {
            return;
        }
        let k = rng.gen_range(0..idxs.len() - 1);
        self.elements.swap(idxs[k], idxs[k + 1]);
    }

    /// Move **M2**: complement a random maximal operator chain
    /// (`H` ↔ `V`). Always preserves validity and normalization.
    pub fn m2_complement_chain<R: Rng>(&mut self, rng: &mut R) {
        let mut chains: Vec<(usize, usize)> = Vec::new();
        let mut start: Option<usize> = None;
        for (i, e) in self.elements.iter().enumerate() {
            if e.is_operator() {
                if start.is_none() {
                    start = Some(i);
                }
            } else if let Some(s) = start.take() {
                chains.push((s, i));
            }
        }
        if let Some(s) = start {
            chains.push((s, self.elements.len()));
        }
        if chains.is_empty() {
            return;
        }
        let (s, e) = chains[rng.gen_range(0..chains.len())];
        for el in &mut self.elements[s..e] {
            *el = match *el {
                Element::H => Element::V,
                Element::V => Element::H,
                other => other,
            };
        }
    }

    /// Move **M3**: swap a random adjacent operand–operator pair, rejecting
    /// swaps that would break balloting or normalization. Returns whether a
    /// swap happened.
    pub fn m3_swap_operand_operator<R: Rng>(&mut self, rng: &mut R) -> bool {
        let n = self.elements.len();
        let candidates: Vec<usize> = (0..n - 1)
            .filter(|&i| self.elements[i].is_operator() != self.elements[i + 1].is_operator())
            .collect();
        if candidates.is_empty() {
            return false;
        }
        // Try a few random candidates before giving up.
        for _ in 0..4 {
            let i = candidates[rng.gen_range(0..candidates.len())];
            self.elements.swap(i, i + 1);
            if self.is_valid() {
                return true;
            }
            self.elements.swap(i, i + 1); // revert
        }
        false
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn row_is_valid() {
        for n in 1..8 {
            let p = PolishExpression::row(n);
            assert!(p.is_valid(), "row({n}) invalid: {:?}", p.elements());
            assert_eq!(p.num_operands(), n);
        }
    }

    #[test]
    fn validity_checker_catches_breakage() {
        // operands == operators + 1 violated
        let bad = PolishExpression {
            elements: vec![Element::Operand(0), Element::H],
        };
        assert!(!bad.is_valid());
        // balloting violated
        let bad = PolishExpression {
            elements: vec![
                Element::Operand(0),
                Element::H,
                Element::Operand(1),
                Element::Operand(2),
                Element::V,
            ],
        };
        assert!(!bad.is_valid());
        // normalization violated (two adjacent identical operators)
        let bad = PolishExpression {
            elements: vec![
                Element::Operand(0),
                Element::Operand(1),
                Element::Operand(2),
                Element::V,
                Element::V,
            ],
        };
        assert!(!bad.is_valid());
    }

    #[test]
    fn moves_preserve_validity() {
        let mut rng = StdRng::seed_from_u64(5);
        let mut p = PolishExpression::row(7);
        for step in 0..500 {
            match step % 3 {
                0 => p.m1_swap_operands(&mut rng),
                1 => p.m2_complement_chain(&mut rng),
                _ => {
                    let _ = p.m3_swap_operand_operator(&mut rng);
                }
            }
            assert!(
                p.is_valid(),
                "invalid after step {step}: {:?}",
                p.elements()
            );
            assert_eq!(p.num_operands(), 7);
        }
    }

    #[test]
    fn m1_swaps_only_operands() {
        let mut rng = StdRng::seed_from_u64(1);
        let mut p = PolishExpression::row(4);
        let ops_before: Vec<Element> = p
            .elements()
            .iter()
            .copied()
            .filter(|e| e.is_operator())
            .collect();
        p.m1_swap_operands(&mut rng);
        let ops_after: Vec<Element> = p
            .elements()
            .iter()
            .copied()
            .filter(|e| e.is_operator())
            .collect();
        assert_eq!(ops_before, ops_after);
    }

    #[test]
    fn m2_flips_operators() {
        let mut rng = StdRng::seed_from_u64(2);
        let mut p = PolishExpression::row(3);
        let count_v =
            |p: &PolishExpression| p.elements().iter().filter(|&&e| e == Element::V).count();
        let before = count_v(&p);
        p.m2_complement_chain(&mut rng);
        assert_ne!(count_v(&p), before);
    }
}
