//! Shape curves: Pareto-minimal `(w, h)` realizations of slicing subtrees.

/// One realizable shape of a subtree, with backpointers for reconstruction.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ShapePoint {
    /// Width of this realization.
    pub w: f64,
    /// Height of this realization.
    pub h: f64,
    /// Index of the left child's chosen point (leaf: candidate index).
    pub left: usize,
    /// Index of the right child's chosen point (leaf: unused, 0).
    pub right: usize,
}

/// A Pareto-minimal list of shapes, sorted by increasing width (and hence
/// strictly decreasing height).
#[derive(Debug, Clone, PartialEq, Default)]
pub struct ShapeCurve {
    points: Vec<ShapePoint>,
}

impl ShapeCurve {
    /// Builds a leaf curve from raw candidates `(w, h)`; the candidate
    /// index is preserved in `left` for reconstruction.
    #[must_use]
    pub fn leaf(candidates: &[(f64, f64)]) -> Self {
        let pts = candidates
            .iter()
            .enumerate()
            .map(|(k, &(w, h))| ShapePoint {
                w,
                h,
                left: k,
                right: 0,
            })
            .collect();
        ShapeCurve { points: pts }.pruned()
    }

    /// Combines two child curves under a cut: `vertical` ⇒ widths add,
    /// heights max (children side by side); otherwise heights add, widths
    /// max (children stacked).
    #[must_use]
    pub fn combine(a: &ShapeCurve, b: &ShapeCurve, vertical: bool) -> Self {
        let mut pts = Vec::with_capacity(a.points.len() * b.points.len());
        for (ia, pa) in a.points.iter().enumerate() {
            for (ib, pb) in b.points.iter().enumerate() {
                let (w, h) = if vertical {
                    (pa.w + pb.w, pa.h.max(pb.h))
                } else {
                    (pa.w.max(pb.w), pa.h + pb.h)
                };
                pts.push(ShapePoint {
                    w,
                    h,
                    left: ia,
                    right: ib,
                });
            }
        }
        ShapeCurve { points: pts }.pruned()
    }

    /// The Pareto points, sorted by width.
    #[must_use]
    pub fn points(&self) -> &[ShapePoint] {
        &self.points
    }

    /// Whether the curve has no realizations.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.points.is_empty()
    }

    /// The index of the minimum-area point.
    #[must_use]
    pub fn best_area(&self) -> Option<usize> {
        (0..self.points.len()).min_by(|&a, &b| {
            let pa = &self.points[a];
            let pb = &self.points[b];
            (pa.w * pa.h).total_cmp(&(pb.w * pb.h))
        })
    }

    /// The index of the minimum-height point with `w <= max_width`, if any.
    #[must_use]
    pub fn best_height_within(&self, max_width: f64) -> Option<usize> {
        (0..self.points.len())
            .filter(|&k| self.points[k].w <= max_width + 1e-9)
            .min_by(|&a, &b| self.points[a].h.total_cmp(&self.points[b].h))
    }

    fn pruned(mut self) -> Self {
        self.points
            .sort_by(|a, b| a.w.total_cmp(&b.w).then(a.h.total_cmp(&b.h)));
        let mut kept: Vec<ShapePoint> = Vec::with_capacity(self.points.len());
        for p in self.points.drain(..) {
            if kept.last().is_some_and(|last| p.h >= last.h - 1e-12) {
                continue; // dominated: wider and not lower
            }
            kept.push(p);
        }
        self.points = kept;
        self
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn leaf_prunes_dominated() {
        // (3,3) dominates (4,3) and (3,4).
        let c = ShapeCurve::leaf(&[(4.0, 3.0), (3.0, 3.0), (3.0, 4.0), (2.0, 6.0)]);
        let ws: Vec<f64> = c.points().iter().map(|p| p.w).collect();
        assert_eq!(ws, vec![2.0, 3.0]);
        // Heights strictly decrease with width.
        let hs: Vec<f64> = c.points().iter().map(|p| p.h).collect();
        assert!(hs.windows(2).all(|w| w[0] > w[1]));
    }

    #[test]
    fn combine_vertical_and_horizontal() {
        let a = ShapeCurve::leaf(&[(2.0, 4.0), (4.0, 2.0)]);
        let b = ShapeCurve::leaf(&[(3.0, 3.0)]);
        let v = ShapeCurve::combine(&a, &b, true);
        // (2+3, max(4,3)) = (5,4); (4+3, max(2,3)) = (7,3).
        assert_eq!(v.points().len(), 2);
        assert_eq!((v.points()[0].w, v.points()[0].h), (5.0, 4.0));
        assert_eq!((v.points()[1].w, v.points()[1].h), (7.0, 3.0));
        let h = ShapeCurve::combine(&a, &b, false);
        // (max(2,3), 4+3) = (3,7); (max(4,3), 2+3) = (4,5).
        assert_eq!((h.points()[0].w, h.points()[0].h), (3.0, 7.0));
        assert_eq!((h.points()[1].w, h.points()[1].h), (4.0, 5.0));
    }

    #[test]
    fn best_selectors() {
        let c = ShapeCurve::leaf(&[(2.0, 9.0), (3.0, 5.0), (6.0, 2.0)]);
        assert_eq!(c.best_area(), Some(2)); // 12 < 15 < 18
        assert_eq!(c.best_height_within(4.0), Some(1));
        assert_eq!(c.best_height_within(1.0), None);
    }

    #[test]
    fn backpointers_identify_choices() {
        let a = ShapeCurve::leaf(&[(1.0, 5.0), (5.0, 1.0)]);
        let b = ShapeCurve::leaf(&[(2.0, 2.0)]);
        let v = ShapeCurve::combine(&a, &b, true);
        for p in v.points() {
            assert!(p.left < a.points().len());
            assert!(p.right < b.points().len());
        }
    }

    #[test]
    fn empty_curve() {
        let c = ShapeCurve::leaf(&[]);
        assert!(c.is_empty());
        assert_eq!(c.best_area(), None);
    }
}
