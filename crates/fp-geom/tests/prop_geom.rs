//! Property tests for the geometric substrate, centered on the covering
//! decomposition contracts (paper §3.1, Theorems 1–2).

use fp_geom::covering::{
    covering_rectangles, covers_all, horizontal_edge_cuts, pairwise_disjoint, skyline_runs,
};
use fp_geom::{union_area, Contour, Rect, Skyline};
use proptest::prelude::*;

/// Generates a "supported" placement the way the augmentation procedure
/// does: each module is dropped bottom-left onto the current skyline, so
/// every module rests on the chip bottom or on other modules — the
/// precondition of the paper's Theorem 1.
fn supported_placement() -> impl Strategy<Value = Vec<Rect>> {
    proptest::collection::vec((1.0f64..6.0, 1.0f64..6.0), 1..12).prop_map(|dims| {
        let chip_w = 14.0;
        let mut placed: Vec<Rect> = Vec::new();
        for (w, h) in dims {
            let sky = Skyline::from_rects(&placed);
            let (x, y) = sky
                .drop_position(w, chip_w)
                .expect("modules are narrower than the chip");
            placed.push(Rect::new(x, y, w, h));
        }
        placed
    })
}

/// Arbitrary rectangles with non-negative y (modules never go below the
/// chip bottom), possibly overlapping, floating, with gaps.
fn arbitrary_rects() -> impl Strategy<Value = Vec<Rect>> {
    proptest::collection::vec(
        (0.0f64..20.0, 0.0f64..10.0, 0.5f64..5.0, 0.5f64..5.0),
        1..10,
    )
    .prop_map(|v| {
        v.into_iter()
            .map(|(x, y, w, h)| Rect::new(x, y, w, h))
            .collect()
    })
}

proptest! {
    /// Corollary of Theorems 1-2: on supported placements the covering
    /// count never exceeds the module count.
    #[test]
    fn cover_count_bounded_by_module_count(placed in supported_placement()) {
        let covers = covering_rectangles(&placed);
        prop_assert!(covers.len() <= placed.len(),
            "N* = {} > N = {}", covers.len(), placed.len());
    }

    /// Safety contract: the covers fully cover every placed module, for
    /// both decompositions, even on arbitrary (unsupported) inputs.
    #[test]
    fn covers_are_safe_obstacles(rects in arbitrary_rects()) {
        let h = horizontal_edge_cuts(&rects);
        let v = skyline_runs(&rects);
        prop_assert!(covers_all(&h, &rects));
        prop_assert!(covers_all(&v, &rects));
    }

    /// Partition contract: covers never overlap each other.
    #[test]
    fn covers_are_disjoint(rects in arbitrary_rects()) {
        prop_assert!(pairwise_disjoint(&horizontal_edge_cuts(&rects)));
        prop_assert!(pairwise_disjoint(&skyline_runs(&rects)));
    }

    /// Both decompositions tile the same region: their total areas agree
    /// and equal the area under the skyline.
    #[test]
    fn decompositions_tile_same_region(rects in arbitrary_rects()) {
        let h: f64 = horizontal_edge_cuts(&rects).iter().map(Rect::area).sum();
        let v: f64 = skyline_runs(&rects).iter().map(Rect::area).sum();
        let sky: f64 = Skyline::from_rects(&rects)
            .segments()
            .map(|(x0, x1, hh)| (x1 - x0) * hh)
            .sum();
        prop_assert!((h - sky).abs() < 1e-6 * (1.0 + sky), "h {h} vs sky {sky}");
        prop_assert!((v - sky).abs() < 1e-6 * (1.0 + sky), "v {v} vs sky {sky}");
    }

    /// Supported drops never overlap: the bottom-left placer is sound, and
    /// union area equals the sum of areas.
    #[test]
    fn supported_placements_do_not_overlap(placed in supported_placement()) {
        for (i, a) in placed.iter().enumerate() {
            for b in &placed[i + 1..] {
                prop_assert!(!a.overlaps(b), "{a} overlaps {b}");
            }
        }
        let total: f64 = placed.iter().map(Rect::area).sum();
        let union = union_area(&placed);
        prop_assert!((total - union).abs() < 1e-6 * (1.0 + total));
    }

    /// Union area is monotone and bounded by the bounding box.
    #[test]
    fn union_area_bounds(rects in arbitrary_rects()) {
        let u = union_area(&rects);
        let max_single = rects.iter().map(Rect::area).fold(0.0, f64::max);
        let sum: f64 = rects.iter().map(Rect::area).sum();
        let bbox = Rect::bounding(&rects).map_or(0.0, |b| b.area());
        prop_assert!(u >= max_single - 1e-9);
        prop_assert!(u <= sum + 1e-9);
        prop_assert!(u <= bbox + 1e-9);
    }

    /// `drop_position` finds the lowest possible support height (verified
    /// against a brute-force scan over a fine x grid).
    #[test]
    fn drop_position_is_optimal(
        rects in arbitrary_rects(),
        w in 0.5f64..6.0,
    ) {
        let chip_w = 26.0;
        let sky = Skyline::from_rects(&rects);
        let Some((_, y)) = sky.drop_position(w, chip_w) else {
            return Err(TestCaseError::fail("width always fits the 26-wide chip"));
        };
        // Brute force: support height at many x positions.
        let mut best = f64::INFINITY;
        let steps = 500;
        for k in 0..=steps {
            let x = (chip_w - w) * k as f64 / steps as f64;
            let support = sky
                .segments()
                .filter(|&(x0, x1, _)| x0 < x + w - 1e-9 && x1 > x + 1e-9)
                .map(|(_, _, h)| h)
                .fold(0.0, f64::max);
            best = best.min(support);
        }
        prop_assert!(y <= best + 1e-6, "drop y = {y} worse than brute force {best}");
    }

    /// Theorem 1 on supported placements: the covering polygon has at most
    /// N + 1 horizontal edges; its area equals the skyline area.
    #[test]
    fn contour_theorem1_and_area(placed in supported_placement()) {
        let contour = Contour::from_rects(&placed).expect("non-empty placement");
        prop_assert!(
            contour.horizontal_edges() <= placed.len() + 1,
            "n = {} > N + 1 = {}",
            contour.horizontal_edges(),
            placed.len() + 1
        );
        let sky_area: f64 = Skyline::from_rects(&placed)
            .segments()
            .map(|(x0, x1, h)| (x1 - x0) * h)
            .sum();
        prop_assert!((contour.area() - sky_area).abs() < 1e-6 * (1.0 + sky_area));
        // The contour covers every module (it is the covering polygon).
        let total: f64 = placed.iter().map(Rect::area).sum();
        prop_assert!(contour.area() >= total - 1e-6 * (1.0 + total));
    }

    /// Skyline height at any x equals the max top of rectangles covering x.
    #[test]
    fn skyline_matches_pointwise_max(rects in arbitrary_rects(), px in 0.0f64..25.0) {
        // Rectangles in this strategy all have y >= 0; the skyline measures
        // height from 0, so compare against tops of covering rects.
        let sky = Skyline::from_rects(&rects);
        let expect = rects
            .iter()
            .filter(|r| r.x <= px + 1e-9 && px < r.right() - 1e-9)
            .map(|r| r.top())
            .fold(0.0, f64::max);
        let got = sky.height_at(px);
        prop_assert!((got - expect).abs() < 1e-6,
            "height_at({px}) = {got}, expected {expect}");
    }
}
