//! Property/differential tests for the spatial-indexing layer: R-tree
//! insert/remove/query against a brute-force scan, and sweep-line union
//! area against the `O(n³)` compressed-grid oracle — including touching
//! edges and GEOM_EPS-degenerate inputs.

use fp_geom::{union_area, union_area_oracle, RTree, Rect, Skyline, GEOM_EPS};
use proptest::prelude::*;

/// Rectangles on a quarter-unit grid, so exact abutments (shared edges)
/// occur constantly.
fn grid_rects() -> impl Strategy<Value = Vec<Rect>> {
    proptest::collection::vec((0u32..60, 0u32..40, 1u32..16, 1u32..16), 1..40).prop_map(|v| {
        v.into_iter()
            .map(|(x, y, w, h)| {
                Rect::new(
                    f64::from(x) * 0.25,
                    f64::from(y) * 0.25,
                    f64::from(w) * 0.25,
                    f64::from(h) * 0.25,
                )
            })
            .collect()
    })
}

/// Rectangles with arbitrary float coordinates, a fraction of them
/// degenerate (width or height at or below GEOM_EPS).
fn messy_rects() -> impl Strategy<Value = Vec<Rect>> {
    let normal = || {
        (0.0f64..20.0, 0.0f64..12.0, 0.01f64..6.0, 0.01f64..6.0)
            .prop_map(|(x, y, w, h)| Rect::new(x, y, w, h))
            .boxed()
    };
    let degenerate = (0.0f64..20.0, 0.0f64..12.0, 0.0f64..2.0)
        .prop_map(|(x, y, l)| Rect::new(x, y, GEOM_EPS / 2.0, l))
        .boxed();
    // Weight 4:1 toward normal rects by repeating the variant.
    proptest::collection::vec(
        proptest::strategy::Union::new(vec![normal(), normal(), normal(), normal(), degenerate]),
        1..30,
    )
}

fn brute_query(entries: &[(u64, Rect)], region: &Rect) -> Vec<u64> {
    let mut out: Vec<u64> = entries
        .iter()
        .filter(|(_, r)| r.overlaps(region))
        .map(|&(id, _)| id)
        .collect();
    out.sort_unstable();
    out
}

proptest! {
    /// R-tree query equals a brute-force scan after any interleaving of
    /// inserts and removes, on grids dense with touching edges.
    #[test]
    fn rtree_matches_brute_force(
        rects in grid_rects(),
        removals in proptest::collection::vec(0usize..40, 0..20),
        probe in (0u32..60, 0u32..40, 1u32..20, 1u32..20),
    ) {
        let mut tree = RTree::new();
        let mut entries: Vec<(u64, Rect)> = Vec::new();
        for (k, r) in rects.iter().enumerate() {
            tree.insert(k as u64, *r);
            entries.push((k as u64, *r));
        }
        for &victim in &removals {
            let id = victim as u64;
            let present = entries.iter().any(|&(e, _)| e == id);
            prop_assert_eq!(tree.remove(id), present);
            entries.retain(|&(e, _)| e != id);
        }
        prop_assert_eq!(tree.len(), entries.len());
        let region = Rect::new(
            f64::from(probe.0) * 0.25,
            f64::from(probe.1) * 0.25,
            f64::from(probe.2) * 0.25,
            f64::from(probe.3) * 0.25,
        );
        prop_assert_eq!(tree.query(&region), brute_query(&entries, &region));
        prop_assert_eq!(
            tree.any_overlap(&region, u64::MAX),
            !brute_query(&entries, &region).is_empty()
        );
    }

    /// Identical overlap verdicts on every stored rect probed against the
    /// rest — the legality-check pattern used by the placement drivers.
    #[test]
    fn rtree_overlap_verdicts_match_pairwise_scan(rects in grid_rects()) {
        let tree = RTree::from_entries(
            rects.iter().enumerate().map(|(k, r)| (k as u64, *r)),
        );
        for (i, r) in rects.iter().enumerate() {
            let brute = rects
                .iter()
                .enumerate()
                .any(|(j, other)| j != i && other.overlaps(r));
            prop_assert_eq!(tree.any_overlap(r, i as u64), brute, "module {}", i);
        }
    }

    /// Sweep-line union area equals the O(n³) oracle on touching-edge
    /// grids (exactly) ...
    #[test]
    fn sweep_union_matches_oracle_on_grids(rects in grid_rects()) {
        let sweep = union_area(&rects);
        let oracle = union_area_oracle(&rects);
        prop_assert!((sweep - oracle).abs() <= 1e-9 * (1.0 + oracle),
            "sweep {sweep} vs oracle {oracle}");
    }

    /// ... and within GEOM_EPS-scale tolerance on messy float inputs with
    /// degenerate slivers (the oracle merges coordinates within GEOM_EPS;
    /// the sweep is exact).
    #[test]
    fn sweep_union_matches_oracle_on_messy_inputs(rects in messy_rects()) {
        let sweep = union_area(&rects);
        let oracle = union_area_oracle(&rects);
        // Each merged coordinate can shift the oracle by eps × extent.
        let extent = Rect::bounding(&rects).map_or(0.0, |b| b.w + b.h);
        let tol = 1e-9 + 4.0 * GEOM_EPS * extent * rects.len() as f64;
        prop_assert!((sweep - oracle).abs() <= tol,
            "sweep {sweep} vs oracle {oracle} (tol {tol})");
    }

    /// Incrementally grown skylines agree with batch builds on arbitrary
    /// (floating, overlapping) rectangle sets.
    #[test]
    fn incremental_skyline_matches_batch(rects in grid_rects()) {
        let mut sky = Skyline::new();
        for r in &rects {
            sky.add_rect(r);
        }
        let batch = Skyline::from_rects(&rects);
        let a: Vec<_> = sky.segments().collect();
        let b: Vec<_> = batch.segments().collect();
        prop_assert_eq!(a.len(), b.len(), "{:?} vs {:?}", sky, batch);
        for ((x0, x1, h), (y0, y1, g)) in a.iter().zip(&b) {
            prop_assert!((x0 - y0).abs() <= 1e-9);
            prop_assert!((x1 - y1).abs() <= 1e-9);
            prop_assert!((h - g).abs() <= 1e-9);
        }
    }
}
