//! Uniform bin grid over points, for neighbor-pair pruning.
//!
//! The analytic placer's bell overlap kernel has *compact support*: the
//! pair `(i, j)` contributes exactly zero unless `|cx_i − cx_j| <
//! (w_i + w_j)/2` **and** `|cy_i − cy_j| < (h_i + h_j)/2`. With cell size
//! at least the maximum module width and height, every pair within the
//! kernel's support satisfies `|cx_i − cx_j| ≤ (w_i + w_j)/2 ≤ w_max ≤
//! cell` (and likewise in y), so both centers fall in the same cell or in
//! adjacent cells. Scanning each point's 3×3 cell neighborhood therefore
//! visits **every** pair the all-pairs loop would have scored non-zero —
//! the pruning is exact, not approximate.

/// A uniform grid bucketing point indices (`u32`) by cell.
///
/// Built fresh per use (`O(n)`); iteration order inside each bin is the
/// insertion order of [`BinGrid::build`]'s input, so results are
/// deterministic for a fixed input order.
///
/// ```
/// use fp_geom::BinGrid;
/// let pts = [(0.0, 0.0), (0.5, 0.5), (10.0, 10.0)];
/// let grid = BinGrid::build(pts.iter().copied(), 1.0);
/// let mut near_origin = Vec::new();
/// grid.for_each_neighbor(0.0, 0.0, |j| near_origin.push(j));
/// assert_eq!(near_origin, vec![0, 1]); // the far point is pruned
/// ```
#[derive(Debug, Clone)]
pub struct BinGrid {
    cell_x: f64,
    cell_y: f64,
    min_x: f64,
    min_y: f64,
    nx: usize,
    ny: usize,
    /// CSR layout: `items[starts[c]..starts[c + 1]]` are the point indices
    /// in cell `c`, in input order.
    starts: Vec<u32>,
    items: Vec<u32>,
}

impl BinGrid {
    /// Buckets `points` into square cells of side `cell` (clamped to a
    /// small positive minimum so degenerate inputs stay finite).
    #[must_use]
    pub fn build(points: impl IntoIterator<Item = (f64, f64)> + Clone, cell: f64) -> Self {
        Self::build_xy(points, cell, cell)
    }

    /// Like [`BinGrid::build`] with separate cell extents per axis — the
    /// kernel's support is `w_max × h_max`, so rectangular cells prune
    /// tighter when modules are wide-and-flat or tall-and-thin.
    #[must_use]
    pub fn build_xy(
        points: impl IntoIterator<Item = (f64, f64)> + Clone,
        cell_x: f64,
        cell_y: f64,
    ) -> Self {
        let mut min_x = f64::INFINITY;
        let mut min_y = f64::INFINITY;
        let mut max_x = f64::NEG_INFINITY;
        let mut max_y = f64::NEG_INFINITY;
        for (x, y) in points.clone() {
            min_x = min_x.min(x);
            min_y = min_y.min(y);
            max_x = max_x.max(x);
            max_y = max_y.max(y);
        }
        Self::build_xy_bounded(points, cell_x, cell_y, (min_x, min_y, max_x, max_y))
    }

    /// Like [`BinGrid::build_xy`] with the points' bounding box
    /// precomputed by the caller (who often already has it from a prior
    /// pass) — skips the builder's own min/max pass, leaving one counting
    /// and one filling pass. `bounds` is `(min_x, min_y, max_x, max_y)`;
    /// an inverted box means "no points". Points outside the box stay
    /// *correct* — they clamp to boundary cells, which window clamping in
    /// [`BinGrid::for_each_run_in_window`] still reaches — the box only
    /// shapes cell occupancy.
    #[must_use]
    pub fn build_xy_bounded(
        points: impl IntoIterator<Item = (f64, f64)> + Clone,
        cell_x: f64,
        cell_y: f64,
        bounds: (f64, f64, f64, f64),
    ) -> Self {
        let mut grid = BinGrid {
            cell_x: 1.0,
            cell_y: 1.0,
            min_x: 0.0,
            min_y: 0.0,
            nx: 0,
            ny: 0,
            starts: vec![0],
            items: Vec::new(),
        };
        grid.rebuild_xy_bounded(points, cell_x, cell_y, bounds);
        grid
    }

    /// [`BinGrid::build_xy_bounded`] in place, reusing the CSR
    /// allocations — the analytic descent re-bins every evaluation, so
    /// the steady-state cost is two passes over the points with zero
    /// allocator traffic.
    pub fn rebuild_xy_bounded(
        &mut self,
        points: impl IntoIterator<Item = (f64, f64)> + Clone,
        cell_x: f64,
        cell_y: f64,
        bounds: (f64, f64, f64, f64),
    ) {
        let cell_x = cell_x.max(1e-9);
        let cell_y = cell_y.max(1e-9);
        let (min_x, min_y, max_x, max_y) = bounds;
        self.cell_x = cell_x;
        self.cell_y = cell_y;
        self.min_x = min_x;
        self.min_y = min_y;
        self.items.clear();
        self.starts.clear();
        if max_x < min_x || max_y < min_y {
            self.min_x = 0.0;
            self.min_y = 0.0;
            self.nx = 0;
            self.ny = 0;
            self.starts.push(0);
            return;
        }
        let nx = (((max_x - min_x) / cell_x).floor() as usize) + 1;
        let ny = (((max_y - min_y) / cell_y).floor() as usize) + 1;
        self.nx = nx;
        self.ny = ny;
        // Counting sort into CSR: one pass to size the bins, one to fill.
        let cells = nx * ny;
        self.starts.resize(cells + 1, 0);
        let cell_of = |x: f64, y: f64| -> usize {
            let cx = (((x - min_x) / cell_x).floor() as usize).min(nx - 1);
            let cy = (((y - min_y) / cell_y).floor() as usize).min(ny - 1);
            cy * nx + cx
        };
        for (x, y) in points.clone() {
            self.starts[cell_of(x, y) + 1] += 1;
        }
        for c in 0..cells {
            self.starts[c + 1] += self.starts[c];
        }
        let n = self.starts[cells] as usize;
        self.items.resize(n, 0);
        // Fill using `starts[c]` as the write cursor for cell `c`: the
        // exclusive prefix sums advance to each cell's *end* offset, so
        // one rotate restores the start offsets afterwards — no separate
        // cursor array to allocate.
        for (idx, (x, y)) in points.into_iter().enumerate() {
            let c = cell_of(x, y);
            self.items[self.starts[c] as usize] = u32::try_from(idx).expect("point count fits u32");
            self.starts[c] += 1;
        }
        self.starts.rotate_right(1);
        self.starts[0] = 0;
    }

    /// Number of bucketed points.
    #[must_use]
    pub fn len(&self) -> usize {
        self.items.len()
    }

    /// Whether the grid holds no points.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.items.is_empty()
    }

    /// The bucketed point indices in CSR order: each cell's run is
    /// contiguous, cells laid out row-major bottom-to-top. Pair with
    /// [`BinGrid::for_each_run_in_window`] to get the per-row ranges —
    /// callers that reorder point payloads into this layout get sequential
    /// scans instead of random indexing.
    #[must_use]
    pub fn items(&self) -> &[u32] {
        &self.items
    }

    /// Calls `f(range)` once per non-empty grid row intersecting the
    /// closed window `[x0, x1] × [y0, y1]`, where `range` indexes
    /// [`BinGrid::items`] and covers that row's window cells as one
    /// contiguous CSR run — cells within a row are adjacent in memory, so
    /// empty cells in the span cost nothing and every callback is a
    /// single sequential scan. Rows scan bottom-to-top (deterministic).
    /// Unlike the fixed 3×3 scan of [`BinGrid::for_each_neighbor`], the
    /// window — and therefore the slice of the grid touched — is the
    /// caller's: per-query radii prune tighter when point extents are
    /// heterogeneous.
    pub fn for_each_run_in_window(
        &self,
        x0: f64,
        y0: f64,
        x1: f64,
        y1: f64,
        mut f: impl FnMut(std::ops::Range<usize>),
    ) {
        if self.items.is_empty() || x1 < x0 || y1 < y0 {
            return;
        }
        let clamp_x = |x: f64| {
            (((x - self.min_x) / self.cell_x).floor() as isize).clamp(0, self.nx as isize - 1)
                as usize
        };
        let clamp_y = |y: f64| {
            (((y - self.min_y) / self.cell_y).floor() as isize).clamp(0, self.ny as isize - 1)
                as usize
        };
        let (cx0, cx1) = (clamp_x(x0), clamp_x(x1));
        let (cy0, cy1) = (clamp_y(y0), clamp_y(y1));
        for gy in cy0..=cy1 {
            let row = gy * self.nx;
            let lo = self.starts[row + cx0] as usize;
            let hi = self.starts[row + cx1 + 1] as usize;
            if lo < hi {
                f(lo..hi);
            }
        }
    }

    /// Calls `f(j)` for every point index in the 3×3 cell neighborhood of
    /// `(x, y)`, scanning cells bottom-to-top then left-to-right and each
    /// cell in input order (deterministic).
    pub fn for_each_neighbor(&self, x: f64, y: f64, mut f: impl FnMut(u32)) {
        if self.items.is_empty() {
            return;
        }
        let cx = (((x - self.min_x) / self.cell_x).floor() as isize).clamp(0, self.nx as isize - 1);
        let cy = (((y - self.min_y) / self.cell_y).floor() as isize).clamp(0, self.ny as isize - 1);
        for gy in (cy - 1).max(0)..=(cy + 1).min(self.ny as isize - 1) {
            for gx in (cx - 1).max(0)..=(cx + 1).min(self.nx as isize - 1) {
                let c = gy as usize * self.nx + gx as usize;
                let lo = self.starts[c] as usize;
                let hi = self.starts[c + 1] as usize;
                for &j in &self.items[lo..hi] {
                    f(j);
                }
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn empty_grid() {
        let grid = BinGrid::build(std::iter::empty(), 1.0);
        assert!(grid.is_empty());
        let mut called = false;
        grid.for_each_neighbor(0.0, 0.0, |_| called = true);
        assert!(!called);
    }

    #[test]
    fn neighborhood_covers_all_pairs_within_cell_distance() {
        // Any two points closer than `cell` in both axes must see each
        // other through a 3×3 scan — the compact-support guarantee.
        let cell = 2.0;
        let pts: Vec<(f64, f64)> = (0..40)
            .map(|k| {
                let k = k as f64;
                ((k * 0.73) % 11.0, (k * 1.31) % 7.0)
            })
            .collect();
        let grid = BinGrid::build(pts.iter().copied(), cell);
        assert_eq!(grid.len(), 40);
        for i in 0..pts.len() {
            let mut seen = Vec::new();
            grid.for_each_neighbor(pts[i].0, pts[i].1, |j| seen.push(j as usize));
            for (j, p) in pts.iter().enumerate() {
                let close = (p.0 - pts[i].0).abs() < cell && (p.1 - pts[i].1).abs() < cell;
                assert!(
                    !close || seen.contains(&j),
                    "pair ({i}, {j}) within cell distance but pruned"
                );
            }
            assert!(seen.contains(&i), "a point must see itself");
        }
    }

    #[test]
    fn window_runs_cover_exactly_the_window_cells() {
        let pts: Vec<(f64, f64)> = (0..30)
            .map(|k| {
                let k = k as f64;
                ((k * 1.7) % 9.0, (k * 2.3) % 9.0)
            })
            .collect();
        let grid = BinGrid::build(pts.iter().copied(), 1.5);
        // Every point recovered through its own zero-radius window.
        for (i, &(x, y)) in pts.iter().enumerate() {
            let mut seen = Vec::new();
            grid.for_each_run_in_window(x, y, x, y, |r| {
                seen.extend(grid.items()[r].iter().map(|&j| j as usize));
            });
            assert!(seen.contains(&i), "point {i} missing from its own cell");
        }
        // A window spanning everything yields each point exactly once.
        let mut all = Vec::new();
        grid.for_each_run_in_window(-100.0, -100.0, 100.0, 100.0, |r| {
            all.extend(grid.items()[r].iter().copied());
        });
        let mut sorted = all.clone();
        sorted.sort_unstable();
        sorted.dedup();
        assert_eq!(sorted.len(), pts.len());
        // Windowed scans match brute-force membership: any point inside
        // the window is inside one of its cells and must be seen. The
        // converse is *not* asserted — a run covers whole cells, so it may
        // legitimately include near-window points the caller re-filters.
        let mut seen = Vec::new();
        grid.for_each_run_in_window(2.0, 2.0, 5.0, 5.0, |r| {
            seen.extend(grid.items()[r].iter().map(|&j| j as usize));
        });
        for (j, &(x, y)) in pts.iter().enumerate() {
            if (2.0..=5.0).contains(&x) && (2.0..=5.0).contains(&y) {
                assert!(seen.contains(&j), "point {j} in window but unseen");
            }
        }
        // Far-outside windows clamp to the boundary cells by contract, so
        // only the inverted window is empty.
        let mut called = false;
        grid.for_each_run_in_window(5.0, 5.0, 2.0, 2.0, |_| called = true);
        assert!(!called, "inverted window must visit nothing");
    }

    #[test]
    fn single_point_degenerate_extent() {
        let grid = BinGrid::build([(3.0, 4.0)], 5.0);
        let mut seen = Vec::new();
        grid.for_each_neighbor(3.0, 4.0, |j| seen.push(j));
        assert_eq!(seen, vec![0]);
    }
}
