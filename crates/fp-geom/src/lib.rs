//! Rectilinear geometry for the DAC'90 analytical floorplanner.
//!
//! Provides the geometric substrate the floorplanner and router are built
//! on: axis-aligned rectangles ([`Rect`]), skyline step functions over a set
//! of placed rectangles ([`Skyline`]), exact union areas, and — centrally —
//! the paper's §3.1 **covering-rectangle decomposition** ([`covering`]) that
//! collapses an already-placed partial floorplan into `d ≤ N` fixed
//! rectangles so each successive-augmentation MILP keeps a near-constant
//! number of integer variables.
//!
//! # Example
//!
//! ```
//! use fp_geom::{Rect, covering::covering_rectangles};
//!
//! // Two stacked modules and one beside them (flat bottom, like Fig. 4).
//! let placed = vec![
//!     Rect::new(0.0, 0.0, 4.0, 2.0),
//!     Rect::new(0.0, 2.0, 3.0, 2.0),
//!     Rect::new(4.0, 0.0, 2.0, 3.0),
//! ];
//! let covers = covering_rectangles(&placed);
//! assert!(covers.len() <= placed.len());
//! // Every module is fully covered by the union of the covers.
//! for m in &placed {
//!     let covered: f64 = covers.iter().map(|c| c.intersection_area(m)).sum();
//!     assert!(covered >= m.area() - 1e-9);
//! }
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod area;
mod contour;
pub mod covering;
mod grid;
mod point;
mod rect;
mod rtree;
mod skyline;

pub use area::{union_area, union_area_oracle};
pub use contour::Contour;
pub use grid::BinGrid;
pub use point::Point;
pub use rect::Rect;
pub use rtree::RTree;
pub use skyline::Skyline;

/// Geometric comparison tolerance used across the workspace.
pub const GEOM_EPS: f64 = 1e-6;
