//! Skyline (upper contour) of a set of placed rectangles.

use crate::rect::Rect;
use crate::GEOM_EPS;

/// The upper contour `h(x)` of a union of rectangles, as a step function.
///
/// The successive-augmentation loop places new modules "from the open side
/// of the chip" (paper §3.1), so the partial floorplan is characterized by
/// its skyline: holes below the contour are deliberately ignored, exactly as
/// the paper ignores "holes at the bottom of the polygon".
///
/// ```
/// use fp_geom::{Rect, Skyline};
/// let sky = Skyline::from_rects(&[
///     Rect::new(0.0, 0.0, 2.0, 3.0),
///     Rect::new(2.0, 0.0, 2.0, 1.0),
/// ]);
/// assert_eq!(sky.height_at(1.0), 3.0);
/// assert_eq!(sky.height_at(3.0), 1.0);
/// assert_eq!(sky.height_at(9.0), 0.0);
/// assert_eq!(sky.max_height(), 3.0);
/// ```
#[derive(Debug, Clone, PartialEq)]
pub struct Skyline {
    /// Strictly increasing breakpoints; `heights[k]` applies on
    /// `[xs[k], xs[k+1])`.
    xs: Vec<f64>,
    heights: Vec<f64>,
}

impl Skyline {
    /// Builds the skyline of the given rectangles (zero height everywhere if
    /// empty).
    #[must_use]
    pub fn from_rects(rects: &[Rect]) -> Self {
        let mut xs: Vec<f64> = rects
            .iter()
            .filter(|r| !r.is_degenerate())
            .flat_map(|r| [r.x, r.right()])
            .collect();
        xs.sort_by(f64::total_cmp);
        xs.dedup_by(|a, b| (*a - *b).abs() <= GEOM_EPS);
        if xs.len() < 2 {
            return Skyline {
                xs: Vec::new(),
                heights: Vec::new(),
            };
        }
        let mut heights = vec![0.0; xs.len() - 1];
        for (k, h) in heights.iter_mut().enumerate() {
            let mid = (xs[k] + xs[k + 1]) / 2.0;
            *h = rects
                .iter()
                .filter(|r| r.x <= mid && mid <= r.right())
                .map(|r| r.top())
                .fold(0.0, f64::max);
        }
        // Merge adjacent equal-height steps for a canonical form.
        let mut m_xs = vec![xs[0]];
        let mut m_hs: Vec<f64> = Vec::new();
        for k in 0..heights.len() {
            if m_hs
                .last()
                .is_some_and(|&h| (h - heights[k]).abs() <= GEOM_EPS)
            {
                *m_xs.last_mut().expect("non-empty") = xs[k + 1];
            } else {
                m_hs.push(heights[k]);
                m_xs.push(xs[k + 1]);
            }
        }
        Skyline {
            xs: m_xs,
            heights: m_hs,
        }
    }

    /// Height of the contour at `x` (0 outside the covered range).
    #[must_use]
    pub fn height_at(&self, x: f64) -> f64 {
        for k in 0..self.heights.len() {
            if x >= self.xs[k] - GEOM_EPS && x < self.xs[k + 1] - GEOM_EPS {
                return self.heights[k];
            }
        }
        0.0
    }

    /// Maximum height over the whole contour (0 if empty).
    #[must_use]
    pub fn max_height(&self) -> f64 {
        self.heights.iter().copied().fold(0.0, f64::max)
    }

    /// Iterates over maximal constant-height segments `(x0, x1, h)`.
    pub fn segments(&self) -> impl Iterator<Item = (f64, f64, f64)> + '_ {
        (0..self.heights.len()).map(|k| (self.xs[k], self.xs[k + 1], self.heights[k]))
    }

    /// Number of maximal segments.
    #[must_use]
    pub fn len(&self) -> usize {
        self.heights.len()
    }

    /// Whether the contour is empty (zero everywhere).
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.heights.is_empty()
    }

    /// The distinct positive heights, ascending — the "horizontal edge"
    /// levels of the paper's covering polygon.
    #[must_use]
    pub fn levels(&self) -> Vec<f64> {
        let mut levels: Vec<f64> = self
            .heights
            .iter()
            .copied()
            .filter(|&h| h > GEOM_EPS)
            .collect();
        levels.sort_by(f64::total_cmp);
        levels.dedup_by(|a, b| (*a - *b).abs() <= GEOM_EPS);
        levels
    }

    /// Greedy bottom-left drop: the lowest (then leftmost) position where a
    /// module of width `w` fits on the skyline with its left edge in
    /// `[0, chip_w - w]`. Used to build warm-start incumbents and as a
    /// baseline placer in tests.
    ///
    /// Returns `None` when `w > chip_w`.
    #[must_use]
    pub fn drop_position(&self, w: f64, chip_w: f64) -> Option<(f64, f64)> {
        if w > chip_w + GEOM_EPS {
            return None;
        }
        let mut candidates: Vec<f64> = vec![0.0];
        for k in 0..self.heights.len() {
            // Segment starts and ends are the only places the support
            // height can change; the end of the last segment (where the
            // contour drops back to 0) matters for placing *beside* the
            // covered range.
            for x in [self.xs[k], self.xs[k + 1], self.xs[k + 1] - w] {
                if x >= -GEOM_EPS && x + w <= chip_w + GEOM_EPS {
                    candidates.push(x);
                }
            }
        }
        let mut best: Option<(f64, f64)> = None;
        for &x in &candidates {
            let x = x.max(0.0);
            if x + w > chip_w + GEOM_EPS {
                continue;
            }
            // Support height: max contour height over [x, x+w).
            let mut y = 0.0f64;
            for (x0, x1, h) in self.segments() {
                if x0 < x + w - GEOM_EPS && x1 > x + GEOM_EPS {
                    y = y.max(h);
                }
            }
            let better = match best {
                None => true,
                Some((bx, by)) => y < by - GEOM_EPS || ((y - by).abs() <= GEOM_EPS && x < bx),
            };
            if better {
                best = Some((x, y));
            }
        }
        best
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn empty_skyline() {
        let sky = Skyline::from_rects(&[]);
        assert!(sky.is_empty());
        assert_eq!(sky.height_at(0.0), 0.0);
        assert_eq!(sky.max_height(), 0.0);
        assert!(sky.levels().is_empty());
    }

    #[test]
    fn steps_merge_equal_heights() {
        // Two abutting rects with equal tops collapse into one segment.
        let sky =
            Skyline::from_rects(&[Rect::new(0.0, 0.0, 2.0, 3.0), Rect::new(2.0, 1.0, 2.0, 2.0)]);
        assert_eq!(sky.len(), 1);
        assert_eq!(sky.height_at(3.9), 3.0);
    }

    #[test]
    fn staircase_levels() {
        let sky = Skyline::from_rects(&[
            Rect::new(0.0, 0.0, 1.0, 3.0),
            Rect::new(1.0, 0.0, 1.0, 2.0),
            Rect::new(2.0, 0.0, 1.0, 1.0),
        ]);
        assert_eq!(sky.len(), 3);
        assert_eq!(sky.levels(), vec![1.0, 2.0, 3.0]);
    }

    #[test]
    fn overlap_takes_max() {
        let sky =
            Skyline::from_rects(&[Rect::new(0.0, 0.0, 4.0, 1.0), Rect::new(1.0, 0.0, 2.0, 5.0)]);
        assert_eq!(sky.height_at(0.5), 1.0);
        assert_eq!(sky.height_at(2.0), 5.0);
        assert_eq!(sky.height_at(3.5), 1.0);
    }

    #[test]
    fn drop_prefers_lowest_then_leftmost() {
        // Valley between two towers.
        let sky =
            Skyline::from_rects(&[Rect::new(0.0, 0.0, 1.0, 4.0), Rect::new(3.0, 0.0, 1.0, 4.0)]);
        // Width 2 fits in the valley at (1, 0).
        assert_eq!(sky.drop_position(2.0, 4.0), Some((1.0, 0.0)));
        // Width 3 does not fit in the valley; must sit on a tower at height 4
        // (leftmost x = 0).
        assert_eq!(sky.drop_position(3.0, 4.0), Some((0.0, 4.0)));
        // Too wide for the chip.
        assert_eq!(sky.drop_position(5.0, 4.0), None);
    }

    #[test]
    fn drop_on_empty_chip() {
        let sky = Skyline::from_rects(&[]);
        assert_eq!(sky.drop_position(3.0, 10.0), Some((0.0, 0.0)));
    }
}
