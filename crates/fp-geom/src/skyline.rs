//! Skyline (upper contour) of a set of placed rectangles.

use crate::rect::Rect;
use crate::GEOM_EPS;

/// The upper contour `h(x)` of a union of rectangles, as a step function.
///
/// The successive-augmentation loop places new modules "from the open side
/// of the chip" (paper §3.1), so the partial floorplan is characterized by
/// its skyline: holes below the contour are deliberately ignored, exactly as
/// the paper ignores "holes at the bottom of the polygon".
///
/// ```
/// use fp_geom::{Rect, Skyline};
/// let sky = Skyline::from_rects(&[
///     Rect::new(0.0, 0.0, 2.0, 3.0),
///     Rect::new(2.0, 0.0, 2.0, 1.0),
/// ]);
/// assert_eq!(sky.height_at(1.0), 3.0);
/// assert_eq!(sky.height_at(3.0), 1.0);
/// assert_eq!(sky.height_at(9.0), 0.0);
/// assert_eq!(sky.max_height(), 3.0);
/// ```
#[derive(Debug, Clone, PartialEq, Default)]
pub struct Skyline {
    /// Strictly increasing breakpoints; `heights[k]` applies on
    /// `[xs[k], xs[k+1])`.
    xs: Vec<f64>,
    heights: Vec<f64>,
}

impl Skyline {
    /// An empty skyline (zero height everywhere). Seed for incremental
    /// construction via [`Skyline::add_rect`].
    #[must_use]
    pub fn new() -> Self {
        Skyline {
            xs: Vec::new(),
            heights: Vec::new(),
        }
    }

    /// Builds the skyline of the given rectangles (zero height everywhere if
    /// empty).
    #[must_use]
    pub fn from_rects(rects: &[Rect]) -> Self {
        let mut xs: Vec<f64> = rects
            .iter()
            .filter(|r| !r.is_degenerate())
            .flat_map(|r| [r.x, r.right()])
            .collect();
        xs.sort_by(f64::total_cmp);
        xs.dedup_by(|a, b| (*a - *b).abs() <= GEOM_EPS);
        if xs.len() < 2 {
            return Skyline {
                xs: Vec::new(),
                heights: Vec::new(),
            };
        }
        let mut heights = vec![0.0; xs.len() - 1];
        for (k, h) in heights.iter_mut().enumerate() {
            let mid = (xs[k] + xs[k + 1]) / 2.0;
            *h = rects
                .iter()
                .filter(|r| r.x <= mid && mid <= r.right())
                .map(|r| r.top())
                .fold(0.0, f64::max);
        }
        // Merge adjacent equal-height steps for a canonical form.
        let mut m_xs = vec![xs[0]];
        let mut m_hs: Vec<f64> = Vec::new();
        for k in 0..heights.len() {
            if m_hs
                .last()
                .is_some_and(|&h| (h - heights[k]).abs() <= GEOM_EPS)
            {
                *m_xs.last_mut().expect("non-empty") = xs[k + 1];
            } else {
                m_hs.push(heights[k]);
                m_xs.push(xs[k + 1]);
            }
        }
        Skyline {
            xs: m_xs,
            heights: m_hs,
        }
    }

    /// Raises the contour by one rectangle — the incremental path for the
    /// augmentation loop's one-module-added case, `O(len)` instead of the
    /// `O(n·len)` full [`Skyline::from_rects`] rebuild.
    ///
    /// The result is canonical (adjacent equal-height steps merged), so a
    /// skyline grown by repeated `add_rect` calls equals the one built from
    /// scratch over the same rectangles.
    pub fn add_rect(&mut self, r: &Rect) {
        if r.is_degenerate() {
            return;
        }
        if self.is_empty() {
            self.xs = vec![r.x, r.right()];
            self.heights = vec![r.top()];
            return;
        }
        // Extend the covered domain with zero-height filler so the rect's
        // span lies inside `[xs[0], xs[last]]`.
        if r.x < self.xs[0] - GEOM_EPS {
            self.xs.insert(0, r.x);
            self.heights.insert(0, 0.0);
        }
        if r.right() > *self.xs.last().expect("non-empty") + GEOM_EPS {
            self.xs.push(r.right());
            self.heights.push(0.0);
        }
        // Split segments at the rect's edges so each segment is entirely
        // inside or outside its span.
        self.insert_breakpoint(r.x);
        self.insert_breakpoint(r.right());
        for k in 0..self.heights.len() {
            let mid = (self.xs[k] + self.xs[k + 1]) / 2.0;
            if r.x <= mid && mid <= r.right() {
                self.heights[k] = self.heights[k].max(r.top());
            }
        }
        self.merge_equal_steps();
    }

    /// Inserts `x` as a segment boundary (no-op when an existing boundary
    /// is within `GEOM_EPS`, or when `x` falls outside the covered range).
    fn insert_breakpoint(&mut self, x: f64) {
        for k in 0..self.xs.len() {
            if (self.xs[k] - x).abs() <= GEOM_EPS {
                return;
            }
            if self.xs[k] > x {
                if k == 0 {
                    return; // left of the covered range
                }
                self.xs.insert(k, x);
                self.heights.insert(k, self.heights[k - 1]);
                return;
            }
        }
    }

    /// Re-canonicalizes by merging adjacent equal-height steps.
    fn merge_equal_steps(&mut self) {
        let mut w = 0usize;
        for k in 0..self.heights.len() {
            if w > 0 && (self.heights[w - 1] - self.heights[k]).abs() <= GEOM_EPS {
                self.xs[w] = self.xs[k + 1];
            } else {
                self.heights[w] = self.heights[k];
                self.xs[w + 1] = self.xs[k + 1];
                w += 1;
            }
        }
        self.heights.truncate(w);
        self.xs.truncate(w + 1);
    }

    /// Height of the contour at `x` (0 outside the covered range).
    #[must_use]
    pub fn height_at(&self, x: f64) -> f64 {
        for k in 0..self.heights.len() {
            if x >= self.xs[k] - GEOM_EPS && x < self.xs[k + 1] - GEOM_EPS {
                return self.heights[k];
            }
        }
        0.0
    }

    /// Maximum height over the whole contour (0 if empty).
    #[must_use]
    pub fn max_height(&self) -> f64 {
        self.heights.iter().copied().fold(0.0, f64::max)
    }

    /// Iterates over maximal constant-height segments `(x0, x1, h)`.
    pub fn segments(&self) -> impl Iterator<Item = (f64, f64, f64)> + '_ {
        (0..self.heights.len()).map(|k| (self.xs[k], self.xs[k + 1], self.heights[k]))
    }

    /// Number of maximal segments.
    #[must_use]
    pub fn len(&self) -> usize {
        self.heights.len()
    }

    /// Whether the contour is empty (zero everywhere).
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.heights.is_empty()
    }

    /// The distinct positive heights, ascending — the "horizontal edge"
    /// levels of the paper's covering polygon.
    #[must_use]
    pub fn levels(&self) -> Vec<f64> {
        let mut levels: Vec<f64> = self
            .heights
            .iter()
            .copied()
            .filter(|&h| h > GEOM_EPS)
            .collect();
        levels.sort_by(f64::total_cmp);
        levels.dedup_by(|a, b| (*a - *b).abs() <= GEOM_EPS);
        levels
    }

    /// Greedy bottom-left drop: the lowest (then leftmost) position where a
    /// module of width `w` fits on the skyline with its left edge in
    /// `[0, chip_w - w]`. Used to build warm-start incumbents and as a
    /// baseline placer in tests.
    ///
    /// Returns `None` when `w > chip_w`.
    #[must_use]
    pub fn drop_position(&self, w: f64, chip_w: f64) -> Option<(f64, f64)> {
        if w > chip_w + GEOM_EPS {
            return None;
        }
        let mut candidates: Vec<f64> = vec![0.0];
        for k in 0..self.heights.len() {
            // Segment starts and ends are the only places the support
            // height can change; the end of the last segment (where the
            // contour drops back to 0) matters for placing *beside* the
            // covered range.
            for x in [self.xs[k], self.xs[k + 1], self.xs[k + 1] - w] {
                if x >= -GEOM_EPS && x + w <= chip_w + GEOM_EPS {
                    candidates.push(x);
                }
            }
        }
        let mut best: Option<(f64, f64)> = None;
        for &x in &candidates {
            let x = x.max(0.0);
            if x + w > chip_w + GEOM_EPS {
                continue;
            }
            // Support height: max contour height over [x, x+w).
            let mut y = 0.0f64;
            for (x0, x1, h) in self.segments() {
                if x0 < x + w - GEOM_EPS && x1 > x + GEOM_EPS {
                    y = y.max(h);
                }
            }
            let better = match best {
                None => true,
                Some((bx, by)) => y < by - GEOM_EPS || ((y - by).abs() <= GEOM_EPS && x < bx),
            };
            if better {
                best = Some((x, y));
            }
        }
        best
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn empty_skyline() {
        let sky = Skyline::from_rects(&[]);
        assert!(sky.is_empty());
        assert_eq!(sky.height_at(0.0), 0.0);
        assert_eq!(sky.max_height(), 0.0);
        assert!(sky.levels().is_empty());
    }

    #[test]
    fn steps_merge_equal_heights() {
        // Two abutting rects with equal tops collapse into one segment.
        let sky =
            Skyline::from_rects(&[Rect::new(0.0, 0.0, 2.0, 3.0), Rect::new(2.0, 1.0, 2.0, 2.0)]);
        assert_eq!(sky.len(), 1);
        assert_eq!(sky.height_at(3.9), 3.0);
    }

    #[test]
    fn staircase_levels() {
        let sky = Skyline::from_rects(&[
            Rect::new(0.0, 0.0, 1.0, 3.0),
            Rect::new(1.0, 0.0, 1.0, 2.0),
            Rect::new(2.0, 0.0, 1.0, 1.0),
        ]);
        assert_eq!(sky.len(), 3);
        assert_eq!(sky.levels(), vec![1.0, 2.0, 3.0]);
    }

    #[test]
    fn overlap_takes_max() {
        let sky =
            Skyline::from_rects(&[Rect::new(0.0, 0.0, 4.0, 1.0), Rect::new(1.0, 0.0, 2.0, 5.0)]);
        assert_eq!(sky.height_at(0.5), 1.0);
        assert_eq!(sky.height_at(2.0), 5.0);
        assert_eq!(sky.height_at(3.5), 1.0);
    }

    #[test]
    fn drop_prefers_lowest_then_leftmost() {
        // Valley between two towers.
        let sky =
            Skyline::from_rects(&[Rect::new(0.0, 0.0, 1.0, 4.0), Rect::new(3.0, 0.0, 1.0, 4.0)]);
        // Width 2 fits in the valley at (1, 0).
        assert_eq!(sky.drop_position(2.0, 4.0), Some((1.0, 0.0)));
        // Width 3 does not fit in the valley; must sit on a tower at height 4
        // (leftmost x = 0).
        assert_eq!(sky.drop_position(3.0, 4.0), Some((0.0, 4.0)));
        // Too wide for the chip.
        assert_eq!(sky.drop_position(5.0, 4.0), None);
    }

    #[test]
    fn drop_on_empty_chip() {
        let sky = Skyline::from_rects(&[]);
        assert_eq!(sky.drop_position(3.0, 10.0), Some((0.0, 0.0)));
    }

    /// Segment-by-segment equality within tolerance.
    fn assert_same(a: &Skyline, b: &Skyline) {
        let sa: Vec<_> = a.segments().collect();
        let sb: Vec<_> = b.segments().collect();
        assert_eq!(
            sa.len(),
            sb.len(),
            "segment counts differ: {sa:?} vs {sb:?}"
        );
        for ((x0, x1, h), (y0, y1, g)) in sa.iter().zip(&sb) {
            assert!((x0 - y0).abs() <= 1e-9, "{sa:?} vs {sb:?}");
            assert!((x1 - y1).abs() <= 1e-9, "{sa:?} vs {sb:?}");
            assert!((h - g).abs() <= 1e-9, "{sa:?} vs {sb:?}");
        }
    }

    #[test]
    fn incremental_add_matches_batch_build() {
        let rects = [
            Rect::new(0.0, 0.0, 2.0, 3.0),
            Rect::new(2.0, 0.0, 2.0, 1.0),
            Rect::new(5.0, 0.0, 1.0, 4.0),  // gap before it
            Rect::new(-2.0, 0.0, 1.5, 2.0), // extends domain left
            Rect::new(1.0, 0.0, 3.0, 3.0),  // straddles existing steps
            Rect::new(0.0, 0.0, 6.0, 0.5),  // low filler: raises only the gaps
        ];
        let mut incremental = Skyline::new();
        for k in 0..rects.len() {
            incremental.add_rect(&rects[k]);
            assert_same(&incremental, &Skyline::from_rects(&rects[..=k]));
        }
    }

    #[test]
    fn add_rect_ignores_degenerate() {
        let mut sky = Skyline::from_rects(&[Rect::new(0.0, 0.0, 2.0, 2.0)]);
        let before = sky.clone();
        sky.add_rect(&Rect::new(1.0, 0.0, 0.0, 5.0));
        assert_eq!(sky, before);
    }

    #[test]
    fn add_rect_seeded_random_matches_batch() {
        // Deterministic pseudo-random drops, including touching edges and
        // near-GEOM_EPS offsets.
        let mut state = 0x9E37_79B9_u64;
        let mut next = move || {
            state = state
                .wrapping_mul(6364136223846793005)
                .wrapping_add(1442695040888963407);
            ((state >> 33) as f64) / ((1u64 << 31) as f64)
        };
        let mut rects = Vec::new();
        let mut incremental = Skyline::new();
        for _ in 0..60 {
            let x = (next() * 20.0).round() / 2.0; // quantized: exact abutments
            let w = 0.5 + (next() * 6.0).round() / 2.0;
            let h = 0.5 + (next() * 6.0).round() / 2.0;
            let r = Rect::new(x, 0.0, w, h);
            rects.push(r);
            incremental.add_rect(&r);
            assert_same(&incremental, &Skyline::from_rects(&rects));
        }
    }
}
