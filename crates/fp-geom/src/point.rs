//! 2-D points.

use std::fmt;
use std::ops::{Add, Sub};

/// A point in the chip coordinate system (origin at the chip's lower-left
/// corner, as in the paper's §2.2).
#[derive(Debug, Clone, Copy, PartialEq, Default)]
pub struct Point {
    /// Horizontal coordinate.
    pub x: f64,
    /// Vertical coordinate.
    pub y: f64,
}

impl Point {
    /// Creates a point.
    #[must_use]
    pub fn new(x: f64, y: f64) -> Self {
        Point { x, y }
    }

    /// Manhattan (L1) distance to `other` — the wirelength metric used by
    /// the router and the MILP objective.
    #[must_use]
    pub fn manhattan(&self, other: &Point) -> f64 {
        (self.x - other.x).abs() + (self.y - other.y).abs()
    }

    /// Euclidean distance to `other`.
    #[must_use]
    pub fn euclidean(&self, other: &Point) -> f64 {
        (self.x - other.x).hypot(self.y - other.y)
    }
}

impl Add for Point {
    type Output = Point;
    fn add(self, rhs: Point) -> Point {
        Point::new(self.x + rhs.x, self.y + rhs.y)
    }
}

impl Sub for Point {
    type Output = Point;
    fn sub(self, rhs: Point) -> Point {
        Point::new(self.x - rhs.x, self.y - rhs.y)
    }
}

impl fmt::Display for Point {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "({}, {})", self.x, self.y)
    }
}

impl From<(f64, f64)> for Point {
    fn from((x, y): (f64, f64)) -> Self {
        Point::new(x, y)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn distances() {
        let a = Point::new(1.0, 2.0);
        let b = Point::new(4.0, 6.0);
        assert_eq!(a.manhattan(&b), 7.0);
        assert_eq!(a.euclidean(&b), 5.0);
    }

    #[test]
    fn arithmetic_and_conversion() {
        let a: Point = (1.0, 2.0).into();
        let b = Point::new(0.5, -1.0);
        assert_eq!(a + b, Point::new(1.5, 1.0));
        assert_eq!(a - b, Point::new(0.5, 3.0));
        assert_eq!(a.to_string(), "(1, 2)");
    }
}
